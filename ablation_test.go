package perftaint

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/libdb"
	"repro/internal/taint"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the cost
// of control-flow taint propagation (the DFSan extension of Section 5.2)
// and of label-union deduplication.

func runTaint(b *testing.B, controlFlow bool) {
	spec := apps.LULESH()
	mod, err := apps.BuildModule(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := apps.LULESHTaintConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := taint.NewEngine()
		e.ControlFlow = controlFlow
		mach := interp.NewMachine(mod)
		mach.Taint = e
		libdb.DefaultMPI().Bind(mach, e, libdb.RunConfig{CommSize: 8})
		labels := make([]taint.Label, len(spec.Params))
		for j, p := range spec.Params {
			labels[j] = e.Table.Base(p)
		}
		if _, err := mach.Run("main", apps.TaintArgs(spec, cfg), labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDataFlowOnly measures the tainted run with control-flow
// propagation disabled (classic DFSan).
func BenchmarkAblationDataFlowOnly(b *testing.B) { runTaint(b, false) }

// BenchmarkAblationControlFlow measures the full configuration the paper
// requires.
func BenchmarkAblationControlFlow(b *testing.B) { runTaint(b, true) }

// TestAblationControlFlowFindsMoreDependencies verifies the extension is
// load-bearing: disabling it loses dependencies that only flow through
// control (the LULESH regElemSize pattern).
func TestAblationControlFlowFindsMoreDependencies(t *testing.T) {
	spec := apps.LULESH()
	mod, err := apps.BuildModule(spec)
	if err != nil {
		t.Fatal(err)
	}
	count := func(cf bool) int {
		e := taint.NewEngine()
		e.ControlFlow = cf
		mach := interp.NewMachine(mod)
		mach.Taint = e
		libdb.DefaultMPI().Bind(mach, e, libdb.RunConfig{CommSize: 8})
		labels := make([]taint.Label, len(spec.Params))
		for j, p := range spec.Params {
			labels[j] = e.Table.Base(p)
		}
		if _, err := mach.Run("main", apps.TaintArgs(spec, apps.LULESHTaintConfig()), labels); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, deps := range e.FuncLoopDeps() {
			total += len(deps)
		}
		return total
	}
	with := count(true)
	without := count(false)
	if with < without {
		t.Fatalf("control-flow tainting lost dependencies: %d with vs %d without", with, without)
	}
}

// BenchmarkAblationMaskUnion exercises the mask union kernel under the same
// worst-case mixing pattern the old id-allocating table was benchmarked
// with. Deduplication is structural now — equal parameter sets are equal
// uint64 values — so the property to hold is simply that the churn stays
// allocation-free and the final mask is exact.
func BenchmarkAblationMaskUnion(b *testing.B) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	tbl := taint.NewTable()
	base := make([]taint.Label, len(names))
	for j, n := range names {
		base[j] = tbl.Base(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := taint.None
		for j := 0; j < 4096; j++ {
			l = taint.Union(l, base[j%len(base)])
			if j%7 == 0 {
				l = base[(j*3)%len(base)]
			}
		}
		// The final iteration (j=4095, a multiple of 7) ends on a reset to
		// base[(4095*3)%8] = base[5].
		if l != base[5] {
			b.Fatalf("mask union broken: %b", l)
		}
	}
}
