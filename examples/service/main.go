// Analysis-as-a-service walkthrough: start the perftaintd daemon
// in-process, submit single analyses and a streamed parameter sweep
// through the HTTP client, and watch the content-addressed PreparedCache
// absorb the per-spec cost.
//
// The same traffic works against a standalone daemon:
//
//	perftaintd -addr :7070 &
//	perftaint submit -addr http://127.0.0.1:7070 -app lulesh
//	perftaint submit -addr http://127.0.0.1:7070 -app lulesh -sweep 'p=2,4,8'
//	perftaint stats  -addr http://127.0.0.1:7070
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	perftaint "repro"
)

func main() {
	log.SetFlags(0)

	// A persistent cache root: everything the daemon prepares or extracts
	// is written through here, so a restarted daemon starts warm. In
	// production this is `perftaintd -cache-dir /var/cache/perftaintd`.
	cacheDir, err := os.MkdirTemp("", "perftaintd-cache-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	// 1. Start the daemon on a loopback port. In production this is
	//    `perftaintd -addr :7070 -workers 8 -cache-entries 16`.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	srv, err := perftaint.NewServer(perftaint.ServerOptions{Workers: 4, CacheEntries: 8, CacheDir: cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	client := perftaint.NewClient("http://" + addr)
	if err := client.Health(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon up on %s\n", addr)

	// 2. Submit the paper's LULESH taint run. The first submission pays
	//    core.Prepare (module build + static pass + predecode)...
	job, err := client.Analyze(ctx, perftaint.AnalyzeRequest{App: "lulesh"})
	if err != nil {
		log.Fatal(err)
	}
	if job.Result == nil {
		log.Fatalf("job %s finished %q: %s", job.ID, job.Status, job.Error)
	}
	fmt.Printf("job %s: %s in %dms, %.1f%% of functions constant\n",
		job.ID, job.Status, job.DurationMS, job.Result.Census.PercentConstant)
	fmt.Printf("spec content address: %s...\n", job.Result.SpecDigest[:16])

	// 3. ...and every later submission of the same spec content shares
	//    the cached Prepared, whatever configuration it analyzes.
	if _, err := client.Analyze(ctx, perftaint.AnalyzeRequest{
		App:    "lulesh",
		Config: perftaint.Config{"p": 27},
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Sweeps stream NDJSON in deterministic design order; nothing
	//    buffers server-side, so designs can be arbitrarily large.
	fmt.Println("sweep p x size:")
	err = client.Sweep(ctx, perftaint.SweepRequest{
		App: "lulesh",
		Axes: []perftaint.SweepAxis{
			{Param: "p", Values: []float64{2, 4, 8}},
			{Param: "size", Values: []float64{4, 5}},
		},
	}, func(line perftaint.SweepLine) error {
		if line.Error != "" {
			return fmt.Errorf("config %d failed: %s", line.Index, line.Error)
		}
		fmt.Printf("  [%d] p=%-3g size=%g  instructions=%d\n",
			line.Index, line.Config["p"], line.Config["size"], line.Result.Instructions)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. The stats endpoint shows the cache doing its job: one miss (the
	//    single build) and a hit for every later submission.
	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache: %d hits / %d misses / %d entries; jobs completed: %d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Jobs.Completed)

	// 6. Extract a model set — the expensive sweep-and-fit artifact the
	//    persistent tier is really for.
	modelReq := perftaint.ModelRequest{
		App:    "lulesh",
		Params: []string{"p", "size"},
		Axes: []perftaint.SweepAxis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{4, 5}},
		},
		Reps: 2, Seed: 3,
	}
	ms, err := client.Models(ctx, modelReq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model set %s...: %d functions, cached=%v\n", ms.Key[:16], len(ms.ModelSet.Functions), ms.Cached)

	// 7. Kill the daemon and start a fresh one over the same cache dir:
	//    the restart serves the model set from disk with zero rebuilds
	//    (no sweep, no fit) and re-prepares the spec at most once.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon stopped; restarting over the same cache dir")

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	srv2, err := perftaint.NewServer(perftaint.ServerOptions{Workers: 4, CacheEntries: 8, CacheDir: cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.ListenAndServe(ctx2, "127.0.0.1:0", ready2) }()
	client2 := perftaint.NewClient("http://" + <-ready2)

	warm, err := client2.Models(ctx2, modelReq)
	if err != nil {
		log.Fatal(err)
	}
	st2, err := client2.Stats(ctx2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restart: model cached=%v, model disk hits=%d, prepared disk hits=%d, cold misses=%d\n",
		warm.Cached, st2.Models.DiskHits, st2.Cache.DiskHits, st2.Models.Misses+st2.Cache.Misses)
	if !warm.Cached || st2.Models.DiskHits == 0 {
		log.Fatal("restart did not serve the model set from disk")
	}

	cancel2()
	if err := <-done2; err != nil {
		log.Fatal(err)
	}

	// 8. Scale out: one coordinator plus two workers. The coordinator
	//    keeps the exact same client API and shards the sweep across the
	//    workers — the merged stream is byte-identical to a single-node
	//    run, so this block is all deployment and zero client changes.
	//    In production this is
	//    `perftaintd -addr :7070 -coordinator` plus
	//    `perftaintd -addr :7071 -worker -join http://coord:7070` (x N).
	fmt.Println("starting a 1-coordinator / 2-worker cluster")
	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	var drains []chan error
	boot := func(opts perftaint.ServerOptions) string {
		srv, err := perftaint.NewServer(opts)
		if err != nil {
			log.Fatal(err)
		}
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- srv.ListenAndServe(cctx, "127.0.0.1:0", ready) }()
		drains = append(drains, done)
		return <-ready
	}
	coordAddr := boot(perftaint.ServerOptions{Workers: 2, Coordinator: true})
	for i := 0; i < 2; i++ {
		boot(perftaint.ServerOptions{Workers: 2, JoinURL: "http://" + coordAddr})
	}
	coord := perftaint.NewClient("http://" + coordAddr)
	for { // workers register on their first heartbeat tick
		st, err := coord.Stats(cctx)
		if err == nil && st.Cluster != nil && st.Cluster.LiveWorkers == 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Println("sweep p x size, sharded across 2 workers:")
	err = coord.Sweep(cctx, perftaint.SweepRequest{
		App: "lulesh",
		Axes: []perftaint.SweepAxis{
			{Param: "p", Values: []float64{2, 4, 8}},
			{Param: "size", Values: []float64{4, 5}},
		},
	}, func(line perftaint.SweepLine) error {
		if line.Error != "" {
			return fmt.Errorf("config %d failed: %s", line.Index, line.Error)
		}
		fmt.Printf("  [%d] p=%-3g size=%g  instructions=%d\n",
			line.Index, line.Config["p"], line.Config["size"], line.Result.Instructions)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	cst, err := coord.Stats(cctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d live workers, %d shards dispatched, %d run locally, %d retries\n",
		cst.Cluster.LiveWorkers, cst.Cluster.ShardsDispatched, cst.Cluster.ShardsLocal, cst.Cluster.ShardRetries)
	if cst.Cluster.ShardsDispatched == 0 {
		log.Fatal("coordinator never dispatched a shard")
	}

	ccancel()
	for _, done := range drains {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
}
