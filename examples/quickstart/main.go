// Quickstart: analyze the bundled LULESH proxy app, inspect which
// parameters the taint analysis attaches to a kernel, and fit a hybrid
// model with the resulting prior.
package main

import (
	"fmt"
	"log"
	"math"

	perftaint "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Run the Perf-Taint pipeline: build the IR, prune statically,
	//    execute the tainted run at the paper's configuration.
	spec := perftaint.LULESH()
	rep, err := perftaint.Analyze(spec, perftaint.LULESHTaintConfig())
	if err != nil {
		log.Fatal(err)
	}

	census := rep.Census([]string{"p", "size"})
	fmt.Printf("functions: %d total, %d pruned statically, %d dynamically (%.1f%% constant)\n",
		census.FunctionsTotal, census.PrunedStatically, census.PrunedDynamically,
		census.PercentConstant)

	// 2. Ask what a kernel's performance may depend on.
	const kernel = "CalcQForElems"
	fmt.Printf("%s depends on: %v\n", kernel, rep.FuncDeps[kernel])
	fmt.Printf("%s volume: %s\n", kernel, rep.Volumes.ByFunc[kernel])

	// 3. Fit a model from (synthetic) measurements using the taint prior:
	//    parameters the code cannot depend on are excluded up front.
	d := perftaint.NewDataset("p", "size")
	for _, p := range []float64{27, 64, 125, 343, 729} {
		for _, s := range []float64{25, 30, 35, 40, 45} {
			t := 2.4e-8 * math.Pow(p, 0.25) * s * s * s // the paper's validated shape
			d.Add(map[string]float64{"p": p, "size": s}, t, t*1.01, t*0.99)
		}
	}
	prior := rep.Prior(kernel, []string{"p", "size"})
	model, err := perftaint.FitWithPrior(d, prior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid model: %s\n", model)
}
