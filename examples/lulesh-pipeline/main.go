// lulesh-pipeline runs the full Perf-Taint modeling workflow on LULESH:
// taint analysis, taint-filtered measurement campaign, and hybrid modeling
// of the key kernels — the end-to-end path of Figure 2.
package main

import (
	"fmt"
	"log"

	perftaint "repro"
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/measure"
)

func main() {
	log.SetFlags(0)

	// Step 1+2: parameter identification through tainting.
	spec := perftaint.LULESH()
	rep, err := perftaint.Analyze(spec, perftaint.LULESHTaintConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumenting %d of %d functions (taint filter)\n",
		len(rep.Relevant), len(spec.Funcs))

	// Step 3: instrumented experiments over the 25-point design.
	ps, sizes := apps.LULESHModelValues()
	sweep := measure.CrossSweep(apps.LULESHDefaults(), "p", ps, "size", sizes)
	camp := &measure.Campaign{
		Runner:      cluster.NewRunner(spec),
		Sweep:       sweep,
		Reps:        5,
		Filter:      measure.FilterTaint,
		Relevant:    rep.Relevant,
		Seed:        1,
		RelNoise:    0.02,
		ModelParams: []string{"p", "size"},
	}
	ds, err := camp.Datasets()
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: hybrid model generation with the white-box prior.
	for _, fn := range []string{"CalcQForElems", "CalcForceForNodes", "CommSBN", "main"} {
		d := ds[fn]
		if d == nil {
			continue
		}
		prior := rep.Prior(fn, []string{"p", "size"})
		m, err := perftaint.FitWithPrior(d, prior)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s deps=%v model: %s\n", fn, rep.FuncDeps[fn], m)
	}
}
