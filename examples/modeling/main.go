// modeling runs the end-to-end model-extraction pipeline on LULESH —
// the paper's actual deliverable: taint run, streamed measurement
// sweep, incremental fitting, and a rendered per-function model report
// with clean-vs-tainted parameter attribution.
//
// The design lives in lulesh.json next to this file (the same config
// `perftaint model -config` consumes); the Markdown report goes to
// stdout or -md, the self-contained HTML version to -html.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/modelreg"
	"repro/internal/runner"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	cfgPath := flag.String("config", defaultConfig(), "modeling config JSON")
	mdOut := flag.String("md", "", "write the Markdown report here instead of stdout")
	htmlOut := flag.String("html", "", "also write a self-contained HTML report")
	flag.Parse()

	raw, err := os.ReadFile(*cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg modelreg.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		log.Fatalf("parse %s: %v", *cfgPath, err)
	}
	app, ok := service.BundledApps()[cfg.App]
	if !ok {
		log.Fatalf("unknown app %q", cfg.App)
	}
	// The shared overlay keeps this example's design digest identical to
	// what `perftaint model` and the daemon compute for the same config.
	cfg = service.ResolveModelDefaults(app, cfg)

	prep, err := core.Prepare(app.New())
	if err != nil {
		log.Fatal(err)
	}
	ms, err := modelreg.Extract(context.Background(), runner.New(), prep, cfg,
		func(ev modelreg.Event) {
			switch ev.Type {
			case "taint":
				log.Printf("taint: %d/%d functions relevant, %d design points ahead",
					ev.Relevant, ev.Functions, ev.Total)
			case "point":
				log.Printf("point %d/%d (%d instructions)", ev.Points, ev.Total, ev.Instructions)
			case "refit":
				log.Printf("incremental refit at %d/%d points: %d models", ev.Points, ev.Total, ev.Fitted)
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	md := modelreg.RenderMarkdown(ms)
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(md), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote Markdown report to %s", *mdOut)
	} else {
		fmt.Print(md)
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(modelreg.RenderHTML(ms)), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote HTML report to %s", *htmlOut)
	}
}

// defaultConfig finds lulesh.json next to this program so the example
// runs from any working directory (`go run ./examples/modeling`).
func defaultConfig() string {
	if _, err := os.Stat("lulesh.json"); err == nil {
		return "lulesh.json"
	}
	return filepath.Join("examples", "modeling", "lulesh.json")
}
