// contention reproduces the C1 workflow as a library user would run it:
// measure LULESH at fixed p and size while varying ranks per node, fit
// models in r, and use the taint report to conclude that observed slowdowns
// must be hardware contention, not program behaviour.
package main

import (
	"fmt"
	"log"

	perftaint "repro"
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/measure"
	"repro/internal/noise"
)

func main() {
	log.SetFlags(0)

	spec := perftaint.LULESH()
	rep, err := perftaint.Analyze(spec, perftaint.LULESHTaintConfig())
	if err != nil {
		log.Fatal(err)
	}

	runner := cluster.NewRunner(spec)
	cfg := apps.LULESHDefaults()
	cfg["p"] = 64
	cfg["size"] = 30
	set := measure.Select(spec, measure.FilterTaint, rep.Relevant)
	src := noise.New(7, 0.01, 0)

	target := "CalcHourglassControlForElems"
	d := perftaint.NewDataset("r")
	for _, r := range []float64{2, 4, 8, 16, 18} {
		runner.RanksPerNodeOverride = int(r)
		prof, err := runner.Measure(cfg, set, 5, src)
		if err != nil {
			log.Fatal(err)
		}
		d.Add(map[string]float64{"r": r}, prof.FuncSeconds[target]...)
	}

	model, err := perftaint.FitSingle(d, "r")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s model in ranks-per-node r: %s\n", target, model)
	fmt.Printf("taint dependencies of %s: %v\n", target, rep.FuncDeps[target])
	fmt.Println("verdict: the code cannot depend on r, yet the model grows with it —")
	fmt.Println("the slowdown is hardware contention (memory-bandwidth saturation).")
}
