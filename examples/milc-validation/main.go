// milc-validation demonstrates the C2 use case: the taint analysis flags
// parameter-driven algorithm selection in the MILC gather, warning that a
// single experiment interval mixes two performance regimes.
package main

import (
	"fmt"
	"log"

	perftaint "repro"
)

func main() {
	log.SetFlags(0)

	spec := perftaint.MILC()
	rep, err := perftaint.Analyze(spec, perftaint.MILCTaintConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tainted algorithm-selection branches (one-sided coverage):")
	for _, sel := range rep.Engine.TaintedSelections() {
		fmt.Printf("  %s (block %d) controlled by {%s}\n",
			sel.Key.Func, sel.Key.Block, rep.Engine.Table.ExpandString(sel.Labels))
	}

	fmt.Println("\nguidance: the g_gather_field branch switches algorithms on p;")
	fmt.Println("design experiments so each interval contains one behaviour")
	fmt.Println("(e.g. model p < 8 and p >= 8 separately).")

	// Show the dependency sets of the gather machinery.
	for _, fn := range []string{"g_gather_field", "ks_congrad", "main"} {
		fmt.Printf("%-16s depends on %v\n", fn, rep.FuncDeps[fn])
	}
}
