// Package perftaint is the public API of the Perf-Taint reproduction: a
// hybrid performance-modeling framework that feeds dynamic taint analysis
// results (which input parameters can affect which loops and library calls)
// into an Extra-P-style empirical modeler, reproducing "Extracting Clean
// Performance Models from Tainted Programs" (PPoPP 2021).
//
// Typical use:
//
//	spec := perftaint.LULESH()
//	rep, err := perftaint.Analyze(spec, perftaint.LULESHTaintConfig())
//	...
//	prior := rep.Prior("CalcQForElems", []string{"p", "size"})
//	model, err := perftaint.FitWithPrior(dataset, prior)
//
// The heavy lifting lives in the internal packages; this facade re-exports
// the stable surface used by the examples and command-line tools.
package perftaint

import (
	"context"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/extrap"
	"repro/internal/modelreg"
	"repro/internal/runner"
	"repro/internal/service"
)

// Re-exported core types.
type (
	// Spec is a declarative application description from which both the
	// analyzable IR program and the analytic ground truth derive.
	Spec = apps.Spec
	// Config assigns concrete values to application parameters (plus the
	// implicit MPI parameter "p").
	Config = apps.Config
	// Report is the result of a Perf-Taint analysis: static pruning,
	// dynamic taint dependencies, symbolic volumes, and modeling priors.
	Report = core.Report
	// Census carries the Table 2 style pruning statistics.
	Census = core.Census
	// Dataset is a set of repeated measurements over named parameters.
	Dataset = extrap.Dataset
	// Model is a fitted performance-model-normal-form instance.
	Model = extrap.Model
	// Prior is the white-box restriction on the model search space.
	Prior = extrap.Prior
	// Prepared caches the per-spec artifacts (built module, verification,
	// static pass) shared by every configuration of a batch.
	Prepared = core.Prepared
	// Runner fans batches of analyses out across a worker pool.
	Runner = runner.Runner
	// BatchResult is one job outcome of a batch: input index, config, and
	// report or error.
	BatchResult = runner.Result
	// Design declares a full-factorial parameter sweep over one spec.
	Design = runner.Design
	// Axis is one swept parameter of a Design.
	Axis = runner.Axis
	// Server is the analysis daemon: the pipeline behind a JSON HTTP API
	// with a content-addressed PreparedCache and a bounded job scheduler.
	Server = service.Server
	// ServerOptions configures a Server (workers, cache capacity, job
	// deadlines).
	ServerOptions = service.Options
	// Client talks to a running perftaintd daemon.
	Client = service.Client
	// AnalyzeRequest is one configuration submitted to a daemon.
	AnalyzeRequest = service.AnalyzeRequest
	// SweepRequest is a full-factorial design submitted to a daemon; the
	// results stream back as NDJSON lines in design order.
	SweepRequest = service.SweepRequest
	// SweepAxis is one swept parameter of a SweepRequest.
	SweepAxis = service.SweepAxis
	// SweepLine is one streamed result record of a sweep.
	SweepLine = service.SweepLine
	// JobInfo is the wire view of one scheduled analysis job.
	JobInfo = service.JobInfo
	// ModelConfig declares one end-to-end model extraction: the design
	// to sweep, the parameters to model over, and the fitting cadence.
	ModelConfig = modelreg.Config
	// ModelAxis is one swept parameter of a ModelConfig design.
	ModelAxis = modelreg.Axis
	// ModelSet is the finished model-extraction artifact: ranked
	// per-function models with validation diagnostics and parameter
	// attribution.
	ModelSet = modelreg.ModelSet
	// ModelEvent is one progress record of a running model extraction.
	ModelEvent = modelreg.Event
	// ModelRequest submits a model extraction to a daemon's
	// POST /v1/models endpoint.
	ModelRequest = service.ModelRequest
	// ModelResponse is a daemon's model-extraction answer (model set
	// plus its content address and cache provenance).
	ModelResponse = service.ModelResponse
)

// Analyze runs the full Perf-Taint pipeline (build, static prune, tainted
// execution, dependency aggregation) on spec at the given configuration.
func Analyze(spec *Spec, cfg Config) (*Report, error) {
	return core.Analyze(spec, cfg)
}

// Prepare builds, verifies, and statically classifies spec once; the
// returned Prepared analyzes individual configurations concurrently.
func Prepare(spec *Spec) (*Prepared, error) { return core.Prepare(spec) }

// NewRunner returns a batch runner that saturates GOMAXPROCS.
func NewRunner() *Runner { return runner.New() }

// AnalyzeBatch analyzes spec at every configuration, building the module
// and running the static pass exactly once and fanning the dynamic runs
// out across all cores. Results preserve input order; per-config failures
// are captured in the corresponding BatchResult.Err.
func AnalyzeBatch(spec *Spec, cfgs []Config) ([]BatchResult, error) {
	return runner.New().AnalyzeBatch(spec, cfgs)
}

// Sweep expands a full-factorial design and analyzes it as one batch.
func Sweep(d Design) ([]BatchResult, error) { return runner.New().Sweep(d) }

// NewServer assembles an analysis daemon; serve it with ListenAndServe
// or mount Handler() into an existing HTTP server. The only failure
// mode is an unusable ServerOptions.CacheDir.
func NewServer(opts ServerOptions) (*Server, error) { return service.NewServer(opts) }

// Serve runs an analysis daemon on addr until ctx is done, then drains
// it. It is the programmatic equivalent of `perftaintd -addr addr`.
func Serve(ctx context.Context, addr string, opts ServerOptions) error {
	srv, err := service.NewServer(opts)
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx, addr, nil)
}

// NewClient returns a client for the daemon at base, e.g.
// "http://127.0.0.1:7070".
func NewClient(base string) *Client { return service.NewClient(base) }

// SpecDigest returns the content address of a spec: the key under which
// a daemon's PreparedCache shares the prepared artifacts.
func SpecDigest(spec *Spec) string { return core.SpecDigest(spec) }

// LULESH returns the bundled LULESH proxy-app specification.
func LULESH() *Spec { return apps.LULESH() }

// MILC returns the bundled MILC su3_rmd specification.
func MILC() *Spec { return apps.MILC() }

// LULESHTaintConfig is the paper's LULESH taint-run configuration
// (size 5, 8 ranks).
func LULESHTaintConfig() Config { return apps.LULESHTaintConfig() }

// MILCTaintConfig is the paper's MILC taint-run configuration
// (size 128, 32 ranks).
func MILCTaintConfig() Config { return apps.MILCTaintConfig() }

// NewDataset declares a measurement dataset over the given parameters.
func NewDataset(params ...string) *Dataset { return extrap.NewDataset(params...) }

// Fit runs the black-box Extra-P model search on d.
func Fit(d *Dataset) (*Model, error) {
	return extrap.ModelMulti(d, extrap.DefaultOptions(), nil)
}

// FitWithPrior runs the hybrid (taint-informed) model search on d.
func FitWithPrior(d *Dataset, prior *Prior) (*Model, error) {
	return extrap.ModelMulti(d, extrap.DefaultOptions(), prior)
}

// FitSingle fits a single-parameter model, the building block of the
// multi-parameter heuristic.
func FitSingle(d *Dataset, param string) (*Model, error) {
	return extrap.ModelSingle(d, param, extrap.DefaultOptions())
}

// ExtractModels runs the end-to-end model-extraction pipeline on spec:
// taint run, streamed measurement sweep over cfg's design, incremental
// fitting, and the ranked ModelSet with clean-vs-tainted parameter
// attribution — the paper's output artifact. onEvent (optional)
// observes progress. It is the programmatic equivalent of
// `perftaint model -config ...`.
func ExtractModels(ctx context.Context, spec *Spec, cfg ModelConfig, onEvent func(ModelEvent)) (*ModelSet, error) {
	p, err := core.Prepare(spec)
	if err != nil {
		return nil, err
	}
	return modelreg.Extract(ctx, runner.New(), p, cfg, onEvent)
}

// RenderModelMarkdown renders a model set as the Markdown report
// `perftaint report` emits.
func RenderModelMarkdown(ms *ModelSet) string { return modelreg.RenderMarkdown(ms) }

// RenderModelHTML renders a model set as a self-contained HTML page.
func RenderModelHTML(ms *ModelSet) string { return modelreg.RenderHTML(ms) }
