// Command extrap fits PMNF performance models to a JSON measurement file.
//
// Input format:
//
//	{
//	  "params": ["p", "size"],
//	  "points": [
//	    {"params": {"p": 4, "size": 32}, "values": [1.02, 0.98, 1.01]},
//	    ...
//	  ],
//	  "allowed": ["size"]          // optional white-box prior
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/extrap"
)

type inputFile struct {
	Params []string `json:"params"`
	Points []struct {
		Params map[string]float64 `json:"params"`
		Values []float64          `json:"values"`
	} `json:"points"`
	Allowed       []string `json:"allowed"`
	ForceConstant bool     `json:"force_constant"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("extrap: ")
	path := flag.String("in", "", "JSON measurement file (default stdin)")
	flag.Parse()

	var raw []byte
	var err error
	if *path == "" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*path)
	}
	if err != nil {
		log.Fatal(err)
	}
	var in inputFile
	if err := json.Unmarshal(raw, &in); err != nil {
		log.Fatal(err)
	}

	d := extrap.NewDataset(in.Params...)
	for _, pt := range in.Points {
		d.Add(pt.Params, pt.Values...)
	}
	var prior *extrap.Prior
	if in.ForceConstant {
		prior = &extrap.Prior{ForceConstant: true}
	} else if len(in.Allowed) > 0 {
		allowed := make(map[string]bool, len(in.Allowed))
		for _, p := range in.Allowed {
			allowed[p] = true
		}
		prior = &extrap.Prior{Allowed: allowed}
	}

	m, err := extrap.ModelMulti(d, extrap.DefaultOptions(), prior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:  %s\n", m)
	fmt.Printf("smape:  %.4f\n", m.SMAPE)
	fmt.Printf("cv:     %.4f\n", m.CV)
	fmt.Printf("params: %v\n", m.Params())
	if !d.Reliable() {
		fmt.Printf("warning: max CoV %.3f exceeds the %.1f noise cutoff\n",
			d.MaxCoV(), extrap.NoiseCutoff)
	}
}
