// Command loadsmoke is the CI load-and-restart check for the hardened
// analysis daemon. It launches a real perftaintd process with a
// persistent cache dir and a per-client rate limit, drives it with N
// concurrent clients submitting mixed traffic (single analyses, NDJSON
// sweeps, model extractions, stats polls), then kills the daemon and
// starts a fresh one over the same cache dir. It exits non-zero unless:
//
//   - no request ever answered a 5xx during the storm;
//   - the admission limiter engaged (at least one 429 with Retry-After);
//   - the restarted daemon serves previously-extracted state from disk
//     (disk-hit counters > 0, model set answered with zero rebuilds);
//   - GET /metrics scrapes cleanly on both daemons.
//
// The final /metrics scrape is written to -metrics-out so CI can attach
// it as an artifact.
//
//	go build -o bin/perftaintd ./cmd/perftaintd
//	go run ./cmd/loadsmoke -daemon bin/perftaintd -clients 8
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadsmoke: ")
	daemon := flag.String("daemon", "", "path to the perftaintd binary (required)")
	clients := flag.Int("clients", 8, "concurrent load-generating clients")
	perClient := flag.Int("requests", 12, "requests each client submits")
	rate := flag.Float64("rate", 1, "per-client admission rate handed to the daemon (low enough that a 12-request burst must trip it)")
	metricsOut := flag.String("metrics-out", "loadsmoke_metrics.txt", "file the final /metrics scrape is written to")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall smoke deadline")
	flag.Parse()
	if *daemon == "" {
		log.Fatal("-daemon is required: loadsmoke exists to exercise a real process restart")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *daemon, *clients, *perClient, *rate, *metricsOut); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loadsmoke: OK — no 5xx under load, limiter engaged, restart served from disk")
}

// counters aggregates client-side observations across the storm.
type counters struct {
	ok          atomic.Uint64
	rateLimited atomic.Uint64
	serverErrs  atomic.Uint64
	otherErrs   atomic.Uint64
}

func run(ctx context.Context, daemon string, clients, perClient int, rate float64, metricsOut string) error {
	cacheDir, err := os.MkdirTemp("", "loadsmoke-cache-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	// --- Phase 1: storm a rate-limited daemon with mixed traffic. ---
	base, stop, err := startDaemon(ctx, daemon,
		"-cache-dir", cacheDir, "-rate", fmt.Sprint(rate), "-workers", "4")
	if err != nil {
		return err
	}
	var cnt counters
	if err := storm(ctx, base, clients, perClient, &cnt); err != nil {
		stop()
		return err
	}
	fmt.Printf("loadsmoke: storm: %d ok, %d rate-limited, %d server errors, %d other errors\n",
		cnt.ok.Load(), cnt.rateLimited.Load(), cnt.serverErrs.Load(), cnt.otherErrs.Load())
	if cnt.serverErrs.Load() > 0 {
		stop()
		return fmt.Errorf("%d responses were 5xx under load", cnt.serverErrs.Load())
	}
	if cnt.rateLimited.Load() == 0 {
		stop()
		return fmt.Errorf("limiter never engaged: %d clients x %d requests all admitted at rate %g",
			clients, perClient, rate)
	}
	if cnt.ok.Load() == 0 {
		stop()
		return fmt.Errorf("no request succeeded — the limiter starved everything")
	}
	// Extract a model set so the restart has a zero-rebuild artifact to
	// serve, and scrape /metrics once while warm.
	client := service.NewClient(base)
	first, err := client.Models(ctx, modelRequest())
	if err != nil {
		stop()
		return fmt.Errorf("model extraction before restart: %w", err)
	}
	if _, err := scrapeMetrics(ctx, base, ""); err != nil {
		stop()
		return fmt.Errorf("metrics scrape before restart: %w", err)
	}
	stop() // SIGINT + wait: the graceful-drain path, not a hard kill

	// --- Phase 2: a fresh process over the same cache dir. ---
	base2, stop2, err := startDaemon(ctx, daemon, "-cache-dir", cacheDir, "-workers", "4")
	if err != nil {
		return err
	}
	defer stop2()
	client2 := service.NewClient(base2)
	warm, err := client2.Models(ctx, modelRequest())
	if err != nil {
		return fmt.Errorf("model extraction after restart: %w", err)
	}
	if !warm.Cached {
		return fmt.Errorf("restarted daemon rebuilt the model set instead of serving the disk tier")
	}
	if warm.Key != first.Key {
		return fmt.Errorf("model key drifted across restart: %s vs %s", warm.Key, first.Key)
	}
	if _, err := client2.Analyze(ctx, service.AnalyzeRequest{App: "lulesh"}); err != nil {
		return fmt.Errorf("analyze after restart: %w", err)
	}
	st, err := client2.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats after restart: %w", err)
	}
	if st.Models.DiskHits == 0 {
		return fmt.Errorf("restarted registry reports %d disk hits, want > 0 (stats: %+v)", st.Models.DiskHits, st.Models)
	}
	if st.Cache.DiskHits == 0 {
		return fmt.Errorf("restarted PreparedCache reports %d disk hits, want > 0 (stats: %+v)", st.Cache.DiskHits, st.Cache)
	}
	fmt.Printf("loadsmoke: restart: model disk hits=%d, prepared disk hits=%d, cold misses=%d\n",
		st.Models.DiskHits, st.Cache.DiskHits, st.Models.Misses+st.Cache.Misses)

	// Final scrape, kept as the CI artifact; sanity-check the disk-hit
	// family is present and non-zero in the exposition itself.
	text, err := scrapeMetrics(ctx, base2, metricsOut)
	if err != nil {
		return fmt.Errorf("metrics scrape after restart: %w", err)
	}
	if !strings.Contains(text, `perftaintd_cache_disk_hits_total{cache="models"}`) {
		return fmt.Errorf("/metrics exposition is missing the disk-hit family")
	}
	return nil
}

// modelRequest is the small LULESH modeling design both phases submit;
// identical bytes, so the second phase addresses the first's artifact.
func modelRequest() service.ModelRequest {
	return service.ModelRequest{
		App:    "lulesh",
		Params: []string{"p", "size"},
		Axes: []service.SweepAxis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{4, 5}},
		},
		Reps: 2, Seed: 3, Batch: 2,
	}
}

// storm runs the mixed-traffic load: each client loops over analyze,
// sweep, and stats requests under its own X-Client-ID, classifying every
// outcome. 429s are expected (the point of the limiter); 5xx are fatal.
func storm(ctx context.Context, base string, clients, perClient int, cnt *counters) error {
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("loadsmoke-%d", c)
			hc := &http.Client{Transport: clientIDTransport{id: id}}
			cl := &service.Client{BaseURL: base, HTTP: hc}
			for i := 0; i < perClient; i++ {
				var err error
				switch i % 4 {
				case 0, 1:
					_, err = cl.Analyze(ctx, service.AnalyzeRequest{App: "lulesh"})
				case 2:
					err = cl.Sweep(ctx, service.SweepRequest{
						App:  "lulesh",
						Axes: []service.SweepAxis{{Param: "p", Values: []float64{2, 4}}},
					}, func(service.SweepLine) error { return nil })
				default:
					_, err = cl.Stats(ctx)
				}
				classify(err, cnt)
			}
		}(c)
	}
	wg.Wait()
	return ctx.Err()
}

// classify buckets one request outcome.
func classify(err error, cnt *counters) {
	if err == nil {
		cnt.ok.Add(1)
		return
	}
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		switch {
		case apiErr.StatusCode == http.StatusTooManyRequests:
			cnt.rateLimited.Add(1)
		case apiErr.StatusCode >= 500:
			cnt.serverErrs.Add(1)
		default:
			cnt.otherErrs.Add(1)
		}
		return
	}
	cnt.otherErrs.Add(1)
}

// clientIDTransport stamps every request with a stable X-Client-ID so
// each simulated client owns its own admission bucket.
type clientIDTransport struct{ id string }

// RoundTrip implements http.RoundTripper.
func (t clientIDTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	req.Header.Set(service.ClientIDHeader, t.id)
	return http.DefaultTransport.RoundTrip(req)
}

// scrapeMetrics GETs /metrics, optionally writing the exposition to out.
func scrapeMetrics(ctx context.Context, base, out string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		return "", fmt.Errorf("unexpected /metrics content type %q", resp.Header.Get("Content-Type"))
	}
	if out != "" {
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			return "", err
		}
	}
	return string(raw), nil
}

// startDaemon launches the perftaintd binary on an OS-assigned port with
// extra flags and returns the base URL plus a stop function that sends
// SIGINT and waits for the graceful drain.
func startDaemon(ctx context.Context, path string, extra ...string) (string, func(), error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.CommandContext(ctx, path, args...)
	cmd.Stdout = os.Stderr
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start daemon %s: %w", path, err)
	}
	addrc := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`listening on (\S+)`)
		sc := bufio.NewScanner(stderr)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, line)
			if !announced {
				if m := re.FindStringSubmatch(line); m != nil {
					announced = true
					addrc <- m[1]
				}
			}
		}
		close(addrc)
	}()
	stop := func() {
		_ = cmd.Process.Signal(os.Interrupt)
		_ = cmd.Wait()
	}
	select {
	case addr, ok := <-addrc:
		if !ok {
			stop()
			return "", nil, fmt.Errorf("daemon exited before announcing its address")
		}
		return "http://" + addr, stop, nil
	case <-ctx.Done():
		stop()
		return "", nil, fmt.Errorf("daemon never announced its address: %w", ctx.Err())
	}
}
