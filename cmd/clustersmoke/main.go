// Command clustersmoke is the CI end-to-end check for distributed sweep
// execution: it boots a real coordinator daemon plus two worker daemons,
// runs the LULESH model extraction through the coordinator, SIGKILLs one
// worker as soon as the first design point streams back, and gates on
// the surviving cluster producing the exact same model-set registry key
// (and byte-identical model set) as an in-process single-node
// extraction. It also asserts that shards were actually dispatched to
// workers — a cluster that quietly fell back to local execution would
// pass the identity check while proving nothing — and scrapes the
// coordinator's final /metrics into a file for the CI artifact upload.
//
//	go build -o bin/perftaintd ./cmd/perftaintd
//	go run ./cmd/clustersmoke -daemon bin/perftaintd -metrics-out cluster_metrics.txt
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/modelreg"
	"repro/internal/runner"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clustersmoke: ")
	daemon := flag.String("daemon", "", "path to the perftaintd binary (required)")
	metricsOut := flag.String("metrics-out", "", "write the coordinator's final /metrics scrape to this file")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall smoke deadline")
	flag.Parse()
	if *daemon == "" {
		log.Fatal("clustersmoke requires -daemon PATH (a perftaintd binary)")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *daemon, *metricsOut); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clustersmoke: OK — distributed extraction matched the single-node golden through a mid-sweep worker kill")
}

// smokeConfig is the modeling design under test: the quickstart LULESH
// design (16 points), big enough to shard across two workers and to
// still be in flight when the kill lands.
func smokeConfig() modelreg.Config {
	return modelreg.Config{
		App:      "lulesh",
		Params:   []string{"p", "size"},
		Defaults: map[string]float64{"regions": 4, "balance": 2, "cost": 1, "iters": 2},
		Axes: []modelreg.Axis{
			{Param: "p", Values: []float64{2, 4, 8, 16}},
			{Param: "size", Values: []float64{4, 5, 6, 7}},
		},
		Reps:     3,
		Seed:     7,
		RelNoise: 0.02,
		Batch:    5,
	}
}

func run(ctx context.Context, daemon, metricsOut string) error {
	// The golden: the same extraction, single-node and in-process. Its
	// registry key is content-addressed over spec + design, so the
	// cluster reproducing the key AND the model set proves the sharded
	// sweep fed the fitter the exact same measurements in the exact
	// same order.
	app := service.BundledApps()["lulesh"]
	cfg := service.ResolveModelDefaults(app, smokeConfig())
	spec := app.New()
	prep, err := core.Prepare(spec)
	if err != nil {
		return fmt.Errorf("prepare golden spec: %w", err)
	}
	wantKey := modelreg.Key(core.SpecDigest(spec), cfg)
	log.Printf("computing single-node golden (key %s)", wantKey)
	goldenMS, err := modelreg.Extract(ctx, runner.New(), prep, cfg, nil)
	if err != nil {
		return fmt.Errorf("single-node golden extraction: %w", err)
	}
	goldenJSON, err := json.Marshal(goldenMS)
	if err != nil {
		return err
	}

	coord, err := startDaemon(ctx, daemon, "-coordinator")
	if err != nil {
		return fmt.Errorf("start coordinator: %w", err)
	}
	defer coord.stop()
	var workers [2]*proc
	for i := range workers {
		w, err := startDaemon(ctx, daemon, "-worker", "-join", coord.base)
		if err != nil {
			return fmt.Errorf("start worker %d: %w", i, err)
		}
		defer w.stop()
		workers[i] = w
	}

	client := service.NewClient(coord.base)
	if err := waitLiveWorkers(ctx, client, len(workers)); err != nil {
		return err
	}
	log.Printf("cluster up: coordinator %s, %d live workers", coord.base, len(workers))

	// Stream the extraction through the coordinator and SIGKILL one
	// worker the moment the first design point lands — from then on the
	// cluster must finish on the survivor (plus coordinator retries)
	// without perturbing a single byte of the artifact.
	var killOnce sync.Once
	req := modelRequest(smokeConfig())
	resp, err := client.ModelsStream(ctx, req, func(ev modelreg.Event) {
		if ev.Type == "point" {
			killOnce.Do(func() {
				log.Printf("first design point streamed (%d/%d) — SIGKILLing worker %s", ev.Points, ev.Total, workers[0].base)
				_ = workers[0].cmd.Process.Kill()
			})
		}
	})
	if err != nil {
		return fmt.Errorf("distributed extraction: %w", err)
	}

	if resp.Key != wantKey {
		return fmt.Errorf("registry key diverged: cluster produced %s, single-node golden is %s", resp.Key, wantKey)
	}
	clusterJSON, err := json.Marshal(resp.ModelSet)
	if err != nil {
		return err
	}
	if !bytes.Equal(clusterJSON, goldenJSON) {
		return fmt.Errorf("model set diverged from the single-node golden despite equal keys (%d vs %d bytes)",
			len(clusterJSON), len(goldenJSON))
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Cluster == nil || st.Cluster.Role != "coordinator" {
		return fmt.Errorf("coordinator /v1/stats has no coordinator cluster block: %+v", st.Cluster)
	}
	if st.Cluster.ShardsDispatched == 0 {
		return fmt.Errorf("no shards were dispatched to workers — the sweep ran locally, proving nothing")
	}
	log.Printf("cluster stats: %d shards dispatched, %d local, %d retries, %d heartbeat misses",
		st.Cluster.ShardsDispatched, st.Cluster.ShardsLocal, st.Cluster.ShardRetries, st.Cluster.HeartbeatMisses)

	if metricsOut != "" {
		if err := scrapeMetrics(ctx, coord.base, metricsOut); err != nil {
			return err
		}
		log.Printf("wrote coordinator /metrics scrape to %s", metricsOut)
	}
	return nil
}

// modelRequest is the wire form of the smoke design.
func modelRequest(cfg modelreg.Config) service.ModelRequest {
	req := service.ModelRequest{
		App:      cfg.App,
		Params:   cfg.Params,
		Defaults: cfg.Defaults,
		Reps:     cfg.Reps,
		Seed:     cfg.Seed,
		RelNoise: cfg.RelNoise,
		Batch:    cfg.Batch,
		Metrics:  cfg.Metrics,
	}
	for _, ax := range cfg.Axes {
		req.Axes = append(req.Axes, service.SweepAxis{Param: ax.Param, Values: ax.Values})
	}
	return req
}

// proc is one launched daemon: its base URL and the handle to stop it.
type proc struct {
	base string
	cmd  *exec.Cmd
}

func (p *proc) stop() {
	_ = p.cmd.Process.Signal(os.Interrupt)
	_ = p.cmd.Wait()
}

// startDaemon launches the perftaintd binary on an OS-assigned port with
// the given extra arguments and returns once it announces its address.
// Binding ":0" and reading the announcement avoids port races on busy
// CI runners (the same discipline as cmd/servicesmoke).
func startDaemon(ctx context.Context, path string, extra ...string) (*proc, error) {
	cmd := exec.CommandContext(ctx, path, append([]string{"-addr", "127.0.0.1:0"}, extra...)...)
	cmd.Stdout = os.Stderr
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start daemon %s: %w", path, err)
	}
	addrc := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`listening on (\S+)`)
		sc := bufio.NewScanner(stderr)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, line)
			if !announced {
				if m := re.FindStringSubmatch(line); m != nil {
					announced = true
					addrc <- m[1]
				}
			}
		}
		close(addrc)
	}()
	stop := func() {
		_ = cmd.Process.Signal(os.Interrupt)
		_ = cmd.Wait()
	}
	select {
	case addr, ok := <-addrc:
		if !ok {
			stop()
			return nil, fmt.Errorf("daemon exited before announcing its address")
		}
		return &proc{base: "http://" + addr, cmd: cmd}, nil
	case <-ctx.Done():
		stop()
		return nil, fmt.Errorf("daemon never announced its address: %w", ctx.Err())
	}
}

// waitLiveWorkers polls the coordinator's stats until n workers are live.
func waitLiveWorkers(ctx context.Context, client *service.Client, n int) error {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		st, err := client.Stats(ctx)
		if err == nil && st.Cluster != nil && st.Cluster.LiveWorkers >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster never reached %d live workers: %w", n, ctx.Err())
		case <-t.C:
		}
	}
}

// scrapeMetrics fetches the coordinator's Prometheus exposition and
// writes it to path for the CI artifact upload.
func scrapeMetrics(ctx context.Context, base, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape /metrics: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
