// Command servicesmoke is the CI end-to-end check for the analysis
// daemon: it launches a real perftaintd process, submits the LULESH
// taint configuration through the HTTP client twice, verifies the
// returned census and dependencies against the golden snapshot under
// internal/core/testdata, and asserts that the second submission was
// served from the PreparedCache (hits > 0 in /v1/stats). It exits
// non-zero with a diagnostic on any mismatch.
//
//	go build -o bin/perftaintd ./cmd/perftaintd
//	go run ./cmd/servicesmoke -daemon bin/perftaintd
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"reflect"
	"regexp"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// goldenSnapshot mirrors the schema of internal/core/testdata/*.json.
type goldenSnapshot struct {
	Census       core.Census         `json:"census"`
	FuncDeps     map[string][]string `json:"func_deps"`
	Instructions int64               `json:"instructions"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("servicesmoke: ")
	daemon := flag.String("daemon", "", "path to the perftaintd binary (empty = in-process server)")
	golden := flag.String("golden", "internal/core/testdata/lulesh_golden.json", "golden snapshot to compare against")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall smoke deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *daemon, *golden); err != nil {
		log.Fatal(err)
	}
	fmt.Println("servicesmoke: OK — golden census served, PreparedCache hit on resubmission")
}

func run(ctx context.Context, daemon, goldenPath string) error {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("read golden snapshot: %w", err)
	}
	var want goldenSnapshot
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("parse golden snapshot: %w", err)
	}

	base, stop, err := startDaemon(ctx, daemon)
	if err != nil {
		return err
	}
	defer stop()

	client := service.NewClient(base)
	if err := waitHealthy(ctx, client); err != nil {
		return err
	}

	// Submit the LULESH taint config twice: identical results, and the
	// second submission must be a cache hit.
	var jobs [2]*service.JobInfo
	for i := range jobs {
		job, err := client.Analyze(ctx, service.AnalyzeRequest{App: "lulesh"})
		if err != nil {
			return fmt.Errorf("analyze #%d: %w", i+1, err)
		}
		if job.Status != service.StatusDone || job.Result == nil {
			return fmt.Errorf("analyze #%d: job %s finished %q (error: %s)", i+1, job.ID, job.Status, job.Error)
		}
		jobs[i] = job
	}

	for i, job := range jobs {
		res := job.Result
		if res.Census != want.Census {
			return fmt.Errorf("submission %d: census drifted from %s:\n got: %+v\nwant: %+v",
				i+1, goldenPath, res.Census, want.Census)
		}
		if res.Instructions != want.Instructions {
			return fmt.Errorf("submission %d: instructions = %d, golden says %d",
				i+1, res.Instructions, want.Instructions)
		}
		if !reflect.DeepEqual(res.FuncDeps, want.FuncDeps) {
			return fmt.Errorf("submission %d: function dependencies drifted from golden snapshot", i+1)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Cache.Misses != 1 {
		return fmt.Errorf("cache misses = %d, want exactly 1 (one spec, one build)", st.Cache.Misses)
	}
	if st.Cache.Hits < 1 {
		return fmt.Errorf("cache hits = %d, want >= 1 — the second submission did not reuse the Prepared", st.Cache.Hits)
	}
	if st.Jobs.Completed < 2 {
		return fmt.Errorf("completed jobs = %d, want >= 2", st.Jobs.Completed)
	}
	fmt.Printf("servicesmoke: stats: %d hit(s), %d miss(es), %d completed job(s)\n",
		st.Cache.Hits, st.Cache.Misses, st.Jobs.Completed)
	return nil
}

// startDaemon launches the perftaintd binary (or an in-process server
// when path is empty) on an OS-assigned port and returns the base URL.
// Both paths bind ":0" and learn the real port from the daemon itself —
// picking a free port up front and rebinding it would race other
// processes on a busy CI runner.
func startDaemon(ctx context.Context, path string) (string, func(), error) {
	if path == "" {
		srv, err := service.NewServer(service.Options{})
		if err != nil {
			return "", nil, err
		}
		ready := make(chan string, 1)
		sctx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- srv.ListenAndServe(sctx, "127.0.0.1:0", ready) }()
		boundAddr := <-ready
		return "http://" + boundAddr, func() { cancel(); <-done }, nil
	}
	cmd := exec.CommandContext(ctx, path, "-addr", "127.0.0.1:0")
	cmd.Stdout = os.Stderr
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start daemon %s: %w", path, err)
	}
	// The daemon announces "listening on 127.0.0.1:<port>" once bound;
	// scan its stderr for that line (and keep relaying the rest).
	addrc := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`listening on (\S+)`)
		sc := bufio.NewScanner(stderr)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, line)
			if !announced {
				if m := re.FindStringSubmatch(line); m != nil {
					announced = true
					addrc <- m[1]
				}
			}
		}
		close(addrc)
	}()
	stop := func() {
		_ = cmd.Process.Signal(os.Interrupt)
		_ = cmd.Wait()
	}
	select {
	case addr, ok := <-addrc:
		if !ok {
			stop()
			return "", nil, fmt.Errorf("daemon exited before announcing its address")
		}
		return "http://" + addr, stop, nil
	case <-ctx.Done():
		stop()
		return "", nil, fmt.Errorf("daemon never announced its address: %w", ctx.Err())
	}
}

func waitHealthy(ctx context.Context, client *service.Client) error {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		if err := client.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("daemon never became healthy: %w", ctx.Err())
		case <-t.C:
		}
	}
}
