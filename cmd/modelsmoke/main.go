// Command modelsmoke compares a generated model report against its
// golden snapshot modulo float tolerance: the textual structure (table
// layout, function names, model term shapes, attribution statuses) must
// match exactly, while numeric literals may drift within a relative
// tolerance. CI runs it after `go run ./examples/modeling` so the
// end-to-end model extraction is gated without making the gate flaky on
// benign least-squares jitter across Go releases or architectures.
//
//	go run ./examples/modeling -md report.md
//	go run ./cmd/modelsmoke -got report.md -golden internal/modelreg/testdata/lulesh_report.golden.md
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelsmoke: ")
	got := flag.String("got", "", "generated report")
	golden := flag.String("golden", "", "golden snapshot to compare against")
	tol := flag.Float64("tol", 2e-2, "relative tolerance for numeric literals")
	flag.Parse()
	if *got == "" || *golden == "" {
		log.Fatal("usage: modelsmoke -got FILE -golden FILE [-tol 2e-2]")
	}
	gotRaw, err := os.ReadFile(*got)
	if err != nil {
		log.Fatal(err)
	}
	wantRaw, err := os.ReadFile(*golden)
	if err != nil {
		log.Fatal(err)
	}
	if err := compare(string(wantRaw), string(gotRaw), *tol); err != nil {
		log.Fatalf("report drifted from %s:\n%v\n(re-bless with `go test ./internal/modelreg -run Golden -update` if intentional)",
			*golden, err)
	}
	log.Printf("report matches %s within tolerance %g", *golden, *tol)
}

// compare checks got against want line by line: text must be identical,
// numbers within relative tolerance.
func compare(want, got string, tol float64) error {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	if len(wl) != len(gl) {
		return fmt.Errorf("line count differs: want %d, got %d", len(wl), len(gl))
	}
	for i := range wl {
		if err := compareLine(wl[i], gl[i], tol); err != nil {
			return fmt.Errorf("line %d: %v\n  want: %s\n  got:  %s", i+1, err, wl[i], gl[i])
		}
	}
	return nil
}

func compareLine(want, got string, tol float64) error {
	wt, wn := tokenize(want)
	gt, gn := tokenize(got)
	if wt != gt {
		return fmt.Errorf("text differs")
	}
	if len(wn) != len(gn) {
		return fmt.Errorf("numeric token count differs (%d vs %d)", len(wn), len(gn))
	}
	for i := range wn {
		if !close(wn[i], gn[i], tol) {
			return fmt.Errorf("number %d: %g vs %g beyond tolerance", i+1, wn[i], gn[i])
		}
	}
	return nil
}

// close reports a relative match, with an absolute floor for values
// near zero (fit constants can legitimately hover around ±1e-9).
func close(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-9 {
		return d < 1e-9
	}
	return d/scale <= tol
}

// tokenize splits a line into its textual skeleton (with every numeric
// literal replaced by #) and the list of numbers in order.
func tokenize(s string) (string, []float64) {
	var text strings.Builder
	var nums []float64
	i := 0
	for i < len(s) {
		j := scanNumber(s, i)
		if j > i {
			v, err := strconv.ParseFloat(s[i:j], 64)
			if err == nil {
				nums = append(nums, v)
				text.WriteByte('#')
				i = j
				continue
			}
		}
		text.WriteByte(s[i])
		i++
	}
	return text.String(), nums
}

// scanNumber returns the end of a float literal starting at i, or i
// when none starts there. A digit must lead (signs are treated as text:
// model expressions use "+ -2.7e-06" where the sign is an operator).
func scanNumber(s string, i int) int {
	j := i
	digits := func() bool {
		start := j
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		return j > start
	}
	if !digits() {
		return i
	}
	if j < len(s) && s[j] == '.' {
		j++
		digits()
	}
	if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
		k := j + 1
		if k < len(s) && (s[k] == '+' || s[k] == '-') {
			k++
		}
		save := j
		j = k
		if !digits() {
			j = save
		}
	}
	return j
}
