// Command perftaintd is the Perf-Taint analysis daemon: a long-running
// HTTP service that prepares each application spec once (content-addressed
// PreparedCache) and fans analysis jobs out over a bounded worker pool.
//
//	perftaintd -addr :7070 -workers 8 -cache-entries 16
//
// Daemons also cluster: a coordinator accepts the ordinary client API
// and shards sweeps and model extractions across registered workers,
// retrying failed shards and keeping the merged output byte-identical
// to a single-node run.
//
//	perftaintd -addr :7070 -coordinator
//	perftaintd -addr :7071 -worker -join http://coord-host:7070
//	perftaintd -addr :7072 -worker -join http://coord-host:7070
//
// Endpoints: POST /v1/analyze, POST /v1/sweep (NDJSON stream),
// POST /v1/models (sweep+fit with a content-addressed model registry),
// GET /v1/models/{key}, GET /v1/jobs/{id}, GET /v1/stats, GET /healthz,
// plus the cluster surface: POST /v1/shard (any daemon), and on
// coordinators POST /v1/worker/register, POST /v1/worker/heartbeat,
// GET /v1/prepared/{digest}. See internal/service for the wire schema
// and `perftaint submit` / `perftaint model` for ready-made clients.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for the -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/faultinject"
	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("perftaintd: ")
	addr := flag.String("addr", ":7070", "listen address")
	workers := flag.Int("workers", 0, "concurrent analysis jobs (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 16, "PreparedCache capacity (distinct spec contents)")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "default per-job deadline")
	queueDepth := flag.Int("queue-depth", 1024, "maximum queued jobs")
	modelEntries := flag.Int("model-entries", 16, "model registry capacity (distinct spec+design contents)")
	cacheDir := flag.String("cache-dir", "", "persistent cache root for prepared specs and model sets; restarts start warm (empty = memory only)")
	rate := flag.Float64("rate", 0, "per-client admission rate in tokens/second (1 analysis = 1 token, sweeps cost design size); 0 disables rate limiting")
	burst := flag.Float64("burst", 0, "per-client token-bucket capacity (0 = max(1, 2*rate))")
	maxBody := flag.Int64("max-body", 0, "maximum JSON request body in bytes (0 = 4 MiB)")
	engine := flag.String("engine", "fast", "interpreter tier for analysis jobs: fast, reference, or compiled")
	pprofAddr := flag.String("pprof", "", "optional debug listen address for net/http/pprof (e.g. 127.0.0.1:6060); disabled when empty")
	journalOn := flag.Bool("journal", true, "journal sweep/model progress under <cache-dir>/journal so a restarted daemon resumes interrupted work; requires -cache-dir, ignored without it")
	cluster := cliutil.RegisterClusterFlags(flag.CommandLine)
	flag.Parse()

	// Deterministic fault injection for crash drills: PERFTAINT_FAULTS
	// holds a seeded schedule (see internal/faultinject); empty means none.
	if err := faultinject.InstallFromEnv(os.Getenv(faultinject.EnvVar)); err != nil {
		log.Fatal(err)
	}

	// Opt-in profiling sidecar: the analysis endpoints stay on their own
	// mux, so the debug surface is never exposed on the service address.
	// Hot-path work should start from `go tool pprof
	// http://<pprof-addr>/debug/pprof/profile`, not from a guess.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof debug listener on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	opts := service.Options{
		Workers:        *workers,
		CacheEntries:   *cacheEntries,
		QueueDepth:     *queueDepth,
		JobTimeout:     *jobTimeout,
		ModelEntries:   *modelEntries,
		CacheDir:       *cacheDir,
		Rate:           *rate,
		Burst:          *burst,
		MaxBodyBytes:   *maxBody,
		Engine:         *engine,
		DisableJournal: !*journalOn,
	}
	if err := cluster.Apply(&opts); err != nil {
		log.Fatal(err)
	}
	srv, err := service.NewServer(opts)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ready := make(chan string, 1)
	go func() { log.Printf("listening on %s", <-ready) }()
	if err := srv.ListenAndServe(ctx, *addr, ready); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}
