package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// The -json stream splits a benchmark's name and timing into separate
// output events; the parser must reassemble them, normalize the CPU
// suffix, and keep the minimum across -count repetitions.
const jsonStream = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"BenchmarkTaintedRun/quickstart/fast\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkTaintedRun/quickstart/fast-8         \t"}
{"Action":"output","Package":"repro","Output":"       5\t   5143522 ns/op\t        27.07 ns/instr\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkTaintedRun/quickstart/fast-8         \t"}
{"Action":"output","Package":"repro","Output":"       5\t   4000000 ns/op\t        21.50 ns/instr\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkUntaintedRun/milc/fast-8             \t"}
{"Action":"output","Package":"repro","Output":"       5\t  15935711 ns/op\t       124.5 ns/instr\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t0.8s\n"}
`

func TestParseBenchReassemblesJSONStream(t *testing.T) {
	got, err := parseBench(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkTaintedRun/quickstart/fast": 21.50, // min of 27.07 and 21.50
		"BenchmarkUntaintedRun/milc/fast":     124.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %g, want %g", name, got[name], v)
		}
	}
}

func TestParseBenchRawText(t *testing.T) {
	raw := "BenchmarkTaintedRun/milc/fast-4   \t       3\t  16148205 ns/op\t       126.2 ns/instr\n" +
		"BenchmarkNoMetric-4\t 10\t 123 ns/op\n"
	got, err := parseBench(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["BenchmarkTaintedRun/milc/fast"] != 126.2 {
		t.Fatalf("parsed %v, want only milc/fast at 126.2", got)
	}
}

func TestGateVerdicts(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{
		"BenchmarkA": 100,
		"BenchmarkB": 100,
		"BenchmarkC": 100,
	}}
	cases := []struct {
		name     string
		got      map[string]float64
		absolute bool
		fail     bool
	}{
		{"within-band", map[string]float64{"BenchmarkA": 120, "BenchmarkB": 90, "BenchmarkC": 100}, false, false},
		{"regression", map[string]float64{"BenchmarkA": 130, "BenchmarkB": 100, "BenchmarkC": 100}, false, true},
		{"missing-benchmark", map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}, false, true},
		{"extra-benchmark-ok", map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkC": 100, "BenchmarkD": 500}, false, false},
		// A uniform 1.6x shift is hardware, not a regression — the
		// median ratio normalizes it away...
		{"hardware-shift", map[string]float64{"BenchmarkA": 160, "BenchmarkB": 160, "BenchmarkC": 160}, false, false},
		// ...unless normalization is off (same-machine strict mode)...
		{"hardware-shift-absolute", map[string]float64{"BenchmarkA": 160, "BenchmarkB": 160, "BenchmarkC": 160}, true, true},
		// ...or the shift exceeds max_scale (whole-suite slowdown).
		{"global-slowdown", map[string]float64{"BenchmarkA": 300, "BenchmarkB": 300, "BenchmarkC": 300}, false, true},
		// A targeted regression on shifted hardware still trips.
		{"regression-on-shifted-hw", map[string]float64{"BenchmarkA": 250, "BenchmarkB": 160, "BenchmarkC": 160}, false, true},
	}
	for _, tc := range cases {
		if got := gate(base, tc.got, 0.25, tc.absolute); got != tc.fail {
			t.Errorf("%s: gate fail = %v, want %v", tc.name, got, tc.fail)
		}
	}
}

func TestWriteBaselineWidensAndResets(t *testing.T) {
	path := t.TempDir() + "/base.json"
	read := func() Baseline {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var b Baseline
		if err := json.Unmarshal(raw, &b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	writeBaseline(path, map[string]float64{"BenchmarkA": 100, "BenchmarkB": 50, "BenchmarkGone": 7}, false)
	// Widen: slower BenchmarkA wins, faster BenchmarkB keeps the old
	// (wider) value, vanished benchmarks drop, new ones appear.
	writeBaseline(path, map[string]float64{"BenchmarkA": 130, "BenchmarkB": 40, "BenchmarkNew": 9}, false)
	b := read()
	want := map[string]float64{"BenchmarkA": 130, "BenchmarkB": 50, "BenchmarkNew": 9}
	if len(b.Benchmarks) != len(want) {
		t.Fatalf("widened baseline = %v, want %v", b.Benchmarks, want)
	}
	for k, v := range want {
		if b.Benchmarks[k] != v {
			t.Errorf("widened %s = %g, want %g", k, b.Benchmarks[k], v)
		}
	}
	// Thresholds survive; reset discards old values but not thresholds.
	tuned := b
	tuned.MaxRegress = 0.15
	raw, _ := json.Marshal(&tuned)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	writeBaseline(path, map[string]float64{"BenchmarkA": 90}, true)
	b = read()
	if len(b.Benchmarks) != 1 || b.Benchmarks["BenchmarkA"] != 90 {
		t.Fatalf("reset baseline = %v, want only BenchmarkA=90", b.Benchmarks)
	}
	if b.MaxRegress != 0.15 {
		t.Fatalf("reset lost tuned max_regress: %g", b.MaxRegress)
	}
}

func TestHardwareScale(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 100, "C": 100, "D": 100}
	if s := hardwareScale(base, map[string]float64{"A": 150, "B": 150, "C": 150, "D": 150}); s != 1.5 {
		t.Errorf("uniform shift scale = %g, want 1.5", s)
	}
	// One outlier must not drag the median.
	if s := hardwareScale(base, map[string]float64{"A": 100, "B": 100, "C": 100, "D": 900}); s != 1.0 {
		t.Errorf("outlier-resistant scale = %g, want 1.0", s)
	}
	// Too few common benchmarks: normalization off.
	if s := hardwareScale(map[string]float64{"A": 100}, map[string]float64{"A": 150}); s != 1.0 {
		t.Errorf("tiny-suite scale = %g, want 1.0", s)
	}
}

// An improvement beyond the noise bound must stay non-fatal — the gate only
// nudges toward a baseline refresh.
func TestGateImprovementIsNonFatal(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{
		"BenchmarkA": 100,
		"BenchmarkB": 100,
		"BenchmarkC": 100,
	}}
	// One benchmark 2x faster, the others steady: normalization keeps the
	// median at 1, the improvement lands far below 1-allowed, and the gate
	// must still pass.
	got := map[string]float64{"BenchmarkA": 50, "BenchmarkB": 100, "BenchmarkC": 100}
	if gate(base, got, 0.25, false) {
		t.Fatal("gate failed on a pure improvement")
	}
	if gate(base, got, 0.25, true) {
		t.Fatal("absolute gate failed on a pure improvement")
	}
}

func TestWriteSamples(t *testing.T) {
	path := t.TempDir() + "/samples.json"
	writeSamples(path, map[string]float64{"BenchmarkA": 12.5})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Metric     string             `json:"metric"`
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Metric != metricName || out.Benchmarks["BenchmarkA"] != 12.5 {
		t.Fatalf("samples round trip: %+v", out)
	}
}
