// Command benchgate is the CI benchmark regression gate: it compares the
// interpreter benchmarks' ns/instr metric against a checked-in baseline
// and fails the build when any benchmark regresses beyond the allowed
// fraction.
//
// Gate mode (exit 1 on regression):
//
//	go test -run '^$' -bench 'BenchmarkTaintedRun/|BenchmarkUntaintedRun/' \
//	    -benchtime 10x -count 5 -json . | go run ./cmd/benchgate -baseline BENCH_baseline.json
//
// Baseline refresh (after an intentional perf change, on a quiet machine):
//
//	go test -run '^$' -bench 'BenchmarkTaintedRun/|BenchmarkUntaintedRun/' \
//	    -benchtime 10x -count 5 -json . | go run ./cmd/benchgate -update BENCH_baseline.json
//
// Input is the `go test -json` stream (raw `go test -bench` text works
// too). Benchmark names are normalized by stripping the -N GOMAXPROCS
// suffix so baselines transfer across core counts, and repeated samples
// of one benchmark (-count N) collapse to their MINIMUM — scheduler and
// cache noise only ever adds time, so min-of-N is the robust estimator
// of what the code can do. The gated metric is ns/instr — nanoseconds
// per interpreted instruction — which tracks engine efficiency rather
// than workload size and is the least machine-entangled timing the suite
// emits.
//
// ns/instr still scales with absolute CPU speed, and the machine that
// refreshes the baseline is rarely the machine that runs the gate. The
// gate therefore divides every current/baseline ratio by the MEDIAN
// ratio across all benchmarks before applying the threshold: a uniform
// hardware shift moves every benchmark equally and cancels out, while a
// targeted regression (one engine, one workload) sticks out of the
// median and trips the gate. The median itself is bounded by the
// baseline's max_scale — a whole-suite slowdown beyond that fails with
// a refresh hint instead of passing as "hardware". -absolute disables
// normalization and compares raw values (same-machine use).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in reference: the gated metric per benchmark.
type Baseline struct {
	// Metric names the gated unit (informational; always "ns/instr").
	Metric string `json:"metric"`
	// MaxRegress is the allowed fractional slowdown (0.25 = +25%).
	// The -max-regress flag overrides it when > 0.
	MaxRegress float64 `json:"max_regress"`
	// MaxScale bounds the median current/baseline ratio: hardware
	// differences up to this factor normalize away, a whole-suite
	// slowdown beyond it fails the gate. <= 0 means 2.5.
	MaxScale float64 `json:"max_scale"`
	// Refresh documents the regeneration command for whoever trips the gate.
	Refresh string `json:"refresh"`
	// Benchmarks maps normalized benchmark name to baseline ns/instr.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// testEvent is the subset of the `go test -json` event schema we read.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches one benchmark result line, e.g.
// "BenchmarkTaintedRun/quickstart/fast-8  3  81350 ns/op  14.10 ns/instr".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// cpuSuffix strips the trailing -N GOMAXPROCS marker from a bench name.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

const metricName = "ns/instr"

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline to gate against")
	update := flag.String("update", "", "refresh the baseline at this path instead of gating (widen-merges with the existing file)")
	reset := flag.Bool("reset", false, "with -update: discard the existing baseline's values instead of widen-merging")
	current := flag.String("current", "-", "bench output to read ('-' = stdin)")
	maxRegress := flag.Float64("max-regress", 0, "allowed fractional slowdown (0 = use baseline's)")
	absolute := flag.Bool("absolute", false, "compare raw ns/instr without hardware normalization")
	samples := flag.String("samples", "", "also write the parsed per-benchmark samples as JSON to this file (CI uploads it as an artifact)")
	flag.Parse()

	in := os.Stdin
	if *current != "-" {
		f, err := os.Open(*current)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(got) == 0 {
		log.Fatalf("no %s benchmark results in input; did the bench run emit the metric?", metricName)
	}
	if *samples != "" {
		writeSamples(*samples, got)
	}

	if *update != "" {
		writeBaseline(*update, got, *reset)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatalf("read baseline: %v (generate one with -update)", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("parse baseline %s: %v", *baselinePath, err)
	}
	allowed := base.MaxRegress
	if *maxRegress > 0 {
		allowed = *maxRegress
	}
	if allowed <= 0 {
		allowed = 0.25
	}

	fail := gate(base, got, allowed, *absolute)
	if fail {
		log.Printf("benchmark regression gate FAILED (allowed slowdown: %.0f%%)", allowed*100)
		log.Printf("if this slowdown is intentional, refresh the baseline: %s", base.Refresh)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), allowed*100)
}

// gate prints a verdict per benchmark and reports whether any regressed.
func gate(base Baseline, got map[string]float64, allowed float64, absolute bool) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	scale := 1.0
	if !absolute {
		scale = hardwareScale(base.Benchmarks, got)
		fmt.Printf("benchgate: hardware scale (median current/baseline ratio): %.3f\n", scale)
	}
	fail := false
	maxScale := base.MaxScale
	if maxScale <= 0 {
		maxScale = 2.5
	}
	if scale > maxScale {
		log.Printf("WHOLE-SUITE SLOWDOWN: median ratio %.2f exceeds max_scale %.2f — "+
			"either a global regression or slower CI hardware (refresh the baseline if the latter)",
			scale, maxScale)
		fail = true
	}

	improved := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		cur, ok := got[name]
		if !ok {
			// A vanished benchmark means the gate silently narrows; treat
			// it as a failure so renames update the baseline consciously.
			log.Printf("MISSING  %-45s baseline %.3f %s, no current result", name, want, metricName)
			fail = true
			continue
		}
		ratio := cur / want / scale
		verdict := "ok      "
		switch {
		case ratio > 1+allowed:
			verdict = "REGRESS "
			fail = true
		case ratio < 1-allowed:
			// Improvement beyond the gate's own noise bound: the baseline
			// no longer describes this benchmark. Never fatal — speedups
			// must not break CI — but worth a stale-baseline nudge below.
			verdict = "faster  "
			improved++
		case ratio < 0.8:
			verdict = "faster  "
		}
		fmt.Printf("benchgate: %s%-45s %8.3f -> %8.3f %s (%+.1f%% normalized)\n",
			verdict, name, want, cur, metricName, (ratio-1)*100)
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			log.Printf("note: %s not in baseline (add it via -update)", name)
		}
	}
	// A uniform whole-suite speedup normalizes away (scale < 1), so the
	// per-benchmark counter alone would miss the most common stale-baseline
	// cause; mirror the max_scale slowdown check on the fast side.
	suiteFaster := !absolute && scale < 1-allowed
	if (improved > 0 || suiteFaster) && !fail {
		switch {
		case improved > 0:
			log.Printf("baseline stale — %d benchmark(s) improved beyond the %.0f%% noise bound; "+
				"consider re-tightening the gate with the refresh command (add -reset after an intentional speedup): %s",
				improved, allowed*100, base.Refresh)
		default:
			log.Printf("baseline stale — the whole suite runs %.0f%% faster than baseline (median ratio %.2f); "+
				"consider re-tightening the gate with the refresh command (add -reset after an intentional speedup): %s",
				(1-scale)*100, scale, base.Refresh)
		}
	}
	return fail
}

// writeSamples dumps the parsed per-benchmark minima (the gate's input
// after name normalization and min-of-count collapsing) as JSON, so CI can
// attach the raw evidence behind a verdict to the workflow run.
func writeSamples(path string, got map[string]float64) {
	out := struct {
		Metric     string             `json:"metric"`
		Benchmarks map[string]float64 `json:"benchmarks"`
	}{Metric: metricName, Benchmarks: got}
	raw, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		log.Fatal(err)
	}
}

// hardwareScale is the median current/baseline ratio over the
// benchmarks present on both sides — the best single estimate of "this
// machine vs the baseline machine". With fewer than 3 common benchmarks
// the median is too easy for one real regression to drag, so
// normalization is disabled (scale 1).
func hardwareScale(baseline, got map[string]float64) float64 {
	var ratios []float64
	for name, want := range baseline {
		if cur, ok := got[name]; ok && want > 0 {
			ratios = append(ratios, cur/want)
		}
	}
	if len(ratios) < 3 {
		return 1
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		return ratios[mid]
	}
	return (ratios[mid-1] + ratios[mid]) / 2
}

// parseBench extracts the ns/instr metric per normalized benchmark name
// from a `go test -json` stream or raw bench text. test2json splits a
// benchmark's name and its timing into separate output events (the name
// is printed before the run, without a newline), so output fragments are
// reassembled into full text lines before parsing.
func parseBench(f io.Reader) (map[string]float64, error) {
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("bad -json event: %w", err)
			}
			if ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		name, val, ok := parseLine(strings.TrimSpace(line))
		if ok {
			if prev, seen := out[name]; !seen || val < prev {
				out[name] = val
			}
		}
	}
	return out, nil
}

// parseLine pulls (normalized name, ns/instr) out of one bench line.
func parseLine(line string) (string, float64, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return "", 0, false
	}
	fields := strings.Fields(m[2])
	for i := 1; i < len(fields); i++ {
		if fields[i] == metricName {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return "", 0, false
			}
			return cpuSuffix.ReplaceAllString(m[1], ""), v, true
		}
	}
	return "", 0, false
}

// writeBaseline refreshes the baseline file. By default it WIDENS: per
// benchmark, the larger of the existing and the new value wins, so
// running the refresh a few times folds in every performance mode the
// machine exhibits (some benchmarks are bimodal across process
// invocations — alignment, ASLR — and gating against the fast mode
// alone would flake). Benchmarks absent from the new run are dropped
// (renames must not linger as MISSING failures). reset discards the old
// values entirely — the right move after an intentional speedup, so the
// gate re-tightens around the new performance. Threshold fields always
// survive a rewrite.
func writeBaseline(path string, got map[string]float64, reset bool) {
	base := Baseline{
		Metric:     metricName,
		MaxRegress: 0.25,
		MaxScale:   2.5,
		Refresh: "go test -run '^$' -bench 'BenchmarkTaintedRun/|BenchmarkUntaintedRun/' " +
			"-benchtime 10x -count 5 -json . | go run ./cmd/benchgate -update BENCH_baseline.json",
		Benchmarks: got,
	}
	if raw, err := os.ReadFile(path); err == nil {
		var prev Baseline
		if json.Unmarshal(raw, &prev) == nil {
			// Tuned thresholds are policy and survive; the refresh string
			// is documentation of the CURRENT recipe and is always
			// restamped, so a stale command can never propagate.
			if prev.MaxRegress > 0 {
				base.MaxRegress = prev.MaxRegress
			}
			if prev.MaxScale > 0 {
				base.MaxScale = prev.MaxScale
			}
			if !reset {
				for name, v := range prev.Benchmarks {
					if cur, ok := base.Benchmarks[name]; ok && v > cur {
						base.Benchmarks[name] = v
					}
				}
			}
		}
	}
	raw, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	log.Printf("wrote %s with %d benchmarks: %s", path, len(names), strings.Join(names, ", "))
}
