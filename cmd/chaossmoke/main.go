// Command chaossmoke is the CI crash-resilience gate: it drives real
// perftaintd processes — a coordinator with a durable journal plus a
// registered worker — through the failure modes the journal exists for,
// and fails loudly unless every run ends in the byte-identical artifact
// or a clean typed error.
//
// Three phases:
//
//  1. Golden: an unfaulted standalone daemon sweeps the reference
//     design; its stream is the byte-level contract for everything after.
//  2. Kill/resume: a coordinator+worker cluster runs the same sweep; the
//     coordinator is SIGKILLed mid-stream after two lines, restarted on
//     the same address and cache dir, and the retrying client must
//     observe every design point exactly once with bytes equal to the
//     golden stream. The restarted coordinator's /metrics must show the
//     journal replay, and its journal must be fully compacted.
//  3. Fault schedules: seeded faultinject schedules (PERFTAINT_FAULTS)
//     are handed to fresh clusters through the environment; each run
//     must reproduce the golden artifact (job IDs may shift when a fault
//     kills an acceptance before it is durable) or fail cleanly.
//
// The /metrics scrape of the restarted coordinator is written to
// -metrics-out so CI can archive the journal counters as an artifact.
//
//	chaossmoke -daemon ./perftaintd -schedules 25 -metrics-out chaos_metrics.txt
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/service"
)

var (
	daemonPath = flag.String("daemon", "./perftaintd", "path to the perftaintd binary under test")
	schedules  = flag.Int("schedules", 25, "seeded fault schedules to sweep in phase 3")
	metricsOut = flag.String("metrics-out", "chaos_metrics.txt", "file the restarted coordinator's /metrics scrape is written to")
)

// sweepReq is the reference design every phase runs.
func sweepReq() service.SweepRequest {
	return service.SweepRequest{
		App: "lulesh",
		Axes: []service.SweepAxis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{10, 14}},
		},
	}
}

// daemon is one spawned perftaintd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string // host:port it listens on
	base string // http://addr
}

// startDaemon spawns perftaintd on addr with extra args and environment
// entries, retrying briefly in case the previous owner of the port is
// still letting go of it (the kill/restart phase reuses addresses).
func startDaemon(addr string, extraEnv []string, args ...string) (*daemon, error) {
	full := append([]string{"-addr", addr}, args...)
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		cmd := exec.Command(*daemonPath, full...)
		cmd.Env = append(os.Environ(), extraEnv...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		d := &daemon{cmd: cmd, addr: addr, base: "http://" + addr}
		if err := waitHealthy(d.base, 10*time.Second); err == nil {
			return d, nil
		} else {
			lastErr = err
		}
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("daemon on %s never became healthy: %w", addr, lastErr)
}

// freeAddr reserves an ephemeral localhost port and returns it.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("reserve port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHealthy polls /healthz until it answers 200 or the deadline hits.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no healthy answer within %v (last: %v)", timeout, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitLiveWorkers polls the coordinator's stats until n workers are live.
func waitLiveWorkers(base string, n int, timeout time.Duration) error {
	c := service.NewClient(base)
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Stats(context.Background())
		if err == nil && st.Cluster != nil && st.Cluster.LiveWorkers >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster never reached %d live workers", n)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// sigterm asks the daemon to drain and requires a clean exit.
func sigterm(d *daemon, name string) {
	if d == nil || d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("%s did not drain cleanly on SIGTERM: %v", name, err)
		}
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		log.Fatalf("%s hung on SIGTERM", name)
	}
}

// rawSweep POSTs the reference sweep with no resume headers and returns
// the raw stream bytes.
func rawSweep(base string) ([]byte, error) {
	raw, err := json.Marshal(sweepReq())
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweep status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// linesOf re-marshals client-observed sweep lines into the canonical
// stream form so they compare byte-for-byte against a raw golden stream.
func linesOf(lines []service.SweepLine) []byte {
	var buf bytes.Buffer
	for i := range lines {
		raw, _ := json.Marshal(&lines[i])
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// retryingClient builds the reconnecting client every phase drives the
// cluster with.
func retryingClient(base string) *service.Client {
	c := service.NewClient(base)
	c.Retries = 12
	c.RetryBaseDelay = 50 * time.Millisecond
	return c
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("chaossmoke: ")
	flag.Parse()

	golden := phaseGolden()
	phaseKillResume(golden)
	phaseSchedules(golden)

	if err := leakcheck.Settle(5 * time.Second); err != nil {
		log.Fatalf("goroutine leak after all phases: %v", err)
	}
	log.Print("all phases passed")
}

// phaseGolden records the uninterrupted single-daemon stream.
func phaseGolden() []byte {
	addr := freeAddr()
	d, err := startDaemon(addr, nil)
	if err != nil {
		log.Fatalf("golden daemon: %v", err)
	}
	golden, err := rawSweep(d.base)
	if err != nil {
		log.Fatalf("golden sweep: %v", err)
	}
	sigterm(d, "golden daemon")
	log.Printf("phase 1: golden stream captured (%d bytes)", len(golden))
	return golden
}

// phaseKillResume SIGKILLs the coordinator mid-sweep, restarts it on the
// same address and cache dir, and requires the reconnecting client to
// assemble the golden bytes exactly once.
func phaseKillResume(golden []byte) {
	dir, err := os.MkdirTemp("", "chaossmoke-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	coordAddr := freeAddr()
	coordArgs := []string{"-coordinator", "-cache-dir", dir, "-heartbeat-interval", "100ms", "-workers", "1", "-job-timeout", "120s"}
	coord, err := startDaemon(coordAddr, nil, coordArgs...)
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	workerAddr := freeAddr()
	worker, err := startDaemon(workerAddr, nil, "-join", coord.base, "-heartbeat-interval", "100ms")
	if err != nil {
		log.Fatalf("worker: %v", err)
	}
	if err := waitLiveWorkers(coord.base, 1, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	// SIGKILL the coordinator after the second line; respawn it on the
	// same address over the same cache dir while the client backs off.
	var killOnce sync.Once
	respawned := make(chan *daemon, 1)
	var lines []service.SweepLine
	client := retryingClient(coord.base)
	err = client.Sweep(context.Background(), sweepReq(), func(l service.SweepLine) error {
		lines = append(lines, l)
		if len(lines) == 2 {
			killOnce.Do(func() {
				log.Printf("phase 2: SIGKILL coordinator after %d lines", len(lines))
				_ = coord.cmd.Process.Kill()
				_, _ = coord.cmd.Process.Wait()
				go func() {
					d, err := startDaemon(coordAddr, nil, coordArgs...)
					if err != nil {
						log.Fatalf("coordinator restart: %v", err)
					}
					respawned <- d
				}()
			})
		}
		return nil
	})
	if err != nil {
		log.Fatalf("phase 2: sweep across SIGKILL failed: %v", err)
	}
	if got := linesOf(lines); !bytes.Equal(got, golden) {
		log.Fatalf("phase 2: resumed stream diverged from golden:\n got: %s\nwant: %s", got, golden)
	}
	coord2 := <-respawned

	// The restarted coordinator's metrics are the journal's testimony:
	// the sweep was replayed, and nothing is left open.
	resp, err := http.Get(coord2.base + "/metrics")
	if err != nil {
		log.Fatalf("metrics scrape: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := os.WriteFile(*metricsOut, metrics, 0o644); err != nil {
		log.Fatalf("write %s: %v", *metricsOut, err)
	}
	requireMetric(metrics, "perftaintd_journal_replays_total", func(v float64) bool { return v >= 1 })
	requireMetric(metrics, "perftaintd_journal_open_jobs", func(v float64) bool { return v == 0 })
	log.Printf("phase 2: byte-identical resume across SIGKILL; metrics written to %s", *metricsOut)

	sigterm(worker, "worker")
	sigterm(coord2, "restarted coordinator")
}

// requireMetric asserts a sample is present and its value passes ok.
func requireMetric(metrics []byte, name string, ok func(float64) bool) {
	for _, line := range strings.Split(string(metrics), "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
			log.Fatalf("unparseable metric line %q: %v", line, err)
		}
		if !ok(v) {
			log.Fatalf("metric %s = %v violates the gate", name, v)
		}
		return
	}
	log.Fatalf("metric %s missing from /metrics", name)
}

// phaseSchedules sweeps seeded fault schedules through real clusters:
// each seed's schedule rides to both daemons in PERFTAINT_FAULTS, and
// the retrying client must end with the golden artifact or a clean
// typed error.
func phaseSchedules(golden []byte) {
	goldenLines := parseLines(golden)
	failures := 0
	for seed := 0; seed < *schedules; seed++ {
		spec := faultinject.Random(int64(seed), 3).String()
		env := []string{faultinject.EnvVar + "=" + spec}
		dir, err := os.MkdirTemp("", "chaossmoke-*")
		if err != nil {
			log.Fatal(err)
		}
		coord, err := startDaemon(freeAddr(), env,
			"-coordinator", "-cache-dir", dir, "-heartbeat-interval", "100ms", "-shard-timeout", "10s")
		if err != nil {
			log.Fatalf("seed %d: coordinator: %v", seed, err)
		}
		worker, err := startDaemon(freeAddr(), env, "-join", coord.base, "-heartbeat-interval", "100ms")
		if err != nil {
			log.Fatalf("seed %d: worker: %v", seed, err)
		}
		if err := waitLiveWorkers(coord.base, 1, 10*time.Second); err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		lines, err := retryingClient(coord.base).SweepAll(ctx, sweepReq())
		cancel()
		seen := make(map[int]bool)
		for _, l := range lines {
			if seen[l.Index] {
				log.Fatalf("seed %d (%s): duplicate index %d", seed, spec, l.Index)
			}
			seen[l.Index] = true
		}
		if err != nil {
			failures++
			log.Printf("seed %d (%s): clean failure: %v", seed, spec, err)
		} else if !linesMatchModuloJobID(lines, goldenLines) {
			log.Fatalf("seed %d (%s): artifact diverged from golden", seed, spec)
		}

		sigterm(worker, fmt.Sprintf("seed %d worker", seed))
		sigterm(coord, fmt.Sprintf("seed %d coordinator", seed))
		os.RemoveAll(dir)
	}
	log.Printf("phase 3: %d schedules swept, %d clean failures, 0 corruptions", *schedules, failures)
}

// parseLines decodes a raw stream into lines.
func parseLines(raw []byte) []service.SweepLine {
	var out []service.SweepLine
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec service.SweepLine
		if err := json.Unmarshal(line, &rec); err != nil {
			log.Fatalf("bad golden line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// linesMatchModuloJobID compares artifacts ignoring job-ID labels (a
// fault that kills an acceptance append before it is durable legally
// shifts the retried sweep's ID block).
func linesMatchModuloJobID(got, want []service.SweepLine) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		g, w := got[i], want[i]
		g.JobID, w.JobID = "", ""
		gr, _ := json.Marshal(&g)
		wr, _ := json.Marshal(&w)
		if !bytes.Equal(gr, wr) {
			return false
		}
	}
	return true
}
