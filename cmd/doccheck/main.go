// Command doccheck fails when a package is missing godoc: no package
// comment, or exported identifiers (functions, types, methods,
// const/var groups) without a doc comment. It gates the documented
// surface of the repository in CI — the facade and the modeling
// packages must never grow an undocumented export.
//
//	go run ./cmd/doccheck . ./internal/extrap ./internal/service ...
//
// Exit status is non-zero when any finding is reported; each finding is
// one "path: identifier" line on stderr.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: doccheck DIR...")
	}
	findings := 0
	for _, dir := range os.Args[1:] {
		fs, err := checkDir(dir)
		if err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			fmt.Fprintf(os.Stderr, "%s\n", f)
			findings++
		}
	}
	if findings > 0 {
		log.Fatalf("%d undocumented export(s)", findings)
	}
}

// checkDir parses one package directory (tests excluded) and returns
// one finding per undocumented export.
func checkDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files")
	}
	p, err := doc.NewFromFiles(fset, files, dir)
	if err != nil {
		return nil, err
	}

	var out []string
	report := func(ident string) {
		out = append(out, fmt.Sprintf("%s: %s", dir, ident))
	}
	if strings.TrimSpace(p.Doc) == "" {
		report("package " + p.Name + " (no package comment)")
	}
	values := func(vs []*doc.Value, kind string) {
		for _, v := range vs {
			// A documented group covers all its names; otherwise each
			// exported name needs its own per-spec doc comment.
			if strings.TrimSpace(v.Doc) != "" {
				continue
			}
			documented := make(map[string]bool)
			for _, spec := range v.Decl.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Doc == nil || strings.TrimSpace(vs.Doc.Text()) == "" {
					continue
				}
				for _, n := range vs.Names {
					documented[n.Name] = true
				}
			}
			for _, name := range v.Names {
				if ast.IsExported(name) && !documented[name] {
					report(kind + " " + name)
				}
			}
		}
	}
	funcs := func(fs []*doc.Func, recv string) {
		for _, f := range fs {
			if !ast.IsExported(f.Name) || strings.TrimSpace(f.Doc) != "" {
				continue
			}
			if recv != "" {
				report("method " + recv + "." + f.Name)
			} else {
				report("func " + f.Name)
			}
		}
	}
	values(p.Consts, "const")
	values(p.Vars, "var")
	funcs(p.Funcs, "")
	for _, t := range p.Types {
		if ast.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
			report("type " + t.Name)
		}
		values(t.Consts, "const")
		values(t.Vars, "var")
		funcs(t.Funcs, "")
		funcs(t.Methods, t.Name)
	}
	sort.Strings(out)
	return out, nil
}
