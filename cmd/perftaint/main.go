// Command perftaint runs the taint-analysis pipeline on a bundled
// application and emits a JSON report: per-function parameter dependencies,
// symbolic volumes, the pruning census, and the instrumentation filter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/apps"
	"repro/internal/core"
)

type jsonReport struct {
	App          string              `json:"app"`
	Census       core.Census         `json:"census"`
	FuncDeps     map[string][]string `json:"function_dependencies"`
	Volumes      map[string]string   `json:"volumes"`
	Relevant     []string            `json:"instrumentation_filter"`
	Selections   []string            `json:"tainted_selections"`
	Recursion    []string            `json:"recursion_warnings"`
	Instructions int64               `json:"tainted_run_instructions"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("perftaint: ")
	app := flag.String("app", "lulesh", "application to analyze: lulesh or milc")
	flag.Parse()

	var spec *apps.Spec
	var cfg apps.Config
	switch *app {
	case "lulesh":
		spec, cfg = apps.LULESH(), apps.LULESHTaintConfig()
	case "milc":
		spec, cfg = apps.MILC(), apps.MILCTaintConfig()
	default:
		log.Fatalf("unknown app %q (want lulesh or milc)", *app)
	}

	rep, err := core.Analyze(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	out := jsonReport{
		App:          *app,
		Census:       rep.Census([]string{"p", "size"}),
		FuncDeps:     rep.FuncDeps,
		Volumes:      make(map[string]string),
		Recursion:    rep.Volumes.RecursionWarnings,
		Instructions: rep.Instructions,
	}
	for fn := range rep.Relevant {
		out.Relevant = append(out.Relevant, fn)
	}
	sort.Strings(out.Relevant)
	for fn, deps := range rep.FuncDeps {
		if len(deps) > 0 {
			out.Volumes[fn] = rep.Volumes.ByFunc[fn].String()
		}
	}
	for _, sel := range rep.Engine.TaintedSelections() {
		out.Selections = append(out.Selections,
			fmt.Sprintf("%s@block%d params=%s", sel.Key.Func, sel.Key.Block,
				rep.Engine.Table.ExpandString(sel.Labels)))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
