// Command perftaint runs the taint-analysis pipeline on a bundled
// application and emits a JSON report: per-function parameter dependencies,
// symbolic volumes, the pruning census, and the instrumentation filter.
//
// The analyze subcommand is the front door: without -addr it runs the
// pipeline in-process, with -addr it submits to a daemon — same report
// either way. Every subcommand that talks to a daemon takes the same
// -addr flag and accepts a base URL or a bare host:port.
//
//	perftaint analyze -app lulesh                  # local analysis
//	perftaint analyze -addr host:7070 -app lulesh -config p=16
//	perftaint serve -addr :7070                    # run the daemon in-process
//	perftaint submit -addr host:7070 -app lulesh -config p=16
//	perftaint submit -addr ... -app lulesh -sweep 'p=2,4,8;size=4,5'
//	perftaint submit -addr ... -app milc -async    # prints a queued job
//	perftaint job -addr ... -id job-1 -wait        # poll it to completion
//	perftaint stats -addr host:7070
//
// (Bare flags with no subcommand — the original CLI shape — still run a
// local analysis, but print a deprecation note; use analyze.)
//
// The model subcommand runs the end-to-end sweep→fit pipeline (locally
// or against a daemon) and emits the model set as JSON; report renders
// that JSON as Markdown and/or self-contained HTML:
//
//	perftaint model -config examples/modeling/lulesh.json | perftaint report
//	perftaint model -config ... -addr http://host:7070 > models.json
//	perftaint report -in models.json -html report.html > report.md
//
// The corpus subcommand rebuilds the generated validation corpus
// (internal/appgen), scores end-to-end model recovery against the
// analytic ground truth, and checks the result against the blessed
// manifest — the CI corpus-smoke gate:
//
//	perftaint corpus                                   # check, exit 1 on violation
//	perftaint corpus -report corpus_report.json        # also dump the scored corpus
//	perftaint corpus -update                           # re-bless the manifest
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/appgen"
	"repro/internal/apps"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/modelreg"
	"repro/internal/runner"
	"repro/internal/service"
)

// jsonReport is the daemon's wire projection plus the CLI-only tainted
// selection dump — one projection (service.NewAnalysisResult) feeds both
// surfaces, so the golden snapshots gate them together.
type jsonReport struct {
	service.AnalysisResult
	Selections []string `json:"tainted_selections"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("perftaint: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "analyze":
			runAnalyze(os.Args[2:])
			return
		case "serve":
			runServe(os.Args[2:])
			return
		case "submit":
			runSubmit(os.Args[2:])
			return
		case "stats":
			runStats(os.Args[2:])
			return
		case "job":
			runJob(os.Args[2:])
			return
		case "model":
			runModel(os.Args[2:])
			return
		case "report":
			runReport(os.Args[2:])
			return
		case "corpus":
			runCorpus(os.Args[2:])
			return
		default:
			// Anything that isn't a flag is a mistyped subcommand; falling
			// through to a multi-second local analysis would bury the typo.
			if !strings.HasPrefix(os.Args[1], "-") {
				log.Fatalf("unknown subcommand %q (want analyze, serve, submit, job, model, report, corpus, or stats)",
					os.Args[1])
			}
		}
	}
	runLocal(os.Args[1:])
}

// runLocal is the original flags-only CLI shape, kept as a deprecated
// alias so existing scripts don't break. It is the same analysis as
// `perftaint analyze` without -addr; only the note on stderr differs.
func runLocal(args []string) {
	fs := flag.NewFlagSet("perftaint", flag.ExitOnError)
	app := fs.String("app", "lulesh", "application to analyze: lulesh or milc")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile (after the analysis) to this file")
	fs.Parse(args)
	log.Print("note: bare `perftaint -app ...` is deprecated; use `perftaint analyze` (same flags, plus -config and -addr)")
	analyzeLocal(*app, nil, *cpuProfile, *memProfile, interp.ModeFast)
}

// runAnalyze runs one analysis: in-process when -addr is empty, against
// a daemon otherwise. The local and remote paths share the daemon's
// config overlay and wire projection, so the JSON report is the same
// shape (the local run additionally dumps the tainted selections, which
// never cross the wire).
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("perftaint analyze", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL or host:port; empty analyzes in-process")
	app := fs.String("app", "lulesh", "application to analyze: lulesh or milc")
	cfgFlag := fs.String("config", "", "config overrides, e.g. 'p=16,size=5' (empty = app taint config)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-job deadline sent to the daemon (remote only)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the analysis to this file (local only)")
	memProfile := fs.String("memprofile", "", "write an allocation profile (after the analysis) to this file (local only)")
	engine := fs.String("engine", "fast", "interpreter tier for the local analysis: fast, reference, or compiled (local only; a daemon picks its own via perftaintd -engine)")
	retries := retriesFlag(fs)
	fs.Parse(args)

	overrides, err := parseConfig(*cfgFlag)
	if err != nil {
		log.Fatal(err)
	}
	mode, err := interp.ParseMode(*engine)
	if err != nil {
		log.Fatal(err)
	}
	if *addr != "" {
		if *cpuProfile != "" || *memProfile != "" {
			log.Fatal("-cpuprofile/-memprofile profile the in-process analysis; they cannot profile a remote daemon (use its -pprof listener)")
		}
		if mode != interp.ModeFast {
			log.Fatal("-engine selects the in-process interpreter; a daemon's tier is fixed by its own -engine flag")
		}
		job, err := newClient(*addr, *retries).Analyze(context.Background(), service.AnalyzeRequest{
			App:       *app,
			Config:    overrides,
			TimeoutMS: timeout.Milliseconds(),
		})
		if err != nil {
			log.Fatal(err)
		}
		emitJSON(job)
		if job.Status != service.StatusDone {
			os.Exit(1)
		}
		return
	}
	analyzeLocal(*app, overrides, *cpuProfile, *memProfile, mode)
}

// analyzeLocal is the in-process pipeline shared by `perftaint analyze`
// (without -addr) and the deprecated bare-flags mode.
func analyzeLocal(appName string, overrides apps.Config, cpuProfile, memProfile string, mode interp.Mode) {
	app, ok := service.BundledApps()[appName]
	if !ok {
		log.Fatalf("unknown app %q (want lulesh or milc)", appName)
	}
	// The daemon's overlay+validation, so a config the daemon would
	// reject fails identically here.
	cfg, err := service.MergedTaintConfig(app, overrides)
	if err != nil {
		log.Fatal(err)
	}
	spec := app.New()

	// Profiling hooks: the tainted run is the hot path of the whole system,
	// and every past speedup here started from a profile, not a guess.
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			log.Printf("wrote CPU profile to %s (inspect with: go tool pprof %s)", cpuProfile, cpuProfile)
		}()
	}

	prep, err := core.Prepare(spec)
	if err != nil {
		pprof.StopCPUProfile()
		log.Fatal(err)
	}
	prep.Mode = mode
	rep, err := prep.Analyze(cfg)
	if err != nil {
		// log.Fatal skips defers; flush the CPU profile first so a failing
		// run — the one most worth profiling — still leaves a usable file.
		pprof.StopCPUProfile()
		log.Fatal(err)
	}

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // flush recently freed objects so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		f.Close()
		log.Printf("wrote allocation profile to %s (inspect with: go tool pprof %s)", memProfile, memProfile)
	}

	out := jsonReport{
		AnalysisResult: *service.NewAnalysisResult(appName, core.SpecDigest(spec), rep,
			service.DefaultCensusParams()),
	}
	for _, sel := range rep.Engine.TaintedSelections() {
		out.Selections = append(out.Selections,
			fmt.Sprintf("%s@block%d params=%s", sel.Key.Func, sel.Key.Block,
				rep.Engine.Table.ExpandString(sel.Labels)))
	}

	emitJSON(out)
}

// runServe hosts the analysis daemon in-process (same engine as
// cmd/perftaintd, handy for one-binary deployments).
func runServe(args []string) {
	fs := flag.NewFlagSet("perftaint serve", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	workers := fs.Int("workers", 0, "concurrent analysis jobs (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 16, "PreparedCache capacity")
	jobTimeout := fs.Duration("job-timeout", 60*time.Second, "default per-job deadline")
	queueDepth := fs.Int("queue-depth", 1024, "maximum queued jobs")
	modelEntries := fs.Int("model-entries", 16, "model registry capacity")
	cacheDir := fs.String("cache-dir", "", "persistent cache root (empty = memory only)")
	rate := fs.Float64("rate", 0, "per-client admission rate in tokens/second (0 = unlimited)")
	burst := fs.Float64("burst", 0, "per-client token-bucket capacity (0 = max(1, 2*rate))")
	maxBody := fs.Int64("max-body", 0, "maximum JSON request body in bytes (0 = 4 MiB)")
	engine := fs.String("engine", "fast", "interpreter tier for analysis jobs: fast, reference, or compiled")
	cluster := cliutil.RegisterClusterFlags(fs)
	fs.Parse(args)

	opts := service.Options{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		JobTimeout:   *jobTimeout,
		QueueDepth:   *queueDepth,
		ModelEntries: *modelEntries,
		CacheDir:     *cacheDir,
		Rate:         *rate,
		Burst:        *burst,
		MaxBodyBytes: *maxBody,
		Engine:       *engine,
	}
	if err := cluster.Apply(&opts); err != nil {
		log.Fatal(err)
	}
	srv, err := service.NewServer(opts)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ready := make(chan string, 1)
	go func() { log.Printf("serving on %s", <-ready) }()
	if err := srv.ListenAndServe(ctx, *addr, ready); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}

// runSubmit sends one analysis or a sweep to a running daemon.
func runSubmit(args []string) {
	fs := flag.NewFlagSet("perftaint submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7070", "daemon base URL or host:port")
	app := fs.String("app", "lulesh", "registered application name")
	cfgFlag := fs.String("config", "", "config overrides, e.g. 'p=16,size=5' (empty = app taint config)")
	sweepFlag := fs.String("sweep", "", "sweep axes, e.g. 'p=2,4,8;size=4,5' (switches to /v1/sweep)")
	async := fs.Bool("async", false, "submit without waiting; prints the queued job")
	timeout := fs.Duration("timeout", 60*time.Second, "per-job deadline sent to the daemon")
	retries := retriesFlag(fs)
	fs.Parse(args)

	client := newClient(*addr, *retries)
	ctx := context.Background()

	if *sweepFlag != "" {
		if *async {
			log.Fatal("-async applies to single submissions only; sweeps always stream")
		}
		axes, err := parseAxes(*sweepFlag)
		if err != nil {
			log.Fatal(err)
		}
		defaults, err := parseConfig(*cfgFlag)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		failed := 0
		err = client.Sweep(ctx, service.SweepRequest{
			App:       *app,
			Defaults:  defaults,
			Axes:      axes,
			TimeoutMS: timeout.Milliseconds(),
		}, func(line service.SweepLine) error {
			if line.Error != "" {
				failed++
			}
			return enc.Encode(&line)
		})
		if err != nil {
			log.Fatal(err)
		}
		if failed > 0 {
			log.Fatalf("%d sweep configuration(s) failed", failed)
		}
		return
	}

	overrides, err := parseConfig(*cfgFlag)
	if err != nil {
		log.Fatal(err)
	}
	job, err := client.Analyze(ctx, service.AnalyzeRequest{
		App:       *app,
		Config:    overrides,
		Async:     *async,
		TimeoutMS: timeout.Milliseconds(),
	})
	if err != nil {
		log.Fatal(err)
	}
	emitJSON(job)
	if !*async && job.Status != service.StatusDone {
		os.Exit(1)
	}
}

// runJob fetches (or waits out) a job submitted with -async.
func runJob(args []string) {
	fs := flag.NewFlagSet("perftaint job", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7070", "daemon base URL or host:port")
	id := fs.String("id", "", "job id, e.g. job-1")
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal status")
	waitFor := fs.Duration("wait-timeout", 5*time.Minute, "give up polling after this long")
	retries := retriesFlag(fs)
	fs.Parse(args)
	if *id == "" {
		log.Fatal("job requires -id (as printed by submit -async)")
	}
	client := newClient(*addr, *retries)
	ctx := context.Background()
	var (
		info *service.JobInfo
		err  error
	)
	if *wait {
		wctx, cancel := context.WithTimeout(ctx, *waitFor)
		defer cancel()
		info, err = client.WaitJob(wctx, *id, 100*time.Millisecond)
	} else {
		info, err = client.Job(ctx, *id)
	}
	if err != nil {
		log.Fatal(err)
	}
	emitJSON(info)
	if *wait && info.Status != service.StatusDone {
		os.Exit(1)
	}
}

// runModel runs the end-to-end model extraction described by a JSON
// config file — sweep the design, stream the results into the
// incremental fitter, emit the ranked model set as JSON on stdout —
// either locally (default) or through a daemon's POST /v1/models.
// Progress goes to stderr so the JSON artifact stays pipeable into
// `perftaint report`.
func runModel(args []string) {
	fs := flag.NewFlagSet("perftaint model", flag.ExitOnError)
	cfgPath := fs.String("config", "", "modeling config JSON (see examples/modeling/lulesh.json)")
	addr := fs.String("addr", "", "daemon base URL or host:port; empty runs the sweep in-process")
	workers := fs.Int("workers", 0, "local sweep/fit concurrency (0 = GOMAXPROCS)")
	quiet := fs.Bool("q", false, "suppress progress output")
	retries := retriesFlag(fs)
	fs.Parse(args)
	if *cfgPath == "" {
		log.Fatal("model requires -config FILE (a modelreg.Config JSON document)")
	}
	raw, err := os.ReadFile(*cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg modelreg.Config
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		log.Fatalf("parse %s: %v", *cfgPath, err)
	}
	progress := func(ev modelreg.Event) {
		if *quiet {
			return
		}
		switch ev.Type {
		case "taint":
			log.Printf("taint run done: %d of %d functions relevant; sweeping %d design points",
				ev.Relevant, ev.Functions, ev.Total)
		case "point":
			log.Printf("point %d/%d done (%d instructions)", ev.Points, ev.Total, ev.Instructions)
		case "refit":
			log.Printf("refit at %d/%d points: %d models fit, %d failed",
				ev.Points, ev.Total, ev.Fitted, ev.Failed)
		}
	}

	if *addr != "" {
		req, err := modelRequest(cfg)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := newClient(*addr, *retries).ModelsStream(context.Background(), req, progress)
		if err != nil {
			log.Fatal(err)
		}
		if !*quiet && resp.Cached {
			log.Printf("served from the model registry (key %s)", resp.Key)
		}
		emitJSON(resp.ModelSet)
		return
	}

	app, ok := service.BundledApps()[cfg.App]
	if !ok {
		log.Fatalf("unknown app %q in %s (want lulesh or milc)", cfg.App, *cfgPath)
	}
	// One shared overlay across CLI, daemon, and examples — local and
	// remote runs must compute identical design digests.
	cfg = service.ResolveModelDefaults(app, cfg)
	prep, err := core.Prepare(app.New())
	if err != nil {
		log.Fatal(err)
	}
	ms, err := modelreg.Extract(context.Background(), &runner.Runner{Workers: *workers}, prep, cfg, progress)
	if err != nil {
		log.Fatal(err)
	}
	emitJSON(ms)
}

// modelRequest converts a local modeling config into the wire request.
func modelRequest(cfg modelreg.Config) (service.ModelRequest, error) {
	req := service.ModelRequest{
		App:      cfg.App,
		Params:   cfg.Params,
		Defaults: cfg.Defaults,
		Reps:     cfg.Reps,
		Seed:     cfg.Seed,
		RelNoise: cfg.RelNoise,
		Batch:    cfg.Batch,
		Metrics:  cfg.Metrics,
	}
	if req.App == "" {
		return req, fmt.Errorf("modeling config requires \"app\" when submitting to a daemon")
	}
	for _, ax := range cfg.Axes {
		req.Axes = append(req.Axes, service.SweepAxis{Param: ax.Param, Values: ax.Values})
	}
	return req, nil
}

// runReport renders a model-set JSON document (stdin or -in) as
// Markdown on stdout and, optionally, as a self-contained HTML file.
func runReport(args []string) {
	fs := flag.NewFlagSet("perftaint report", flag.ExitOnError)
	in := fs.String("in", "", "model-set JSON file (default: stdin)")
	htmlOut := fs.String("html", "", "also write a self-contained HTML report to this file")
	fs.Parse(args)
	var raw []byte
	var err error
	if *in != "" {
		raw, err = os.ReadFile(*in)
	} else {
		raw, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatal(err)
	}
	// Accept either the bare model set (`perftaint model` output) or the
	// daemon's response envelope ({"model_set": {...}}).
	var env struct {
		ModelSet *modelreg.ModelSet `json:"model_set"`
	}
	var ms modelreg.ModelSet
	if err := json.Unmarshal(raw, &env); err == nil && env.ModelSet != nil {
		ms = *env.ModelSet
	} else if err := json.Unmarshal(raw, &ms); err != nil {
		log.Fatalf("parse model set: %v (pipe `perftaint model` output or pass -in)", err)
	}
	if len(ms.Functions) == 0 {
		log.Fatal("model set is empty (is the input really `perftaint model` or /v1/models output?)")
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(modelreg.RenderHTML(&ms)), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote HTML report to %s", *htmlOut)
	}
	fmt.Print(modelreg.RenderMarkdown(&ms))
}

// runCorpus rebuilds and scores the generated validation corpus, then
// either re-blesses the manifest (-update) or checks the fresh scores
// against it, exiting nonzero on any violation.
func runCorpus(args []string) {
	fs := flag.NewFlagSet("perftaint corpus", flag.ExitOnError)
	manifest := fs.String("manifest", "internal/appgen/testdata/corpus_v1.json",
		"blessed corpus manifest path")
	update := fs.Bool("update", false, "rewrite the manifest from the fresh build instead of checking")
	report := fs.String("report", "", "write the freshly scored corpus as JSON to this file")
	verbose := fs.Bool("v", false, "print per-entry scores")
	fs.Parse(args)

	built, err := appgen.BuildCorpus(context.Background(), runner.New())
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		for _, e := range built.Entries {
			log.Printf("%-18s funcs=%d precision=%.3f recall=%.3f terms=%d/%d win=%d/%d pruned=%d",
				e.App, e.Functions, e.Precision, e.Recall,
				e.TermAgree, e.TermChecked, e.WinNoWorse, e.WinComparable, e.PrunedNoise)
		}
	}
	if *report != "" {
		if err := appgen.SaveCorpus(*report, built); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote scored corpus to %s", *report)
	}
	if *update {
		if err := appgen.SaveCorpus(*manifest, built); err != nil {
			log.Fatal(err)
		}
		log.Printf("re-blessed %s with %d entries", *manifest, len(built.Entries))
		return
	}
	blessed, err := appgen.LoadCorpus(*manifest)
	if err != nil {
		log.Fatal(err)
	}
	violations := blessed.Check(built)
	for _, v := range violations {
		log.Printf("violation: %s", v)
	}
	if len(violations) > 0 {
		log.Fatalf("corpus gate FAILED: %d violation(s) against %s", len(violations), *manifest)
	}
	log.Printf("corpus gate passed: %d entries, %d archetypes", len(built.Entries), len(appgen.Archetypes()))
}

// runStats prints the daemon's cache and scheduler counters.
func runStats(args []string) {
	fs := flag.NewFlagSet("perftaint stats", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7070", "daemon base URL or host:port")
	retries := retriesFlag(fs)
	fs.Parse(args)
	st, err := newClient(*addr, *retries).Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	emitJSON(st)
}

// retriesFlag registers the shared -retries flag every remote subcommand
// carries: how many times the client resubmits a failed or broken-off
// request before giving up. Sweeps reconnect with Last-Seq so a retried
// stream resumes where it left off instead of replaying from the start.
func retriesFlag(fs *flag.FlagSet) *int {
	return fs.Int("retries", 3, "client retries on transport errors and retryable statuses (0 = fail fast); sweep reconnects resume mid-stream")
}

// newClient builds the daemon client for a subcommand, honoring -retries.
func newClient(addr string, retries int) *service.Client {
	c := service.NewClient(addr)
	c.Retries = retries
	return c
}

// parseConfig reads "k=v,k=v" into overrides.
func parseConfig(s string) (apps.Config, error) {
	if s == "" {
		return nil, nil
	}
	out := make(apps.Config)
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad config entry %q (want name=value)", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("bad config value %q: %v", kv, err)
		}
		out[k] = f
	}
	return out, nil
}

// parseAxes reads "p=2,4,8;size=4,5" into sweep axes.
func parseAxes(s string) ([]service.SweepAxis, error) {
	var out []service.SweepAxis
	for _, part := range strings.Split(s, ";") {
		name, vals, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad axis %q (want name=v1,v2,...)", part)
		}
		ax := service.SweepAxis{Param: name}
		for _, v := range strings.Split(vals, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("bad axis value %q: %v", v, err)
			}
			ax.Values = append(ax.Values, f)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("axis %q has no values", name)
		}
		out = append(out, ax)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sweep specification")
	}
	return out, nil
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
