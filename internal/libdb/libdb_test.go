package libdb

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/loopmodel"
	"repro/internal/taint"
)

func TestDefaultMPIEntries(t *testing.T) {
	db := DefaultMPI()
	for _, name := range []string{"MPI_Comm_size", "MPI_Comm_rank", "MPI_Send", "MPI_Allreduce", "MPI_Barrier"} {
		if _, ok := db.Lookup(name); !ok {
			t.Errorf("missing entry %s", name)
		}
	}
	if db.Relevant("MPI_Comm_size") {
		t.Error("MPI_Comm_size is a query, not performance-relevant")
	}
	if !db.Relevant("MPI_Allreduce") {
		t.Error("MPI_Allreduce must be relevant")
	}
	if db.Relevant("not_a_function") {
		t.Error("unknown function must not be relevant")
	}
	names := db.Names()
	if len(names) != len(db.Entries) {
		t.Fatalf("Names() size mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}

// Build a program following the paper's pattern: read comm size via MPI,
// loop over it, and allreduce a buffer whose count is size-dependent.
func buildMPIApp(m *ir.Module) {
	b := ir.NewFunc(m, "main", 1) // param 0: size
	comm := b.Const(0)
	cell := b.Alloc(b.Const(1))
	b.Call("MPI_Comm_size", comm, cell)
	p := b.Load(cell, 0)
	b.For(b.Const(0), p, b.Const(1), func(i ir.Reg) {
		b.Work(b.Const(1))
	})
	send := b.Alloc(b.Const(8))
	recv := b.Alloc(b.Const(8))
	b.Call("MPI_Allreduce", send, recv, b.Param(0))
	b.RetVoid()
	b.Finish()
}

func TestCommSizeIsTaintSource(t *testing.T) {
	m := ir.NewModule("t")
	buildMPIApp(m)
	e := taint.NewEngine()
	mach := interp.NewMachine(m)
	mach.Taint = e
	db := DefaultMPI()
	db.Bind(mach, e, RunConfig{CommSize: 8, Rank: 0})

	size := e.Table.Base("size")
	if _, err := mach.Run("main", []interp.Value{5}, []taint.Label{size}); err != nil {
		t.Fatal(err)
	}
	deps := e.FuncLoopDeps()
	if got := deps["main"]; !reflect.DeepEqual(got, []string{"p"}) {
		t.Fatalf("loop deps = %v, want [p] (from MPI_Comm_size source)", got)
	}
}

func TestLibCallRecordsImplicitAndCountDeps(t *testing.T) {
	m := ir.NewModule("t")
	buildMPIApp(m)
	e := taint.NewEngine()
	mach := interp.NewMachine(m)
	mach.Taint = e
	db := DefaultMPI()
	db.Bind(mach, e, RunConfig{CommSize: 8, Rank: 0})

	size := e.Table.Base("size")
	if _, err := mach.Run("main", []interp.Value{5}, []taint.Label{size}); err != nil {
		t.Fatal(err)
	}
	libDeps := e.FuncLibDeps()
	got := libDeps["main"]
	// Allreduce contributes implicit p plus the size-tainted count argument.
	if !reflect.DeepEqual(got, []string{"p", "size"}) {
		t.Fatalf("lib deps = %v, want [p size]", got)
	}
	// One concrete call record with caller=main.
	found := false
	for k, r := range e.LibCalls {
		if k.Callee == "MPI_Allreduce" {
			found = true
			if k.Caller != "main" {
				t.Fatalf("caller = %q, want main", k.Caller)
			}
			if r.Count != 1 {
				t.Fatalf("count = %d, want 1", r.Count)
			}
		}
	}
	if !found {
		t.Fatal("no MPI_Allreduce record")
	}
}

func TestAllreduceCopiesBuffer(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "main", 0)
	send := b.Alloc(b.Const(2))
	recv := b.Alloc(b.Const(2))
	b.Store(send, 0, b.Const(11))
	b.Store(send, 1, b.Const(22))
	b.Call("MPI_Allreduce", send, recv, b.Const(2))
	v := b.Load(recv, 1)
	b.Ret(v)
	b.Finish()

	mach := interp.NewMachine(m)
	DefaultMPI().Bind(mach, nil, RunConfig{CommSize: 4})
	res, err := mach.Run("main", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 22 {
		t.Fatalf("allreduce copy = %d, want 22", res.Value)
	}
}

func TestCommRankUntainted(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "main", 0)
	cell := b.Alloc(b.Const(1))
	b.Call("MPI_Comm_rank", b.Const(0), cell)
	r := b.Load(cell, 0)
	b.Ret(r)
	b.Finish()

	e := taint.NewEngine()
	mach := interp.NewMachine(m)
	mach.Taint = e
	DefaultMPI().Bind(mach, e, RunConfig{CommSize: 4, Rank: 3})
	res, err := mach.Run("main", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("rank = %d, want 3", res.Value)
	}
	if res.Label != taint.None {
		t.Fatal("rank must not be tainted")
	}
}

func TestExternVolume(t *testing.T) {
	db := DefaultMPI()
	ev := db.ExternVolume()
	if ev("unknown_function") != nil {
		t.Fatal("unknown function should have nil volume")
	}
	if ev("MPI_Comm_size") != nil {
		t.Fatal("irrelevant function should have nil volume")
	}
	e := ev("MPI_Allreduce")
	if e == nil {
		t.Fatal("allreduce must contribute volume")
	}
	if got := loopmodel.Params(e); !reflect.DeepEqual(got, []string{"p"}) {
		t.Fatalf("allreduce volume params = %v, want [p]", got)
	}
}

func TestShapeDeps(t *testing.T) {
	db := DefaultMPI()
	e, _ := db.Lookup("MPI_Allreduce")
	got := ShapeDeps(e, []string{"size"})
	if !reflect.DeepEqual(got, []string{"p", "size"}) {
		t.Fatalf("ShapeDeps = %v", got)
	}
}

func TestMissingArgsError(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "main", 0)
	b.Call("MPI_Comm_size")
	b.RetVoid()
	b.Finish()
	mach := interp.NewMachine(m)
	DefaultMPI().Bind(mach, nil, RunConfig{CommSize: 4})
	if _, err := mach.Run("main", nil, nil); err == nil {
		t.Fatal("expected arity error")
	}
}
