// Package libdb implements the global-state library database of Section
// 5.3: a description of performance-relevant library functions, the implicit
// parameters their runtimes hide from the user (the size of the global
// communicator, p), functions acting as taint sources (MPI_Comm_size), and
// analytical dependency templates for communication and synchronization
// routines derived from the literature's cost models.
package libdb

import (
	"fmt"
	"sort"

	"repro/internal/interp"
	"repro/internal/loopmodel"
	"repro/internal/taint"
)

// CostShape classifies the analytic parametric shape of a library routine,
// following Thakur/Rabenseifner/Gropp-style collective models.
type CostShape int

// Cost shapes of library routines with respect to the implicit communicator
// size p and the message size m.
const (
	CostConst   CostShape = iota // rank queries, wait
	CostP2P                      // alpha + beta*m
	CostLogP                     // barrier: alpha*log2(p)
	CostMLogP                    // bcast/reduce/allreduce: (alpha + beta*m)*log2(p)
	CostLinearP                  // gather/scatter: alpha*p + beta*m*p
)

// Entry describes one library function.
type Entry struct {
	Name string
	// Relevant functions block static pruning of their callers (Section 5.1)
	// and add dependencies to models.
	Relevant bool
	// ImplicitParams are parameters hidden in the library runtime; for MPI
	// communication routines this is {p}.
	ImplicitParams []string
	// SourceArg, when >= 0, marks the pointer argument through which the
	// routine writes a value tainted with SourceParam (MPI_Comm_size).
	SourceArg   int
	SourceParam string
	// CountArg, when >= 0, is the message-count argument whose taint labels
	// become additional parametric dependencies of the call.
	CountArg int
	Shape    CostShape
}

// DB is a set of library entries keyed by function name.
type DB struct {
	Entries map[string]Entry
}

// New returns an empty database.
func New() *DB { return &DB{Entries: make(map[string]Entry)} }

// Add registers e, replacing any previous entry of the same name.
func (db *DB) Add(e Entry) { db.Entries[e.Name] = e }

// Lookup returns the entry for name.
func (db *DB) Lookup(name string) (Entry, bool) {
	e, ok := db.Entries[name]
	return e, ok
}

// Relevant reports whether name is a performance-relevant library function;
// it is the predicate handed to the static pruning pass.
func (db *DB) Relevant(name string) bool {
	e, ok := db.Entries[name]
	return ok && e.Relevant
}

// Names returns all database entries sorted by name.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.Entries))
	for n := range db.Entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MPIParam is the conventional name of the implicit global-communicator
// size parameter.
const MPIParam = "p"

// DefaultMPI returns the MPI database shipped with Perf-Taint: the widely
// used subset of point-to-point and collective routines with their shapes.
func DefaultMPI() *DB {
	db := New()
	for _, e := range []Entry{
		{Name: "MPI_Comm_size", Relevant: false, SourceArg: 1, SourceParam: MPIParam, CountArg: -1, Shape: CostConst},
		{Name: "MPI_Comm_rank", Relevant: false, SourceArg: -1, CountArg: -1, Shape: CostConst},
		{Name: "MPI_Send", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostP2P},
		{Name: "MPI_Recv", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostP2P},
		{Name: "MPI_Isend", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostP2P},
		{Name: "MPI_Irecv", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostP2P},
		{Name: "MPI_Wait", Relevant: true, ImplicitParams: nil, SourceArg: -1, CountArg: -1, Shape: CostConst},
		{Name: "MPI_Waitall", Relevant: true, ImplicitParams: nil, SourceArg: -1, CountArg: -1, Shape: CostConst},
		{Name: "MPI_Barrier", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: -1, Shape: CostLogP},
		{Name: "MPI_Bcast", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostMLogP},
		{Name: "MPI_Reduce", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 2, Shape: CostMLogP},
		{Name: "MPI_Allreduce", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 2, Shape: CostMLogP},
		{Name: "MPI_Gather", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostLinearP},
		{Name: "MPI_Allgather", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostLinearP},
		{Name: "MPI_Scatter", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostLinearP},
		{Name: "MPI_Alltoall", Relevant: true, ImplicitParams: []string{MPIParam}, SourceArg: -1, CountArg: 1, Shape: CostLinearP},
	} {
		db.Add(e)
	}
	return db
}

// RunConfig carries the simulated library runtime state for one tainted
// execution: the process count behind the implicit parameter and the rank
// the single-process taint run observes.
type RunConfig struct {
	CommSize int64
	Rank     int64
}

// Bind installs interpreter externs for every database entry on mach. When
// engine is non-nil the externs act as taint sources and record library
// calls with their parametric dependencies. Collectives behave functionally
// for a single-rank view: buffers pass through unchanged.
func (db *DB) Bind(mach *interp.Machine, engine *taint.Engine, cfg RunConfig) {
	for name := range db.Entries {
		entry := db.Entries[name]
		mach.Externs[name] = func(c *interp.ExternCall) (interp.Value, error) {
			return db.execute(entry, c, engine, cfg)
		}
	}
}

func (db *DB) execute(e Entry, c *interp.ExternCall, engine *taint.Engine, cfg RunConfig) (interp.Value, error) {
	// Dependency recording: implicit params plus count-argument labels.
	if engine != nil && e.Relevant {
		l := taint.None
		for _, p := range e.ImplicitParams {
			l |= engine.Table.Base(p)
		}
		if e.CountArg >= 0 && e.CountArg < len(c.ArgLabels) {
			l |= c.ArgLabels[e.CountArg]
		}
		// Route through the call-site record cache: O(1) per call under the
		// fast engine's interned paths, map-backed under the reference one.
		c.RecordLibCall(engine, l)
	}
	switch e.Name {
	case "MPI_Comm_size":
		if len(c.Args) < 2 {
			return 0, fmt.Errorf("MPI_Comm_size wants (comm, ptr), got %d args", len(c.Args))
		}
		l := taint.None
		if engine != nil {
			l = engine.Table.Base(e.SourceParam)
		}
		return 0, c.M.StoreMem(c.Args[1], cfg.CommSize, l)
	case "MPI_Comm_rank":
		if len(c.Args) < 2 {
			return 0, fmt.Errorf("MPI_Comm_rank wants (comm, ptr), got %d args", len(c.Args))
		}
		return 0, c.M.StoreMem(c.Args[1], cfg.Rank, taint.None)
	case "MPI_Allreduce", "MPI_Reduce":
		// Single-rank functional view: copy send buffer to recv buffer.
		if len(c.Args) >= 3 {
			count := c.Args[2]
			for i := int64(0); i < count; i++ {
				v, l, err := c.M.LoadMem(c.Args[0] + i)
				if err != nil {
					return 0, err
				}
				if err := c.M.StoreMem(c.Args[1]+i, v, l); err != nil {
					return 0, err
				}
			}
		}
		return 0, nil
	default:
		// Point-to-point and remaining collectives are no-ops in the
		// single-process taint run; their performance is modeled through
		// the database shapes, not executed.
		return 0, nil
	}
}

// ExternVolume returns the loopmodel callback mapping a library callee to
// its symbolic volume contribution, used by the static/hybrid composition.
func (db *DB) ExternVolume() loopmodel.ExternVolume {
	return func(callee string) loopmodel.Expr {
		e, ok := db.Entries[callee]
		if !ok || !e.Relevant {
			return nil
		}
		if len(e.ImplicitParams) == 0 {
			return loopmodel.Const{Value: 1}
		}
		return loopmodel.Unknown{Params: append([]string(nil), e.ImplicitParams...)}
	}
}

// ShapeDeps returns the parameter names entry's analytic model depends on,
// merging implicit parameters with the provided count labels.
func ShapeDeps(e Entry, countParams []string) []string {
	set := make(map[string]bool)
	for _, p := range e.ImplicitParams {
		set[p] = true
	}
	for _, p := range countParams {
		set[p] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
