package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postJSON fires a raw POST so tests can control headers and bodies the
// typed client never produces.
func postJSON(t *testing.T, base, path, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRateLimiterTokenBucket(t *testing.T) {
	l := newRateLimiter(1, 2)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	if ok, _ := l.allowN("a", 1); !ok {
		t.Fatal("fresh bucket rejected")
	}
	if ok, _ := l.allowN("a", 1); !ok {
		t.Fatal("burst capacity not honored")
	}
	ok, wait := l.allowN("a", 1)
	if ok {
		t.Fatal("drained bucket admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v, want (0, 1s]", wait)
	}
	// Another client has its own bucket.
	if ok, _ := l.allowN("b", 1); !ok {
		t.Fatal("second client starved by the first")
	}
	// Refill: one second restores one token.
	now = now.Add(time.Second)
	if ok, _ := l.allowN("a", 1); !ok {
		t.Fatal("refilled bucket rejected")
	}
	// Charges above burst clamp to burst — a legal large sweep drains the
	// bucket but is never unservable.
	now = now.Add(time.Hour)
	if ok, _ := l.allowN("a", 100); !ok {
		t.Fatal("over-burst charge not clamped")
	}
	if l.clients() != 2 {
		t.Fatalf("clients = %d, want 2", l.clients())
	}
	if newRateLimiter(0, 0) != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	var nilL *rateLimiter
	if ok, _ := nilL.allowN("x", 1); !ok {
		t.Fatal("nil limiter must admit everything")
	}
}

func TestRateLimiterSweepsBucketMap(t *testing.T) {
	l := newRateLimiter(1000, 1000)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxTrackedClients; i++ {
		l.allowN(fmt.Sprintf("client-%d", i), 1)
	}
	// All buckets refill within a second at this rate; the next new
	// client triggers the sweep instead of growing the map unboundedly.
	now = now.Add(time.Minute)
	l.allowN("one-more", 1)
	if n := l.clients(); n > 2 {
		t.Fatalf("clients = %d after sweep, want <= 2", n)
	}
}

func TestServeRateLimits429(t *testing.T) {
	// One token per ~17 minutes with burst 1: the second request inside
	// the test window is deterministically rejected.
	_, client := testServer(t, Options{Workers: 1, Rate: 0.001, Burst: 1})
	ctx := context.Background()

	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh"}); err != nil {
		t.Fatal(err)
	}
	_, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh"})
	if err == nil {
		t.Fatal("second request admitted past an empty bucket")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", apiErr.StatusCode)
	}
	if apiErr.RetryAfterMS <= 0 {
		t.Fatalf("RetryAfterMS = %d, want > 0", apiErr.RetryAfterMS)
	}

	// The Retry-After header rides on the raw response too.
	resp := postJSON(t, client.BaseURL, "/v1/analyze", `{"app":"lulesh"}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	// A distinct X-Client-ID is a distinct bucket: same address, admitted.
	resp2 := postJSON(t, client.BaseURL, "/v1/analyze", `{"app":"lulesh"}`,
		map[string]string{ClientIDHeader: "someone-else"})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("distinct client id got %d, want 200", resp2.StatusCode)
	}
}

func TestServeCapsRequestBodies(t *testing.T) {
	_, client := testServer(t, Options{Workers: 1, MaxBodyBytes: 256})

	big := `{"app":"lulesh","config":{` + strings.Repeat(`"p":1,`, 100) + `"p":1}}`
	resp := postJSON(t, client.BaseURL, "/v1/analyze", big, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body got %d, want 413", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("256-byte limit")) {
		t.Fatalf("413 body %q does not name the limit", body)
	}

	// Trailing garbage after a valid JSON value is a client bug → 400.
	resp2 := postJSON(t, client.BaseURL, "/v1/analyze", `{"app":"lulesh"} trailing`, nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing garbage got %d, want 400", resp2.StatusCode)
	}

	// Unknown fields stay rejected through the new decode path.
	resp3 := postJSON(t, client.BaseURL, "/v1/analyze", `{"app":"lulesh","bogus":1}`, nil)
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field got %d, want 400", resp3.StatusCode)
	}

	// A legal request still fits comfortably.
	resp4 := postJSON(t, client.BaseURL, "/v1/analyze", `{"app":"lulesh"}`, nil)
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("legal request got %d, want 200", resp4.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, client := testServer(t, Options{Workers: 1, Rate: 0.001, Burst: 1})
	ctx := context.Background()
	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh"}); err != nil {
		t.Fatal(err)
	}
	// Burn the bucket so the rejection counter is non-zero.
	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh"}); err == nil {
		t.Fatal("expected a 429 to feed the rejection counter")
	}

	resp, err := http.Get(client.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text format 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE perftaintd_queue_depth gauge",
		"perftaintd_queue_depth 0",
		`perftaintd_jobs_total{outcome="completed"} 1`,
		`perftaintd_cache_misses_total{cache="prepared"} 1`,
		`perftaintd_cache_disk_hits_total{cache="models"} 0`,
		"# TYPE perftaintd_stage_duration_seconds histogram",
		`perftaintd_stage_duration_seconds_bucket{stage="prepare",le="+Inf"} 1`,
		`perftaintd_stage_duration_seconds_count{stage="run"} 1`,
		`perftaintd_stage_duration_seconds_count{stage="fit"} 0`,
		"perftaintd_ratelimit_rejected_total 1",
		"perftaintd_uptime_seconds",
		"perftaintd_workers 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Histograms must be cumulative: the le="+Inf" bucket equals _count.
	if !strings.Contains(text, `perftaintd_stage_duration_seconds_count{stage="prepare"} 1`) {
		t.Error("prepare histogram count missing or not 1")
	}
}

// TestSweepDrainEmitsTerminalErrorLine: a daemon stopping mid-sweep must
// say so in-band — a final well-formed jobless error line — so clients
// can tell a graceful stop from a truncated stream. The typed client
// surfaces it as an error.
func TestSweepDrainEmitsTerminalErrorLine(t *testing.T) {
	srv, client := testServer(t, Options{Workers: 1, Apps: map[string]App{"slow": slowApp()}})
	ctx := context.Background()

	lines := 0
	err := client.Sweep(ctx, SweepRequest{
		App:  "slow",
		Axes: []SweepAxis{{Param: "n", Values: []float64{2e6, 2e6, 2e6, 2e6}}},
	}, func(line SweepLine) error {
		lines++
		if lines == 1 {
			// Cancel the daemon's base context while the later configs are
			// still queued behind the single slow worker: the handler's next
			// wait observes the drain, not the job.
			srv.stop()
		}
		return nil
	})
	if err == nil {
		t.Fatalf("sweep ended cleanly (%d lines) — expected the drain error", lines)
	}
	if !strings.Contains(err.Error(), "sweep aborted by server") {
		t.Fatalf("err = %v, want the in-band drain line surfaced", err)
	}
	if lines < 1 {
		t.Fatal("no result lines before the drain")
	}
}
