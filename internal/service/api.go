package service

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/modelreg"
)

// App is one analyzable application registered with the daemon: a spec
// constructor plus the default (taint-run) configuration that request
// configs are overlaid on.
type App struct {
	New         func() *apps.Spec
	TaintConfig func() apps.Config
}

// BundledApps returns the registry the daemon serves out of the box: the
// paper's two evaluation applications keyed by the names the HTTP API
// accepts in the "app" field.
func BundledApps() map[string]App {
	return map[string]App{
		"lulesh": {New: apps.LULESH, TaintConfig: apps.LULESHTaintConfig},
		"milc":   {New: apps.MILC, TaintConfig: apps.MILCTaintConfig},
	}
}

// AnalyzeRequest is the body of POST /v1/analyze: one configuration of a
// registered application. Config entries overlay the app's default taint
// configuration, so an empty config analyzes the paper's taint run and
// {"p": 16} changes only the rank count.
type AnalyzeRequest struct {
	App    string      `json:"app"`
	Config apps.Config `json:"config,omitempty"`
	// CensusParams selects the loop-relevance column of the census;
	// defaults to the paper's model parameters {p, size}.
	CensusParams []string `json:"census_params,omitempty"`
	// Async, when true, returns the queued job immediately; poll it via
	// GET /v1/jobs/{id}. The default waits for the result inline.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds how long the job may wait to START: a job still
	// queued past it is canceled, never run. Once started, a job always
	// finishes — runs are bounded by interpreter fuel, not wall clock.
	// 0 uses the server default; larger values clamp to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepAxis is one swept parameter: mirrors runner.Axis on the wire.
type SweepAxis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// SweepRequest is the body of POST /v1/sweep: a full-factorial design
// over a registered application. The response streams one NDJSON
// SweepLine per configuration in deterministic design order (last axis
// varying fastest), so arbitrarily large designs never buffer
// server-side.
type SweepRequest struct {
	App          string      `json:"app"`
	Defaults     apps.Config `json:"defaults,omitempty"`
	Axes         []SweepAxis `json:"axes"`
	CensusParams []string    `json:"census_params,omitempty"`
	// TimeoutMS optionally gives each configuration job a start-TTL
	// from submission (clamped to the server default). 0 — the default —
	// means sweep jobs live as long as the streaming request itself, so
	// the tail of a large design is not doomed by its siblings' runtime.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepLine is one NDJSON record of a sweep response.
type SweepLine struct {
	Index  int             `json:"index"`
	JobID  string          `json:"job_id"`
	Config apps.Config     `json:"config"`
	Result *AnalysisResult `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Job lifecycle states reported by the API.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// JobInfo is the wire view of one scheduled analysis job.
type JobInfo struct {
	ID         string      `json:"id"`
	App        string      `json:"app"`
	Status     string      `json:"status"`
	Config     apps.Config `json:"config"`
	SpecDigest string      `json:"spec_digest"`
	Submitted  time.Time   `json:"submitted"`
	Started    time.Time   `json:"started,omitzero"`
	Finished   time.Time   `json:"finished,omitzero"`
	// DurationMS is the run time of a finished job (excluding queueing).
	DurationMS int64           `json:"duration_ms,omitempty"`
	Result     *AnalysisResult `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// AnalysisResult is the paper-facing projection of a core.Report that
// travels over the wire: the Table 2 census, per-function parameter
// dependencies and symbolic volumes, the instrumentation filter, and the
// dynamic cost of the tainted run. It mirrors the perftaint CLI's JSON
// report so the golden snapshots under internal/core/testdata gate the
// service responses too.
type AnalysisResult struct {
	App          string              `json:"app"`
	SpecDigest   string              `json:"spec_digest"`
	Census       core.Census         `json:"census"`
	FuncDeps     map[string][]string `json:"function_dependencies"`
	Volumes      map[string]string   `json:"volumes"`
	Relevant     []string            `json:"instrumentation_filter"`
	Recursion    []string            `json:"recursion_warnings,omitempty"`
	Instructions int64               `json:"tainted_run_instructions"`
}

// NewAnalysisResult projects a report into its wire form.
func NewAnalysisResult(app, digest string, rep *core.Report, censusParams []string) *AnalysisResult {
	out := &AnalysisResult{
		App:          app,
		SpecDigest:   digest,
		Census:       rep.Census(censusParams),
		FuncDeps:     rep.FuncDeps,
		Volumes:      make(map[string]string),
		Recursion:    rep.Volumes.RecursionWarnings,
		Instructions: rep.Instructions,
	}
	if out.FuncDeps == nil {
		out.FuncDeps = map[string][]string{}
	}
	for fn := range rep.Relevant {
		out.Relevant = append(out.Relevant, fn)
	}
	sort.Strings(out.Relevant)
	for fn, deps := range rep.FuncDeps {
		if len(deps) > 0 {
			out.Volumes[fn] = rep.Volumes.ByFunc[fn].String()
		}
	}
	return out
}

// JobStats aggregates scheduler counters for /v1/stats.
type JobStats struct {
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeMS int64                  `json:"uptime_ms"`
	Workers  int                    `json:"workers"`
	Apps     []string               `json:"apps"`
	Cache    CacheStats             `json:"cache"`
	Models   modelreg.RegistryStats `json:"models"`
	Jobs     JobStats               `json:"jobs"`
	// CacheDisk and ModelsDisk report the persistent tiers' store
	// counters; all-zero when the daemon runs without a cache dir.
	CacheDisk  diskcache.Stats `json:"cache_disk"`
	ModelsDisk diskcache.Stats `json:"models_disk"`
	// RateLimited counts requests rejected with 429 by admission control.
	RateLimited uint64 `json:"rate_limited"`
}

// DefaultCensusParams is the census column used when a request does not
// name its model parameters: the paper's {p, size}.
func DefaultCensusParams() []string { return []string{"p", "size"} }

// mergedConfig overlays overrides on the app's default taint config.
func mergedConfig(app App, overrides apps.Config) apps.Config {
	cfg := app.TaintConfig().Clone()
	for k, v := range overrides {
		cfg[k] = v
	}
	return cfg
}

// validateConfig rejects configurations the pipeline would choke on with
// a client-attributable error instead of a mid-job failure.
func validateConfig(spec *apps.Spec, cfg apps.Config) error {
	// The pipeline truncates p to an integer rank count, so anything
	// below 1 (including fractional values in (0,1)) would fail mid-job
	// with a misleading "missing p" — reject it here instead.
	if cfg["p"] < 1 {
		return fmt.Errorf("config requires the implicit MPI parameter p >= 1")
	}
	for _, prm := range spec.Params {
		if _, ok := cfg[prm]; !ok {
			return fmt.Errorf("config missing spec parameter %q", prm)
		}
	}
	return nil
}

// knownParam reports whether name is a spec parameter or the implicit p.
func knownParam(spec *apps.Spec, name string) bool {
	if name == "p" {
		return true
	}
	for _, prm := range spec.Params {
		if prm == name {
			return true
		}
	}
	return false
}

// validateParamNames rejects override/axis names the analysis would
// silently ignore — a typo'd parameter must fail loudly, not return a
// plausible result that never varied anything.
func validateParamNames(spec *apps.Spec, names []string) error {
	for _, name := range names {
		if !knownParam(spec, name) {
			return fmt.Errorf("unknown parameter %q (spec has %v plus the implicit p)",
				name, spec.Params)
		}
	}
	return nil
}

func configKeys(cfg apps.Config) []string {
	out := make([]string, 0, len(cfg))
	for k := range cfg {
		out = append(out, k)
	}
	return out
}
