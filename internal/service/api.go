package service

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/apps"
)

// App is one analyzable application registered with the daemon: a spec
// constructor plus the default (taint-run) configuration that request
// configs are overlaid on.
type App struct {
	New         func() *apps.Spec
	TaintConfig func() apps.Config
}

// BundledApps returns the registry the daemon serves out of the box: the
// paper's two evaluation applications keyed by the names the HTTP API
// accepts in the "app" field.
func BundledApps() map[string]App {
	return map[string]App{
		"lulesh": {New: apps.LULESH, TaintConfig: apps.LULESHTaintConfig},
		"milc":   {New: apps.MILC, TaintConfig: apps.MILCTaintConfig},
	}
}

// The wire surface lives in the versioned internal/api package — one
// definition per type, consumed by the server, the Go client, and the
// cluster worker protocol alike. The aliases below keep this package's
// historical names (and the perftaint facade's re-exports) pointing at
// the single authoritative definitions.
type (
	// AnalyzeRequest is the body of POST /v1/analyze.
	AnalyzeRequest = api.AnalyzeRequest
	// SweepAxis is one swept parameter of a SweepRequest.
	SweepAxis = api.SweepAxis
	// SweepRequest is the body of POST /v1/sweep.
	SweepRequest = api.SweepRequest
	// SweepLine is one NDJSON record of a sweep response.
	SweepLine = api.SweepLine
	// JobInfo is the wire view of one scheduled analysis job.
	JobInfo = api.JobInfo
	// AnalysisResult is the wire projection of a core.Report.
	AnalysisResult = api.AnalysisResult
	// JobStats aggregates scheduler counters for /v1/stats.
	JobStats = api.JobStats
	// StatsResponse is the body of GET /v1/stats.
	StatsResponse = api.StatsResponse
	// CacheStats is a point-in-time snapshot of the PreparedCache
	// counters.
	CacheStats = api.CacheStats
	// ModelRequest is the body of POST /v1/models.
	ModelRequest = api.ModelRequest
	// ModelResponse is the body of a finished model extraction.
	ModelResponse = api.ModelResponse
	// APIError is a decoded error response from the daemon.
	APIError = api.APIError
)

// Job lifecycle states reported by the API (aliases of the api package
// constants).
const (
	// StatusQueued marks a job submitted but not yet claimed.
	StatusQueued = api.StatusQueued
	// StatusRunning marks a job claimed and executing.
	StatusRunning = api.StatusRunning
	// StatusDone marks a successfully finished job.
	StatusDone = api.StatusDone
	// StatusFailed marks a job whose analysis failed.
	StatusFailed = api.StatusFailed
	// StatusCanceled marks a job canceled before it could start.
	StatusCanceled = api.StatusCanceled
)

// NewAnalysisResult projects a report into its wire form (alias of
// api.NewAnalysisResult).
var NewAnalysisResult = api.NewAnalysisResult

// DefaultCensusParams is the census column used when a request does not
// name its model parameters: the paper's {p, size}.
func DefaultCensusParams() []string { return api.DefaultCensusParams() }

// mergedConfig overlays overrides on the app's default taint config.
func mergedConfig(app App, overrides apps.Config) apps.Config {
	cfg := app.TaintConfig().Clone()
	for k, v := range overrides {
		cfg[k] = v
	}
	return cfg
}

// MergedTaintConfig overlays overrides on the app's default taint
// configuration and validates both the override names and the merged
// result — the exact merge+check the daemon applies to an /v1/analyze
// request, exported so `perftaint analyze` without -addr produces the
// same configuration (and the same rejections) as the remote path.
func MergedTaintConfig(app App, overrides apps.Config) (apps.Config, error) {
	spec := app.New()
	if err := validateParamNames(spec, configKeys(overrides)); err != nil {
		return nil, err
	}
	cfg := mergedConfig(app, overrides)
	if err := validateConfig(spec, cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// validateConfig rejects configurations the pipeline would choke on with
// a client-attributable error instead of a mid-job failure.
func validateConfig(spec *apps.Spec, cfg apps.Config) error {
	// The pipeline truncates p to an integer rank count, so anything
	// below 1 (including fractional values in (0,1)) would fail mid-job
	// with a misleading "missing p" — reject it here instead.
	if cfg["p"] < 1 {
		return fmt.Errorf("config requires the implicit MPI parameter p >= 1")
	}
	for _, prm := range spec.Params {
		if _, ok := cfg[prm]; !ok {
			return fmt.Errorf("config missing spec parameter %q", prm)
		}
	}
	return nil
}

// knownParam reports whether name is a spec parameter or the implicit p.
func knownParam(spec *apps.Spec, name string) bool {
	if name == "p" {
		return true
	}
	for _, prm := range spec.Params {
		if prm == name {
			return true
		}
	}
	return false
}

// validateParamNames rejects override/axis names the analysis would
// silently ignore — a typo'd parameter must fail loudly, not return a
// plausible result that never varied anything.
func validateParamNames(spec *apps.Spec, names []string) error {
	for _, name := range names {
		if !knownParam(spec, name) {
			return fmt.Errorf("unknown parameter %q (spec has %v plus the implicit p)",
				name, spec.Params)
		}
	}
	return nil
}

func configKeys(cfg apps.Config) []string {
	out := make([]string, 0, len(cfg))
	for k := range cfg {
		out = append(out, k)
	}
	return out
}
