package service

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/diskcache"
)

// PreparedCache is the daemon's content-addressed store of core.Prepared
// artifacts. Specs are canonically hashed (core.SpecDigest covers the
// function bodies the module IR derives from plus the taint spec), and
// each distinct digest is prepared at most once: concurrent misses on the
// same digest are deduplicated singleflight-style, with every waiter
// sharing the one build. Entries are immutable after insertion — Prepared
// values are read-only by construction — so a cached value is handed to
// any number of in-flight jobs without copying or locking beyond the
// lookup itself.
//
// Capacity is bounded by an LRU policy over completed entries; builds in
// flight are pinned and never evicted mid-construction. Hit, miss, and
// eviction counters feed the daemon's /v1/stats endpoint.
type PreparedCache struct {
	mu sync.Mutex
	// capacity bounds completed entries; <= 0 means unbounded.
	capacity int
	// order is the recency list, front = most recently used. Values are
	// *cacheEntry.
	order   *list.List
	entries map[string]*list.Element
	// inflight tracks digests currently being prepared; joiners wait on
	// the call instead of duplicating the build.
	inflight map[string]*inflightCall

	hits      uint64
	misses    uint64
	diskHits  uint64
	evictions uint64

	// prepare builds the artifact on a miss; tests substitute it to count
	// and delay builds. Defaults to core.Prepare.
	prepare func(*apps.Spec) (*core.Prepared, error)

	// disk is the optional persistent tier beneath the LRU. A Prepared
	// value itself is not serializable (it holds the built module and the
	// predecoded program), so the disk entry is the canonical spec bytes
	// under the spec digest: its presence proves this digest was prepared
	// by an earlier process, and the artifact is rebuilt lazily through
	// the same singleflight that guards cold misses — a warm disk after a
	// restart therefore pays at most one build per digest, never a
	// stampede, and the rebuild is classified as a disk hit rather than a
	// miss. Nil disables persistence.
	disk *diskcache.Layer

	// onBuild, when set, observes the latency of every actual prepare
	// (cold miss or disk-hit rebuild); the server points it at the
	// "prepare" stage histogram.
	onBuild func(time.Duration)
}

type cacheEntry struct {
	digest string
	p      *core.Prepared
}

type inflightCall struct {
	done chan struct{}
	p    *core.Prepared
	err  error
}

// NewPreparedCache returns a cache bounded to capacity completed entries
// (<= 0 means unbounded).
func NewPreparedCache(capacity int) *PreparedCache {
	return &PreparedCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightCall),
		prepare:  core.Prepare,
	}
}

// Get returns the Prepared artifact for spec, building it at most once
// per content address no matter how many goroutines ask concurrently.
// The returned digest is the entry's content address. A build error is
// returned to every waiter of that flight and is not cached: the next
// Get retries.
func (c *PreparedCache) Get(spec *apps.Spec) (*core.Prepared, string, error) {
	digest := core.SpecDigest(spec)
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		c.order.MoveToFront(el)
		c.hits++
		p := el.Value.(*cacheEntry).p
		c.mu.Unlock()
		return p, digest, nil
	}
	if call, ok := c.inflight[digest]; ok {
		// Another goroutine is already building this digest; joining its
		// flight serves this caller without a build, which the counters
		// report as a hit (misses count actual builds).
		c.hits++
		c.mu.Unlock()
		<-call.done
		return call.p, digest, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[digest] = call
	disk := c.disk
	c.mu.Unlock()

	// Classify the build before running it: a digest resident on the
	// persistent tier is a disk hit (warm restart, lazy rebuild), an
	// absent one a genuine miss. Concurrent requesters are already
	// parked on the flight, so the disk probe runs at most once per
	// in-memory miss.
	_, fromDisk := disk.Get(digest)
	c.mu.Lock()
	if fromDisk {
		c.diskHits++
	} else {
		c.misses++
	}
	c.mu.Unlock()

	start := time.Now()
	call.p, call.err = c.prepare(spec)
	if c.onBuild != nil {
		c.onBuild(time.Since(start))
	}

	c.mu.Lock()
	delete(c.inflight, digest)
	if call.err == nil {
		c.insertLocked(digest, call.p)
	}
	c.mu.Unlock()
	if call.err == nil && !fromDisk {
		disk.Put(digest, call.p)
	}
	close(call.done)
	return call.p, digest, call.err
}

// SetDisk attaches the persistent tier; call before serving traffic.
func (c *PreparedCache) SetDisk(disk *diskcache.Layer) {
	c.mu.Lock()
	c.disk = disk
	c.mu.Unlock()
}

// DiskStats snapshots the persistent tier's store counters (zero when
// persistence is disabled).
func (c *PreparedCache) DiskStats() diskcache.Stats {
	c.mu.Lock()
	disk := c.disk
	c.mu.Unlock()
	return disk.Stats()
}

// insertLocked files a completed build at the front of the recency list
// and evicts from the back past capacity. Caller holds mu.
func (c *PreparedCache) insertLocked(digest string, p *core.Prepared) {
	if el, ok := c.entries[digest]; ok {
		// A racing flight for the same digest can only happen if entries
		// were dropped between; keep the existing value authoritative.
		c.order.MoveToFront(el)
		return
	}
	c.entries[digest] = c.order.PushFront(&cacheEntry{digest: digest, p: p})
	for c.capacity > 0 && c.order.Len() > c.capacity {
		last := c.order.Back()
		if last == nil {
			break
		}
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).digest)
		c.evictions++
	}
}

// Contains reports whether digest currently has a completed entry,
// without touching recency or counters.
func (c *PreparedCache) Contains(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[digest]
	return ok
}

// CanonicalBytes returns the canonical spec payload for digest if this
// daemon knows it — from the in-memory entry (re-canonicalized from the
// resident spec) or from the persistent tier (whose payload IS the
// canonical byte stream, verified against the digest on read). It never
// triggers a build and never touches recency or hit/miss counters; the
// cluster's digest federation endpoint serves from it.
func (c *PreparedCache) CanonicalBytes(digest string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		p := el.Value.(*cacheEntry).p
		c.mu.Unlock()
		return core.CanonicalSpecBytes(p.Spec), true
	}
	disk := c.disk
	c.mu.Unlock()
	if v, ok := disk.Get(digest); ok {
		if data, ok := v.([]byte); ok {
			return data, true
		}
	}
	return nil, false
}

// SeedDisk files pre-serialized canonical spec bytes for digest on the
// persistent tier without building anything. Workers use it to adopt a
// spec receipt federated from their coordinator: the next Get for that
// digest rebuilds through the disk-hit path instead of counting a cold
// miss. A no-op without a persistent tier.
func (c *PreparedCache) SeedDisk(digest string, payload []byte) error {
	c.mu.Lock()
	disk := c.disk
	c.mu.Unlock()
	return disk.PutRaw(digest, payload)
}

// Digests returns the resident content addresses in most- to
// least-recently-used order.
func (c *PreparedCache) Digests() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).digest)
	}
	return out
}

// Stats snapshots the counters.
func (c *PreparedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		DiskHits:  c.diskHits,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
	}
}
