package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/leakcheck"
)

// installFaults makes sched the process-wide fault plan for one test and
// restores the previous plan on cleanup. Fault injection is global, so
// tests that install schedules must not run in parallel (none in this
// package do).
func installFaults(t *testing.T, sched *faultinject.Schedule) {
	t.Helper()
	prev := faultinject.Install(sched)
	t.Cleanup(func() { faultinject.Install(prev) })
}

// resilienceSweepReq is the 4-point reference design the crash-resume
// tests replay: small enough to sweep dozens of times, large enough to
// have interior record boundaries to crash on.
func resilienceSweepReq() SweepRequest {
	return SweepRequest{
		App: "lulesh",
		Axes: []SweepAxis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{10, 14}},
		},
	}
}

// goldenSweepBytes runs the reference design on a fresh journal-less
// daemon and returns the raw stream — the bytes every crash/resume
// variant must reproduce.
func goldenSweepBytes(t *testing.T) []byte {
	t.Helper()
	srv, err := NewServer(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()
	body, status := postSweepRaw(t, hs.URL, resilienceSweepReq())
	if status != http.StatusOK {
		t.Fatalf("golden sweep returned %d: %s", status, body)
	}
	return body
}

// postSweepRaw POSTs a sweep with no resume headers and returns the raw
// response bytes plus the status, tolerating mid-stream aborts.
func postSweepRaw(t *testing.T, baseURL string, req SweepRequest) ([]byte, int) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body) // short reads expected under injected faults
	return body, resp.StatusCode
}

// TestSweepJournalReplayProperty is the crash-at-every-record-boundary
// property: for each journal append k a clean run performs (acceptance,
// one per design point, the terminal record — and one past the end as
// the no-fault control), crash the append at k, restart a fresh daemon
// over the same cache dir, and require the resubmitted sweep's stream to
// be byte-identical to an uninterrupted journal-less run. frac 0 crashes
// before any bytes of the record land; frac 0.5 leaves a torn frame for
// recovery to truncate.
func TestSweepJournalReplayProperty(t *testing.T) {
	golden := goldenSweepBytes(t)
	req := resilienceSweepReq()
	const appends = 6 // accept + 4 points + done
	for _, frac := range []float64{0, 0.5} {
		for hit := 1; hit <= appends+1; hit++ {
			t.Run(fmt.Sprintf("hit-%d-frac-%v", hit, frac), func(t *testing.T) {
				leakcheck.Check(t)
				dir := t.TempDir()

				// Phase 1: the daemon "crashes" at journal append hit: the
				// record is cut short on disk and the append fails, aborting
				// the stream exactly as process death at that boundary would.
				installFaults(t, faultinject.MustSchedule(faultinject.Fault{
					Site: faultinject.SiteJournalAppend, Hit: hit,
					Kind: faultinject.KindCrash, Frac: frac,
				}))
				srvA, err := NewServer(Options{Workers: 2, CacheDir: dir})
				if err != nil {
					t.Fatal(err)
				}
				hsA := httptest.NewServer(srvA.Handler())
				firstBody, _ := postSweepRaw(t, hsA.URL, req)
				hsA.Close()
				srvA.Close()
				if hit > appends && !bytes.Equal(firstBody, golden) {
					// The control run past the last boundary must already match.
					t.Fatalf("unfaulted journaled run diverged from golden:\n got: %s\nwant: %s", firstBody, golden)
				}

				// Phase 2: a fresh daemon over the same cache dir recovers the
				// journal and the resubmission must reproduce the golden bytes.
				faultinject.Install(nil)
				srvB, err := NewServer(Options{Workers: 2, CacheDir: dir})
				if err != nil {
					t.Fatal(err)
				}
				hsB := httptest.NewServer(srvB.Handler())
				defer hsB.Close()
				defer srvB.Close()
				body, status := postSweepRaw(t, hsB.URL, req)
				if status != http.StatusOK {
					t.Fatalf("resumed sweep returned %d: %s", status, body)
				}
				if !bytes.Equal(body, golden) {
					t.Fatalf("resumed stream diverged from golden:\n got: %s\nwant: %s", body, golden)
				}

				// The terminal record compacts the journal: nothing left open.
				if st := srvB.journal.Stats(); st.OpenJobs != 0 {
					t.Fatalf("journal still holds %d open jobs after completion", st.OpenJobs)
				}
			})
		}
	}
}

// TestSweepClientReconnectResumesExactlyOnce drives the client-side half
// of resume: a journal append failure aborts the stream mid-sweep, the
// retrying client reconnects with Last-Seq, the server replays the
// durable prefix, and emit observes every design point exactly once, in
// order, with the same content a never-interrupted daemon serves.
func TestSweepClientReconnectResumesExactlyOnce(t *testing.T) {
	goldenLines := decodeSweepLines(t, goldenSweepBytes(t))

	srv, client := testServer(t, Options{Workers: 2, CacheDir: t.TempDir()})
	client.Retries = 3
	client.RetryBaseDelay = time.Millisecond

	// Hit 3 = the second design point's record: point 0 is durable and
	// delivered, point 1 aborts the stream.
	installFaults(t, faultinject.MustSchedule(faultinject.Fault{
		Site: faultinject.SiteJournalAppend, Hit: 3, Kind: faultinject.KindError,
	}))

	var got []SweepLine
	err := client.Sweep(context.Background(), resilienceSweepReq(), func(l SweepLine) error {
		got = append(got, l)
		return nil
	})
	if err != nil {
		t.Fatalf("sweep with reconnect failed: %v", err)
	}
	if len(got) != len(goldenLines) {
		t.Fatalf("emit saw %d lines, want %d", len(got), len(goldenLines))
	}
	for i := range got {
		if got[i].Seq != int64(i+1) || got[i].Index != i {
			t.Fatalf("line %d out of order: seq=%d index=%d", i, got[i].Seq, got[i].Index)
		}
		if !sweepLinesEqual(got[i], goldenLines[i]) {
			t.Fatalf("line %d diverged across reconnect:\n got: %+v\nwant: %+v", i, got[i], goldenLines[i])
		}
	}
	if inj := faultinject.Installed().Injected(); inj != 1 {
		t.Fatalf("schedule fired %d times, want 1", inj)
	}
	if st := srv.journal.Stats(); st.Replays == 0 {
		t.Fatal("server never replayed the journal on reconnect")
	}
}

// decodeSweepLines parses a raw NDJSON stream into lines.
func decodeSweepLines(t *testing.T, raw []byte) []SweepLine {
	t.Helper()
	var out []SweepLine
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec SweepLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// sweepLinesEqual compares two lines through their canonical JSON — the
// representation the byte-identity contract is stated in.
func sweepLinesEqual(a, b SweepLine) bool {
	ra, _ := json.Marshal(a)
	rb, _ := json.Marshal(b)
	return bytes.Equal(ra, rb)
}

// TestClientHonorsRetryAfter checks that a 429 with a Retry-After hint
// actually delays the retry: the second attempt must not arrive before
// the hint elapses.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt = time.Now()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.ErrorBody{Error: "throttled", RetryAfterMS: 80})
		default:
			secondAt = time.Now()
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retries = 2
	c.RetryBaseDelay = time.Millisecond
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health never recovered: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d calls, want 2", n)
	}
	if wait := secondAt.Sub(firstAt); wait < 80*time.Millisecond {
		t.Fatalf("retry arrived after %v, want >= 80ms (Retry-After hint)", wait)
	}
}

// TestClientDoesNotRetryClientErrors checks the other half of the retry
// policy: a 400 is the server's final word and must not be retried,
// while a 503 retries up to the budget.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	status := http.StatusBadRequest
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		httpError(w, status, fmt.Errorf("no"))
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retries = 3
	c.RetryBaseDelay = time.Millisecond
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("400 reported as success")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("400 retried: server saw %d calls, want 1", n)
	}

	calls.Store(0)
	status = http.StatusServiceUnavailable
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("503 reported as success")
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("503 saw %d attempts, want 1 + 3 retries", n)
	}
}

// TestSweepRestartPreservesJobIDs pins the job-ID half of the
// byte-identity contract directly: the journaled acceptance reserves the
// ID block, so a daemon restarted mid-sweep labels resumed points with
// the original IDs and never re-issues them to later work.
func TestSweepRestartPreservesJobIDs(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	req := resilienceSweepReq()

	// Crash after two durable points (accept=1, points=2,3; hit 4 dies).
	installFaults(t, faultinject.MustSchedule(faultinject.Fault{
		Site: faultinject.SiteJournalAppend, Hit: 4, Kind: faultinject.KindCrash, Frac: 0.5,
	}))
	srvA, err := NewServer(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hsA := httptest.NewServer(srvA.Handler())
	postSweepRaw(t, hsA.URL, req)
	hsA.Close()
	srvA.Close()
	faultinject.Install(nil)

	srvB, err := NewServer(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	defer srvB.Close()

	// A job submitted before the resume must not collide with the
	// journal-pinned block job-1..job-4.
	c := NewClient(hsB.URL)
	lines := decodeSweepLines(t, mustOKSweep(t, hsB.URL, req))
	for i, line := range lines {
		if want := fmt.Sprintf("job-%d", i+1); line.JobID != want {
			t.Fatalf("resumed point %d labeled %q, want %q", i, line.JobID, want)
		}
	}
	info, err := c.Analyze(context.Background(), AnalyzeRequest{App: "lulesh"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "job-1" || info.ID == "job-2" || info.ID == "job-3" || info.ID == "job-4" {
		t.Fatalf("restarted daemon re-issued journaled job ID %s", info.ID)
	}
}

// mustOKSweep is postSweepRaw requiring a 200.
func mustOKSweep(t *testing.T, baseURL string, req SweepRequest) []byte {
	t.Helper()
	body, status := postSweepRaw(t, baseURL, req)
	if status != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", status, body)
	}
	return body
}

// startJournaledCluster boots a coordinator (journal under dir) plus one
// worker with fast heartbeats and chaos-friendly shard timeouts.
func startJournaledCluster(t *testing.T, dir string) *Client {
	t.Helper()
	leakcheck.Check(t)
	coordSrv, err := NewServer(Options{
		Workers:           2,
		Coordinator:       true,
		CacheDir:          dir,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		ShardRetries:      3,
		ShardTimeout:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	chs := httptest.NewServer(coordSrv.Handler())
	t.Cleanup(func() {
		chs.Close()
		coordSrv.Close()
	})
	wsrv, err := NewServer(Options{Workers: 2, HeartbeatInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	whs := httptest.NewServer(wsrv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	wsrv.StartWorkerLoop(ctx, chs.URL, whs.URL)
	t.Cleanup(func() {
		cancel()
		whs.Close()
		wsrv.Close()
	})
	client := NewClient(chs.URL)
	waitLiveWorkers(t, client, 1)
	return client
}

// chaosScheduleCount resolves how many seeded schedules the chaos gate
// sweeps: the CHAOS_SCHEDULES environment variable (CI pins 200), a
// small default locally, smaller still under -short.
func chaosScheduleCount(t *testing.T) int {
	if v := os.Getenv("CHAOS_SCHEDULES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CHAOS_SCHEDULES %q", v)
		}
		return n
	}
	if testing.Short() {
		return 8
	}
	return 25
}

// TestChaosSchedules is the chaos gate: for each seed, derive a fault
// schedule (disk tears, journal crashes, dropped dispatches, truncated
// shard streams, latency), run the reference sweep on a journaled
// coordinator+worker cluster through a retrying client, and assert the
// one invariant — the artifact is identical to an unfaulted run or the
// failure is a clean typed error; never a duplicate line, an
// out-of-order index, a corrupt journal, or a leaked goroutine.
func TestChaosSchedules(t *testing.T) {
	golden := decodeSweepLines(t, goldenSweepBytes(t))
	req := resilienceSweepReq()
	n := chaosScheduleCount(t)
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// Registered before the cluster (cleanups run LIFO): after every
			// node is down, the journal directory must still open cleanly.
			t.Cleanup(func() {
				if _, err := journal.Open(filepath.Join(dir, "journal")); err != nil {
					t.Errorf("seed %d left an unrecoverable journal: %v", seed, err)
				}
			})
			sched := faultinject.Random(int64(seed), 3)
			installFaults(t, sched)
			client := startJournaledCluster(t, dir)
			client.Retries = 8
			client.RetryBaseDelay = time.Millisecond

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			lines, err := client.SweepAll(ctx, req)
			if err != nil {
				// A clean typed error is an acceptable outcome; a partial
				// emit alongside it must still be a duplicate-free prefix.
				t.Logf("seed %d (%s): clean failure: %v", seed, sched, err)
			}
			seen := make(map[int]bool)
			for _, l := range lines {
				if seen[l.Index] {
					t.Fatalf("seed %d (%s): duplicate index %d", seed, sched, l.Index)
				}
				seen[l.Index] = true
			}
			if err == nil {
				if len(lines) != len(golden) {
					t.Fatalf("seed %d (%s): %d lines, want %d", seed, sched, len(lines), len(golden))
				}
				for i := range lines {
					got, want := lines[i], golden[i]
					// Job IDs may legitimately shift when a fault kills the
					// acceptance append before it is durable (the retry draws a
					// fresh block); everything else must match the golden run.
					got.JobID, want.JobID = "", ""
					if !sweepLinesEqual(got, want) {
						t.Fatalf("seed %d (%s): line %d diverged:\n got: %+v\nwant: %+v", seed, sched, i, got, want)
					}
				}
			}
		})
	}
}
