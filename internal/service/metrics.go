package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// stage names of the pipeline latencies the daemon histograms: the
// per-spec Prepare (module build + static pass + predecode), the
// per-configuration taint run, and the sweep-and-fit model extraction.
const (
	// StagePrepare is the per-spec preparation latency.
	StagePrepare = "prepare"
	// StageRun is the per-configuration analysis job latency.
	StageRun = "run"
	// StageFit is the end-to-end model extraction (sweep + fit) latency.
	StageFit = "fit"
)

// defaultBuckets are the histogram upper bounds in seconds: exponential
// from 500µs to 60s, wide enough for a sub-millisecond cache rebuild and
// a multi-second model extraction on the same scale.
var defaultBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style: counts[i] tallies observations <= bounds[i], with a
// final overflow bucket. Safe for concurrent use; Observe is a mutex and
// two adds, cheap enough for every request on the hot path.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram over the daemon's default latency
// buckets (500µs .. 60s, exponential).
func NewHistogram() *Histogram {
	return &Histogram{
		bounds: defaultBuckets,
		counts: make([]uint64, len(defaultBuckets)+1),
	}
}

// Observe records one latency in seconds.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.count++
	h.mu.Unlock()
}

// ObserveSince records the latency elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// HistogramSnapshot is a consistent point-in-time copy of a histogram:
// cumulative bucket counts aligned with Bounds, plus the +Inf total.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds.
	Bounds []float64
	// Cumulative[i] counts observations <= Bounds[i]; Count is the +Inf
	// total and Sum the sum of all observed values.
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot copies the histogram state under its lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.bounds)),
		Sum:        h.sum,
		Count:      h.count,
	}
	var run uint64
	for i := range h.bounds {
		run += h.counts[i]
		snap.Cumulative[i] = run
	}
	return snap
}

// Metrics aggregates the daemon's observability state that is not
// already a cache or scheduler counter: per-stage latency histograms and
// the admission-control rejection counter. One instance lives on the
// Server and is rendered by GET /metrics.
type Metrics struct {
	stages map[string]*Histogram

	mu          sync.Mutex
	rateLimited uint64
}

// newMetrics builds the fixed stage registry.
func newMetrics() *Metrics {
	return &Metrics{stages: map[string]*Histogram{
		StagePrepare: NewHistogram(),
		StageRun:     NewHistogram(),
		StageFit:     NewHistogram(),
	}}
}

// Stage returns the histogram for one of the Stage* names (nil for
// unknown stages, so a typo observes nothing rather than panicking).
func (m *Metrics) Stage(name string) *Histogram { return m.stages[name] }

// ObserveStage records one latency against a stage histogram.
func (m *Metrics) ObserveStage(name string, d time.Duration) {
	if h := m.stages[name]; h != nil {
		h.Observe(d.Seconds())
	}
}

// rateLimitedInc counts one 429 rejection.
func (m *Metrics) rateLimitedInc() {
	m.mu.Lock()
	m.rateLimited++
	m.mu.Unlock()
}

// RateLimited returns the number of admission-control rejections served.
func (m *Metrics) RateLimited() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rateLimited
}

// --- Prometheus text exposition ---

// promFloat formats a sample value the way Prometheus expects.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promWriter accumulates Prometheus text-format families.
type promWriter struct{ w io.Writer }

func (p promWriter) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, promFloat(v))
	} else {
		fmt.Fprintf(p.w, "%s %s\n", name, promFloat(v))
	}
}

// histogram emits one labeled histogram series (bucket/sum/count).
func (p promWriter) histogram(name, labels string, snap HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, bound := range snap.Bounds {
		fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, promFloat(bound), snap.Cumulative[i])
	}
	fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, snap.Count)
	p.sample(name+"_sum", labels, snap.Sum)
	p.sample(name+"_count", labels, float64(snap.Count))
}

// writeMetrics renders the whole daemon state in Prometheus text format:
// queue and worker gauges, job counters, per-cache hit/miss/eviction and
// disk-tier counters, admission-control counters, and the per-stage
// latency histograms.
func (s *Server) writeMetrics(w io.Writer) {
	p := promWriter{w: w}

	jobs := s.sched.jobStats()
	p.family("perftaintd_queue_depth", "Jobs queued but not yet started.", "gauge")
	p.sample("perftaintd_queue_depth", "", float64(jobs.Queued))
	p.family("perftaintd_jobs_running", "Jobs currently executing on the worker pool.", "gauge")
	p.sample("perftaintd_jobs_running", "", float64(jobs.Running))
	p.family("perftaintd_workers", "Size of the analysis worker pool.", "gauge")
	p.sample("perftaintd_workers", "", float64(s.opts.Workers))
	p.family("perftaintd_jobs_total", "Jobs by terminal outcome since start.", "counter")
	p.sample("perftaintd_jobs_total", `outcome="submitted"`, float64(jobs.Submitted))
	p.sample("perftaintd_jobs_total", `outcome="completed"`, float64(jobs.Completed))
	p.sample("perftaintd_jobs_total", `outcome="failed"`, float64(jobs.Failed))
	p.sample("perftaintd_jobs_total", `outcome="canceled"`, float64(jobs.Canceled))

	type cacheRow struct {
		name                              string
		hits, misses, diskHits, evictions uint64
		entries, capacity                 int
		diskPuts, diskDropped, diskMisses uint64
	}
	pc := s.cache.Stats()
	pd := s.cache.DiskStats()
	mc := s.models.Stats()
	md := s.models.DiskStats()
	rows := []cacheRow{
		{"prepared", pc.Hits, pc.Misses, pc.DiskHits, pc.Evictions, pc.Entries, pc.Capacity, pd.Puts, pd.Dropped, pd.Misses},
		{"models", mc.Hits, mc.Misses, mc.DiskHits, mc.Evictions, mc.Entries, mc.Capacity, md.Puts, md.Dropped, md.Misses},
	}
	p.family("perftaintd_cache_hits_total", "In-memory cache hits (including singleflight joins).", "counter")
	for _, r := range rows {
		p.sample("perftaintd_cache_hits_total", `cache="`+r.name+`"`, float64(r.hits))
	}
	p.family("perftaintd_cache_misses_total", "Cold builds: neither memory nor disk had the entry.", "counter")
	for _, r := range rows {
		p.sample("perftaintd_cache_misses_total", `cache="`+r.name+`"`, float64(r.misses))
	}
	p.family("perftaintd_cache_disk_hits_total", "Entries warm on the persistent tier after a restart.", "counter")
	for _, r := range rows {
		p.sample("perftaintd_cache_disk_hits_total", `cache="`+r.name+`"`, float64(r.diskHits))
	}
	p.family("perftaintd_cache_evictions_total", "LRU evictions of completed entries.", "counter")
	for _, r := range rows {
		p.sample("perftaintd_cache_evictions_total", `cache="`+r.name+`"`, float64(r.evictions))
	}
	p.family("perftaintd_cache_entries", "Resident completed entries.", "gauge")
	for _, r := range rows {
		p.sample("perftaintd_cache_entries", `cache="`+r.name+`"`, float64(r.entries))
	}
	p.family("perftaintd_cache_disk_puts_total", "Entries persisted to the disk tier.", "counter")
	for _, r := range rows {
		p.sample("perftaintd_cache_disk_puts_total", `cache="`+r.name+`"`, float64(r.diskPuts))
	}
	p.family("perftaintd_cache_disk_dropped_total", "Corrupt/short/wrong-version disk entries deleted on read.", "counter")
	for _, r := range rows {
		p.sample("perftaintd_cache_disk_dropped_total", `cache="`+r.name+`"`, float64(r.diskDropped))
	}

	p.family("perftaintd_ratelimit_rejected_total", "Requests rejected with 429 by per-client admission control.", "counter")
	p.sample("perftaintd_ratelimit_rejected_total", "", float64(s.metrics.RateLimited()))
	p.family("perftaintd_ratelimit_clients", "Client token buckets currently tracked.", "gauge")
	p.sample("perftaintd_ratelimit_clients", "", float64(s.limiter.clients()))

	if s.journal != nil {
		jst := s.journal.Stats()
		p.family("perftaintd_journal_open_jobs", "Journaled jobs accepted but not yet terminal.", "gauge")
		p.sample("perftaintd_journal_open_jobs", "", float64(jst.OpenJobs))
		p.family("perftaintd_journal_bytes", "Total size of open journal files on disk.", "gauge")
		p.sample("perftaintd_journal_bytes", "", float64(jst.Bytes))
		p.family("perftaintd_journal_appends_total", "Records durably appended (fsynced) since start.", "counter")
		p.sample("perftaintd_journal_appends_total", "", float64(jst.Appends))
		p.family("perftaintd_journal_replays_total", "Jobs resumed from a non-empty journal since start.", "counter")
		p.sample("perftaintd_journal_replays_total", "", float64(jst.Replays))
		p.family("perftaintd_journal_recovered_tails_total", "Torn or corrupt journal frames discarded during recovery.", "counter")
		p.sample("perftaintd_journal_recovered_tails_total", "", float64(jst.RecoveredTails))
		p.family("perftaintd_journal_compactions_total", "Terminal journals removed after their job finished.", "counter")
		p.sample("perftaintd_journal_compactions_total", "", float64(jst.Compactions))
	}

	p.family("perftaintd_uptime_seconds", "Seconds since the daemon started.", "gauge")
	p.sample("perftaintd_uptime_seconds", "", time.Since(s.start).Seconds())

	if s.coord != nil {
		cs := s.coord.stats()
		p.family("perftaintd_cluster_workers", "Registered workers by liveness.", "gauge")
		p.sample("perftaintd_cluster_workers", `state="live"`, float64(cs.LiveWorkers))
		p.sample("perftaintd_cluster_workers", `state="dead"`, float64(len(cs.Workers)-cs.LiveWorkers))
		p.family("perftaintd_cluster_shards_total", "Completed shards by execution site.", "counter")
		for _, ws := range cs.Workers {
			p.sample("perftaintd_cluster_shards_total", `worker="`+ws.ID+`"`, float64(ws.Shards))
		}
		p.sample("perftaintd_cluster_shards_total", `worker="coordinator-local"`, float64(cs.ShardsLocal))
		p.family("perftaintd_cluster_shard_retries_total", "Shard dispatches that failed and were retried.", "counter")
		p.sample("perftaintd_cluster_shard_retries_total", "", float64(cs.ShardRetries))
		p.family("perftaintd_cluster_heartbeat_misses_total", "Live-to-dead worker transitions from heartbeat timeouts.", "counter")
		p.sample("perftaintd_cluster_heartbeat_misses_total", "", float64(cs.HeartbeatMisses))
		p.family("perftaintd_cluster_prepared_served_total", "Canonical spec payloads served to workers by digest.", "counter")
		p.sample("perftaintd_cluster_prepared_served_total", "", float64(cs.FederatedFetches))
		p.family("perftaintd_cluster_shard_duration_seconds", "Round-trip latency of successful remote shard dispatches.", "histogram")
		p.histogram("perftaintd_cluster_shard_duration_seconds", "", s.coord.shardHist.Snapshot())
	} else if wl := s.workerLinkRef(); wl != nil {
		ws := wl.stats()
		p.family("perftaintd_cluster_federated_fetches_total", "Prepared-spec payloads fetched from the coordinator by digest.", "counter")
		p.sample("perftaintd_cluster_federated_fetches_total", "", float64(ws.FederatedFetches))
	}

	p.family("perftaintd_stage_duration_seconds",
		"Latency by pipeline stage: prepare (per spec), run (per analysis job), fit (per model extraction).",
		"histogram")
	names := make([]string, 0, len(s.metrics.stages))
	for name := range s.metrics.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p.histogram("perftaintd_stage_duration_seconds", `stage="`+name+`"`, s.metrics.stages[name].Snapshot())
	}
}
