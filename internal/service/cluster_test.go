package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// clusterNode is one daemon of a test cluster plus its HTTP front.
type clusterNode struct {
	srv    *Server
	hs     *httptest.Server
	cancel context.CancelFunc // stops the worker membership loop
}

// startCluster boots a coordinator and n workers on httptest servers
// with fast heartbeats, waits until every worker is live, and returns
// the coordinator's client plus the nodes. wrap, when non-nil, decorates
// worker i's handler (fault injection).
func startCluster(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) (*Client, *clusterNode, []*clusterNode) {
	t.Helper()
	leakcheck.Check(t) // registered first => verified after every node closes
	coordSrv, err := NewServer(Options{
		Workers:           2,
		Coordinator:       true,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		ShardRetries:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	chs := httptest.NewServer(coordSrv.Handler())
	t.Cleanup(func() {
		chs.Close()
		coordSrv.Close()
	})
	coord := &clusterNode{srv: coordSrv, hs: chs}

	var workers []*clusterNode
	for i := 0; i < n; i++ {
		wsrv, err := NewServer(Options{Workers: 2, HeartbeatInterval: 25 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = wsrv.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		whs := httptest.NewServer(h)
		ctx, cancel := context.WithCancel(context.Background())
		wsrv.StartWorkerLoop(ctx, chs.URL, whs.URL)
		t.Cleanup(func() {
			cancel()
			whs.Close()
			wsrv.Close()
		})
		workers = append(workers, &clusterNode{srv: wsrv, hs: whs, cancel: cancel})
	}

	client := NewClient(chs.URL)
	waitLiveWorkers(t, client, n)
	return client, coord, workers
}

// waitLiveWorkers polls the coordinator's stats until want workers are
// live.
func waitLiveWorkers(t *testing.T, c *Client, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(context.Background())
		if err == nil && st.Cluster != nil && st.Cluster.LiveWorkers == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached %d live workers (stats: %+v)", want, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// clusterSweepReq is the reference design the byte-identity tests run:
// 12 points, enough to split into several shards across two workers.
func clusterSweepReq() SweepRequest {
	return SweepRequest{
		App: "lulesh",
		Axes: []SweepAxis{
			{Param: "p", Values: []float64{2, 4, 6, 8}},
			{Param: "size", Values: []float64{10, 14, 18}},
		},
	}
}

// rawSweep POSTs a sweep and returns the exact response bytes.
func rawSweep(t *testing.T, baseURL string, req SweepRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// singleNodeSweep runs the reference design on a fresh standalone daemon
// and returns the raw stream — the golden bytes every cluster variant
// must reproduce.
func singleNodeSweep(t *testing.T) []byte {
	t.Helper()
	srv, err := NewServer(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()
	return rawSweep(t, hs.URL, clusterSweepReq())
}

func TestClusterSweepByteIdenticalToSingleNode(t *testing.T) {
	want := singleNodeSweep(t)
	client, coord, _ := startCluster(t, 2, nil)

	got := rawSweep(t, coord.hs.URL, clusterSweepReq())
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed sweep stream diverged from single-node:\n got: %s\nwant: %s", got, want)
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.ShardsDispatched == 0 {
		t.Fatalf("no shards were dispatched remotely: %+v", st.Cluster)
	}
	// Both workers should have carried shards: the balancer spreads a
	// 6-shard design over 2 idle workers.
	for _, ws := range st.Cluster.Workers {
		if ws.Shards == 0 {
			t.Errorf("worker %s executed no shards; balancing is broken: %+v", ws.ID, st.Cluster.Workers)
		}
	}
}

func TestClusterWorkerKilledMidShardRetriesElsewhere(t *testing.T) {
	want := singleNodeSweep(t)

	// Worker 1's first shard dies mid-stream: a partial NDJSON line goes
	// out, then the connection is severed — exactly what a SIGKILL'd
	// worker looks like from the coordinator's side.
	var mu sync.Mutex
	killed := false
	wrap := func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" {
				mu.Lock()
				first := !killed
				killed = true
				mu.Unlock()
				if first {
					w.Header().Set("Content-Type", "application/x-ndjson")
					w.WriteHeader(http.StatusOK)
					_, _ = io.WriteString(w, `{"index":`)
					if f, ok := w.(http.Flusher); ok {
						f.Flush()
					}
					panic(http.ErrAbortHandler)
				}
			}
			h.ServeHTTP(w, r)
		})
	}

	client, coord, _ := startCluster(t, 2, wrap)
	got := rawSweep(t, coord.hs.URL, clusterSweepReq())
	if !bytes.Equal(got, want) {
		t.Fatalf("stream after mid-shard worker death diverged from single-node:\n got: %s\nwant: %s", got, want)
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.ShardRetries == 0 {
		t.Fatalf("expected at least one shard retry after the mid-shard death: %+v", st.Cluster)
	}
	if st.Cluster.ShardsDispatched == 0 {
		t.Fatalf("retries should have landed on the surviving worker: %+v", st.Cluster)
	}
}

func TestClusterHeartbeatLossBenchesWorker(t *testing.T) {
	want := singleNodeSweep(t)
	client, coord, workers := startCluster(t, 2, nil)

	// Stop worker 1's membership loop: its server stays up but its
	// heartbeats stop, so the reaper must bench it.
	workers[1].cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := client.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Cluster.LiveWorkers == 1 {
			if st.Cluster.HeartbeatMisses == 0 {
				t.Fatalf("worker benched without counting a heartbeat miss: %+v", st.Cluster)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("silent worker never benched: %+v", st.Cluster)
		}
		time.Sleep(10 * time.Millisecond)
	}

	got := rawSweep(t, coord.hs.URL, clusterSweepReq())
	if !bytes.Equal(got, want) {
		t.Fatalf("stream with a benched worker diverged from single-node:\n got: %s\nwant: %s", got, want)
	}
}

func TestClusterCoordinatorWithoutWorkersRunsLocally(t *testing.T) {
	want := singleNodeSweep(t)
	srv, err := NewServer(Options{Workers: 2, Coordinator: true,
		HeartbeatInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()

	got := rawSweep(t, hs.URL, clusterSweepReq())
	if !bytes.Equal(got, want) {
		t.Fatalf("workerless coordinator diverged from single-node:\n got: %s\nwant: %s", got, want)
	}
	st, err := NewClient(hs.URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.ShardsDispatched != 0 || st.Cluster.ShardsLocal != 0 {
		t.Fatalf("workerless coordinator should use the plain local path: %+v", st.Cluster)
	}
}

func TestClusterModelExtractionMatchesSingleNode(t *testing.T) {
	req := ModelRequest{
		App:    "lulesh",
		Params: []string{"p", "size"},
		Axes: []SweepAxis{
			{Param: "p", Values: []float64{2, 4, 6, 8}},
			{Param: "size", Values: []float64{10, 14, 18}},
		},
	}

	// Single-node golden.
	ssrv, err := NewServer(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	shs := httptest.NewServer(ssrv.Handler())
	defer shs.Close()
	defer ssrv.Close()
	wantResp, err := NewClient(shs.URL).Models(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	client, _, _ := startCluster(t, 2, nil)
	gotResp, err := client.Models(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.Key != wantResp.Key {
		t.Fatalf("registry key diverged: distributed %s, single-node %s", gotResp.Key, wantResp.Key)
	}
	gotJSON, _ := json.Marshal(gotResp.ModelSet)
	wantJSON, _ := json.Marshal(wantResp.ModelSet)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("distributed ModelSet diverged from single-node:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}

	// The finished artifact must land in the coordinator's registry.
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Models.Entries == 0 {
		t.Fatal("distributed extraction did not warm the coordinator's model registry")
	}
	again, err := client.Models(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("second extraction of the same design should be a registry hit")
	}
}

func TestClusterProtocolMismatchRejectedAtRegistration(t *testing.T) {
	_, coord, _ := startCluster(t, 0, nil)
	body, _ := json.Marshal(map[string]string{
		"protocol": "perftaint-api-v0",
		"addr":     "http://127.0.0.1:1",
	})
	resp, err := http.Post(coord.hs.URL+"/v1/worker/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed-version registration answered %d, want 400", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == "" {
		t.Fatalf("error envelope missing: %s", raw)
	}
}

func TestClusterFederatedPreparedFetch(t *testing.T) {
	client, coord, workers := startCluster(t, 1, nil)
	if _, err := client.SweepAll(context.Background(), clusterSweepReq()); err != nil {
		t.Fatal(err)
	}
	// The worker started cold: its first shard must have federated the
	// spec payload from the coordinator before building.
	wst, err := NewClient(workers[0].hs.URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if wst.Cluster == nil || wst.Cluster.Role != "worker" {
		t.Fatalf("worker stats carry no worker-role cluster block: %+v", wst.Cluster)
	}
	if wst.Cluster.FederatedFetches == 0 {
		t.Fatal("worker never federated the prepared spec from the coordinator")
	}
	cst, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cst.Cluster.FederatedFetches == 0 {
		t.Fatal("coordinator served no prepared payloads")
	}
	_ = coord
}
