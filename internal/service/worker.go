package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
	"repro/internal/runner"
)

// workerLink is a daemon's membership in a cluster: the registration and
// heartbeat loop against its coordinator, plus the digest-federation
// fetch path that seeds the local prepared cache from the coordinator's.
type workerLink struct {
	s         *Server
	coordURL  string
	advertise string
	client    *http.Client

	mu         sync.Mutex
	workerID   string
	fedFetches uint64
}

// StartWorkerLoop joins this daemon to the coordinator at coordURL,
// advertising itself as reachable at advertise, and keeps the membership
// alive (register, heartbeat, re-register when the coordinator forgets
// us — e.g. after its restart) until ctx dies. ListenAndServe calls it
// when Options.JoinURL is set; tests drive it directly against
// httptest servers.
func (s *Server) StartWorkerLoop(ctx context.Context, coordURL, advertise string) {
	wl := &workerLink{
		s:         s,
		coordURL:  strings.TrimRight(coordURL, "/"),
		advertise: strings.TrimRight(advertise, "/"),
		client:    &http.Client{Timeout: 10 * time.Second},
	}
	s.setWorkerLink(wl)
	go wl.run(ctx)
}

func (s *Server) setWorkerLink(wl *workerLink) {
	s.clusterMu.Lock()
	s.worker = wl
	s.clusterMu.Unlock()
}

func (s *Server) workerLinkRef() *workerLink {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return s.worker
}

// run is the membership loop: ensure registration, then heartbeat at the
// configured interval. A 404 heartbeat (the coordinator does not know
// us) drops the registration so the next iteration re-registers; any
// other failure just retries on the next tick — the coordinator benches
// silent workers itself.
func (wl *workerLink) run(ctx context.Context) {
	t := time.NewTicker(wl.s.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		wl.mu.Lock()
		id := wl.workerID
		wl.mu.Unlock()
		if id == "" {
			wl.register(ctx)
		} else {
			wl.heartbeat(ctx, id)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// register performs the protocol handshake. The coordinator rejects
// version mismatches here, so a worker that holds a workerID is known
// wire-compatible.
func (wl *workerLink) register(ctx context.Context) {
	var resp api.RegisterResponse
	err := wl.post(ctx, "/v1/worker/register",
		&api.RegisterRequest{Protocol: api.ProtocolVersion, Addr: wl.advertise}, &resp)
	if err != nil {
		return
	}
	wl.mu.Lock()
	wl.workerID = resp.WorkerID
	wl.mu.Unlock()
}

func (wl *workerLink) heartbeat(ctx context.Context, id string) {
	var resp api.HeartbeatResponse
	err := wl.post(ctx, "/v1/worker/heartbeat", &api.HeartbeatRequest{WorkerID: id}, &resp)
	var apiErr *api.APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
		wl.mu.Lock()
		wl.workerID = ""
		wl.mu.Unlock()
	}
}

// post is a minimal JSON round-trip against the coordinator.
func (wl *workerLink) post(ctx context.Context, path string, body, out any) error {
	c := NewClient(wl.coordURL)
	c.HTTP = wl.client
	return c.do(ctx, http.MethodPost, path, body, out)
}

// ensurePrepared makes the worker's cache aware of digest before a shard
// builds it: if neither the memory tier nor the disk tier knows the
// digest, the canonical spec bytes are fetched from the coordinator,
// verified (sha256 of the payload must BE the digest), and seeded onto
// the disk tier — so the subsequent build classifies as a federated
// disk hit, and a digest the coordinator never served fails the shard
// loudly instead of silently building from a different program. Best
// effort: federation is an accelerator, and a fetch failure falls
// through to the ordinary local build.
func (wl *workerLink) ensurePrepared(ctx context.Context, digest string) {
	if _, ok := wl.s.cache.CanonicalBytes(digest); ok {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wl.coordURL+"/v1/prepared/"+digest, nil)
	if err != nil {
		return
	}
	resp, err := wl.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != digest {
		return
	}
	if wl.s.cache.SeedDisk(digest, data) == nil {
		wl.mu.Lock()
		wl.fedFetches++
		wl.mu.Unlock()
	}
}

// stats snapshots the worker-role cluster state for /v1/stats.
func (wl *workerLink) stats() *api.ClusterStats {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	return &api.ClusterStats{
		Role:             "worker",
		FederatedFetches: wl.fedFetches,
	}
}

// handleShard executes one contiguous design shard and streams its
// results as NDJSON ShardLines in design order. Any daemon serves it —
// shard execution needs nothing coordinator-specific — but in practice
// only coordinators dispatch here. Shards are coordinator-internal
// traffic and bypass client admission control: the originating client
// request was already charged for every design point at the coordinator.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req api.ShardRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Protocol != api.ProtocolVersion {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("protocol mismatch: coordinator speaks %q, worker %q", req.Protocol, api.ProtocolVersion))
		return
	}
	if len(req.Configs) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("shard has no configs"))
		return
	}
	if wl := s.workerLinkRef(); wl != nil {
		wl.ensurePrepared(r.Context(), req.SpecDigest)
	}
	_, _, prepared, digest, err := s.resolve(req.App)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if digest != req.SpecDigest {
		// The worker's registry builds a different program than the
		// coordinator asked for — refusing is the only safe answer, since
		// merged results must all come from one spec content.
		httpError(w, http.StatusConflict,
			fmt.Errorf("spec digest mismatch for app %q: built %s, coordinator wants %s", req.App, digest, req.SpecDigest))
		return
	}
	params := censusParams(req.CensusParams)
	// Injected shard-stream faults model a worker dying or stalling
	// mid-shard: the coordinator must re-dispatch the whole shard to a
	// survivor (or run it locally) and the merged stream must not change.
	cutAt := -1 // truncate the NDJSON stream after this many lines
	if f, ok := faultinject.Eval(faultinject.SiteShardStream); ok {
		switch f.Kind {
		case faultinject.KindError:
			httpError(w, http.StatusServiceUnavailable, faultinject.Errf(f))
			return
		case faultinject.KindDrop:
			// Worker dies before answering: the connection aborts with no
			// status line, the coordinator re-dispatches to a survivor.
			panic(http.ErrAbortHandler)
		case faultinject.KindTruncate:
			cutAt = faultinject.Cut(f, len(req.Configs))
		case faultinject.KindLatency:
			select {
			case <-time.After(f.Delay):
			case <-r.Context().Done():
				return
			}
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	rn := &runner.Runner{Workers: s.opts.Workers}
	sent := 0
	errCut := errors.New("injected shard stream cut")
	err = rn.SweepFitCtx(r.Context(), prepared, req.Configs, func(res runner.Result) error {
		if cutAt >= 0 && sent >= cutAt {
			return errCut // drain the pool, then kill the connection below
		}
		line := shardLine(req.App, digest, req.Start+res.Index, params, res)
		if err := enc.Encode(&line); err != nil {
			return err
		}
		_ = rc.Flush()
		sent++
		return nil
	})
	if errors.Is(err, errCut) {
		// Mid-stream death: abort the connection so the coordinator sees a
		// short read, not a clean-but-incomplete end-of-stream.
		panic(http.ErrAbortHandler)
	}
}
