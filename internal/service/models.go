package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/apps"
	"repro/internal/journal"
	"repro/internal/modelreg"
	"repro/internal/runner"
)

// ResolveModelDefaults overlays a modeling config's defaults on the
// app's taint configuration — the one canonical merge. Every surface
// that extracts models (this daemon, `perftaint model`'s local mode,
// examples/modeling) must route through it: registry cache hits depend
// on all of them computing byte-identical defaults before digesting.
func ResolveModelDefaults(app App, cfg modelreg.Config) modelreg.Config {
	cfg.Defaults = mergedConfig(app, cfg.Defaults)
	return cfg
}

// modelConfig assembles the modelreg configuration from a request and
// the app's taint defaults.
func (s *Server) modelConfig(req ModelRequest, app App) modelreg.Config {
	cfg := modelreg.Config{
		App:      req.App,
		Params:   req.Params,
		Reps:     req.Reps,
		Seed:     req.Seed,
		RelNoise: req.RelNoise,
		Batch:    req.Batch,
		Metrics:  req.Metrics,
		Defaults: req.Defaults,
	}
	for _, ax := range req.Axes {
		cfg.Axes = append(cfg.Axes, modelreg.Axis{Param: ax.Param, Values: ax.Values})
	}
	return ResolveModelDefaults(app, cfg)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, 1) {
		return
	}
	var req ModelRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	app, spec, prepared, digest, err := s.resolve(req.App)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cfg := s.modelConfig(req, app)
	if err := cfg.Validate(spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if n := cfg.Size(); n > s.opts.MaxSweepConfigs {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("design expands to %d configs, over the server cap of %d", n, s.opts.MaxSweepConfigs))
		return
	}
	key := modelreg.Key(digest, cfg)

	// The sweep+fit runs on its own bounded runner (same worker count as
	// the scheduler pool); the registry's singleflight guarantees one
	// build per key however many clients ask at once. The build is
	// scoped to the SERVER's lifetime, not this request's: joiners of an
	// in-flight build must not fail because the first requester
	// disconnected, so a build, once started, runs to completion (it is
	// fuel-bounded and capped by MaxSweepConfigs) and warms the registry
	// even if every requester has gone away. Daemon shutdown cancels it.
	build := func(onEvent func(modelreg.Event)) (*modelreg.ModelSet, error) {
		start := time.Now()
		// The design sweep shards across the cluster when this daemon
		// coordinates live workers; fitting, measurement synthesis, and
		// ranking always run here, so the artifact (and its registry key)
		// is identical either way. A coordinator without live workers
		// sweeps locally like any standalone daemon.
		sweep := modelreg.LocalSweep(&runner.Runner{Workers: s.opts.Workers}, prepared)
		if s.coord != nil && s.coord.hasLive() {
			sweep = s.coord.sampleSweep(req.App, digest, prepared)
		}
		// Journal-backed resume: measured samples are made durable as they
		// arrive, keyed by the registry key, so a daemon restarted
		// mid-extraction replays the journaled prefix (absolute indices
		// preserved, hence identical synthetic noise, hence a byte-identical
		// ModelSet and registry key) and sweeps only the remaining tail.
		sweep = s.journaledSweep(key, sweep)
		ms, err := modelreg.ExtractWith(s.baseCtx, sweep, s.opts.Workers, prepared, cfg, onEvent)
		// The fit histogram observes real extractions only: cache and disk
		// hits never reach this closure.
		s.metrics.ObserveStage(StageFit, time.Since(start))
		return ms, err
	}

	if !req.Stream {
		ms, cached, err := s.models.Get(key, func() (*modelreg.ModelSet, error) {
			return build(nil)
		})
		if err != nil {
			status := http.StatusInternalServerError
			if s.baseCtx.Err() != nil {
				// Shutdown, not a server bug.
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, &ModelResponse{
			Key: key, SpecDigest: digest, DesignDigest: ms.DesignDigest,
			Cached: cached, ModelSet: ms,
		})
		return
	}

	// Streaming mode: progress events as they happen, one JSON object
	// per line, then the terminal result. Joiners of someone else's
	// in-flight build see no progress events (the builder owns them)
	// but still receive the result line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	var seq int64
	emit := func(line *api.ModelStreamLine) {
		seq++
		line.Seq = seq
		_ = enc.Encode(line)
		_ = rc.Flush()
	}
	ms, cached, err := s.models.Get(key, func() (*modelreg.ModelSet, error) {
		return build(func(ev modelreg.Event) {
			emit(&api.ModelStreamLine{Event: ev})
		})
	})
	if err != nil {
		emit(&api.ModelStreamLine{Event: modelreg.Event{Type: "error"}, Error: err.Error()})
		return
	}
	emit(&api.ModelStreamLine{
		Event: modelreg.Event{Type: "result"},
		Key:   key, SpecDigest: digest, DesignDigest: ms.DesignDigest,
		Cached: cached, ModelSet: ms,
	})
}

// journaledSweep wraps a model-extraction SweepFunc with journal-backed
// resume. Completed samples are journaled (fsynced) before they reach
// the fit pipeline; on resume, the journaled prefix is re-fed with its
// original absolute design indices — the synthetic measurement noise is
// seeded per index, so replay reproduces the exact samples and the
// finished ModelSet is byte-identical to an uninterrupted extraction —
// then inner sweeps only the remaining design tail. A nil journal
// returns inner unchanged.
func (s *Server) journaledSweep(key string, inner modelreg.SweepFunc) modelreg.SweepFunc {
	if s.journal == nil {
		return inner
	}
	return func(ctx context.Context, cfgs []apps.Config, consume func(modelreg.Sample) error) error {
		jj, err := s.journal.Acquire(ctx, journal.KindModel, key)
		if err != nil {
			return fmt.Errorf("service: model journal: %w", err)
		}
		defer jj.Release()
		if acc, ok := jj.Accept(); ok && acc.N != len(cfgs) {
			// Same key, different design size: do not trust the journal.
			jj.Release()
			return inner(ctx, cfgs, consume)
		} else if !ok {
			if err := jj.Append(journal.Record{Type: journal.TypeAccept, Kind: journal.KindModel,
				Key: key, N: len(cfgs)}); err != nil {
				return fmt.Errorf("service: model journal: %w", err)
			}
		}
		samples := jj.Samples()
		for _, rec := range samples {
			smp := modelreg.Sample{Index: rec.Index, Config: cfgs[rec.Index],
				Iterations: rec.Iterations, Instructions: rec.Instructions}
			if err := consume(smp); err != nil {
				return err
			}
		}
		done := len(samples)
		if done < len(cfgs) {
			err := inner(ctx, cfgs[done:], func(smp modelreg.Sample) error {
				// inner indexes relative to the tail it was handed; restore
				// the absolute design position before journaling or fitting.
				smp.Index += done
				smp.Config = cfgs[smp.Index]
				if err := jj.Append(journal.Record{Type: journal.TypeSample, Index: smp.Index,
					Iterations: smp.Iterations, Instructions: smp.Instructions}); err != nil {
					return fmt.Errorf("service: model journal: %w", err)
				}
				return consume(smp)
			})
			if err != nil {
				return err
			}
		}
		// The extraction itself succeeded; a failed terminal append only
		// means the next submission replays instead of starting cold.
		_ = jj.Done()
		return nil
	}
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	ms, ok := s.models.Lookup(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no model set under key %q", key))
		return
	}
	writeJSON(w, http.StatusOK, &ModelResponse{
		Key: key, SpecDigest: ms.SpecDigest, DesignDigest: ms.DesignDigest,
		Cached: true, ModelSet: ms,
	})
}

// Models submits one model-extraction request and returns the finished
// (or cached) model set.
func (c *Client) Models(ctx context.Context, req ModelRequest) (*ModelResponse, error) {
	req.Stream = false
	var out ModelResponse
	if err := c.do(ctx, http.MethodPost, "/v1/models", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ModelByKey fetches a resident model set by its registry key.
func (c *Client) ModelByKey(ctx context.Context, key string) (*ModelResponse, error) {
	var out ModelResponse
	if err := c.do(ctx, http.MethodGet, "/v1/models/"+key, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ModelsStream submits a model-extraction request in streaming mode:
// onEvent (optional) observes every progress line, and the terminal
// result line is returned. A server-side failure arrives as an error
// even though the HTTP status was already 200 when streaming began.
//
// With Retries > 0 a broken stream resubmits the whole request: the
// server's registry and journal make resubmission idempotent (journaled
// samples replay instead of re-running), but progress events may repeat
// across a reconnect — onEvent consumers should treat events as
// at-least-once. The returned result is unaffected: it is served from
// the content-addressed registry either way.
func (c *Client) ModelsStream(ctx context.Context, req ModelRequest, onEvent func(modelreg.Event)) (*ModelResponse, error) {
	req.Stream = true
	var result *ModelResponse
	err := c.retry(ctx, func() error {
		resp, err := c.stream(ctx, "/v1/models", &req, nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		result = nil
		err = scanNDJSON(resp.Body, func(raw []byte) error {
			var line api.ModelStreamLine
			if err := json.Unmarshal(raw, &line); err != nil {
				return fmt.Errorf("service: decode model stream line: %w", err)
			}
			switch line.Type {
			case "result":
				result = &ModelResponse{Key: line.Key, SpecDigest: line.SpecDigest,
					DesignDigest: line.DesignDigest, Cached: line.Cached, ModelSet: line.ModelSet}
			case "error":
				// The server finished the extraction and it failed; retrying
				// would re-run the same failing build.
				return &permanentError{fmt.Errorf("service: model extraction failed: %s", line.Error)}
			default:
				if onEvent != nil {
					onEvent(line.Event)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if result == nil {
			// Truncated stream: the daemon died before the result line.
			return fmt.Errorf("service: model stream ended without a result line")
		}
		return nil
	})
	if err != nil {
		var perm *permanentError
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		return nil, err
	}
	return result, nil
}
