package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/leakcheck"
)

func testServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	leakcheck.Check(t) // registered first => verified after the server closes
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, NewClient(hs.URL)
}

func TestServeAnalyzeMatchesDirectPipeline(t *testing.T) {
	_, client := testServer(t, Options{Workers: 2})
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	job, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != StatusDone || job.Result == nil {
		t.Fatalf("job = %+v, want done with result", job)
	}

	want, err := core.Analyze(apps.LULESH(), apps.LULESHTaintConfig())
	if err != nil {
		t.Fatal(err)
	}
	if job.Result.Census != want.Census(DefaultCensusParams()) {
		t.Errorf("served census drifted:\n got %+v\nwant %+v", job.Result.Census, want.Census(DefaultCensusParams()))
	}
	if job.Result.Instructions != want.Instructions {
		t.Errorf("instructions = %d, want %d", job.Result.Instructions, want.Instructions)
	}
	if !reflect.DeepEqual(job.Result.FuncDeps, want.FuncDeps) {
		t.Error("function dependencies drifted from the direct pipeline")
	}
	if job.Result.SpecDigest != core.SpecDigest(apps.LULESH()) {
		t.Error("result does not carry the spec content address")
	}
}

func TestServeCacheHitOnSecondSubmission(t *testing.T) {
	_, client := testServer(t, Options{Workers: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh"}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (single build)", st.Cache.Misses)
	}
	if st.Cache.Hits < 1 {
		t.Errorf("cache hits = %d, want >= 1 on the second submission", st.Cache.Hits)
	}
	if st.Jobs.Completed != 2 {
		t.Errorf("completed jobs = %d, want 2", st.Jobs.Completed)
	}
	if st.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", st.Cache.Entries)
	}
}

func TestServeAsyncJobLifecycle(t *testing.T) {
	_, client := testServer(t, Options{Workers: 1})
	ctx := context.Background()
	job, err := client.Analyze(ctx, AnalyzeRequest{App: "milc", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatal("async submission returned no job id")
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := client.WaitJob(waitCtx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone || final.Result == nil {
		t.Fatalf("final job = %+v, want done with result", final)
	}
	if final.Result.App != "milc" {
		t.Fatalf("result app = %q, want milc", final.Result.App)
	}
}

func TestServeSweepStreamsDeterministicOrder(t *testing.T) {
	_, client := testServer(t, Options{Workers: 4})
	ctx := context.Background()
	req := SweepRequest{
		App: "lulesh",
		Axes: []SweepAxis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{4, 5}},
		},
	}
	lines, err := client.SweepAll(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d sweep lines, want 4", len(lines))
	}
	// Design order: last axis fastest.
	wantCfgs := [][2]float64{{2, 4}, {2, 5}, {4, 4}, {4, 5}}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d carries index %d", i, l.Index)
		}
		if l.Error != "" || l.Result == nil {
			t.Fatalf("line %d failed: %s", i, l.Error)
		}
		if l.Config["p"] != wantCfgs[i][0] || l.Config["size"] != wantCfgs[i][1] {
			t.Fatalf("line %d config = %v, want p=%g size=%g", i, l.Config, wantCfgs[i][0], wantCfgs[i][1])
		}
	}
	// A repeated sweep reuses the same Prepared: exactly one build ever.
	if _, err := client.SweepAll(ctx, req); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 1 {
		t.Errorf("sweeps rebuilt the spec: misses = %d, want 1", st.Cache.Misses)
	}
}

func TestServeConcurrentMixedLoad(t *testing.T) {
	_, client := testServer(t, Options{Workers: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app := "lulesh"
			if i%2 == 1 {
				app = "milc"
			}
			job, err := client.Analyze(ctx, AnalyzeRequest{App: app})
			if err != nil {
				errs <- err
				return
			}
			if job.Status != StatusDone {
				errs <- errFromJob(job)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per distinct app)", st.Cache.Misses)
	}
}

func errFromJob(j *JobInfo) error {
	raw, _ := json.Marshal(j)
	return &jobError{string(raw)}
}

type jobError struct{ s string }

func (e *jobError) Error() string { return "unexpected job state: " + e.s }

func TestServeRejectsBadRequests(t *testing.T) {
	_, client := testServer(t, Options{Workers: 1})
	ctx := context.Background()
	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh", Config: apps.Config{"p": -1}}); err == nil {
		t.Error("non-positive p accepted")
	}
	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh", Config: apps.Config{"sze": 5}}); err == nil {
		t.Error("typo'd config parameter silently ignored instead of rejected")
	}
	if _, err := client.SweepAll(ctx, SweepRequest{
		App:  "lulesh",
		Axes: []SweepAxis{{Param: "sze", Values: []float64{4, 5}}},
	}); err == nil {
		t.Error("typo'd sweep axis silently ignored instead of rejected")
	}
	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh", CensusParams: []string{"p", "sze"}}); err == nil {
		t.Error("typo'd census_params silently ignored instead of rejected")
	}
	if _, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh", Config: apps.Config{"p": 0.5}}); err == nil {
		t.Error("fractional p in (0,1) accepted; pipeline would truncate it to 0")
	}
	if _, err := client.SweepAll(ctx, SweepRequest{App: "lulesh"}); err == nil {
		t.Error("axis-less sweep accepted")
	}
	if _, err := client.SweepAll(ctx, SweepRequest{
		App:  "lulesh",
		Axes: []SweepAxis{{Param: "p"}},
	}); err == nil {
		t.Error("empty axis accepted")
	}
	if _, err := client.Job(ctx, "job-999999"); err == nil {
		t.Error("unknown job id did not 404")
	}
}

func TestServeSweepCapsDesignSize(t *testing.T) {
	_, client := testServer(t, Options{Workers: 1, MaxSweepConfigs: 3})
	vals := []float64{2, 4, 8, 16}
	_, err := client.SweepAll(context.Background(), SweepRequest{
		App:  "lulesh",
		Axes: []SweepAxis{{Param: "p", Values: vals}},
	})
	if err == nil {
		t.Fatal("oversized design accepted")
	}

	// Stacking enough binary axes to overflow a naive size product must
	// still be rejected (incremental check), as must repeated axes.
	var many []SweepAxis
	for i := 0; i < 70; i++ {
		many = append(many, SweepAxis{Param: "p", Values: []float64{2, 4}})
	}
	if _, err := client.SweepAll(context.Background(), SweepRequest{App: "lulesh", Axes: many}); err == nil {
		t.Fatal("2^70 design accepted (size product overflowed)")
	}
	if _, err := client.SweepAll(context.Background(), SweepRequest{
		App: "lulesh",
		Axes: []SweepAxis{
			{Param: "p", Values: []float64{2}},
			{Param: "p", Values: []float64{4}},
		},
	}); err == nil {
		t.Fatal("duplicate axis accepted")
	}
}

func TestServeClampsJobTimeout(t *testing.T) {
	srv, err := NewServer(Options{Workers: 1, JobTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if d := srv.timeout(0); d != 5*time.Second {
		t.Errorf("default timeout = %v, want 5s", d)
	}
	if d := srv.timeout(100); d != 100*time.Millisecond {
		t.Errorf("small timeout = %v, want 100ms", d)
	}
	// The server sizes its shutdown grace from JobTimeout, so clients
	// cannot exceed it.
	if d := srv.timeout(3_600_000); d != 5*time.Second {
		t.Errorf("oversized timeout = %v, want clamped to 5s", d)
	}
}

func TestServeStartTTLCancelsQueuedWork(t *testing.T) {
	// One worker, a 1ms start-TTL job queued behind a real one: by the
	// time the worker pops it, its time-to-start budget is gone and it
	// must be canceled without running. (A pathologically fast machine
	// could still start it inside the millisecond; "done with a result"
	// is the only other legal outcome — never "failed".)
	_, client := testServer(t, Options{Workers: 1})
	ctx := context.Background()
	first, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := client.Analyze(ctx, AnalyzeRequest{App: "lulesh", Async: true, TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := client.WaitJob(waitCtx, first.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	final, err := client.WaitJob(waitCtx, tight.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	switch final.Status {
	case StatusCanceled:
	case StatusDone:
		if final.Result == nil {
			t.Fatalf("done job carries no result: %+v", final)
		}
	default:
		t.Fatalf("tight-TTL job status = %s, want canceled (or done on a fast machine)", final.Status)
	}
}

// slowApp is a registered application whose taint run interprets ~10M
// instructions (hundreds of milliseconds): enough to hold a worker busy
// deterministically while a test manipulates the queue behind it.
func slowApp() App {
	spec := &apps.Spec{
		Name:   "slow",
		Params: []string{"n"},
		Funcs: []*apps.FuncSpec{
			{Name: "main", Kind: apps.KindMain, Body: []apps.Stmt{
				apps.Loop{Kind: apps.ParamBound, Bound: apps.QP(1, "n", 1), Body: []apps.Stmt{
					apps.Work{Units: 1},
				}},
			}},
		},
	}
	return App{
		New:         func() *apps.Spec { return spec },
		TaintConfig: func() apps.Config { return apps.Config{"n": 2e6, "p": 1} },
	}
}

func TestServeCloseCancelsQueuedJobs(t *testing.T) {
	// Shutdown must not execute the backlog: queued jobs are canceled,
	// only in-flight runs finish, so drain latency is bounded by runs
	// in flight rather than queue depth. A slow registered app pins the
	// single worker for hundreds of milliseconds, so Close always lands
	// while the backlog is still queued.
	srv, client := testServer(t, Options{Workers: 1, Apps: map[string]App{"slow": slowApp()}})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 6; i++ {
		job, err := client.Analyze(ctx, AnalyzeRequest{App: "slow", Async: true})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	srv.Close()
	counts := map[string]int{}
	for _, id := range ids {
		info, err := client.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Finished.IsZero() == (info.Status == StatusQueued || info.Status == StatusRunning) {
			t.Fatalf("job %s inconsistent after Close: %+v", id, info)
		}
		counts[info.Status]++
	}
	if n := counts[StatusQueued] + counts[StatusRunning]; n != 0 {
		t.Fatalf("%d jobs left unfinished after Close: %v", n, counts)
	}
	if counts[StatusFailed] != 0 {
		t.Fatalf("jobs failed during drain: %v", counts)
	}
	// The worker can run at most a couple of jobs before Close lands
	// (each takes ~100ms+); the rest of the backlog must be canceled.
	if counts[StatusCanceled] == 0 {
		t.Fatalf("Close ran the entire backlog instead of canceling queued jobs: %v", counts)
	}
}
