package service

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

// TestServerRestartServesFromDisk is the PR's acceptance scenario: kill
// the daemon, start a new one over the same cache dir, and the
// previously extracted model set answers with zero rebuilds while the
// previously prepared spec is classified as a disk hit (one lazy
// rebuild, no stampede, not a miss) — with the counters proving both.
func TestServerRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// First daemon: pay the cold cost once.
	srvA, clientA := testServer(t, Options{Workers: 2, CacheDir: dir})
	if _, err := clientA.Analyze(ctx, AnalyzeRequest{App: "lulesh"}); err != nil {
		t.Fatal(err)
	}
	first, err := clientA.Models(ctx, modelTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st := srvA.Cache().DiskStats(); st.Puts != 1 {
		t.Fatalf("prepared tier stats after first run = %+v, want 1 put", st)
	}
	if st := srvA.Models().DiskStats(); st.Puts != 1 {
		t.Fatalf("model tier stats after first run = %+v, want 1 put", st)
	}
	srvA.Close()

	// Second daemon, same directory: the "restarted process".
	srvB, clientB := testServer(t, Options{Workers: 2, CacheDir: dir})

	// The model set must be served from disk with the sweep and the
	// fitter never running: zero registry misses, and the fit-stage
	// histogram still empty afterwards.
	again, err := clientB.Models(ctx, modelTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("restarted daemon rebuilt the model set instead of serving disk")
	}
	if !reflect.DeepEqual(again.ModelSet, first.ModelSet) {
		t.Fatal("disk-served model set differs from the original extraction")
	}
	if st := srvB.Models().Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("registry stats after restart = %+v, want 1 disk hit / 0 misses", st)
	}
	if n := srvB.metrics.Stage(StageFit).Snapshot().Count; n != 0 {
		t.Fatalf("fit histogram count = %d after a disk-served set, want 0", n)
	}

	// The prepared spec was already rebuilt lazily for the models call
	// above (resolve goes through the cache) and must be classified as a
	// disk hit, never a miss.
	if _, err := clientB.Analyze(ctx, AnalyzeRequest{App: "lulesh"}); err != nil {
		t.Fatal(err)
	}
	if st := srvB.Cache().Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("prepared cache stats after restart = %+v, want 1 disk hit / 0 misses", st)
	}
	if st, err := clientB.Stats(ctx); err != nil {
		t.Fatal(err)
	} else if st.CacheDisk.Hits < 1 || st.ModelsDisk.Hits < 1 {
		t.Fatalf("/v1/stats disk counters = %+v / %+v, want hits on both tiers", st.CacheDisk, st.ModelsDisk)
	}
}

// TestServerRestartCleansDamagedDiskEntries: damage every persisted
// entry (truncate one tier, garbage the other), restart, and the daemon
// must rebuild correct answers, count the damage as dropped misses, and
// leave healed files behind — degraded, never poisoned.
func TestServerRestartCleansDamagedDiskEntries(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srvA, clientA := testServer(t, Options{Workers: 2, CacheDir: dir})
	if _, err := clientA.Analyze(ctx, AnalyzeRequest{App: "lulesh"}); err != nil {
		t.Fatal(err)
	}
	first, err := clientA.Models(ctx, modelTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	srvA.Close()

	// Damage every cache file on disk: truncate the prepared entries,
	// overwrite the model entries with garbage.
	damaged := 0
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		damaged++
		if filepath.Base(filepath.Dir(filepath.Dir(path))) == "prepared" {
			raw, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			return os.WriteFile(path, raw[:len(raw)/2], 0o644)
		}
		return os.WriteFile(path, []byte("rotten"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if damaged != 2 {
		t.Fatalf("damaged %d cache files, want 2 (one per tier)", damaged)
	}

	srvB, clientB := testServer(t, Options{Workers: 2, CacheDir: dir})
	again, err := clientB.Models(ctx, modelTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("damaged model entry served as a cache hit")
	}
	if !reflect.DeepEqual(again.ModelSet, first.ModelSet) {
		t.Fatal("rebuild after damage produced a different model set")
	}
	if st := srvB.Models().Stats(); st.DiskHits != 0 || st.Misses != 1 {
		t.Fatalf("registry stats = %+v, want the damaged entry counted as a miss", st)
	}
	if st := srvB.Models().DiskStats(); st.Dropped != 1 {
		t.Fatalf("model tier stats = %+v, want 1 dropped", st)
	}
	if st := srvB.Cache().Stats(); st.DiskHits != 0 || st.Misses != 1 {
		t.Fatalf("prepared cache stats = %+v, want the truncated entry counted as a miss", st)
	}
	if st := srvB.Cache().DiskStats(); st.Dropped != 1 {
		t.Fatalf("prepared tier stats = %+v, want 1 dropped", st)
	}

	// Both tiers must have healed: a third daemon serves from disk again.
	srvB.Close()
	srvC, clientC := testServer(t, Options{Workers: 2, CacheDir: dir})
	healed, err := clientC.Models(ctx, modelTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !healed.Cached {
		t.Fatal("cache did not heal after the damaged entries were rebuilt")
	}
	if st := srvC.Models().Stats(); st.DiskHits != 1 {
		t.Fatalf("healed registry stats = %+v, want 1 disk hit", st)
	}
}

// TestPreparedCacheDiskSingleflight: concurrent requests for a digest
// that is warm on disk share ONE rebuild (the singleflight), and the
// whole burst counts as one disk hit plus joiner memory hits.
func TestPreparedCacheDiskSingleflight(t *testing.T) {
	dir := t.TempDir()
	spec := apps.LULESH()

	prepared, _, err := openDiskTiers(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewPreparedCache(4)
	warm.SetDisk(prepared)
	if _, _, err := warm.Get(spec); err != nil {
		t.Fatal(err)
	}

	// Restarted cache over the same tier, with an instrumented builder.
	prepared2, _, err := openDiskTiers(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPreparedCache(4)
	c.SetDisk(prepared2)
	var mu sync.Mutex
	builds := 0
	c.prepare = func(s *apps.Spec) (*core.Prepared, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return core.Prepare(s)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Get(spec); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight over the disk-hit rebuild)", builds)
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit, 0 misses", st)
	}
	if st.Hits != 7 {
		t.Fatalf("stats = %+v, want 7 joiner hits", st)
	}
}
