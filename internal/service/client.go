package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
)

// Client talks to a perftaintd daemon over its JSON HTTP API. The zero
// HTTP client is http.DefaultClient; sweeps stream, so no response is
// ever buffered wholesale.
//
// With Retries > 0 every verb rides through transient failures: 429s
// are retried after the server's Retry-After hint, transport errors and
// 502/503/504 with capped jittered exponential backoff, and Sweep
// reconnects mid-stream — it resubmits with an Idempotency-Key plus the
// last consumed seq and the server replays from its journal, so a
// daemon restart is invisible in the emitted line sequence.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Retries is how many times a failed request (or broken stream) is
	// retried after the first attempt. 0 — the zero value — disables all
	// retrying, preserving fail-fast behavior for callers that manage
	// their own.
	Retries int
	// RetryBaseDelay seeds the exponential backoff (doubling per attempt,
	// jittered, capped at 5s; a server Retry-After hint overrides upward,
	// capped at 30s). <= 0 means 100ms.
	RetryBaseDelay time.Duration
}

// NewClient returns a client for the daemon at base. A bare host:port
// (no scheme) is normalized to http://, so every CLI -addr flag accepts
// the same spellings.
func NewClient(base string) *Client {
	base = strings.TrimRight(base, "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{BaseURL: base}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the server's api.ErrorBody envelope into an APIError.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	out := &api.APIError{StatusCode: resp.StatusCode}
	var env api.ErrorBody
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		out.Message = env.Error
		out.RetryAfterMS = env.RetryAfterMS
	} else {
		out.Message = string(bytes.TrimSpace(body))
	}
	return out
}

// permanentError marks a failure retrying cannot fix (a server-side
// extraction failure, a caller abort); the retry loops pass it through.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// retryable classifies an error for the retry loops: 429 and gateway-ish
// statuses retry, other API errors are the server's final word, and
// anything not typed (transport failures, broken streams, a daemon
// mid-restart) retries.
func retryable(err error) bool {
	var perm *permanentError
	if errors.As(err, &perm) {
		return false
	}
	var apiErr *api.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true
}

// retryDelay computes the wait before retry number attempt (0-based):
// jittered exponential backoff from RetryBaseDelay capped at 5s, pushed
// up (capped at 30s) by a server Retry-After hint when one rode in on
// the error.
func (c *Client) retryDelay(attempt int, err error) time.Duration {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < 5*time.Second; i++ {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	// Full jitter on the top half keeps reconnecting clients from
	// stampeding a freshly-restarted daemon in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var apiErr *api.APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfterMS > 0 {
		if hint := time.Duration(apiErr.RetryAfterMS) * time.Millisecond; hint > d {
			d = hint
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
	}
	return d
}

// sleepCtx waits d or until ctx dies, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retry runs op under the client's retry policy: up to Retries extra
// attempts, only for retryable errors, never past ctx.
func (c *Client) retry(ctx context.Context, op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || attempt >= c.Retries || !retryable(err) {
			return err
		}
		if sleepErr := sleepCtx(ctx, c.retryDelay(attempt, err)); sleepErr != nil {
			return err
		}
	}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service: encode request: %w", err)
		}
	}
	return c.retry(ctx, func() error {
		var rd io.Reader
		if raw != nil {
			rd = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return &permanentError{fmt.Errorf("service: build request: %w", err)}
		}
		if raw != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return fmt.Errorf("service: %s %s: %w", method, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			return apiError(resp)
		}
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("service: decode %s response: %w", path, err)
		}
		return nil
	})
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the daemon counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze submits one configuration and returns the finished job (the
// server runs it inline unless req.Async is set, in which case the
// returned job is still queued — poll it with Job or WaitJob).
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*JobInfo, error) {
	var out JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches a job by id.
func (c *Client) Job(ctx context.Context, id string) (*JobInfo, error) {
	var out JobInfo
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it reaches a terminal status or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobInfo, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch info.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}

// stream POSTs body to path and returns the raw streaming response;
// the caller owns resp.Body. Error statuses are decoded and returned.
// hdr entries (may be nil) are added to the request — the resume
// headers ride here.
func (c *Client) stream(ctx context.Context, path string, body any, hdr map[string]string) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("service: encode %s request: %w", path, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("service: build %s request: %w", path, err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		httpReq.Header.Set(k, v)
	}
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("service: POST %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp, nil
}

// scanNDJSON feeds every non-empty line of r to emit; a non-nil error
// from emit aborts the scan and is returned.
func scanNDJSON(r io.Reader, emit func(line []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: response stream: %w", err)
	}
	return nil
}

// Sweep submits a full-factorial design and invokes emit for every
// NDJSON result line in design order as the server streams them. A
// non-nil error from emit aborts the stream and is returned. A
// server-side drain line (the daemon shutting down mid-sweep announces
// itself with a final jobless error record) is surfaced as an error
// rather than passed to emit, so callers can tell "server stopped" from
// "stream truncated" and from an ordinary per-config failure.
//
// With Retries > 0 a broken or aborted stream reconnects transparently:
// the resubmission carries a content-derived Idempotency-Key plus the
// last consumed seq, the server replays its journal from there, and
// already-emitted lines are deduplicated by seq — emit observes each
// design point exactly once, in order, across any number of daemon
// restarts. Progress resets the attempt budget, so a long sweep is not
// starved by retries spent on earlier disconnects.
func (c *Client) Sweep(ctx context.Context, req SweepRequest, emit func(SweepLine) error) error {
	idem := idempotencyKey(&req)
	var lastSeq int64
	for attempt := 0; ; attempt++ {
		before := lastSeq
		err := c.sweepOnce(ctx, &req, idem, &lastSeq, emit)
		if err == nil {
			return nil
		}
		if lastSeq > before {
			attempt = 0
		}
		if ctx.Err() != nil || attempt >= c.Retries || !retryable(err) {
			var perm *permanentError
			if errors.As(err, &perm) {
				return perm.err
			}
			return err
		}
		if sleepErr := sleepCtx(ctx, c.retryDelay(attempt, err)); sleepErr != nil {
			return err
		}
	}
}

// sweepOnce runs one connection's worth of a sweep, advancing *lastSeq
// as lines are consumed and skipping journal-replayed lines the caller
// has already seen.
func (c *Client) sweepOnce(ctx context.Context, req *SweepRequest, idem string, lastSeq *int64, emit func(SweepLine) error) error {
	hdr := map[string]string{api.HeaderIdempotencyKey: idem}
	if *lastSeq > 0 {
		hdr[api.HeaderLastSeq] = fmt.Sprintf("%d", *lastSeq)
	}
	resp, err := c.stream(ctx, "/v1/sweep", req, hdr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return scanNDJSON(resp.Body, func(line []byte) error {
		var rec SweepLine
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("service: decode sweep line: %w", err)
		}
		if rec.JobID == "" && rec.Error != "" {
			// Drain/abort lines are control flow: retryable (the daemon is
			// restarting or journaling hiccuped), never passed to emit.
			return fmt.Errorf("service: sweep aborted by server: %s", rec.Error)
		}
		if rec.Seq > 0 && rec.Seq <= *lastSeq {
			// Replayed line the previous connection already delivered.
			return nil
		}
		if err := emit(rec); err != nil {
			return &permanentError{err}
		}
		if rec.Seq > *lastSeq {
			*lastSeq = rec.Seq
		}
		return nil
	})
}

// idempotencyKey derives the resume key from the request content: the
// same design resubmitted by a reconnecting client (even a restarted
// client process) addresses the same journaled job on the server.
func idempotencyKey(req *SweepRequest) string {
	raw, _ := json.Marshal(req)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// SweepAll collects a sweep into a slice; convenient for small designs.
func (c *Client) SweepAll(ctx context.Context, req SweepRequest) ([]SweepLine, error) {
	var out []SweepLine
	err := c.Sweep(ctx, req, func(l SweepLine) error {
		out = append(out, l)
		return nil
	})
	return out, err
}
