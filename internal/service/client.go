package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
)

// Client talks to a perftaintd daemon over its JSON HTTP API. The zero
// HTTP client is http.DefaultClient; sweeps stream, so no response is
// ever buffered wholesale.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base. A bare host:port
// (no scheme) is normalized to http://, so every CLI -addr flag accepts
// the same spellings.
func NewClient(base string) *Client {
	base = strings.TrimRight(base, "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{BaseURL: base}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the server's api.ErrorBody envelope into an APIError.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	out := &api.APIError{StatusCode: resp.StatusCode}
	var env api.ErrorBody
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		out.Message = env.Error
		out.RetryAfterMS = env.RetryAfterMS
	} else {
		out.Message = string(bytes.TrimSpace(body))
	}
	return out
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service: encode request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("service: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("service: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service: decode %s response: %w", path, err)
	}
	return nil
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the daemon counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze submits one configuration and returns the finished job (the
// server runs it inline unless req.Async is set, in which case the
// returned job is still queued — poll it with Job or WaitJob).
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*JobInfo, error) {
	var out JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches a job by id.
func (c *Client) Job(ctx context.Context, id string) (*JobInfo, error) {
	var out JobInfo
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it reaches a terminal status or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobInfo, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch info.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}

// stream POSTs body to path and returns the raw streaming response;
// the caller owns resp.Body. Error statuses are decoded and returned.
func (c *Client) stream(ctx context.Context, path string, body any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("service: encode %s request: %w", path, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("service: build %s request: %w", path, err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("service: POST %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp, nil
}

// scanNDJSON feeds every non-empty line of r to emit; a non-nil error
// from emit aborts the scan and is returned.
func scanNDJSON(r io.Reader, emit func(line []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: response stream: %w", err)
	}
	return nil
}

// Sweep submits a full-factorial design and invokes emit for every
// NDJSON result line in design order as the server streams them. A
// non-nil error from emit aborts the stream and is returned. A
// server-side drain line (the daemon shutting down mid-sweep announces
// itself with a final jobless error record) is surfaced as an error
// rather than passed to emit, so callers can tell "server stopped" from
// "stream truncated" and from an ordinary per-config failure.
func (c *Client) Sweep(ctx context.Context, req SweepRequest, emit func(SweepLine) error) error {
	resp, err := c.stream(ctx, "/v1/sweep", &req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return scanNDJSON(resp.Body, func(line []byte) error {
		var rec SweepLine
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("service: decode sweep line: %w", err)
		}
		if rec.JobID == "" && rec.Error != "" {
			return fmt.Errorf("service: sweep aborted by server: %s", rec.Error)
		}
		return emit(rec)
	})
}

// SweepAll collects a sweep into a slice; convenient for small designs.
func (c *Client) SweepAll(ctx context.Context, req SweepRequest) ([]SweepLine, error) {
	var out []SweepLine
	err := c.Sweep(ctx, req, func(l SweepLine) error {
		out = append(out, l)
		return nil
	})
	return out, err
}
