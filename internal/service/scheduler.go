package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/runner"
)

// maxRetainedJobs bounds the finished-job history kept for
// GET /v1/jobs/{id}; the oldest finished jobs are forgotten first.
// Queued and running jobs are never evicted.
const maxRetainedJobs = 4096

// job is one scheduled analysis: a single configuration of a prepared
// spec, with its own lifecycle record. ctx carries everything that can
// stop the job before it starts — client disconnect, daemon shutdown,
// and (when the job has a start deadline) queue-TTL expiry; a per-job
// watcher goroutine turns ctx expiry into a prompt terminal transition
// even while the job sits in the queue. Once a worker claims a job it
// always runs to completion: the dynamic stage is fuel-bounded, so
// wall-clock deadlines on the run itself would be unenforceable theater.
type job struct {
	id           string
	app          string
	cfg          apps.Config
	censusParams []string
	prepared     *core.Prepared
	digest       string

	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal status.
	done chan struct{}

	mu        sync.Mutex
	status    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *AnalysisResult
	errMsg    string
}

// Info snapshots the job for the wire.
func (j *job) Info() *JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := &JobInfo{
		ID:         j.id,
		App:        j.app,
		Status:     j.status,
		Config:     j.cfg,
		SpecDigest: j.digest,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
		Result:     j.result,
		Error:      j.errMsg,
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		info.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	return info
}

func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// claimRun transitions queued → running, refusing jobs already finished
// (by the TTL watcher, a disconnect, or shutdown) or whose context is
// spent. Exactly one of claimRun / tryTerminal wins any race: both
// transitions are serialized by j.mu.
func (j *job) claimRun() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued || j.ctx.Err() != nil {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// tryTerminal moves the job to a terminal status exactly once; later
// attempts are no-ops. The running state can only be finished by the
// worker that claimed it (the watcher's cancel attempt is refused).
func (j *job) tryTerminal(fromRunning bool, status string, result *AnalysisResult, err error) bool {
	j.mu.Lock()
	if terminal(j.status) || (j.status == StatusRunning && !fromRunning) {
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.finished = time.Now()
	j.result = result
	if err != nil {
		j.errMsg = err.Error()
	}
	// Drop the Prepared reference: finished jobs live on in the
	// retention window for /v1/jobs, and holding the artifact there
	// would pin cache-evicted entries in memory past the LRU bound.
	j.prepared = nil
	j.mu.Unlock()
	j.cancel()
	close(j.done)
	return true
}

// scheduler is the daemon's bounded execution engine: a fixed pool of
// workers draining a FIFO queue of jobs. Each job runs through
// runner.AnalyzeBatchPreparedCtx. Cancellation (client disconnect,
// shutdown) and the optional start-TTL live on the job's context from
// submission; a watcher goroutine finishes a still-queued job the
// moment that context dies, so submitters waiting on the job observe
// the deadline promptly instead of whenever a worker reaches the queue
// position. A job already running always finishes — the dynamic stage
// is fuel-bounded, so stragglers cannot run away. Submission order is
// preserved per queue, and callers that need deterministic result
// ordering (the sweep endpoint) wait on each job's done channel in
// input order.
type scheduler struct {
	queue   chan *job
	workers int
	wg      sync.WaitGroup
	exec    *runner.Runner

	// sendMu serializes queue sends against close: submitters hold the
	// read side while sending, close takes the write side before closing
	// the channel, so a send can never race a close.
	sendMu sync.RWMutex

	// onRun, when set, observes every claimed job's run latency (set once
	// before traffic, during server assembly).
	onRun func(time.Duration)

	mu        sync.Mutex
	closed    bool
	nextID    uint64
	jobs      map[string]*job
	retention []string // finished job ids, oldest first
	stats     JobStats
}

func newScheduler(workers, queueDepth int) *scheduler {
	s := &scheduler{
		queue:   make(chan *job, queueDepth),
		workers: workers,
		// Each worker executes one configuration at a time; the pool
		// itself provides the fan-out, so the inner runner is serial.
		exec: &runner.Runner{Workers: 1},
		jobs: make(map[string]*job),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.work()
	}
	return s
}

// newJob registers a queued job. base carries cancellation: the request
// context for inline and sweep jobs (client disconnect cancels queued
// work), context.Background for async ones. startTTL, when positive,
// bounds how long the job may wait to start — a job still queued past
// it is canceled, never run. Zero means no TTL (sweep jobs default to
// the streaming request's lifetime instead, so the tail of a large
// design is not doomed by the time its siblings took).
func (s *scheduler) newJob(base context.Context, startTTL time.Duration, app string, p *core.Prepared, digest string, cfg apps.Config, censusParams []string) *job {
	return s.newJobWithID("", base, startTTL, app, p, digest, cfg, censusParams)
}

// newJobWithID is newJob with a pre-reserved ID (from reserveJobBlock);
// an empty id draws the next one from the counter. The journaled sweep
// path reserves its whole ID block at acceptance so a resumed sweep
// relabels design points with exactly the IDs the original run used.
func (s *scheduler) newJobWithID(id string, base context.Context, startTTL time.Duration, app string, p *core.Prepared, digest string, cfg apps.Config, censusParams []string) *job {
	var ctx context.Context
	var cancel context.CancelFunc
	if startTTL > 0 {
		ctx, cancel = context.WithTimeout(base, startTTL)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	j := &job{
		id:           id,
		app:          app,
		cfg:          cfg,
		censusParams: censusParams,
		prepared:     p,
		digest:       digest,
		ctx:          ctx,
		cancel:       cancel,
		done:         make(chan struct{}),
		status:       StatusQueued,
		submitted:    time.Now(),
	}
	s.mu.Lock()
	if j.id == "" {
		s.nextID++
		j.id = fmt.Sprintf("job-%d", s.nextID)
	}
	s.jobs[j.id] = j
	s.stats.Submitted++
	s.mu.Unlock()
	// TTL watcher: a queued job whose context dies (deadline, client
	// disconnect, shutdown) finishes immediately rather than when a
	// worker happens to reach it. Running jobs refuse the transition.
	go func() {
		select {
		case <-j.ctx.Done():
			s.finishJob(j, false, StatusCanceled, nil,
				fmt.Errorf("service: job %s canceled before start: %w", j.id, context.Cause(j.ctx)))
		case <-j.done:
		}
	}()
	return j
}

// reserveJobBlock claims n consecutive job IDs from the scheduler's
// counter without registering jobs, returning the first numeric ID and
// the rendered labels. The sweep path reserves its whole block at
// acceptance and journals the first ID, so both remotely-executed design
// points and a resumed sweep after a restart carry exactly the
// job-1..job-N sequence a single uninterrupted run would have assigned —
// the byte-identity contract. Reserved IDs are not resolvable via
// GET /v1/jobs, matching how sweep jobs age out of retention.
func (s *scheduler) reserveJobBlock(n int) (uint64, []string) {
	ids := make([]string, n)
	s.mu.Lock()
	first := s.nextID + 1
	for i := range ids {
		s.nextID++
		ids[i] = fmt.Sprintf("job-%d", s.nextID)
	}
	s.mu.Unlock()
	return first, ids
}

// ensureJobCounter advances the ID counter to at least min, so IDs
// journaled by a previous process are never re-issued to new jobs after
// a restart. It never moves the counter backwards.
func (s *scheduler) ensureJobCounter(min uint64) {
	s.mu.Lock()
	if s.nextID < min {
		s.nextID = min
	}
	s.mu.Unlock()
}

// jobIDBlock renders the n job IDs starting at numeric ID first — the
// resume-side counterpart of reserveJobBlock.
func jobIDBlock(first uint64, n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%d", first+uint64(i))
	}
	return ids
}

// finishJob applies the terminal transition once and, if it won, files
// the accounting and retention updates. Safe to call from the watcher,
// submit error paths, and the worker concurrently.
func (s *scheduler) finishJob(j *job, fromRunning bool, status string, result *AnalysisResult, err error) {
	if !j.tryTerminal(fromRunning, status, result, err) {
		return
	}
	s.account(func(st *JobStats) {
		switch status {
		case StatusDone:
			st.Completed++
		case StatusFailed:
			st.Failed++
		case StatusCanceled:
			st.Canceled++
		}
	})
	s.retire(j)
}

// submit enqueues the job, blocking while the queue is full; ctx (the
// submitting request's context) aborts the wait.
func (s *scheduler) submit(ctx context.Context, j *job) error {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		err := fmt.Errorf("service: scheduler shut down")
		s.finishJob(j, false, StatusCanceled, nil, err)
		return err
	}
	select {
	case s.queue <- j:
		return nil
	case <-ctx.Done():
		s.finishJob(j, false, StatusCanceled, nil, fmt.Errorf("service: submission aborted: %w", ctx.Err()))
		return ctx.Err()
	}
}

func (s *scheduler) work() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *scheduler) runJob(j *job) {
	if !j.claimRun() {
		// Already finished by the watcher or a submit error path — or
		// the context died in the race window before the watcher fired;
		// finishJob is idempotent either way.
		s.finishJob(j, false, StatusCanceled, nil,
			fmt.Errorf("service: job %s canceled before start: %w", j.id, context.Cause(j.ctx)))
		return
	}
	s.account(func(st *JobStats) { st.Running++ })
	runStart := time.Now()
	res := s.exec.AnalyzeBatchPreparedCtx(j.ctx, j.prepared, []apps.Config{j.cfg})[0]
	if s.onRun != nil {
		s.onRun(time.Since(runStart))
	}
	s.account(func(st *JobStats) { st.Running-- })
	switch {
	// Only errors that ARE the context's (cancellation surfaced from
	// inside the run) count as canceled; an analysis failure that merely
	// coincides with a dead context is still a failure.
	case errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded):
		s.finishJob(j, true, StatusCanceled, nil, res.Err)
	case res.Err != nil:
		s.finishJob(j, true, StatusFailed, nil, res.Err)
	default:
		s.finishJob(j, true, StatusDone, NewAnalysisResult(j.app, j.digest, res.Report, j.censusParams), nil)
	}
}

// retire files a finished job into the bounded retention window.
func (s *scheduler) retire(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retention = append(s.retention, j.id)
	for len(s.retention) > maxRetainedJobs {
		delete(s.jobs, s.retention[0])
		s.retention = s.retention[1:]
	}
}

func (s *scheduler) account(f func(*JobStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

func (s *scheduler) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *scheduler) jobStats() JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = len(s.queue)
	return st
}

// close stops the scheduler: new submissions are rejected, jobs that
// have not started are canceled, and jobs already running finish.
// Returns once every registered job is terminal and the pool is idle,
// so shutdown latency is bounded by the runs in flight, not by the
// queue depth.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	snapshot := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		snapshot = append(snapshot, j)
	}
	s.mu.Unlock()
	// Cancel everything not yet running; the watchers (or the workers
	// popping them) turn the cancellations into terminal states.
	for _, j := range snapshot {
		j.mu.Lock()
		queued := j.status == StatusQueued
		j.mu.Unlock()
		if queued {
			j.cancel()
		}
	}
	// Wait out in-flight submitters (workers keep draining, so a blocked
	// send completes), then close the queue to stop the pool.
	s.sendMu.Lock()
	close(s.queue)
	s.sendMu.Unlock()
	s.wg.Wait()
	// Every job is now either terminal or being finished by its watcher;
	// wait so callers observe a fully settled state.
	for _, j := range snapshot {
		<-j.done
	}
}
