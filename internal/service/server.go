// Package service turns the Perf-Taint pipeline into a long-running
// analysis daemon: a JSON-over-HTTP API in front of the PR-1 batch runner
// and the PR-2 fast interpreter, with a content-addressed PreparedCache
// so the expensive per-spec stage (module build, verification, static
// pass, predecoding) is paid once per distinct spec content no matter how
// many clients and configurations hit it.
//
// Endpoints:
//
//	POST /v1/analyze            one configuration; inline result or async job
//	POST /v1/sweep              full-factorial design; streams NDJSON results
//	POST /v1/models             end-to-end model extraction; cached by content
//	GET  /v1/jobs/{id}          job status and result
//	GET  /v1/stats              cache, scheduler, and cluster counters
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               liveness
//	POST /v1/worker/register    cluster: worker joins a coordinator
//	POST /v1/worker/heartbeat   cluster: worker liveness
//	GET  /v1/prepared/{digest}  cluster: canonical spec bytes by digest
//	POST /v1/shard              cluster: execute one design shard (NDJSON)
//
// All wire types live in the versioned internal/api package; handlers
// here only move them.
//
// Cluster roles: a daemon started with Options.Coordinator accepts the
// same client API but partitions sweeps and model extractions into
// contiguous design shards dispatched to registered workers, merging
// results back into the exact single-node stream; a daemon with
// Options.JoinURL registers with a coordinator and serves /v1/shard. A
// coordinator with no live workers degrades to ordinary local execution.
// Architecture: every submission resolves its spec through the
// PreparedCache (canonical SHA-256 of the spec content; singleflight
// deduplication of concurrent misses; LRU bound), then enters the bounded
// scheduler as an independent job with its own deadline context. Sweep
// responses are written in deterministic design order as the per-config
// jobs complete, so results are reproducible and large designs never
// buffer in memory.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/journal"
	"repro/internal/modelreg"
	"repro/internal/runner"
)

// Options configures a Server; the zero value serves the bundled apps
// with GOMAXPROCS workers and sensible bounds.
type Options struct {
	// Workers bounds concurrently running analysis jobs; <= 0 means
	// GOMAXPROCS.
	Workers int
	// CacheEntries bounds the PreparedCache LRU; <= 0 means 16.
	CacheEntries int
	// QueueDepth bounds queued-but-unstarted jobs; <= 0 means 1024.
	QueueDepth int
	// JobTimeout is the default per-job deadline (queue wait + run);
	// <= 0 means 60s.
	JobTimeout time.Duration
	// MaxSweepConfigs rejects designs larger than this; <= 0 means 4096.
	MaxSweepConfigs int
	// ModelEntries bounds the content-addressed model registry behind
	// POST /v1/models; <= 0 means 16.
	ModelEntries int
	// CacheDir, when non-empty, roots the persistent cache tiers
	// (prepared specs and finished model sets) so a restarted daemon
	// starts warm instead of re-paying every Prepare and every
	// sweep-and-fit. Empty keeps both caches memory-only.
	CacheDir string
	// MaxBodyBytes caps every JSON request body; oversized bodies are
	// rejected with 413. <= 0 means 4 MiB.
	MaxBodyBytes int64
	// Engine selects the interpreter tier analysis jobs run on: "fast"
	// (empty/default), "reference", or "compiled". The engine is applied
	// when a spec is prepared, so every job served from one cached
	// Prepared runs on the same tier; the compiled tier's closure-chain
	// artifact is lowered once per cached digest and shared read-only.
	Engine string
	// DisableJournal turns the durable job journal off even when CacheDir
	// is set. The zero value journals whenever a cache dir exists: sweeps
	// and model extractions then survive daemon restarts, resuming from
	// the last journaled design point.
	DisableJournal bool
	// Rate enables per-client token-bucket admission control: each
	// client (X-Client-ID header, else remote host) accrues Rate tokens
	// per second, one analysis costs one token, a sweep one per design
	// point. Exhausted clients get 429 + Retry-After. <= 0 disables it.
	Rate float64
	// Burst is the per-client bucket capacity; <= 0 means max(1, 2*Rate).
	Burst float64
	// Apps extends or overrides the bundled application registry.
	Apps map[string]App

	// Coordinator enables cluster coordination: sweeps and model
	// extractions shard across registered workers when any are live.
	Coordinator bool
	// JoinURL, when non-empty, runs this daemon as a cluster worker: it
	// registers with the coordinator at this base URL and heartbeats
	// until shutdown. Mutually exclusive with Coordinator.
	JoinURL string
	// AdvertiseURL is the base URL the coordinator should dial this
	// worker back on; empty derives it from the bound listen address.
	AdvertiseURL string
	// ShardSize fixes the design points per dispatched shard; <= 0 sizes
	// shards automatically (about three shards per live worker).
	ShardSize int
	// ShardRetries bounds remote dispatch attempts per shard before the
	// coordinator runs the shard locally; <= 0 means 3.
	ShardRetries int
	// ShardTimeout bounds one shard dispatch round-trip; <= 0 means 2m.
	ShardTimeout time.Duration
	// HeartbeatInterval paces worker heartbeats and the coordinator's
	// liveness reaper; <= 0 means 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a worker may go silent before the
	// coordinator benches it; <= 0 means 4x HeartbeatInterval.
	HeartbeatTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 60 * time.Second
	}
	if o.MaxSweepConfigs <= 0 {
		o.MaxSweepConfigs = 4096
	}
	if o.ModelEntries <= 0 {
		o.ModelEntries = 16
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 4 << 20
	}
	if o.ShardRetries <= 0 {
		o.ShardRetries = 3
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 2 * time.Minute
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	return o
}

// Server is the analysis daemon: an http.Handler plus the shared cache
// and scheduler behind it.
type Server struct {
	opts    Options
	engine  interp.Mode
	cache   *PreparedCache
	sched   *scheduler
	models  *modelreg.Registry
	metrics *Metrics
	limiter *rateLimiter
	apps    map[string]App
	mux     *http.ServeMux
	start   time.Time
	// baseCtx scopes work that must outlive any single request (model
	// registry builds shared by many requesters); stop cancels it on
	// Close.
	baseCtx context.Context
	stop    context.CancelFunc

	// journal is the durable job journal (nil when disabled); the source
	// of truth for open sweep/model jobs across restarts.
	journal *journal.Store

	// coord is non-nil in coordinator mode; worker (guarded by clusterMu,
	// set when a worker loop starts) is this daemon's cluster membership.
	coord     *coordinator
	clusterMu sync.Mutex
	worker    *workerLink
}

// NewServer assembles a daemon from opts; the only failure mode is an
// unusable Options.CacheDir. Call Close to drain it.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	reg := BundledApps()
	for name, app := range opts.Apps {
		reg[name] = app
	}
	s := &Server{
		opts:    opts,
		cache:   NewPreparedCache(opts.CacheEntries),
		sched:   newScheduler(opts.Workers, opts.QueueDepth),
		models:  modelreg.NewRegistry(opts.ModelEntries),
		metrics: newMetrics(),
		limiter: newRateLimiter(opts.Rate, opts.Burst),
		apps:    reg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	if opts.CacheDir != "" {
		prepared, models, err := openDiskTiers(opts.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("service: open cache dir: %w", err)
		}
		s.cache.SetDisk(prepared)
		s.models.SetDisk(models)
		if !opts.DisableJournal {
			// Opening the store is also recovery: torn journal tails are
			// truncated and already-terminal journals compacted, so every
			// remaining file is an open job awaiting resubmission.
			jst, err := journal.Open(filepath.Join(opts.CacheDir, "journal"))
			if err != nil {
				return nil, fmt.Errorf("service: open journal: %w", err)
			}
			s.journal = jst
		}
	}
	if opts.Coordinator && opts.JoinURL != "" {
		return nil, fmt.Errorf("service: a daemon is a coordinator or a worker, not both")
	}
	mode, err := interp.ParseMode(opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.engine = mode
	if mode != interp.ModeFast {
		// The engine is pinned before an entry is published, so every job
		// served from one cached Prepared runs on the same tier — including
		// entries lazily rebuilt from the disk tier's canonical bytes.
		s.cache.prepare = func(spec *apps.Spec) (*core.Prepared, error) {
			p, err := core.Prepare(spec)
			if err != nil {
				return nil, err
			}
			p.Mode = mode
			return p, nil
		}
	}
	s.cache.onBuild = func(d time.Duration) { s.metrics.ObserveStage(StagePrepare, d) }
	s.sched.onRun = func(d time.Duration) { s.metrics.ObserveStage(StageRun, d) }
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/models/{key}", s.handleModelGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/shard", s.handleShard)
	if opts.Coordinator {
		s.coord = newCoordinator(s)
		s.mux.HandleFunc("POST /v1/worker/register", s.coord.handleRegister)
		s.mux.HandleFunc("POST /v1/worker/heartbeat", s.coord.handleHeartbeat)
		s.mux.HandleFunc("GET /v1/prepared/{digest}", s.coord.handlePreparedServe)
		go s.coord.reap(s.baseCtx)
	}
	return s, nil
}

// Handler exposes the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the content-addressed store (tests and embedders).
func (s *Server) Cache() *PreparedCache { return s.cache }

// Models exposes the content-addressed model registry (tests and
// embedders).
func (s *Server) Models() *modelreg.Registry { return s.models }

// Close stops accepting jobs, cancels in-flight model builds, and
// drains the scheduler.
func (s *Server) Close() {
	s.stop()
	s.sched.close()
}

// ListenAndServe serves the daemon on addr until ctx is done, then shuts
// the listener down gracefully and drains the scheduler. It reports the
// bound address through ready (if non-nil) once the listener is up —
// callers binding ":0" learn the real port.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if s.opts.JoinURL != "" {
		advertise := s.opts.AdvertiseURL
		if advertise == "" {
			advertise = "http://" + dialableAddr(ln.Addr().String())
		}
		// Membership lives for the daemon, not any request; Close (via
		// baseCtx) ends it.
		s.StartWorkerLoop(s.baseCtx, s.opts.JoinURL, advertise)
	}
	// Slow-client hardening. ReadHeaderTimeout kills slowloris openers
	// that trickle header bytes forever; ReadTimeout bounds the whole
	// request read (bodies are small — MaxBodyBytes — so a minute is
	// generous); IdleTimeout reaps parked keep-alive connections. There
	// is deliberately NO WriteTimeout: sweep and model responses are
	// long-lived NDJSON streams whose legitimate lifetime is the design
	// size, and a write deadline would cut them mid-line.
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Drain the scheduler FIRST: queued jobs cancel immediately and
		// running ones finish, so handlers blocked on job completion
		// unblock quickly and Shutdown only has to wait out response
		// writing. The grace still allows one full job in case a worker
		// picked something up at the last instant.
		s.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), s.opts.JobTimeout+5*time.Second)
		defer cancel()
		err = hs.Shutdown(shCtx)
		<-errc
	case err = <-errc:
	}
	s.Close()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// dialableAddr rewrites a bound listen address into one another host
// can dial: the unspecified host (":7070", "0.0.0.0", "::") becomes
// loopback, which is correct for single-machine clusters and for tests;
// multi-host deployments set Options.AdvertiseURL explicitly.
func dialableAddr(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, len(s.apps))
	for name := range s.apps {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := &StatsResponse{
		UptimeMS:    time.Since(s.start).Milliseconds(),
		Workers:     s.opts.Workers,
		Engine:      s.engine.String(),
		Apps:        names,
		Cache:       s.cache.Stats(),
		Models:      s.models.Stats(),
		Jobs:        s.sched.jobStats(),
		CacheDisk:   s.cache.DiskStats(),
		ModelsDisk:  s.models.DiskStats(),
		RateLimited: s.metrics.RateLimited(),
	}
	if s.coord != nil {
		resp.Cluster = s.coord.stats()
	} else if wl := s.workerLinkRef(); wl != nil {
		resp.Cluster = wl.stats()
	}
	if s.journal != nil {
		jst := s.journal.Stats()
		resp.Journal = &jst
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, 1) {
		return
	}
	var req AnalyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	app, spec, prepared, digest, err := s.resolve(req.App)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := validateParamNames(spec, configKeys(req.Config)); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := validateParamNames(spec, req.CensusParams); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("census_params: %w", err))
		return
	}
	cfg := mergedConfig(app, req.Config)
	if err := validateConfig(spec, cfg); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	base := r.Context()
	if req.Async {
		// Async jobs outlive the submitting request.
		base = context.Background()
	}
	j := s.sched.newJob(base, s.timeout(req.TimeoutMS), req.App, prepared, digest,
		cfg, censusParams(req.CensusParams))
	if err := s.sched.submit(r.Context(), j); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, j.Info())
		return
	}
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.Info())
	case <-r.Context().Done():
		// The job context derives from the request, so queued work is
		// already canceled; nothing useful can be written to a gone peer.
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	app, spec, prepared, digest, err := s.resolve(req.App)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Axes) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("sweep requires at least one axis"))
		return
	}
	if err := validateParamNames(spec, configKeys(req.Defaults)); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := validateParamNames(spec, req.CensusParams); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("census_params: %w", err))
		return
	}
	design := runner.Design{Spec: spec, Defaults: mergedConfig(app, req.Defaults)}
	// Size the grid incrementally while validating each axis: rejecting
	// as soon as the partial product passes the cap means the product can
	// never overflow, however many axes the request stacks up.
	seenAxis := make(map[string]bool, len(req.Axes))
	size := 1
	for _, ax := range req.Axes {
		if len(ax.Values) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("axis %q has no values", ax.Param))
			return
		}
		if seenAxis[ax.Param] {
			httpError(w, http.StatusBadRequest, fmt.Errorf("axis %q repeated", ax.Param))
			return
		}
		seenAxis[ax.Param] = true
		if err := validateParamNames(spec, []string{ax.Param}); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		size *= len(ax.Values)
		if size > s.opts.MaxSweepConfigs {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("design exceeds the server cap of %d configs", s.opts.MaxSweepConfigs))
			return
		}
		design.Axes = append(design.Axes, runner.Axis{Param: ax.Param, Values: ax.Values})
	}
	cfgs := design.Configs()
	for i, cfg := range cfgs {
		if err := validateConfig(spec, cfg); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
	}
	// Admission control charges a sweep by what it costs: one token per
	// job the design puts on the queue (clamped to the bucket capacity
	// inside the limiter so a legal design is throttled, not starved).
	if !s.admit(w, r, float64(len(cfgs))) {
		return
	}

	params := censusParams(req.CensusParams)
	s.streamSweep(w, r, req, digest, prepared, cfgs, params)
}

// sweepJournalKey is a sweep's content address in the journal: the
// prepared spec digest plus the fully-expanded design, census params,
// and the client's idempotency scope. TimeoutMS is deliberately
// excluded — a retry with a different timeout is still the same job.
func sweepJournalKey(app, digest string, cfgs []apps.Config, params []string, idem string) string {
	payload, _ := json.Marshal(struct {
		App    string        `json:"app"`
		Digest string        `json:"digest"`
		Cfgs   []apps.Config `json:"cfgs"`
		Params []string      `json:"params"`
		Idem   string        `json:"idem,omitempty"`
	}{app, digest, cfgs, params, idem})
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// streamSweep executes a validated sweep and streams its NDJSON lines
// with journal-backed crash resume. The dataflow per design point is
// journal-append-then-emit: a line reaches the client only after it is
// durable, so across any restart the journal's point prefix is a
// superset of what any client consumed, and replaying that prefix
// (skipping past the client's Last-Seq) before continuing live
// reproduces the uninterrupted stream byte for byte. With no journal
// (memory-only daemon) every journal call below is a no-op and the
// handler behaves exactly as before, minus durability.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, digest string, prepared *core.Prepared, cfgs []apps.Config, params []string) {
	key := sweepJournalKey(req.App, digest, cfgs, params, r.Header.Get(api.HeaderIdempotencyKey))
	jj, err := s.journal.Acquire(r.Context(), journal.KindSweep, key)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("journal: %w", err))
		return
	}
	defer jj.Release()

	// Resume or accept. The journaled acceptance pins the job-ID block,
	// so a restarted daemon labels resumed points exactly as the first
	// process would have — part of the byte-identity contract.
	n := len(cfgs)
	var ids []string
	if acc, ok := jj.Accept(); ok && acc.N == n {
		ids = jobIDBlock(acc.FirstJobID, n)
		s.sched.ensureJobCounter(acc.FirstJobID + uint64(n) - 1)
	} else {
		if ok {
			// Same key, different shape: a journal this request cannot
			// explain is not resumed; run unjournaled rather than guess.
			jj.Release()
			jj = nil
		}
		first, reserved := s.sched.reserveJobBlock(n)
		ids = reserved
		if err := jj.Append(journal.Record{Type: journal.TypeAccept, Kind: journal.KindSweep,
			Key: key, App: req.App, SpecDigest: digest, N: n, FirstJobID: first}); err != nil {
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("journal: %w", err))
			return
		}
	}

	var lastSeq int64
	if v := r.Header.Get(api.HeaderLastSeq); v != "" {
		lastSeq, _ = strconv.ParseInt(v, 10, 64)
	}

	points := jj.Points()
	done := len(points)
	remaining := cfgs[done:]

	// Local jobs are submitted before the response header so queue
	// saturation still answers a clean 503 (the journaled acceptance
	// survives for the client's retry to resume).
	distributed := s.coord != nil && s.coord.hasLive() && len(remaining) > 0
	var jobs []*job
	if !distributed {
		// Sweep jobs get no start-TTL unless the request asks for one: the
		// streaming request's lifetime already governs them, and a
		// submission-anchored TTL would doom the tail of any design larger
		// than workers x (TTL / run time).
		var ttl time.Duration
		if req.TimeoutMS > 0 {
			ttl = s.timeout(req.TimeoutMS)
		}
		jobs = make([]*job, 0, len(remaining))
		for i, cfg := range remaining {
			j := s.sched.newJobWithID(ids[done+i], r.Context(), ttl, req.App, prepared, digest, cfg, params)
			if err := s.sched.submit(r.Context(), j); err != nil {
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			jobs = append(jobs, j)
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	writeRaw := func(raw []byte) error {
		if _, err := w.Write(raw); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
		_ = rc.Flush()
		return nil
	}

	// Replay the durable prefix byte for byte, skipping lines the
	// reconnecting client already consumed.
	for i, rec := range points {
		if int64(i+1) <= lastSeq {
			continue
		}
		if writeRaw(rec.Line) != nil {
			return
		}
	}

	// emitPoint makes one live design point durable, then streams it. A
	// point the journal refuses is never exposed: the client gets an
	// in-band abort line instead, and its reconnect replays the durable
	// prefix and re-runs the refused point.
	errJournal := errors.New("service: journal append failed")
	emitPoint := func(index int, line *SweepLine) error {
		raw, err := json.Marshal(line)
		if err != nil {
			return err
		}
		if err := jj.Append(journal.Record{Type: journal.TypePoint, Index: index, Line: raw}); err != nil {
			abort := SweepLine{Error: fmt.Sprintf("journal append failed: %v", err)}
			ab, _ := json.Marshal(&abort)
			_ = writeRaw(ab)
			return errJournal
		}
		return writeRaw(raw)
	}

	// drainLine announces graceful shutdown in-band: a final well-formed
	// jobless error line lets the client distinguish "server stopped"
	// from a truncated stream. Drain lines carry seq 0 and are never
	// journaled — they are control flow, not results.
	drainLine := func(index int) {
		drain := SweepLine{Index: index, Error: "server draining: sweep stopped before completion"}
		raw, _ := json.Marshal(&drain)
		_ = writeRaw(raw)
	}

	if len(remaining) == 0 {
		_ = jj.Done()
		return
	}

	if distributed {
		// Coordinator path: the remaining design shards across the
		// cluster; merged bytes match the local path (same job-ID block,
		// same line content, same order). Shard work dies with the request
		// or the daemon, whichever first.
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		stop := context.AfterFunc(s.baseCtx, cancel)
		defer stop()

		errDrain := errors.New("service: draining")
		err := s.coord.runSharded(ctx, req.App, digest, prepared, remaining, params, func(line api.ShardLine) error {
			if s.baseCtx.Err() != nil {
				drainLine(done + line.Index)
				return errDrain
			}
			abs := done + line.Index
			out := SweepLine{Seq: int64(abs + 1), Index: abs, JobID: ids[abs], Config: cfgs[abs],
				Result: line.Result, Error: line.Error}
			return emitPoint(abs, &out)
		})
		switch {
		case err == nil:
			_ = jj.Done()
		case errors.Is(err, errDrain) || errors.Is(err, errJournal):
		case s.baseCtx.Err() != nil && r.Context().Err() == nil:
			// The daemon died between lines (context cancellation surfaced
			// from runSharded itself): still announce the drain in-band.
			drainLine(0)
		}
		return
	}

	for i, j := range jobs {
		abs := done + i
		select {
		case <-j.done:
		case <-s.baseCtx.Done():
			// Graceful shutdown: the scheduler is draining, so jobs not yet
			// finished will never complete.
			drainLine(abs)
			return
		case <-r.Context().Done():
			return
		}
		info := j.Info()
		line := SweepLine{Seq: int64(abs + 1), Index: abs, JobID: j.id, Config: j.cfg,
			Result: info.Result, Error: info.Error}
		if emitPoint(abs, &line) != nil {
			return
		}
	}
	_ = jj.Done()
}

// resolve maps an app name to its registry entry and its cached Prepared
// artifact, building the latter through the content-addressed cache.
func (s *Server) resolve(name string) (App, *apps.Spec, *core.Prepared, string, error) {
	app, ok := s.apps[name]
	if !ok {
		names := make([]string, 0, len(s.apps))
		for n := range s.apps {
			names = append(names, n)
		}
		sort.Strings(names)
		return App{}, nil, nil, "", fmt.Errorf("unknown app %q (registered: %v)", name, names)
	}
	spec := app.New()
	p, digest, err := s.cache.Get(spec)
	if err != nil {
		return App{}, nil, nil, "", fmt.Errorf("prepare %q: %w", name, err)
	}
	return app, spec, p, digest, nil
}

// timeout resolves a request's start-TTL. The server's JobTimeout is
// both the default and the ceiling: the shutdown grace is sized from
// it, so no client-supplied value may exceed it.
func (s *Server) timeout(ms int64) time.Duration {
	if ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < s.opts.JobTimeout {
			return d
		}
	}
	return s.opts.JobTimeout
}

func censusParams(req []string) []string {
	if len(req) > 0 {
		return req
	}
	return DefaultCensusParams()
}

// --- helpers ---

// decodeBody reads exactly one JSON value from the request into dst,
// writing the error response itself and returning false on failure. The
// body is capped at Options.MaxBodyBytes (oversized requests answer 413
// with a typed error body instead of being silently truncated into a
// confusing parse error), unknown fields are rejected, and so is any
// trailing garbage after the JSON value — "two documents glued
// together" is a client bug worth failing loudly.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	if err == nil {
		// Exactly one value: a second decode must hit EOF.
		var extra json.RawMessage
		if trailErr := dec.Decode(&extra); trailErr != io.EOF {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("invalid request body: trailing data after the JSON value"))
			return false
		}
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit))
		return false
	}
	httpError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
	return false
}

// admit charges n tokens against the requesting client's admission
// bucket, answering 429 with a Retry-After header (and counting the
// rejection) when the bucket cannot cover it. Always true when rate
// limiting is disabled.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, n float64) bool {
	ok, retry := s.limiter.allowN(clientKey(r), n)
	if ok {
		return true
	}
	s.metrics.rateLimitedInc()
	secs := int(retry/time.Second) + 1
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, &api.ErrorBody{
		Error:        fmt.Sprintf("rate limit exceeded for this client; retry in %ds", secs),
		RetryAfterMS: retry.Milliseconds(),
	})
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError answers with the API's single error envelope; handlers must
// route every failure through it (or admit) so clients see one shape.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, &api.ErrorBody{Error: err.Error()})
}
