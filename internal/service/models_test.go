package service

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/modelreg"
)

// modelTestRequest is a small but real LULESH modeling design.
func modelTestRequest() ModelRequest {
	return ModelRequest{
		App:      "lulesh",
		Params:   []string{"p", "size"},
		Defaults: map[string]float64{"regions": 4, "balance": 2, "cost": 1, "iters": 2},
		Axes: []SweepAxis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{4, 5}},
		},
		Reps:  2,
		Seed:  3,
		Batch: 2,
	}
}

func TestServeModelsCachesBySpecAndDesign(t *testing.T) {
	srv, client := testServer(t, Options{Workers: 2})
	ctx := context.Background()

	first, err := client.Models(ctx, modelTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first extraction claims a cache hit")
	}
	if first.ModelSet == nil || len(first.ModelSet.Functions) == 0 {
		t.Fatal("empty model set")
	}
	if first.ModelSet.Points != 4 {
		t.Fatalf("consumed %d points, want 4", first.ModelSet.Points)
	}

	// Acceptance criterion: the same spec digest + design answers from
	// the registry with the identical model set.
	second, err := client.Models(ctx, modelTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second extraction missed the registry")
	}
	if second.Key != first.Key || !reflect.DeepEqual(first.ModelSet, second.ModelSet) {
		t.Fatal("cached model set differs from the first extraction")
	}
	if st := srv.Models().Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("registry stats %+v, want 1 miss / 1 hit", st)
	}

	// A different design is a different address and a fresh build.
	other := modelTestRequest()
	other.Seed = 99
	third, err := client.Models(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached || third.Key == first.Key {
		t.Fatalf("distinct design shared the address: %+v", third.Key)
	}

	// GET /v1/models/{key} serves the resident artifact.
	got, err := client.ModelByKey(ctx, first.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cached || !reflect.DeepEqual(got.ModelSet, first.ModelSet) {
		t.Fatal("GET by key diverges from the extraction")
	}
	if _, err := client.ModelByKey(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing key: %v", err)
	}

	// /v1/stats carries the registry counters.
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Models.Entries != 2 || stats.Models.Misses != 2 {
		t.Fatalf("stats.Models = %+v", stats.Models)
	}
}

func TestServeModelsStreamsProgress(t *testing.T) {
	_, client := testServer(t, Options{Workers: 2})
	ctx := context.Background()

	var mu sync.Mutex
	var events []modelreg.Event
	resp, err := client.ModelsStream(ctx, modelTestRequest(), func(ev modelreg.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.ModelSet == nil {
		t.Fatalf("streaming build: %+v", resp)
	}
	var taints, points, refits int
	lastPoint := 0
	for _, ev := range events {
		switch ev.Type {
		case "taint":
			taints++
		case "point":
			points++
			if ev.Points != lastPoint+1 {
				t.Fatalf("point events out of order: %+v", ev)
			}
			lastPoint = ev.Points
		case "refit":
			refits++
		}
	}
	if taints != 1 || points != 4 || refits == 0 {
		t.Fatalf("event counts taint=%d point=%d refit=%d", taints, points, refits)
	}

	// A repeat streams no progress (registry hit) but still the result.
	events = nil
	resp2, err := client.ModelsStream(ctx, modelTestRequest(), func(ev modelreg.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || len(events) != 0 {
		t.Fatalf("cache hit streamed %d events, cached=%v", len(events), resp2.Cached)
	}
	if !reflect.DeepEqual(resp.ModelSet, resp2.ModelSet) {
		t.Fatal("streamed and cached model sets differ")
	}
}

func TestServeModelsRejectsBadDesigns(t *testing.T) {
	_, client := testServer(t, Options{Workers: 1, MaxSweepConfigs: 8})
	ctx := context.Background()

	cases := []struct {
		name   string
		mutate func(*ModelRequest)
	}{
		{"unknown app", func(r *ModelRequest) { r.App = "nope" }},
		{"no axes", func(r *ModelRequest) { r.Axes = nil }},
		{"unknown axis param", func(r *ModelRequest) { r.Axes[0].Param = "typo" }},
		{"unswept model param", func(r *ModelRequest) { r.Params = []string{"p", "regions"} }},
		{"unknown metric", func(r *ModelRequest) { r.Metrics = []string{"flops"} }},
		{"oversized design", func(r *ModelRequest) {
			r.Axes[0].Values = []float64{2, 4, 8}
			r.Axes[1].Values = []float64{4, 5, 6}
		}},
	}
	for _, tc := range cases {
		req := modelTestRequest()
		req.Axes = []SweepAxis{
			{Param: "p", Values: append([]float64(nil), 2, 4)},
			{Param: "size", Values: append([]float64(nil), 4, 5)},
		}
		tc.mutate(&req)
		if _, err := client.Models(ctx, req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("%s: want a 400, got %v", tc.name, err)
		}
	}
}
