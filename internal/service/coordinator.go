package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/modelreg"
	"repro/internal/runner"
)

// workerRef is the coordinator's record of one registered worker. All
// fields are guarded by the owning coordinator's mutex.
type workerRef struct {
	id   string
	addr string
	// live gates dispatch: false after a heartbeat timeout or a failed
	// shard, true again on the next heartbeat (a transiently-failed
	// worker earns its way back by proving it is reachable).
	live     bool
	lastBeat time.Time
	// shards counts successful shard completions; inFlight the dispatches
	// currently outstanding (the balancer picks the least-loaded worker).
	shards   uint64
	inFlight int
}

// coordinator is the distributed-execution half of a Server running in
// coordinator mode: it tracks registered workers, partitions sweep
// designs into contiguous shards, dispatches them over the worker
// protocol, retries failures on surviving workers (falling back to local
// execution when the cluster is exhausted), and merges shard results
// back into the deterministic design-order stream.
type coordinator struct {
	s *Server
	// client dials workers; kept separate from http.DefaultClient so
	// tests can intercept it.
	client *http.Client

	// shardHist observes successful remote shard round-trip latency.
	shardHist *Histogram

	mu      sync.Mutex
	workers map[string]*workerRef // by id
	byAddr  map[string]*workerRef
	nextID  int

	shardsDispatched uint64
	shardsLocal      uint64
	shardRetries     uint64
	heartbeatMisses  uint64
	preparedServed   uint64
}

func newCoordinator(s *Server) *coordinator {
	return &coordinator{
		s:         s,
		client:    &http.Client{},
		shardHist: NewHistogram(),
		workers:   make(map[string]*workerRef),
		byAddr:    make(map[string]*workerRef),
	}
}

// --- registration and liveness ---

func (co *coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterRequest
	if !co.s.decodeBody(w, r, &req) {
		return
	}
	if req.Protocol != api.ProtocolVersion {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("protocol mismatch: worker speaks %q, coordinator %q", req.Protocol, api.ProtocolVersion))
		return
	}
	u, err := url.Parse(req.Addr)
	if err != nil || u.Scheme == "" || u.Host == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("worker addr %q is not an absolute URL", req.Addr))
		return
	}
	addr := strings.TrimRight(req.Addr, "/")
	co.mu.Lock()
	ref := co.byAddr[addr]
	if ref == nil {
		co.nextID++
		ref = &workerRef{id: fmt.Sprintf("worker-%d", co.nextID), addr: addr}
		co.workers[ref.id] = ref
		co.byAddr[addr] = ref
	}
	ref.live = true
	ref.lastBeat = time.Now()
	co.mu.Unlock()
	writeJSON(w, http.StatusOK, &api.RegisterResponse{
		WorkerID:    ref.id,
		Protocol:    api.ProtocolVersion,
		HeartbeatMS: co.s.opts.HeartbeatInterval.Milliseconds(),
	})
}

func (co *coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req api.HeartbeatRequest
	if !co.s.decodeBody(w, r, &req) {
		return
	}
	co.mu.Lock()
	ref := co.workers[req.WorkerID]
	if ref != nil {
		// A heartbeat proves reachability, so it also resurrects workers
		// benched by a timeout or a failed dispatch.
		ref.live = true
		ref.lastBeat = time.Now()
	}
	co.mu.Unlock()
	if ref == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown worker %q; re-register", req.WorkerID))
		return
	}
	writeJSON(w, http.StatusOK, &api.HeartbeatResponse{OK: true})
}

// reap marks workers dead when their heartbeats stop arriving; each
// live→dead transition counts one heartbeat miss. Runs until ctx dies.
func (co *coordinator) reap(ctx context.Context) {
	t := time.NewTicker(co.s.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		co.mu.Lock()
		for _, ref := range co.workers {
			if ref.live && now.Sub(ref.lastBeat) > co.s.opts.HeartbeatTimeout {
				ref.live = false
				co.heartbeatMisses++
			}
		}
		co.mu.Unlock()
	}
}

// hasLive reports whether at least one worker is currently dispatchable.
func (co *coordinator) hasLive() bool { return co.liveCount() > 0 }

func (co *coordinator) liveCount() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	n := 0
	for _, ref := range co.workers {
		if ref.live {
			n++
		}
	}
	return n
}

// pickWorker reserves the least-loaded live worker, preferring any
// worker other than avoid (so a retry of a shard that just failed lands
// elsewhere while alternatives exist). Returns nil when no live worker
// remains; the caller must release the pick.
func (co *coordinator) pickWorker(avoid *workerRef) *workerRef {
	co.mu.Lock()
	defer co.mu.Unlock()
	var best *workerRef
	for _, ref := range co.workers {
		if !ref.live || ref == avoid {
			continue
		}
		if best == nil || ref.inFlight < best.inFlight ||
			(ref.inFlight == best.inFlight && ref.id < best.id) {
			best = ref
		}
	}
	if best == nil && avoid != nil && avoid.live {
		best = avoid
	}
	if best != nil {
		best.inFlight++
	}
	return best
}

func (co *coordinator) release(ref *workerRef) {
	co.mu.Lock()
	ref.inFlight--
	co.mu.Unlock()
}

// --- digest federation ---

// handlePrepared serves the canonical spec bytes under a digest so a
// worker missing the entry can verify and seed its own cache before
// building. 404 when this daemon has never prepared the digest.
func (co *coordinator) handlePreparedServe(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	data, ok := co.s.cache.CanonicalBytes(digest)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("digest %q not prepared here", digest))
		return
	}
	co.mu.Lock()
	co.preparedServed++
	co.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// --- shard scheduling ---

// shard is one contiguous slice of a design in flight.
type shardState struct {
	start int
	cfgs  []apps.Config
	done  chan struct{}
	lines []api.ShardLine
	err   error
}

// shardSize resolves the shard length for an n-point design: the
// configured Options.ShardSize, or roughly three shards per live worker
// so the balancer has slack to route around a mid-sweep death without
// losing more than a sliver of work.
func (co *coordinator) shardSize(n int) int {
	if sz := co.s.opts.ShardSize; sz > 0 {
		return sz
	}
	live := co.liveCount()
	if live < 1 {
		live = 1
	}
	sz := (n + 3*live - 1) / (3 * live)
	if sz < 1 {
		sz = 1
	}
	return sz
}

// runSharded partitions cfgs into contiguous shards, executes them
// across the live workers (with retry and local fallback), and emits
// every ShardLine in absolute design order — the same order and content
// a single node produces, which is what makes the merged stream
// byte-identical. emit runs on this goroutine; an emit error aborts
// outstanding shards.
func (co *coordinator) runSharded(ctx context.Context, app, digest string, prepared *core.Prepared, cfgs []apps.Config, censusParams []string, emit func(api.ShardLine) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	size := co.shardSize(len(cfgs))
	var shards []*shardState
	for start := 0; start < len(cfgs); start += size {
		end := start + size
		if end > len(cfgs) {
			end = len(cfgs)
		}
		sh := &shardState{start: start, cfgs: cfgs[start:end], done: make(chan struct{})}
		shards = append(shards, sh)
		go co.runShard(ctx, app, digest, prepared, censusParams, sh)
	}
	for _, sh := range shards {
		select {
		case <-sh.done:
		case <-ctx.Done():
			return ctx.Err()
		}
		if sh.err != nil {
			return sh.err
		}
		for _, line := range sh.lines {
			if err := emit(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// runShard drives one shard to completion: dispatch to the best live
// worker, retry elsewhere on failure with capped backoff, and fall back
// to local execution once retries or workers run out. A worker that
// fails a dispatch is benched (marked dead) until its next heartbeat.
func (co *coordinator) runShard(ctx context.Context, app, digest string, prepared *core.Prepared, censusParams []string, sh *shardState) {
	defer close(sh.done)
	req := &api.ShardRequest{
		Protocol:     api.ProtocolVersion,
		App:          app,
		SpecDigest:   digest,
		Start:        sh.start,
		Configs:      sh.cfgs,
		CensusParams: censusParams,
	}
	var lastFailed *workerRef
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			sh.err = ctx.Err()
			return
		}
		var ref *workerRef
		if attempt < co.s.opts.ShardRetries {
			ref = co.pickWorker(lastFailed)
		}
		if ref == nil {
			// Retries exhausted or no live worker: the shard still has to
			// finish — run it on the coordinator's own pool. A worker dying
			// mid-shard therefore loses exactly that shard's work, never
			// the sweep.
			sh.lines = co.runShardLocal(ctx, app, digest, prepared, censusParams, sh)
			co.mu.Lock()
			co.shardsLocal++
			co.mu.Unlock()
			return
		}
		start := time.Now()
		lines, err := co.dispatch(ctx, ref, req)
		co.release(ref)
		if err == nil {
			co.mu.Lock()
			ref.shards++
			co.shardsDispatched++
			co.mu.Unlock()
			co.shardHist.ObserveSince(start)
			sh.lines = lines
			return
		}
		if ctx.Err() != nil {
			// The dispatch failed because the sweep itself is over; do not
			// punish the worker for our cancellation.
			sh.err = ctx.Err()
			return
		}
		co.mu.Lock()
		co.shardRetries++
		ref.live = false
		co.mu.Unlock()
		lastFailed = ref
		backoff := 100 * time.Millisecond << uint(attempt)
		if backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
	}
}

// dispatch sends one shard to one worker and collects its full NDJSON
// response. Partial streams are an error — a truncated shard is retried
// whole, so merged output never mixes a worker's partial results with a
// retry's.
func (co *coordinator) dispatch(ctx context.Context, ref *workerRef, req *api.ShardRequest) ([]api.ShardLine, error) {
	ctx, cancel := context.WithTimeout(ctx, co.s.opts.ShardTimeout)
	defer cancel()
	if f, ok := faultinject.Eval(faultinject.SiteDispatch); ok {
		// An injected dispatch fault looks like a network failure before the
		// request left the coordinator: the retry-on-survivors path must
		// absorb it exactly like a real connection refusal.
		if f.Kind == faultinject.KindLatency {
			select {
			case <-time.After(f.Delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			return nil, fmt.Errorf("service: dispatch shard to %s: %w", ref.id, faultinject.Errf(f))
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: encode shard: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ref.addr+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("service: build shard request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := co.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("service: dispatch shard to %s: %w", ref.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: worker %s refused shard: %w", ref.id, apiError(resp))
	}
	lines := make([]api.ShardLine, 0, len(req.Configs))
	err = scanNDJSON(resp.Body, func(raw []byte) error {
		var line api.ShardLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("service: decode shard line: %w", err)
		}
		lines = append(lines, line)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(lines) != len(req.Configs) {
		return nil, fmt.Errorf("service: worker %s returned %d/%d shard lines", ref.id, len(lines), len(req.Configs))
	}
	for i, line := range lines {
		if line.Index != req.Start+i {
			return nil, fmt.Errorf("service: worker %s shard out of order: line %d has index %d, want %d",
				ref.id, i, line.Index, req.Start+i)
		}
	}
	return lines, nil
}

// runShardLocal executes a shard on the coordinator's own runner,
// producing exactly the lines a worker would have streamed.
func (co *coordinator) runShardLocal(ctx context.Context, app, digest string, prepared *core.Prepared, censusParams []string, sh *shardState) []api.ShardLine {
	results := (&runner.Runner{Workers: co.s.opts.Workers}).AnalyzeBatchPreparedCtx(ctx, prepared, sh.cfgs)
	lines := make([]api.ShardLine, len(results))
	for i, res := range results {
		lines[i] = shardLine(app, digest, sh.start+res.Index, censusParams, res)
	}
	return lines
}

// shardLine projects one analysis result into its wire record at the
// given absolute index. Both execution sites — the worker's /v1/shard
// handler and the coordinator's local fallback — route through this, so
// the merged stream cannot depend on where a design point ran.
func shardLine(app, digest string, index int, censusParams []string, res runner.Result) api.ShardLine {
	line := api.ShardLine{Index: index}
	if res.Err != nil {
		line.Error = res.Err.Error()
		return line
	}
	line.Result = api.NewAnalysisResult(app, digest, res.Report, censusParams)
	line.Iterations = modelreg.SumLoopIterations(res.Report)
	line.Instructions = res.Report.Instructions
	return line
}

// sampleSweep adapts the shard scheduler to modelreg's SweepFunc: the
// design executes across the cluster and every shard line arrives as a
// distilled Sample in design order. Measurement synthesis and fitting
// stay on the coordinator, so the artifact (and its registry key) is
// identical to a single-node extraction.
func (co *coordinator) sampleSweep(app, digest string, prepared *core.Prepared) modelreg.SweepFunc {
	return func(ctx context.Context, cfgs []apps.Config, consume func(modelreg.Sample) error) error {
		return co.runSharded(ctx, app, digest, prepared, cfgs, nil, func(line api.ShardLine) error {
			if line.Error != "" {
				return fmt.Errorf("modelreg: design point %d (%v): %s", line.Index, cfgs[line.Index], line.Error)
			}
			return consume(modelreg.Sample{
				Index:        line.Index,
				Config:       cfgs[line.Index],
				Iterations:   line.Iterations,
				Instructions: line.Instructions,
			})
		})
	}
}

// stats snapshots the cluster state for /v1/stats.
func (co *coordinator) stats() *api.ClusterStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := &api.ClusterStats{
		Role:             "coordinator",
		ShardsDispatched: co.shardsDispatched,
		ShardsLocal:      co.shardsLocal,
		ShardRetries:     co.shardRetries,
		HeartbeatMisses:  co.heartbeatMisses,
		FederatedFetches: co.preparedServed,
	}
	for _, ref := range co.workers {
		if ref.live {
			out.LiveWorkers++
		}
		out.Workers = append(out.Workers, api.WorkerStats{
			ID:              ref.id,
			Addr:            ref.addr,
			Live:            ref.live,
			Shards:          ref.shards,
			InFlight:        ref.inFlight,
			LastHeartbeatMS: time.Since(ref.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].ID < out.Workers[j].ID })
	return out
}
