package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// tinySpec builds a minimal valid spec whose content is parameterized by
// units, so distinct units yield distinct content addresses.
func tinySpec(units float64) *apps.Spec {
	return &apps.Spec{
		Name:   "tiny",
		Params: []string{"n"},
		Funcs: []*apps.FuncSpec{
			{Name: "main", Kind: apps.KindMain, Body: []apps.Stmt{
				apps.Loop{Kind: apps.ParamBound, Bound: apps.QP(1, "n", 1), Body: []apps.Stmt{
					apps.Work{Units: units},
				}},
			}},
		},
	}
}

// countingCache wires a build counter (and optional delay) into the
// cache's prepare hook while still producing real Prepared values.
func countingCache(t *testing.T, capacity int, delay time.Duration) (*PreparedCache, *atomic.Int64) {
	t.Helper()
	var builds atomic.Int64
	c := NewPreparedCache(capacity)
	c.prepare = func(spec *apps.Spec) (*core.Prepared, error) {
		builds.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return core.Prepare(spec)
	}
	return c, &builds
}

func TestPreparedCacheSingleflight(t *testing.T) {
	c, builds := countingCache(t, 8, 20*time.Millisecond)
	const goroutines = 32
	var wg sync.WaitGroup
	prepared := make([]*core.Prepared, goroutines)
	digests := make([]string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, d, err := c.Get(tinySpec(7))
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			prepared[i], digests[i] = p, d
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("concurrent misses built %d times, want exactly 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if prepared[i] != prepared[0] {
			t.Fatalf("goroutine %d got a different Prepared pointer", i)
		}
		if digests[i] != digests[0] {
			t.Fatalf("goroutine %d got digest %s, want %s", i, digests[i], digests[0])
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (one build)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d (joined flights count as hits)", st.Hits, goroutines-1)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func TestPreparedCacheLRUEvictionOrder(t *testing.T) {
	c, builds := countingCache(t, 2, 0)
	specs := []*apps.Spec{tinySpec(1), tinySpec(2), tinySpec(3)}
	var digests []string
	for _, s := range specs[:2] {
		_, d, err := c.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	// Touch spec 0 so spec 1 becomes least recently used.
	if _, _, err := c.Get(specs[0]); err != nil {
		t.Fatal(err)
	}
	// Inserting spec 2 must evict spec 1, not the freshly touched spec 0.
	_, d2, err := c.Get(specs[2])
	if err != nil {
		t.Fatal(err)
	}
	digests = append(digests, d2)
	if c.Contains(digests[1]) {
		t.Fatal("least recently used entry survived eviction")
	}
	if !c.Contains(digests[0]) || !c.Contains(digests[2]) {
		t.Fatalf("expected %v resident, have %v", []string{digests[0], digests[2]}, c.Digests())
	}
	if got := c.Digests(); len(got) != 2 || got[0] != digests[2] || got[1] != digests[0] {
		t.Fatalf("recency order = %v, want [%s %s]", got, digests[2], digests[0])
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// Re-requesting the evicted spec rebuilds it (a fresh miss).
	before := builds.Load()
	if _, _, err := c.Get(specs[1]); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != before+1 {
		t.Fatal("evicted entry did not rebuild on next Get")
	}
}

func TestPreparedCacheHashStability(t *testing.T) {
	c, builds := countingCache(t, 4, 0)
	// Two separately constructed but equivalent specs must share one
	// entry: the cache is content-addressed, not identity-addressed.
	if _, _, err := c.Get(tinySpec(5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(tinySpec(5)); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("equivalent specs built %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	// A semantically different spec is a different address.
	if _, _, err := c.Get(tinySpec(6)); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("distinct spec reused an entry (builds = %d)", n)
	}
}

func TestPreparedCacheErrorNotCached(t *testing.T) {
	c := NewPreparedCache(4)
	fail := true
	var builds int
	c.prepare = func(spec *apps.Spec) (*core.Prepared, error) {
		builds++
		if fail {
			return nil, fmt.Errorf("transient build failure")
		}
		return core.Prepare(spec)
	}
	if _, _, err := c.Get(tinySpec(9)); err == nil {
		t.Fatal("expected build error")
	}
	if c.Stats().Entries != 0 {
		t.Fatal("failed build must not be cached")
	}
	fail = false
	if _, _, err := c.Get(tinySpec(9)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (failure retried)", builds)
	}
}
