package service

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// maxTrackedClients bounds the limiter's bucket map: past it, buckets
// that have fully refilled (indistinguishable from brand-new ones) are
// swept, so an address-spraying client cannot grow daemon memory without
// bound.
const maxTrackedClients = 4096

// rateLimiter is per-client token-bucket admission control over the job
// queue. Each client key (X-Client-ID header, else the remote host) owns
// a bucket holding up to burst tokens refilled at rate tokens/second;
// submitting one analysis costs one token and a sweep costs one token
// per design point (capped at burst so a legal large design drains the
// bucket instead of being unreachable forever). An exhausted bucket
// answers 429 with a Retry-After telling the client exactly when the
// tokens it needs will exist. A nil *rateLimiter admits everything.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	// now is the clock; tests substitute it.
	now func() time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter admitting rate tokens/second with
// capacity burst per client, or nil (admit everything) when rate <= 0.
func newRateLimiter(rate, burst float64) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = math.Max(1, 2*rate)
	}
	return &rateLimiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allowN takes n tokens from key's bucket. When the bucket cannot cover
// the charge it is left untouched and the second return value says how
// long until it could. Charges above the bucket capacity are clamped to
// it, so a request the server's own design cap admits is never starved
// in perpetuity by the limiter.
func (l *rateLimiter) allowN(key string, n float64) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	if n > l.burst {
		n = l.burst
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxTrackedClients {
			l.sweepLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	wait := time.Duration((n - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// sweepLocked drops buckets that have refilled to capacity — removing
// one is observationally identical to keeping it. Caller holds mu.
func (l *rateLimiter) sweepLocked(now time.Time) {
	for key, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, key)
		}
	}
}

// clients reports the number of tracked buckets.
func (l *rateLimiter) clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// ClientIDHeader names the optional request header that identifies a
// client for admission control; without it the remote host is the key,
// so all connections from one address share one bucket.
const ClientIDHeader = "X-Client-ID"

// clientKey derives the admission-control key for a request.
func clientKey(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return "id:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}
