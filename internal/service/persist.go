package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/modelreg"
)

// preparedCodec is the Prepared cache's disk wire form. A core.Prepared
// cannot be serialized (it holds the built module, the static pass, and
// the predecoded program), so the durable payload is the canonical spec
// byte stream the digest is defined over: sha256(payload) == digest, so
// an entry proves its own identity against its file name. The presence
// of a verified entry is the signal — "this digest was prepared before" —
// and the artifact is rebuilt lazily through the cache's singleflight.
type preparedCodec struct{}

// Encode persists the canonical spec bytes of the Prepared's spec.
func (preparedCodec) Encode(v any) ([]byte, error) {
	p, ok := v.(*core.Prepared)
	if !ok {
		return nil, fmt.Errorf("service: prepared codec got %T", v)
	}
	return core.CanonicalSpecBytes(p.Spec), nil
}

// Decode verifies that the payload actually hashes to the digest it was
// stored under; a file renamed onto the wrong digest is a decode error
// (and so a cleaned-up miss), never a false warm entry.
func (preparedCodec) Decode(digest string, data []byte) (any, error) {
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, fmt.Errorf("service: prepared entry does not denote digest %s", digest)
	}
	return data, nil
}

// openDiskTiers opens the two persistent cache tiers under dir:
// dir/prepared/<spec digest version>/ for the PreparedCache and
// dir/models/<design digest version>/ for the model registry. Each tier
// is version-stamped independently, so bumping one pipeline's semantics
// invalidates exactly that tier.
func openDiskTiers(dir string) (prepared, models *diskcache.Layer, err error) {
	ps, err := diskcache.Open(filepath.Join(dir, "prepared"), core.DigestVersion)
	if err != nil {
		return nil, nil, err
	}
	ml, err := modelreg.OpenDiskLayer(filepath.Join(dir, "models"))
	if err != nil {
		return nil, nil, err
	}
	return diskcache.NewLayer(ps, preparedCodec{}), ml, nil
}
