package mpisim

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("expected error for size 0")
	}
	if _, err := NewWorld(-3); err == nil {
		t.Fatal("expected error for negative size")
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Rank(4); err == nil {
		t.Fatal("expected out-of-range rank error")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, 7, []int64{1, 2, 3})
		}
		m, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(m.Data) != 3 || m.Data[2] != 3 {
			t.Errorf("bad payload %v", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvFiltersByTag(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, 1, []int64{10}); err != nil {
				return err
			}
			return r.Send(1, 2, []int64{20})
		}
		// Receive tag 2 first even though tag 1 arrived earlier.
		m2, err := r.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := r.Recv(0, 1)
		if err != nil {
			return err
		}
		if m2.Data[0] != 20 || m1.Data[0] != 10 {
			t.Errorf("tag filtering broken: %v %v", m1.Data, m2.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, _ := NewWorld(8)
	var before, after int64
	err := w.Run(func(r *Rank) error {
		atomic.AddInt64(&before, 1)
		r.Barrier()
		if atomic.LoadInt64(&before) != 8 {
			t.Error("barrier released before all ranks arrived")
		}
		atomic.AddInt64(&after, 1)
		r.Barrier()
		if atomic.LoadInt64(&after) != 8 {
			t.Error("second barrier released early")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastDistributes(t *testing.T) {
	w, _ := NewWorld(5)
	err := w.Run(func(r *Rank) error {
		var data []int64
		if r.ID == 2 {
			data = []int64{42, 43}
		}
		got, err := r.Bcast(2, data)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 42 || got[1] != 43 {
			t.Errorf("rank %d got %v", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSums(t *testing.T) {
	const p = 6
	w, _ := NewWorld(p)
	err := w.Run(func(r *Rank) error {
		got, err := r.Allreduce([]int64{int64(r.ID), 1})
		if err != nil {
			return err
		}
		wantSum := int64(p * (p - 1) / 2)
		if got[0] != wantSum || got[1] != p {
			t.Errorf("rank %d allreduce = %v, want [%d %d]", r.ID, got, wantSum, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherCollectsOnRoot(t *testing.T) {
	const p = 4
	w, _ := NewWorld(p)
	err := w.Run(func(r *Rank) error {
		got, err := r.Gather(0, []int64{int64(r.ID * 10)})
		if err != nil {
			return err
		}
		if r.ID == 0 {
			for i := 0; i < p; i++ {
				if got[i][0] != int64(i*10) {
					t.Errorf("gather[%d] = %v", i, got[i])
				}
			}
		} else if got != nil {
			t.Errorf("non-root rank %d got data", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCostModelShapes(t *testing.T) {
	c := DefaultCost()
	// Monotone in p for collectives.
	if !(c.Allreduce(64, 100) > c.Allreduce(8, 100)) {
		t.Fatal("allreduce cost must grow with p")
	}
	if !(c.Bcast(64, 100) > c.Bcast(8, 100)) {
		t.Fatal("bcast cost must grow with p")
	}
	// Logarithmic shape: doubling p adds a constant for barrier.
	d1 := c.Barrier(16) - c.Barrier(8)
	d2 := c.Barrier(32) - c.Barrier(16)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("barrier not logarithmic: deltas %g %g", d1, d2)
	}
	// Gather is linear in p for the bandwidth term.
	g1 := c.Gather(32, 1000) - c.Gather(16, 1000)
	g2 := c.Gather(64, 1000) - c.Gather(32, 1000)
	if g2 < 1.5*g1 {
		t.Fatalf("gather bandwidth term not linear: %g then %g", g1, g2)
	}
	// Degenerate single-rank communicators cost nothing.
	if c.Barrier(1) != 0 || c.Allreduce(1, 10) != 0 || c.Gather(1, 10) != 0 {
		t.Fatal("single-rank collectives must be free")
	}
	if c.P2P(0) != c.Alpha {
		t.Fatal("empty message must cost alpha")
	}
}

func TestScatterDistributesChunks(t *testing.T) {
	w, _ := NewWorld(4)
	err := w.Run(func(r *Rank) error {
		var chunks [][]int64
		if r.ID == 1 {
			for i := 0; i < 4; i++ {
				chunks = append(chunks, []int64{int64(10 * i), int64(10*i + 1)})
			}
		}
		got, err := r.Scatter(1, chunks)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != int64(10*r.ID) || got[1] != int64(10*r.ID+1) {
			t.Errorf("rank %d scatter chunk = %v", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterRejectsWrongChunkCount(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID != 0 {
			return nil
		}
		_, err := r.Scatter(0, [][]int64{{1}})
		if err == nil {
			t.Error("expected chunk-count error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallCompleteExchange(t *testing.T) {
	const n = 4
	w, _ := NewWorld(n)
	err := w.Run(func(r *Rank) error {
		chunks := make([][]int64, n)
		for dst := range chunks {
			chunks[dst] = []int64{int64(100*r.ID + dst)}
		}
		got, err := r.Alltoall(chunks)
		if err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			if len(got[src]) != 1 || got[src][0] != int64(100*src+r.ID) {
				t.Errorf("rank %d from %d = %v, want [%d]", r.ID, src, got[src], 100*src+r.ID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterAlltoallCostShapes(t *testing.T) {
	c := DefaultCost()
	// Single-rank communicators communicate nothing.
	if c.Scatter(1, 64) != 0 || c.Alltoall(1, 64) != 0 {
		t.Fatal("p=1 collectives must cost 0")
	}
	// Both grow with p and with m.
	if !(c.Scatter(16, 64) > c.Scatter(4, 64)) || !(c.Scatter(8, 256) > c.Scatter(8, 64)) {
		t.Error("scatter cost must grow with p and m")
	}
	if !(c.Alltoall(16, 64) > c.Alltoall(4, 64)) || !(c.Alltoall(8, 256) > c.Alltoall(8, 64)) {
		t.Error("alltoall cost must grow with p and m")
	}
	// Alltoall is pairwise-linear: exactly (p-1)*(alpha+beta*m).
	p, m := 8.0, 32.0
	if got, want := c.Alltoall(p, m), (p-1)*(c.Alpha+c.Beta*m); math.Abs(got-want) > 1e-18 {
		t.Errorf("alltoall(%g,%g) = %g, want %g", p, m, got, want)
	}
	// Scatter mirrors Gather's shape.
	if c.Scatter(8, 32) != c.Gather(8, 32) {
		t.Error("scatter and gather are mirror images under the linear model")
	}
}
