// Package mpisim is a functional message-passing substrate: a communicator
// of R simulated ranks running as goroutines with typed channels, providing
// the point-to-point and collective operations the library database
// describes, plus the analytical cost models (LogP/Thakur-style) that the
// measurement substrate uses to synthesize communication times.
//
// The taint analysis itself runs single-process (labels are not exchanged
// across ranks; see Section 5.3), so this package serves two purposes:
// exercising the MPI semantics in tests and examples, and providing the
// cost-model side of the evaluation's communication routines.
package mpisim

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Message is one point-to-point payload with a tag.
type Message struct {
	Source int
	Tag    int
	Data   []int64
}

// World is a simulated communicator of Size ranks.
type World struct {
	Size int
	// mail[dst] receives messages for rank dst.
	mail []chan Message

	barrier   *barrierState
	mu        sync.Mutex
	collected map[int][][]int64 // generation -> per-rank contributions
}

type barrierState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	gen   int
	size  int
}

func newBarrier(size int) *barrierState {
	b := &barrierState{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrierState) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// NewWorld creates a communicator with size ranks. Channel capacity is
// generous so that eager sends do not deadlock simple exchange patterns.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpisim: invalid world size %d", size)
	}
	w := &World{
		Size:      size,
		mail:      make([]chan Message, size),
		barrier:   newBarrier(size),
		collected: make(map[int][][]int64),
	}
	for i := range w.mail {
		w.mail[i] = make(chan Message, 1024)
	}
	return w, nil
}

// Rank is the per-process handle used inside a rank's goroutine.
type Rank struct {
	W  *World
	ID int
}

// Rank returns the handle for rank id.
func (w *World) Rank(id int) (*Rank, error) {
	if id < 0 || id >= w.Size {
		return nil, fmt.Errorf("mpisim: rank %d out of range [0,%d)", id, w.Size)
	}
	return &Rank{W: w, ID: id}, nil
}

// Run spawns one goroutine per rank executing body and waits for all of
// them; the first error is returned.
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, w.Size)
	var wg sync.WaitGroup
	for i := 0; i < w.Size; i++ {
		r, err := w.Rank(i)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			errs[r.ID] = body(r)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Send delivers data to rank dst with tag (eager, buffered).
func (r *Rank) Send(dst, tag int, data []int64) error {
	if dst < 0 || dst >= r.W.Size {
		return fmt.Errorf("mpisim: send to invalid rank %d", dst)
	}
	cp := append([]int64(nil), data...)
	r.W.mail[dst] <- Message{Source: r.ID, Tag: tag, Data: cp}
	return nil
}

// Recv blocks until a message with the given tag arrives from src
// (src == -1 accepts any source). Mismatched messages are requeued.
func (r *Rank) Recv(src, tag int) (Message, error) {
	var stash []Message
	defer func() {
		for _, m := range stash {
			r.W.mail[r.ID] <- m
		}
	}()
	for i := 0; i < 1<<20; i++ {
		m := <-r.W.mail[r.ID]
		if (src == -1 || m.Source == src) && m.Tag == tag {
			return m, nil
		}
		stash = append(stash, m)
	}
	return Message{}, fmt.Errorf("mpisim: rank %d starved waiting for src=%d tag=%d", r.ID, src, tag)
}

// Barrier synchronizes all ranks.
func (r *Rank) Barrier() { r.W.barrier.wait() }

// Bcast distributes root's data to every rank; all ranks receive a copy.
func (r *Rank) Bcast(root int, data []int64) ([]int64, error) {
	if r.ID == root {
		for dst := 0; dst < r.W.Size; dst++ {
			if dst == root {
				continue
			}
			if err := r.Send(dst, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return append([]int64(nil), data...), nil
	}
	m, err := r.Recv(root, tagBcast)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Allreduce sums element-wise contributions across all ranks and returns
// the reduced vector on every rank.
func (r *Rank) Allreduce(data []int64) ([]int64, error) {
	// Gather to rank 0, reduce, broadcast back: semantically equivalent to
	// the tree algorithms whose cost the analytic model captures.
	const root = 0
	if r.ID != root {
		if err := r.Send(root, tagReduce, data); err != nil {
			return nil, err
		}
		m, err := r.Recv(root, tagBcast)
		if err != nil {
			return nil, err
		}
		return m.Data, nil
	}
	acc := append([]int64(nil), data...)
	for i := 1; i < r.W.Size; i++ {
		m, err := r.Recv(-1, tagReduce)
		if err != nil {
			return nil, err
		}
		if len(m.Data) != len(acc) {
			return nil, fmt.Errorf("mpisim: allreduce length mismatch %d != %d", len(m.Data), len(acc))
		}
		for j := range acc {
			acc[j] += m.Data[j]
		}
	}
	for dst := 1; dst < r.W.Size; dst++ {
		if err := r.Send(dst, tagBcast, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Gather collects every rank's vector on root (others get nil).
func (r *Rank) Gather(root int, data []int64) ([][]int64, error) {
	if r.ID != root {
		return nil, r.Send(root, tagGather, data)
	}
	out := make([][]int64, r.W.Size)
	out[root] = append([]int64(nil), data...)
	for i := 0; i < r.W.Size-1; i++ {
		m, err := r.Recv(-1, tagGather)
		if err != nil {
			return nil, err
		}
		out[m.Source] = m.Data
	}
	return out, nil
}

// Scatter distributes chunks[i] from root to rank i; every rank returns
// its own chunk. Only root reads chunks (others may pass nil), mirroring
// MPI_Scatter's root-significant send buffer.
func (r *Rank) Scatter(root int, chunks [][]int64) ([]int64, error) {
	if r.ID == root {
		if len(chunks) != r.W.Size {
			return nil, fmt.Errorf("mpisim: scatter wants %d chunks, got %d", r.W.Size, len(chunks))
		}
		for dst := 0; dst < r.W.Size; dst++ {
			if dst == root {
				continue
			}
			if err := r.Send(dst, tagScatter, chunks[dst]); err != nil {
				return nil, err
			}
		}
		return append([]int64(nil), chunks[root]...), nil
	}
	m, err := r.Recv(root, tagScatter)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Alltoall performs the complete exchange: rank r sends chunks[j] to rank
// j and returns the vector of chunks received, indexed by source rank.
func (r *Rank) Alltoall(chunks [][]int64) ([][]int64, error) {
	if len(chunks) != r.W.Size {
		return nil, fmt.Errorf("mpisim: alltoall wants %d chunks, got %d", r.W.Size, len(chunks))
	}
	for dst := 0; dst < r.W.Size; dst++ {
		if dst == r.ID {
			continue
		}
		if err := r.Send(dst, tagAlltoall, chunks[dst]); err != nil {
			return nil, err
		}
	}
	out := make([][]int64, r.W.Size)
	out[r.ID] = append([]int64(nil), chunks[r.ID]...)
	for i := 0; i < r.W.Size-1; i++ {
		m, err := r.Recv(-1, tagAlltoall)
		if err != nil {
			return nil, err
		}
		out[m.Source] = m.Data
	}
	return out, nil
}

const (
	tagBcast = -100 - iota
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
)

// CostModel is the analytical communication cost model: alpha latency
// (seconds), beta inverse bandwidth (seconds per element).
type CostModel struct {
	Alpha float64
	Beta  float64
}

// DefaultCost uses values representative of a commodity cluster
// interconnect: 1.5us latency, 8 bytes per element at 10 GB/s.
func DefaultCost() CostModel {
	return CostModel{Alpha: 1.5e-6, Beta: 8.0 / 10e9}
}

// P2P returns alpha + beta*m for an m-element point-to-point message.
func (c CostModel) P2P(m float64) float64 { return c.Alpha + c.Beta*m }

// Barrier returns alpha*ceil(log2 p) for a dissemination barrier.
func (c CostModel) Barrier(p float64) float64 {
	if p <= 1 {
		return 0
	}
	return c.Alpha * math.Ceil(math.Log2(p))
}

// Bcast returns (alpha + beta*m)*ceil(log2 p) for a binomial-tree
// broadcast (Thakur et al.).
func (c CostModel) Bcast(p, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return (c.Alpha + c.Beta*m) * math.Ceil(math.Log2(p))
}

// Allreduce returns 2*(alpha + beta*m)*ceil(log2 p), the
// reduce-then-broadcast tree bound.
func (c CostModel) Allreduce(p, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return 2 * (c.Alpha + c.Beta*m) * math.Ceil(math.Log2(p))
}

// Gather returns alpha*log2(p) + beta*m*(p-1), linear in p for the data
// term (the root receives p-1 messages).
func (c CostModel) Gather(p, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return c.Alpha*math.Ceil(math.Log2(p)) + c.Beta*m*(p-1)
}

// Scatter returns alpha*log2(p) + beta*m*(p-1): the root pushes p-1
// chunks, with a binomial-tree latency term — the mirror image of Gather.
func (c CostModel) Scatter(p, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return c.Alpha*math.Ceil(math.Log2(p)) + c.Beta*m*(p-1)
}

// Alltoall returns (p-1)*(alpha + beta*m) for the pairwise complete
// exchange: every rank trades an m-element chunk with each peer.
func (c CostModel) Alltoall(p, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return (p - 1) * (c.Alpha + c.Beta*m)
}
