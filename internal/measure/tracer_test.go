package measure

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// buildCallTree creates main -> helper (3x) with per-call work, to exercise
// visit and path accounting.
func buildCallTree() *ir.Module {
	mod := ir.NewModule("tracer")

	h := ir.NewFunc(mod, "helper", 1)
	h.Work(h.Param(0))
	h.Ret(h.Param(0))
	h.Finish()

	b := ir.NewFunc(mod, "main", 1)
	b.ForConst(0, 3, func(i ir.Reg) {
		b.Call("helper", i)
	})
	b.Ret(b.Param(0))
	b.Finish()
	return mod
}

func runTraced(t *testing.T, mode interp.Mode) *CallTracer {
	t.Helper()
	tr := NewCallTracer()
	mach := interp.NewMachine(buildCallTree())
	mach.Mode = mode
	mach.Tracer = tr
	if _, err := mach.Run("main", []interp.Value{7}, nil); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCallTracerCountsVisitsAndWork(t *testing.T) {
	for _, mode := range []interp.Mode{interp.ModeFast, interp.ModeReference} {
		tr := runTraced(t, mode)
		if tr.Visits["main"] != 1 || tr.Visits["helper"] != 3 {
			t.Errorf("mode %d: visits = %v", mode, tr.Visits)
		}
		if tr.PathVisits["main/helper"] != 3 {
			t.Errorf("mode %d: path visits = %v", mode, tr.PathVisits)
		}
		if tr.WorkUnits["helper"] != 0+1+2 {
			t.Errorf("mode %d: work = %v", mode, tr.WorkUnits)
		}
		if got := tr.Events(map[string]bool{"helper": true}); got != 6 {
			t.Errorf("mode %d: events(helper) = %d, want 6", mode, got)
		}
		if got := tr.Events(nil); got != 8 {
			t.Errorf("mode %d: events(all) = %d, want 8", mode, got)
		}
	}
}

// TestCallTracerModeAgnostic asserts the fast engine produces the identical
// tracer-visible profile as the reference interpreter.
func TestCallTracerModeAgnostic(t *testing.T) {
	fast := runTraced(t, interp.ModeFast)
	ref := runTraced(t, interp.ModeReference)
	if !reflect.DeepEqual(fast.Visits, ref.Visits) ||
		!reflect.DeepEqual(fast.PathVisits, ref.PathVisits) ||
		!reflect.DeepEqual(fast.WorkUnits, ref.WorkUnits) {
		t.Errorf("tracer profiles diverged:\nfast: %v %v %v\nref:  %v %v %v",
			fast.Visits, fast.PathVisits, fast.WorkUnits,
			ref.Visits, ref.PathVisits, ref.WorkUnits)
	}
}
