package measure

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
)

func TestSelectPolicies(t *testing.T) {
	spec := apps.LULESH()
	relevant := map[string]bool{"CalcQForElems": true, "CommSBN": true}

	none := Select(spec, FilterNone, nil)
	if len(none) != 0 {
		t.Fatalf("FilterNone selected %d functions", len(none))
	}
	full := Select(spec, FilterFull, nil)
	if len(full) != len(spec.Funcs) {
		t.Fatalf("FilterFull = %d, want %d", len(full), len(spec.Funcs))
	}
	def := Select(spec, FilterDefault, nil)
	if len(def) >= len(full) {
		t.Fatal("default filter must skip inline candidates")
	}
	// The default filter must miss CalcQForElems (the B2 false negative).
	if def["CalcQForElems"] {
		t.Fatal("default filter should skip CalcQForElems")
	}
	taint := Select(spec, FilterTaint, relevant)
	if len(taint) != 3 { // 2 relevant + main
		t.Fatalf("taint filter = %d functions, want 3", len(taint))
	}
	if !taint["main"] {
		t.Fatal("taint filter must include main")
	}
}

func TestFilterString(t *testing.T) {
	for f, want := range map[Filter]string{
		FilterNone: "none", FilterFull: "full", FilterDefault: "default", FilterTaint: "taint",
	} {
		if f.String() != want {
			t.Fatalf("Filter(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestMeasureOverheadOrdering(t *testing.T) {
	spec := apps.LULESH()
	runner := cluster.NewRunner(spec)
	cfg := apps.LULESHDefaults()
	cfg["p"] = 27
	cfg["size"] = 30
	relevant := map[string]bool{"CalcQForElems": true}

	var rel = map[Filter]float64{}
	for _, f := range []Filter{FilterTaint, FilterDefault, FilterFull} {
		o, err := MeasureOverhead(runner, cfg, f, relevant)
		if err != nil {
			t.Fatal(err)
		}
		rel[f] = o.RelativePct
	}
	if !(rel[FilterTaint] < rel[FilterDefault] && rel[FilterDefault] < rel[FilterFull]) {
		t.Fatalf("overhead ordering violated: %v", rel)
	}
}

func TestCampaignDatasets(t *testing.T) {
	spec := apps.LULESH()
	runner := cluster.NewRunner(spec)
	defaults := apps.LULESHDefaults()
	defaults["iters"] = 50
	sweep := CrossSweep(defaults, "p", []float64{27, 64}, "size", []float64{25, 30})

	camp := &Campaign{
		Runner:      runner,
		Sweep:       sweep,
		Reps:        3,
		Filter:      FilterFull,
		Seed:        5,
		RelNoise:    0.02,
		ModelParams: []string{"p", "size"},
	}
	ds, err := camp.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	d := ds["CalcForceForNodes"]
	if d == nil {
		t.Fatal("kernel dataset missing")
	}
	if len(d.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(d.Points))
	}
	if len(d.Points[0].Values) != 3 {
		t.Fatalf("repeats = %d, want 3", len(d.Points[0].Values))
	}
	app := ds[""]
	if app == nil || len(app.Points) != 4 {
		t.Fatal("application dataset missing")
	}
	if _, ok := ds["MPI_Allreduce"]; !ok {
		t.Fatal("MPI dataset missing")
	}
}

func TestCrossSweepSize(t *testing.T) {
	defaults := apps.Config{"x": 1}
	sweep := CrossSweep(defaults, "p", []float64{1, 2, 3}, "s", []float64{4, 5})
	if len(sweep) != 6 {
		t.Fatalf("sweep = %d configs, want 6", len(sweep))
	}
	// Defaults must not be mutated.
	if _, ok := defaults["p"]; ok {
		t.Fatal("defaults mutated")
	}
}

func TestSortedFuncsDeterministic(t *testing.T) {
	spec := apps.LULESH()
	runner := cluster.NewRunner(spec)
	defaults := apps.LULESHDefaults()
	defaults["iters"] = 20
	sweep := CrossSweep(defaults, "p", []float64{27}, "size", []float64{25})
	camp := &Campaign{Runner: runner, Sweep: sweep, Reps: 1, Filter: FilterFull, ModelParams: []string{"p", "size"}}
	ds, err := camp.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	names := SortedFuncs(ds)
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("not sorted")
		}
	}
}
