// Package measure implements the Score-P analog: instrumentation filter
// policies (full, the default compiler-inline heuristic, and the
// taint-based selective filter of Section A3) and helpers to turn cluster
// profiles into Extra-P datasets.
package measure

import (
	"sort"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/extrap"
	"repro/internal/noise"
)

// Filter selects the instrumented function set.
type Filter int

// Filter policies of the evaluation (Figures 3 and 4).
const (
	// FilterNone instruments nothing: the native-run baseline.
	FilterNone Filter = iota
	// FilterFull instruments every function, the conservative choice
	// empirical modeling otherwise requires.
	FilterFull
	// FilterDefault mirrors Score-P's default: skip functions the compiler
	// estimates it will inline. Cheap, but misses performance-relevant
	// kernels (false negatives) while keeping constant-runtime helpers.
	FilterDefault
	// FilterTaint instruments only functions the taint analysis proved
	// parameter-dependent (plus main), the Perf-Taint policy.
	FilterTaint
)

// String names the filter.
func (f Filter) String() string {
	switch f {
	case FilterNone:
		return "none"
	case FilterFull:
		return "full"
	case FilterDefault:
		return "default"
	case FilterTaint:
		return "taint"
	default:
		return "unknown"
	}
}

// Select computes the instrumented set for a policy. relevant is the
// taint-derived set of parameter-dependent functions (required for
// FilterTaint, ignored otherwise).
func Select(spec *apps.Spec, f Filter, relevant map[string]bool) map[string]bool {
	out := make(map[string]bool)
	switch f {
	case FilterNone:
	case FilterFull:
		for _, fn := range spec.Funcs {
			out[fn.Name] = true
		}
	case FilterDefault:
		for _, fn := range spec.Funcs {
			if !fn.InlineEstimate {
				out[fn.Name] = true
			}
		}
	case FilterTaint:
		for _, fn := range spec.Funcs {
			if relevant[fn.Name] || fn.Kind == apps.KindMain {
				out[fn.Name] = true
			}
		}
	}
	return out
}

// Overhead quantifies one configuration under one filter.
type Overhead struct {
	Cfg             apps.Config
	Filter          Filter
	BaseSeconds     float64
	OverheadSeconds float64
	// RelativePct is 100 * overhead / base.
	RelativePct  float64
	Instrumented int
}

// MeasureOverhead computes the instrumentation overhead of filter at cfg.
func MeasureOverhead(r *cluster.Runner, cfg apps.Config, f Filter, relevant map[string]bool) (*Overhead, error) {
	set := Select(r.Spec, f, relevant)
	prof, err := r.Measure(cfg, set, 1, noise.Quiet())
	if err != nil {
		return nil, err
	}
	o := &Overhead{
		Cfg:             cfg.Clone(),
		Filter:          f,
		BaseSeconds:     prof.BaseSeconds,
		OverheadSeconds: prof.OverheadSeconds,
		Instrumented:    len(set),
	}
	if prof.BaseSeconds > 0 {
		o.RelativePct = 100 * prof.OverheadSeconds / prof.BaseSeconds
	}
	return o, nil
}

// Campaign runs a full modeling experiment: all parameter configurations,
// repeated measurements, one dataset per function.
type Campaign struct {
	Runner *cluster.Runner
	// Sweep lists the configurations to measure.
	Sweep []apps.Config
	// Reps is the number of repetitions per configuration (5 in the paper).
	Reps int
	// Filter chooses the instrumentation policy; Relevant feeds FilterTaint.
	Filter   Filter
	Relevant map[string]bool
	// Noise parameters for the synthetic measurements.
	Seed         int64
	RelNoise     float64
	FloorSeconds float64
	// ModelParams are the swept parameter names datasets are built over.
	ModelParams []string
}

// Datasets runs the campaign and returns a per-function dataset plus the
// application-total dataset under key "". Functions that never execute are
// omitted.
func (c *Campaign) Datasets() (map[string]*extrap.Dataset, error) {
	set := Select(c.Runner.Spec, c.Filter, c.Relevant)
	src := noise.New(c.Seed, c.RelNoise, c.FloorSeconds)
	out := make(map[string]*extrap.Dataset)
	reps := c.Reps
	if reps <= 0 {
		reps = 5
	}
	for _, cfg := range c.Sweep {
		prof, err := c.Runner.Measure(cfg, set, reps, src)
		if err != nil {
			return nil, err
		}
		pv := make(map[string]float64, len(c.ModelParams))
		for _, p := range c.ModelParams {
			pv[p] = cfg[p]
		}
		for fn, vals := range prof.FuncSeconds {
			if instrumentedOnly(c.Filter) && !set[fn] && !isMPI(c.Runner.Spec, fn) {
				continue
			}
			d := out[fn]
			if d == nil {
				d = extrap.NewDataset(c.ModelParams...)
				out[fn] = d
			}
			d.Add(pv, vals...)
		}
		appd := out[""]
		if appd == nil {
			appd = extrap.NewDataset(c.ModelParams...)
			out[""] = appd
		}
		appd.Add(pv, prof.AppSeconds...)
	}
	return out, nil
}

func instrumentedOnly(f Filter) bool { return f != FilterNone }

func isMPI(s *apps.Spec, name string) bool {
	for _, m := range s.MPIUsed {
		if m == name {
			return true
		}
	}
	return false
}

// CrossSweep builds the full-factorial configuration list over two
// parameters with the remaining parameters fixed at defaults.
func CrossSweep(defaults apps.Config, pName string, ps []float64, sName string, ss []float64) []apps.Config {
	var out []apps.Config
	for _, p := range ps {
		for _, s := range ss {
			cfg := defaults.Clone()
			cfg[pName] = p
			cfg[sName] = s
			out = append(out, cfg)
		}
	}
	return out
}

// SortedFuncs returns the dataset keys in deterministic order.
func SortedFuncs(ds map[string]*extrap.Dataset) []string {
	out := make([]string, 0, len(ds))
	for k := range ds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
