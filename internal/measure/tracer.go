package measure

import (
	"sort"

	"repro/internal/interp"
)

// CallTracer is the measurement-facing interp.Tracer: it accumulates the
// per-function visit counts and abstract work volumes an instrumented run
// would observe (Score-P's "visits" metric), plus per-call-path visits for
// calling-context profiles. The interned call paths of the fast engine
// render each distinct path string exactly once, so attaching a CallTracer
// costs two map updates per call event and nothing per instruction.
type CallTracer struct {
	// Visits counts function entries by function name.
	Visits map[string]int64
	// PathVisits counts function entries by full call path.
	PathVisits map[string]int64
	// WorkUnits accumulates abstract work per function.
	WorkUnits map[string]int64
}

var _ interp.Tracer = (*CallTracer)(nil)

// NewCallTracer returns an empty tracer.
func NewCallTracer() *CallTracer {
	return &CallTracer{
		Visits:     make(map[string]int64),
		PathVisits: make(map[string]int64),
		WorkUnits:  make(map[string]int64),
	}
}

// Enter records one visit of fn under callPath.
func (t *CallTracer) Enter(fn, callPath string) {
	t.Visits[fn]++
	t.PathVisits[callPath]++
}

// Exit is a no-op; visits are counted on entry.
func (t *CallTracer) Exit(fn, callPath string) {}

// Work accumulates abstract work units against fn.
func (t *CallTracer) Work(fn string, units int64) { t.WorkUnits[fn] += units }

// Events returns the total number of instrumentation events (enter+exit
// pairs) a run with the given instrumented set would generate — the
// quantity the intrusion model charges for.
func (t *CallTracer) Events(instrumented map[string]bool) int64 {
	var n int64
	for fn, v := range t.Visits {
		if instrumented == nil || instrumented[fn] {
			n += 2 * v
		}
	}
	return n
}

// SortedPaths returns the observed call paths in deterministic order.
func (t *CallTracer) SortedPaths() []string {
	out := make([]string, 0, len(t.PathVisits))
	for p := range t.PathVisits {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
