package apps

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ir"
)

// paramGlobal names the module global cell holding parameter name.
func paramGlobal(name string) string { return "param_" + name }

// rtcGlobal names the runtime-constants global region.
const rtcGlobal = "rtconsts"

// BuildModule lowers the spec to an ir.Module. Marked parameters arrive as
// formals of main and are stored into module globals from which every
// function reads them (taint flows through shadow memory); the implicit
// parameter p is obtained through MPI_Comm_size into its own global, so the
// library database taints it. Runtime-constant loop bounds are stored by
// main into an opaque region that defeats the static analysis but carries
// no taint.
func BuildModule(s *Spec) (*ir.Module, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := ir.NewModule(s.Name)
	for _, p := range s.Params {
		m.AddGlobal(paramGlobal(p), 1)
	}
	m.AddGlobal(paramGlobal("p"), 1)

	// Collect runtime constants across all bodies; each gets one cell.
	rtc := collectRuntimeConsts(s)
	if len(rtc) > 0 {
		m.AddGlobal(rtcGlobal, int64(len(rtc)))
	}
	rtcIndex := make(map[float64]int64, len(rtc))
	for i, v := range rtc {
		rtcIndex[v] = int64(i)
	}

	g := &generator{spec: s, mod: m, rtcIndex: rtcIndex}

	// Non-main functions first (bodies may call each other in any order;
	// calls are by name so emission order is irrelevant).
	for _, f := range s.Funcs[1:] {
		if err := g.emitFunc(f, nil); err != nil {
			return nil, err
		}
	}
	if err := g.emitFunc(s.Main(), func(b *ir.Builder) {
		// Prologue: store marked parameters, obtain p, seed runtime consts.
		for i, p := range s.Params {
			addr := b.GlobalAddr(paramGlobal(p))
			b.Store(addr, 0, b.Param(i))
		}
		comm := b.Const(0)
		pAddr := b.GlobalAddr(paramGlobal("p"))
		b.Call("MPI_Comm_size", comm, pAddr)
		if len(rtc) > 0 {
			base := b.GlobalAddr(rtcGlobal)
			for _, v := range rtc {
				b.Store(base, rtcIndex[v], b.Const(int64(math.Round(v))))
			}
		}
	}); err != nil {
		return nil, err
	}
	return m, nil
}

func collectRuntimeConsts(s *Spec) []float64 {
	set := make(map[float64]bool)
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			if l, ok := st.(Loop); ok {
				if l.Kind == RuntimeConst {
					set[l.Bound.Coeff] = true
				}
				walk(l.Body)
			}
		}
	}
	for _, f := range s.Funcs {
		walk(f.Body)
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

type generator struct {
	spec     *Spec
	mod      *ir.Module
	rtcIndex map[float64]int64
}

func (g *generator) emitFunc(f *FuncSpec, prologue func(b *ir.Builder)) error {
	numParams := 0
	if f.Kind == KindMain {
		numParams = len(g.spec.Params)
	}
	b := ir.NewFunc(g.mod, f.Name, numParams)
	if prologue != nil {
		prologue(b)
	}
	if err := g.emitBody(b, f.Body); err != nil {
		return fmt.Errorf("apps: emit %s: %w", f.Name, err)
	}
	if f.Kind == KindGetter {
		// Getters return a value like a C++ accessor.
		if b.CurBlock() != nil {
			b.Ret(b.Const(1))
		}
	}
	fn := b.Finish()
	fn.SetAttr("kind", f.Kind.String())
	return nil
}

// paramReg loads parameter name from its global cell.
func (g *generator) paramReg(b *ir.Builder, name string) ir.Reg {
	addr := b.GlobalAddr(paramGlobal(name))
	return b.Load(addr, 0)
}

// emitQuantity lowers a Quantity to integer arithmetic: round(coeff) *
// prod(params^pow), with negative powers dividing. A non-positive rounded
// coefficient becomes 1 so bounds stay executable. All multiplications are
// applied before any division so a bound like size^3/regions accumulates
// the full numerator first — dividing first would floor 1/regions to 0 and
// the loop would dynamically execute 0 iterations.
func (g *generator) emitQuantity(b *ir.Builder, q Quantity) ir.Reg {
	c := int64(math.Round(q.Coeff))
	if c < 1 {
		c = 1
	}
	acc := b.Const(c)
	names := make([]string, 0, len(q.Pow))
	for n := range q.Pow {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if pow := q.Pow[n]; pow > 0 {
			p := g.paramReg(b, n)
			for k := 0; k < pow; k++ {
				acc = b.Mul(acc, p)
			}
		}
	}
	for _, n := range names {
		if pow := q.Pow[n]; pow < 0 {
			p := g.paramReg(b, n)
			for k := 0; k > pow; k-- {
				acc = b.Div(acc, p)
			}
		}
	}
	return acc
}

func (g *generator) emitBody(b *ir.Builder, body []Stmt) error {
	for _, st := range body {
		switch v := st.(type) {
		case Work:
			u := int64(math.Round(v.Units))
			if u < 1 {
				u = 1
			}
			b.Work(b.Const(u))
		case Loop:
			var bound ir.Reg
			switch v.Kind {
			case StaticConst:
				bound = b.Const(int64(math.Round(v.Bound.Coeff)))
			case RuntimeConst:
				base := b.GlobalAddr(rtcGlobal)
				bound = b.Load(base, g.rtcIndex[v.Bound.Coeff])
			case ParamBound:
				bound = g.emitQuantity(b, v.Bound)
			default:
				return fmt.Errorf("unknown bound kind %d", v.Kind)
			}
			var innerErr error
			b.For(b.Const(0), bound, b.Const(1), func(i ir.Reg) {
				innerErr = g.emitBody(b, v.Body)
			})
			if innerErr != nil {
				return innerErr
			}
		case Branch:
			p := g.paramReg(b, v.Param)
			cond := b.CmpLT(p, b.Const(int64(math.Round(v.Less))))
			var thenErr, elseErr error
			var elseFn func()
			if len(v.Else) > 0 {
				elseFn = func() { elseErr = g.emitBody(b, v.Else) }
			}
			b.If(cond, func() { thenErr = g.emitBody(b, v.Then) }, elseFn)
			if thenErr != nil {
				return thenErr
			}
			if elseErr != nil {
				return elseErr
			}
		case Call:
			if err := g.emitCall(b, v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown stmt %T", st)
		}
	}
	return nil
}

func (g *generator) emitCall(b *ir.Builder, c Call) error {
	if g.spec.FuncByName(c.Callee) != nil {
		b.Call(c.Callee)
		return nil
	}
	// MPI routine: synthesize the argument list per convention.
	var count ir.Reg
	if c.CountArg != nil {
		count = g.emitQuantity(b, *c.CountArg)
	} else {
		count = b.Const(1)
	}
	switch c.Callee {
	case "MPI_Comm_size", "MPI_Comm_rank":
		cell := b.Alloc(b.Const(1))
		b.Call(c.Callee, b.Const(0), cell)
	case "MPI_Allreduce", "MPI_Reduce":
		send := b.Alloc(count)
		recv := b.Alloc(count)
		b.Store(send, 0, b.Const(1))
		b.Call(c.Callee, send, recv, count)
	case "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Bcast",
		"MPI_Gather", "MPI_Allgather", "MPI_Scatter", "MPI_Alltoall":
		buf := b.Alloc(count)
		b.Call(c.Callee, buf, count)
	case "MPI_Barrier", "MPI_Wait", "MPI_Waitall":
		b.Call(c.Callee)
	default:
		return fmt.Errorf("unsupported MPI routine %q", c.Callee)
	}
	return nil
}

// TaintArgs assembles the main() argument vector for a configuration in
// spec parameter order.
func TaintArgs(s *Spec, cfg Config) []int64 {
	out := make([]int64, len(s.Params))
	for i, p := range s.Params {
		out[i] = int64(math.Round(cfg[p]))
	}
	return out
}
