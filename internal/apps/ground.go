package apps

import (
	"fmt"
	"math"

	"repro/internal/mpisim"
)

// Ground is the analytic ground truth of one application configuration:
// how often each function runs and how much exclusive compute and
// communication time it accounts for. The cluster substrate layers
// contention, noise, and instrumentation intrusion on top of it.
type Ground struct {
	Spec *Spec
	Cfg  Config

	// Calls counts invocations per function, including MPI routine names.
	Calls map[string]float64
	// ExclSeconds is per-function exclusive compute time (no callees).
	ExclSeconds map[string]float64
	// CommSeconds is analytic communication time attributed to each MPI
	// routine name.
	CommSeconds map[string]float64
	// InclSeconds is inclusive time per function (callees and their
	// communication included).
	InclSeconds map[string]float64
	// CommByCaller is communication time attributed to the spec function
	// issuing the MPI calls.
	CommByCaller map[string]float64
	// CallsFrom[caller][callee] counts direct call-edge executions,
	// including edges into MPI routines.
	CallsFrom map[string]map[string]float64
}

// perInv captures per-invocation quantities of one function.
type perInv struct {
	excl  float64
	comm  float64 // communication triggered directly (attributed to MPI fns)
	calls map[string]float64
	incl  float64
}

// Evaluate computes the ground truth of spec under cfg with the given
// communication cost model. cfg must define every spec parameter and "p".
func Evaluate(s *Spec, cfg Config, cost mpisim.CostModel) (*Ground, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, p := range s.Params {
		if _, ok := cfg[p]; !ok {
			return nil, fmt.Errorf("apps: config missing parameter %q", p)
		}
	}
	if _, ok := cfg["p"]; !ok {
		return nil, fmt.Errorf("apps: config missing implicit parameter p")
	}
	p := cfg["p"]

	mpi := make(map[string]bool, len(s.MPIUsed))
	for _, mname := range s.MPIUsed {
		mpi[mname] = true
	}

	// Per-invocation pass, memoized; specs are non-recursive by validation.
	memo := make(map[string]*perInv, len(s.Funcs))
	commPer := make(map[string]map[string]float64) // fn -> mpi name -> secs/inv
	var eval func(f *FuncSpec) (*perInv, error)
	var walk func(f *FuncSpec, body []Stmt, mult float64, pi *perInv) error
	walk = func(f *FuncSpec, body []Stmt, mult float64, pi *perInv) error {
		for _, st := range body {
			switch v := st.(type) {
			case Work:
				pi.excl += mult * v.Units * f.WorkNanos * 1e-9
			case Loop:
				n := v.Bound.Coeff
				if v.Kind == ParamBound {
					n = v.Bound.Eval(map[string]float64(cfg))
				}
				if n < 0 {
					n = 0
				}
				if err := walk(f, v.Body, mult*n, pi); err != nil {
					return err
				}
			case Branch:
				body := v.Else
				if cfg[v.Param] < v.Less {
					body = v.Then
				}
				if err := walk(f, body, mult, pi); err != nil {
					return err
				}
			case Call:
				pi.calls[v.Callee] += mult
				if mpi[v.Callee] {
					count := 1.0
					if v.CountArg != nil {
						count = v.CountArg.Eval(map[string]float64(cfg))
					}
					c := commCost(cost, v.Callee, p, count)
					pi.comm += mult * c
					if commPer[f.Name] == nil {
						commPer[f.Name] = make(map[string]float64)
					}
					commPer[f.Name][v.Callee] += mult * c
				}
			}
		}
		return nil
	}
	eval = func(f *FuncSpec) (*perInv, error) {
		if pi, ok := memo[f.Name]; ok {
			return pi, nil
		}
		pi := &perInv{calls: make(map[string]float64)}
		if err := walk(f, f.Body, 1, pi); err != nil {
			return nil, err
		}
		// Hardware scaling of compute time (e.g. surface effects in p).
		if f.HWFactorPExp != 0 {
			pi.excl *= math.Pow(p, f.HWFactorPExp)
		}
		// Inclusive time: own compute + own comm + callees' inclusive.
		pi.incl = pi.excl + pi.comm
		for callee, n := range pi.calls {
			if mpi[callee] {
				continue // already accounted via comm
			}
			sub, err := eval(s.FuncByName(callee))
			if err != nil {
				return nil, err
			}
			pi.incl += n * sub.incl
		}
		memo[f.Name] = pi
		return pi, nil
	}
	if _, err := eval(s.Main()); err != nil {
		return nil, err
	}

	// Aggregate totals top-down from main (one invocation).
	g := &Ground{
		Spec:         s,
		Cfg:          cfg.Clone(),
		Calls:        make(map[string]float64),
		ExclSeconds:  make(map[string]float64),
		CommSeconds:  make(map[string]float64),
		InclSeconds:  make(map[string]float64),
		CommByCaller: make(map[string]float64),
		CallsFrom:    make(map[string]map[string]float64),
	}
	// Exact propagation by recursion with multiplicity; specs are
	// non-recursive so the walk terminates.
	var acc func(name string, n float64)
	acc = func(name string, n float64) {
		g.Calls[name] += n
		pi := memo[name]
		if pi == nil {
			return
		}
		g.ExclSeconds[name] += n * pi.excl
		g.InclSeconds[name] += n * pi.incl
		for callee, per := range pi.calls {
			if g.CallsFrom[name] == nil {
				g.CallsFrom[name] = make(map[string]float64)
			}
			g.CallsFrom[name][callee] += n * per
			if mpi[callee] {
				g.Calls[callee] += n * per
				continue
			}
			acc(callee, n*per)
		}
		for mname, secs := range commPer[name] {
			g.CommSeconds[mname] += n * secs
			g.CommByCaller[name] += n * secs
		}
	}
	acc(s.Main().Name, 1)
	return g, nil
}

// commCost maps an MPI routine to its analytic cost for one call.
func commCost(cost mpisim.CostModel, name string, p, count float64) float64 {
	switch name {
	case "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv":
		return cost.P2P(count)
	case "MPI_Barrier":
		return cost.Barrier(p)
	case "MPI_Bcast":
		return cost.Bcast(p, count)
	case "MPI_Reduce", "MPI_Allreduce":
		return cost.Allreduce(p, count)
	case "MPI_Gather", "MPI_Allgather":
		return cost.Gather(p, count)
	case "MPI_Scatter":
		return cost.Scatter(p, count)
	case "MPI_Alltoall":
		return cost.Alltoall(p, count)
	default:
		return 0
	}
}

// TotalSeconds is the application runtime: main's inclusive time.
func (g *Ground) TotalSeconds() float64 {
	return g.InclSeconds[g.Spec.Main().Name]
}
