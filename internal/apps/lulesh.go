package apps

import "fmt"

// LULESH reproduces the structural census of the LULESH 2.0 proxy app as
// the paper reports it (Table 2): 356 functions of which 296 prune
// statically, 11 prune dynamically, 40 computational kernels, 2
// communication wrappers, and 7 distinct MPI routines; 275 natural loops of
// which 52 have statically constant trip counts. Parameters follow Table 3:
// size, p (implicit), regions, balance, cost, iters.
//
// The physics is replaced by abstract work whose per-element cost is tuned
// so the simulated runtimes land in the paper's regime (~130 s at size=30,
// p=64, 500 timesteps); all pruning/coverage experiments depend only on the
// structure.
func LULESH() *Spec {
	s := &Spec{
		Name:   "lulesh",
		Params: []string{"size", "regions", "balance", "cost", "iters"},
		MPIUsed: []string{
			"MPI_Comm_size", "MPI_Comm_rank", "MPI_Isend", "MPI_Irecv",
			"MPI_Waitall", "MPI_Allreduce", "MPI_Barrier",
		},
	}

	elems := QP(1, "size", 3) // per-rank element count size^3

	// 249 getters (C++ accessors: Domain::x, Domain::nodalMass, ...).
	const numGetters = 249
	getter := func(i int) string { return fmt.Sprintf("Domain_get%03d", i) }
	for i := 0; i < numGetters; i++ {
		s.Funcs = append(s.Funcs, &FuncSpec{
			Name:      getter(i),
			Kind:      KindGetter,
			Body:      []Stmt{Work{Units: 2}},
			WorkNanos: 2.5,
			// The compiler inline heuristic catches most — not all — of
			// the accessors, so the default filter retains a residue of
			// hot getters (the moderate middle panel of Figure 3).
			InlineEstimate: i%100 != 0,
		})
	}
	// Getter assignment: kernels cycle through the pool so every getter is
	// reachable from main.
	nextGetter := 0
	takeGetters := func(n int) []Stmt {
		var out []Stmt
		for k := 0; k < n; k++ {
			out = append(out, Call{Callee: getter(nextGetter % numGetters)})
			nextGetter++
		}
		return out
	}

	// 46 helper functions with 52 statically constant loops (40 with one
	// loop, 6 with two): corner/face tables, fixed-size initialization.
	for i := 0; i < 46; i++ {
		body := []Stmt{Loop{Kind: StaticConst, Bound: Q(8), Body: []Stmt{Work{Units: 4}}}}
		if i < 6 {
			body = append(body, Loop{Kind: StaticConst, Bound: Q(6), Body: []Stmt{Work{Units: 2}}})
		}
		s.Funcs = append(s.Funcs, &FuncSpec{
			Name:      fmt.Sprintf("InitHelper%02d", i),
			Kind:      KindHelper,
			Body:      body,
			WorkNanos: 3,
		})
	}

	// 11 dynamically pruned functions: loops bounded by runtime constants
	// (material tables, MPI buffer sizing read from the input deck) that the
	// static pass cannot resolve and the taint run proves parameter-free.
	for i := 0; i < 11; i++ {
		var body []Stmt
		for l := 0; l < 8; l++ {
			body = append(body, Loop{Kind: RuntimeConst, Bound: Q(float64(12 + i)), Body: []Stmt{Work{Units: 3}}})
		}
		s.Funcs = append(s.Funcs, &FuncSpec{
			Name:      fmt.Sprintf("TableSetup%02d", i),
			Kind:      KindHelper,
			Body:      body,
			WorkNanos: 3,
		})
	}

	// Two communication wrappers: boundary exchange over p-dependent
	// neighbor loops with size^2-dependent message counts.
	surface := QP(1, "size", 2)
	commBody := func() []Stmt {
		return []Stmt{
			Loop{Kind: ParamBound, Bound: QP(1, "p", 1), Body: []Stmt{
				Call{Callee: "MPI_Isend", CountArg: &surface},
				Call{Callee: "MPI_Irecv", CountArg: &surface},
			}},
			Call{Callee: "MPI_Waitall"},
			Loop{Kind: RuntimeConst, Bound: Q(26), Body: []Stmt{Work{Units: 6}}},
		}
	}
	s.Funcs = append(s.Funcs,
		&FuncSpec{Name: "CommSBN", Kind: KindComm, Body: commBody(), WorkNanos: 4, MemIntensity: 0.2},
		&FuncSpec{Name: "CommSyncPosVel", Kind: KindComm, Body: commBody(), WorkNanos: 4, MemIntensity: 0.2},
	)

	// 40 computational kernels. Naming follows LULESH; K24 is CalcQForElems
	// (the B2 case study: its compute carries a hardware p^0.25 surface
	// factor and it triggers the monoQ boundary exchange).
	kernelNames := []string{
		"CalcForceForNodes", "CalcAccelerationForNodes", "ApplyAccelerationBoundaryConditions",
		"CalcVelocityForNodes", "CalcPositionForNodes", "IntegrateStressForElems",
		"CalcHourglassControlForElems", "CalcFBHourglassForceForElems", "CalcKinematicsForElems",
		"CalcLagrangeElements", "CalcMonotonicQGradientsForElems", "CalcMonotonicQRegionForElems",
		"ApplyMaterialPropertiesForElems", "EvalEOSForElems", "CalcEnergyForElems",
		"CalcPressureForElems", "CalcSoundSpeedForElems", "UpdateVolumesForElems",
		"CalcCourantConstraintForElems", "CalcHydroConstraintForElems", "CalcTimeConstraintsForElems",
		"LagrangeNodal", "LagrangeElements", "CalcQForElems",
		"InitStressTermsForElems", "CollectDomainNodesToElemNodes", "SumElemFaceNormal",
		"CalcElemShapeFunctionDerivatives", "CalcElemNodeNormals", "SumElemStressesToNodeForces",
		"VoluDer", "CalcElemVolumeDerivative", "CalcElemFBHourglassForce",
		"AreaFace", "CalcElemCharacteristicLength", "CalcElemVelocityGradient",
		"UpdatePos", "ApplySymmetryBC", "ReduceMinDt", "TimeIncrement",
	}
	if len(kernelNames) != 40 {
		panic("lulesh: kernel census broken")
	}
	for idx, name := range kernelNames {
		f := &FuncSpec{
			Name:         name,
			Kind:         KindKernel,
			WorkNanos:    1.0,
			MemIntensity: 0.4 + 0.5*float64(idx%5)/4, // 0.4 .. 0.9
			// The compiler heuristic judges roughly half the kernels
			// inlineable — including CalcQForElems (idx 23), giving the
			// false negative of Section B2.
			InlineEstimate: idx%2 == 1,
		}
		// Per-kernel element work; heavier hourglass/EOS kernels get more.
		units := 40.0 + float64((idx*13)%60)
		elemBody := append(takeGetters(3), Work{Units: units})

		bound1, bound2 := elems, elems
		switch {
		case idx < 12: // 12 region kernels: both loops over size^3/regions
			bound1 = elems.Times("regions", -1)
			bound2 = bound1
		case idx == 12: // 13th region kernel: extra regions-only loop
			bound1 = elems.Times("regions", -1)
			bound2 = bound1
			f.Body = append(f.Body, Loop{Kind: ParamBound, Bound: QP(1, "regions", 1),
				Body: []Stmt{Work{Units: 8}}})
		case idx >= 13 && idx < 22: // 9 balance kernels
			bound1 = elems.Times("balance", -1)
			bound2 = bound1
			if idx < 15 { // 2 balance-only loops
				f.Body = append(f.Body, Loop{Kind: ParamBound, Bound: QP(1, "balance", 1),
					Body: []Stmt{Work{Units: 4}}})
			}
		case idx == 22: // cost kernel 1: cost scales a size loop
			bound1 = elems.Times("cost", 1)
		case idx == 23: // CalcQForElems: B2 case study
			f.HWFactorPExp = 0.25
			f.MemIntensity = 0.85
		case idx >= 24 && idx < 27: // 3 iters kernels (substep loops)
			f.Body = append(f.Body, Loop{Kind: ParamBound, Bound: QP(1, "iters", 1),
				Body: []Stmt{Work{Units: 2}}})
		case idx == 27: // cost kernel 2: cost-only loop
			f.Body = append(f.Body, Loop{Kind: ParamBound, Bound: QP(1, "cost", 1),
				Body: []Stmt{Work{Units: 4}}})
		}

		f.Body = append(f.Body,
			Loop{Kind: ParamBound, Bound: bound1, Body: elemBody},
		)
		if idx < 37 { // most kernels have a second element loop
			f.Body = append(f.Body,
				Loop{Kind: ParamBound, Bound: bound2, Body: append(takeGetters(1), Work{Units: units / 2})},
			)
		}
		// One runtime-constant bookkeeping loop per kernel.
		f.Body = append(f.Body, Loop{Kind: RuntimeConst, Bound: Q(24), Body: []Stmt{Work{Units: 2}}})
		if name == "CalcQForElems" {
			f.Body = append(f.Body, Call{Callee: "CommSBN"})
		}
		if name == "ReduceMinDt" {
			one := Q(1)
			f.Body = append(f.Body, Call{Callee: "MPI_Allreduce", CountArg: &one})
		}
		s.Funcs = append(s.Funcs, f)
	}

	// main: timestep loop over iters calling the Lagrange phases; one
	// size-dependent initialization loop; startup barrier.
	var perStep []Stmt
	for _, name := range kernelNames {
		perStep = append(perStep, Call{Callee: name})
	}
	perStep = append(perStep, Call{Callee: "CommSyncPosVel"})
	mainSpec := &FuncSpec{
		Name:         "main",
		Kind:         KindMain,
		WorkNanos:    1.5,
		MemIntensity: 0.5,
		Body: []Stmt{
			Call{Callee: "MPI_Comm_rank"},
			Call{Callee: "MPI_Barrier"},
			Loop{Kind: ParamBound, Bound: elems, Body: []Stmt{Work{Units: 12}}},
			Loop{Kind: RuntimeConst, Bound: Q(3), Body: []Stmt{Work{Units: 2}}},
			Loop{Kind: ParamBound, Bound: QP(1, "iters", 1), Body: perStep},
		},
	}
	// Helpers and table setups run once from main.
	for _, f := range s.Funcs {
		if f.Kind == KindHelper {
			mainSpec.Body = append(mainSpec.Body, Call{Callee: f.Name})
		}
	}
	s.Funcs = append([]*FuncSpec{mainSpec}, s.Funcs...)
	return s
}

// LULESHTaintConfig is the configuration of the paper's taint run:
// size 5 on 8 MPI ranks, other parameters at small defaults.
func LULESHTaintConfig() Config {
	return Config{"size": 5, "p": 8, "regions": 4, "balance": 2, "cost": 1, "iters": 2}
}

// LULESHModelValues returns the two-parameter modeling design of Table 2:
// p over cubic rank counts 27..729 and size in 25..45.
func LULESHModelValues() (ps, sizes []float64) {
	return []float64{27, 64, 125, 343, 729}, []float64{25, 30, 35, 40, 45}
}

// LULESHDefaults are the fixed values of the non-swept parameters during
// modeling runs.
func LULESHDefaults() Config {
	return Config{"regions": 11, "balance": 1, "cost": 1, "iters": 500}
}
