package apps

import "fmt"

// MILC reproduces the structural census of su3_rmd from the MIMD Lattice
// Computation as the paper reports it (Table 2): 629 functions of which 364
// prune statically and 188 dynamically, 56 computational kernels, 13
// communication routines, 8 distinct MPI functions; 874 natural loops of
// which 96 are statically constant and 196 depend on the modeled
// parameters. Parameters: the space-time domain size (the paper computes it
// from nx, ny, nz, nt; we model the combined extent directly as `size`,
// documented in DESIGN.md), the MD trajectory controls trajecs, steps,
// warms, niter, nrestart, and the physics inputs mass, beta, u0 which must
// be found performance-irrelevant. p is implicit via MPI.
//
// Lattice sites are size^2 in this reproduction (keeping interpreter-scale
// taint runs cheap); per-rank site counts are size^2/p, which couples size
// and p multiplicatively exactly as the four-dimensional domain
// decomposition of the original code does.
func MILC() *Spec {
	s := &Spec{
		Name: "milc",
		Params: []string{
			"size", "trajecs", "steps", "warms", "niter", "nrestart",
			"mass", "beta", "u0",
		},
		MPIUsed: []string{
			"MPI_Comm_size", "MPI_Comm_rank", "MPI_Isend", "MPI_Irecv",
			"MPI_Wait", "MPI_Allreduce", "MPI_Barrier", "MPI_Bcast",
		},
	}

	sites := QP(1, "size", 2).Times("p", -1) // per-rank sites

	// 316 getters (su3 matrix accessors, field pointers).
	const numGetters = 316
	getter := func(i int) string { return fmt.Sprintf("su3_get%03d", i) }
	for i := 0; i < numGetters; i++ {
		s.Funcs = append(s.Funcs, &FuncSpec{
			Name:      getter(i),
			Kind:      KindGetter,
			Body:      []Stmt{Work{Units: 2}},
			WorkNanos: 2.5,
			// The C-style MILC accessors mostly defeat the inline
			// heuristic, which is why the default filter provides "little
			// to no benefit" over full instrumentation (Figure 4).
			InlineEstimate: i%8 == 0,
		})
	}
	nextGetter := 0
	takeGetters := func(n int) []Stmt {
		var out []Stmt
		for k := 0; k < n; k++ {
			out = append(out, Call{Callee: getter(nextGetter % numGetters)})
			nextGetter++
		}
		return out
	}

	// 48 helpers with 96 statically constant loops (2 each): su3 algebra
	// over fixed 3x3 complex matrices.
	for i := 0; i < 48; i++ {
		s.Funcs = append(s.Funcs, &FuncSpec{
			Name: fmt.Sprintf("su3_helper%02d", i),
			Kind: KindHelper,
			Body: []Stmt{
				Loop{Kind: StaticConst, Bound: Q(9), Body: []Stmt{Work{Units: 4}}},
				Loop{Kind: StaticConst, Bound: Q(3), Body: []Stmt{Work{Units: 2}}},
			},
			WorkNanos: 2,
		})
	}

	// 188 dynamically pruned functions with 3 runtime-constant loops each:
	// layout tables, I/O staging, RNG setup driven by the input deck.
	for i := 0; i < 188; i++ {
		var body []Stmt
		for l := 0; l < 3; l++ {
			body = append(body, Loop{Kind: RuntimeConst, Bound: Q(float64(8 + i%7)), Body: []Stmt{Work{Units: 3}}})
		}
		s.Funcs = append(s.Funcs, &FuncSpec{
			Name:      fmt.Sprintf("layout_setup%03d", i),
			Kind:      KindHelper,
			Body:      body,
			WorkNanos: 2,
		})
	}

	// 13 communication routines: the MILC gather machinery. Each scans the
	// p-dependent neighbor structure; g_gather_field (the C2 case study)
	// additionally selects between a linear exchange for small communicators
	// and a tree-based path for larger ones.
	fixedMsg := Q(256)
	for i := 0; i < 13; i++ {
		name := fmt.Sprintf("g_comm%02d", i)
		body := []Stmt{
			Loop{Kind: ParamBound, Bound: QP(1, "p", 1), Body: []Stmt{Work{Units: 4}}},
			Loop{Kind: ParamBound, Bound: QP(1, "p", 1), Body: []Stmt{
				Call{Callee: "MPI_Isend", CountArg: &fixedMsg},
				Call{Callee: "MPI_Irecv", CountArg: &fixedMsg},
				Call{Callee: "MPI_Wait"},
			}},
		}
		if i == 0 {
			name = "g_gather_field"
			// Algorithm selection on p (C2): below 8 ranks the gather uses
			// a naive linear exchange shipping full field copies to every
			// peer; from 8 ranks on an optimized tree path exchanges only
			// boundary slices. The regimes differ qualitatively (steep
			// linear vs near-constant), breaking single-interval models.
			fullField := QP(64, "size", 1)
			slice := QP(1, "size", 1)
			body = []Stmt{
				Branch{
					Param: "p", Less: 8,
					Then: []Stmt{Loop{Kind: ParamBound, Bound: QP(1, "p", 1), Body: []Stmt{
						Call{Callee: "MPI_Isend", CountArg: &fullField},
						Work{Units: 4000},
					}}},
					Else: []Stmt{Loop{Kind: RuntimeConst, Bound: Q(6), Body: []Stmt{
						Call{Callee: "MPI_Isend", CountArg: &slice},
						Work{Units: 10},
					}}},
				},
				Loop{Kind: ParamBound, Bound: QP(1, "p", 1), Body: []Stmt{Work{Units: 2}}},
			}
		}
		s.Funcs = append(s.Funcs, &FuncSpec{
			Name:         name,
			Kind:         KindComm,
			Body:         body,
			WorkNanos:    3,
			MemIntensity: 0.2,
		})
	}

	// 56 kernels: main + 55 named computational routines.
	kernelNames := make([]string, 0, 55)
	base := []string{
		"load_fatlinks", "load_longlinks", "eo_fermion_force", "ks_congrad",
		"dslash_fn", "dslash_fn_field", "grsource_imp", "update_h", "update_u",
		"compute_gen_staple", "imp_gauge_force", "mult_su3_nn_field", "mult_su3_na_field",
		"mult_adj_su3_field", "scalar_mult_add_field", "add_force_to_mom",
		"rephase", "reunitarize", "check_unitarity", "plaquette_measure",
		"ploop_measure", "f_meas_imp", "gauge_action", "hvy_pot",
	}
	kernelNames = append(kernelNames, base...)
	for i := len(kernelNames); i < 55; i++ {
		kernelNames = append(kernelNames, fmt.Sprintf("ks_kernel%02d", i))
	}

	mass1 := QP(1, "mass", 1)
	for idx, name := range kernelNames {
		f := &FuncSpec{
			Name: name,
			Kind: KindKernel,
			// su3 matrix-vector work per site: ~50ns per abstract unit
			// keeps runtimes in the paper's regime despite the reduced
			// lattice volume of this reproduction.
			WorkNanos:      50,
			MemIntensity:   0.3 + 0.6*float64(idx%4)/3,
			InlineEstimate: idx%2 == 1,
		}
		units := 60.0 + float64((idx*17)%80)
		siteBody := append(takeGetters(2), Work{Units: units})

		bound := sites
		switch {
		case idx < 9: // CG kernels: niter restarts scale the site loops
			bound = sites.Times("niter", 1)
		case idx < 21: // 12 force/update kernels tied to steps
			bound = sites.Times("steps", 1)
		case idx < 26: // 5 kernels driven by nrestart
			bound = sites.Times("nrestart", 1)
		}
		// Three site loops per kernel (the census's ~3 loops/kernel).
		for l := 0; l < 3; l++ {
			f.Body = append(f.Body, Loop{Kind: ParamBound, Bound: bound, Body: siteBody})
		}
		switch idx {
		case 26: // mass enters one solver residual loop
			f.Body = append(f.Body, Loop{Kind: ParamBound, Bound: mass1, Body: []Stmt{Work{Units: 4}}})
		case 27, 28, 29, 30: // u0 tadpole loops
			f.Body = append(f.Body, Loop{Kind: ParamBound, Bound: QP(1, "u0", 1), Body: []Stmt{Work{Units: 4}}})
		}
		if idx < 18 { // some kernels carry a runtime-constant staging loop
			f.Body = append(f.Body, Loop{Kind: RuntimeConst, Bound: Q(16), Body: []Stmt{Work{Units: 2}}})
		}
		// CG and dslash kernels trigger gathers and a global sum.
		if idx < 9 {
			f.Body = append(f.Body, Call{Callee: "g_gather_field"})
			one := Q(1)
			f.Body = append(f.Body, Call{Callee: "MPI_Allreduce", CountArg: &one})
		} else if idx < 21 {
			f.Body = append(f.Body, Call{Callee: fmt.Sprintf("g_comm%02d", 1+idx%12)})
		}
		s.Funcs = append(s.Funcs, f)
	}

	// main: warmup trajectories, then trajecs trajectories of steps MD
	// steps each, calling the kernels; measurements every trajectory.
	var perStep []Stmt
	for _, name := range kernelNames {
		perStep = append(perStep, Call{Callee: name})
	}
	one := Q(1)
	mainSpec := &FuncSpec{
		Name:         "main",
		Kind:         KindMain,
		WorkNanos:    1.5,
		MemIntensity: 0.4,
		Body: []Stmt{
			Call{Callee: "MPI_Comm_rank"},
			Call{Callee: "MPI_Bcast", CountArg: &one},
			Call{Callee: "MPI_Barrier"},
			Loop{Kind: ParamBound, Bound: QP(1, "warms", 1), Body: []Stmt{Work{Units: 50}}},
			Loop{Kind: ParamBound, Bound: QP(1, "trajecs", 1), Body: []Stmt{
				Loop{Kind: ParamBound, Bound: QP(1, "steps", 1), Body: perStep},
			}},
			Loop{Kind: RuntimeConst, Bound: Q(4), Body: []Stmt{Work{Units: 4}}},
		},
	}
	for _, f := range s.Funcs {
		if f.Kind == KindHelper {
			mainSpec.Body = append(mainSpec.Body, Call{Callee: f.Name})
		}
	}
	s.Funcs = append([]*FuncSpec{mainSpec}, s.Funcs...)
	return s
}

// MILCTaintConfig is the paper's taint run: size 128 on 32 ranks.
func MILCTaintConfig() Config {
	return Config{
		"size": 128, "p": 32, "trajecs": 2, "steps": 2, "warms": 1,
		"niter": 2, "nrestart": 1, "mass": 1, "beta": 1, "u0": 1,
	}
}

// MILCModelValues returns the modeling design of Table 2: p = 2^n in 4..64
// and size in 32..512.
func MILCModelValues() (ps, sizes []float64) {
	return []float64{4, 8, 16, 32, 64}, []float64{32, 64, 128, 256, 512}
}

// MILCDefaults fixes the non-swept parameters during modeling runs.
func MILCDefaults() Config {
	return Config{
		"trajecs": 2, "steps": 5, "warms": 1, "niter": 5, "nrestart": 1,
		"mass": 1, "beta": 1, "u0": 1,
	}
}
