package apps

import (
	"math"
	"testing"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/libdb"
	"repro/internal/mpisim"
	"repro/internal/taint"
)

func TestQuantityEval(t *testing.T) {
	q := QP(2, "size", 3).Times("p", -1)
	got := q.Eval(map[string]float64{"size": 10, "p": 4})
	if got != 500 {
		t.Fatalf("2*size^3/p = %g, want 500", got)
	}
	// Missing params default to 1.
	if v := QP(3, "x", 2).Eval(nil); v != 3 {
		t.Fatalf("missing param eval = %g, want 3", v)
	}
	ps := q.Params()
	if len(ps) != 2 || ps[0] != "p" || ps[1] != "size" {
		t.Fatalf("Params = %v", ps)
	}
}

func TestSpecValidateCatchesUnknownCallee(t *testing.T) {
	s := &Spec{
		Name:   "bad",
		Params: []string{"n"},
		Funcs: []*FuncSpec{{
			Name: "main", Kind: KindMain,
			Body: []Stmt{Call{Callee: "ghost"}},
		}},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("expected unknown-callee error")
	}
}

func TestSpecValidateRequiresMainFirst(t *testing.T) {
	s := &Spec{Name: "bad", Funcs: []*FuncSpec{{Name: "f", Kind: KindKernel}}}
	if err := s.Validate(); err == nil {
		t.Fatal("expected main-first error")
	}
}

func TestLULESHCensus(t *testing.T) {
	s := LULESH()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := s.CountFuncs()
	// Table 2: 40 kernels (incl. main per our accounting: main + 40 named
	// would exceed; we count main separately), 2 comm routines, 7 MPI.
	if got := counts[KindKernel]; got != 40 {
		t.Fatalf("kernels = %d, want 40", got)
	}
	if got := counts[KindComm]; got != 2 {
		t.Fatalf("comm routines = %d, want 2", got)
	}
	if got := len(s.MPIUsed); got != 7 {
		t.Fatalf("MPI functions = %d, want 7", got)
	}
	total := len(s.Funcs) + len(s.MPIUsed)
	if total != 356 {
		t.Fatalf("total functions = %d, want 356 (Table 2)", total)
	}
}

func TestMILCCensus(t *testing.T) {
	s := MILC()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := s.CountFuncs()
	if got := counts[KindKernel] + counts[KindMain]; got != 56 {
		t.Fatalf("kernels = %d, want 56", got)
	}
	if got := counts[KindComm]; got != 13 {
		t.Fatalf("comm routines = %d, want 13", got)
	}
	if got := len(s.MPIUsed); got != 8 {
		t.Fatalf("MPI functions = %d, want 8", got)
	}
	total := len(s.Funcs) + len(s.MPIUsed)
	if total != 629 {
		t.Fatalf("total functions = %d, want 629 (Table 2)", total)
	}
}

func buildAndVerify(t *testing.T, s *Spec) *ir.Module {
	t.Helper()
	m, err := BuildModule(s)
	if err != nil {
		t.Fatal(err)
	}
	db := libdb.DefaultMPI()
	if err := ir.VerifyModule(m, func(name string) bool {
		_, ok := db.Lookup(name)
		return ok
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLULESHModuleBuildsAndVerifies(t *testing.T) {
	buildAndVerify(t, LULESH())
}

func TestMILCModuleBuildsAndVerifies(t *testing.T) {
	buildAndVerify(t, MILC())
}

func TestLULESHLoopCensus(t *testing.T) {
	m := buildAndVerify(t, LULESH())
	total := cfg.CountLoops(m)
	// Table 2 reports 275 natural loops; the generated structure must land
	// in that regime (builder blocks add no spurious loops).
	if total < 250 || total > 300 {
		t.Fatalf("LULESH loops = %d, want ~275", total)
	}
}

func TestMILCLoopCensus(t *testing.T) {
	m := buildAndVerify(t, MILC())
	total := cfg.CountLoops(m)
	if total < 820 || total > 930 {
		t.Fatalf("MILC loops = %d, want ~874", total)
	}
}

func taintRun(t *testing.T, s *Spec, cfgv Config) *taint.Engine {
	t.Helper()
	m := buildAndVerify(t, s)
	e := taint.NewEngine()
	mach := interp.NewMachine(m)
	mach.Taint = e
	mach.Fuel = 2_000_000_000
	libdb.DefaultMPI().Bind(mach, e, libdb.RunConfig{CommSize: int64(cfgv["p"]), Rank: 0})

	labels := make([]taint.Label, len(s.Params))
	for i, p := range s.Params {
		labels[i] = e.Table.Base(p)
	}
	if _, err := mach.Run("main", TaintArgs(s, cfgv), labels); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDividedLoopBoundIterations pins the emitQuantity lowering order for
// divided bounds: size^3/balance must multiply the numerator out before
// dividing. The seed version divided first, flooring 1/balance to 0, so
// every region/balance-partitioned loop dynamically executed 0 iterations.
func TestDividedLoopBoundIterations(t *testing.T) {
	bound := QP(1, "size", 3).Times("balance", -1)
	s := &Spec{
		Name:   "divbound",
		Params: []string{"size", "balance"},
		Funcs: []*FuncSpec{{
			Name: "main",
			Kind: KindMain,
			Body: []Stmt{
				Loop{Kind: ParamBound, Bound: bound, Body: []Stmt{Work{Units: 1}}},
			},
		}},
	}
	cfgv := Config{"size": 4, "balance": 3, "p": 2}
	want := bound.EvalInt(map[string]float64(cfgv))
	if want != 21 { // floor(4^3 / 3), not floor(1/3)*4^3 == 0
		t.Fatalf("EvalInt = %d, want 21", want)
	}
	e := taintRun(t, s, cfgv)
	var got int64
	for k, rec := range e.Loops {
		if k.Func == "main" {
			got += rec.Iterations
		}
	}
	if got != want {
		t.Fatalf("divided-bound loop executed %d iterations, want %d", got, want)
	}
	deps := e.FuncLoopDeps()["main"]
	if len(deps) != 2 || deps[0] != "balance" || deps[1] != "size" {
		t.Fatalf("divided-bound loop deps = %v, want [balance size]", deps)
	}
}

func TestLULESHTaintFindsParameterWiring(t *testing.T) {
	s := LULESH()
	e := taintRun(t, s, LULESHTaintConfig())
	deps := e.FuncLoopDeps()

	has := func(fn, param string) bool {
		for _, d := range deps[fn] {
			if d == param {
				return true
			}
		}
		return false
	}
	if !has("CalcForceForNodes", "size") {
		t.Errorf("CalcForceForNodes deps = %v, want size", deps["CalcForceForNodes"])
	}
	if !has("CalcForceForNodes", "regions") {
		t.Errorf("region kernel missing regions dep: %v", deps["CalcForceForNodes"])
	}
	if !has("main", "iters") || !has("main", "size") {
		t.Errorf("main deps = %v, want iters+size", deps["main"])
	}
	if !has("CommSBN", "p") {
		t.Errorf("CommSBN deps = %v, want p", deps["CommSBN"])
	}
	// Getters and helpers must have no tainted loops.
	if len(deps["Domain_get000"]) != 0 {
		t.Errorf("getter tainted: %v", deps["Domain_get000"])
	}
	if len(deps["TableSetup00"]) != 0 {
		t.Errorf("runtime-constant helper tainted: %v", deps["TableSetup00"])
	}
	// cost touches exactly the two designated kernels (idx 22 and 27).
	costFns := map[string]bool{}
	for fn, ps := range deps {
		for _, p := range ps {
			if p == "cost" {
				costFns[fn] = true
			}
		}
	}
	if len(costFns) != 2 || !costFns["LagrangeElements"] || !costFns["CalcElemShapeFunctionDerivatives"] {
		t.Errorf("cost-dependent functions = %v, want exactly the two designated kernels", costFns)
	}
}

func TestMILCTaintFindsSiteLoopCoupling(t *testing.T) {
	s := MILC()
	e := taintRun(t, s, MILCTaintConfig())
	deps := e.FuncLoopDeps()

	has := func(fn, param string) bool {
		for _, d := range deps[fn] {
			if d == param {
				return true
			}
		}
		return false
	}
	// Site loops are size^2/p: both parameters must appear.
	if !has("load_fatlinks", "size") || !has("load_fatlinks", "p") {
		t.Errorf("load_fatlinks deps = %v, want size+p", deps["load_fatlinks"])
	}
	if !has("ks_congrad", "niter") {
		t.Errorf("ks_congrad deps = %v, want niter", deps["ks_congrad"])
	}
	if !has("main", "trajecs") || !has("main", "steps") || !has("main", "warms") {
		t.Errorf("main deps = %v", deps["main"])
	}
	if len(deps["su3_get000"]) != 0 {
		t.Errorf("getter tainted: %v", deps["su3_get000"])
	}
}

func TestMILCGatherBranchIsTaintedSelection(t *testing.T) {
	s := MILC()
	e := taintRun(t, s, MILCTaintConfig())
	found := false
	for _, sel := range e.TaintedSelections() {
		if sel.Key.Func == "g_gather_field" {
			found = true
			if !e.Table.Has(sel.Labels, e.Table.LabelOf("p")) {
				t.Error("gather selection not tainted by p")
			}
		}
	}
	if !found {
		t.Fatal("g_gather_field branch not reported as tainted selection (C2)")
	}
}

func TestGroundTruthEvaluation(t *testing.T) {
	s := LULESH()
	cfgv := Config{"size": 30, "p": 64, "regions": 11, "balance": 1, "cost": 1, "iters": 500}
	g, err := Evaluate(s, cfgv, mpisim.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if g.Calls["main"] != 1 {
		t.Fatalf("main calls = %g", g.Calls["main"])
	}
	// Every kernel runs once per timestep.
	if got := g.Calls["CalcForceForNodes"]; got != 500 {
		t.Fatalf("kernel calls = %g, want 500", got)
	}
	// Getter call volume must dwarf kernel calls (the C++ accessor storm
	// behind Figure 3).
	getters := 0.0
	for i := 0; i < 249; i++ {
		getters += g.Calls[getter249(i)]
	}
	if getters < 1e8 {
		t.Fatalf("getter calls = %g, want > 1e8", getters)
	}
	// Total runtime lands in the paper's regime (~130 s at this config).
	total := g.TotalSeconds()
	if total < 30 || total > 500 {
		t.Fatalf("total runtime = %gs, want order 1e2", total)
	}
	// Inclusive main covers everything.
	if g.InclSeconds["main"] < g.ExclSeconds["CalcQForElems"] {
		t.Fatal("main inclusive < kernel exclusive")
	}
}

func getter249(i int) string { return "Domain_get" + pad3(i) }

func pad3(i int) string {
	s := ""
	if i < 100 {
		s += "0"
	}
	if i < 10 {
		s += "0"
	}
	return s + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestGroundTruthScalesWithSize(t *testing.T) {
	s := LULESH()
	base := Config{"size": 20, "p": 27, "regions": 11, "balance": 1, "cost": 1, "iters": 100}
	big := base.Clone()
	big["size"] = 40
	g1, err := Evaluate(s, base, mpisim.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Evaluate(s, big, mpisim.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	ratio := g2.ExclSeconds["CalcForceForNodes"] / g1.ExclSeconds["CalcForceForNodes"]
	if math.Abs(ratio-8) > 0.5 {
		t.Fatalf("size^3 scaling: 2x size gave %gx time, want ~8x", ratio)
	}
}

func TestGroundTruthQForElemsHWFactor(t *testing.T) {
	s := LULESH()
	base := Config{"size": 30, "p": 27, "regions": 11, "balance": 1, "cost": 1, "iters": 100}
	big := base.Clone()
	big["p"] = 432 // 16x ranks
	g1, err := Evaluate(s, base, mpisim.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Evaluate(s, big, mpisim.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	ratio := g2.ExclSeconds["CalcQForElems"] / g1.ExclSeconds["CalcQForElems"]
	// p^0.25: 16^0.25 = 2.
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("QForElems p^0.25 factor: got %gx, want ~2x", ratio)
	}
}

func TestMILCGatherPiecewiseGroundTruth(t *testing.T) {
	s := MILC()
	small := MILCDefaults()
	small["size"] = 64
	small["p"] = 4
	large := small.Clone()
	large["p"] = 32
	g1, err := Evaluate(s, small, mpisim.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Evaluate(s, large, mpisim.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	// Both sides execute the gather; the work shape differs across the
	// threshold (linear vs constant-depth tree).
	if g1.Calls["g_gather_field"] == 0 || g2.Calls["g_gather_field"] == 0 {
		t.Fatal("gather not called")
	}
	perCall1 := g1.ExclSeconds["g_gather_field"] / g1.Calls["g_gather_field"]
	perCall2 := g2.ExclSeconds["g_gather_field"] / g2.Calls["g_gather_field"]
	if perCall1 == perCall2 {
		t.Fatal("piecewise gather has identical per-call cost on both sides")
	}
}

func TestEvaluateRejectsMissingParams(t *testing.T) {
	s := LULESH()
	if _, err := Evaluate(s, Config{"size": 10}, mpisim.DefaultCost()); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestTaintArgsOrder(t *testing.T) {
	s := LULESH()
	cfgv := LULESHTaintConfig()
	args := TaintArgs(s, cfgv)
	if len(args) != len(s.Params) {
		t.Fatalf("args = %d, want %d", len(args), len(s.Params))
	}
	if args[0] != 5 { // size first
		t.Fatalf("args[0] = %d, want size=5", args[0])
	}
}
