// Package apps defines the benchmark applications of the evaluation. Each
// application is written as a declarative Spec from which two consistent
// artifacts are generated:
//
//   - an ir.Module whose loop bounds, call sites, and MPI usage realize the
//     spec (the program the taint analysis runs on), and
//   - an analytic ground-truth model (call counts and exclusive times per
//     function) used by the cluster substrate to synthesize measurements at
//     configurations far larger than the interpreted taint run.
//
// The paper evaluates LULESH and MILC su3_rmd; the specs in lulesh.go and
// milc.go reproduce their structural census (function and loop counts per
// pruning class, parameter wiring of Tables 2 and 3). This substitution
// preserves the evaluated behaviour because every experiment measures
// structural properties (which functions/loops depend on which parameters,
// how models react to noise/instrumentation), not the physics.
package apps

import (
	"fmt"
	"math"
	"sort"
)

// Quantity is a monomial over the application parameters:
// Coeff * prod params^pow. Negative powers express per-rank partitioning
// such as volume/p.
type Quantity struct {
	Coeff float64
	Pow   map[string]int
}

// Q builds a constant quantity.
func Q(c float64) Quantity { return Quantity{Coeff: c} }

// QP builds coeff * name^pow.
func QP(c float64, name string, pow int) Quantity {
	return Quantity{Coeff: c, Pow: map[string]int{name: pow}}
}

// Times returns q scaled by name^pow.
func (q Quantity) Times(name string, pow int) Quantity {
	np := make(map[string]int, len(q.Pow)+1)
	for k, v := range q.Pow {
		np[k] = v
	}
	np[name] += pow
	return Quantity{Coeff: q.Coeff, Pow: np}
}

// Eval computes the quantity under a parameter configuration; missing
// parameters default to 1.
func (q Quantity) Eval(cfg map[string]float64) float64 {
	v := q.Coeff
	for name, pow := range q.Pow {
		x, ok := cfg[name]
		if !ok || x <= 0 {
			x = 1
		}
		v *= math.Pow(x, float64(pow))
	}
	return v
}

// EvalInt computes the quantity under a configuration with the integer
// semantics of the lowered IR (see emitQuantity): the rounded coefficient
// is clamped to at least 1, positive powers multiply first, and negative
// powers then floor-divide. This is the exact iteration count a ParamBound
// loop with this bound executes, which is what analytic ground truth for
// the dynamic engines must use.
func (q Quantity) EvalInt(cfg map[string]float64) int64 {
	c := int64(math.Round(q.Coeff))
	if c < 1 {
		c = 1
	}
	names := make([]string, 0, len(q.Pow))
	for n := range q.Pow {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if pow := q.Pow[n]; pow > 0 {
			p := int64(math.Round(cfg[n]))
			for k := 0; k < pow; k++ {
				c *= p
			}
		}
	}
	for _, n := range names {
		if pow := q.Pow[n]; pow < 0 {
			p := int64(math.Round(cfg[n]))
			if p == 0 {
				return 0
			}
			for k := 0; k > pow; k-- {
				c /= p
			}
		}
	}
	return c
}

// Params returns the parameter names with non-zero powers, sorted.
func (q Quantity) Params() []string {
	var out []string
	for name, pow := range q.Pow {
		if pow != 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// BoundKind classifies how a loop bound behaves for the analyses.
type BoundKind int

// Bound kinds: a StaticConst bound is a compile-time constant (statically
// prunable), a RuntimeConst bound is loaded from an unmarked runtime cell
// (opaque to statics, untainted dynamically — the "dynamically pruned"
// class), and a ParamBound derives from marked parameters.
const (
	StaticConst BoundKind = iota
	RuntimeConst
	ParamBound
)

// Stmt is one element of a function body.
type Stmt interface{ isStmt() }

// Loop nests statements under an iteration bound.
type Loop struct {
	Kind BoundKind
	// Bound is the iteration count: a Quantity for ParamBound, a constant
	// for the other kinds (Coeff used, powers ignored).
	Bound Quantity
	Body  []Stmt
}

// Call invokes another spec function or an MPI routine.
type Call struct {
	Callee string
	// CountArg, for MPI routines, is the message count expression passed
	// as the count argument (taint flows into the library database).
	CountArg *Quantity
}

// Work models computation of Units abstract work items per execution.
type Work struct {
	Units float64
}

// Branch selects between two bodies on a parameter threshold
// (param < Less). It models parameter-based algorithm selection (Section
// 4.4 / C2): the taint analysis sees a tainted non-loop branch, and the
// ground truth becomes piecewise in the parameter.
type Branch struct {
	Param string
	Less  float64
	Then  []Stmt
	Else  []Stmt
}

func (Loop) isStmt()   {}
func (Call) isStmt()   {}
func (Work) isStmt()   {}
func (Branch) isStmt() {}

// Kind classifies functions for the census and the measurement filters.
type Kind int

// Function kinds mirroring Table 2's census rows.
const (
	KindMain   Kind = iota
	KindKernel      // computational kernel
	KindComm        // communication wrapper
	KindGetter      // C++-style accessor: no loops
	KindHelper      // constant or runtime-constant loops
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMain:
		return "main"
	case KindKernel:
		return "kernel"
	case KindComm:
		return "comm"
	case KindGetter:
		return "getter"
	case KindHelper:
		return "helper"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// FuncSpec declares one application function.
type FuncSpec struct {
	Name string
	Kind Kind
	Body []Stmt
	// WorkNanos is the time of one abstract work unit in nanoseconds.
	WorkNanos float64
	// MemIntensity in [0,1] scales the hardware-contention sensitivity of
	// this function's compute time (C1).
	MemIntensity float64
	// HWFactor optionally multiplies the compute time by a
	// machine-dependent p-power (surface effects, NUMA): exponent over p.
	HWFactorPExp float64
	// ImbalanceSkew models rank load imbalance: the measured (critical
	// path) time of this function stretches by 1 + skew*log2(p) as ranks
	// straggle. Like contention it is a machine/scheduling effect — the
	// analytic Ground stays rank-symmetric and the taint analysis cannot
	// (and must not) derive a code-level p dependence from it.
	ImbalanceSkew float64
	// InlineEstimate marks functions the compiler-assisted Score-P default
	// filter judges inlineable and therefore skips (Section A3). Getters
	// qualify; notoriously, some performance-relevant kernels do too,
	// producing the false negatives the paper describes.
	InlineEstimate bool
}

// Spec is a whole application.
type Spec struct {
	Name string
	// Params are the marked input parameters in declaration order
	// (excluding the implicit MPI parameter p).
	Params []string
	// Funcs holds every function; Funcs[0] must be the main function.
	Funcs []*FuncSpec
	// MPIUsed lists the MPI routines the program calls (the census's MPI
	// column).
	MPIUsed []string
}

// FuncByName returns the spec of name, or nil.
func (s *Spec) FuncByName(name string) *FuncSpec {
	for _, f := range s.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Main returns the entry function spec.
func (s *Spec) Main() *FuncSpec { return s.Funcs[0] }

// CountFuncs tallies functions per kind.
func (s *Spec) CountFuncs() map[Kind]int {
	out := make(map[Kind]int)
	for _, f := range s.Funcs {
		out[f.Kind]++
	}
	return out
}

// Validate checks call targets and structural invariants.
func (s *Spec) Validate() error {
	if len(s.Funcs) == 0 {
		return fmt.Errorf("apps: spec %q has no functions", s.Name)
	}
	if s.Funcs[0].Kind != KindMain {
		return fmt.Errorf("apps: spec %q: first function must be main", s.Name)
	}
	mpi := make(map[string]bool, len(s.MPIUsed))
	for _, m := range s.MPIUsed {
		mpi[m] = true
	}
	names := make(map[string]bool, len(s.Funcs))
	for _, f := range s.Funcs {
		if names[f.Name] {
			return fmt.Errorf("apps: duplicate function %q", f.Name)
		}
		names[f.Name] = true
	}
	var checkBody func(fn string, body []Stmt) error
	checkBody = func(fn string, body []Stmt) error {
		for _, st := range body {
			switch v := st.(type) {
			case Loop:
				if err := checkBody(fn, v.Body); err != nil {
					return err
				}
			case Branch:
				if err := checkBody(fn, v.Then); err != nil {
					return err
				}
				if err := checkBody(fn, v.Else); err != nil {
					return err
				}
			case Call:
				if !names[v.Callee] && !mpi[v.Callee] {
					return fmt.Errorf("apps: %s calls unknown %q", fn, v.Callee)
				}
			}
		}
		return nil
	}
	for _, f := range s.Funcs {
		if err := checkBody(f.Name, f.Body); err != nil {
			return err
		}
	}
	return nil
}

// Config is a concrete parameter assignment including the implicit p.
type Config map[string]float64

// Clone copies the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}
