package loopmodel

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestAddFoldsConstantsAndFlattens(t *testing.T) {
	e := Add(Const{1}, Add(Const{2}, Unknown{Params: []string{"p"}}), Const{3})
	s, ok := e.(Sum)
	if !ok {
		t.Fatalf("Add = %T, want Sum", e)
	}
	foundConst := false
	for _, term := range s.Terms {
		if c, ok := term.(Const); ok {
			foundConst = true
			if c.Value != 6 {
				t.Fatalf("const fold = %v, want 6", c.Value)
			}
		}
		if _, ok := term.(Sum); ok {
			t.Fatal("nested Sum not flattened")
		}
	}
	if !foundConst {
		t.Fatal("constants lost")
	}
}

func TestMulZeroCollapses(t *testing.T) {
	e := Mul(Const{0}, Unknown{Params: []string{"p"}})
	c, ok := e.(Const)
	if !ok || c.Value != 0 {
		t.Fatalf("Mul(0, x) = %v, want 0", e)
	}
}

func TestMulIdentityDrops(t *testing.T) {
	u := Unknown{Params: []string{"p"}}
	e := Mul(Const{1}, u)
	if !reflect.DeepEqual(e, Expr(u)) {
		t.Fatalf("Mul(1, u) = %v, want u", e)
	}
}

func TestParamsSorted(t *testing.T) {
	e := Mul(Unknown{Params: []string{"size"}}, Add(Unknown{Params: []string{"p"}}, Const{1}))
	got := Params(e)
	want := []string{"p", "size"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Params = %v, want %v", got, want)
	}
}

func TestStructureAdditive(t *testing.T) {
	// g(p) + g(s): additive-only.
	e := Add(Unknown{Params: []string{"p"}}, Unknown{Params: []string{"s"}})
	st := StructureOf(e)
	if !st.AdditiveOnly() {
		t.Fatalf("structure %v should be additive-only", st)
	}
	if st.Multiplicative("p", "s") {
		t.Fatal("p,s wrongly multiplicative")
	}
	if len(st.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(st.Groups))
	}
}

func TestStructureMultiplicative(t *testing.T) {
	// g(p) * g(s): nesting couples the parameters.
	e := Mul(Unknown{Params: []string{"p"}}, Unknown{Params: []string{"s"}})
	st := StructureOf(e)
	if st.AdditiveOnly() {
		t.Fatal("nested structure must not be additive-only")
	}
	if !st.Multiplicative("p", "s") {
		t.Fatal("p,s must be multiplicative")
	}
}

func TestStructureDistributesProductOverSum(t *testing.T) {
	// iters * (g(p) + g(s)) -> {iters,p} + {iters,s}: the LULESH main-loop
	// case of Section A2.
	e := Mul(Unknown{Params: []string{"iters"}}, Add(Unknown{Params: []string{"p"}}, Unknown{Params: []string{"s"}}))
	st := StructureOf(e)
	if len(st.Groups) != 2 {
		t.Fatalf("groups = %v, want 2", st.Groups)
	}
	if !st.Multiplicative("iters", "p") || !st.Multiplicative("iters", "s") {
		t.Fatal("iters must couple with both p and s")
	}
	if st.Multiplicative("p", "s") {
		t.Fatal("p and s are in different additive branches")
	}
}

func TestStructureString(t *testing.T) {
	st := StructureOf(Add(Unknown{Params: []string{"p"}}, Mul(Unknown{Params: []string{"p"}}, Unknown{Params: []string{"s"}})))
	if st.String() == "" || st.String() == "{}" {
		t.Fatalf("String = %q", st.String())
	}
	empty := Structure{}
	if empty.String() != "{}" {
		t.Fatalf("empty = %q", empty.String())
	}
}

// Property: structure extraction is stable under Add commutation and
// duplicates are removed.
func TestStructureOfAddCommutative(t *testing.T) {
	prop := func(a, b uint8) bool {
		names := []string{"p", "s", "n", "m"}
		ua := Unknown{Params: []string{names[int(a)%4]}}
		ub := Unknown{Params: []string{names[int(b)%4]}}
		s1 := StructureOf(Add(ua, ub))
		s2 := StructureOf(Add(ub, ua))
		return s1.String() == s2.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: vol(seq(L1,L2)) params = union, additive; vol(nest(L1,L2))
// multiplicative — the composition rules of Section 4.2.
func TestCompositionRules(t *testing.T) {
	l1 := Unknown{Params: []string{"p"}}
	l2 := Unknown{Params: []string{"s"}}
	seq := Add(l1, l2)
	nest := Mul(l1, l2)
	if got := Params(seq); !reflect.DeepEqual(got, []string{"p", "s"}) {
		t.Fatalf("seq params = %v", got)
	}
	if got := Params(nest); !reflect.DeepEqual(got, []string{"p", "s"}) {
		t.Fatalf("nest params = %v", got)
	}
	if !StructureOf(seq).AdditiveOnly() {
		t.Fatal("sequencing must stay additive")
	}
	if StructureOf(nest).AdditiveOnly() {
		t.Fatal("nesting must be multiplicative")
	}
}

// --- module-level volume computation ---

func buildModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("t")

	// kernel(n): single loop over n.
	k := ir.NewFunc(m, "kernel", 1)
	k.For(k.Const(0), k.Param(0), k.Const(1), func(i ir.Reg) { k.Work(k.Const(1)) })
	k.RetVoid()
	k.Finish()

	// helper(): constant 4-iteration loop.
	h := ir.NewFunc(m, "helper", 0)
	h.ForConst(0, 4, func(i ir.Reg) { h.Work(h.Const(1)) })
	h.RetVoid()
	h.Finish()

	// main(p, s): for(i<p) kernel(s); helper()
	b := ir.NewFunc(m, "main", 2)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
		b.Call("kernel", b.Param(1))
	})
	b.Call("helper")
	b.RetVoid()
	b.Finish()
	return m
}

func testDeps(fn string, loopID int) []string {
	switch fn {
	case "kernel":
		return []string{"s"}
	case "main":
		return []string{"p"}
	}
	return nil
}

func testTrips(fn string, loopID int) (int64, bool) {
	if fn == "helper" {
		return 4, true
	}
	return 0, false
}

func TestComputeVolumesInterprocedural(t *testing.T) {
	m := buildModule(t)
	v := Compute(m, testDeps, testTrips, nil)

	mainStruct := v.StructByFunc["main"]
	if !mainStruct.Multiplicative("p", "s") {
		t.Fatalf("main structure %v must couple p and s (call inside loop)", mainStruct)
	}
	kernelStruct := v.StructByFunc["kernel"]
	if got := kernelStruct.Params(); !reflect.DeepEqual(got, []string{"s"}) {
		t.Fatalf("kernel params = %v, want [s]", got)
	}
	helperStruct := v.StructByFunc["helper"]
	if len(helperStruct.Groups) != 0 {
		t.Fatalf("helper must be constant, got %v", helperStruct)
	}
	if len(v.RecursionWarnings) != 0 {
		t.Fatalf("unexpected recursion warnings: %v", v.RecursionWarnings)
	}
}

func TestComputeVolumesLocalExcludesCallees(t *testing.T) {
	m := buildModule(t)
	v := Compute(m, testDeps, testTrips, nil)
	local := StructureOf(v.LocalByFunc["main"])
	if got := local.Params(); !reflect.DeepEqual(got, []string{"p"}) {
		t.Fatalf("main local params = %v, want [p]", got)
	}
}

func TestComputeVolumesExtern(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "comm", 0)
	b.Call("MPI_Allreduce")
	b.RetVoid()
	b.Finish()

	ext := func(name string) Expr {
		if name == "MPI_Allreduce" {
			return Unknown{Params: []string{"p"}}
		}
		return nil
	}
	v := Compute(m, nil, nil, ext)
	st := v.StructByFunc["comm"]
	if got := st.Params(); !reflect.DeepEqual(got, []string{"p"}) {
		t.Fatalf("comm params = %v, want [p]", got)
	}
}

func TestComputeVolumesRecursionWarning(t *testing.T) {
	m := ir.NewModule("t")
	a := ir.NewFunc(m, "a", 1)
	a.Call("b", a.Param(0))
	a.RetVoid()
	a.Finish()
	bb := ir.NewFunc(m, "b", 1)
	bb.Call("a", bb.Param(0))
	bb.RetVoid()
	bb.Finish()

	v := Compute(m, nil, nil, nil)
	if len(v.RecursionWarnings) != 2 {
		t.Fatalf("recursion warnings = %v, want a and b", v.RecursionWarnings)
	}
}

func TestRequiredExperimentsAdditiveVsMultiplicative(t *testing.T) {
	points := map[string]int{"p": 5, "s": 5}
	add := Structure{Groups: []DepGroup{{"p"}, {"s"}}}
	mul := Structure{Groups: []DepGroup{{"p", "s"}}}

	// Additive: 1 base + 4 extra per parameter = 9 (the paper's example:
	// p+s needs 9 experiments, p×s needs 25).
	if got := RequiredExperiments(add, points); got != 9 {
		t.Fatalf("additive design = %d, want 9", got)
	}
	if got := RequiredExperiments(mul, points); got != 25 {
		t.Fatalf("multiplicative design = %d, want 25", got)
	}
	if got := FullFactorialExperiments(add, points); got != 25 {
		t.Fatalf("full factorial = %d, want 25", got)
	}
}

func TestRequiredExperimentsEmpty(t *testing.T) {
	if got := RequiredExperiments(Structure{}, nil); got != 1 {
		t.Fatalf("empty design = %d, want 1", got)
	}
}

func TestRequiredExperimentsThreeParamsMixed(t *testing.T) {
	// {a,b} coupled, {c} separate with 5 points each:
	// 1 + (25-1) + (5-1) = 29.
	st := Structure{Groups: []DepGroup{{"a", "b"}, {"c"}}}
	points := map[string]int{"a": 5, "b": 5, "c": 5}
	if got := RequiredExperiments(st, points); got != 29 {
		t.Fatalf("mixed design = %d, want 29", got)
	}
}

// Property: RequiredExperiments never exceeds the full factorial design.
func TestRequiredNeverExceedsFactorial(t *testing.T) {
	prop := func(coupled bool, n1, n2 uint8) bool {
		p1 := int(n1%6) + 1
		p2 := int(n2%6) + 1
		points := map[string]int{"a": p1, "b": p2}
		var st Structure
		if coupled {
			st = Structure{Groups: []DepGroup{{"a", "b"}}}
		} else {
			st = Structure{Groups: []DepGroup{{"a"}, {"b"}}}
		}
		return RequiredExperiments(st, points) <= FullFactorialExperiments(st, points)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
