// Package loopmodel implements the symbolic iteration-volume algebra of
// Section 4: count(L) = g(p1..pn) for each loop with the parameter set
// delivered by the taint analysis, sequencing of loop nests composing
// additively and nesting composing multiplicatively (Claims 1-2), and the
// recursive accumulation over the call tree yielding the asymptotic compute
// volume of the whole program (Theorem 1). The resulting dependency
// structure — additive groups of multiplicative parameter sets — is the
// prior the hybrid modeler feeds to Extra-P.
package loopmodel
