package loopmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a symbolic iteration-volume expression.
type Expr interface {
	String() string
	// params adds the parameter names occurring in the expression to set.
	params(set map[string]bool)
}

// Const is a constant volume (e.g. a statically resolved trip count).
type Const struct{ Value float64 }

// Unknown is an unresolved loop-count function g(p1..pn): the taint sink
// proves which parameters it may depend on, nothing more (Claim 1).
type Unknown struct{ Params []string }

// Sum is an additive composition (sequenced loop nests).
type Sum struct{ Terms []Expr }

// Prod is a multiplicative composition (nested loop nests).
type Prod struct{ Factors []Expr }

// String renders the constant.
func (c Const) String() string { return trimFloat(c.Value) }

func (c Const) params(map[string]bool) {}

// String renders g(params...); a dependency-free unknown renders as g().
func (u Unknown) String() string {
	ps := append([]string(nil), u.Params...)
	sort.Strings(ps)
	return "g(" + strings.Join(ps, ",") + ")"
}

func (u Unknown) params(set map[string]bool) {
	for _, p := range u.Params {
		set[p] = true
	}
}

// String renders the sum with + separators.
func (s Sum) String() string {
	if len(s.Terms) == 0 {
		return "0"
	}
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

func (s Sum) params(set map[string]bool) {
	for _, t := range s.Terms {
		t.params(set)
	}
}

// String renders the product with * separators.
func (p Prod) String() string {
	if len(p.Factors) == 0 {
		return "1"
	}
	parts := make([]string, len(p.Factors))
	for i, f := range p.Factors {
		parts[i] = f.String()
	}
	return strings.Join(parts, "*")
}

func (p Prod) params(set map[string]bool) {
	for _, f := range p.Factors {
		f.params(set)
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// Params returns the sorted parameter names occurring in e.
func Params(e Expr) []string {
	set := make(map[string]bool)
	e.params(set)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Add composes expressions additively, flattening nested sums and folding
// constants.
func Add(terms ...Expr) Expr {
	var flat []Expr
	c := 0.0
	hasConst := false
	for _, t := range terms {
		switch v := t.(type) {
		case nil:
		case Const:
			c += v.Value
			hasConst = true
		case Sum:
			for _, inner := range v.Terms {
				if ic, ok := inner.(Const); ok {
					c += ic.Value
					hasConst = true
				} else {
					flat = append(flat, inner)
				}
			}
		default:
			flat = append(flat, t)
		}
	}
	if hasConst && (c != 0 || len(flat) == 0) {
		flat = append(flat, Const{c})
	}
	switch len(flat) {
	case 0:
		return Const{0}
	case 1:
		return flat[0]
	}
	return Sum{Terms: flat}
}

// Mul composes expressions multiplicatively, flattening nested products and
// folding constants; multiplication by zero collapses the product.
func Mul(factors ...Expr) Expr {
	var flat []Expr
	c := 1.0
	hasConst := false
	for _, f := range factors {
		switch v := f.(type) {
		case nil:
		case Const:
			c *= v.Value
			hasConst = true
		case Prod:
			for _, inner := range v.Factors {
				if ic, ok := inner.(Const); ok {
					c *= ic.Value
					hasConst = true
				} else {
					flat = append(flat, inner)
				}
			}
		default:
			flat = append(flat, f)
		}
	}
	if hasConst && c == 0 {
		return Const{0}
	}
	if hasConst && (c != 1 || len(flat) == 0) {
		flat = append([]Expr{Const{c}}, flat...)
	}
	switch len(flat) {
	case 0:
		return Const{1}
	case 1:
		return flat[0]
	}
	return Prod{Factors: flat}
}

// DepGroup is one multiplicative parameter set: parameters appearing in the
// same product term of the normalized volume expression.
type DepGroup []string

// Structure is the dependency structure of a function: additive groups of
// multiplicative sets, deduplicated and sorted. The paper uses it for the
// reduced experiment design (Section A2) and the model search-space prior.
type Structure struct {
	Groups []DepGroup
}

// Params returns all parameters occurring in any group, sorted.
func (s Structure) Params() []string {
	set := make(map[string]bool)
	for _, g := range s.Groups {
		for _, p := range g {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Multiplicative reports whether parameters a and b occur together in any
// multiplicative group.
func (s Structure) Multiplicative(a, b string) bool {
	for _, g := range s.Groups {
		hasA, hasB := false, false
		for _, p := range g {
			if p == a {
				hasA = true
			}
			if p == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// AdditiveOnly reports whether no group couples two or more parameters:
// single-parameter models suffice and the experiment design can drop full
// cross products (Section A2).
func (s Structure) AdditiveOnly() bool {
	for _, g := range s.Groups {
		if len(g) > 1 {
			return false
		}
	}
	return true
}

// String renders the structure as e.g. "{p} + {size} + {p,size}".
func (s Structure) String() string {
	if len(s.Groups) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.Groups))
	for i, g := range s.Groups {
		parts[i] = "{" + strings.Join(g, ",") + "}"
	}
	return strings.Join(parts, " + ")
}

// maxNormTerms bounds distribution blow-up when normalizing products of
// sums; dependency structures beyond this size are collapsed conservatively
// into a single multiplicative group (an over-approximation, as the paper's
// analysis does for multi-label exit conditions).
const maxNormTerms = 256

// StructureOf normalizes e into a sum of products and extracts the
// per-term parameter sets.
func StructureOf(e Expr) Structure {
	terms := normalize(e)
	seen := make(map[string]bool)
	var st Structure
	for _, t := range terms {
		set := make(map[string]bool)
		for _, leaf := range t {
			leaf.params(set)
		}
		if len(set) == 0 {
			continue
		}
		g := make(DepGroup, 0, len(set))
		for p := range set {
			g = append(g, p)
		}
		sort.Strings(g)
		key := strings.Join(g, ",")
		if !seen[key] {
			seen[key] = true
			st.Groups = append(st.Groups, g)
		}
	}
	sort.Slice(st.Groups, func(i, j int) bool {
		return strings.Join(st.Groups[i], ",") < strings.Join(st.Groups[j], ",")
	})
	return st
}

// normalize returns e as a list of product terms (each a list of leaves).
func normalize(e Expr) [][]Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case Const:
		return [][]Expr{{v}}
	case Unknown:
		return [][]Expr{{v}}
	case Sum:
		var out [][]Expr
		for _, t := range v.Terms {
			out = append(out, normalize(t)...)
			if len(out) > maxNormTerms {
				return [][]Expr{{collapse(e)}}
			}
		}
		return out
	case Prod:
		out := [][]Expr{{}}
		for _, f := range v.Factors {
			ft := normalize(f)
			var next [][]Expr
			for _, a := range out {
				for _, b := range ft {
					term := make([]Expr, 0, len(a)+len(b))
					term = append(term, a...)
					term = append(term, b...)
					next = append(next, term)
				}
			}
			out = next
			if len(out) > maxNormTerms {
				return [][]Expr{{collapse(e)}}
			}
		}
		return out
	default:
		panic(fmt.Sprintf("loopmodel: unknown expr %T", e))
	}
}

// collapse over-approximates e as a single unknown over all its parameters.
func collapse(e Expr) Expr {
	return Unknown{Params: Params(e)}
}
