package loopmodel

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// LoopDeps supplies, per function and loop ID, the parameter names the taint
// analysis attached to the loop's exit conditions (empty for untainted).
type LoopDeps func(fn string, loopID int) []string

// StaticTrip supplies the statically resolved constant trip count of a loop
// (ok=false when the loop is not statically constant).
type StaticTrip func(fn string, loopID int) (count int64, ok bool)

// ExternVolume supplies the symbolic volume contribution of a call to a
// library function outside the module (nil when irrelevant). The library
// database uses this to inject analytic dependencies such as log(p) for
// collectives.
type ExternVolume func(callee string) Expr

// Volumes holds the per-function inclusive iteration volumes and their
// dependency structures for a whole module.
type Volumes struct {
	// ByFunc is the inclusive volume of each function: its own loop nests
	// plus the accumulated volumes of its callees (Theorem 1).
	ByFunc map[string]Expr
	// LocalByFunc is the function's own loop-nest volume without callees.
	LocalByFunc map[string]Expr
	// StructByFunc is the normalized dependency structure per function.
	StructByFunc map[string]Structure
	// RecursionWarnings names functions on call-graph cycles whose volumes
	// are over-approximated as unknown (Section 4.1's warning).
	RecursionWarnings []string
}

// Compute derives volumes for every function in m bottom-up over the call
// graph. deps and trips may be nil (then every non-constant loop counts as
// an unknown with no parameters); externVol may be nil.
func Compute(m *ir.Module, deps LoopDeps, trips StaticTrip, externVol ExternVolume) *Volumes {
	cg := cfg.BuildCallGraph(m)
	rec := cg.FindRecursion()
	recSet := make(map[string]bool, len(rec))
	for _, r := range rec {
		recSet[r] = true
	}
	sort.Strings(rec)

	v := &Volumes{
		ByFunc:            make(map[string]Expr, len(m.FuncList)),
		LocalByFunc:       make(map[string]Expr, len(m.FuncList)),
		StructByFunc:      make(map[string]Structure, len(m.FuncList)),
		RecursionWarnings: rec,
	}

	order := cfg.TopoOrder(m, cg)
	for _, fn := range order {
		if recSet[fn.Name] {
			// Over-approximate recursive functions: unknown over all params
			// of their loops.
			set := make(map[string]bool)
			g := cfg.Build(fn)
			forest := cfg.FindLoops(g)
			for _, l := range forest.Loops {
				if deps != nil {
					for _, p := range deps(fn.Name, l.ID) {
						set[p] = true
					}
				}
			}
			var ps []string
			for p := range set {
				ps = append(ps, p)
			}
			sort.Strings(ps)
			e := Expr(Unknown{Params: ps})
			v.ByFunc[fn.Name] = e
			v.LocalByFunc[fn.Name] = e
			v.StructByFunc[fn.Name] = StructureOf(e)
			continue
		}
		incl, local := computeFunc(fn, v.ByFunc, deps, trips, externVol)
		v.ByFunc[fn.Name] = incl
		v.LocalByFunc[fn.Name] = local
		v.StructByFunc[fn.Name] = StructureOf(incl)
	}
	return v
}

// computeFunc returns the inclusive and local volumes of fn given already
// computed callee volumes.
func computeFunc(fn *ir.Function, memo map[string]Expr, deps LoopDeps, trips StaticTrip, externVol ExternVolume) (incl, local Expr) {
	g := cfg.Build(fn)
	forest := cfg.FindLoops(g)

	// Calls attributed to their innermost containing loop (nil = top level).
	callsIn := make(map[*cfg.Loop][]Expr)
	for bi, blk := range fn.Blocks {
		if !g.Reachable(bi) {
			continue
		}
		owner := forest.InnermostAt[bi]
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			if in.Op != ir.OpCall {
				continue
			}
			var ce Expr
			if e, ok := memo[in.Sym]; ok {
				ce = e
			} else if externVol != nil {
				ce = externVol(in.Sym)
			}
			if ce != nil {
				callsIn[owner] = append(callsIn[owner], ce)
			}
		}
	}

	countOf := func(l *cfg.Loop) Expr {
		if trips != nil {
			if c, ok := trips(fn.Name, l.ID); ok {
				if c < 0 {
					c = 1
				}
				return Const{Value: float64(c)}
			}
		}
		var ps []string
		if deps != nil {
			ps = deps(fn.Name, l.ID)
		}
		return Unknown{Params: append([]string(nil), ps...)}
	}

	// volWith aggregates a loop: count(L) * (1 + children + calls).
	var volLoop func(l *cfg.Loop) Expr
	volLoop = func(l *cfg.Loop) Expr {
		body := []Expr{Const{Value: 1}}
		for _, c := range l.Children {
			body = append(body, volLoop(c))
		}
		body = append(body, callsIn[l]...)
		return Mul(countOf(l), Add(body...))
	}

	// volWithCalls / volLocal differ only in whether callee volumes join in.
	topTerms := []Expr{Const{Value: 1}}
	localTerms := []Expr{Const{Value: 1}}
	for _, r := range forest.Roots {
		topTerms = append(topTerms, volLoop(r))
	}
	topTerms = append(topTerms, callsIn[nil]...)

	var volLoopLocal func(l *cfg.Loop) Expr
	volLoopLocal = func(l *cfg.Loop) Expr {
		body := []Expr{Const{Value: 1}}
		for _, c := range l.Children {
			body = append(body, volLoopLocal(c))
		}
		return Mul(countOf(l), Add(body...))
	}
	for _, r := range forest.Roots {
		localTerms = append(localTerms, volLoopLocal(r))
	}

	return Add(topTerms...), Add(localTerms...)
}

// RequiredExperiments computes the size of the experiment design for the
// given structure when each parameter takes points values: additive-only
// structures need per-parameter sweeps sharing one base point, whereas any
// multiplicative coupling requires the full cross product over the coupled
// group (Section A2's p×s vs p+s example).
func RequiredExperiments(st Structure, points map[string]int) int {
	if len(st.Groups) == 0 {
		return 1
	}
	// Partition parameters into connected components of multiplicative
	// coupling; each component costs the product of its point counts, and
	// components combine additively sharing a common base point.
	params := st.Params()
	parent := make(map[string]string, len(params))
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range params {
		parent[p] = p
	}
	for _, g := range st.Groups {
		for i := 1; i < len(g); i++ {
			parent[find(g[i])] = find(g[0])
		}
	}
	comp := make(map[string][]string)
	for _, p := range params {
		r := find(p)
		comp[r] = append(comp[r], p)
	}
	total := 1 // shared base point
	for _, members := range comp {
		prod := 1
		for _, p := range members {
			n := points[p]
			if n <= 0 {
				n = 1
			}
			prod *= n
		}
		total += prod - 1 // component sweep reuses the base point
	}
	return total
}

// FullFactorialExperiments is the naive design size: the cross product over
// all parameters (what a black-box modeler must run without the prior).
func FullFactorialExperiments(st Structure, points map[string]int) int {
	total := 1
	for _, p := range st.Params() {
		n := points[p]
		if n <= 0 {
			n = 1
		}
		total *= n
	}
	return total
}
