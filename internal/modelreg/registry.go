package modelreg

import (
	"container/list"
	"sync"

	"repro/internal/diskcache"
)

// Registry is the content-addressed model store: finished ModelSets
// keyed by Key (spec digest + design digest). Each distinct key is built
// at most once — concurrent requests for the same key join the in-flight
// build singleflight-style — and completed sets are immutable and shared
// read-only, so a cache hit answers POST /v1/models without touching the
// interpreter or the fitter at all. An LRU policy bounds residency;
// build errors are never cached (the next request retries).
type Registry struct {
	mu sync.Mutex
	// capacity bounds completed entries; <= 0 means unbounded.
	capacity int
	// order is the recency list, front = most recently used; values are
	// *regEntry.
	order   *list.List
	entries map[string]*list.Element
	// inflight tracks keys currently being extracted; joiners wait on
	// the build instead of duplicating a full sweep.
	inflight map[string]*regFlight

	// disk is the optional persistent tier: finished sets are written
	// through on build, and a restarted process answers from disk without
	// re-running the sweep or the fitter at all. Nil disables it.
	disk *diskcache.Layer

	hits      uint64
	misses    uint64
	diskHits  uint64
	evictions uint64
}

type regEntry struct {
	key string
	ms  *ModelSet
}

type regFlight struct {
	done chan struct{}
	ms   *ModelSet
	err  error
}

// RegistryStats is a point-in-time snapshot of the registry counters.
type RegistryStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// DiskHits counts sets served from the persistent tier with no
	// rebuild: the whole sweep-and-fit was skipped. Not counted as
	// misses.
	DiskHits  uint64 `json:"disk_hits"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// NewRegistry returns a registry bounded to capacity completed model
// sets (<= 0 means unbounded).
func NewRegistry(capacity int) *Registry {
	return &Registry{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*regFlight),
	}
}

// Get returns the model set stored under key, building it at most once
// per content address via build no matter how many goroutines ask
// concurrently. The returned bool reports whether the set came from the
// cache (true) or from this call's build (false); joiners of an
// in-flight build count as cache hits, like the PreparedCache.
func (r *Registry) Get(key string, build func() (*ModelSet, error)) (*ModelSet, bool, error) {
	r.mu.Lock()
	if el, ok := r.entries[key]; ok {
		r.order.MoveToFront(el)
		r.hits++
		ms := el.Value.(*regEntry).ms
		r.mu.Unlock()
		return ms, true, nil
	}
	if fl, ok := r.inflight[key]; ok {
		r.hits++
		r.mu.Unlock()
		<-fl.done
		return fl.ms, true, fl.err
	}
	fl := &regFlight{done: make(chan struct{})}
	r.inflight[key] = fl
	disk := r.disk
	r.mu.Unlock()

	// The persistent tier holds the finished artifact itself, so a warm
	// entry is served with zero rebuilds — no sweep, no fit. Joiners of
	// this flight share the disk read like they would share a build.
	fromDisk := false
	if v, ok := disk.Get(key); ok {
		fl.ms = v.(*ModelSet)
		fromDisk = true
	} else {
		fl.ms, fl.err = build()
	}

	r.mu.Lock()
	delete(r.inflight, key)
	if fl.err == nil {
		r.insertLocked(key, fl.ms)
		if fromDisk {
			r.diskHits++
		} else {
			r.misses++
		}
	} else {
		r.misses++
	}
	r.mu.Unlock()
	if fl.err == nil && !fromDisk {
		disk.Put(key, fl.ms)
	}
	close(fl.done)
	return fl.ms, fromDisk, fl.err
}

// SetDisk attaches the persistent tier; call before serving traffic.
func (r *Registry) SetDisk(disk *diskcache.Layer) {
	r.mu.Lock()
	r.disk = disk
	r.mu.Unlock()
}

// DiskStats snapshots the persistent tier's store counters (zero when
// persistence is disabled).
func (r *Registry) DiskStats() diskcache.Stats {
	r.mu.Lock()
	disk := r.disk
	r.mu.Unlock()
	return disk.Stats()
}

// insertLocked files a completed build at the front of the recency list
// and evicts from the back past capacity. Caller holds mu.
func (r *Registry) insertLocked(key string, ms *ModelSet) {
	if el, ok := r.entries[key]; ok {
		r.order.MoveToFront(el)
		return
	}
	r.entries[key] = r.order.PushFront(&regEntry{key: key, ms: ms})
	for r.capacity > 0 && r.order.Len() > r.capacity {
		last := r.order.Back()
		if last == nil {
			break
		}
		r.order.Remove(last)
		delete(r.entries, last.Value.(*regEntry).key)
		r.evictions++
	}
}

// Lookup returns the resident model set for key without building,
// touching recency but not the hit/miss counters (it backs the GET
// endpoint, where a miss is a 404, not a build trigger).
func (r *Registry) Lookup(key string) (*ModelSet, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[key]
	if !ok {
		return nil, false
	}
	r.order.MoveToFront(el)
	return el.Value.(*regEntry).ms, true
}

// Keys returns the resident content addresses in most- to
// least-recently-used order.
func (r *Registry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*regEntry).key)
	}
	return out
}

// Stats snapshots the counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Hits:      r.hits,
		Misses:    r.misses,
		DiskHits:  r.diskHits,
		Evictions: r.evictions,
		Entries:   r.order.Len(),
		Capacity:  r.capacity,
	}
}
