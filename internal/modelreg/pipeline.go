package modelreg

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extrap"
	"repro/internal/measure"
	"repro/internal/noise"
	"repro/internal/runner"
)

// Event is one progress record of a running pipeline. Events stream to
// the observer in design order (the pipeline consumes results serially)
// and carry only JSON-stable fields, so the service can forward them to
// clients as NDJSON lines verbatim.
type Event struct {
	// Type is "taint" (white-box run finished), "point" (one design
	// point consumed), or "refit" (an incremental batch refit ran).
	Type string `json:"type"`
	// Relevant and Functions report the taint event: instrumented
	// function count and total spec functions.
	Relevant  int `json:"relevant,omitempty"`
	Functions int `json:"functions,omitempty"`
	// Index and Config identify a consumed design point; Instructions is
	// the dynamic cost of its tainted run. Index has no omitempty:
	// design point 0 is a legitimate value and wire consumers correlate
	// by it.
	Index        int         `json:"index"`
	Config       apps.Config `json:"config,omitempty"`
	Instructions int64       `json:"instructions,omitempty"`
	// Points of Total design points have been consumed so far.
	Points int `json:"points,omitempty"`
	Total  int `json:"total,omitempty"`
	// Fitted and Failed count the interim refit outcomes.
	Fitted int `json:"fitted,omitempty"`
	Failed int `json:"failed,omitempty"`
}

// fnMetric keys one dataset of the accumulating pipeline.
type fnMetric struct {
	fn     string
	metric string
}

// Pipeline incrementally turns streamed sweep results into a ModelSet.
// Construction runs the white-box taint analysis once (at the smallest
// design point); every Consume call folds one design point's
// measurements into the per-function datasets and refits when the
// configured batch fills; Finish runs the final fits and assembles the
// artifact.
//
// A Pipeline is single-consumer: Consume and Finish must be called from
// one goroutine (runner.SweepFitCtx's emit contract guarantees this).
// It implements the sink side of runner.SweepFitCtx.
type Pipeline struct {
	cfg     Config
	prep    *core.Prepared
	workers int
	onEvent func(Event)

	taint        *core.Report
	funcs        map[string]bool // modeled functions (taint-relevant spec functions)
	instrumented map[string]bool
	clus         *cluster.Runner

	cfgs   []apps.Config
	data   map[fnMetric]*extrap.Dataset
	points int
}

// NewPipeline validates cfg against the prepared spec, runs the taint
// analysis at the smallest design point, and returns a pipeline ready to
// consume the sweep. workers bounds the fitting fan-out (<= 0 means
// GOMAXPROCS); onEvent, when non-nil, observes progress.
func NewPipeline(p *core.Prepared, cfg Config, workers int, onEvent func(Event)) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(p.Spec); err != nil {
		return nil, err
	}
	pl := &Pipeline{
		cfg:     cfg,
		prep:    p,
		workers: workers,
		onEvent: onEvent,
		data:    make(map[fnMetric]*extrap.Dataset),
		cfgs:    cfg.design(p.Spec).Configs(),
	}

	// White-box half: one taint run delivers the parameter-dependence
	// proof (priors), the relevance set (instrumentation filter), and
	// the symbolic volumes the report cross-references.
	rep, err := p.Analyze(cfg.baseConfig())
	if err != nil {
		return nil, fmt.Errorf("modelreg: taint run: %w", err)
	}
	pl.taint = rep
	pl.funcs = rep.Relevant
	pl.instrumented = measure.Select(p.Spec, measure.FilterTaint, rep.Relevant)
	pl.clus = cluster.NewRunner(p.Spec)
	pl.emit(Event{Type: "taint", Relevant: len(rep.Relevant),
		Functions: len(p.Spec.Funcs), Total: len(pl.cfgs)})
	return pl, nil
}

// Configs returns the design's configuration grid in sweep order — the
// exact slice to hand runner.SweepFitCtx alongside Consume.
func (pl *Pipeline) Configs() []apps.Config { return pl.cfgs }

func (pl *Pipeline) emit(ev Event) {
	if pl.onEvent != nil {
		pl.onEvent(ev)
	}
}

// Sample is the distilled observation one design point contributes to
// the fitter: everything ConsumeSample needs, and nothing that cannot
// cross a process boundary. A coordinator merging shard results from
// remote workers reconstructs Samples from wire records (the full
// core.Report never travels); the local path distills them from runner
// results via ResultSample. The two must agree — same inputs, same
// Sample — for distributed extraction to reproduce single-node models.
type Sample struct {
	// Index is the design-order position of this observation.
	Index int
	// Config is the fully-merged configuration analyzed at this point.
	Config apps.Config
	// Iterations sums the tainted run's loop iterations per function
	// (SumLoopIterations of the report).
	Iterations map[string]int64
	// Instructions is the dynamic cost of the tainted run.
	Instructions int64
}

// SumLoopIterations folds a report's per-loop engine records into
// per-function totals — the MetricIterations observation of one design
// point.
func SumLoopIterations(rep *core.Report) map[string]int64 {
	iters := make(map[string]int64)
	for k, rec := range rep.Engine.Loops {
		iters[k.Func] += rec.Iterations
	}
	return iters
}

// ResultSample distills a streamed sweep result into its Sample. A
// failed result returns the error the pipeline aborts the stream with —
// a missing design point would silently skew every model the sweep was
// meant to produce.
func ResultSample(res runner.Result) (Sample, error) {
	if res.Err != nil {
		return Sample{}, fmt.Errorf("modelreg: design point %d (%v): %w", res.Index, res.Config, res.Err)
	}
	return Sample{
		Index:        res.Index,
		Config:       res.Config,
		Iterations:   SumLoopIterations(res.Report),
		Instructions: res.Report.Instructions,
	}, nil
}

// Consume folds one streamed sweep result into the datasets: the tainted
// run's per-function loop iteration counts (MetricIterations) and the
// synthetic instrumented measurement at the same configuration
// (MetricSeconds). When a full batch of new points has accumulated, the
// primary-metric models are refit incrementally. An analysis failure
// aborts the stream.
func (pl *Pipeline) Consume(res runner.Result) error {
	s, err := ResultSample(res)
	if err != nil {
		return err
	}
	return pl.ConsumeSample(s)
}

// ConsumeSample folds one design point's distilled observation into the
// datasets. It is the process-boundary-friendly half of Consume: the
// MetricSeconds measurement is synthesized here — deterministically from
// the seed and the sample's index, never from who computed the sample —
// so a coordinator consuming remote samples produces the exact datasets
// a single node would.
func (pl *Pipeline) ConsumeSample(s Sample) error {
	pv := make(map[string]float64, len(pl.cfg.Params))
	for _, prm := range pl.cfg.Params {
		pv[prm] = s.Config[prm]
	}

	for _, metric := range pl.cfg.Metrics {
		switch metric {
		case MetricIterations:
			for fn := range pl.funcs {
				pl.dataset(fn, metric).Add(pv, float64(s.Iterations[fn]))
			}
		case MetricSeconds:
			// Each design point derives its own noise stream from the
			// seed and its index, so results do not depend on completion
			// order and concurrent sweeps reproduce sequential ones.
			src := noise.New(pl.cfg.Seed+int64(s.Index+1)*1_000_003, pl.cfg.RelNoise, 0)
			prof, err := pl.clus.Measure(s.Config, pl.instrumented, pl.cfg.Reps, src)
			if err != nil {
				return fmt.Errorf("modelreg: measure design point %d: %w", s.Index, err)
			}
			for fn := range pl.funcs {
				if vals, ok := prof.FuncSeconds[fn]; ok {
					pl.dataset(fn, metric).Add(pv, vals...)
				}
			}
		}
	}

	pl.points++
	pl.emit(Event{Type: "point", Index: s.Index, Config: s.Config,
		Instructions: s.Instructions, Points: pl.points, Total: len(pl.cfgs)})

	if pl.cfg.Batch > 0 && pl.points%pl.cfg.Batch == 0 && pl.points < len(pl.cfgs) {
		pl.refit()
	}
	return nil
}

func (pl *Pipeline) dataset(fn, metric string) *extrap.Dataset {
	k := fnMetric{fn: fn, metric: metric}
	d := pl.data[k]
	if d == nil {
		d = extrap.NewDataset(pl.cfg.Params...)
		pl.data[k] = d
	}
	return d
}

// refit runs the incremental mid-sweep fit: hybrid models of the primary
// metric over the points so far. Its purpose is pipelining — consumers
// watching the event stream see models sharpen while the sweep tail is
// still running — so it fits only the ranking metric; Finish always
// refits everything on the complete data.
func (pl *Pipeline) refit() {
	metric := pl.cfg.Metrics[0]
	var reqs []extrap.Request
	for _, fn := range pl.sortedFuncs() {
		if d := pl.data[fnMetric{fn: fn, metric: metric}]; d != nil {
			reqs = append(reqs, extrap.Request{
				Name:    fn,
				Dataset: d,
				Prior:   pl.taint.Prior(fn, pl.cfg.Params),
			})
		}
	}
	fits := extrap.FitAll(reqs, extrap.DefaultOptions(), pl.workers)
	ok, failed := 0, 0
	for _, f := range fits {
		if f.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	pl.emit(Event{Type: "refit", Points: pl.points, Total: len(pl.cfgs),
		Fitted: ok, Failed: failed})
}

func (pl *Pipeline) sortedFuncs() []string {
	out := make([]string, 0, len(pl.funcs))
	for fn := range pl.funcs {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// Finish runs the final fits over the complete datasets and assembles
// the ranked ModelSet. Per-function fit failures do not abort the set:
// they surface as typed extrap.FitError messages on the affected
// MetricModel, never as silent zero-value models.
func (pl *Pipeline) Finish() (*ModelSet, error) {
	if pl.points == 0 {
		return nil, fmt.Errorf("modelreg: no design points consumed")
	}
	funcs := pl.sortedFuncs()
	opt := extrap.DefaultOptions()

	// Two requests per (function, metric): the taint-prior hybrid fit
	// and the unrestricted black-box fit whose disagreement powers the
	// attribution.
	var reqs []extrap.Request
	var slots []fitSlot
	for _, fn := range funcs {
		for _, metric := range pl.cfg.Metrics {
			d := pl.data[fnMetric{fn: fn, metric: metric}]
			if d == nil || len(d.Points) == 0 {
				continue
			}
			slots = append(slots, fitSlot{fn: fn, metric: metric, hybrid: len(reqs), blackBox: len(reqs) + 1})
			reqs = append(reqs,
				extrap.Request{Name: fn, Dataset: d, Prior: pl.taint.Prior(fn, pl.cfg.Params)},
				extrap.Request{Name: fn, Dataset: d},
			)
		}
	}
	fits := extrap.FitAll(reqs, opt, pl.workers)

	byFn := make(map[string]*FunctionModels, len(funcs))
	for _, s := range slots {
		fm := byFn[s.fn]
		if fm == nil {
			fm = &FunctionModels{Function: s.fn, Kind: pl.kind(s.fn), Deps: pl.taint.FuncDeps[s.fn]}
			if len(fm.Deps) > 0 && pl.taint.Volumes.ByFunc[s.fn] != nil {
				fm.Volume = pl.taint.Volumes.ByFunc[s.fn].String()
			}
			byFn[s.fn] = fm
		}
		d := pl.data[fnMetric{fn: s.fn, metric: s.metric}]
		mm := MetricModel{
			Metric:   s.metric,
			Points:   len(d.Points),
			MaxCoV:   finiteOr(d.MaxCoV(), -1),
			Reliable: d.Reliable(),
		}
		if f := fits[s.hybrid]; f.Err != nil {
			mm.HybridErr = f.Err.Error()
		} else {
			mm.Hybrid = newModelFit(d, f.Model)
		}
		if f := fits[s.blackBox]; f.Err != nil {
			mm.BlackBoxErr = f.Err.Error()
		} else {
			mm.BlackBox = newModelFit(d, f.Model)
		}
		mm.Attribution = attribution(pl.cfg.Params, fm.Deps, mm.Hybrid, mm.BlackBox)
		fm.Metrics = append(fm.Metrics, mm)
	}

	ms := &ModelSet{
		App:          pl.cfg.App,
		SpecDigest:   pl.prep.Digest,
		DesignDigest: DesignDigest(pl.cfg),
		Key:          Key(pl.prep.Digest, pl.cfg),
		Params:       pl.cfg.Params,
		Metrics:      pl.cfg.Metrics,
		Points:       pl.points,
		Reps:         pl.cfg.Reps,
		TaintConfig:  pl.cfg.baseConfig(),
		RankConfig:   pl.cfg.largestConfig(),
	}

	// Rank by predicted primary-metric contribution at the largest
	// design point: the report leads with the functions that will
	// dominate at scale, which is what the models are for.
	rankAt := make(map[string]float64, len(ms.Params))
	for _, prm := range ms.Params {
		rankAt[prm] = ms.RankConfig[prm]
	}
	primary := pl.cfg.Metrics[0]
	total := 0.0
	pred := make(map[string]float64, len(byFn))
	// Sum in sorted function order: float addition is order-sensitive
	// and shares must not depend on map iteration.
	for _, fn := range funcs {
		fm := byFn[fn]
		if fm == nil {
			continue
		}
		if mm := fm.Metric(primary); mm != nil && mm.Hybrid != nil {
			if v := pl.evalHybrid(fits, slots, fn, primary, rankAt); v > 0 {
				pred[fn] = v
				total += v
			}
		}
	}
	for _, fn := range funcs {
		fm := byFn[fn]
		if fm == nil {
			continue
		}
		if total > 0 {
			fm.Share = finiteOr(pred[fn]/total, 0)
		}
		ms.Functions = append(ms.Functions, *fm)
	}
	sortFunctions(ms.Functions)
	return ms, nil
}

// fitSlot maps one (function, metric) pair to its hybrid and black-box
// request indices of the final batch fit.
type fitSlot struct {
	fn, metric string
	hybrid     int
	blackBox   int
}

// evalHybrid evaluates the hybrid model of (fn, metric) at params.
func (pl *Pipeline) evalHybrid(fits []extrap.Fit, slots []fitSlot, fn, metric string, params map[string]float64) float64 {
	for _, s := range slots {
		if s.fn == fn && s.metric == metric {
			if f := fits[s.hybrid]; f.Err == nil && f.Model != nil {
				return f.Model.Eval(params)
			}
			return 0
		}
	}
	return 0
}

// kind names the census classification of fn ("mpi" for library
// routines, which are not spec functions).
func (pl *Pipeline) kind(fn string) string {
	if f := pl.prep.Spec.FuncByName(fn); f != nil {
		return f.Kind.String()
	}
	return "mpi"
}

// SweepFunc executes a modeling design and feeds one Sample per
// configuration, in design order, to consume. A non-nil error from
// consume must abort the sweep and be returned. Implementations: the
// local runner (LocalSweep) and the service coordinator's distributed
// shard merge.
type SweepFunc func(ctx context.Context, cfgs []apps.Config, consume func(Sample) error) error

// LocalSweep adapts the in-process runner to a SweepFunc: the design
// streams through r's pipelined sweep and every result is distilled via
// ResultSample.
func LocalSweep(r *runner.Runner, p *core.Prepared) SweepFunc {
	return func(ctx context.Context, cfgs []apps.Config, consume func(Sample) error) error {
		return r.SweepFitCtx(ctx, p, cfgs, func(res runner.Result) error {
			s, err := ResultSample(res)
			if err != nil {
				return err
			}
			return consume(s)
		})
	}
}

// ExtractWith runs the whole model-extraction pipeline over an arbitrary
// sweep executor: build the pipeline (one local taint run), hand the
// design to sweep, fold every sample into the incremental fitter, and
// return the finished ModelSet. The executor controls only where design
// points run; fitting, measurement synthesis, and ranking always happen
// here, so any executor that delivers faithful samples in design order
// produces the identical artifact. workers bounds the fitting fan-out;
// onEvent (optional) observes progress.
func ExtractWith(ctx context.Context, sweep SweepFunc, workers int, p *core.Prepared, cfg Config, onEvent func(Event)) (*ModelSet, error) {
	pl, err := NewPipeline(p, cfg, workers, onEvent)
	if err != nil {
		return nil, err
	}
	if err := sweep(ctx, pl.Configs(), pl.ConsumeSample); err != nil {
		return nil, err
	}
	return pl.Finish()
}

// Extract runs the whole model-extraction pipeline in one call: expand
// the design, stream the sweep through r (pipelined, in design order),
// feed every result into an incremental fitting pipeline, and return
// the finished ModelSet. onEvent (optional) observes progress.
func Extract(ctx context.Context, r *runner.Runner, p *core.Prepared, cfg Config, onEvent func(Event)) (*ModelSet, error) {
	return ExtractWith(ctx, LocalSweep(r, p), r.Workers, p, cfg, onEvent)
}
