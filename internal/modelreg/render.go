package modelreg

import (
	"fmt"
	"html/template"
	"sort"
	"strings"
)

// RenderMarkdown renders the model set as the human-readable report: a
// header with provenance (digests, design, taint configuration), the
// ranked per-function model table for the primary metric, the parameter
// attribution of every taint/black-box disagreement, and per-metric fit
// diagnostics. The output is deterministic for a given ModelSet, which
// is what lets CI pin it with a golden snapshot.
func RenderMarkdown(ms *ModelSet) string {
	var b strings.Builder
	primary := ms.primaryMetric()

	fmt.Fprintf(&b, "# Performance models — %s\n\n", orDash(ms.App))
	fmt.Fprintf(&b, "- spec digest: `%s`\n", short(ms.SpecDigest))
	fmt.Fprintf(&b, "- design digest: `%s`\n", short(ms.DesignDigest))
	fmt.Fprintf(&b, "- model key: `%s`\n", short(ms.Key))
	fmt.Fprintf(&b, "- parameters: %s\n", strings.Join(ms.Params, ", "))
	fmt.Fprintf(&b, "- design: %d points × %d repetitions; metrics: %s\n",
		ms.Points, ms.Reps, strings.Join(ms.Metrics, ", "))
	fmt.Fprintf(&b, "- taint run: %s\n", configString(ms.TaintConfig))
	fmt.Fprintf(&b, "- ranked at: %s\n", configString(ms.RankConfig))
	fmt.Fprintf(&b, "- functions modeled: %d; noise-induced dependencies pruned by the taint prior: %d\n",
		len(ms.Functions), ms.PrunedCount())

	fmt.Fprintf(&b, "\n## Ranked models (%s)\n\n", primary)
	b.WriteString("| # | function | kind | taint deps | model | adj R² | CV | share |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, fn := range ms.Functions {
		mm := fn.Metric(primary)
		if mm == nil {
			continue
		}
		expr, adj, cv := "fit failed: "+mm.HybridErr, "—", "—"
		if mm.Hybrid != nil {
			expr = mm.Hybrid.Expr
			adj = fmt.Sprintf("%.3f", mm.Hybrid.AdjR2)
			cv = diagString(mm.Hybrid.CV)
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | `%s` | %s | %s | %s |\n",
			fn.Rank, fn.Function, fn.Kind, orDash(strings.Join(fn.Deps, ", ")),
			expr, adj, cv, shareString(fn.Share))
	}

	b.WriteString("\n## Parameter attribution\n\n")
	b.WriteString("Disagreements between the black-box fit and the taint proof\n")
	b.WriteString("(confirmed/independent parameters are omitted):\n\n")
	b.WriteString("| function | metric | param | status | black-box model |\n")
	b.WriteString("|---|---|---|---|---|\n")
	rows := 0
	for _, fn := range ms.Functions {
		for _, mm := range fn.Metrics {
			for _, a := range mm.Attribution {
				if a.Status != AttrPrunedNoise && a.Status != AttrAllowedUnused {
					continue
				}
				bb := "—"
				if mm.BlackBox != nil {
					bb = "`" + mm.BlackBox.Expr + "`"
				}
				fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
					fn.Function, mm.Metric, a.Param, a.Status, bb)
				rows++
			}
		}
	}
	if rows == 0 {
		b.WriteString("| — | — | — | — | — |\n")
	}

	b.WriteString("\n## Fit diagnostics\n\n")
	b.WriteString("| function | metric | points | max CoV | reliable | hybrid SMAPE | hybrid CV | black-box model |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, fn := range ms.Functions {
		for _, mm := range fn.Metrics {
			smape, cv := "—", "—"
			if mm.Hybrid != nil {
				smape = diagString(mm.Hybrid.SMAPE)
				cv = diagString(mm.Hybrid.CV)
			}
			bb := "fit failed: " + mm.BlackBoxErr
			if mm.BlackBox != nil {
				bb = "`" + mm.BlackBox.Expr + "`"
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %s | %v | %s | %s | %s |\n",
				fn.Function, mm.Metric, mm.Points, diagString(mm.MaxCoV),
				mm.Reliable, smape, cv, bb)
		}
	}
	return b.String()
}

// primaryMetric is the ranking metric (the first of Metrics).
func (ms *ModelSet) primaryMetric() string {
	if len(ms.Metrics) > 0 {
		return ms.Metrics[0]
	}
	return MetricSeconds
}

// configString renders a configuration deterministically (sorted keys).
func configString(cfg map[string]float64) string {
	if len(cfg) == 0 {
		return "—"
	}
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, cfg[k]))
	}
	return strings.Join(parts, " ")
}

// short abbreviates a digest for display.
func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return orDash(digest)
}

// diagString renders a diagnostic value; negatives mean "not
// computable" (sanitized infinities) and render as a dash.
func diagString(v float64) string {
	if v < 0 {
		return "—"
	}
	return fmt.Sprintf("%.4g", v)
}

func shareString(v float64) string {
	if v <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

// htmlPage is the self-contained report template: inline CSS, no
// external assets, so the single file travels as a CI artifact.
var htmlPage = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Performance models — {{.App}}</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }
  h1, h2 { line-height: 1.2; }
  table { border-collapse: collapse; width: 100%; margin: 1rem 0; }
  th, td { border: 1px solid #d0d0d0; padding: 0.3rem 0.55rem; text-align: left; vertical-align: top; }
  th { background: #f2f2f2; }
  code { font: 12px/1.4 ui-monospace, monospace; background: #f6f6f6; padding: 0.1rem 0.25rem; border-radius: 3px; }
  .meta td:first-child { font-weight: 600; white-space: nowrap; }
  .num { text-align: right; font-variant-numeric: tabular-nums; }
  .status-pruned-noise { color: #8a2a00; font-weight: 600; }
  .status-allowed-unused { color: #555; }
  .unreliable { color: #8a2a00; }
</style>
</head>
<body>
<h1>Performance models — {{.App}}</h1>
<table class="meta">
<tr><td>spec digest</td><td><code>{{.SpecDigest}}</code></td></tr>
<tr><td>design digest</td><td><code>{{.DesignDigest}}</code></td></tr>
<tr><td>model key</td><td><code>{{.Key}}</code></td></tr>
<tr><td>parameters</td><td>{{.ParamsJoined}}</td></tr>
<tr><td>design</td><td>{{.Points}} points × {{.Reps}} repetitions; metrics: {{.MetricsJoined}}</td></tr>
<tr><td>taint run</td><td>{{.TaintConfig}}</td></tr>
<tr><td>ranked at</td><td>{{.RankConfig}}</td></tr>
<tr><td>pruned dependencies</td><td>{{.Pruned}}</td></tr>
</table>

<h2>Ranked models ({{.Primary}})</h2>
<table>
<tr><th>#</th><th>function</th><th>kind</th><th>taint deps</th><th>model</th><th>adj R²</th><th>CV</th><th>share</th></tr>
{{range .Ranked}}<tr><td class="num">{{.Rank}}</td><td>{{.Function}}</td><td>{{.Kind}}</td><td>{{.Deps}}</td><td><code>{{.Expr}}</code></td><td class="num">{{.AdjR2}}</td><td class="num">{{.CV}}</td><td class="num">{{.Share}}</td></tr>
{{end}}</table>

<h2>Parameter attribution</h2>
<p>Disagreements between the black-box fit and the taint proof
(confirmed/independent parameters are omitted):</p>
<table>
<tr><th>function</th><th>metric</th><th>param</th><th>status</th><th>black-box model</th></tr>
{{range .Attribution}}<tr><td>{{.Function}}</td><td>{{.Metric}}</td><td>{{.Param}}</td><td class="status-{{.Status}}">{{.Status}}</td><td><code>{{.BlackBox}}</code></td></tr>
{{end}}</table>

<h2>Fit diagnostics</h2>
<table>
<tr><th>function</th><th>metric</th><th>points</th><th>max CoV</th><th>reliable</th><th>hybrid SMAPE</th><th>hybrid CV</th><th>black-box model</th></tr>
{{range .Diagnostics}}<tr><td>{{.Function}}</td><td>{{.Metric}}</td><td class="num">{{.Points}}</td><td class="num">{{.MaxCoV}}</td><td{{if not .Reliable}} class="unreliable"{{end}}>{{.Reliable}}</td><td class="num">{{.SMAPE}}</td><td class="num">{{.CV}}</td><td><code>{{.BlackBox}}</code></td></tr>
{{end}}</table>
</body>
</html>
`))

// htmlData flattens a ModelSet into template-friendly rows.
type htmlData struct {
	App           string
	SpecDigest    string
	DesignDigest  string
	Key           string
	ParamsJoined  string
	MetricsJoined string
	Points, Reps  int
	TaintConfig   string
	RankConfig    string
	Pruned        int
	Primary       string
	Ranked        []htmlRankedRow
	Attribution   []htmlAttrRow
	Diagnostics   []htmlDiagRow
}

type htmlRankedRow struct {
	Rank                       int
	Function, Kind, Deps, Expr string
	AdjR2, CV, Share           string
}

type htmlAttrRow struct {
	Function, Metric, Param, Status, BlackBox string
}

type htmlDiagRow struct {
	Function, Metric    string
	Points              int
	MaxCoV              string
	Reliable            bool
	SMAPE, CV, BlackBox string
}

// RenderHTML renders the model set as one self-contained HTML page
// (inline styles, no external assets) carrying the same content as the
// Markdown report.
func RenderHTML(ms *ModelSet) string {
	primary := ms.primaryMetric()
	data := htmlData{
		App:           orDash(ms.App),
		SpecDigest:    ms.SpecDigest,
		DesignDigest:  ms.DesignDigest,
		Key:           ms.Key,
		ParamsJoined:  strings.Join(ms.Params, ", "),
		MetricsJoined: strings.Join(ms.Metrics, ", "),
		Points:        ms.Points,
		Reps:          ms.Reps,
		TaintConfig:   configString(ms.TaintConfig),
		RankConfig:    configString(ms.RankConfig),
		Pruned:        ms.PrunedCount(),
		Primary:       primary,
	}
	for _, fn := range ms.Functions {
		mm := fn.Metric(primary)
		if mm != nil {
			row := htmlRankedRow{
				Rank: fn.Rank, Function: fn.Function, Kind: fn.Kind,
				Deps:  orDash(strings.Join(fn.Deps, ", ")),
				Expr:  "fit failed: " + mm.HybridErr,
				AdjR2: "—", CV: "—", Share: shareString(fn.Share),
			}
			if mm.Hybrid != nil {
				row.Expr = mm.Hybrid.Expr
				row.AdjR2 = fmt.Sprintf("%.3f", mm.Hybrid.AdjR2)
				row.CV = diagString(mm.Hybrid.CV)
			}
			data.Ranked = append(data.Ranked, row)
		}
		for _, mm := range fn.Metrics {
			bb := "fit failed: " + mm.BlackBoxErr
			if mm.BlackBox != nil {
				bb = mm.BlackBox.Expr
			}
			for _, a := range mm.Attribution {
				if a.Status == AttrPrunedNoise || a.Status == AttrAllowedUnused {
					data.Attribution = append(data.Attribution, htmlAttrRow{
						Function: fn.Function, Metric: mm.Metric,
						Param: a.Param, Status: a.Status, BlackBox: bb,
					})
				}
			}
			diag := htmlDiagRow{
				Function: fn.Function, Metric: mm.Metric, Points: mm.Points,
				MaxCoV: diagString(mm.MaxCoV), Reliable: mm.Reliable,
				SMAPE: "—", CV: "—", BlackBox: bb,
			}
			if mm.Hybrid != nil {
				diag.SMAPE = diagString(mm.Hybrid.SMAPE)
				diag.CV = diagString(mm.Hybrid.CV)
			}
			data.Diagnostics = append(data.Diagnostics, diag)
		}
	}
	var b strings.Builder
	// The template executes over plain data with no user-controlled
	// actions; an error here is a programming bug.
	if err := htmlPage.Execute(&b, data); err != nil {
		panic(fmt.Sprintf("modelreg: render html: %v", err))
	}
	return b.String()
}
