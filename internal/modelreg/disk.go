package modelreg

import (
	"encoding/json"
	"fmt"

	"repro/internal/diskcache"
)

// setCodec is the registry's disk wire form: the ModelSet's JSON
// document, which already is the artifact clients receive. Decode
// re-checks that the set's embedded Key matches the digest the entry was
// read under, so a file renamed onto another key can never serve the
// wrong models.
type setCodec struct{}

// Encode marshals the finished model set.
func (setCodec) Encode(v any) ([]byte, error) {
	ms, ok := v.(*ModelSet)
	if !ok {
		return nil, fmt.Errorf("modelreg: disk codec got %T", v)
	}
	return json.Marshal(ms)
}

// Decode unmarshals a persisted model set and verifies its address.
func (setCodec) Decode(digest string, data []byte) (any, error) {
	var ms ModelSet
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("modelreg: decode persisted model set: %w", err)
	}
	if ms.Key != digest {
		return nil, fmt.Errorf("modelreg: persisted model set carries key %s, stored under %s", ms.Key, digest)
	}
	if len(ms.Functions) == 0 {
		return nil, fmt.Errorf("modelreg: persisted model set is empty")
	}
	return &ms, nil
}

// OpenDiskLayer opens the registry's persistent tier rooted at dir,
// version-stamped with the design digest version: bumping the fitting
// semantics orphans every previously persisted set instead of serving
// stale models under fresh keys.
func OpenDiskLayer(dir string) (*diskcache.Layer, error) {
	st, err := diskcache.Open(dir, designDigestVersion)
	if err != nil {
		return nil, err
	}
	return diskcache.NewLayer(st, setCodec{}), nil
}
