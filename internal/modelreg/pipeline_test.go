package modelreg

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/runner"
)

// testConfig is a small LULESH design that exercises both metrics and
// several interim refits while staying fast.
func testConfig() Config {
	return Config{
		App:      "lulesh",
		Params:   []string{"p", "size"},
		Defaults: apps.Config{"size": 4, "p": 2, "regions": 4, "balance": 2, "cost": 1, "iters": 2},
		Axes: []Axis{
			{Param: "p", Values: []float64{2, 4, 8}},
			{Param: "size", Values: []float64{4, 5, 6}},
		},
		Reps:  3,
		Seed:  7,
		Batch: 4,
	}
}

func prepareLULESH(t *testing.T) *core.Prepared {
	t.Helper()
	p, err := core.Prepare(apps.LULESH())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExtractEndToEnd(t *testing.T) {
	prep := prepareLULESH(t)
	var mu sync.Mutex
	var events []Event
	ms, err := Extract(context.Background(), runner.New(), prep, testConfig(),
		func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}

	if ms.Points != 9 {
		t.Fatalf("consumed %d points, want 9", ms.Points)
	}
	if ms.Key == "" || ms.SpecDigest != prep.Digest {
		t.Fatalf("bad addressing: key=%q specDigest=%q", ms.Key, ms.SpecDigest)
	}
	if got, want := ms.Key, Key(prep.Digest, testConfig()); got != want {
		t.Fatalf("key mismatch: %s != %s", got, want)
	}

	// The paper's headline functions must be modeled.
	for _, fn := range []string{"CalcQForElems", "CommSBN", "main"} {
		f := ms.Function(fn)
		if f == nil {
			t.Fatalf("function %s missing from model set", fn)
		}
		mm := f.Metric(MetricSeconds)
		if mm == nil || mm.Hybrid == nil {
			t.Fatalf("function %s has no hybrid seconds model: %+v", fn, f)
		}
		// The hybrid model may only use taint-proven parameters.
		deps := make(map[string]bool)
		for _, d := range f.Deps {
			deps[d] = true
		}
		for _, p := range mm.Hybrid.Params {
			if !deps[p] {
				t.Errorf("%s hybrid model uses %q outside taint deps %v", fn, p, f.Deps)
			}
		}
	}

	// CalcQForElems is the B2 case study: the clean model must couple p
	// and size multiplicatively.
	q := ms.Function("CalcQForElems").Metric(MetricSeconds)
	if !q.Hybrid.Multiplicative {
		t.Errorf("CalcQForElems hybrid model not multiplicative: %s", q.Hybrid.Expr)
	}

	// Ranks are 1..n in order.
	for i, fn := range ms.Functions {
		if fn.Rank != i+1 {
			t.Fatalf("rank disorder at %d: %+v", i, fn)
		}
	}

	// Event stream: one taint event, 9 in-order point events, interim
	// refits at batch boundaries 4 and 8 (not at 9, the final point).
	var points, refits, taints int
	lastPoints := 0
	for _, ev := range events {
		switch ev.Type {
		case "taint":
			taints++
		case "point":
			points++
			if ev.Points != lastPoints+1 {
				t.Fatalf("point events out of order: %+v", ev)
			}
			lastPoints = ev.Points
		case "refit":
			refits++
			if ev.Points%4 != 0 {
				t.Fatalf("refit off the batch cadence: %+v", ev)
			}
			if ev.Fitted == 0 {
				t.Fatalf("refit fit nothing: %+v", ev)
			}
		}
	}
	if taints != 1 || points != 9 || refits != 2 {
		t.Fatalf("event counts taint=%d point=%d refit=%d, want 1/9/2", taints, points, refits)
	}

	// The taint prior must have pruned at least one noise- or
	// hardware-induced black-box dependence (the B1/C1 story).
	if ms.PrunedCount() == 0 {
		t.Error("no pruned-noise attributions; the hybrid/black-box comparison is vacuous")
	}

	// The artifact must be JSON-stable (no Inf/NaN anywhere).
	if _, err := json.Marshal(ms); err != nil {
		t.Fatalf("model set does not marshal: %v", err)
	}
}

// TestExtractDeterministic pins the per-index noise seeding: a serial
// sweep and a maximally parallel one must produce identical model sets.
func TestExtractDeterministic(t *testing.T) {
	prep := prepareLULESH(t)
	serial, err := Extract(context.Background(), &runner.Runner{Workers: 1}, prep, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Extract(context.Background(), &runner.Runner{Workers: 8}, prep, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("worker count changed the extracted model set")
	}
}

func TestPipelineAbortsOnAnalysisError(t *testing.T) {
	prep := prepareLULESH(t)
	pl, err := NewPipeline(prep, testConfig(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Consume(runner.Result{Index: 0, Err: errors.New("boom")}); err == nil {
		t.Fatal("Consume swallowed a design-point failure")
	}
	if _, err := pl.Finish(); err == nil {
		t.Fatal("Finish succeeded with zero consumed points")
	}
}

func TestConfigValidate(t *testing.T) {
	spec := apps.LULESH()
	base := testConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no axes", func(c *Config) { c.Axes = nil }},
		{"unknown axis", func(c *Config) { c.Axes[0].Param = "typo" }},
		{"unswept model param", func(c *Config) { c.Params = []string{"p", "regions"} }},
		{"repeated axis", func(c *Config) { c.Axes = append(c.Axes, c.Axes[0]) }},
		{"unknown metric", func(c *Config) { c.Metrics = []string{"flops"} }},
		{"unknown default", func(c *Config) { c.Defaults["typo"] = 1 }},
		{"p below 1", func(c *Config) { c.Axes[0].Values = []float64{0}; c.Defaults["p"] = 0 }},
		{"missing spec param", func(c *Config) { delete(c.Defaults, "iters") }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Defaults = base.Defaults.Clone()
		cfg.Axes = append([]Axis(nil), base.Axes...)
		tc.mutate(&cfg)
		if err := cfg.withDefaults().Validate(spec); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := base.withDefaults().Validate(spec); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
	// Empty Params is valid everywhere: it defaults to the axis
	// parameters in axis order (the same rule on CLI, daemon, library).
	noParams := base
	noParams.Params = nil
	filled := noParams.withDefaults()
	if err := filled.Validate(spec); err != nil {
		t.Fatalf("axis-params default rejected: %v", err)
	}
	if !reflect.DeepEqual(filled.Params, []string{"p", "size"}) {
		t.Fatalf("params defaulted to %v, want axis order [p size]", filled.Params)
	}
}

func TestDigestStability(t *testing.T) {
	a := testConfig()
	b := testConfig()
	// Rebuild the defaults map in a different insertion order.
	b.Defaults = apps.Config{}
	for _, k := range []string{"iters", "cost", "balance", "regions", "p", "size"} {
		b.Defaults[k] = a.Defaults[k]
	}
	if DesignDigest(a) != DesignDigest(b) {
		t.Fatal("design digest depends on map construction order")
	}
	// Zero-valued optional fields digest like their defaults.
	c := testConfig()
	c.Reps = 0
	d := testConfig()
	d.Reps = 5
	if DesignDigest(c) != DesignDigest(d) {
		t.Fatal("withDefaults not applied before digesting")
	}
	// Batch shapes progress events only, never the final model set, so
	// it must NOT move the digest — else identical models would miss
	// the registry.
	e := testConfig()
	e.Batch = 100
	if DesignDigest(e) != DesignDigest(a) {
		t.Fatal("refit cadence leaked into the design digest")
	}
	// Any semantic change moves the digest.
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Axes[0].Values = []float64{2, 4} },
		func(c *Config) { c.Seed = 99 },
		func(c *Config) { c.Reps = 7 },
		func(c *Config) { c.Metrics = []string{MetricSeconds} },
		func(c *Config) { c.Defaults["cost"] = 3 },
	} {
		m := testConfig()
		m.Defaults = a.Defaults.Clone()
		m.Axes = []Axis{{Param: "p", Values: append([]float64(nil), a.Axes[0].Values...)},
			{Param: "size", Values: append([]float64(nil), a.Axes[1].Values...)}}
		mutate(&m)
		if DesignDigest(m) == DesignDigest(a) {
			t.Errorf("mutation %d did not move the design digest", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry(2)
	builds := 0
	build := func(key string) func() (*ModelSet, error) {
		return func() (*ModelSet, error) {
			builds++
			return &ModelSet{Key: key}, nil
		}
	}
	ms1, cached, err := reg.Get("k1", build("k1"))
	if err != nil || cached || ms1.Key != "k1" {
		t.Fatalf("first get: ms=%+v cached=%v err=%v", ms1, cached, err)
	}
	ms2, cached, err := reg.Get("k1", build("k1"))
	if err != nil || !cached || ms2 != ms1 {
		t.Fatalf("second get not a cache hit: cached=%v same=%v err=%v", cached, ms2 == ms1, err)
	}
	if builds != 1 {
		t.Fatalf("built %d times, want 1", builds)
	}

	// Errors are not cached.
	if _, _, err := reg.Get("bad", func() (*ModelSet, error) { return nil, errors.New("boom") }); err == nil {
		t.Fatal("error swallowed")
	}
	if _, ok := reg.Lookup("bad"); ok {
		t.Fatal("failed build cached")
	}

	// LRU eviction: k1 is most recent after the hit; filling two more
	// keys evicts the older ones.
	reg.Get("k2", build("k2"))
	reg.Get("k3", build("k3"))
	if _, ok := reg.Lookup("k1"); ok {
		t.Fatal("k1 survived past capacity")
	}
	if _, ok := reg.Lookup("k3"); !ok {
		t.Fatal("k3 missing")
	}
	// Misses count attempted builds, including the failed one.
	st := reg.Stats()
	if st.Misses != 4 || st.Hits != 1 || st.Evictions < 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRegistrySingleflight pins the dedup: concurrent gets of one key
// share a single build.
func TestRegistrySingleflight(t *testing.T) {
	reg := NewRegistry(4)
	var mu sync.Mutex
	builds := 0
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]*ModelSet, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms, _, err := reg.Get("shared", func() (*ModelSet, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				<-gate
				return &ModelSet{Key: "shared"}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = ms
		}(i)
	}
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("%d builds, want 1", builds)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("joiners got distinct model sets")
		}
	}
}

// TestGoldenReport pins the rendered Markdown report for the
// examples/modeling design. Re-bless with
// `go test ./internal/modelreg -run Golden -update` after an
// intentional change to the pipeline or the renderer.
var updateFlag = flag.Bool("update", false, "re-bless golden files")

func TestGoldenReport(t *testing.T) {
	raw, err := os.ReadFile("../../examples/modeling/lulesh.json")
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	// Overlay the design defaults on the app taint configuration exactly
	// like service.ResolveModelDefaults (not importable here — service
	// depends on modelreg), so this golden pins the same digest every
	// surface computes.
	merged := apps.LULESHTaintConfig()
	for k, v := range cfg.Defaults {
		merged[k] = v
	}
	cfg.Defaults = merged
	prep := prepareLULESH(t)
	ms, err := Extract(context.Background(), runner.New(), prep, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := RenderMarkdown(ms)

	const golden = "testdata/lulesh_report.golden.md"
	if *updateFlag {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("re-blessed %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v — run `go test ./internal/modelreg -run Golden -update` to create it", err)
	}
	if string(want) != got {
		t.Fatalf("report drifted from %s.\nRe-bless with `go test ./internal/modelreg -run Golden -update` "+
			"after verifying the change is intentional.\nFirst divergence: %s",
			golden, firstDiff(string(want), got))
	}

	// The HTML rendering must at least carry the same ranked functions.
	html := RenderHTML(ms)
	for _, fn := range ms.Functions[:3] {
		if !strings.Contains(html, fn.Function) {
			t.Errorf("HTML report missing %s", fn.Function)
		}
	}
}

func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length: want %d lines, got %d", len(wl), len(gl))
}
