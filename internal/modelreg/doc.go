// Package modelreg is the model-extraction back half of the pipeline: it
// turns a stream of sweep results into ranked, rendered performance
// models — the paper's actual output artifact.
//
// Three pieces compose:
//
//   - Pipeline consumes runner sweep results as they stream (one per
//     design point, in design order), feeds per-function/per-metric
//     points into extrap datasets, and refits incrementally whenever a
//     configurable batch of new points fills. The white-box half comes
//     from a taint run at the smallest design point: its per-function
//     parameter dependencies become extrap priors, its relevance set the
//     instrumentation filter.
//
//   - ModelSet is the finished artifact: per function and metric, the
//     hybrid (taint-prior) and black-box fits with validation
//     diagnostics (adjusted R-squared, leave-one-out cross-validation
//     error, noise CoV) and the paper-style clean-vs-tainted parameter
//     attribution — which dependencies the taint proof confirms and
//     which black-box terms it vetoes as noise.
//
//   - Registry is the content-addressed store: model sets are keyed by
//     the spec's content digest plus a canonical digest of the modeling
//     design (axes, defaults, repetitions, seed, metrics, fit cadence),
//     so the same spec and design never fit twice — the analysis
//     daemon's POST /v1/models answers repeats from cache.
//
// RenderMarkdown and RenderHTML turn a ModelSet into the human-readable
// report (per-function model table, attribution, fit diagnostics) that
// cmd/perftaint's report subcommand and the service expose.
package modelreg
