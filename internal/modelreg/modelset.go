package modelreg

import (
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/extrap"
)

// ModelSet is the finished model-extraction artifact: every modeled
// function with its fitted models, validation diagnostics, and parameter
// attribution, ranked by predicted contribution at the largest design
// point. It is immutable once built, JSON-stable (all float fields are
// finite), and content-addressed by Key.
type ModelSet struct {
	// App is the registered application name the sweep analyzed.
	App string `json:"app"`
	// SpecDigest is the content address of the analyzed spec.
	SpecDigest string `json:"spec_digest"`
	// DesignDigest is the canonical digest of the modeling design.
	DesignDigest string `json:"design_digest"`
	// Key is the registry address: hash of SpecDigest + DesignDigest.
	Key string `json:"key"`
	// Params are the model parameters in declaration order.
	Params []string `json:"params"`
	// Metrics lists the modeled quantities; the first ranks the report.
	Metrics []string `json:"metrics"`
	// Points is the number of design points consumed; Reps the repeated
	// measurements per point.
	Points int `json:"points"`
	Reps   int `json:"reps"`
	// TaintConfig is the configuration of the white-box taint run (the
	// smallest design point).
	TaintConfig apps.Config `json:"taint_config"`
	// RankConfig is the design point models are evaluated at for the
	// contribution ranking (the largest design point).
	RankConfig apps.Config `json:"rank_config"`
	// Functions carries one entry per modeled function, sorted by Rank.
	Functions []FunctionModels `json:"functions"`
}

// FunctionModels bundles everything extracted for one function.
type FunctionModels struct {
	Function string `json:"function"`
	// Kind is the census classification (main, kernel, comm, ...), or
	// "mpi" for library routines measured through the simulator.
	Kind string `json:"kind"`
	// Deps are the taint-identified parameter dependencies (the
	// white-box proof), sorted.
	Deps []string `json:"deps,omitempty"`
	// Volume is the symbolic compute volume from the taint run, when the
	// function has one.
	Volume string `json:"volume,omitempty"`
	// Rank orders functions by predicted primary-metric contribution at
	// RankConfig (1 = largest); Share is that contribution as a fraction
	// of the total.
	Rank  int     `json:"rank"`
	Share float64 `json:"share,omitempty"`
	// Metrics holds one fitted model pair per modeled metric.
	Metrics []MetricModel `json:"metrics"`
}

// MetricModel is the fit outcome of one function over one metric: the
// hybrid (taint-prior) and black-box models side by side, with the
// parameter attribution their disagreement implies.
type MetricModel struct {
	Metric string `json:"metric"`
	// Hybrid is the taint-informed fit; nil when fitting failed, with
	// HybridErr carrying the typed extrap.FitError message.
	Hybrid    *ModelFit `json:"hybrid,omitempty"`
	HybridErr string    `json:"hybrid_error,omitempty"`
	// BlackBox is the unrestricted fit of the same dataset; nil when
	// fitting failed, with BlackBoxErr carrying the failure.
	BlackBox    *ModelFit `json:"black_box,omitempty"`
	BlackBoxErr string    `json:"black_box_error,omitempty"`
	// Attribution classifies every model parameter for this function
	// (clean vs tainted vs pruned), derived from the taint masks and the
	// two fits.
	Attribution []ParamAttribution `json:"attribution,omitempty"`
	// Points is the dataset size; MaxCoV the worst coefficient of
	// variation across its points; Reliable whether MaxCoV passes the
	// paper's 0.1 noise cutoff.
	Points   int     `json:"points"`
	MaxCoV   float64 `json:"max_cov"`
	Reliable bool    `json:"reliable"`
}

// FitFactor is one single-parameter factor of a PMNF term in wire form:
// Param^I * log2(Param)^J.
type FitFactor struct {
	Param string  `json:"param"`
	I     float64 `json:"i,omitempty"`
	J     float64 `json:"j,omitempty"`
}

// FitTerm is one additive PMNF summand in wire form: Coeff times the
// product of its factors.
type FitTerm struct {
	Coeff   float64     `json:"coeff"`
	Factors []FitFactor `json:"factors,omitempty"`
}

// ModelFit is one fitted PMNF model with its validation diagnostics.
type ModelFit struct {
	// Expr is the human-readable model in the paper's notation.
	Expr string `json:"expr"`
	// Params are the parameters the model actually uses.
	Params []string `json:"params,omitempty"`
	// Intercept and Terms carry the fitted model in evaluable wire form
	// (Expr is its rendering): prediction = Intercept + sum of terms.
	// Downstream consumers — the recovery validation harness, clients of
	// the service API — evaluate models at unseen configurations through
	// Eval without reparsing Expr.
	Intercept float64   `json:"intercept"`
	Terms     []FitTerm `json:"terms,omitempty"`
	// Constant reports a parameter-free model.
	Constant bool `json:"constant"`
	// Multiplicative reports a term coupling two or more parameters.
	Multiplicative bool `json:"multiplicative,omitempty"`
	// SMAPE is the training symmetric mean absolute percentage error;
	// CV its leave-one-out cross-validated counterpart (negative when
	// not computable, e.g. too few points); AdjR2 the adjusted
	// coefficient of determination; RSS the residual sum of squares.
	SMAPE float64 `json:"smape"`
	CV    float64 `json:"cv"`
	AdjR2 float64 `json:"adj_r2"`
	RSS   float64 `json:"rss"`
}

// Attribution statuses: the paper-style classification of one model
// parameter for one function, combining the taint proof with what the
// two fits did.
const (
	// AttrConfirmed: the taint analysis proves the dependence and the
	// hybrid model uses the parameter — a clean, validated term.
	AttrConfirmed = "confirmed"
	// AttrAllowedUnused: taint allows the parameter but the fit found no
	// measurable effect (dependence exists but is below noise).
	AttrAllowedUnused = "allowed-unused"
	// AttrPrunedNoise: the black-box fit used the parameter but the
	// taint proof vetoes it — a noise-induced false dependence the
	// hybrid pipeline removed (the paper's 77% headline).
	AttrPrunedNoise = "pruned-noise"
	// AttrIndependent: neither the taint proof nor the black-box fit
	// connects the function to the parameter.
	AttrIndependent = "independent"
)

// ParamAttribution classifies one model parameter for one function.
type ParamAttribution struct {
	Param string `json:"param"`
	// Tainted reports the white-box proof: the taint masks connect the
	// function to this parameter.
	Tainted bool `json:"tainted"`
	// InHybrid / InBlackBox report whether the respective fitted model
	// uses the parameter.
	InHybrid   bool `json:"in_hybrid"`
	InBlackBox bool `json:"in_black_box"`
	// Status is the combined classification (Attr* constants).
	Status string `json:"status"`
}

// newModelFit projects a fitted model and its training dataset into the
// wire form, sanitizing non-finite diagnostics (JSON cannot carry Inf).
func newModelFit(d *extrap.Dataset, m *extrap.Model) *ModelFit {
	f := &ModelFit{
		Expr:           m.String(),
		Params:         m.Params(),
		Intercept:      finiteOr(m.Constant, 0),
		Constant:       m.IsConstant(),
		Multiplicative: m.Multiplicative(),
		SMAPE:          finiteOr(m.SMAPE, -1),
		CV:             finiteOr(m.CV, -1),
		AdjR2:          finiteOr(adjustedR2(d, m), -1),
		RSS:            finiteOr(m.RSS, -1),
	}
	for _, t := range m.Terms {
		wt := FitTerm{Coeff: finiteOr(t.Coeff, 0)}
		names := make([]string, 0, len(t.Factors))
		for n, pl := range t.Factors {
			if !pl.IsUnit() {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			pl := t.Factors[n]
			wt.Factors = append(wt.Factors, FitFactor{Param: n, I: pl.I, J: pl.J})
		}
		f.Terms = append(f.Terms, wt)
	}
	return f
}

// Eval computes the fitted model's prediction at a configuration,
// mirroring extrap's evaluation semantics (parameters below 1 are
// clamped so log factors stay finite).
func (f *ModelFit) Eval(params map[string]float64) float64 {
	v := f.Intercept
	for _, t := range f.Terms {
		tv := t.Coeff
		for _, fa := range t.Factors {
			x := params[fa.Param]
			if x < 1 {
				x = 1
			}
			fv := math.Pow(x, fa.I)
			if fa.J != 0 {
				fv *= math.Pow(math.Log2(x), fa.J)
			}
			tv *= fv
		}
		v += tv
	}
	return v
}

// adjustedR2 computes 1 - (1-R2)(n-1)/(n-k-1) for a model with k
// parametric terms over n points. Degenerate datasets (zero variance)
// score 1 for a well-fitting constant model and 0 otherwise; too few
// points fall back to the unadjusted R2.
func adjustedR2(d *extrap.Dataset, m *extrap.Model) float64 {
	n := len(d.Points)
	if n == 0 {
		return 0
	}
	mean := 0.0
	ys := make([]float64, n)
	for i, p := range d.Points {
		ys[i] = p.Mean()
		mean += ys[i]
	}
	mean /= float64(n)
	tss := 0.0
	for _, y := range ys {
		tss += (y - mean) * (y - mean)
	}
	if tss <= 0 {
		// Constant metric: a constant model explains it perfectly.
		if m.RSS <= 1e-12 {
			return 1
		}
		return 0
	}
	r2 := 1 - m.RSS/tss
	k := len(m.Terms)
	if denom := n - k - 1; denom > 0 {
		return 1 - (1-r2)*float64(n-1)/float64(denom)
	}
	return r2
}

// finiteOr replaces NaN/Inf with fallback so the artifact marshals.
func finiteOr(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}

// attribution classifies every model parameter from the taint
// dependencies and the two fits.
func attribution(modelParams, deps []string, hybrid, blackBox *ModelFit) []ParamAttribution {
	depSet := make(map[string]bool, len(deps))
	for _, d := range deps {
		depSet[d] = true
	}
	uses := func(f *ModelFit, p string) bool {
		if f == nil {
			return false
		}
		for _, q := range f.Params {
			if q == p {
				return true
			}
		}
		return false
	}
	out := make([]ParamAttribution, 0, len(modelParams))
	for _, p := range modelParams {
		a := ParamAttribution{
			Param:      p,
			Tainted:    depSet[p],
			InHybrid:   uses(hybrid, p),
			InBlackBox: uses(blackBox, p),
		}
		switch {
		case a.Tainted && a.InHybrid:
			a.Status = AttrConfirmed
		case a.Tainted:
			a.Status = AttrAllowedUnused
		case a.InBlackBox:
			a.Status = AttrPrunedNoise
		default:
			a.Status = AttrIndependent
		}
		out = append(out, a)
	}
	return out
}

// PrunedCount totals the pruned-noise attributions across the set: how
// many noise-induced parameter dependencies the taint priors removed.
func (ms *ModelSet) PrunedCount() int {
	n := 0
	for _, fn := range ms.Functions {
		for _, mm := range fn.Metrics {
			for _, a := range mm.Attribution {
				if a.Status == AttrPrunedNoise {
					n++
				}
			}
		}
	}
	return n
}

// Function returns the entry for name, or nil.
func (ms *ModelSet) Function(name string) *FunctionModels {
	for i := range ms.Functions {
		if ms.Functions[i].Function == name {
			return &ms.Functions[i]
		}
	}
	return nil
}

// Metric returns the fit pair for metric, or nil.
func (fm *FunctionModels) Metric(metric string) *MetricModel {
	for i := range fm.Metrics {
		if fm.Metrics[i].Metric == metric {
			return &fm.Metrics[i]
		}
	}
	return nil
}

// sortFunctions assigns ranks from shares and orders the slice: ranked
// functions first by descending share, then the rest alphabetically.
func sortFunctions(fns []FunctionModels) {
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].Share != fns[j].Share {
			return fns[i].Share > fns[j].Share
		}
		return fns[i].Function < fns[j].Function
	})
	for i := range fns {
		fns[i].Rank = i + 1
	}
}
