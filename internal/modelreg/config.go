package modelreg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
	"strconv"

	"repro/internal/apps"
	"repro/internal/runner"
)

// Metric names a per-function quantity the pipeline models over the
// design. Every metric yields one dataset (and so one fitted model pair)
// per function.
const (
	// MetricSeconds is the synthetic instrumented run time per function:
	// exclusive compute under contention plus direct communication plus
	// instrumentation intrusion, measured under the taint filter with
	// seeded noise (the quantity the paper's evaluation fits).
	MetricSeconds = "seconds"
	// MetricIterations is the per-function dynamic loop iteration count
	// summed over calling contexts, taken from the tainted interpreter
	// run at each design point — the empirical counterpart of the
	// symbolic volume g(p1..pn).
	MetricIterations = "iterations"
)

// Axis is one swept parameter of a modeling design: the wire form of
// runner.Axis.
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// Config declares one model-extraction run: the design to sweep, the
// parameters to model over, and the fitting cadence. The zero values of
// the optional fields are filled by withDefaults; Validate rejects
// designs the pipeline cannot fit. Config round-trips through JSON — it
// is the body of the CLI's -config file and part of the service's
// POST /v1/models request.
type Config struct {
	// App names the registered application (CLI and service surface);
	// the pipeline itself works off a core.Prepared and ignores it
	// except as report metadata.
	App string `json:"app,omitempty"`
	// Params are the parameters models are expressed in (e.g. p, size).
	// Every entry must be swept by an axis.
	Params []string `json:"params"`
	// Defaults pins the non-swept spec parameters during the sweep.
	Defaults apps.Config `json:"defaults,omitempty"`
	// Axes span the full-factorial design, last axis varying fastest.
	Axes []Axis `json:"axes"`
	// Reps is the number of repeated measurements per design point
	// (default 5, the paper's choice).
	Reps int `json:"reps,omitempty"`
	// Seed feeds the deterministic measurement noise; each design point
	// derives its own stream from Seed and its index, so concurrent and
	// sequential sweeps measure identical values (default 1).
	Seed int64 `json:"seed,omitempty"`
	// RelNoise is the relative measurement noise level (default 0.02).
	RelNoise float64 `json:"rel_noise,omitempty"`
	// Batch is the incremental refit cadence: the pipeline refits after
	// every Batch completed design points (default 5; 0 keeps the
	// default, negative disables interim refits).
	Batch int `json:"batch,omitempty"`
	// Metrics selects the modeled quantities (default: seconds and
	// iterations). The first metric ranks the report.
	Metrics []string `json:"metrics,omitempty"`
}

// withDefaults fills the optional fields. An empty Params defaults to
// the axis parameters in axis order, so every surface (CLI, daemon,
// library) accepts the same minimal config.
func (c Config) withDefaults() Config {
	if len(c.Params) == 0 {
		for _, ax := range c.Axes {
			c.Params = append(c.Params, ax.Param)
		}
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RelNoise == 0 {
		c.RelNoise = 0.02
	}
	if c.Batch == 0 {
		c.Batch = 5
	}
	if len(c.Metrics) == 0 {
		c.Metrics = []string{MetricSeconds, MetricIterations}
	}
	return c
}

// Validate checks the design against spec: every axis and model
// parameter must be a spec parameter (or the implicit p), model
// parameters must be swept, axes must not repeat, and the expanded grid
// must provide every spec parameter with p >= 1.
func (c Config) Validate(spec *apps.Spec) error {
	if len(c.Axes) == 0 {
		return fmt.Errorf("modelreg: design has no axes")
	}
	if len(c.Params) == 0 {
		return fmt.Errorf("modelreg: no model parameters")
	}
	known := func(name string) bool {
		if name == "p" {
			return true
		}
		for _, prm := range spec.Params {
			if prm == name {
				return true
			}
		}
		return false
	}
	axis := make(map[string]bool, len(c.Axes))
	for _, ax := range c.Axes {
		if len(ax.Values) == 0 {
			return fmt.Errorf("modelreg: axis %q has no values", ax.Param)
		}
		if axis[ax.Param] {
			return fmt.Errorf("modelreg: axis %q repeated", ax.Param)
		}
		if !known(ax.Param) {
			return fmt.Errorf("modelreg: axis %q is not a parameter of %s (spec has %v plus the implicit p)",
				ax.Param, spec.Name, spec.Params)
		}
		axis[ax.Param] = true
	}
	for _, prm := range c.Params {
		if !axis[prm] {
			return fmt.Errorf("modelreg: model parameter %q is not swept by any axis", prm)
		}
	}
	for name := range c.Defaults {
		if !known(name) {
			return fmt.Errorf("modelreg: default %q is not a parameter of %s", name, spec.Name)
		}
	}
	for _, m := range c.Metrics {
		if m != MetricSeconds && m != MetricIterations {
			return fmt.Errorf("modelreg: unknown metric %q (want %q or %q)", m, MetricSeconds, MetricIterations)
		}
	}
	// The smallest design point doubles as the taint-run configuration,
	// so the whole grid must be analyzable.
	base := c.baseConfig()
	if base["p"] < 1 {
		return fmt.Errorf("modelreg: design requires the implicit MPI parameter p >= 1")
	}
	for _, prm := range spec.Params {
		if _, ok := base[prm]; !ok {
			return fmt.Errorf("modelreg: design missing spec parameter %q (add a default or an axis)", prm)
		}
	}
	return nil
}

// Size returns the number of design points the config expands to.
func (c Config) Size() int {
	if len(c.Axes) == 0 {
		return 0
	}
	n := 1
	for _, ax := range c.Axes {
		n *= len(ax.Values)
	}
	return n
}

// design expands the config into the runner's full-factorial form.
func (c Config) design(spec *apps.Spec) runner.Design {
	d := runner.Design{Spec: spec, Defaults: c.Defaults}
	for _, ax := range c.Axes {
		d.Axes = append(d.Axes, runner.Axis{Param: ax.Param, Values: ax.Values})
	}
	return d
}

// baseConfig is the smallest design point: defaults overlaid with each
// axis at its minimum value. It doubles as the taint-run configuration —
// cheap to execute and guaranteed to be a member of the design family.
func (c Config) baseConfig() apps.Config {
	cfg := c.Defaults.Clone()
	if cfg == nil {
		cfg = make(apps.Config)
	}
	for _, ax := range c.Axes {
		min := ax.Values[0]
		for _, v := range ax.Values[1:] {
			if v < min {
				min = v
			}
		}
		cfg[ax.Param] = min
	}
	return cfg
}

// largestConfig is the biggest design point (each axis at its maximum),
// the configuration report ranking evaluates models at.
func (c Config) largestConfig() apps.Config {
	cfg := c.Defaults.Clone()
	if cfg == nil {
		cfg = make(apps.Config)
	}
	for _, ax := range c.Axes {
		max := ax.Values[0]
		for _, v := range ax.Values[1:] {
			if v > max {
				max = v
			}
		}
		cfg[ax.Param] = max
	}
	return cfg
}

// designDigestVersion salts every design digest; bump it when the
// pipeline's fitting semantics change so stale cached model sets are
// never served for new behaviour.
const designDigestVersion = "perftaint-modelset-v2"

// DesignDigest returns the canonical content address of the modeling
// design: a hex SHA-256 over every field that influences the fitted
// models (axes in sweep order, defaults, repetitions, seed, noise,
// metrics, model parameters). Batch is deliberately excluded — the
// refit cadence shapes progress events, never the final model set, so
// two configs differing only in Batch share one registry entry. Two
// configs that expand to the same design hash identically regardless of
// map iteration order.
func DesignDigest(c Config) string {
	c = c.withDefaults()
	h := sha256.New()
	w := digestWriter{h: h}
	w.str(designDigestVersion)
	w.str(c.App)
	w.strs(c.Params)
	keys := make([]string, 0, len(c.Defaults))
	for k := range c.Defaults {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.num(len(keys))
	for _, k := range keys {
		w.str(k)
		w.f64(c.Defaults[k])
	}
	w.num(len(c.Axes))
	for _, ax := range c.Axes {
		w.str(ax.Param)
		w.num(len(ax.Values))
		for _, v := range ax.Values {
			w.f64(v)
		}
	}
	w.num(c.Reps)
	w.num(int(c.Seed))
	w.f64(c.RelNoise)
	w.strs(c.Metrics)
	return hex.EncodeToString(h.Sum(nil))
}

// Key combines a spec's content digest with a design digest into the
// registry key: equal keys mean the sweep and fit would reproduce the
// exact same model set, which is what makes the registry safe to share
// across tenants.
func Key(specDigest string, c Config) string {
	h := sha256.New()
	w := digestWriter{h: h}
	w.str(designDigestVersion)
	w.str(specDigest)
	w.str(DesignDigest(c))
	return hex.EncodeToString(h.Sum(nil))
}

// digestWriter streams a self-delimiting canonical encoding into a hash
// (the same framing discipline as core.SpecDigest).
type digestWriter struct{ h hash.Hash }

func (w digestWriter) str(s string) { fmt.Fprintf(w.h, "s%d:%s;", len(s), s) }
func (w digestWriter) num(n int)    { fmt.Fprintf(w.h, "n%d;", n) }
func (w digestWriter) f64(v float64) {
	fmt.Fprintf(w.h, "f%s;", strconv.FormatFloat(v, 'g', -1, 64))
}
func (w digestWriter) strs(ss []string) {
	w.num(len(ss))
	for _, s := range ss {
		w.str(s)
	}
}
