package modelreg

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fakeSet builds a minimal but schema-valid ModelSet addressed by key.
func fakeSet(key string) *ModelSet {
	return &ModelSet{
		App:          "lulesh",
		SpecDigest:   "spec",
		DesignDigest: "design",
		Key:          key,
		Params:       []string{"p", "size"},
		Metrics:      []string{"instructions"},
		Points:       4,
		Reps:         2,
		Functions: []FunctionModels{
			{Function: "main", Kind: "main", Rank: 1},
		},
	}
}

func regKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

// TestRegistryDiskRoundTrip is the restart contract for the model tier:
// a second registry (a restarted process) over the same directory must
// serve the persisted set with ZERO rebuilds — the build closure must
// never run — and count the serve as a disk hit, not a miss.
func TestRegistryDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := regKey("round-trip")

	openReg := func() *Registry {
		t.Helper()
		layer, err := OpenDiskLayer(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRegistry(4)
		r.SetDisk(layer)
		return r
	}

	r1 := openReg()
	builds := 0
	ms, cached, err := r1.Get(key, func() (*ModelSet, error) {
		builds++
		return fakeSet(key), nil
	})
	if err != nil || cached || ms == nil {
		t.Fatalf("first Get = %v, cached=%v, err=%v; want built set", ms, cached, err)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	if st := r1.DiskStats(); st.Puts != 1 {
		t.Fatalf("disk stats after build = %+v, want 1 put", st)
	}

	// "Restart": a fresh registry over the same directory.
	r2 := openReg()
	ms2, cached2, err := r2.Get(key, func() (*ModelSet, error) {
		t.Fatal("build ran despite a warm disk tier")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 {
		t.Fatal("disk-served set not reported as cached")
	}
	if ms2.Key != key || len(ms2.Functions) != 1 || ms2.Functions[0].Function != "main" {
		t.Fatalf("disk-served set drifted: %+v", ms2)
	}
	st := r2.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("registry stats = %+v, want 1 disk hit and 0 misses", st)
	}
	// The set is now resident: a third Get is a pure memory hit.
	if _, cached3, _ := r2.Get(key, func() (*ModelSet, error) {
		t.Fatal("build ran for a resident set")
		return nil, nil
	}); !cached3 {
		t.Fatal("resident set not served from memory")
	}
}

// TestRegistryDiskRejectsMismatchedKey covers the codec's address check:
// a persisted set whose embedded Key disagrees with the file name (a
// rename, a copy, a collision) must be dropped and rebuilt, never served.
func TestRegistryDiskRejectsMismatchedKey(t *testing.T) {
	dir := t.TempDir()
	layer, err := OpenDiskLayer(dir)
	if err != nil {
		t.Fatal(err)
	}
	right := regKey("right")
	wrong := regKey("wrong")
	layer.Put(right, fakeSet(right))

	// Simulate the rename at the store level: find the file and move it.
	var stored string
	root := filepath.Join(dir, sanitizeProbe(t, dir))
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() == right {
			stored = filepath.Join(root, e.Name())
		}
	}
	if stored == "" {
		t.Fatalf("persisted entry %s not found under %s", right, root)
	}
	if err := os.Rename(stored, filepath.Join(root, wrong)); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(4)
	r.SetDisk(layer)
	builds := 0
	ms, _, err := r.Get(wrong, func() (*ModelSet, error) {
		builds++
		return fakeSet(wrong), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (mismatched entry must not be served)", builds)
	}
	if ms.Key != wrong {
		t.Fatalf("served set carries key %s, want %s", ms.Key, wrong)
	}
	if _, err := os.Stat(filepath.Join(root, wrong)); err == nil {
		// The rebuild re-persists under the same name; what matters is the
		// content now decodes to the right key.
		raw, rerr := os.ReadFile(filepath.Join(root, wrong))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !json.Valid(trimHeader(raw)) {
			t.Fatal("re-persisted entry is not valid JSON")
		}
	}
}

// sanitizeProbe finds the single versioned subdirectory OpenDiskLayer
// created under dir, so tests do not hard-code the version string.
func sanitizeProbe(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !ents[0].IsDir() {
		t.Fatalf("expected exactly one versioned root under %s, got %v", dir, ents)
	}
	return ents[0].Name()
}

// trimHeader strips the diskcache file header (three lines) off raw.
func trimHeader(raw []byte) []byte {
	rest := raw
	for i := 0; i < 3; i++ {
		for j, b := range rest {
			if b == '\n' {
				rest = rest[j+1:]
				break
			}
		}
	}
	return rest
}

// TestSetCodecRejectsEmptySets guards against persisting (or serving) a
// vacuous artifact: an empty Functions list decodes to an error.
func TestSetCodecRejectsEmptySets(t *testing.T) {
	key := regKey("empty")
	ms := fakeSet(key)
	ms.Functions = nil
	raw, err := setCodec{}.Encode(ms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (setCodec{}).Decode(key, raw); err == nil {
		t.Fatal("empty set decoded without error")
	}
	if _, err := (setCodec{}).Decode(key, []byte("{garbage")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
