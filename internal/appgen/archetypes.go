package appgen

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/modelreg"
)

// builder accumulates one generated spec plus its modeling design. All
// randomness flows through r, so generation is deterministic per seed.
type builder struct {
	r      *rand.Rand
	spec   *apps.Spec
	design modelreg.Config
	main   *apps.FuncSpec
}

// intn draws uniformly from [lo, hi].
func (b *builder) intn(lo, hi int) int { return lo + b.r.Intn(hi-lo+1) }

// f draws uniformly from [lo, hi).
func (b *builder) f(lo, hi float64) float64 { return lo + b.r.Float64()*(hi-lo) }

// begin initializes the spec with its parameters and main function and
// declares the sweep axes (p first, then the spec parameters in order).
func (b *builder) begin(params []string, axes ...[]float64) {
	b.spec = &apps.Spec{Params: params}
	b.main = &apps.FuncSpec{Name: "main", Kind: apps.KindMain, WorkNanos: b.f(5, 15)}
	b.spec.Funcs = []*apps.FuncSpec{b.main}
	b.design = modelreg.Config{
		Params:   append([]string{"p"}, params...),
		Axes:     []modelreg.Axis{{Param: "p", Values: []float64{2, 4, 8}}},
		Reps:     3,
		RelNoise: 0.01,
		Batch:    -1,
	}
	for i, prm := range params {
		b.design.Axes = append(b.design.Axes, modelreg.Axis{Param: prm, Values: axes[i]})
	}
}

// fn registers a non-main function and returns its name.
func (b *builder) fn(f *apps.FuncSpec) string {
	b.spec.Funcs = append(b.spec.Funcs, f)
	return f.Name
}

// useMPI records MPI routines in the spec's census surface (idempotent).
func (b *builder) useMPI(names ...string) {
	for _, n := range names {
		found := false
		for _, m := range b.spec.MPIUsed {
			if m == n {
				found = true
				break
			}
		}
		if !found {
			b.spec.MPIUsed = append(b.spec.MPIUsed, n)
		}
	}
}

// fillers adds the census filler population every archetype carries —
// inline-estimated getters (the A3 false-negative class), a helper with
// a compile-time-constant loop (statically pruned), and a helper with a
// runtime-constant loop (dynamically pruned) — and returns calls that
// make each of them reachable from main.
func (b *builder) fillers() []apps.Stmt {
	var calls []apps.Stmt
	for i, n := 0, b.intn(1, 3); i < n; i++ {
		name := b.fn(&apps.FuncSpec{
			Name:           fmt.Sprintf("get_field_%d", i),
			Kind:           apps.KindGetter,
			WorkNanos:      2,
			InlineEstimate: true,
			Body:           []apps.Stmt{apps.Work{Units: 1}},
		})
		calls = append(calls, apps.Call{Callee: name})
	}
	static := b.fn(&apps.FuncSpec{
		Name:      "init_tables",
		Kind:      apps.KindHelper,
		WorkNanos: b.f(5, 20),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.StaticConst, Bound: apps.Q(float64(b.intn(3, 8))),
				Body: []apps.Stmt{apps.Work{Units: 1}}},
		},
	})
	dyn := b.fn(&apps.FuncSpec{
		Name:      "read_config",
		Kind:      apps.KindHelper,
		WorkNanos: b.f(5, 20),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.RuntimeConst, Bound: apps.Q(float64(b.intn(9, 14))),
				Body: []apps.Stmt{apps.Work{Units: 1}}},
		},
	})
	return append(calls, apps.Call{Callee: static}, apps.Call{Callee: dyn})
}

// qty builds coeff * name^pow.
func qty(coeff float64, name string, pow int) apps.Quantity {
	return apps.QP(coeff, name, pow)
}

// stencil generates the compute-bound archetype: a timestep loop over
// polynomial kernels with one residual collective per step. Kernel
// iteration counts are pure size-monomials; the only p dependence is the
// residual reduction.
func (b *builder) stencil() {
	b.begin([]string{"size", "iters"},
		[]float64{4, 6, 8, 10}, []float64{2, 3, 4})

	var kernels []string
	for i, n := 0, b.intn(2, 3); i < n; i++ {
		d := b.intn(1, 3)
		body := []apps.Stmt{apps.Work{Units: float64(b.intn(1, 3))}}
		if b.r.Intn(2) == 0 {
			body = append(body, apps.Loop{Kind: apps.StaticConst,
				Bound: apps.Q(float64(b.intn(2, 4))),
				Body:  []apps.Stmt{apps.Work{Units: 1}}})
		}
		kernels = append(kernels, b.fn(&apps.FuncSpec{
			Name:         fmt.Sprintf("sweep_dim%d_%d", d, i),
			Kind:         apps.KindKernel,
			WorkNanos:    b.f(30, 60),
			MemIntensity: b.f(0, 0.25),
			Body: []apps.Stmt{
				apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "size", d), Body: body},
			},
		}))
	}
	residual := b.fn(&apps.FuncSpec{
		Name:      "reduce_residual",
		Kind:      apps.KindComm,
		WorkNanos: 10,
		Body: []apps.Stmt{
			apps.Call{Callee: "MPI_Allreduce", CountArg: ptr(apps.Q(float64(b.intn(1, 4))))},
		},
	})
	b.useMPI("MPI_Allreduce")

	step := []apps.Stmt{apps.Work{Units: 1}}
	for _, k := range kernels {
		step = append(step, apps.Call{Callee: k})
	}
	step = append(step, apps.Call{Callee: residual})
	b.main.Body = append(b.fillers(),
		apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "iters", 1), Body: step})
}

// halo generates the communication-heavy archetype: per-step neighbor
// exchanges whose message sizes grow in the mesh surface, a rank loop
// over p, and a collective.
func (b *builder) halo() {
	b.begin([]string{"size", "steps"},
		[]float64{4, 6, 8, 12}, []float64{2, 3, 4})

	pack := b.fn(&apps.FuncSpec{
		Name:         "pack_boundary",
		Kind:         apps.KindKernel,
		WorkNanos:    b.f(20, 40),
		MemIntensity: b.f(0.1, 0.4),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "size", b.intn(1, 2)),
				Body: []apps.Stmt{apps.Work{Units: 1}}},
		},
	})
	compute := b.fn(&apps.FuncSpec{
		Name:         "relax_interior",
		Kind:         apps.KindKernel,
		WorkNanos:    b.f(25, 50),
		MemIntensity: b.f(0, 0.3),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "size", 2),
				Body: []apps.Stmt{apps.Work{Units: float64(b.intn(1, 2))}}},
		},
	})
	surf := b.intn(1, 2)
	exchange := b.fn(&apps.FuncSpec{
		Name:      "exchange_halo",
		Kind:      apps.KindComm,
		WorkNanos: 10,
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.StaticConst, Bound: apps.Q(float64(b.intn(2, 4))),
				Body: []apps.Stmt{
					apps.Call{Callee: "MPI_Isend", CountArg: ptr(qty(float64(b.intn(1, 3)), "size", surf))},
					apps.Call{Callee: "MPI_Irecv", CountArg: ptr(qty(1, "size", surf))},
				}},
			apps.Call{Callee: "MPI_Waitall"},
		},
	})
	b.useMPI("MPI_Isend", "MPI_Irecv", "MPI_Waitall")

	step := []apps.Stmt{
		apps.Call{Callee: pack},
		apps.Call{Callee: compute},
		apps.Call{Callee: exchange},
	}
	if b.r.Intn(2) == 0 {
		ring := b.fn(&apps.FuncSpec{
			Name:      "ring_shift",
			Kind:      apps.KindComm,
			WorkNanos: 10,
			Body: []apps.Stmt{
				apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "p", 1),
					Body: []apps.Stmt{
						apps.Call{Callee: "MPI_Send", CountArg: ptr(qty(1, "size", 1))},
					}},
			},
		})
		b.useMPI("MPI_Send")
		step = append(step, apps.Call{Callee: ring})
	}
	coll := []string{"MPI_Allgather", "MPI_Bcast", "MPI_Alltoall"}[b.r.Intn(3)]
	collective := b.fn(&apps.FuncSpec{
		Name:      "sync_global",
		Kind:      apps.KindComm,
		WorkNanos: 10,
		Body: []apps.Stmt{
			apps.Call{Callee: coll, CountArg: ptr(qty(1, "size", 1))},
		},
	})
	b.useMPI(coll)
	step = append(step, apps.Call{Callee: collective})

	b.main.Body = append(b.fillers(),
		apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "steps", 1), Body: step})
}

// stream generates the memory-bound archetype: high-memory-intensity
// linear loops with no code-level dependence on p. Any p-term a
// black-box fit discovers comes from bandwidth contention — a machine
// effect the taint proof vetoes (the paper's C1 experiment).
func (b *builder) stream() {
	b.begin([]string{"n"}, []float64{64, 96, 128, 160})

	names := []string{"stream_copy", "stream_scale", "stream_add", "stream_triad"}
	var kernels []string
	for i, n := 0, b.intn(2, 4); i < n; i++ {
		kernels = append(kernels, b.fn(&apps.FuncSpec{
			Name:         names[i],
			Kind:         apps.KindKernel,
			WorkNanos:    b.f(10, 25),
			MemIntensity: b.f(0.6, 0.95),
			Body: []apps.Stmt{
				apps.Loop{Kind: apps.ParamBound, Bound: qty(float64(b.intn(1, 2)), "n", 1),
					Body: []apps.Stmt{apps.Work{Units: float64(b.intn(1, 2))}}},
			},
		}))
	}
	checksum := b.fn(&apps.FuncSpec{
		Name:         "checksum",
		Kind:         apps.KindKernel,
		WorkNanos:    b.f(8, 15),
		MemIntensity: b.f(0, 0.2),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "n", 1),
				Body: []apps.Stmt{apps.Work{Units: 1}}},
		},
	})

	rounds := []apps.Stmt{}
	for _, k := range kernels {
		rounds = append(rounds, apps.Call{Callee: k})
	}
	rounds = append(rounds, apps.Call{Callee: checksum})
	b.main.Body = append(b.fillers(),
		apps.Loop{Kind: apps.RuntimeConst, Bound: apps.Q(float64(b.intn(3, 5))), Body: rounds})
}

// masterWorker generates the load-imbalanced archetype: tasks are
// scattered to ranks, each rank works through a tasks/p divided loop
// bound (floor division — outside the PMNF space, still a taint-visible
// {tasks, p} dependence), and results are gathered back. The worker
// carries ImbalanceSkew, a scheduling effect the measurement layer adds
// on top of the rank-symmetric ground truth.
func (b *builder) masterWorker() {
	b.begin([]string{"tasks"}, []float64{64, 96, 128, 160})

	distribute := b.fn(&apps.FuncSpec{
		Name:      "distribute_tasks",
		Kind:      apps.KindComm,
		WorkNanos: 10,
		Body: []apps.Stmt{
			apps.Call{Callee: "MPI_Scatter",
				CountArg: ptr(qty(float64(b.intn(1, 2)), "tasks", 1).Times("p", -1))},
		},
	})
	worker := b.fn(&apps.FuncSpec{
		Name:          "process_chunk",
		Kind:          apps.KindKernel,
		WorkNanos:     b.f(40, 80),
		MemIntensity:  b.f(0, 0.3),
		ImbalanceSkew: b.f(0.15, 0.4),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "tasks", 1).Times("p", -1),
				Body: []apps.Stmt{
					apps.Work{Units: float64(b.intn(2, 4))},
					apps.Loop{Kind: apps.StaticConst, Bound: apps.Q(float64(b.intn(2, 4))),
						Body: []apps.Stmt{apps.Work{Units: 1}}},
				}},
		},
	})
	collect := b.fn(&apps.FuncSpec{
		Name:      "collect_results",
		Kind:      apps.KindComm,
		WorkNanos: 10,
		Body: []apps.Stmt{
			apps.Call{Callee: "MPI_Gather", CountArg: ptr(qty(1, "tasks", 1).Times("p", -1))},
		},
	})
	sync := b.fn(&apps.FuncSpec{
		Name:      "sync_epoch",
		Kind:      apps.KindComm,
		WorkNanos: 5,
		Body:      []apps.Stmt{apps.Call{Callee: "MPI_Barrier"}},
	})
	b.useMPI("MPI_Scatter", "MPI_Gather", "MPI_Barrier")

	b.main.Body = append(b.fillers(),
		apps.Loop{Kind: apps.StaticConst, Bound: apps.Q(float64(b.intn(2, 3))),
			Body: []apps.Stmt{
				apps.Call{Callee: distribute},
				apps.Call{Callee: worker},
				apps.Call{Callee: collect},
			}},
		apps.Call{Callee: sync})
}

// mixed generates the deep-call-tree archetype: region-partitioned
// divided bounds, a parameter-driven branch selecting between execution
// variants (a tainted non-loop branch the dependency sets must NOT
// absorb), and a collective exchange, three calls deep from main.
func (b *builder) mixed() {
	b.begin([]string{"size", "regions"},
		[]float64{6, 8, 10}, []float64{2, 3, 4})

	regionUpdate := b.fn(&apps.FuncSpec{
		Name:         "region_update",
		Kind:         apps.KindKernel,
		WorkNanos:    b.f(30, 60),
		MemIntensity: b.f(0, 0.3),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "size", 2).Times("regions", -1),
				Body: []apps.Stmt{apps.Work{Units: float64(b.intn(1, 3))}}},
		},
	})
	kernel := b.fn(&apps.FuncSpec{
		Name:         "smooth_field",
		Kind:         apps.KindKernel,
		WorkNanos:    b.f(25, 50),
		MemIntensity: b.f(0, 0.2),
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "size", b.intn(1, 2)),
				Body: []apps.Stmt{apps.Work{Units: 1}}},
		},
	})
	// The branch selects how often the kernel runs, not whether distinct
	// code exists in each arm. The arms differ by call multiplicity, not
	// by loops: a loop (of any bound kind) inside the arm would absorb
	// the condition's parameter through control-flow taint propagation,
	// while call multiplicity leaves the callee's loop records — and
	// therefore every dependency set — untouched. The condition parameter
	// (regions) must appear only in the tainted-branch report, never in
	// solve_region's dependency set.
	solve := b.fn(&apps.FuncSpec{
		Name:      "solve_region",
		Kind:      apps.KindKernel,
		WorkNanos: b.f(20, 40),
		Body: []apps.Stmt{
			apps.Branch{
				Param: "regions",
				Less:  float64(b.intn(3, 4)),
				Then: []apps.Stmt{
					apps.Call{Callee: kernel},
					apps.Call{Callee: kernel},
				},
				Else: []apps.Stmt{apps.Call{Callee: kernel}},
			},
			apps.Loop{Kind: apps.ParamBound, Bound: qty(1, "size", 1),
				Body: []apps.Stmt{apps.Work{Units: 1}}},
		},
	})
	coll := []string{"MPI_Allreduce", "MPI_Allgather"}[b.r.Intn(2)]
	countArg := ptr(qty(1, "size", 1))
	exchange := b.fn(&apps.FuncSpec{
		Name:      "exchange_regions",
		Kind:      apps.KindComm,
		WorkNanos: 10,
		Body: []apps.Stmt{
			apps.Call{Callee: coll, CountArg: countArg},
		},
	})
	b.useMPI(coll)

	b.main.Body = append(b.fillers(),
		apps.Loop{Kind: apps.StaticConst, Bound: apps.Q(float64(b.intn(2, 3))),
			Body: []apps.Stmt{
				apps.Call{Callee: regionUpdate},
				apps.Call{Callee: solve},
				apps.Call{Callee: exchange},
			}})
}

// ptr boxes a Quantity for Call.CountArg.
func ptr(q apps.Quantity) *apps.Quantity { return &q }
