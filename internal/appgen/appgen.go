// Package appgen generates seeded random applications with analytically
// known ground truth, and validates end-to-end model recovery against it.
//
// Where internal/apps curates hand-written reproductions of the paper's
// evaluation codes (LULESH, MILC), appgen mass-produces apps.Spec values
// in named archetypes — compute-bound stencils, communication-heavy halo
// exchanges, memory-bound streaming kernels, load-imbalanced master/worker
// decompositions, and mixed call trees. Because every generated app is a
// declarative Spec, its true per-function parameter dependencies and loop
// iteration polynomials are derivable by construction (truth.go mirrors
// the taint semantics of internal/core exactly), which turns the whole
// analysis pipeline into a measurable instrument: run each app through
// core.Prepare -> sweep -> modelreg fitting, then score the recovered
// dependencies and models against the analytic truth (recovery.go).
//
// The golden corpus (corpus.go, testdata/corpus_v1.json) pins a set of
// (archetype, seed) pairs with their expected dependency sets and
// recovery scores; the CI corpus-smoke job regenerates and re-scores it
// on every change, gating on dependency precision/recall and model
// quality thresholds.
package appgen

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/libdb"
	"repro/internal/modelreg"
)

// Archetype names one generator family. Each archetype stresses a
// different axis of the analysis: loop-bound taint, collective
// communication, machine-side contention, divided (per-rank) bounds, and
// deep call trees with parameter-driven branching.
type Archetype string

// The generator families.
const (
	// Stencil is compute-bound: a timestep loop over polynomial kernels
	// with one residual collective per step.
	Stencil Archetype = "stencil"
	// Halo is communication-heavy: neighbor exchanges with message sizes
	// growing in the mesh surface, plus collectives and a rank loop.
	Halo Archetype = "halo"
	// Stream is memory-bound: high-MemIntensity single loops with no
	// code-level dependence on p, so any fitted p-term is a machine
	// effect (contention) the taint proof must veto.
	Stream Archetype = "stream"
	// MasterWorker is load-imbalanced: tasks/p divided loop bounds,
	// scatter/gather distribution, and nonzero ImbalanceSkew.
	MasterWorker Archetype = "master-worker"
	// Mixed combines the above in a deeper call tree with a
	// parameter-driven branch selecting between kernel variants.
	Mixed Archetype = "mixed"
)

// Archetypes lists every generator family in canonical order.
func Archetypes() []Archetype {
	return []Archetype{Stencil, Halo, Stream, MasterWorker, Mixed}
}

// App is one generated application: the spec, the canonical modeling
// design to recover it with, and the analytic ground truth resolved at
// the design's base configuration (the taint-run configuration).
type App struct {
	// Archetype and Seed identify the generator invocation; Generate is
	// deterministic in them.
	Archetype Archetype
	Seed      int64
	// Spec is the generated application.
	Spec *apps.Spec
	// Design is the canonical model-extraction design for this app:
	// every spec parameter plus the implicit p is swept.
	Design modelreg.Config
	// Truth is the analytic ground truth at the design's base
	// configuration — the configuration the pipeline's taint run uses.
	Truth *Truth
}

// Generate builds the application of (archetype, seed). The result is
// deterministic: equal inputs produce structurally identical specs and
// designs. Every function of the generated spec is reachable from main
// with at least one executed invocation at every design point.
func Generate(arch Archetype, seed int64) (*App, error) {
	r := rand.New(rand.NewSource(archSalt(arch) + seed))
	b := &builder{r: r}
	switch arch {
	case Stencil:
		b.stencil()
	case Halo:
		b.halo()
	case Stream:
		b.stream()
	case MasterWorker:
		b.masterWorker()
	case Mixed:
		b.mixed()
	default:
		return nil, fmt.Errorf("appgen: unknown archetype %q", arch)
	}
	b.spec.Name = fmt.Sprintf("%s-s%d", arch, seed)
	if err := b.spec.Validate(); err != nil {
		return nil, fmt.Errorf("appgen: %s seed %d: %w", arch, seed, err)
	}
	design := b.design
	design.App = b.spec.Name
	design.Seed = seed
	truth := ComputeTruth(b.spec, libdb.DefaultMPI(), BaseConfig(design))
	for _, f := range b.spec.Funcs {
		if ft := truth.Funcs[f.Name]; ft == nil || !ft.Executed {
			return nil, fmt.Errorf("appgen: %s seed %d: function %s is not executed at the base design point",
				arch, seed, f.Name)
		}
	}
	return &App{Archetype: arch, Seed: seed, Spec: b.spec, Design: design, Truth: truth}, nil
}

// archSalt decorrelates the random streams of different archetypes at
// equal seeds.
func archSalt(arch Archetype) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(arch); i++ {
		h ^= uint64(arch[i])
		h *= 1099511628211
	}
	return int64(h >> 1)
}

// BaseConfig is the smallest design point of a modeling config: the
// defaults overlaid with every axis at its minimum. It equals the
// configuration modelreg's pipeline runs its white-box taint analysis
// at, so analytic truth resolved here matches the recovered dependency
// sets statement for statement.
func BaseConfig(c modelreg.Config) apps.Config {
	cfg := c.Defaults.Clone()
	if cfg == nil {
		cfg = make(apps.Config)
	}
	for _, ax := range c.Axes {
		min := ax.Values[0]
		for _, v := range ax.Values[1:] {
			if v < min {
				min = v
			}
		}
		cfg[ax.Param] = min
	}
	return cfg
}

// ProbeConfig is the extrapolation configuration recovery scoring
// evaluates models at: every axis at twice its maximum value, the
// regime the sweep never measured.
func ProbeConfig(c modelreg.Config) apps.Config {
	cfg := c.Defaults.Clone()
	if cfg == nil {
		cfg = make(apps.Config)
	}
	for _, ax := range c.Axes {
		max := ax.Values[0]
		for _, v := range ax.Values[1:] {
			if v > max {
				max = v
			}
		}
		cfg[ax.Param] = 2 * max
	}
	return cfg
}
