package appgen

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/modelreg"
	"repro/internal/noise"
	"repro/internal/runner"
)

// FuncScore is the recovery verdict of one spec function: recovered
// dependencies versus analytic truth, plus extrapolation errors of the
// fitted models at the probe configuration.
type FuncScore struct {
	// Function and Kind identify the scored spec function.
	Function string `json:"function"`
	Kind     string `json:"kind"`
	// WantDeps is the analytic dependency truth; GotDeps what the taint
	// pipeline recovered (empty when the function was not modeled).
	WantDeps []string `json:"want_deps,omitempty"`
	GotDeps  []string `json:"got_deps,omitempty"`
	// Missing lists truth dependencies the pipeline failed to find
	// (false negatives), Extra dependencies it hallucinated (false
	// positives). Both empty means exact dependency recovery.
	Missing []string `json:"missing,omitempty"`
	Extra   []string `json:"extra,omitempty"`
	// IterRelErr is the relative error of the hybrid iteration model
	// against the exact analytic iteration count at the probe
	// configuration; negative when the function was not term-checked
	// (unrepresentable truth, no fit, or zero analytic iterations).
	IterRelErr float64 `json:"iter_rel_err"`
	// SecondsHybridErr and SecondsBlackBoxErr are the relative errors of
	// the two seconds models against the noise-free synthetic
	// measurement at the probe configuration; negative when the
	// respective fit is absent.
	SecondsHybridErr   float64 `json:"seconds_hybrid_err"`
	SecondsBlackBoxErr float64 `json:"seconds_black_box_err"`
}

// Score aggregates one app's recovery quality.
type Score struct {
	// App, Archetype, and Seed identify the scored application.
	App       string    `json:"app"`
	Archetype Archetype `json:"archetype"`
	Seed      int64     `json:"seed"`
	// Probe is the extrapolation configuration models were evaluated at
	// (twice every axis maximum — outside the swept design).
	Probe apps.Config `json:"probe"`
	// Funcs holds per-function verdicts in spec order.
	Funcs []FuncScore `json:"funcs"`
	// TP, FP, and FN count dependency pairs (function, parameter) over
	// all spec functions: truth deps recovered, hallucinated, missed.
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`
	// Precision and Recall are the dependency-recovery rates; both 1
	// when their denominators are empty.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// TermChecked counts functions whose analytic iteration polynomial
	// is PMNF-representable, whose invocation count is
	// configuration-independent, and whose hybrid iteration model was
	// compared at the probe; TermAgree how many agreed within 25%
	// relative error. TermAgreement is their ratio (1 when none checked).
	TermChecked   int     `json:"term_checked"`
	TermAgree     int     `json:"term_agree"`
	TermAgreement float64 `json:"term_agreement"`
	// WinComparable counts machine-clean functions (no contention,
	// imbalance, or hardware scaling, configuration-independent
	// invocation count) where both seconds fits exist;
	// WinNoWorse how many of those the hybrid model predicted no worse
	// than the black-box model at the probe. WinRate is their ratio
	// (1 when none comparable).
	WinComparable int     `json:"win_comparable"`
	WinNoWorse    int     `json:"win_no_worse"`
	WinRate       float64 `json:"win_rate"`
	// PrunedNoise counts parameter attributions where the black-box fit
	// used a parameter the taint proof vetoes — the noise-induced false
	// dependencies the hybrid pipeline removed (the paper's headline
	// pruning effect).
	PrunedNoise int `json:"pruned_noise"`
	// Points is the number of design points the sweep consumed.
	Points int `json:"points"`
}

// Recover runs one generated app through the full extraction pipeline —
// core.Prepare, the streamed sweep, and modelreg fitting — and scores
// the resulting model set against the app's analytic truth.
func Recover(ctx context.Context, run *runner.Runner, app *App) (*Score, error) {
	prep, err := core.Prepare(app.Spec)
	if err != nil {
		return nil, fmt.Errorf("appgen: prepare %s: %w", app.Spec.Name, err)
	}
	ms, err := modelreg.Extract(ctx, run, prep, app.Design, nil)
	if err != nil {
		return nil, fmt.Errorf("appgen: extract %s: %w", app.Spec.Name, err)
	}
	return ScoreModelSet(app, ms)
}

// ScoreModelSet scores an extracted model set against the app's analytic
// ground truth. It is deterministic: the probe-point reference values
// are computed noise-free.
func ScoreModelSet(app *App, ms *modelreg.ModelSet) (*Score, error) {
	probe := ProbeConfig(app.Design)
	sc := &Score{
		App:       app.Spec.Name,
		Archetype: app.Archetype,
		Seed:      app.Seed,
		Probe:     probe,
		Points:    ms.Points,
	}

	got := make(map[string]*modelreg.FunctionModels, len(ms.Functions))
	relevant := make(map[string]bool, len(ms.Functions))
	for i := range ms.Functions {
		fm := &ms.Functions[i]
		if fm.Kind == "mpi" {
			continue
		}
		got[fm.Function] = fm
		relevant[fm.Function] = true
		for _, mm := range fm.Metrics {
			for _, at := range mm.Attribution {
				if at.Status == modelreg.AttrPrunedNoise {
					sc.PrunedNoise++
				}
			}
		}
	}

	// Probe-point references: exact iteration counts and the noise-free
	// instrumented measurement under the same taint filter the sweep
	// measured with.
	iters := IterationTotals(app.Spec, probe)
	instrumented := measure.Select(app.Spec, measure.FilterTaint, relevant)
	clus := cluster.NewRunner(app.Spec)
	prof, err := clus.Measure(probe, instrumented, 1, noise.Quiet())
	if err != nil {
		return nil, fmt.Errorf("appgen: probe measurement %s: %w", app.Spec.Name, err)
	}

	pv := make(map[string]float64, len(ms.Params))
	for _, prm := range ms.Params {
		pv[prm] = probe[prm]
	}

	for _, f := range app.Spec.Funcs {
		ft := app.Truth.Funcs[f.Name]
		fs := FuncScore{
			Function:           f.Name,
			Kind:               f.Kind.String(),
			IterRelErr:         -1,
			SecondsHybridErr:   -1,
			SecondsBlackBoxErr: -1,
		}
		if ft != nil {
			fs.WantDeps = ft.Deps
		}
		fm := got[f.Name]
		if fm != nil {
			fs.GotDeps = fm.Deps
		}
		fs.Missing, fs.Extra = diffSets(fs.WantDeps, fs.GotDeps)
		sc.TP += len(fs.WantDeps) - len(fs.Missing)
		sc.FP += len(fs.Extra)
		sc.FN += len(fs.Missing)

		if fm != nil {
			if mm := metricOf(fm, modelreg.MetricIterations); mm != nil && mm.Hybrid != nil {
				// Term checks are restricted to functions whose invocation
				// count is configuration-independent (empty InvParams): a
				// kernel called iters times has a metric total proportional
				// to iters*size^d, but the hybrid prior restricts terms to
				// the kernel's own FuncDeps — the multiplicity factor is
				// structurally outside its hypothesis space.
				if truth := float64(iters[f.Name]); truth > 0 && ft != nil &&
					ft.Representable && len(ft.InvParams) == 0 {
					fs.IterRelErr = relErr(mm.Hybrid.Eval(pv), truth)
					sc.TermChecked++
					if fs.IterRelErr <= 0.25 {
						sc.TermAgree++
					}
				}
			}
			if mm := metricOf(fm, modelreg.MetricSeconds); mm != nil {
				truth := 0.0
				if vals := prof.FuncSeconds[f.Name]; len(vals) > 0 {
					truth = vals[0]
				}
				if truth > 0 {
					if mm.Hybrid != nil {
						fs.SecondsHybridErr = relErr(mm.Hybrid.Eval(pv), truth)
					}
					if mm.BlackBox != nil {
						fs.SecondsBlackBoxErr = relErr(mm.BlackBox.Eval(pv), truth)
					}
					if fs.SecondsHybridErr >= 0 && fs.SecondsBlackBoxErr >= 0 &&
						machineClean(f) && ft != nil && len(ft.InvParams) == 0 {
						sc.WinComparable++
						// "No worse" allows a small absolute and relative
						// slack: at equal quality the hybrid model's
						// restricted search must not be penalized for
						// fit-time tie-breaking.
						if fs.SecondsHybridErr <= fs.SecondsBlackBoxErr+0.02+0.1*fs.SecondsBlackBoxErr {
							sc.WinNoWorse++
						}
					}
				}
			}
		}
		sc.Funcs = append(sc.Funcs, fs)
	}

	sc.Precision = ratio(sc.TP, sc.TP+sc.FP)
	sc.Recall = ratio(sc.TP, sc.TP+sc.FN)
	sc.TermAgreement = ratio(sc.TermAgree, sc.TermChecked)
	sc.WinRate = ratio(sc.WinNoWorse, sc.WinComparable)
	return sc, nil
}

// machineClean reports whether a function's measured time is fully
// determined by code-level structure: no contention sensitivity, no
// imbalance skew, no hardware p-scaling. Only such functions make a fair
// hybrid-vs-black-box comparison — for the others the black-box fit is
// allowed to chase machine effects the taint proof correctly excludes.
func machineClean(f *apps.FuncSpec) bool {
	return f.MemIntensity == 0 && f.ImbalanceSkew == 0 && f.HWFactorPExp == 0
}

// metricOf finds the metric entry of one fitted function, or nil.
func metricOf(fm *modelreg.FunctionModels, metric string) *modelreg.MetricModel {
	for i := range fm.Metrics {
		if fm.Metrics[i].Metric == metric {
			return &fm.Metrics[i]
		}
	}
	return nil
}

// relErr is |got-want| / |want|.
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// ratio divides with the empty-denominator convention of recovery
// scoring: vacuous populations score perfect.
func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// diffSets returns want\got (missing) and got\want (extra), preserving
// sorted order.
func diffSets(want, got []string) (missing, extra []string) {
	w := make(map[string]bool, len(want))
	for _, s := range want {
		w[s] = true
	}
	g := make(map[string]bool, len(got))
	for _, s := range got {
		g[s] = true
	}
	for _, s := range want {
		if !g[s] {
			missing = append(missing, s)
		}
	}
	for _, s := range got {
		if !w[s] {
			extra = append(extra, s)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	return missing, extra
}
