package appgen

import (
	"context"
	"testing"

	"repro/internal/runner"
)

// corpusSeeds is the seed range the e2e tests sweep per archetype: 5
// archetypes x 5 seeds = 25 end-to-end recovery runs (the acceptance
// floor is 20 apps over 4 archetypes).
var corpusSeeds = []int64{1, 2, 3, 4, 5}

// TestEndToEndRecovery runs every corpus app through the full pipeline —
// Prepare, streamed sweep, model fitting — and gates dependency recovery
// against the analytic truth: micro-averaged precision and recall must
// both reach 0.9 (they are expected to be exactly 1.0; the slack covers
// future archetypes with deliberately adversarial structure).
func TestEndToEndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end recovery sweep is not a -short test")
	}
	type agg struct {
		tp, fp, fn                int
		termChecked, termAgree    int
		winComparable, winNoWorse int
		prunedNoise, apps, points int
		perArchetype              map[Archetype]int
	}
	results := make(chan *Score, len(Archetypes())*len(corpusSeeds))

	t.Run("sweep", func(t *testing.T) {
		for _, arch := range Archetypes() {
			for _, seed := range corpusSeeds {
				arch, seed := arch, seed
				t.Run(string(arch)+"/"+string(rune('0'+seed)), func(t *testing.T) {
					t.Parallel()
					app, err := Generate(arch, seed)
					if err != nil {
						t.Fatalf("Generate: %v", err)
					}
					sc, err := Recover(context.Background(), runner.New(), app)
					if err != nil {
						t.Fatalf("Recover: %v", err)
					}
					for _, f := range sc.Funcs {
						if len(f.Missing) > 0 || len(f.Extra) > 0 {
							t.Logf("%s: %s deps want %v got %v", sc.App, f.Function, f.WantDeps, f.GotDeps)
						}
					}
					results <- sc
				})
			}
		}
	})
	close(results)

	var a agg
	a.perArchetype = make(map[Archetype]int)
	for sc := range results {
		a.apps++
		a.points += sc.Points
		a.perArchetype[sc.Archetype]++
		a.tp += sc.TP
		a.fp += sc.FP
		a.fn += sc.FN
		a.termChecked += sc.TermChecked
		a.termAgree += sc.TermAgree
		a.winComparable += sc.WinComparable
		a.winNoWorse += sc.WinNoWorse
		a.prunedNoise += sc.PrunedNoise
	}
	if a.apps < 20 {
		t.Fatalf("e2e sweep covered %d apps, want >= 20", a.apps)
	}
	if len(a.perArchetype) < 4 {
		t.Fatalf("e2e sweep covered %d archetypes, want >= 4", len(a.perArchetype))
	}
	precision := ratio(a.tp, a.tp+a.fp)
	recall := ratio(a.tp, a.tp+a.fn)
	termAgreement := ratio(a.termAgree, a.termChecked)
	winRate := ratio(a.winNoWorse, a.winComparable)
	t.Logf("apps=%d points=%d deps: tp=%d fp=%d fn=%d precision=%.3f recall=%.3f",
		a.apps, a.points, a.tp, a.fp, a.fn, precision, recall)
	t.Logf("terms: %d/%d agree (%.3f); win: %d/%d no-worse (%.3f); pruned-noise=%d",
		a.termAgree, a.termChecked, termAgreement, a.winNoWorse, a.winComparable, winRate, a.prunedNoise)

	if precision < 0.9 {
		t.Errorf("dependency precision %.3f < 0.9", precision)
	}
	if recall < 0.9 {
		t.Errorf("dependency recall %.3f < 0.9", recall)
	}
	if a.termChecked == 0 {
		t.Error("no function was term-checked against its analytic iteration polynomial")
	}
	if termAgreement < 0.9 {
		t.Errorf("iteration term agreement %.3f < 0.9", termAgreement)
	}
	if winRate < 0.85 {
		t.Errorf("hybrid no-worse rate %.3f < 0.85", winRate)
	}
}
