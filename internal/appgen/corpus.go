package appgen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/runner"
)

// CorpusVersion names the manifest schema and generator revision. Bump it
// (and re-bless the manifest) when the generator, the scoring, or the
// analysis semantics change the expected numbers.
const CorpusVersion = "corpus-v1"

// Thresholds are the minimum recovery scores the corpus gate enforces.
// Precision and Recall apply to every entry individually (dependency
// recovery is expected exact app by app); TermAgreement and WinRate
// apply to the corpus-wide aggregate because individual entries have
// checkable populations too small for a stable ratio.
type Thresholds struct {
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	TermAgreement float64 `json:"term_agreement"`
	WinRate       float64 `json:"win_rate"`
}

// DefaultThresholds returns the corpus gates. Dependency recovery is
// expected to be exact; the term/win gates leave slack for fit-time
// tie-breaking on individual entries.
func DefaultThresholds() Thresholds {
	return Thresholds{Precision: 1, Recall: 1, TermAgreement: 0.9, WinRate: 0.8}
}

// CorpusEntry pins one (archetype, seed) pair: the generated app's
// identity, its analytic dependency truth, and the recovery scores the
// pipeline achieved when the manifest was blessed.
type CorpusEntry struct {
	Archetype Archetype `json:"archetype"`
	Seed      int64     `json:"seed"`
	App       string    `json:"app"`
	// Functions counts the spec functions of the generated app.
	Functions int `json:"functions"`
	// Deps is the analytic ground truth at the base design point:
	// function name to sorted dependency parameters, omitting
	// dependency-free functions. Manifest checks compare this against the
	// regenerated truth, so silent generator or taint-semantics drift
	// fails loudly.
	Deps map[string][]string `json:"deps"`
	// Blessed recovery scores, recorded for drift visibility; checks gate
	// on Thresholds, not on these exact values.
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	TermAgreement float64 `json:"term_agreement"`
	WinRate       float64 `json:"win_rate"`
	PrunedNoise   int     `json:"pruned_noise"`
	// Raw term/win counts. Single entries have tiny checkable
	// populations (a 2/3 ratio is one tie-break away from 3/3), so the
	// term and win thresholds gate the corpus-wide aggregate of these
	// counts, not each entry's ratio.
	TermChecked   int `json:"term_checked"`
	TermAgree     int `json:"term_agree"`
	WinComparable int `json:"win_comparable"`
	WinNoWorse    int `json:"win_no_worse"`
}

// Corpus is the golden validation corpus manifest
// (internal/appgen/testdata/corpus_v1.json).
type Corpus struct {
	Version    string        `json:"version"`
	Thresholds Thresholds    `json:"thresholds"`
	Entries    []CorpusEntry `json:"entries"`
}

// DefaultCorpusSeeds are the per-archetype seeds of the golden corpus:
// with the five archetypes this spans 25 apps, comfortably above the 20
// apps / 4 archetypes acceptance floor.
func DefaultCorpusSeeds() []int64 { return []int64{1, 2, 3, 4, 5} }

// BuildCorpus generates and scores the full default corpus: every
// archetype crossed with DefaultCorpusSeeds, each run end-to-end through
// the recovery pipeline. Entries are emitted in (archetype, seed) order.
func BuildCorpus(ctx context.Context, run *runner.Runner) (*Corpus, error) {
	c := &Corpus{Version: CorpusVersion, Thresholds: DefaultThresholds()}
	for _, arch := range Archetypes() {
		for _, seed := range DefaultCorpusSeeds() {
			app, err := Generate(arch, seed)
			if err != nil {
				return nil, err
			}
			sc, err := Recover(ctx, run, app)
			if err != nil {
				return nil, err
			}
			deps := make(map[string][]string)
			for name, ft := range app.Truth.Funcs {
				if len(ft.Deps) > 0 {
					deps[name] = ft.Deps
				}
			}
			c.Entries = append(c.Entries, CorpusEntry{
				Archetype:     arch,
				Seed:          seed,
				App:           app.Spec.Name,
				Functions:     len(app.Spec.Funcs),
				Deps:          deps,
				Precision:     sc.Precision,
				Recall:        sc.Recall,
				TermAgreement: sc.TermAgreement,
				WinRate:       sc.WinRate,
				PrunedNoise:   sc.PrunedNoise,
				TermChecked:   sc.TermChecked,
				TermAgree:     sc.TermAgree,
				WinComparable: sc.WinComparable,
				WinNoWorse:    sc.WinNoWorse,
			})
		}
	}
	return c, nil
}

// Check compares a freshly built corpus against the blessed manifest and
// returns one human-readable violation per defect: version or entry-set
// drift, dependency-truth drift, and threshold misses. An empty slice
// means the corpus gate passes.
func (c *Corpus) Check(built *Corpus) []string {
	var bad []string
	if built.Version != c.Version {
		bad = append(bad, fmt.Sprintf("corpus version drift: manifest %q, built %q (re-bless with -update)",
			c.Version, built.Version))
	}
	byApp := make(map[string]*CorpusEntry, len(built.Entries))
	for i := range built.Entries {
		byApp[built.Entries[i].App] = &built.Entries[i]
	}
	for i := range c.Entries {
		want := &c.Entries[i]
		got := byApp[want.App]
		if got == nil {
			bad = append(bad, fmt.Sprintf("%s: manifest entry missing from built corpus", want.App))
			continue
		}
		delete(byApp, want.App)
		if got.Functions != want.Functions {
			bad = append(bad, fmt.Sprintf("%s: function count drift: manifest %d, built %d",
				want.App, want.Functions, got.Functions))
		}
		bad = append(bad, diffDeps(want.App, want.Deps, got.Deps)...)
		// Dependency recovery is gated per entry: precision and recall
		// are expected exact on every single app.
		for _, g := range []struct {
			name     string
			min, got float64
		}{
			{"precision", c.Thresholds.Precision, got.Precision},
			{"recall", c.Thresholds.Recall, got.Recall},
		} {
			if g.got < g.min {
				bad = append(bad, fmt.Sprintf("%s: %s %.3f below threshold %.3f",
					want.App, g.name, g.got, g.min))
			}
		}
	}
	// Term agreement and win rate are gated on the corpus-wide aggregate:
	// per-entry checkable populations are tiny.
	var termChecked, termAgree, winComparable, winNoWorse int
	for i := range built.Entries {
		termChecked += built.Entries[i].TermChecked
		termAgree += built.Entries[i].TermAgree
		winComparable += built.Entries[i].WinComparable
		winNoWorse += built.Entries[i].WinNoWorse
	}
	if termChecked == 0 {
		bad = append(bad, "no corpus function was term-checked against its iteration polynomial")
	} else if r := float64(termAgree) / float64(termChecked); r < c.Thresholds.TermAgreement {
		bad = append(bad, fmt.Sprintf("corpus term agreement %d/%d = %.3f below threshold %.3f",
			termAgree, termChecked, r, c.Thresholds.TermAgreement))
	}
	if winComparable == 0 {
		bad = append(bad, "no corpus function was hybrid-vs-black-box comparable")
	} else if r := float64(winNoWorse) / float64(winComparable); r < c.Thresholds.WinRate {
		bad = append(bad, fmt.Sprintf("corpus hybrid no-worse rate %d/%d = %.3f below threshold %.3f",
			winNoWorse, winComparable, r, c.Thresholds.WinRate))
	}
	extra := make([]string, 0, len(byApp))
	for app := range byApp {
		extra = append(extra, app)
	}
	sort.Strings(extra)
	for _, app := range extra {
		bad = append(bad, fmt.Sprintf("%s: built entry missing from manifest (re-bless with -update)", app))
	}
	return bad
}

// diffDeps reports per-function dependency drift between the blessed and
// regenerated truth of one app.
func diffDeps(app string, want, got map[string][]string) []string {
	var bad []string
	names := make(map[string]bool, len(want)+len(got))
	for n := range want {
		names[n] = true
	}
	for n := range got {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		w, g := want[n], got[n]
		if len(w) == len(g) {
			same := true
			for i := range w {
				if w[i] != g[i] {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		bad = append(bad, fmt.Sprintf("%s: %s dependency drift: manifest %v, built %v", app, n, w, g))
	}
	return bad
}

// LoadCorpus reads a manifest from disk.
func LoadCorpus(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("appgen: load corpus: %w", err)
	}
	var c Corpus
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("appgen: parse corpus %s: %w", path, err)
	}
	return &c, nil
}

// SaveCorpus writes a manifest with stable formatting (the re-bless
// flow: go test ./internal/appgen -update, or perftaint corpus -update).
func SaveCorpus(path string, c *Corpus) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
