package appgen

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/modelreg"
	"repro/internal/runner"
)

var update = flag.Bool("update", false, "re-bless the golden corpus manifest")

const corpusManifest = "testdata/corpus_v1.json"

// TestGoldenCorpus rebuilds the full validation corpus and checks it
// against the blessed manifest: same entry set, identical analytic
// dependency truth, and recovery scores above the manifest thresholds.
// Re-bless after intentional generator or analysis changes with
//
//	go test ./internal/appgen -run TestGoldenCorpus -update
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus rebuild is not a -short test")
	}
	built, err := BuildCorpus(context.Background(), runner.New())
	if err != nil {
		t.Fatalf("BuildCorpus: %v", err)
	}
	path := filepath.FromSlash(corpusManifest)
	if *update {
		if err := SaveCorpus(path, built); err != nil {
			t.Fatalf("SaveCorpus: %v", err)
		}
		t.Logf("re-blessed %s with %d entries", path, len(built.Entries))
		return
	}
	manifest, err := LoadCorpus(path)
	if err != nil {
		t.Fatalf("LoadCorpus (run with -update to bless): %v", err)
	}
	if n := len(manifest.Entries); n < 20 {
		t.Errorf("manifest has %d entries, want >= 20", n)
	}
	archs := make(map[Archetype]bool)
	for _, e := range manifest.Entries {
		archs[e.Archetype] = true
	}
	if len(archs) < 4 {
		t.Errorf("manifest spans %d archetypes, want >= 4", len(archs))
	}
	for _, v := range manifest.Check(built) {
		t.Error(v)
	}
}

// TestGoldenCorpusCrossEngine runs every blessed corpus app through the
// model-extraction pipeline twice — once under ModeFast, once under
// ModeCompiled — and requires the finished artifacts to be
// byte-identical: the same content-addressed registry key and the same
// canonical ModelSet JSON. The compiled tier is an execution strategy,
// not an analysis variant, so it must be provably invisible in the
// paper's deliverable.
func TestGoldenCorpusCrossEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus cross-engine sweep is not a -short test")
	}
	ctx := context.Background()
	run := runner.New()
	extract := func(t *testing.T, app *App, mode interp.Mode) *modelreg.ModelSet {
		t.Helper()
		prep, err := core.Prepare(app.Spec)
		if err != nil {
			t.Fatalf("%s: prepare: %v", app.Spec.Name, err)
		}
		prep.Mode = mode
		ms, err := modelreg.Extract(ctx, run, prep, app.Design, nil)
		if err != nil {
			t.Fatalf("%s: extract (%v): %v", app.Spec.Name, mode, err)
		}
		return ms
	}
	for _, arch := range Archetypes() {
		for _, seed := range DefaultCorpusSeeds() {
			app, err := Generate(arch, seed)
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", arch, seed, err)
			}
			fast := extract(t, app, interp.ModeFast)
			compiled := extract(t, app, interp.ModeCompiled)
			if fast.Key != compiled.Key {
				t.Errorf("%s: registry key diverged: fast %s, compiled %s",
					app.Spec.Name, fast.Key, compiled.Key)
			}
			fj, err := json.Marshal(fast)
			if err != nil {
				t.Fatalf("%s: marshal fast model set: %v", app.Spec.Name, err)
			}
			cj, err := json.Marshal(compiled)
			if err != nil {
				t.Fatalf("%s: marshal compiled model set: %v", app.Spec.Name, err)
			}
			if !bytes.Equal(fj, cj) {
				t.Errorf("%s: model set bytes diverged between engines:\n--- fast ---\n%s\n--- compiled ---\n%s",
					app.Spec.Name, fj, cj)
			}
		}
	}
}
