package appgen

import (
	"context"
	"flag"
	"path/filepath"
	"testing"

	"repro/internal/runner"
)

var update = flag.Bool("update", false, "re-bless the golden corpus manifest")

const corpusManifest = "testdata/corpus_v1.json"

// TestGoldenCorpus rebuilds the full validation corpus and checks it
// against the blessed manifest: same entry set, identical analytic
// dependency truth, and recovery scores above the manifest thresholds.
// Re-bless after intentional generator or analysis changes with
//
//	go test ./internal/appgen -run TestGoldenCorpus -update
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus rebuild is not a -short test")
	}
	built, err := BuildCorpus(context.Background(), runner.New())
	if err != nil {
		t.Fatalf("BuildCorpus: %v", err)
	}
	path := filepath.FromSlash(corpusManifest)
	if *update {
		if err := SaveCorpus(path, built); err != nil {
			t.Fatalf("SaveCorpus: %v", err)
		}
		t.Logf("re-blessed %s with %d entries", path, len(built.Entries))
		return
	}
	manifest, err := LoadCorpus(path)
	if err != nil {
		t.Fatalf("LoadCorpus (run with -update to bless): %v", err)
	}
	if n := len(manifest.Entries); n < 20 {
		t.Errorf("manifest has %d entries, want >= 20", n)
	}
	archs := make(map[Archetype]bool)
	for _, e := range manifest.Entries {
		archs[e.Archetype] = true
	}
	if len(archs) < 4 {
		t.Errorf("manifest spans %d archetypes, want >= 4", len(archs))
	}
	for _, v := range manifest.Check(built) {
		t.Error(v)
	}
}
