package appgen

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestGenerateDeterministic pins that equal (archetype, seed) inputs
// produce byte-identical specs (via the content digest) and equal truth.
func TestGenerateDeterministic(t *testing.T) {
	for _, arch := range Archetypes() {
		a, err := Generate(arch, 7)
		if err != nil {
			t.Fatalf("Generate(%s, 7): %v", arch, err)
		}
		b, err := Generate(arch, 7)
		if err != nil {
			t.Fatalf("Generate(%s, 7) again: %v", arch, err)
		}
		if da, db := core.SpecDigest(a.Spec), core.SpecDigest(b.Spec); da != db {
			t.Errorf("%s: digests differ across identical generations: %s vs %s", arch, da, db)
		}
		if !reflect.DeepEqual(a.Truth.Funcs, b.Truth.Funcs) {
			t.Errorf("%s: truth differs across identical generations", arch)
		}
		c, err := Generate(arch, 8)
		if err != nil {
			t.Fatalf("Generate(%s, 8): %v", arch, err)
		}
		if core.SpecDigest(a.Spec) == core.SpecDigest(c.Spec) {
			t.Errorf("%s: seeds 7 and 8 generated identical specs", arch)
		}
	}
}

// TestTruthMatchesTaintAnalysis is the keystone consistency check: for a
// population of generated apps, the analytic ground truth (dependency
// sets from the spec walk, iteration totals from Quantity.EvalInt) must
// agree EXACTLY with what the tainted interpreter observes at the base
// design point — function for function, parameter for parameter,
// iteration for iteration.
func TestTruthMatchesTaintAnalysis(t *testing.T) {
	for _, arch := range Archetypes() {
		for seed := int64(1); seed <= 6; seed++ {
			app, err := Generate(arch, seed)
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", arch, seed, err)
			}
			if err := app.Design.Validate(app.Spec); err != nil {
				t.Fatalf("%s: design invalid: %v", app.Spec.Name, err)
			}
			cfg := BaseConfig(app.Design)
			rep, err := core.Analyze(app.Spec, cfg)
			if err != nil {
				t.Fatalf("%s: analyze: %v", app.Spec.Name, err)
			}

			for _, f := range app.Spec.Funcs {
				want := app.Truth.Funcs[f.Name].Deps
				got := rep.FuncDeps[f.Name]
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: %s deps: truth %v, taint %v", app.Spec.Name, f.Name, want, got)
				}
			}

			wantIters := IterationTotals(app.Spec, cfg)
			gotIters := make(map[string]int64)
			for k, rec := range rep.Engine.Loops {
				gotIters[k.Func] += rec.Iterations
			}
			for _, f := range app.Spec.Funcs {
				if w, g := wantIters[f.Name], gotIters[f.Name]; w != g {
					t.Errorf("%s: %s iterations: truth %d, engine %d", app.Spec.Name, f.Name, w, g)
				}
			}
		}
	}
}

// TestArchetypeDependencyShapes spot-checks the structural promises each
// archetype documents: stream apps are p-independent at code level,
// master-worker workers carry the divided {p, tasks} dependence, and
// mixed apps' branch parameter stays out of the branching function's
// dependency set.
func TestArchetypeDependencyShapes(t *testing.T) {
	stream, err := Generate(Stream, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, ft := range stream.Truth.Funcs {
		for _, d := range ft.Deps {
			if d == "p" {
				t.Errorf("stream: %s depends on p at code level: %v", name, ft.Deps)
			}
		}
	}

	mw, err := Generate(MasterWorker, 3)
	if err != nil {
		t.Fatal(err)
	}
	worker := mw.Truth.Funcs["process_chunk"]
	if !reflect.DeepEqual(worker.Deps, []string{"p", "tasks"}) {
		t.Errorf("master-worker: process_chunk deps = %v, want [p tasks]", worker.Deps)
	}
	if worker.Representable {
		t.Error("master-worker: divided bound tasks/p must not be PMNF-representable")
	}

	mixed, err := Generate(Mixed, 3)
	if err != nil {
		t.Fatal(err)
	}
	solve := mixed.Truth.Funcs["solve_region"]
	for _, d := range solve.Deps {
		if d == "regions" {
			t.Errorf("mixed: solve_region must not absorb the branch parameter: %v", solve.Deps)
		}
	}
}
