package appgen

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/modelreg"
	"repro/internal/noise"
)

// loopDump renders a report's dynamic loop records with labels expanded
// to parameter names, so dumps are comparable across engines whose
// label tables may materialize different intermediate ids.
func loopDump(r *core.Report) string {
	e := r.Engine
	var sb strings.Builder
	fmt.Fprintf(&sb, "instr=%d\n", r.Instructions)
	for _, rec := range e.SortedLoops() {
		fmt.Fprintf(&sb, "loop %s#%d@%d path=%s labels=%v iter=%d entries=%d\n",
			rec.Key.Func, rec.Key.LoopID, rec.Header, rec.Key.CallPath,
			e.Table.Expand(rec.Labels), rec.Iterations, rec.Entries)
	}
	return sb.String()
}

// TestDifferentialGeneratedApps runs generated apps of every archetype
// through the analysis pipeline under both interpreter engines and
// requires identical observations: instruction counts, loop records
// (compared by expanded label names), dependency maps, and the relevant
// set. The bundled-app differential test in internal/core pins the two
// hand-written reproductions; this one sweeps the randomized population,
// including structures the curated apps never exercise (divided bounds
// under branches, multiplicity-only branch arms).
func TestDifferentialGeneratedApps(t *testing.T) {
	for _, arch := range Archetypes() {
		for seed := int64(1); seed <= 4; seed++ {
			app, err := Generate(arch, seed)
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", arch, seed, err)
			}
			// The axis-maximum corner flips every branch arm the base
			// corner leaves untaken while staying cheap enough for the
			// tree-walking reference engine.
			for _, cfg := range []apps.Config{BaseConfig(app.Design), maxConfig(app.Design)} {
				p, err := core.Prepare(app.Spec)
				if err != nil {
					t.Fatalf("%s: prepare: %v", app.Spec.Name, err)
				}
				fast, err := p.Analyze(cfg)
				if err != nil {
					t.Fatalf("%s: fast analyze: %v", app.Spec.Name, err)
				}
				p.Mode = interp.ModeReference
				ref, err := p.Analyze(cfg)
				if err != nil {
					t.Fatalf("%s: reference analyze: %v", app.Spec.Name, err)
				}
				if fd, rd := loopDump(fast), loopDump(ref); fd != rd {
					t.Errorf("%s @ %v: loop records diverged:\n--- reference ---\n%s--- fast ---\n%s",
						app.Spec.Name, cfg, rd, fd)
				}
				for _, m := range []struct {
					name      string
					fast, ref map[string][]string
				}{
					{"FuncDeps", fast.FuncDeps, ref.FuncDeps},
					{"LoopDeps", fast.LoopDeps, ref.LoopDeps},
					{"LibDeps", fast.LibDeps, ref.LibDeps},
				} {
					if !reflect.DeepEqual(m.fast, m.ref) {
						t.Errorf("%s @ %v: %s diverged:\nfast: %v\nreference: %v",
							app.Spec.Name, cfg, m.name, m.fast, m.ref)
					}
				}
				if !reflect.DeepEqual(fast.Relevant, ref.Relevant) {
					t.Errorf("%s @ %v: Relevant diverged: fast %v, reference %v",
						app.Spec.Name, cfg, fast.Relevant, ref.Relevant)
				}
			}
		}
	}
}

// maxConfig is the design corner with every axis at its maximum swept
// value (unlike ProbeConfig, which doubles it).
func maxConfig(c modelreg.Config) apps.Config {
	cfg := c.Defaults.Clone()
	if cfg == nil {
		cfg = make(apps.Config)
	}
	for _, ax := range c.Axes {
		max := ax.Values[0]
		for _, v := range ax.Values[1:] {
			if v > max {
				max = v
			}
		}
		cfg[ax.Param] = max
	}
	return cfg
}

// TestMeasureMatchesEvaluate pins the property tying the two ground-truth
// layers together: a noise-free, uninstrumented cluster measurement at
// one rank per node must reproduce the analytic apps.Evaluate ground
// exactly — per function, exclusive seconds scaled by the imbalance
// factor plus attributed communication; per MPI routine, the simulated
// communication total; and for skew-free apps the end-to-end runtime.
func TestMeasureMatchesEvaluate(t *testing.T) {
	for _, arch := range Archetypes() {
		for seed := int64(1); seed <= 3; seed++ {
			app, err := Generate(arch, seed)
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", arch, seed, err)
			}
			for _, cfg := range []apps.Config{BaseConfig(app.Design), ProbeConfig(app.Design)} {
				run := cluster.NewRunner(app.Spec)
				run.RanksPerNodeOverride = 1 // contention factor pinned to 1
				g, err := apps.Evaluate(app.Spec, cfg, run.Cost)
				if err != nil {
					t.Fatalf("%s: evaluate: %v", app.Spec.Name, err)
				}
				prof, err := run.Measure(cfg, nil, 1, noise.Quiet())
				if err != nil {
					t.Fatalf("%s: measure: %v", app.Spec.Name, err)
				}

				skewFree := true
				p := int(cfg["p"])
				for _, f := range app.Spec.Funcs {
					if f.ImbalanceSkew != 0 {
						skewFree = false
					}
					imb := run.Machine.ImbalanceFactor(f.ImbalanceSkew, p)
					want := g.ExclSeconds[f.Name]*imb + g.CommByCaller[f.Name]
					got := prof.FuncSeconds[f.Name][0]
					if !approxEq(got, want) {
						t.Errorf("%s @ %v: %s seconds: measure %g, evaluate %g",
							app.Spec.Name, cfg, f.Name, got, want)
					}
				}
				for _, m := range app.Spec.MPIUsed {
					if g.Calls[m] == 0 {
						continue
					}
					if got, want := prof.FuncSeconds[m][0], g.CommSeconds[m]; !approxEq(got, want) {
						t.Errorf("%s @ %v: %s comm seconds: measure %g, evaluate %g",
							app.Spec.Name, cfg, m, got, want)
					}
				}
				if skewFree {
					if got, want := prof.AppSeconds[0], g.TotalSeconds(); !approxEq(got, want) {
						t.Errorf("%s @ %v: app seconds: measure %g, evaluate %g",
							app.Spec.Name, cfg, got, want)
					}
				}
			}
		}
	}
}

// approxEq compares measured against analytic values with a relative
// tolerance covering float summation-order differences only.
func approxEq(got, want float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	return diff <= 1e-12*scale || diff == 0
}
