package appgen

import (
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/libdb"
)

// Truth is the analytic ground truth of one application resolved at one
// configuration: per-function parameter dependencies and loop-iteration
// totals derived from the spec by mirroring the taint semantics of
// internal/core exactly. "Resolved at a configuration" matters because
// the dynamic analysis only observes executed statements: branch arms
// are selected and zero-trip loop bodies skipped with the same integer
// semantics the lowered IR uses.
type Truth struct {
	// Config is the configuration the truth was resolved at (the taint
	// run's configuration in a recovery run).
	Config apps.Config
	// Funcs holds one entry per spec function.
	Funcs map[string]*FuncTruth
}

// FuncTruth is the ground truth of one function.
type FuncTruth struct {
	// Deps are the code-level parameter dependencies the taint analysis
	// must find: parameters (including the implicit p) reaching the
	// function's executed loop bounds or library-call counts, unioned
	// transitively over executed call edges — exactly the FuncDeps
	// aggregation of internal/core. Sorted; empty for independent
	// functions.
	Deps []string
	// Executed reports whether the function is invoked at least once.
	Executed bool
	// InvParams are the parameters that modulate how OFTEN the function
	// is invoked: bound parameters of ParamBound loops and condition
	// parameters of branches enclosing any call site on an executed path
	// from main, unioned transitively. Per-function metrics (iteration
	// totals, exclusive seconds) scale with the invocation count, so a
	// function with non-empty InvParams varies in parameters outside its
	// own dependency set — the hybrid fit, whose prior restricts terms
	// to FuncDeps, is structurally unable to express that variation.
	// Model-quality scoring therefore only compares hybrid and
	// black-box fits on functions with empty InvParams. Sorted.
	InvParams []string
	// Representable reports whether the function's own-loop iteration
	// count is expressible in the PMNF hypothesis space internal/extrap
	// searches: every executed parametric bound in the function body has
	// non-negative exponents no larger than cubic, and at most two
	// distinct parametric monomials contribute. Divided (per-rank)
	// bounds like tasks/p floor-divide and fall outside the space; they
	// still exercise dependency recovery but are excluded from
	// term-agreement scoring.
	Representable bool
}

// ComputeTruth resolves the analytic ground truth of spec at cfg against
// the library database db (which decides, per MPI routine, the implicit
// parameters and whether the count argument's taint is recorded).
func ComputeTruth(s *apps.Spec, db *libdb.DB, cfg apps.Config) *Truth {
	mpi := make(map[string]bool, len(s.MPIUsed))
	for _, m := range s.MPIUsed {
		mpi[m] = true
	}

	// Per-function pass assuming the function is invoked: direct
	// dependencies of executed statements and executed call edges. ctl
	// carries the control-flow taint context — the parameters of
	// enclosing (non-loop) branch conditions. The engine propagates
	// explicit control dependence (Section 5.2), so every register
	// written inside a tainted branch arm inherits the condition's
	// labels: loop exit conditions of ANY bound kind and message-count
	// arguments computed under the branch absorb the branch parameter.
	// The context is function-local — callees start with an empty one,
	// matching the engine's per-frame control scopes.
	direct := make(map[string]map[string]bool, len(s.Funcs))
	edges := make(map[string]map[string]bool, len(s.Funcs))
	edgeCtx := make(map[string]map[string]map[string]bool, len(s.Funcs))
	for _, f := range s.Funcs {
		dep := make(map[string]bool)
		out := make(map[string]bool)
		ctxOf := make(map[string]map[string]bool)
		edgeCtx[f.Name] = ctxOf
		var walk func(body []apps.Stmt, reached bool, ctl, mult []string)
		walk = func(body []apps.Stmt, reached bool, ctl, mult []string) {
			for _, st := range body {
				switch v := st.(type) {
				case apps.Loop:
					// The bound is evaluated (and its labels observed on
					// the exit condition) whenever the loop statement is
					// reached, even for zero-trip loops; the body only
					// runs when the trip count is positive.
					inner := mult
					if reached {
						if v.Kind == apps.ParamBound {
							for _, prm := range v.Bound.Params() {
								dep[prm] = true
							}
							inner = appendSet(mult, v.Bound.Params()...)
						}
						for _, prm := range ctl {
							dep[prm] = true
						}
					}
					walk(v.Body, reached && boundIters(v, cfg) > 0, ctl, inner)
				case apps.Branch:
					walk(branchArm(v, cfg), reached,
						appendSet(ctl, v.Param), appendSet(mult, v.Param))
				case apps.Call:
					if !reached {
						continue
					}
					if !mpi[v.Callee] {
						out[v.Callee] = true
						if ctxOf[v.Callee] == nil {
							ctxOf[v.Callee] = make(map[string]bool)
						}
						for _, prm := range mult {
							ctxOf[v.Callee][prm] = true
						}
						continue
					}
					e, ok := db.Entries[v.Callee]
					if !ok || !e.Relevant {
						continue
					}
					for _, prm := range e.ImplicitParams {
						dep[prm] = true
					}
					if e.CountArg >= 0 {
						if v.CountArg != nil {
							for _, prm := range v.CountArg.Params() {
								dep[prm] = true
							}
						}
						// The count register is materialized under the
						// branch scope, so the recorded call labels
						// include the control context.
						for _, prm := range ctl {
							dep[prm] = true
						}
					}
				}
			}
		}
		walk(f.Body, true, nil, nil)
		direct[f.Name] = dep
		edges[f.Name] = out
	}

	// Executed set: closure from main over executed call edges.
	executed := make(map[string]bool, len(s.Funcs))
	var reach func(name string)
	reach = func(name string) {
		if executed[name] {
			return
		}
		executed[name] = true
		for callee := range edges[name] {
			reach(callee)
		}
	}
	reach(s.Main().Name)

	// Invocation-multiplicity parameters: fixpoint over executed call
	// edges, seeding each callee with the caller's set plus the edge's
	// enclosing loop/branch parameters. The graph is acyclic and tiny, so
	// the loop converges in call-depth passes.
	invP := make(map[string]map[string]bool, len(s.Funcs))
	for name := range executed {
		invP[name] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		for caller := range executed {
			for callee := range edges[caller] {
				dst := invP[callee]
				grow := func(prm string) {
					if !dst[prm] {
						dst[prm] = true
						changed = true
					}
				}
				for prm := range invP[caller] {
					grow(prm)
				}
				for prm := range edgeCtx[caller][callee] {
					grow(prm)
				}
			}
		}
	}

	// Transitive dependencies over executed edges (specs are
	// non-recursive by validation, so plain memoized recursion works).
	memo := make(map[string]map[string]bool, len(s.Funcs))
	var deps func(name string) map[string]bool
	deps = func(name string) map[string]bool {
		if d, ok := memo[name]; ok {
			return d
		}
		d := make(map[string]bool, len(direct[name]))
		for prm := range direct[name] {
			d[prm] = true
		}
		memo[name] = d // non-recursive specs: safe to publish before callees
		for callee := range edges[name] {
			for prm := range deps(callee) {
				d[prm] = true
			}
		}
		return d
	}

	t := &Truth{Config: cfg.Clone(), Funcs: make(map[string]*FuncTruth, len(s.Funcs))}
	for _, f := range s.Funcs {
		ft := &FuncTruth{Executed: executed[f.Name]}
		if ft.Executed {
			set := deps(f.Name)
			for prm := range set {
				ft.Deps = append(ft.Deps, prm)
			}
			sort.Strings(ft.Deps)
			for prm := range invP[f.Name] {
				ft.InvParams = append(ft.InvParams, prm)
			}
			sort.Strings(ft.InvParams)
			ft.Representable = representable(f, cfg)
		}
		t.Funcs[f.Name] = ft
	}
	return t
}

// IterationTotals computes, per function, the exact dynamic loop
// iteration total a tainted run of the lowered module executes at cfg:
// per-invocation iteration counts with the integer bound semantics of
// the IR (Quantity.EvalInt), scaled by invocation counts propagated from
// main. This is the analytic counterpart of modelreg's MetricIterations.
func IterationTotals(s *apps.Spec, cfg apps.Config) map[string]int64 {
	type invInfo struct {
		iters int64
		calls map[string]int64
	}
	mpi := make(map[string]bool, len(s.MPIUsed))
	for _, m := range s.MPIUsed {
		mpi[m] = true
	}
	info := make(map[string]*invInfo, len(s.Funcs))
	for _, f := range s.Funcs {
		ii := &invInfo{calls: make(map[string]int64)}
		var walk func(body []apps.Stmt, mult int64)
		walk = func(body []apps.Stmt, mult int64) {
			for _, st := range body {
				switch v := st.(type) {
				case apps.Loop:
					n := boundIters(v, cfg)
					ii.iters += mult * n
					walk(v.Body, mult*n)
				case apps.Branch:
					walk(branchArm(v, cfg), mult)
				case apps.Call:
					if !mpi[v.Callee] {
						ii.calls[v.Callee] += mult
					}
				}
			}
		}
		walk(f.Body, 1)
		info[f.Name] = ii
	}
	// Invocation counts top-down from main.
	inv := make(map[string]int64, len(s.Funcs))
	var acc func(name string, n int64)
	acc = func(name string, n int64) {
		inv[name] += n
		for callee, per := range info[name].calls {
			acc(callee, n*per)
		}
	}
	acc(s.Main().Name, 1)

	out := make(map[string]int64, len(s.Funcs))
	for name, ii := range info {
		out[name] = inv[name] * ii.iters
	}
	return out
}

// boundIters is the exact trip count of one loop at cfg under the IR's
// integer lowering: rounded constants for static and runtime-constant
// bounds, Quantity.EvalInt for parametric ones, clamped at zero.
func boundIters(l apps.Loop, cfg apps.Config) int64 {
	var n int64
	if l.Kind == apps.ParamBound {
		n = l.Bound.EvalInt(map[string]float64(cfg))
	} else {
		n = int64(math.Round(l.Bound.Coeff))
	}
	if n < 0 {
		return 0
	}
	return n
}

// branchArm resolves which arm a Branch executes at cfg with the IR's
// integer comparison semantics (both sides rounded to int64).
func branchArm(b apps.Branch, cfg apps.Config) []apps.Stmt {
	if int64(math.Round(cfg[b.Param])) < int64(math.Round(b.Less)) {
		return b.Then
	}
	return b.Else
}

// representable reports whether f's own-loop iteration polynomial lies
// in the PMNF hypothesis space: every executed parametric bound uses
// only non-negative exponents up to 3 (including those inherited from
// enclosing parametric loops), and at most two distinct parametric
// monomials contribute iterations.
func representable(f *apps.FuncSpec, cfg apps.Config) bool {
	ok := true
	monos := make(map[string]bool)
	var walk func(body []apps.Stmt, outer map[string]int, reached bool)
	walk = func(body []apps.Stmt, outer map[string]int, reached bool) {
		for _, st := range body {
			switch v := st.(type) {
			case apps.Loop:
				inner := outer
				if v.Kind == apps.ParamBound && reached {
					inner = make(map[string]int, len(outer)+len(v.Bound.Pow))
					for k, p := range outer {
						inner[k] = p
					}
					for k, p := range v.Bound.Pow {
						inner[k] += p
					}
					sig := ""
					for _, k := range sortedKeys(inner) {
						switch p := inner[k]; {
						case p < 0 || p > 3:
							ok = false
						case p > 0:
							sig += k + "^" + string(rune('0'+p)) + " "
						}
					}
					if sig != "" {
						monos[sig] = true
					}
				}
				walk(v.Body, inner, reached && boundIters(v, cfg) > 0)
			case apps.Branch:
				walk(branchArm(v, cfg), outer, reached)
			}
		}
	}
	walk(f.Body, nil, true)
	return ok && len(monos) <= 2
}

// appendSet returns s extended with the vals not already present,
// without aliasing s's backing array (callers keep sharing prefixes).
func appendSet(s []string, vals ...string) []string {
	out := s[:len(s):len(s)]
	for _, v := range vals {
		seen := false
		for _, have := range out {
			if have == v {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
