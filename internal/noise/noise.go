// Package noise provides the deterministic stochastic machinery of the
// measurement substrate: seeded Gaussian multiplicative noise plus an
// absolute jitter floor. The floor matters: the paper's Section 4.5 point
// is that short-running functions drown in noise, which only reproduces if
// small measurements carry proportionally more variance.
package noise

import "math/rand"

// Source generates measurement noise deterministically from a seed.
type Source struct {
	rng *rand.Rand
	// Relative is the multiplicative Gaussian sigma (e.g. 0.02 = 2%).
	Relative float64
	// FloorSeconds is the absolute jitter added to every measurement
	// (scheduler/timer granularity effects).
	FloorSeconds float64
}

// New returns a source with the given seed and noise levels.
func New(seed int64, relative, floorSeconds float64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), Relative: relative, FloorSeconds: floorSeconds}
}

// Quiet returns a zero-noise source (ground-truth runs).
func Quiet() *Source { return New(1, 0, 0) }

// Perturb returns one noisy observation of the true value (never negative).
func (s *Source) Perturb(trueValue float64) float64 {
	v := trueValue
	if s.Relative > 0 {
		v *= 1 + s.Relative*s.rng.NormFloat64()
	}
	if s.FloorSeconds > 0 {
		v += s.FloorSeconds * s.rng.NormFloat64()
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Repeat returns n observations of the true value.
func (s *Source) Repeat(trueValue float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Perturb(trueValue)
	}
	return out
}
