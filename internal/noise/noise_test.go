package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuietIsExact(t *testing.T) {
	s := Quiet()
	for _, v := range []float64{0, 1, 3.5, 1e9} {
		if got := s.Perturb(v); got != v {
			t.Fatalf("Quiet().Perturb(%g) = %g", v, got)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(42, 0.05, 1e-3).Repeat(100, 10)
	b := New(42, 0.05, 1e-3).Repeat(100, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %g != %g", i, a[i], b[i])
		}
	}
	c := New(43, 0.05, 1e-3).Repeat(100, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestNeverNegative(t *testing.T) {
	prop := func(seed int64, v uint8) bool {
		s := New(seed, 0.5, 1)
		for i := 0; i < 50; i++ {
			if s.Perturb(float64(v)) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeNoiseScale(t *testing.T) {
	s := New(7, 0.05, 0)
	vals := s.Repeat(1000, 2000)
	mean, ss := 0.0, 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(vals)-1))
	if math.Abs(mean-1000) > 10 {
		t.Fatalf("mean = %g, want ~1000", mean)
	}
	if sd < 30 || sd > 70 {
		t.Fatalf("stddev = %g, want ~50 (5%%)", sd)
	}
}

func TestFloorDominatesSmallValues(t *testing.T) {
	// With a 1ms floor, a 1us measurement is mostly noise — the mechanism
	// behind the paper's unreliable short functions.
	s := New(9, 0, 1e-3)
	vals := s.Repeat(1e-6, 500)
	varied := 0
	for _, v := range vals {
		if math.Abs(v-1e-6) > 1e-7 {
			varied++
		}
	}
	if varied < 450 {
		t.Fatalf("floor noise too weak: only %d/500 perturbed", varied)
	}
}
