// Package ir defines a compact register-machine intermediate representation
// with an explicit control-flow graph. It is the substrate on which the
// Perf-Taint analyses operate: programs are lowered to ir.Module values,
// the interpreter executes them, and the static and dynamic analyses inspect
// their basic blocks, branches, and natural loops.
//
// The design mirrors the subset of LLVM IR that the paper's analyses touch:
// virtual registers, loads/stores against a flat address space, conditional
// branches as the only control-flow construct, and direct calls. There is no
// SSA form; the analyses in this repository do not require it.
package ir

import "fmt"

// Reg is a virtual register index local to a function frame.
type Reg int

// NoReg marks an unused register slot in an instruction.
const NoReg Reg = -1

// Opcode enumerates instruction kinds.
type Opcode uint8

// Instruction opcodes. Arithmetic and comparison instructions write Dst from
// operands A and B. Memory instructions address the interpreter heap.
const (
	OpConst  Opcode = iota // Dst = Imm
	OpMov                  // Dst = A
	OpAdd                  // Dst = A + B
	OpSub                  // Dst = A - B
	OpMul                  // Dst = A * B
	OpDiv                  // Dst = A / B (0 on divide-by-zero)
	OpMod                  // Dst = A % B (0 on divide-by-zero)
	OpNeg                  // Dst = -A
	OpNot                  // Dst = boolean not A
	OpAnd                  // Dst = A & B
	OpOr                   // Dst = A | B
	OpXor                  // Dst = A ^ B
	OpShl                  // Dst = A << B
	OpShr                  // Dst = A >> B
	OpCmpEQ                // Dst = A == B
	OpCmpNE                // Dst = A != B
	OpCmpLT                // Dst = A < B
	OpCmpLE                // Dst = A <= B
	OpCmpGT                // Dst = A > B
	OpCmpGE                // Dst = A >= B
	OpMin                  // Dst = min(A, B)
	OpMax                  // Dst = max(A, B)
	OpLoad                 // Dst = heap[A + Off]
	OpStore                // heap[A + Off] = B
	OpAlloc                // Dst = allocate A cells, returns base address
	OpGlobal               // Dst = address of global Sym
	OpCall                 // Dst = call Sym(Args...)
	OpWork                 // simulated computational work of A abstract units
)

// Terminator opcodes close a basic block.
const (
	OpJmp    Opcode = 64 + iota // unconditional jump to Blk0
	OpBr                        // if A != 0 goto Blk0 else Blk1
	OpRet                       // return A (or no value if A == NoReg)
	OpSwitch                    // multiway branch on A over Cases, default Blk0
)

// IsTerm reports whether op terminates a basic block.
func (op Opcode) IsTerm() bool { return op >= OpJmp }

var opNames = map[Opcode]string{
	OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpMod: "mod", OpNeg: "neg", OpNot: "not", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpGT: "cmpgt", OpCmpGE: "cmpge", OpMin: "min", OpMax: "max",
	OpLoad: "load", OpStore: "store", OpAlloc: "alloc", OpGlobal: "global",
	OpCall: "call", OpWork: "work",
	OpJmp: "jmp", OpBr: "br", OpRet: "ret", OpSwitch: "switch",
}

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Instr is a single instruction. The meaning of the fields depends on Op;
// unused register fields hold NoReg.
type Instr struct {
	Op   Opcode
	Dst  Reg
	A, B Reg
	Imm  int64 // OpConst immediate, OpLoad/OpStore offset
	Sym  string
	Args []Reg // OpCall arguments
	Blk0 int   // OpJmp/OpBr/OpSwitch target block index
	Blk1 int   // OpBr false-target block index

	// Cases maps switch values to block indices for OpSwitch.
	Cases []SwitchCase
}

// SwitchCase is one (value, target block) arm of an OpSwitch terminator.
type SwitchCase struct {
	Value int64
	Block int
}

// Block is a basic block: a straight-line instruction sequence ended by a
// single terminator (the last element of Instrs).
type Block struct {
	Index  int
	Name   string
	Instrs []Instr
}

// Term returns the block terminator. It panics on an unterminated block;
// the verifier rejects such blocks before execution.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		panic(fmt.Sprintf("ir: block %q has no instructions", b.Name))
	}
	t := &b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerm() {
		panic(fmt.Sprintf("ir: block %q lacks a terminator", b.Name))
	}
	return t
}

// Succs appends the successor block indices of b to dst and returns it.
func (b *Block) Succs(dst []int) []int {
	t := b.Term()
	switch t.Op {
	case OpJmp:
		dst = append(dst, t.Blk0)
	case OpBr:
		dst = append(dst, t.Blk0, t.Blk1)
	case OpSwitch:
		dst = append(dst, t.Blk0)
		for _, c := range t.Cases {
			dst = append(dst, c.Block)
		}
	}
	return dst
}

// Function is a callable IR unit. Registers 0..NumParams-1 hold the incoming
// arguments. Entry is always block 0.
type Function struct {
	Name      string
	NumParams int
	NumRegs   int
	Blocks    []*Block

	// Attrs carries frontend annotations consumed by the analyses, e.g.
	// apps mark getter/setter helpers and communication wrappers.
	Attrs map[string]string
}

// Attr returns the attribute value for key, or "".
func (f *Function) Attr(key string) string {
	if f.Attrs == nil {
		return ""
	}
	return f.Attrs[key]
}

// SetAttr sets a frontend annotation on f.
func (f *Function) SetAttr(key, val string) {
	if f.Attrs == nil {
		f.Attrs = make(map[string]string)
	}
	f.Attrs[key] = val
}

// Global is a named module-scope memory region of Size cells.
type Global struct {
	Name string
	Size int64
}

// Module is a linked set of functions and globals.
type Module struct {
	Name     string
	Funcs    map[string]*Function
	FuncList []*Function // deterministic order
	Globals  []Global
}

// NewModule returns an empty module named name.
func NewModule(name string) *Module {
	return &Module{Name: name, Funcs: make(map[string]*Function)}
}

// AddFunc registers f in the module. It panics on duplicate names; module
// construction is programmer-controlled, so a duplicate is a frontend bug.
func (m *Module) AddFunc(f *Function) {
	if _, dup := m.Funcs[f.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", f.Name))
	}
	m.Funcs[f.Name] = f
	m.FuncList = append(m.FuncList, f)
}

// AddGlobal declares a global region of size cells and returns its name.
func (m *Module) AddGlobal(name string, size int64) string {
	m.Globals = append(m.Globals, Global{Name: name, Size: size})
	return name
}

// GlobalSize returns the declared size of global name and whether it exists.
func (m *Module) GlobalSize(name string) (int64, bool) {
	for _, g := range m.Globals {
		if g.Name == name {
			return g.Size, true
		}
	}
	return 0, false
}
