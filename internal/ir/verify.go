package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural invariants of f: every block terminated exactly
// once at its end, register and block indices in range, and entry present.
// The interpreter and analyses assume a verified function.
func Verify(f *Function) error {
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	checkReg := func(r Reg, what string, blk *Block, idx int) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("block %q instr %d: %s register %d out of range [0,%d)",
				blk.Name, idx, what, r, f.NumRegs)
		}
		return nil
	}
	checkBlk := func(b int, blk *Block, idx int) error {
		if b < 0 || b >= len(f.Blocks) {
			return fmt.Errorf("block %q instr %d: target block %d out of range", blk.Name, idx, b)
		}
		return nil
	}
	for bi, blk := range f.Blocks {
		if blk.Index != bi {
			return fmt.Errorf("block %q: index %d != position %d", blk.Name, blk.Index, bi)
		}
		if len(blk.Instrs) == 0 {
			return fmt.Errorf("block %q: empty", blk.Name)
		}
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			last := ii == len(blk.Instrs)-1
			if in.Op.IsTerm() != last {
				if last {
					return fmt.Errorf("block %q: last instruction %s is not a terminator", blk.Name, in.Op)
				}
				return fmt.Errorf("block %q instr %d: terminator %s mid-block", blk.Name, ii, in.Op)
			}
			if err := checkReg(in.Dst, "dst", blk, ii); err != nil {
				return err
			}
			if err := checkReg(in.A, "a", blk, ii); err != nil {
				return err
			}
			if err := checkReg(in.B, "b", blk, ii); err != nil {
				return err
			}
			for _, a := range in.Args {
				if err := checkReg(a, "arg", blk, ii); err != nil {
					return err
				}
			}
			switch in.Op {
			case OpJmp:
				if err := checkBlk(in.Blk0, blk, ii); err != nil {
					return err
				}
			case OpBr:
				if err := checkBlk(in.Blk0, blk, ii); err != nil {
					return err
				}
				if err := checkBlk(in.Blk1, blk, ii); err != nil {
					return err
				}
				if in.A == NoReg {
					return fmt.Errorf("block %q: br without condition", blk.Name)
				}
			case OpSwitch:
				if err := checkBlk(in.Blk0, blk, ii); err != nil {
					return err
				}
				for _, c := range in.Cases {
					if err := checkBlk(c.Block, blk, ii); err != nil {
						return err
					}
				}
			case OpCall:
				if in.Sym == "" {
					return fmt.Errorf("block %q instr %d: call without callee", blk.Name, ii)
				}
			case OpGlobal:
				if in.Sym == "" {
					return fmt.Errorf("block %q instr %d: global without symbol", blk.Name, ii)
				}
			}
		}
	}
	return nil
}

// VerifyModule verifies every function and resolves all call targets.
// Unresolved callees are allowed only if extern reports them as provided by
// a runtime library (e.g. the MPI database); extern may be nil.
func VerifyModule(m *Module, extern func(string) bool) error {
	for _, f := range m.FuncList {
		if err := Verify(f); err != nil {
			return fmt.Errorf("function %q: %w", f.Name, err)
		}
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op != OpCall {
					continue
				}
				if _, ok := m.Funcs[in.Sym]; ok {
					continue
				}
				if extern != nil && extern(in.Sym) {
					continue
				}
				return fmt.Errorf("function %q: unresolved callee %q", f.Name, in.Sym)
			}
		}
	}
	return nil
}
