package ir

import (
	"fmt"
	"strings"
)

// String renders the function in a readable assembly-like syntax, mainly
// for debugging and golden tests.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d params, %d regs) {\n", f.Name, f.NumParams, f.NumRegs)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&sb, "%s.%d:\n", blk.Name, blk.Index)
		for ii := range blk.Instrs {
			sb.WriteString("  ")
			sb.WriteString(formatInstr(&blk.Instrs[ii]))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func formatInstr(in *Instr) string {
	r := func(x Reg) string {
		if x == NoReg {
			return "_"
		}
		return fmt.Sprintf("r%d", x)
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %d", r(in.Dst), in.Imm)
	case OpMov, OpNeg, OpNot:
		return fmt.Sprintf("%s = %s %s", r(in.Dst), in.Op, r(in.A))
	case OpLoad:
		return fmt.Sprintf("%s = load %s+%d", r(in.Dst), r(in.A), in.Imm)
	case OpStore:
		return fmt.Sprintf("store %s+%d, %s", r(in.A), in.Imm, r(in.B))
	case OpAlloc:
		return fmt.Sprintf("%s = alloc %s", r(in.Dst), r(in.A))
	case OpGlobal:
		return fmt.Sprintf("%s = global %s", r(in.Dst), in.Sym)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = r(a)
		}
		return fmt.Sprintf("%s = call %s(%s)", r(in.Dst), in.Sym, strings.Join(args, ", "))
	case OpWork:
		return fmt.Sprintf("work %s", r(in.A))
	case OpJmp:
		return fmt.Sprintf("jmp b%d", in.Blk0)
	case OpBr:
		return fmt.Sprintf("br %s, b%d, b%d", r(in.A), in.Blk0, in.Blk1)
	case OpRet:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret %s", r(in.A))
	case OpSwitch:
		var cases []string
		for _, c := range in.Cases {
			cases = append(cases, fmt.Sprintf("%d=>b%d", c.Value, c.Block))
		}
		return fmt.Sprintf("switch %s [%s] default b%d", r(in.A), strings.Join(cases, " "), in.Blk0)
	default:
		return fmt.Sprintf("%s = %s %s, %s", r(in.Dst), in.Op, r(in.A), r(in.B))
	}
}

// Stats summarizes module size; used in reports and tests.
type Stats struct {
	Functions int
	Blocks    int
	Instrs    int
	Calls     int
	Branches  int
}

// CollectStats walks the module and tallies structural counts.
func CollectStats(m *Module) Stats {
	var s Stats
	s.Functions = len(m.FuncList)
	for _, f := range m.FuncList {
		s.Blocks += len(f.Blocks)
		for _, blk := range f.Blocks {
			s.Instrs += len(blk.Instrs)
			for ii := range blk.Instrs {
				switch blk.Instrs[ii].Op {
				case OpCall:
					s.Calls++
				case OpBr, OpSwitch:
					s.Branches++
				}
			}
		}
	}
	return s
}
