package ir

import "fmt"

// Builder incrementally constructs a Function. It tracks the current
// insertion block and provides structured helpers (If, For, While) that
// always produce reducible control flow with natural loops, matching the
// paper's assumption of loop-based HPC codes.
type Builder struct {
	fn   *Function
	cur  *Block
	mod  *Module
	done bool
}

// NewFunc starts building a function with numParams parameters inside m.
// The entry block is created and selected.
func NewFunc(m *Module, name string, numParams int) *Builder {
	fn := &Function{Name: name, NumParams: numParams, NumRegs: numParams}
	b := &Builder{fn: fn, mod: m}
	b.cur = b.NewBlock("entry")
	return b
}

// Func returns the function under construction.
func (b *Builder) Func() *Function { return b.fn }

// Module returns the module the function will join.
func (b *Builder) Module() *Module { return b.mod }

// Param returns the register holding parameter i.
func (b *Builder) Param(i int) Reg {
	if i < 0 || i >= b.fn.NumParams {
		panic(fmt.Sprintf("ir: function %q has no parameter %d", b.fn.Name, i))
	}
	return Reg(i)
}

// NewReg allocates a fresh virtual register.
func (b *Builder) NewReg() Reg {
	r := Reg(b.fn.NumRegs)
	b.fn.NumRegs++
	return r
}

// NewBlock appends an empty block named name and returns it without
// changing the insertion point.
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{Index: len(b.fn.Blocks), Name: name}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// CurBlock returns the current insertion block.
func (b *Builder) CurBlock() *Block { return b.cur }

func (b *Builder) emit(in Instr) {
	if b.cur == nil {
		panic("ir: emit with no insertion block")
	}
	if n := len(b.cur.Instrs); n > 0 && b.cur.Instrs[n-1].Op.IsTerm() {
		panic(fmt.Sprintf("ir: emit into terminated block %q of %q", b.cur.Name, b.fn.Name))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// Const materializes the constant v into a fresh register.
func (b *Builder) Const(v int64) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpConst, Dst: dst, A: NoReg, B: NoReg, Imm: v})
	return dst
}

// Mov copies src into a fresh register.
func (b *Builder) Mov(src Reg) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpMov, Dst: dst, A: src, B: NoReg})
	return dst
}

// MovTo copies src into dst (used to update loop induction variables).
func (b *Builder) MovTo(dst, src Reg) {
	b.emit(Instr{Op: OpMov, Dst: dst, A: src, B: NoReg})
}

// Bin emits a two-operand instruction and returns the destination register.
func (b *Builder) Bin(op Opcode, x, y Reg) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: op, Dst: dst, A: x, B: y})
	return dst
}

// Add emits x + y.
func (b *Builder) Add(x, y Reg) Reg { return b.Bin(OpAdd, x, y) }

// Sub emits x - y.
func (b *Builder) Sub(x, y Reg) Reg { return b.Bin(OpSub, x, y) }

// Mul emits x * y.
func (b *Builder) Mul(x, y Reg) Reg { return b.Bin(OpMul, x, y) }

// Div emits x / y.
func (b *Builder) Div(x, y Reg) Reg { return b.Bin(OpDiv, x, y) }

// Mod emits x % y.
func (b *Builder) Mod(x, y Reg) Reg { return b.Bin(OpMod, x, y) }

// CmpLT emits x < y.
func (b *Builder) CmpLT(x, y Reg) Reg { return b.Bin(OpCmpLT, x, y) }

// CmpLE emits x <= y.
func (b *Builder) CmpLE(x, y Reg) Reg { return b.Bin(OpCmpLE, x, y) }

// CmpEQ emits x == y.
func (b *Builder) CmpEQ(x, y Reg) Reg { return b.Bin(OpCmpEQ, x, y) }

// CmpNE emits x != y.
func (b *Builder) CmpNE(x, y Reg) Reg { return b.Bin(OpCmpNE, x, y) }

// CmpGT emits x > y.
func (b *Builder) CmpGT(x, y Reg) Reg { return b.Bin(OpCmpGT, x, y) }

// CmpGE emits x >= y.
func (b *Builder) CmpGE(x, y Reg) Reg { return b.Bin(OpCmpGE, x, y) }

// Neg emits -x.
func (b *Builder) Neg(x Reg) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpNeg, Dst: dst, A: x, B: NoReg})
	return dst
}

// Not emits the boolean negation of x.
func (b *Builder) Not(x Reg) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpNot, Dst: dst, A: x, B: NoReg})
	return dst
}

// Load emits heap[addr+off].
func (b *Builder) Load(addr Reg, off int64) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpLoad, Dst: dst, A: addr, B: NoReg, Imm: off})
	return dst
}

// Store emits heap[addr+off] = val.
func (b *Builder) Store(addr Reg, off int64, val Reg) {
	b.emit(Instr{Op: OpStore, Dst: NoReg, A: addr, B: val, Imm: off})
}

// Alloc emits a heap allocation of size cells (register operand).
func (b *Builder) Alloc(size Reg) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpAlloc, Dst: dst, A: size, B: NoReg})
	return dst
}

// GlobalAddr emits the address of module global name.
func (b *Builder) GlobalAddr(name string) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpGlobal, Dst: dst, A: NoReg, B: NoReg, Sym: name})
	return dst
}

// Call emits a direct call and returns the result register.
func (b *Builder) Call(callee string, args ...Reg) Reg {
	dst := b.NewReg()
	b.emit(Instr{Op: OpCall, Dst: dst, A: NoReg, B: NoReg, Sym: callee, Args: args})
	return dst
}

// Work emits a simulated computation of units abstract work items. The
// interpreter charges the amount to the profiling tracer; taint ignores it.
func (b *Builder) Work(units Reg) {
	b.emit(Instr{Op: OpWork, Dst: NoReg, A: units, B: NoReg})
}

// Ret terminates the current block returning val (NoReg for void).
func (b *Builder) Ret(val Reg) {
	b.emit(Instr{Op: OpRet, Dst: NoReg, A: val, B: NoReg})
	b.cur = nil
}

// RetVoid terminates the current block with no return value.
func (b *Builder) RetVoid() { b.Ret(NoReg) }

// Jmp terminates the current block with a jump to blk.
func (b *Builder) Jmp(blk *Block) {
	b.emit(Instr{Op: OpJmp, Dst: NoReg, A: NoReg, B: NoReg, Blk0: blk.Index})
	b.cur = nil
}

// Br terminates the current block branching on cond.
func (b *Builder) Br(cond Reg, then, els *Block) {
	b.emit(Instr{Op: OpBr, Dst: NoReg, A: cond, B: NoReg, Blk0: then.Index, Blk1: els.Index})
	b.cur = nil
}

// Switch terminates the current block with a multiway branch on v.
func (b *Builder) Switch(v Reg, def *Block, cases []SwitchCase) {
	b.emit(Instr{Op: OpSwitch, Dst: NoReg, A: v, B: NoReg, Blk0: def.Index, Cases: cases})
	b.cur = nil
}

// If builds a structured two-armed conditional. then and els run with the
// insertion point inside the respective arm; either may be nil for an empty
// arm. After If returns, the insertion point is at the join block.
func (b *Builder) If(cond Reg, then, els func()) {
	thenBlk := b.NewBlock("then")
	joinBlk := b.NewBlock("join")
	elsBlk := joinBlk
	if els != nil {
		elsBlk = b.NewBlock("else")
	}
	b.Br(cond, thenBlk, elsBlk)

	b.SetBlock(thenBlk)
	if then != nil {
		then()
	}
	if b.cur != nil {
		b.Jmp(joinBlk)
	}
	if els != nil {
		b.SetBlock(elsBlk)
		els()
		if b.cur != nil {
			b.Jmp(joinBlk)
		}
	}
	b.SetBlock(joinBlk)
}

// For builds a canonical counted loop:
//
//	for i := lo; i < hi; i += step { body(i) }
//
// lo, hi, and step are registers evaluated before the loop. The loop header
// holds the single exit branch, so taint sinks observe the comparison
// i < hi. For returns after positioning the insertion point at the exit.
func (b *Builder) For(lo, hi, step Reg, body func(i Reg)) {
	i := b.Mov(lo)
	header := b.NewBlock("for.header")
	bodyBlk := b.NewBlock("for.body")
	latch := b.NewBlock("for.latch")
	exit := b.NewBlock("for.exit")

	b.Jmp(header)
	b.SetBlock(header)
	cond := b.CmpLT(i, hi)
	b.Br(cond, bodyBlk, exit)

	b.SetBlock(bodyBlk)
	if body != nil {
		body(i)
	}
	if b.cur != nil {
		b.Jmp(latch)
	}
	b.SetBlock(latch)
	next := b.Add(i, step)
	b.MovTo(i, next)
	b.Jmp(header)

	b.SetBlock(exit)
}

// ForConst is For with literal bounds, emitting the constants first.
func (b *Builder) ForConst(lo, hi int64, body func(i Reg)) {
	l := b.Const(lo)
	h := b.Const(hi)
	s := b.Const(1)
	b.For(l, h, s, body)
}

// While builds a condition-controlled loop. cond is re-evaluated in the
// header each iteration and must return the condition register.
func (b *Builder) While(cond func() Reg, body func()) {
	header := b.NewBlock("while.header")
	bodyBlk := b.NewBlock("while.body")
	exit := b.NewBlock("while.exit")

	b.Jmp(header)
	b.SetBlock(header)
	c := cond()
	b.Br(c, bodyBlk, exit)

	b.SetBlock(bodyBlk)
	if body != nil {
		body()
	}
	if b.cur != nil {
		b.Jmp(header)
	}
	b.SetBlock(exit)
}

// Finish verifies the function, adds it to the module, and returns it.
// A still-open insertion block receives an implicit void return.
func (b *Builder) Finish() *Function {
	if b.done {
		panic(fmt.Sprintf("ir: Finish called twice on %q", b.fn.Name))
	}
	if b.cur != nil {
		b.RetVoid()
	}
	if err := Verify(b.fn); err != nil {
		panic(fmt.Sprintf("ir: invalid function %q: %v", b.fn.Name, err))
	}
	b.mod.AddFunc(b.fn)
	b.done = true
	return b.fn
}
