package ir

import (
	"strings"
	"testing"
)

func buildCounted(t *testing.T, m *Module) *Function {
	t.Helper()
	b := NewFunc(m, "counted", 1)
	sum := b.Const(0)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i Reg) {
		b.MovTo(sum, b.Add(sum, i))
	})
	b.Ret(sum)
	return b.Finish()
}

func TestBuilderCountedLoopShape(t *testing.T) {
	m := NewModule("t")
	f := buildCounted(t, m)
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(f.Blocks) < 4 {
		t.Fatalf("expected at least 4 blocks for a loop, got %d", len(f.Blocks))
	}
	// Exactly one conditional branch (the loop exit).
	brs := 0
	for _, blk := range f.Blocks {
		if blk.Term().Op == OpBr {
			brs++
		}
	}
	if brs != 1 {
		t.Fatalf("counted loop should have exactly 1 conditional branch, got %d", brs)
	}
}

func TestBuilderIfJoins(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "sel", 2)
	out := b.Const(0)
	cond := b.CmpLT(b.Param(0), b.Param(1))
	b.If(cond, func() {
		b.MovTo(out, b.Const(1))
	}, func() {
		b.MovTo(out, b.Const(2))
	})
	b.Ret(out)
	f := b.Finish()
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestBuilderIfWithoutElse(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "sel1", 1)
	out := b.Const(0)
	b.If(b.Param(0), func() { b.MovTo(out, b.Const(7)) }, nil)
	b.Ret(out)
	if err := Verify(b.Finish()); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsEmptyFunction(t *testing.T) {
	f := &Function{Name: "empty"}
	if err := Verify(f); err == nil {
		t.Fatal("expected error for function with no blocks")
	}
}

func TestVerifyRejectsMidBlockTerminator(t *testing.T) {
	f := &Function{
		Name:    "bad",
		NumRegs: 1,
		Blocks: []*Block{{
			Index: 0,
			Name:  "entry",
			Instrs: []Instr{
				{Op: OpRet, A: NoReg, Dst: NoReg, B: NoReg},
				{Op: OpConst, Dst: 0, A: NoReg, B: NoReg},
			},
		}},
	}
	if err := Verify(f); err == nil {
		t.Fatal("expected error for terminator mid-block")
	}
}

func TestVerifyRejectsMissingTerminator(t *testing.T) {
	f := &Function{
		Name:    "bad",
		NumRegs: 1,
		Blocks: []*Block{{
			Index:  0,
			Name:   "entry",
			Instrs: []Instr{{Op: OpConst, Dst: 0, A: NoReg, B: NoReg}},
		}},
	}
	if err := Verify(f); err == nil {
		t.Fatal("expected error for missing terminator")
	}
}

func TestVerifyRejectsRegisterOutOfRange(t *testing.T) {
	f := &Function{
		Name:    "bad",
		NumRegs: 1,
		Blocks: []*Block{{
			Index: 0,
			Name:  "entry",
			Instrs: []Instr{
				{Op: OpMov, Dst: 5, A: 0, B: NoReg},
				{Op: OpRet, Dst: NoReg, A: NoReg, B: NoReg},
			},
		}},
	}
	if err := Verify(f); err == nil {
		t.Fatal("expected error for out-of-range register")
	}
}

func TestVerifyRejectsBadBranchTarget(t *testing.T) {
	f := &Function{
		Name:    "bad",
		NumRegs: 1,
		Blocks: []*Block{{
			Index:  0,
			Name:   "entry",
			Instrs: []Instr{{Op: OpJmp, Dst: NoReg, A: NoReg, B: NoReg, Blk0: 9}},
		}},
	}
	if err := Verify(f); err == nil {
		t.Fatal("expected error for branch target out of range")
	}
}

func TestVerifyModuleResolvesCalls(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "leaf", 0)
	b.RetVoid()
	b.Finish()
	b2 := NewFunc(m, "root", 0)
	b2.Call("leaf")
	b2.Call("mpi_barrier")
	b2.RetVoid()
	b2.Finish()

	if err := VerifyModule(m, nil); err == nil {
		t.Fatal("expected unresolved callee error without extern resolver")
	}
	ok := func(name string) bool { return name == "mpi_barrier" }
	if err := VerifyModule(m, ok); err != nil {
		t.Fatalf("VerifyModule with extern: %v", err)
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", 0)
	b.RetVoid()
	b.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate function")
		}
	}()
	b2 := NewFunc(m, "f", 0)
	b2.RetVoid()
	b2.Finish()
}

func TestGlobalDeclared(t *testing.T) {
	m := NewModule("t")
	m.AddGlobal("state", 16)
	if sz, ok := m.GlobalSize("state"); !ok || sz != 16 {
		t.Fatalf("GlobalSize = %d, %v; want 16, true", sz, ok)
	}
	if _, ok := m.GlobalSize("missing"); ok {
		t.Fatal("unexpected global 'missing'")
	}
}

func TestPrinterMentionsLoopStructure(t *testing.T) {
	m := NewModule("t")
	f := buildCounted(t, m)
	s := f.String()
	for _, want := range []string{"func counted", "br ", "jmp ", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestCollectStats(t *testing.T) {
	m := NewModule("t")
	buildCounted(t, m)
	b := NewFunc(m, "caller", 0)
	b.Call("counted", b.Const(3))
	b.RetVoid()
	b.Finish()

	s := CollectStats(m)
	if s.Functions != 2 {
		t.Fatalf("Functions = %d, want 2", s.Functions)
	}
	if s.Calls != 1 {
		t.Fatalf("Calls = %d, want 1", s.Calls)
	}
	if s.Branches != 1 {
		t.Fatalf("Branches = %d, want 1", s.Branches)
	}
	if s.Blocks == 0 || s.Instrs == 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestFunctionAttrs(t *testing.T) {
	f := &Function{Name: "f"}
	if f.Attr("kind") != "" {
		t.Fatal("empty attr should be ''")
	}
	f.SetAttr("kind", "kernel")
	if f.Attr("kind") != "kernel" {
		t.Fatalf("Attr = %q, want kernel", f.Attr("kind"))
	}
}

func TestSwitchTerminator(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "sw", 1)
	one := b.NewBlock("one")
	two := b.NewBlock("two")
	def := b.NewBlock("def")
	b.Switch(b.Param(0), def, []SwitchCase{{Value: 1, Block: one.Index}, {Value: 2, Block: two.Index}})
	b.SetBlock(one)
	b.Ret(b.Const(10))
	b.SetBlock(two)
	b.Ret(b.Const(20))
	b.SetBlock(def)
	b.Ret(b.Const(0))
	f := b.Finish()

	succs := f.Blocks[0].Succs(nil)
	if len(succs) != 3 {
		t.Fatalf("switch successors = %v, want 3 entries", succs)
	}
}
