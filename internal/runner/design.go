package runner

import "repro/internal/apps"

// Axis is one swept parameter of a Design: the parameter name and the
// values it takes, in sweep order.
type Axis struct {
	Param  string
	Values []float64
}

// Design declares a full-factorial parameter sweep over one spec: every
// combination of axis values layered over the default configuration. It is
// the batch analog of the paper's modeling designs (e.g. the 25-point
// p × size grid of Table 2).
type Design struct {
	Spec     *apps.Spec
	Defaults apps.Config
	Axes     []Axis
}

// Configs expands the design into its configuration grid, row-major with
// the last axis varying fastest — a deterministic order, so sweep results
// are reproducible and comparable across runs.
func (d Design) Configs() []apps.Config {
	n := 1
	for _, ax := range d.Axes {
		n *= len(ax.Values)
	}
	if len(d.Axes) == 0 || n == 0 {
		return nil
	}
	out := make([]apps.Config, 0, n)
	idx := make([]int, len(d.Axes))
	for {
		cfg := d.Defaults.Clone()
		for i, ax := range d.Axes {
			cfg[ax.Param] = ax.Values[idx[i]]
		}
		out = append(out, cfg)
		// Odometer increment, last axis fastest.
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(d.Axes[k].Values) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			return out
		}
	}
}

// Size returns the number of configurations the design expands to.
func (d Design) Size() int {
	if len(d.Axes) == 0 {
		return 0
	}
	n := 1
	for _, ax := range d.Axes {
		n *= len(ax.Values)
	}
	return n
}
