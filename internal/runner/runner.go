// Package runner is the concurrent batch engine over the core pipeline:
// it memoizes the per-spec artifacts (module build, verification, and the
// static pass run exactly once via core.Prepare) and fans the per-config
// dynamic tainted runs out across a bounded worker pool. Results come back
// in input order with per-job error capture, so a failing configuration
// never hides the results of its siblings. The experiment drivers and the
// perftaint facade route all multi-configuration analysis through this
// package, which makes sweep wall-clock scale with cores instead of with
// the number of configurations.
package runner

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/par"
)

// Result is the outcome of one batch job: the configuration it analyzed,
// its position in the input slice, and either a report or an error.
type Result struct {
	// Index is the job's position in the input configuration slice;
	// results are always returned sorted by Index.
	Index  int
	Config apps.Config
	Report *core.Report
	// Err captures the job's failure without aborting the batch.
	Err error
}

// Runner fans batches of Perf-Taint analyses out across a worker pool.
// The zero value is ready to use and saturates GOMAXPROCS.
type Runner struct {
	// Workers bounds batch concurrency; values <= 0 mean GOMAXPROCS.
	Workers int
	// Mode selects the interpreter engine for batches this runner
	// prepares itself (AnalyzeBatch, Sweep); the zero value is the fast
	// engine. Entry points taking an existing core.Prepared honor its
	// Mode instead — one batch, one engine.
	Mode interp.Mode
}

// New returns a runner that saturates GOMAXPROCS.
func New() *Runner { return &Runner{} }

func (r *Runner) workers() int {
	if r != nil && r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AnalyzeBatch analyzes one spec at every configuration in cfgs. The
// module is built, verified, and statically classified exactly once
// (core.Prepare); only the dynamic tainted runs fan out across workers.
// The returned error covers the shared preparation alone — per-config
// failures land in the corresponding Result.Err, and results preserve
// input order regardless of completion order.
func (r *Runner) AnalyzeBatch(spec *apps.Spec, cfgs []apps.Config) ([]Result, error) {
	p, err := core.Prepare(spec)
	if err != nil {
		return nil, fmt.Errorf("runner: prepare %s: %w", spec.Name, err)
	}
	if r != nil {
		p.Mode = r.Mode
	}
	return r.AnalyzeBatchPrepared(p, cfgs), nil
}

// AnalyzeBatchPrepared fans the dynamic stage out over cfgs against
// already-prepared artifacts, for callers that reuse one core.Prepared
// across several batches.
func (r *Runner) AnalyzeBatchPrepared(p *core.Prepared, cfgs []apps.Config) []Result {
	return r.AnalyzeBatchPreparedCtx(context.Background(), p, cfgs)
}

// AnalyzeBatchPreparedCtx is AnalyzeBatchPrepared with cooperative
// cancellation: once ctx is done, jobs that have not started yet are
// skipped and their Result.Err captures ctx's error. Jobs already running
// finish normally — the dynamic stage is fuel-bounded, so a straggler
// cannot outlive its fuel budget — which keeps every returned Result in
// one of exactly two states: fully analyzed or never started. The analysis
// daemon (internal/service) routes every scheduled job through this entry
// point so per-job deadlines and client disconnects stop queued work.
func (r *Runner) AnalyzeBatchPreparedCtx(ctx context.Context, p *core.Prepared, cfgs []apps.Config) []Result {
	out := make([]Result, len(cfgs))
	Map(r.workers(), len(cfgs), func(i int) {
		if err := ctx.Err(); err != nil {
			out[i] = Result{Index: i, Config: cfgs[i], Err: fmt.Errorf("runner: job %d skipped: %w", i, err)}
			return
		}
		rep, err := p.Analyze(cfgs[i])
		out[i] = Result{Index: i, Config: cfgs[i], Report: rep, Err: err}
	})
	return out
}

// Sweep expands the design's full-factorial configuration grid and runs it
// as one batch.
func (r *Runner) Sweep(d Design) ([]Result, error) {
	return r.AnalyzeBatch(d.Spec, d.Configs())
}

// SweepFitCtx is the streaming batch entry point: it fans the dynamic
// runs out across the worker pool exactly like AnalyzeBatchPreparedCtx,
// but hands each Result to emit in input order as soon as it and all its
// predecessors have finished — downstream consumers start working on
// design point i while points i+1.. are still being analyzed. It exists
// for the model-extraction pipeline (internal/modelreg), which feeds
// sweep results into an incremental fitter as they stream, hence the
// name; any consumer that wants pipelined, input-ordered results can
// use it.
//
// emit is called from the SweepFitCtx goroutine only, never concurrently.
// A non-nil error from emit cancels all jobs that have not started
// (running jobs finish — they are fuel-bounded) and is returned after the
// pool drains. Per-job analysis failures do not abort the stream: they
// arrive in Result.Err like in the batch API, and the consumer decides.
func (r *Runner) SweepFitCtx(ctx context.Context, p *core.Prepared, cfgs []apps.Config, emit func(Result) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]Result, len(cfgs))
	ready := make([]chan struct{}, len(cfgs))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	poolDone := make(chan struct{})
	go func() {
		defer close(poolDone)
		Map(r.workers(), len(cfgs), func(i int) {
			defer close(ready[i])
			if err := ctx.Err(); err != nil {
				out[i] = Result{Index: i, Config: cfgs[i], Err: fmt.Errorf("runner: job %d skipped: %w", i, err)}
				return
			}
			rep, err := p.Analyze(cfgs[i])
			out[i] = Result{Index: i, Config: cfgs[i], Report: rep, Err: err}
		})
	}()
	var emitErr error
	for i := range cfgs {
		<-ready[i]
		if emitErr == nil {
			if err := emit(out[i]); err != nil {
				emitErr = err
				cancel() // skip everything not yet started
			}
		}
	}
	<-poolDone
	return emitErr
}

// FirstErr returns the first per-job error of a batch in input order, or
// nil when every job succeeded.
func FirstErr(rs []Result) error {
	for _, res := range rs {
		if res.Err != nil {
			return fmt.Errorf("runner: job %d: %w", res.Index, res.Err)
		}
	}
	return nil
}

// Reports unwraps a fully successful batch into its reports, failing on
// the first captured job error.
func Reports(rs []Result) ([]*core.Report, error) {
	if err := FirstErr(rs); err != nil {
		return nil, err
	}
	out := make([]*core.Report, len(rs))
	for i, res := range rs {
		out[i] = res.Report
	}
	return out, nil
}

// Map runs n index jobs on at most workers goroutines (workers <= 0 means
// GOMAXPROCS) and returns when all have finished. Jobs are handed out in
// index order; callers that write job i's outcome to slot i of a
// preallocated slice get deterministic, input-ordered results for free.
func Map(workers, n int, job func(i int)) { par.ForEach(workers, n, job) }
