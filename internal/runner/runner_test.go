package runner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interp"
)

// summarize renders every deterministic projection of a report so batch
// and sequential results can be compared byte for byte.
func summarize(rep *core.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "spec=%s instructions=%d\n", rep.Spec.Name, rep.Instructions)
	dumpDeps := func(tag string, m map[string][]string) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s %s=%v\n", tag, k, m[k])
		}
	}
	dumpDeps("loop", rep.LoopDeps)
	dumpDeps("lib", rep.LibDeps)
	dumpDeps("func", rep.FuncDeps)
	var rel []string
	for fn := range rep.Relevant {
		rel = append(rel, fn)
	}
	sort.Strings(rel)
	fmt.Fprintf(&sb, "relevant=%v\n", rel)
	fmt.Fprintf(&sb, "census=%+v\n", rep.Census([]string{"p", "size"}))
	var fns []string
	for fn := range rep.Volumes.StructByFunc {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		fmt.Fprintf(&sb, "struct %s=%s\n", fn, rep.Volumes.StructByFunc[fn])
	}
	return sb.String()
}

func luleshConfigs() []apps.Config {
	base := apps.LULESHTaintConfig()
	var out []apps.Config
	for _, p := range []float64{2, 4, 8, 16} {
		cfg := base.Clone()
		cfg["p"] = p
		out = append(out, cfg)
	}
	return out
}

func TestBatchMatchesSequential(t *testing.T) {
	spec := apps.LULESH()
	cfgs := luleshConfigs()

	var want []string
	for _, cfg := range cfgs {
		rep, err := core.Analyze(spec, cfg)
		if err != nil {
			t.Fatalf("sequential Analyze: %v", err)
		}
		want = append(want, summarize(rep))
	}

	res, err := (&Runner{Workers: 4}).AnalyzeBatch(spec, cfgs)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	if len(res) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(res), len(cfgs))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if got := summarize(r.Report); got != want[i] {
			t.Errorf("job %d: batch report differs from sequential:\n--- batch ---\n%s--- sequential ---\n%s", i, got, want[i])
		}
	}
}

func TestBatchSharesPreparation(t *testing.T) {
	res, err := New().AnalyzeBatch(apps.LULESH(), luleshConfigs())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		// All reports must reference the artifacts of the single Prepare
		// call: same module, same static classification.
		if r.Report.Module != res[0].Report.Module {
			t.Errorf("job %d rebuilt the module", i)
		}
		if fmt.Sprintf("%p", r.Report.Static) != fmt.Sprintf("%p", res[0].Report.Static) {
			t.Errorf("job %d re-ran the static pass", i)
		}
	}
}

// TestBatchDifferentialEngines fans the same sweep out under the fast and
// reference interpreters (one shared predecoded Program each way) and
// requires byte-identical reports, covering the concurrent path of the
// fast engine.
func TestBatchDifferentialEngines(t *testing.T) {
	spec := apps.LULESH()
	cfgs := luleshConfigs()

	pFast, err := core.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pFast.Program == nil {
		t.Fatal("Prepare did not predecode the module")
	}
	pRef, err := core.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	pRef.Mode = interp.ModeReference

	r := &Runner{Workers: 4}
	fast := r.AnalyzeBatchPrepared(pFast, cfgs)
	ref := r.AnalyzeBatchPrepared(pRef, cfgs)
	if err := FirstErr(fast); err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(ref); err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if got, want := summarize(fast[i].Report), summarize(ref[i].Report); got != want {
			t.Errorf("config %d: engines diverged:\n--- fast ---\n%s--- reference ---\n%s", i, got, want)
		}
	}
}

func TestDeterministicOrdering(t *testing.T) {
	spec := apps.LULESH()
	cfgs := luleshConfigs()
	first, err := (&Runner{Workers: 8}).AnalyzeBatch(spec, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := (&Runner{Workers: 2}).AnalyzeBatch(spec, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if first[i].Index != i || second[i].Index != i {
			t.Fatalf("result %d out of order: %d vs %d", i, first[i].Index, second[i].Index)
		}
		if first[i].Config["p"] != cfgs[i]["p"] {
			t.Fatalf("result %d carries config p=%v, want %v", i, first[i].Config["p"], cfgs[i]["p"])
		}
		if summarize(first[i].Report) != summarize(second[i].Report) {
			t.Errorf("result %d differs across worker counts", i)
		}
	}
}

func TestErrorCapture(t *testing.T) {
	spec := apps.LULESH()
	good := apps.LULESHTaintConfig()
	bad := good.Clone()
	delete(bad, "p") // the dynamic stage requires the implicit parameter
	cfgs := []apps.Config{good, bad, good.Clone()}

	res, err := New().AnalyzeBatch(spec, cfgs)
	if err != nil {
		t.Fatalf("batch-level error for a per-job failure: %v", err)
	}
	if res[1].Err == nil {
		t.Fatal("job 1 should have failed (missing p)")
	}
	if res[1].Report != nil {
		t.Fatal("failed job should not carry a report")
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil || res[i].Report == nil {
			t.Fatalf("job %d should have succeeded: %v", i, res[i].Err)
		}
	}
	if err := FirstErr(res); err == nil || !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("FirstErr = %v, want job 1 error", err)
	}
	if _, err := Reports(res); err == nil {
		t.Fatal("Reports should propagate the captured error")
	}
}

func TestDesignConfigs(t *testing.T) {
	d := Design{
		Defaults: apps.Config{"iters": 1},
		Axes: []Axis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{5, 6, 7}},
		},
	}
	if d.Size() != 6 {
		t.Fatalf("Size = %d, want 6", d.Size())
	}
	cfgs := d.Configs()
	if len(cfgs) != 6 {
		t.Fatalf("got %d configs, want 6", len(cfgs))
	}
	// Row-major, last axis fastest, defaults preserved.
	want := []struct{ p, size float64 }{
		{2, 5}, {2, 6}, {2, 7}, {4, 5}, {4, 6}, {4, 7},
	}
	for i, w := range want {
		if cfgs[i]["p"] != w.p || cfgs[i]["size"] != w.size || cfgs[i]["iters"] != 1 {
			t.Fatalf("config %d = %v, want p=%g size=%g iters=1", i, cfgs[i], w.p, w.size)
		}
	}
}

func TestSweep(t *testing.T) {
	base := apps.LULESHTaintConfig()
	d := Design{
		Spec:     apps.LULESH(),
		Defaults: base,
		Axes: []Axis{
			{Param: "p", Values: []float64{2, 4}},
			{Param: "size", Values: []float64{4, 5}},
		},
	}
	res, err := New().Sweep(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != d.Size() {
		t.Fatalf("got %d results, want %d", len(res), d.Size())
	}
	reps, err := Reports(res)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := d.Configs()
	for i, rep := range reps {
		if rep.Spec.Name != apps.LULESH().Name {
			t.Fatalf("result %d analyzed %s", i, rep.Spec.Name)
		}
		if res[i].Config["p"] != cfgs[i]["p"] || res[i].Config["size"] != cfgs[i]["size"] {
			t.Fatalf("result %d out of design order", i)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	Map(4, 0, func(int) { t.Fatal("job ran for n=0") })

	n := 100
	seen := make([]int, n)
	Map(16, n, func(i int) { seen[i]++ })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}

	// workers <= 0 falls back to GOMAXPROCS; workers > n is clamped.
	ran := make([]bool, 3)
	Map(-1, 3, func(i int) { ran[i] = true })
	for i, ok := range ran {
		if !ok {
			t.Fatalf("index %d never ran with default workers", i)
		}
	}
	Map(50, 2, func(i int) {})
}

// TestAnalyzeBatchPreparedCtxCancel checks that a canceled context skips
// not-yet-started jobs while completed jobs keep their reports, and that
// an undisturbed context analyzes everything.
func TestAnalyzeBatchPreparedCtxCancel(t *testing.T) {
	p, err := core.Prepare(apps.LULESH())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := luleshConfigs()

	live := (&Runner{Workers: 2}).AnalyzeBatchPreparedCtx(context.Background(), p, cfgs)
	if err := FirstErr(live); err != nil {
		t.Fatalf("live context batch failed: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := (&Runner{Workers: 2}).AnalyzeBatchPreparedCtx(ctx, p, cfgs)
	for i, res := range dead {
		if res.Index != i {
			t.Fatalf("result %d carries index %d", i, res.Index)
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("job %d: want context.Canceled, got %v", i, res.Err)
		}
		if res.Report != nil {
			t.Fatalf("job %d: skipped job must not carry a report", i)
		}
	}
}

// TestSweepFitCtxStreams checks the streaming entry point: results
// arrive in input order, exactly once each, match the batch API, and
// emit is never called concurrently.
func TestSweepFitCtxStreams(t *testing.T) {
	p, err := core.Prepare(apps.LULESH())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := luleshConfigs()
	batch := (&Runner{Workers: 4}).AnalyzeBatchPrepared(p, cfgs)

	var streamed []Result
	err = (&Runner{Workers: 4}).SweepFitCtx(context.Background(), p, cfgs, func(res Result) error {
		streamed = append(streamed, res)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(cfgs) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(cfgs))
	}
	for i, res := range streamed {
		if res.Index != i {
			t.Fatalf("result %d carries index %d", i, res.Index)
		}
		if res.Err != nil {
			t.Fatalf("job %d failed: %v", i, res.Err)
		}
		if got, want := summarize(res.Report), summarize(batch[i].Report); got != want {
			t.Fatalf("streamed result %d diverges from the batch API", i)
		}
	}
}

// TestSweepFitCtxEmitError checks that a failing sink cancels the rest
// of the stream: emit is not called again and the call returns the
// sink's error after the pool drains.
func TestSweepFitCtxEmitError(t *testing.T) {
	p, err := core.Prepare(apps.LULESH())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := luleshConfigs()
	sinkErr := errors.New("sink full")
	calls := 0
	err = (&Runner{Workers: 2}).SweepFitCtx(context.Background(), p, cfgs, func(res Result) error {
		calls++
		if calls == 2 {
			return sinkErr
		}
		return nil
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("want sink error back, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times after failure, want 2", calls)
	}
}

// TestSweepFitCtxCancel checks cooperative cancellation: a dead context
// still emits every slot, with skip errors on not-started jobs.
func TestSweepFitCtxCancel(t *testing.T) {
	p, err := core.Prepare(apps.LULESH())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var seen int
	err = (&Runner{Workers: 2}).SweepFitCtx(ctx, p, luleshConfigs(), func(res Result) error {
		seen++
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("job %d: want context.Canceled, got %v", res.Index, res.Err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("emit never failed, got %v", err)
	}
	if seen != len(luleshConfigs()) {
		t.Fatalf("saw %d results, want every slot", seen)
	}
}
