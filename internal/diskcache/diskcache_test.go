package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

func digestOf(payload string) string {
	sum := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(sum[:])
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the artifact")
	digest := digestOf(string(payload))
	if _, ok := st.Get(digest); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := st.Put(digest, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(digest)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if n := st.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	want := Stats{Hits: 1, Misses: 1, Puts: 1}
	if got := st.Stats(); got != want {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	digest := digestOf("persisted")
	st1, err := Open(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Put(digest, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// A second store over the same dir+version — the restart case — must
	// serve the entry; a different version must not even see it.
	st2, err := Open(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Get(digest); !ok || string(got) != "persisted" {
		t.Fatalf("reopened store Get = %q, %v; want persisted entry", got, ok)
	}
	st3, err := Open(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st3.Get(digest); ok {
		t.Fatal("bumped-version store served an old entry")
	}
}

// TestStoreDropsDamagedEntries is the never-poison property: every way a
// file can be wrong — truncated, bit-flipped, wrong version, renamed
// onto another digest, not a cache file at all — must read as a miss AND
// remove the file, so the next Put can heal the slot.
func TestStoreDropsDamagedEntries(t *testing.T) {
	damage := []struct {
		name string
		warp func(raw []byte) []byte
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)-3] }},
		{"bit-flipped payload", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0x01
			return out
		}},
		{"foreign file", func([]byte) []byte { return []byte("not a cache file") }},
		{"empty file", func([]byte) []byte { return nil }},
		{"wrong version line", func(raw []byte) []byte {
			return []byte(strings.Replace(string(raw), "\nv1\n", "\nv0\n", 1))
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			st, err := Open(t.TempDir(), "v1")
			if err != nil {
				t.Fatal(err)
			}
			digest := digestOf(d.name)
			if err := st.Put(digest, []byte("good payload")); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(st.Root(), digest)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, d.warp(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := st.Get(digest); ok {
				t.Fatalf("damaged entry served: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("damaged entry not deleted (stat err = %v)", err)
			}
			stats := st.Stats()
			if stats.Dropped != 1 || stats.Misses != 1 || stats.Hits != 0 {
				t.Fatalf("Stats = %+v, want 1 dropped, 1 miss, 0 hits", stats)
			}
			// The slot heals: a fresh Put serves again.
			if err := st.Put(digest, []byte("good payload")); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Get(digest); !ok {
				t.Fatal("healed entry not served")
			}
		})
	}
}

func TestStoreRejectsHostileDigests(t *testing.T) {
	st, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"", "short", "../../../../etc/passwd", "ABCDEF0123456789", digestOf("x") + "Z"} {
		if err := st.Put(d, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", d)
		}
		if _, ok := st.Get(d); ok {
			t.Errorf("Get(%q) hit", d)
		}
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	st, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := fmt.Sprintf("payload-%d", i%4)
			digest := digestOf(payload)
			for j := 0; j < 50; j++ {
				if err := st.Put(digest, []byte(payload)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := st.Get(digest); ok && string(got) != payload {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// stringCodec round-trips strings and rejects payloads that do not match
// their digest, mimicking the real codecs' digest-agreement check.
type stringCodec struct{}

func (stringCodec) Encode(v any) ([]byte, error) { return []byte(v.(string)), nil }

func (stringCodec) Decode(digest string, data []byte) (any, error) {
	if digestOf(string(data)) != digest {
		return nil, fmt.Errorf("payload does not denote %s", digest)
	}
	return string(data), nil
}

func TestLayerDeletesEntriesThatFailDecode(t *testing.T) {
	st, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayer(st, stringCodec{})
	l.Put(digestOf("hello"), "hello")
	if v, ok := l.Get(digestOf("hello")); !ok || v.(string) != "hello" {
		t.Fatalf("Get = %v, %v; want hello", v, ok)
	}

	// Rename the (store-level valid) entry onto a different digest: the
	// store checksum still passes, so only the codec's digest-agreement
	// check can catch it — and the bad name must be cleaned up.
	wrong := digestOf("goodbye")
	if err := os.Rename(filepath.Join(st.Root(), digestOf("hello")), filepath.Join(st.Root(), wrong)); err != nil {
		t.Fatal(err)
	}
	if v, ok := l.Get(wrong); ok {
		t.Fatalf("renamed entry served as %v", v)
	}
	if _, err := os.Stat(filepath.Join(st.Root(), wrong)); !os.IsNotExist(err) {
		t.Fatalf("renamed entry not deleted (stat err = %v)", err)
	}
	stats := l.Stats()
	if stats.Dropped != 1 {
		t.Fatalf("Stats = %+v, want exactly 1 dropped", stats)
	}
	// Hits must count only Gets that returned a value.
	if stats.Hits != 1 {
		t.Fatalf("Stats = %+v, want exactly 1 hit (the good read)", stats)
	}
}

func TestNilLayerAndStoreAreInert(t *testing.T) {
	var l *Layer
	if _, ok := l.Get(digestOf("x")); ok {
		t.Fatal("nil layer hit")
	}
	l.Put(digestOf("x"), "x")
	if st := l.Stats(); st != (Stats{}) {
		t.Fatalf("nil layer stats = %+v", st)
	}
	var s *Store
	if _, ok := s.Get(digestOf("x")); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(digestOf("x"), nil); err != nil {
		t.Fatalf("nil store Put = %v", err)
	}
	s.Delete(digestOf("x"))
	if s.Len() != 0 || s.Stats() != (Stats{}) {
		t.Fatal("nil store not inert")
	}
}

// TestStoreTornWriteIsNeverServed is the crash-durability regression:
// a torn write (injected via faultinject) leaves a prefix of the entry
// under the live name with no error reported — exactly what a power
// loss mid-write produces. Verify-on-read must treat it as a miss,
// delete it, and let the next Put replace it with a good entry.
func TestStoreTornWriteIsNeverServed(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
		t.Run(fmt.Sprintf("frac-%v", frac), func(t *testing.T) {
			prev := faultinject.Install(faultinject.MustSchedule(faultinject.Fault{
				Site: faultinject.SiteDiskWrite, Hit: 1, Kind: faultinject.KindTorn, Frac: frac,
			}))
			t.Cleanup(func() { faultinject.Install(prev) })

			st, err := Open(t.TempDir(), "v1")
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("the artifact that tears")
			digest := digestOf(string(payload))
			if err := st.Put(digest, payload); err != nil {
				t.Fatalf("torn Put must report success (the write was acknowledged): %v", err)
			}
			if _, ok := st.Get(digest); ok {
				t.Fatal("torn entry served as a hit")
			}
			if got := st.Stats(); got.Dropped != 1 {
				t.Fatalf("torn entry not dropped on read: %+v", got)
			}
			// The site fired once; the replacement write is clean.
			if err := st.Put(digest, payload); err != nil {
				t.Fatal(err)
			}
			got, ok := st.Get(digest)
			if !ok || string(got) != string(payload) {
				t.Fatalf("replacement entry unreadable: %q, %v", got, ok)
			}
		})
	}
}

// TestStoreInjectedWriteCrash covers KindCrash at the write site: the
// Put fails with a clean typed error, nothing lands under the live
// name, and the store keeps working afterwards.
func TestStoreInjectedWriteCrash(t *testing.T) {
	prev := faultinject.Install(faultinject.MustSchedule(faultinject.Fault{
		Site: faultinject.SiteDiskWrite, Hit: 1, Kind: faultinject.KindCrash, Frac: 0.5,
	}))
	t.Cleanup(func() { faultinject.Install(prev) })

	st, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("crash mid write")
	digest := digestOf(string(payload))
	err = st.Put(digest, payload)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("crash Put error = %v, want ErrInjected", err)
	}
	if _, ok := st.Get(digest); ok {
		t.Fatal("crashed write became visible")
	}
	if err := st.Put(digest, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(digest); !ok {
		t.Fatal("store wedged after injected crash")
	}
}
