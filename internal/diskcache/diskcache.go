// Package diskcache is the content-addressed on-disk layer beneath the
// daemon's in-memory caches: one file per digest under a versioned root,
// written via temp-file + atomic rename so a reader never observes a
// partial entry and a crash never leaves a half-written file under a
// live name.
//
// The store is deliberately paranoid about what it reads back. Every
// file carries a self-describing header (magic, store version, payload
// length, payload checksum); anything that fails any of those checks —
// truncated writes, bit rot, a file renamed to the wrong digest, an
// entry written by a different store version — is treated as a miss and
// deleted on the spot, so a damaged cache can degrade performance but
// can never poison a result. Version invalidation is structural: the
// version string is part of the root path, so entries written under an
// older semantic version are simply never looked up again.
//
// The wazero compiled-module file cache is the pattern (digest-named
// files, atomic rename, version-stamped invalidation); this package
// generalizes it behind a byte-level Store plus a small Codec layer the
// service PreparedCache and the modelreg Registry plug their wire forms
// into.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
)

// magic tags every cache file; a file without it was not written by this
// package and is dropped rather than interpreted.
const magic = "perftaint-diskcache/1"

// Store is a content-addressed file store: Put files a payload under its
// digest, Get returns it if — and only if — the bytes on disk still
// verify. A Store is safe for concurrent use by any number of
// goroutines and, because writes are atomic renames of fully-written
// temp files, by any number of processes sharing the directory.
type Store struct {
	root    string
	version string

	mu      sync.Mutex
	hits    uint64
	misses  uint64
	puts    uint64
	dropped uint64 // corrupt/short/wrong-version files deleted on read
}

// Stats is a point-in-time snapshot of a store's counters.
type Stats struct {
	// Hits counts Gets that returned a verified payload; Misses counts
	// absent entries plus every entry dropped as unreadable.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts successfully persisted entries.
	Puts uint64 `json:"puts"`
	// Dropped counts corrupt, truncated, or wrong-version files deleted
	// during Get — each also counted as a miss.
	Dropped uint64 `json:"dropped"`
}

// Open creates (if needed) and returns the store rooted at
// dir/<version>: bumping version retires every previously written entry
// without touching it, because the old files live under a root the new
// store never reads.
func Open(dir, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty cache directory")
	}
	root := filepath.Join(dir, sanitize(version))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: create %s: %w", root, err)
	}
	return &Store{root: root, version: version}, nil
}

// Root returns the versioned directory entries live in.
func (s *Store) Root() string { return s.root }

// Get returns the payload stored under digest. Any entry that fails
// verification — wrong magic or version, truncated payload, checksum
// mismatch — is deleted and reported as a miss, never returned.
func (s *Store) Get(digest string) ([]byte, bool) {
	if s == nil || !validDigest(digest) {
		return nil, false
	}
	if f, ok := faultinject.Eval(faultinject.SiteDiskRead); ok && f.Kind == faultinject.KindError {
		// An injected read error behaves exactly like an absent entry: the
		// never-poison contract means unreadable always degrades to miss.
		s.count(func() { s.misses++ })
		return nil, false
	}
	raw, err := os.ReadFile(s.path(digest))
	if err != nil {
		s.count(func() { s.misses++ })
		return nil, false
	}
	payload, ok := s.verify(raw)
	if !ok {
		// Never poison: an unreadable entry is removed so the next Put
		// can replace it with a good one.
		_ = os.Remove(s.path(digest))
		s.count(func() { s.misses++; s.dropped++ })
		return nil, false
	}
	s.count(func() { s.hits++ })
	return payload, true
}

// Put persists payload under digest: the header and payload are written
// to a temp file in the same directory, synced, and renamed into place,
// so concurrent readers (and crashes at any instant) see either the old
// entry or the complete new one.
func (s *Store) Put(digest string, payload []byte) error {
	if s == nil {
		return nil
	}
	if !validDigest(digest) {
		return fmt.Errorf("diskcache: invalid digest %q", digest)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s\n%s\n%d %s\n", magic, s.version, len(payload), hex.EncodeToString(sum[:]))
	tmp, err := os.CreateTemp(s.root, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("diskcache: temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	full := append([]byte(header), payload...)
	if f, ok := faultinject.Eval(faultinject.SiteDiskWrite); ok {
		switch f.Kind {
		case faultinject.KindError:
			tmp.Close()
			return faultinject.Errf(f)
		case faultinject.KindTorn:
			// A torn write: a prefix of the entry lands under the live name
			// with no error reported — the worst case the verify-on-read
			// header protects against. Get must treat it as a miss.
			cut := faultinject.Cut(f, len(full))
			tmp.Write(full[:cut]) //nolint:errcheck // injected partial write
			tmp.Close()
			if err := os.Rename(tmp.Name(), s.path(digest)); err != nil {
				return fmt.Errorf("diskcache: publish %s: %w", digest, err)
			}
			s.count(func() { s.puts++ })
			return nil
		case faultinject.KindCrash:
			cut := faultinject.Cut(f, len(full))
			tmp.Write(full[:cut]) //nolint:errcheck // injected partial write
			tmp.Close()
			return faultinject.Errf(f)
		}
	}
	_, werr := tmp.Write(full)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("diskcache: write %s: %w", digest, werr)
	}
	if err := os.Rename(tmp.Name(), s.path(digest)); err != nil {
		return fmt.Errorf("diskcache: publish %s: %w", digest, err)
	}
	// The rename made the entry visible; fsyncing the directory makes it
	// durable. Without this, a power loss after Put returns can forget
	// the directory entry even though the data blocks were synced.
	syncDir(s.root)
	s.count(func() { s.puts++ })
	return nil
}

// syncDir fsyncs a directory so entry renames inside it survive power
// loss; best-effort because not every platform supports directory sync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort durability barrier
	d.Close()
}

// Delete removes the entry for digest, if present.
func (s *Store) Delete(digest string) {
	if s == nil || !validDigest(digest) {
		return
	}
	_ = os.Remove(s.path(digest))
}

// Len counts the resident entries (temp files excluded).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && validDigest(e.Name()) {
			n++
		}
	}
	return n
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Hits: s.hits, Misses: s.misses, Puts: s.puts, Dropped: s.dropped}
}

func (s *Store) path(digest string) string { return filepath.Join(s.root, digest) }

func (s *Store) count(f func()) {
	s.mu.Lock()
	f()
	s.mu.Unlock()
}

// verify parses a raw cache file and returns its payload only if every
// header check passes.
func (s *Store) verify(raw []byte) ([]byte, bool) {
	rest, ok := cutLine(raw, magic)
	if !ok {
		return nil, false
	}
	rest, ok = cutLine(rest, s.version)
	if !ok {
		return nil, false
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false
	}
	var length int
	var sumHex string
	if _, err := fmt.Sscanf(string(rest[:nl]), "%d %s", &length, &sumHex); err != nil {
		return nil, false
	}
	payload := rest[nl+1:]
	if length < 0 || len(payload) != length {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, false
	}
	return payload, true
}

// cutLine strips one expected header line (text + newline) off raw.
func cutLine(raw []byte, want string) ([]byte, bool) {
	rest, ok := bytes.CutPrefix(raw, []byte(want))
	if !ok {
		return nil, false
	}
	return bytes.CutPrefix(rest, []byte{'\n'})
}

// validDigest accepts the hex content addresses both caches use as file
// names — and nothing that could escape the root or collide with temp
// files.
func validDigest(d string) bool {
	if len(d) < 16 || len(d) > 128 {
		return false
	}
	for _, c := range d {
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// sanitize maps a version string onto a safe directory name.
func sanitize(v string) string {
	if v == "" {
		return "v0"
	}
	out := make([]rune, 0, len(v))
	for _, c := range v {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
