package diskcache

// Codec translates one cache's values to and from durable bytes. Encode
// produces the payload persisted for a value; Decode reverses it, and —
// because the payload's integrity checksum cannot prove the payload
// belongs to the *name* it was read under — receives the digest the
// caller asked for so it can verify content-address agreement (a file
// renamed onto the wrong digest must decode to an error, never to a
// wrong answer served under the right key).
type Codec interface {
	// Encode serializes a cache value into its durable payload.
	Encode(v any) ([]byte, error)
	// Decode reconstructs a value from the payload stored under digest,
	// failing if the payload does not actually denote digest.
	Decode(digest string, data []byte) (any, error)
}

// Layer couples a Store with a Codec into the typed disk tier an
// in-memory cache layers itself over. A nil *Layer is a valid,
// always-missing tier, so caches need no "is persistence on?" branches.
type Layer struct {
	store *Store
	codec Codec
}

// NewLayer wraps store with codec.
func NewLayer(store *Store, codec Codec) *Layer {
	return &Layer{store: store, codec: codec}
}

// Get loads and decodes the value stored under digest. A payload that
// reads back but fails to decode (schema drift the version stamp missed,
// digest disagreement) is deleted like any other corrupt entry.
func (l *Layer) Get(digest string) (any, bool) {
	if l == nil {
		return nil, false
	}
	data, ok := l.store.Get(digest)
	if !ok {
		return nil, false
	}
	v, err := l.codec.Decode(digest, data)
	if err != nil {
		l.store.Delete(digest)
		l.store.count(func() { l.store.dropped++; l.store.hits--; l.store.misses++ })
		return nil, false
	}
	return v, true
}

// Put encodes and persists v under digest; failures are deliberately
// swallowed after accounting — persistence is an accelerator, never a
// correctness dependency, and a full or read-only disk must not fail
// the request that tried to warm it.
func (l *Layer) Put(digest string, v any) {
	if l == nil {
		return
	}
	data, err := l.codec.Encode(v)
	if err != nil {
		return
	}
	_ = l.store.Put(digest, data)
}

// PutRaw persists an already-encoded payload under digest, bypassing the
// codec. Callers that receive canonical payload bytes from elsewhere
// (e.g. a worker adopting a spec receipt federated from its coordinator)
// use it to seed the tier without a value round-trip; the payload is
// verified like any other entry the next time Get decodes it. Returns
// the store error for callers that want to know seeding failed; a nil
// layer reports success, matching Put's nil-safety.
func (l *Layer) PutRaw(digest string, payload []byte) error {
	if l == nil {
		return nil
	}
	return l.store.Put(digest, payload)
}

// Stats exposes the underlying store counters.
func (l *Layer) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return l.store.Stats()
}
