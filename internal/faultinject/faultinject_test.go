package faultinject

import (
	"errors"
	"testing"
	"time"
)

// install swaps in a schedule for the duration of a test.
func install(t *testing.T, s *Schedule) {
	t.Helper()
	prev := Install(s)
	t.Cleanup(func() { Install(prev) })
}

func TestEvalFiresOnScheduledHit(t *testing.T) {
	install(t, MustSchedule(Fault{Site: SiteDiskWrite, Hit: 2, Kind: KindTorn, Frac: 0.5}))

	if _, ok := Eval(SiteDiskWrite); ok {
		t.Fatal("hit 1 should not fire")
	}
	f, ok := Eval(SiteDiskWrite)
	if !ok || f.Kind != KindTorn {
		t.Fatalf("hit 2: got %+v ok=%v, want torn fault", f, ok)
	}
	if _, ok := Eval(SiteDiskWrite); ok {
		t.Fatal("hit 3 should not fire")
	}
	if _, ok := Eval(SiteDiskRead); ok {
		t.Fatal("other sites should not fire")
	}
	if got := Installed().Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestEvalDisabledByDefault(t *testing.T) {
	install(t, nil)
	if _, ok := Eval(SiteJournalAppend); ok {
		t.Fatal("no schedule installed; Eval must not fire")
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "coordinator.dispatch@1:drop;diskcache.write@2:torn:0.5;journal.append@3:crash:0.25"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != spec {
		t.Fatalf("round trip: got %q, want %q", got, spec)
	}
}

func TestParseLatencyDelay(t *testing.T) {
	s, err := Parse("worker.shard@1:latency:15ms")
	if err != nil {
		t.Fatal(err)
	}
	install(t, s)
	f, ok := Eval(SiteShardStream)
	if !ok || f.Kind != KindLatency || f.Delay != 15*time.Millisecond {
		t.Fatalf("got %+v ok=%v, want 15ms latency", f, ok)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"nope@1:error",            // unknown site
		"diskcache.write@0:error", // hit < 1
		"diskcache.write@1:what",  // unknown kind
		"diskcache.write:error",   // missing @hit
		"diskcache.write@x:error", // non-numeric hit
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(42, 3), Random(42, 3)
	if a.String() != b.String() {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
	}
	if Random(43, 3).String() == a.String() {
		t.Fatal("different seeds should (almost surely) differ")
	}
	// Every generated schedule must survive its own round trip, so it can
	// cross a process boundary via the environment.
	for seed := int64(0); seed < 50; seed++ {
		s := Random(seed, 3)
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("seed %d: Parse(String): %v", seed, err)
		}
		if back.String() != s.String() {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestErrfIsErrInjected(t *testing.T) {
	err := Errf(Fault{Site: SiteDiskWrite, Hit: 1, Kind: KindError})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Errf result is not ErrInjected: %v", err)
	}
}

func TestCutBounds(t *testing.T) {
	if got := Cut(Fault{Frac: 0}, 10); got != 5 {
		t.Fatalf("default frac: got %d, want 5", got)
	}
	if got := Cut(Fault{Frac: 2}, 10); got != 9 {
		t.Fatalf("overshoot clamps to n-1: got %d", got)
	}
	if got := Cut(Fault{Frac: 0.5}, 1); got != 0 {
		t.Fatalf("n=1 clamps to 0: got %d", got)
	}
}

func TestInstallFromEnv(t *testing.T) {
	install(t, nil)
	if err := InstallFromEnv(""); err != nil {
		t.Fatal(err)
	}
	if Installed() != nil {
		t.Fatal("empty value must leave injection off")
	}
	if err := InstallFromEnv("diskcache.read@1:error"); err != nil {
		t.Fatal(err)
	}
	if Installed() == nil {
		t.Fatal("schedule should be installed")
	}
	Install(nil)
	if err := InstallFromEnv("bogus"); err == nil {
		t.Fatal("malformed spec must error")
	}
}
