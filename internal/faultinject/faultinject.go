// Package faultinject is the deterministic fault-injection layer behind
// the daemon's durability guarantees: a seeded, schedule-driven registry
// of fault sites compiled into the hot paths that touch disks and wires
// (the diskcache write/read protocol, the journal append path, the
// cluster shard dispatch and its response stream).
//
// A Schedule names which occurrence of which site misbehaves and how
// ("the 2nd diskcache write is torn at 50%", "the 1st shard dispatch is
// dropped"), so a test — or a chaos sweep over hundreds of seeds — can
// replay the exact same failure at the exact same instant every run and
// assert the one invariant that matters: the caller either produces the
// byte-identical artifact or a clean typed error, never a corrupt entry,
// a duplicate stream line, or a hang.
//
// Injection is off unless a schedule is installed (Install, or the
// PERFTAINT_FAULTS environment variable parsed by InstallFromEnv), and a
// disabled Eval is one atomic load, so the sites cost nothing in
// production. Schedules are finite by construction: every fault names a
// specific hit count, so retry loops always converge past the faults.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected failure; callers and tests
// distinguish deliberate faults from real ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind names what an injected fault does at its site.
type Kind string

// The fault kinds a schedule can assign to a site. Sites interpret them
// against their own operation: a disk site tears bytes, a wire site
// drops or truncates a stream.
const (
	// KindError fails the operation outright with an ErrInjected-wrapped
	// error before any effect takes place.
	KindError Kind = "error"
	// KindTorn performs only Frac of the operation's bytes and then
	// pretends the write succeeded — the on-disk state a power loss
	// mid-write leaves behind for recovery code to detect.
	KindTorn Kind = "torn"
	// KindCrash performs Frac of the operation's bytes and then fails
	// with an ErrInjected-wrapped error — process death at that exact
	// record boundary, as observed by the survivor that restarts.
	KindCrash Kind = "crash"
	// KindDrop fails a network operation without attempting it, like a
	// connection refused or reset before the request left.
	KindDrop Kind = "drop"
	// KindTruncate cuts a response stream after Frac of its records.
	KindTruncate Kind = "truncate"
	// KindLatency delays the operation by Delay and then lets it proceed.
	KindLatency Kind = "latency"
)

// Fault site names. Every site compiled into the codebase is listed in
// Sites; schedules may only reference these.
const (
	// SiteDiskWrite is diskcache's entry-publication write (temp file +
	// sync + rename).
	SiteDiskWrite = "diskcache.write"
	// SiteDiskRead is diskcache's entry read-and-verify path.
	SiteDiskRead = "diskcache.read"
	// SiteJournalAppend is the job journal's record append (frame write +
	// fsync) — the scheduler's crash-at-journal-record boundary.
	SiteJournalAppend = "journal.append"
	// SiteDispatch is the coordinator's shard dispatch round-trip to a
	// worker.
	SiteDispatch = "coordinator.dispatch"
	// SiteShardStream is the worker's shard NDJSON response stream.
	SiteShardStream = "worker.shard"
)

// Sites lists every registered fault site, in canonical order; Random
// draws from it and Parse validates against it.
var Sites = []string{SiteDiskWrite, SiteDiskRead, SiteJournalAppend, SiteDispatch, SiteShardStream}

// Fault is one scheduled misbehavior: the Hit'th evaluation of Site
// (1-based, counted per site across the process) acts as Kind.
type Fault struct {
	// Site names the fault site (one of Sites).
	Site string
	// Hit is the 1-based site occurrence this fault fires on.
	Hit int
	// Kind selects the misbehavior.
	Kind Kind
	// Frac is the fraction of the operation performed before Torn, Crash,
	// or Truncate takes effect; 0 means the site's default (half).
	Frac float64
	// Delay is the injected latency for KindLatency.
	Delay time.Duration
}

// Schedule is a deterministic fault plan: a set of (site, hit) → fault
// rules plus the per-site occurrence counters that drive them. Safe for
// concurrent use.
type Schedule struct {
	mu       sync.Mutex
	rules    map[string]map[int]Fault
	counts   map[string]int
	injected uint64
}

// NewSchedule builds a schedule from explicit faults. Unknown sites are
// rejected so a typo'd schedule fails loudly instead of testing nothing.
func NewSchedule(faults ...Fault) (*Schedule, error) {
	s := &Schedule{rules: make(map[string]map[int]Fault), counts: make(map[string]int)}
	for _, f := range faults {
		if !knownSite(f.Site) {
			return nil, fmt.Errorf("faultinject: unknown site %q (sites: %v)", f.Site, Sites)
		}
		if f.Hit < 1 {
			return nil, fmt.Errorf("faultinject: fault at %s has hit %d, want >= 1", f.Site, f.Hit)
		}
		if s.rules[f.Site] == nil {
			s.rules[f.Site] = make(map[int]Fault)
		}
		s.rules[f.Site][f.Hit] = f
	}
	return s, nil
}

// MustSchedule is NewSchedule for test literals; it panics on the
// validation errors NewSchedule reports.
func MustSchedule(faults ...Fault) *Schedule {
	s, err := NewSchedule(faults...)
	if err != nil {
		panic(err)
	}
	return s
}

// Random derives a schedule of n faults from seed: sites, hit counts,
// kinds, and fractions are all drawn from one seeded stream, so the same
// seed always produces the same schedule — the unit a chaos sweep
// enumerates.
func Random(seed int64, n int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{KindError, KindTorn, KindCrash, KindDrop, KindTruncate, KindLatency}
	var faults []Fault
	for i := 0; i < n; i++ {
		site := Sites[rng.Intn(len(Sites))]
		f := Fault{
			Site: site,
			Hit:  1 + rng.Intn(4),
			Kind: kinds[rng.Intn(len(kinds))],
			Frac: 0.25 + 0.5*rng.Float64(),
		}
		// Only wire sites understand drop/truncate and only streams can be
		// cut; remap impossible combinations deterministically instead of
		// scheduling no-ops.
		switch site {
		case SiteDiskWrite, SiteDiskRead, SiteJournalAppend:
			switch f.Kind {
			case KindDrop, KindTruncate:
				f.Kind = KindError
			case KindLatency:
				f.Kind = KindCrash
			}
		case SiteDispatch, SiteShardStream:
			switch f.Kind {
			case KindTorn, KindCrash:
				f.Kind = KindTruncate
			}
		}
		if f.Kind == KindLatency {
			f.Delay = time.Duration(1+rng.Intn(50)) * time.Millisecond
		}
		faults = append(faults, f)
	}
	s, _ := NewSchedule(faults...) // generated faults are valid by construction
	return s
}

// Parse decodes the textual schedule format used by the
// PERFTAINT_FAULTS environment variable: semicolon-separated rules of
// the form "site@hit:kind[:frac]", e.g.
//
//	diskcache.write@2:torn:0.5;coordinator.dispatch@1:drop
func Parse(spec string) (*Schedule, error) {
	var faults []Fault
	for _, rule := range strings.Split(spec, ";") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		siteHit, rest, ok := strings.Cut(rule, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: want site@hit:kind[:frac]", rule)
		}
		site, hitStr, ok := strings.Cut(siteHit, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: missing @hit", rule)
		}
		hit, err := strconv.Atoi(hitStr)
		if err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: bad hit: %w", rule, err)
		}
		kindStr, fracStr, hasFrac := strings.Cut(rest, ":")
		f := Fault{Site: site, Hit: hit, Kind: Kind(kindStr)}
		switch f.Kind {
		case KindError, KindTorn, KindCrash, KindDrop, KindTruncate, KindLatency:
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown kind %q", rule, kindStr)
		}
		if hasFrac {
			if f.Kind == KindLatency {
				d, err := time.ParseDuration(fracStr)
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad delay: %w", rule, err)
				}
				f.Delay = d
			} else {
				frac, err := strconv.ParseFloat(fracStr, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad frac: %w", rule, err)
				}
				f.Frac = frac
			}
		}
		faults = append(faults, f)
	}
	return NewSchedule(faults...)
}

// String renders the schedule back into the Parse format, so a
// generated schedule can cross a process boundary through the
// environment (cmd/chaossmoke hands Random schedules to real daemons
// this way).
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var rules []string
	for site, byHit := range s.rules {
		for hit, f := range byHit {
			r := fmt.Sprintf("%s@%d:%s", site, hit, f.Kind)
			switch {
			case f.Kind == KindLatency && f.Delay > 0:
				r += ":" + f.Delay.String()
			case f.Frac > 0:
				r += ":" + strconv.FormatFloat(f.Frac, 'g', -1, 64)
			}
			rules = append(rules, r)
		}
	}
	sort.Strings(rules)
	return strings.Join(rules, ";")
}

// Injected reports how many faults this schedule has fired so far.
func (s *Schedule) Injected() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// active is the process-wide installed schedule; nil means injection is
// off and every Eval is a single atomic load.
var active atomic.Pointer[Schedule]

// Install makes sched the process-wide fault plan (nil disables
// injection) and returns the previously installed schedule so tests can
// restore it.
func Install(sched *Schedule) *Schedule {
	return active.Swap(sched)
}

// Installed returns the currently installed schedule, nil when injection
// is off.
func Installed() *Schedule { return active.Load() }

// EnvVar is the environment variable InstallFromEnv reads a schedule
// spec from.
const EnvVar = "PERFTAINT_FAULTS"

// InstallFromEnv parses and installs the schedule in the EnvVar
// environment value (via lookup); an empty or absent value leaves
// injection off. The returned error reports a malformed spec — callers
// should fail loudly rather than run believing faults are armed.
func InstallFromEnv(value string) error {
	if value == "" {
		return nil
	}
	sched, err := Parse(value)
	if err != nil {
		return err
	}
	Install(sched)
	return nil
}

// Eval counts one occurrence of site against the installed schedule and
// returns the fault scheduled for it, if any. The false fast path is one
// atomic load, so sites stay free when injection is off.
func Eval(site string) (Fault, bool) {
	sched := active.Load()
	if sched == nil {
		return Fault{}, false
	}
	sched.mu.Lock()
	defer sched.mu.Unlock()
	sched.counts[site]++
	f, ok := sched.rules[site][sched.counts[site]]
	if ok {
		sched.injected++
	}
	return f, ok
}

// Errf builds the clean typed error an injected failure surfaces as:
// always errors.Is(err, ErrInjected).
func Errf(f Fault) error {
	return fmt.Errorf("%w: %s at %s hit %d", ErrInjected, f.Kind, f.Site, f.Hit)
}

// Cut returns how much of an n-unit operation a Torn/Crash/Truncate
// fault performs before taking effect: Frac of n (default half),
// clamped to [0, n-1] so the fault always removes at least one unit.
func Cut(f Fault, n int) int {
	frac := f.Frac
	if frac <= 0 {
		frac = 0.5
	}
	k := int(frac * float64(n))
	if k >= n {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	return k
}

func knownSite(site string) bool {
	for _, s := range Sites {
		if s == site {
			return true
		}
	}
	return false
}
