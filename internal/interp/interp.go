// Package interp executes ir modules. It is the dynamic substrate of
// Perf-Taint: when a taint engine is attached, every instruction propagates
// shadow labels from operands to results (data flow), conditional branches
// with tainted conditions open control-flow taint scopes bounded by the
// branch's immediate post-dominator, loop exit branches act as taint sinks,
// and loop back edges are counted. A tracer hook observes function enter and
// exit events and abstract work, which the measurement substrate uses to
// model instrumentation intrusion.
//
// Three engines implement these semantics. The default fast engine executes
// a predecoded Program: dense per-function instruction arrays with resolved
// branch targets and per-edge loop effects, pooled call frames, and interned
// call paths whose taint records resolve to cached pointers (see
// predecode.go and fast.go). The compiled engine (Machine.Mode ==
// ModeCompiled) lowers the same Program once into chains of specialized Go
// closures — superinstructions for common 2-3 instruction sequences,
// batched fuel accounting, and provably-clean block variants that skip all
// label work (see compile.go) — and is the production tier for sweep
// execution. The original tree-walking interpreter is kept behind
// Machine.Mode == ModeReference as the semantic oracle; the differential and
// fuzz harnesses prove all three produce identical observables.
package interp

import (
	"errors"
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/taint"
)

// Value is the machine word; the IR is integer-only, which suffices for
// performance modeling where only loop bounds influence the metrics.
type Value = int64

// ErrFuel is returned when execution exceeds the instruction budget.
var ErrFuel = errors.New("interp: fuel exhausted")

// Tracer observes execution events. Implementations must be cheap; the
// measurement substrate uses them to derive call counts and work volumes.
type Tracer interface {
	Enter(fn, callPath string)
	Exit(fn, callPath string)
	Work(fn string, units int64)
}

// ExternCall carries the state visible to an extern (library) function.
type ExternCall struct {
	M         *Machine
	Name      string
	Args      []Value
	ArgLabels []taint.Label
	CallPath  string
	// RetLabel is the taint label attached to the returned value; externs
	// acting as taint sources set it.
	RetLabel taint.Label

	// recCache, when set by the fast engine, points at the interned call
	// path's library-record slot so RecordLibCall is O(1) after the first
	// call per calling context.
	recCache **taint.LibCallRecord
}

// RecordLibCall records one execution of this library call with the given
// dependency labels. Under the fast engine the record resolution is cached
// on the interned call path; under the reference engine it falls back to
// the string-keyed map, producing identical records either way.
func (c *ExternCall) RecordLibCall(eng *taint.Engine, labels taint.Label) {
	var r *taint.LibCallRecord
	if c.recCache != nil {
		r = *c.recCache
	}
	if r == nil {
		r = eng.LibCallRec(taint.CallerFromPath(c.CallPath, c.Name), c.Name, c.CallPath)
		if c.recCache != nil {
			*c.recCache = r
		}
	}
	r.Labels |= labels
	r.Count++
}

// Extern implements a library function outside the IR module (e.g. the MPI
// routines provided through the library database).
type Extern func(c *ExternCall) (Value, error)

type funcInfo struct {
	fn    *ir.Function
	graph *cfg.Graph
	loops *cfg.Forest
	ipdom []int
	// exitsAt[block] lists loops for which the block terminator is an exit
	// branch (the taint sinks).
	exitsAt map[int][]*cfg.Loop
	// latchOf[from<<32|to] is the loop whose back edge is from->to.
	latchOf map[uint64]*cfg.Loop
}

// Mode selects the execution engine of a Machine.
type Mode uint8

const (
	// ModeFast (the default) runs the predecoded dense-dispatch engine:
	// per-function instruction arrays with pre-resolved branch targets and
	// loop effects, pooled frames, and interned call paths with O(1) taint
	// records. The differential test harness proves it produces identical
	// observables to the reference engine.
	ModeFast Mode = iota
	// ModeReference runs the original tree-walking interpreter, kept as
	// the semantic oracle for differential testing.
	ModeReference
	// ModeCompiled runs the compiled-closure engine: the predecoded program
	// is lowered once (Compile) into per-block chains of specialized Go
	// closures with fused superinstructions, segment-batched fuel, and
	// taint-clean block variants. Observables are bit-identical to the
	// other engines; fuel exhaustion de-optimizes into the fast loop so
	// even partial instruction counts match exactly.
	ModeCompiled
)

// String names the engine the way flags, logs, and /v1/stats spell it.
func (m Mode) String() string {
	switch m {
	case ModeFast:
		return "fast"
	case ModeReference:
		return "reference"
	case ModeCompiled:
		return "compiled"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode resolves an engine name — a -engine flag value — to a Mode.
// The empty string selects the default fast engine.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "fast":
		return ModeFast, nil
	case "reference":
		return ModeReference, nil
	case "compiled":
		return ModeCompiled, nil
	}
	return ModeFast, fmt.Errorf("interp: unknown engine %q (want fast, reference, or compiled)", s)
}

// Machine executes functions of one module with optional taint and tracing.
type Machine struct {
	Mod     *ir.Module
	Externs map[string]Extern
	Taint   *taint.Engine
	Tracer  Tracer
	// Fuel bounds the number of executed instructions (0 = default 500M).
	Fuel int64
	// Mode selects the fast engine (default) or the reference interpreter.
	Mode Mode
	// Prog, when set, is the shared predecoded program for Mod (see
	// Predecode); batch runs cache one Program across all machines. When
	// nil the fast engine predecodes lazily and caches per machine.
	Prog *Program
	// Compiled, when set, is the shared compiled-closure artifact for Prog
	// (see Compile); batch runs and the daemon cache one per spec digest.
	// When nil and Mode is ModeCompiled, the machine compiles lazily and
	// caches per machine.
	Compiled *Compiled

	heap []Value
	// shadow carries the heap labels for the prefix [0, len(shadow)); cells
	// beyond it are untainted. It grows lazily to the highest address that
	// has ever held a non-empty label (see growShadow).
	shadow []taint.Label
	// heapClean / shadowClean are the starts of the arenas' clean suffixes:
	// cells at or beyond them (up to capacity) are known zero, so regions
	// re-extended into them skip the explicit clear. A freshly made arena
	// is clean everywhere; reuse across runs dirties the previous length.
	heapClean   int
	shadowClean int
	globals     map[string]Value
	infoCache   map[string]*funcInfo
	active      map[string]int // recursion detection
	fuel        int64

	// Fast-engine per-run state (see fast.go). labeling records whether the
	// current run maintains register label banks at all (taint engine
	// attached or argument labels supplied).
	progOwned     *Program
	compiledOwned *Compiled
	globalBase    []Value
	externSlots   []Extern
	activeN       []int32
	frames        []*fastFrame
	paths         []*pathNode
	branchRecs    [][]*taint.BranchRecord
	labeling      bool
	// siteCache memoizes, per module-unique call site, the last
	// (parent path, child path) resolution packed as parent<<32|child;
	// child indices are never 0 (the root is index 0), so 0 means empty.
	siteCache []int64
	// kGen is the compiled engine's run generation: bumped once per
	// runCompiled, it invalidates the run-scoped fields cached in every
	// pooled kctx (see execBlocks). Starts at 0 so a fresh frame's kctx
	// (gen 0) never matches a live generation (always >= 1).
	kGen uint64
}

// NewMachine prepares a machine for module m. Externs and Taint may be set
// afterwards, before Run.
func NewMachine(m *ir.Module) *Machine {
	return &Machine{
		Mod:       m,
		Externs:   make(map[string]Extern),
		infoCache: make(map[string]*funcInfo),
	}
}

// Heap returns the current heap image (externs use it for message payloads).
func (m *Machine) Heap() []Value { return m.heap }

// LoadMem reads heap cell addr with its label. Addresses beyond the lazily
// sized shadow prefix are untainted by construction.
func (m *Machine) LoadMem(addr Value) (Value, taint.Label, error) {
	if addr < 0 || addr >= Value(len(m.heap)) {
		return 0, taint.None, fmt.Errorf("interp: load out of bounds at %d (heap %d)", addr, len(m.heap))
	}
	l := taint.None
	if addr < Value(len(m.shadow)) {
		l = m.shadow[addr]
	}
	return m.heap[addr], l, nil
}

// StoreMem writes heap cell addr with an explicit label (taint source path
// for externs like MPI_Comm_size).
func (m *Machine) StoreMem(addr, v Value, l taint.Label) error {
	if addr < 0 || addr >= Value(len(m.heap)) {
		return fmt.Errorf("interp: store out of bounds at %d (heap %d)", addr, len(m.heap))
	}
	m.heap[addr] = v
	if addr < Value(len(m.shadow)) {
		m.shadow[addr] = l
	} else if l != taint.None {
		m.growShadow(addr, l)
	}
	return nil
}

// growShadow extends the shadow heap to cover addr and records l there.
// The shadow tracks only the heap prefix that has ever held a non-empty
// label: untainted runs never materialize it, and tainted runs size it to
// the highest tainted address instead of mirroring the full heap — the
// mask widening to uint64 made a heap-sized mirror measurably expensive
// (allocator and GC traffic), and most heap cells never carry taint.
func (m *Machine) growShadow(addr Value, l taint.Label) {
	need := int(addr) + 1
	if need <= cap(m.shadow) {
		// Re-extending into capacity retained across runs: clear the stale
		// region between the old and new length (the clean suffix is zero
		// by construction).
		old := len(m.shadow)
		m.shadow = m.shadow[:need]
		if clean := m.shadowClean; clean > old {
			if clean > need {
				clean = need
			}
			clear(m.shadow[old:clean])
		}
	} else {
		newCap := 2 * cap(m.shadow)
		if p := m.program(); p != nil {
			if hint := int(p.shadowHint.Load()); hint > newCap {
				newCap = hint
			}
		}
		if newCap < need {
			newCap = need
		}
		if newCap < 64 {
			newCap = 64
		}
		ns := make([]taint.Label, need, newCap)
		copy(ns, m.shadow)
		m.shadow = ns
	}
	if need > m.shadowClean {
		m.shadowClean = need
	}
	m.shadow[addr] = l
}

// GlobalAddr returns the base address of global name.
func (m *Machine) GlobalAddr(name string) (Value, error) {
	a, ok := m.globals[name]
	if !ok {
		return 0, fmt.Errorf("interp: unknown global %q", name)
	}
	return a, nil
}

func (m *Machine) alloc(size Value) (Value, error) {
	if size < 0 {
		return 0, fmt.Errorf("interp: negative allocation %d", size)
	}
	const maxHeap = 1 << 28
	base := Value(len(m.heap))
	need := int64(len(m.heap)) + size
	if need > maxHeap {
		return 0, fmt.Errorf("interp: heap limit exceeded (%d cells)", need)
	}
	// Grow with explicit doubling: applications allocate incrementally, and
	// the default append growth factor for large slices copies the heap far
	// more often. Regions re-extended into retained capacity (machine or
	// heap reuse across runs) are zeroed explicitly. The shadow heap is not
	// grown here — see growShadow.
	if int64(cap(m.heap)) < need {
		newCap := 2 * int64(cap(m.heap))
		if newCap < need {
			newCap = need
		}
		if newCap < 1024 {
			newCap = 1024
		}
		heap := make([]Value, len(m.heap), newCap)
		copy(heap, m.heap)
		m.heap = heap[:need]
		m.heapClean = int(need)
		return base, nil
	}
	m.heap = m.heap[:need]
	if clean := int64(m.heapClean); clean > base {
		if clean > need {
			clean = need
		}
		clear(m.heap[base:clean])
	}
	if int(need) > m.heapClean {
		m.heapClean = int(need)
	}
	return base, nil
}

// program returns the predecoded program backing this machine, if any.
func (m *Machine) program() *Program {
	if m.Prog != nil {
		return m.Prog
	}
	return m.progOwned
}

func (m *Machine) reset() error {
	m.heapClean = len(m.heap)
	m.shadowClean = len(m.shadow)
	m.heap = m.heap[:0]
	m.shadow = m.shadow[:0]
	// Size the heap arena from the program's high-water hint so the run
	// allocates once instead of copying through doubling growth.
	if p := m.program(); p != nil {
		if hint := p.heapHint.Load(); int64(cap(m.heap)) < hint {
			m.heap = make([]Value, 0, hint)
			m.heapClean = 0
		}
	}
	m.globals = make(map[string]Value)
	m.active = make(map[string]int)
	m.fuel = m.Fuel
	if m.fuel == 0 {
		m.fuel = 500_000_000
	}
	for _, g := range m.Mod.Globals {
		base, err := m.alloc(g.Size)
		if err != nil {
			return err
		}
		m.globals[g.Name] = base
	}
	return nil
}

func (m *Machine) info(f *ir.Function) *funcInfo {
	if fi, ok := m.infoCache[f.Name]; ok {
		return fi
	}
	g := cfg.Build(f)
	fi := &funcInfo{
		fn:      f,
		graph:   g,
		loops:   cfg.FindLoops(g),
		ipdom:   cfg.PostDominators(g),
		exitsAt: make(map[int][]*cfg.Loop),
		latchOf: make(map[uint64]*cfg.Loop),
	}
	for _, l := range fi.loops.Loops {
		for _, e := range l.ExitBranches {
			fi.exitsAt[e.Block] = append(fi.exitsAt[e.Block], l)
		}
		for _, latch := range l.Latches {
			fi.latchOf[uint64(latch)<<32|uint64(uint32(l.Header))] = l
		}
	}
	m.infoCache[f.Name] = fi
	return fi
}

// Result of a completed run.
type Result struct {
	Value Value
	Label taint.Label
	// Instructions executed (fuel consumed).
	Instructions int64
}

// Run executes entry with the given arguments; argLabels taints the formal
// parameters (the paper's register_variable sources) and may be nil.
//
// On an execution error the returned Result is non-nil with Instructions
// set to the fuel consumed up to the abort, so callers can account for
// truncated runs (most usefully with ErrFuel); Value and Label are zero.
func (m *Machine) Run(entry string, args []Value, argLabels []taint.Label) (*Result, error) {
	if m.Mode == ModeFast {
		return m.runFast(entry, args, argLabels)
	}
	if m.Mode == ModeCompiled {
		return m.runCompiled(entry, args, argLabels)
	}
	fn, ok := m.Mod.Funcs[entry]
	if !ok {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	if len(args) != fn.NumParams {
		return nil, fmt.Errorf("interp: %q wants %d args, got %d", entry, fn.NumParams, len(args))
	}
	if err := m.reset(); err != nil {
		return nil, err
	}
	startFuel := m.fuel
	v, l, err := m.call(fn, args, argLabels, taint.None, entry)
	if p := m.program(); p != nil {
		p.noteArenas(len(m.heap), len(m.shadow))
	}
	if err != nil {
		return &Result{Instructions: startFuel - m.fuel}, err
	}
	return &Result{Value: v, Label: l, Instructions: startFuel - m.fuel}, nil
}

// ctlScope is one open control-dependence region. Scopes opened by ordinary
// branches (algorithm selection) taint every write until the branch's
// immediate post-dominator. Scopes opened by loop-exit branches taint
// memory stores and loop-carried registers — registers that existed before
// the loop began — matching the paper's regElemSize example, where only
// values accumulated across iterations depend on the iteration count, while
// per-iteration temporaries (recomputed loop bounds, call results) do not.
type ctlScope struct {
	join     int
	label    taint.Label
	loopExit bool
	openSeq  int
}

func (m *Machine) call(fn *ir.Function, args []Value, argLabels []taint.Label, ctlBase taint.Label, path string) (Value, taint.Label, error) {
	if m.active[fn.Name] > 0 && m.Taint != nil {
		m.Taint.WarnRecursion(fn.Name)
	}
	m.active[fn.Name]++
	defer func() { m.active[fn.Name]-- }()

	if m.Tracer != nil {
		m.Tracer.Enter(fn.Name, path)
		defer m.Tracer.Exit(fn.Name, path)
	}

	fi := m.info(fn)
	regs := make([]Value, fn.NumRegs)
	labels := make([]taint.Label, fn.NumRegs)
	copy(regs, args)
	if argLabels != nil {
		copy(labels, argLabels)
	}

	tainting := m.Taint != nil
	cflow := tainting && m.Taint.ControlFlow

	// born[r] is the write sequence at which register r was first defined
	// (-1 = not yet); parameters exist from sequence 0.
	var born []int
	writeSeq := 1
	if cflow {
		born = make([]int, fn.NumRegs)
		for i := range born {
			born[i] = -1
		}
		for i := 0; i < fn.NumParams; i++ {
			born[i] = 0
		}
	}

	var ctl []ctlScope

	// regCtl computes the control label applicable to a register write:
	// every non-loop scope, plus loop scopes for which the destination is
	// loop-carried (born before the scope opened).
	regCtl := func(dst ir.Reg) taint.Label {
		l := taint.None
		for _, s := range ctl {
			if !s.loopExit || (born[dst] >= 0 && born[dst] < s.openSeq) {
				l |= s.label
			}
		}
		return l
	}
	// memCtl computes the control label applicable to a store: all scopes
	// plus the control context inherited from the caller.
	memCtl := func() taint.Label {
		l := ctlBase
		for _, s := range ctl {
			l |= s.label
		}
		return l
	}

	writeLabel := func(dst ir.Reg, l taint.Label) {
		if !tainting {
			return
		}
		if cflow {
			l |= regCtl(dst)
			if born[dst] < 0 {
				born[dst] = writeSeq
			}
			writeSeq++
		}
		labels[dst] = l
	}

	blockIdx := 0
	prevBlock := -1
	for {
		// Close control scopes whose join block we reached.
		if cflow && len(ctl) > 0 {
			n := 0
			for _, s := range ctl {
				if s.join != blockIdx {
					ctl[n] = s
					n++
				}
			}
			ctl = ctl[:n]
		}
		// Loop events: back edge and entry detection.
		if tainting && prevBlock >= 0 {
			if l, ok := fi.latchOf[uint64(prevBlock)<<32|uint64(uint32(blockIdx))]; ok {
				m.Taint.RecordIteration(fn.Name, l.ID, l.Header, path)
			} else if l := fi.loops.ByHeader[blockIdx]; l != nil && !l.Contains(prevBlock) {
				m.Taint.RecordEntry(fn.Name, l.ID, l.Header, path)
			}
		}

		blk := fn.Blocks[blockIdx]
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			m.fuel--
			if m.fuel < 0 {
				return 0, taint.None, ErrFuel
			}
			switch in.Op {
			case ir.OpConst:
				regs[in.Dst] = in.Imm
				writeLabel(in.Dst, taint.None)
			case ir.OpMov:
				regs[in.Dst] = regs[in.A]
				writeLabel(in.Dst, labels[in.A])
			case ir.OpNeg:
				regs[in.Dst] = -regs[in.A]
				writeLabel(in.Dst, labels[in.A])
			case ir.OpNot:
				if regs[in.A] == 0 {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
				writeLabel(in.Dst, labels[in.A])
			case ir.OpLoad:
				v, l, err := m.LoadMem(regs[in.A] + in.Imm)
				if err != nil {
					return 0, taint.None, fmt.Errorf("%s: %w", fn.Name, err)
				}
				regs[in.Dst] = v
				if tainting {
					// Address taint flows to the loaded value as well.
					writeLabel(in.Dst, l|labels[in.A])
				}
			case ir.OpStore:
				addr := regs[in.A] + in.Imm
				l := taint.None
				if tainting {
					l = labels[in.B] | labels[in.A]
					if cflow {
						l |= memCtl()
					}
				}
				if err := m.StoreMem(addr, regs[in.B], l); err != nil {
					return 0, taint.None, fmt.Errorf("%s: %w", fn.Name, err)
				}
			case ir.OpAlloc:
				base, err := m.alloc(regs[in.A])
				if err != nil {
					return 0, taint.None, fmt.Errorf("%s: %w", fn.Name, err)
				}
				regs[in.Dst] = base
				writeLabel(in.Dst, taint.None)
			case ir.OpGlobal:
				a, err := m.GlobalAddr(in.Sym)
				if err != nil {
					return 0, taint.None, fmt.Errorf("%s: %w", fn.Name, err)
				}
				regs[in.Dst] = a
				writeLabel(in.Dst, taint.None)
			case ir.OpCall:
				childCtl := taint.None
				if cflow {
					childCtl = memCtl()
				}
				v, l, err := m.dispatch(in, regs, labels, childCtl, path)
				if err != nil {
					return 0, taint.None, err
				}
				regs[in.Dst] = v
				writeLabel(in.Dst, l)
			case ir.OpWork:
				if m.Tracer != nil {
					m.Tracer.Work(fn.Name, regs[in.A])
				}
			case ir.OpRet:
				if in.A == ir.NoReg {
					return 0, taint.None, nil
				}
				// The returned register's label already reflects every
				// control-dependent write that produced it.
				return regs[in.A], labels[in.A], nil
			case ir.OpJmp:
				prevBlock = blockIdx
				blockIdx = in.Blk0
			case ir.OpBr:
				cond := regs[in.A] != 0
				condLabel := labels[in.A]
				if tainting {
					exits := fi.exitsAt[blockIdx]
					for _, l := range exits {
						m.Taint.RecordLoopExit(fn.Name, l.ID, l.Header, path, condLabel)
					}
					m.Taint.RecordBranch(fn.Name, blockIdx, condLabel, cond, len(exits) > 0)
					if cflow && condLabel != taint.None {
						join := fi.ipdom[blockIdx]
						// Joins at the virtual exit (== len blocks) never
						// match a block index, keeping the scope open until
						// return, which is the conservative behaviour.
						ctl = append(ctl, ctlScope{
							join: join, label: condLabel,
							loopExit: len(exits) > 0, openSeq: writeSeq,
						})
					}
				}
				prevBlock = blockIdx
				if cond {
					blockIdx = in.Blk0
				} else {
					blockIdx = in.Blk1
				}
			case ir.OpSwitch:
				v := regs[in.A]
				condLabel := labels[in.A]
				target := in.Blk0
				for _, cse := range in.Cases {
					if cse.Value == v {
						target = cse.Block
						break
					}
				}
				if tainting {
					exits := fi.exitsAt[blockIdx]
					for _, l := range exits {
						m.Taint.RecordLoopExit(fn.Name, l.ID, l.Header, path, condLabel)
					}
					if cflow && condLabel != taint.None {
						ctl = append(ctl, ctlScope{
							join: fi.ipdom[blockIdx], label: condLabel,
							loopExit: len(exits) > 0, openSeq: writeSeq,
						})
					}
				}
				prevBlock = blockIdx
				blockIdx = target
			default:
				a, b := regs[in.A], Value(0)
				la, lb := labels[in.A], taint.None
				if in.B != ir.NoReg {
					b = regs[in.B]
					lb = labels[in.B]
				}
				regs[in.Dst] = binop(in.Op, a, b)
				if tainting {
					writeLabel(in.Dst, la|lb)
				} else {
					writeLabel(in.Dst, taint.None)
				}
			}
			if in.Op.IsTerm() {
				if in.Op == ir.OpRet {
					panic("unreachable")
				}
				break
			}
		}
	}
}

func (m *Machine) dispatch(in *ir.Instr, regs []Value, labels []taint.Label, ctlBase taint.Label, path string) (Value, taint.Label, error) {
	args := make([]Value, len(in.Args))
	argLabels := make([]taint.Label, len(in.Args))
	for i, a := range in.Args {
		args[i] = regs[a]
		argLabels[i] = labels[a]
	}
	childPath := path + "/" + in.Sym
	if callee, ok := m.Mod.Funcs[in.Sym]; ok {
		if len(args) != callee.NumParams {
			return 0, taint.None, fmt.Errorf("interp: call %s with %d args, wants %d", in.Sym, len(args), callee.NumParams)
		}
		return m.call(callee, args, argLabels, ctlBase, childPath)
	}
	ext, ok := m.Externs[in.Sym]
	if !ok {
		return 0, taint.None, fmt.Errorf("interp: unresolved call target %q", in.Sym)
	}
	if m.Tracer != nil {
		m.Tracer.Enter(in.Sym, childPath)
		defer m.Tracer.Exit(in.Sym, childPath)
	}
	c := &ExternCall{M: m, Name: in.Sym, Args: args, ArgLabels: argLabels, CallPath: childPath}
	v, err := ext(c)
	if err != nil {
		return 0, taint.None, fmt.Errorf("extern %s: %w", in.Sym, err)
	}
	return v, c.RetLabel, nil
}

func binop(op ir.Opcode, a, b Value) Value {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		if b < 0 || b > 63 {
			return 0
		}
		return a << uint(b)
	case ir.OpShr:
		if b < 0 || b > 63 {
			return 0
		}
		return a >> uint(b)
	case ir.OpCmpEQ:
		return boolVal(a == b)
	case ir.OpCmpNE:
		return boolVal(a != b)
	case ir.OpCmpLT:
		return boolVal(a < b)
	case ir.OpCmpLE:
		return boolVal(a <= b)
	case ir.OpCmpGT:
		return boolVal(a > b)
	case ir.OpCmpGE:
		return boolVal(a >= b)
	case ir.OpMin:
		if a < b {
			return a
		}
		return b
	case ir.OpMax:
		if a > b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("interp: unhandled opcode %v", op))
	}
}

func boolVal(b bool) Value {
	if b {
		return 1
	}
	return 0
}
