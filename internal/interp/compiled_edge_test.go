package interp

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/taint"
)

// TestModeStringParse pins the engine-selection surface: Mode renders to
// the flag vocabulary, ParseMode accepts it (empty string = fast), and
// anything else is a typed error naming the choices.
func TestModeStringParse(t *testing.T) {
	for _, tc := range []struct {
		mode Mode
		s    string
	}{
		{ModeFast, "fast"},
		{ModeReference, "reference"},
		{ModeCompiled, "compiled"},
	} {
		if got := tc.mode.String(); got != tc.s {
			t.Errorf("Mode(%d).String() = %q, want %q", tc.mode, got, tc.s)
		}
		m, err := ParseMode(tc.s)
		if err != nil || m != tc.mode {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", tc.s, m, err, tc.mode)
		}
	}
	if m, err := ParseMode(""); err != nil || m != ModeFast {
		t.Errorf("ParseMode(\"\") = %v, %v; want ModeFast", m, err)
	}
	if _, err := ParseMode("turbo"); err == nil {
		t.Error("ParseMode(\"turbo\") succeeded, want error")
	}
	if got := Mode(99).String(); got == "" {
		t.Error("unknown Mode renders empty")
	}
}

// engineSnap captures every cross-engine observable of one run.
type engineSnap struct {
	val   Value
	label taint.Label
	ins   int64
	err   string
	recs  string
}

// runEngine executes mod/main under one mode; tainted runs give every
// argument its own base label and snapshot the loop records.
func runEngine(t *testing.T, mod *ir.Module, mode Mode, args []Value, tainted bool, fuel int64) engineSnap {
	t.Helper()
	mach := NewMachine(mod)
	mach.Mode = mode
	mach.Fuel = fuel
	var eng *taint.Engine
	var labels []taint.Label
	if tainted {
		eng = taint.NewEngine()
		mach.Taint = eng
		for i := range args {
			labels = append(labels, eng.Table.Base(fmt.Sprintf("p%d", i)))
		}
	}
	res, err := mach.Run("main", args, labels)
	var s engineSnap
	if err != nil {
		s.err = err.Error()
	}
	if res != nil {
		s.val, s.label, s.ins = res.Value, res.Label, res.Instructions
	}
	if eng != nil {
		var sb strings.Builder
		for _, r := range eng.SortedLoops() {
			fmt.Fprintf(&sb, "loop %s#%d@%d %s l=%d it=%d en=%d;",
				r.Key.Func, r.Key.LoopID, r.Header, r.Key.CallPath, r.Labels, r.Iterations, r.Entries)
		}
		warns := make([]string, 0, len(eng.RecursionWarnings))
		for fn := range eng.RecursionWarnings {
			warns = append(warns, fn)
		}
		sort.Strings(warns)
		sb.WriteString(strings.Join(warns, ","))
		s.recs = sb.String()
	}
	return s
}

// diffEngines runs main under all three engines, tainted and untainted,
// and requires bit-identical observables.
func diffEngines(t *testing.T, mod *ir.Module, args []Value) {
	t.Helper()
	for _, tainted := range []bool{false, true} {
		ref := runEngine(t, mod, ModeReference, args, tainted, 0)
		for _, mode := range []Mode{ModeFast, ModeCompiled} {
			if got := runEngine(t, mod, mode, args, tainted, 0); got != ref {
				t.Errorf("%s tainted=%v %v: %+v, reference %+v", mod.Name, tainted, mode, got, ref)
			}
		}
	}
}

// TestCompiledGlobalsAndWork exercises the compiled lowerings the golden
// corpus misses: globals (emitGlobal), the Const+Work fusion, While loops
// (plain unconditional-jump terminators), and the full binary-op table
// through fused load/op/store sequences.
func TestCompiledGlobalsAndWork(t *testing.T) {
	mod := ir.NewModule("gw")
	mod.AddGlobal("g", 4)
	b := ir.NewFunc(mod, "main", 1)
	ga := b.GlobalAddr("g")
	b.Store(ga, 0, b.Param(0))
	b.Work(b.Const(5))
	// Every comparison and divider through the arith2 table, written
	// through stores so the op+store and load+op+store fusions fire.
	b.Store(ga, 1, b.Add(b.Div(b.Param(0), b.Const(2)), b.Mod(b.Param(0), b.Const(3))))
	b.Store(ga, 2, b.Add(b.CmpLE(b.Param(0), b.Const(4)), b.CmpNE(b.Param(0), b.Const(5))))
	b.Store(ga, 3, b.Add(b.CmpGE(b.Param(0), b.Const(6)), b.CmpEQ(b.Param(0), b.Const(7))))
	b.While(func() ir.Reg {
		return b.CmpGT(b.Load(ga, 0), b.Const(0))
	}, func() {
		b.Store(ga, 0, b.Sub(b.Load(ga, 0), b.Const(1)))
		b.Work(b.Const(3))
	})
	b.Ret(b.Add(b.Load(ga, 1), b.Add(b.Load(ga, 2), b.Load(ga, 3))))
	b.Finish()

	for _, arg := range []Value{0, 5, 7, 12} {
		diffEngines(t, mod, []Value{arg})
	}
}

// TestCompiledUnknownGlobal pins the error parity of the unknown-global
// path: all three engines must fail with the same message and the same
// partial instruction count.
func TestCompiledUnknownGlobal(t *testing.T) {
	mod := ir.NewModule("badglob")
	b := ir.NewFunc(mod, "main", 0)
	b.Ret(b.GlobalAddr("nope"))
	b.Finish()

	ref := runEngine(t, mod, ModeReference, nil, false, 0)
	if ref.err == "" {
		t.Fatal("reference run with unknown global succeeded")
	}
	for _, mode := range []Mode{ModeFast, ModeCompiled} {
		if got := runEngine(t, mod, mode, nil, false, 0); got != ref {
			t.Errorf("%v: %+v, reference %+v", mode, got, ref)
		}
	}
}

// buildCleanModule returns a module whose tainted run drops into the
// compiled engine's clean variants: main receives the tainted parameter
// but calls a statically-inert helper with untainted constants. The
// helper branches, switches, loops, stores, and calls a second inert leaf,
// covering the clean-variant terminators and the clean module-call step.
func buildCleanModule() *ir.Module {
	mod := ir.NewModule("cleanvar")

	leaf := ir.NewFunc(mod, "leaf", 1)
	leaf.Ret(leaf.Mul(leaf.Param(0), leaf.Const(3)))
	leaf.Finish()

	h := ir.NewFunc(mod, "helper", 2)
	cell := h.Alloc(h.Const(1))
	acc := h.Const(0)
	h.If(h.CmpLT(h.Param(0), h.Param(1)), func() {
		h.MovTo(acc, h.Call("leaf", h.Param(0)))
	}, func() {
		h.MovTo(acc, h.Sub(h.Param(0), h.Param(1)))
	})
	one := h.NewBlock("one")
	two := h.NewBlock("two")
	def := h.NewBlock("def")
	join := h.NewBlock("join")
	h.Switch(h.Mod(h.Param(0), h.Const(3)), def, []ir.SwitchCase{
		{Value: 0, Block: one.Index}, {Value: 1, Block: two.Index},
	})
	h.SetBlock(one)
	h.MovTo(acc, h.Add(h.Param(1), acc))
	h.Jmp(join)
	h.SetBlock(two)
	h.MovTo(acc, h.Neg(acc))
	h.Jmp(join)
	h.SetBlock(def)
	h.MovTo(acc, h.Not(acc))
	h.Jmp(join)
	h.SetBlock(join)
	h.For(h.Const(0), h.Param(1), h.Const(1), func(i ir.Reg) {
		h.MovTo(acc, h.Add(acc, i))
	})
	h.Store(cell, 0, acc)
	h.Ret(acc)
	h.Finish()

	b := ir.NewFunc(mod, "main", 1)
	// The tainted parameter stays live in main; the helper arguments are
	// untainted constants, so the compiled engine enters helper's clean
	// variant while main runs the full taint variant.
	r1 := b.Call("helper", b.Const(2), b.Const(4))
	r2 := b.Call("helper", b.Const(7), b.Const(3))
	r3 := b.Call("helper", b.Const(4), b.Const(5))
	b.Ret(b.Add(b.Mul(b.Param(0), r1), b.Add(r2, r3)))
	b.Finish()
	return mod
}

// TestCompiledCleanVariants runs the clean-variant module under all three
// engines; the tainted run must agree on records produced inside the
// inert helper (census parity) while executing none of the label work.
func TestCompiledCleanVariants(t *testing.T) {
	mod := buildCleanModule()
	for _, arg := range []Value{0, 3, 9} {
		diffEngines(t, mod, []Value{arg})
	}
}

// TestCompiledCleanFuelBoundaries sweeps every fuel value through the
// clean-variant module: de-optimization out of a clean compiled block
// must reproduce the oracle's exact partial counts and records.
func TestCompiledCleanFuelBoundaries(t *testing.T) {
	mod := buildCleanModule()
	total := runEngine(t, mod, ModeFast, []Value{3}, true, 1<<40).ins
	if total < 20 {
		t.Fatalf("implausibly short program: %d instructions", total)
	}
	for fuel := int64(1); fuel <= total+1; fuel++ {
		for _, tainted := range []bool{false, true} {
			ref := runEngine(t, mod, ModeReference, []Value{3}, tainted, fuel)
			for _, mode := range []Mode{ModeFast, ModeCompiled} {
				if got := runEngine(t, mod, mode, []Value{3}, tainted, fuel); got != ref {
					t.Errorf("fuel %d tainted=%v %v: %+v, reference %+v", fuel, tainted, mode, got, ref)
				}
			}
		}
	}
}

// TestCompiledArtifactAccessors covers the artifact plumbing the service
// relies on: Compile is pure, the artifact exposes its source program,
// and a machine accepts a shared artifact.
func TestCompiledArtifactAccessors(t *testing.T) {
	mod := ir.NewModule("spin")
	buildSpin(mod)
	prog := Predecode(mod)
	cp := Compile(prog)
	if cp.Program() != prog {
		t.Error("Compiled.Program() does not return the source program")
	}
	if n := prog.NumFuncs(); n != 1 {
		t.Errorf("NumFuncs = %d, want 1", n)
	}
	mach := NewMachine(mod)
	mach.Mode = ModeCompiled
	mach.Prog = prog
	mach.Compiled = cp
	res, err := mach.Run("main", []Value{10}, nil)
	if err != nil {
		t.Fatalf("run with shared artifact: %v", err)
	}
	if res.Value != 45 {
		t.Errorf("shared-artifact run value = %d, want 45", res.Value)
	}
	if got, want := mach.Heap(), 0; len(got) != want {
		t.Errorf("heap after heap-free run has %d cells, want %d", len(got), want)
	}
	if _, err := mach.GlobalAddr("nope"); err == nil {
		t.Error("GlobalAddr of undeclared global succeeded")
	}
}
