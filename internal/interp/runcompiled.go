package interp

import (
	"fmt"

	"repro/internal/taint"
)

// This file is the runtime half of the compiled engine: the Run entry
// point, the per-activation block-threading loop, and the exact-fuel
// de-optimization path back into the fast interpreter. Compile-time
// lowering lives in compile.go.

// runCompiled executes entry on the compiled-closure artifact.
func (m *Machine) runCompiled(entry string, args []Value, argLabels []taint.Label) (*Result, error) {
	if m.Taint == nil && argLabels != nil {
		// Labeling without an engine: only call-argument copies move labels,
		// which the fast engine already implements without dispatch overhead
		// worth compiling away. Keeping one implementation of that niche
		// avoids a fourth label discipline in the step closures.
		return m.runFast(entry, args, argLabels)
	}
	cp := m.Compiled
	if cp == nil {
		if m.compiledOwned == nil {
			prog := m.Prog
			if prog == nil {
				if m.progOwned == nil {
					m.progOwned = Predecode(m.Mod)
				}
				prog = m.progOwned
			}
			m.compiledOwned = Compile(prog)
		}
		cp = m.compiledOwned
	}
	prog := cp.prog
	fi := prog.Func(entry)
	if fi < 0 {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	df := prog.funcs[fi]
	if len(args) != int(df.numParams) {
		return nil, fmt.Errorf("interp: %q wants %d args, got %d", entry, df.numParams, len(args))
	}
	if err := m.reset(); err != nil {
		return nil, err
	}
	m.labeling = m.Taint != nil
	m.resetFast(prog)
	m.kGen++

	root := &pathNode{str: entry, fnIdx: fi}
	if m.Taint != nil {
		root.loopRecs = make([]*taint.LoopRecord, len(df.loops))
	}
	m.paths = append(m.paths, root)

	fr := m.frame(0, df)
	copy(fr.regs, args)
	if m.labeling {
		clear(fr.labels[:df.numParams])
	}
	if argLabels != nil {
		copy(fr.labels, argLabels)
	}

	ccf := cp.funcs[fi]
	vk := vkPlain
	blocks := ccf.plain
	if m.Taint != nil {
		vk = vkTaint
		blocks = ccf.taint
		if ccf.clean != nil {
			am := taint.None
			for _, l := range fr.labels[:df.numParams] {
				am |= l
			}
			if am == taint.None {
				vk = vkClean
				blocks = ccf.clean
			}
		}
	}

	startFuel := m.fuel
	v, l, err := m.execCompiled(cp, ccf, blocks, fr, 0, taint.None, 0, vk)
	prog.noteArenas(len(m.heap), len(m.shadow))
	if err != nil {
		// Mirror runFast: aborted activations did not advance their frames'
		// epochs, so scrub born wholesale before the machine is reused.
		for _, f := range m.frames {
			clear(f.born[:cap(f.born)])
			f.seqBase = 1
		}
		return &Result{Instructions: startFuel - m.fuel}, err
	}
	if !m.labeling {
		l = taint.None
	}
	return &Result{Value: v, Label: l, Instructions: startFuel - m.fuel}, nil
}

// execCompiled is one activation of the compiled engine: thread block to
// block, pre-charge each segment's fuel in one subtraction, and run its
// step closures. Any step error or fuel shortfall leaves the machine in
// exactly the state the fast engine would produce at the same instruction.
//
// The kctx is pooled inside the frame and most of its pointer fields are
// loop- or run-invariant, so they are refreshed behind identity guards
// (gen for run-scoped fields, df for activation-bank fields) rather than
// stored unconditionally: each skipped pointer store is a skipped GC write
// barrier on what is the hottest call path in the engine. Recursion
// accounting is skipped for plain activations — activeN only ever feeds
// WarnRecursion, which needs a taint engine to fire.
func (m *Machine) execCompiled(cp *Compiled, ccf *cfunc, blocks []cblock, fr *fastFrame, pathIdx int32, ctlBase taint.Label, depth int, vk vkind) (v Value, l taint.Label, err error) {
	df := ccf.df
	tainting := vk != vkPlain
	if tainting {
		if m.activeN[df.idx] > 0 {
			m.Taint.WarnRecursion(df.name)
		}
		m.activeN[df.idx]++
	}
	tr := m.Tracer
	if tr != nil {
		tr.Enter(df.name, m.paths[pathIdx].str)
	}

	k := &fr.k
	if k.gen != m.kGen {
		k.gen = m.kGen
		k.m = m
		k.cp = cp
		k.prog = cp.prog
		k.eng = m.Taint
		k.fr = fr
		k.depth = depth
		k.df = nil
		k.pathIdx = -1
	}
	if k.df != df {
		k.df = df
		k.regs = fr.regs
		k.labels = fr.labels
		k.cs.born = fr.born
	}
	if k.pathIdx != pathIdx {
		k.pathIdx = pathIdx
		k.path = m.paths[pathIdx]
	}

	cs := &k.cs
	cs.ctlBase = ctlBase
	cs.seqBase = fr.seqBase
	cs.writeSeq = fr.seqBase + 1
	cs.cflow = false
	if vk == vkTaint && k.eng.ControlFlow {
		cs.cflow = true
		born := cs.born
		for i := int32(0); i < df.numParams; i++ {
			born[i] = cs.seqBase
		}
	}

	k.fuel = m.fuel
	bi := int32(0)
loop:
	for {
		b := &blocks[bi]
		if k.fuel < b.cost {
			v, l, err = m.compiledFallback(k, b.pc, vk)
			break loop
		}
		k.fuel -= b.cost
		for _, st := range b.steps {
			if !st(k) {
				v, l, err = m.compiledAbort(k)
				break loop
			}
		}
		if len(b.more) > 0 {
			for si := range b.more {
				sg := &b.more[si]
				if k.fuel < sg.cost {
					v, l, err = m.compiledFallback(k, sg.pc, vk)
					break loop
				}
				k.fuel -= sg.cost
				for _, st := range sg.steps {
					if !st(k) {
						v, l, err = m.compiledAbort(k)
						break loop
					}
				}
			}
		}
		bi = b.term(k)
		if bi < 0 {
			m.fuel = k.fuel
			if len(cs.ctl) != 0 {
				cs.ctl = cs.ctl[:0]
			}
			fr.seqBase = cs.writeSeq
			v, l = k.ret, k.retl
			break loop
		}
	}

	if tr != nil {
		tr.Exit(df.name, m.paths[pathIdx].str)
	}
	if tainting {
		m.activeN[df.idx]--
	}
	return v, l, err
}

// compiledAbort finishes an activation whose step reported an error:
// restore the unconsumed remainder of the segment pre-charge and leave the
// pooled scope stack empty for the next activation at this depth.
func (m *Machine) compiledAbort(k *kctx) (Value, taint.Label, error) {
	m.fuel = k.fuel + k.refund
	cs := &k.cs
	if len(cs.ctl) != 0 {
		cs.ctl = cs.ctl[:0]
	}
	return 0, taint.None, k.err
}

// compiledFallback de-optimizes the current activation into the fast
// interpreter loop at the first instruction of a segment whose pre-charge
// would overdraw the fuel budget. Nothing from that segment has executed
// or been charged yet, so execLoopFrom burns down per-instruction and
// aborts (or completes) at exactly the oracle's instruction.
func (m *Machine) compiledFallback(k *kctx, pc int32, vk vkind) (Value, taint.Label, error) {
	m.fuel = k.fuel
	if vk == vkClean {
		// A clean activation proves every live label None but skips the label
		// bank entirely, so the pooled bank may hold stale values; the fast
		// loop reads labels, so reconstruct the proven state. The scope stack
		// stays empty and cs.cflow stays false: with every label None no
		// scope can open and no born bookkeeping can become observable.
		clear(k.labels)
	}
	v, l, err := m.execLoopFrom(k.prog, k.df, k.fr, k.pathIdx, k.depth, k.eng, pc, &k.cs)
	// execLoopFrom works on a by-value copy of the scope stack; restore the
	// pooled kctx invariant that cs.ctl is empty between activations.
	if len(k.cs.ctl) != 0 {
		k.cs.ctl = k.cs.ctl[:0]
	}
	return v, l, err
}
