package interp

import (
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/taint"
)

// buildSpin creates main(n): a counted loop of n iterations doing a little
// arithmetic, for deterministic instruction counts.
func buildSpin(m *ir.Module) {
	b := ir.NewFunc(m, "main", 1)
	acc := b.Const(0)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
		b.MovTo(acc, b.Add(acc, i))
	})
	b.Ret(acc)
	b.Finish()
}

// TestFuelPartialCounts verifies that a fuel-exhausted run reports the
// instructions executed up to the abort alongside ErrFuel, in both engine
// modes, so overhead experiments can account truncated runs.
func TestFuelPartialCounts(t *testing.T) {
	mod := ir.NewModule("spin")
	buildSpin(mod)

	for _, mode := range []Mode{ModeFast, ModeReference, ModeCompiled} {
		mach := NewMachine(mod)
		mach.Mode = mode
		res, err := mach.Run("main", []Value{1000}, nil)
		if err != nil {
			t.Fatalf("mode %d: full run failed: %v", mode, err)
		}
		total := res.Instructions
		if total < 1000 {
			t.Fatalf("mode %d: implausible instruction count %d", mode, total)
		}

		mach = NewMachine(mod)
		mach.Mode = mode
		mach.Fuel = total / 2
		res, err = mach.Run("main", []Value{1000}, nil)
		if !errors.Is(err, ErrFuel) {
			t.Fatalf("mode %d: want ErrFuel, got %v", mode, err)
		}
		if res == nil {
			t.Fatalf("mode %d: want partial result alongside ErrFuel, got nil", mode)
		}
		// The aborted instruction consumed the last fuel unit before the
		// abort check, so the partial count is budget+1 in both engines.
		if want := total/2 + 1; res.Instructions != want {
			t.Errorf("mode %d: partial instructions = %d, want %d", mode, res.Instructions, want)
		}
		if res.Value != 0 {
			t.Errorf("mode %d: partial result value = %d, want 0", mode, res.Value)
		}
	}
}

// buildSpinMem creates main(n): a counted loop that accumulates through a
// heap cell (a consecutive Load/Add/Store the compiled tier fuses into a
// triple superinstruction) and calls a helper each iteration (a call-bearing
// block, so the block's cost splits across segments). Fuel sweeps over this
// program cross every fused pre-charge and call-segment boundary.
func buildSpinMem(m *ir.Module) {
	h := ir.NewFunc(m, "bump", 1)
	h.Ret(h.Add(h.Param(0), h.Const(1)))
	h.Finish()

	b := ir.NewFunc(m, "main", 1)
	cell := b.Alloc(b.Const(1))
	b.Store(cell, 0, b.Const(0))
	acc := b.Const(0)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
		v := b.Load(cell, 0)
		b.Store(cell, 0, b.Add(v, i))
		b.MovTo(acc, b.Add(acc, b.Call("bump", i)))
	})
	b.Ret(b.Add(b.Load(cell, 0), acc))
	b.Finish()
}

// TestFuelBoundarySweep runs two spin programs at EVERY fuel value from 1
// through full completion, untainted and tainted, and requires the three
// engines to agree exactly on the (error, partial instruction count, value,
// label) observables at each budget. The compiled engine pre-charges fuel
// per fused segment and de-optimizes to the interpreter when a segment
// cannot be afforded, so this sweep pins its abort behavior at every
// superinstruction boundary against the reference oracle.
func TestFuelBoundarySweep(t *testing.T) {
	builders := []struct {
		name  string
		build func(*ir.Module)
	}{
		{"spin", buildSpin},
		{"spinmem", buildSpinMem},
	}
	type obs struct {
		ins    int64
		val    Value
		label  taint.Label
		isFuel bool
	}
	run := func(t *testing.T, mod *ir.Module, mode Mode, fuel int64, tainted bool) obs {
		t.Helper()
		mach := NewMachine(mod)
		mach.Mode = mode
		mach.Fuel = fuel
		var labels []taint.Label
		if tainted {
			eng := taint.NewEngine()
			mach.Taint = eng
			labels = []taint.Label{eng.Table.Base("n")}
		}
		res, err := mach.Run("main", []Value{9}, labels)
		if err != nil && !errors.Is(err, ErrFuel) {
			t.Fatalf("mode %v fuel %d: unexpected error: %v", mode, fuel, err)
		}
		if res == nil {
			t.Fatalf("mode %v fuel %d: nil result", mode, fuel)
		}
		return obs{res.Instructions, res.Value, res.Label, err != nil}
	}
	for _, bc := range builders {
		for _, tainted := range []bool{false, true} {
			name := bc.name + "/untainted"
			if tainted {
				name = bc.name + "/tainted"
			}
			t.Run(name, func(t *testing.T) {
				mod := ir.NewModule(bc.name)
				bc.build(mod)
				total := run(t, mod, ModeFast, 1<<40, tainted).ins
				if total < 20 {
					t.Fatalf("implausibly short program: %d instructions", total)
				}
				for fuel := int64(1); fuel <= total+1; fuel++ {
					ref := run(t, mod, ModeReference, fuel, tainted)
					// A budget of exactly total completes: the abort fires
					// only when a charge would drive fuel negative.
					wantFuel := fuel < total
					if ref.isFuel != wantFuel {
						t.Fatalf("reference fuel %d (total %d): ErrFuel = %v, want %v", fuel, total, ref.isFuel, wantFuel)
					}
					if wantFuel && ref.ins != fuel+1 {
						t.Fatalf("reference fuel %d: partial count %d, want %d", fuel, ref.ins, fuel+1)
					}
					for _, mode := range []Mode{ModeFast, ModeCompiled} {
						if got := run(t, mod, mode, fuel, tainted); got != ref {
							t.Fatalf("%v fuel %d: %+v, reference %+v", mode, fuel, got, ref)
						}
					}
				}
			})
		}
	}
}
