package interp

import (
	"errors"
	"testing"

	"repro/internal/ir"
)

// buildSpin creates main(n): a counted loop of n iterations doing a little
// arithmetic, for deterministic instruction counts.
func buildSpin(m *ir.Module) {
	b := ir.NewFunc(m, "main", 1)
	acc := b.Const(0)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
		b.MovTo(acc, b.Add(acc, i))
	})
	b.Ret(acc)
	b.Finish()
}

// TestFuelPartialCounts verifies that a fuel-exhausted run reports the
// instructions executed up to the abort alongside ErrFuel, in both engine
// modes, so overhead experiments can account truncated runs.
func TestFuelPartialCounts(t *testing.T) {
	mod := ir.NewModule("spin")
	buildSpin(mod)

	for _, mode := range []Mode{ModeFast, ModeReference} {
		mach := NewMachine(mod)
		mach.Mode = mode
		res, err := mach.Run("main", []Value{1000}, nil)
		if err != nil {
			t.Fatalf("mode %d: full run failed: %v", mode, err)
		}
		total := res.Instructions
		if total < 1000 {
			t.Fatalf("mode %d: implausible instruction count %d", mode, total)
		}

		mach = NewMachine(mod)
		mach.Mode = mode
		mach.Fuel = total / 2
		res, err = mach.Run("main", []Value{1000}, nil)
		if !errors.Is(err, ErrFuel) {
			t.Fatalf("mode %d: want ErrFuel, got %v", mode, err)
		}
		if res == nil {
			t.Fatalf("mode %d: want partial result alongside ErrFuel, got nil", mode)
		}
		// The aborted instruction consumed the last fuel unit before the
		// abort check, so the partial count is budget+1 in both engines.
		if want := total/2 + 1; res.Instructions != want {
			t.Errorf("mode %d: partial instructions = %d, want %d", mode, res.Instructions, want)
		}
		if res.Value != 0 {
			t.Errorf("mode %d: partial result value = %d, want 0", mode, res.Value)
		}
	}
}
