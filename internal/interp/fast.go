package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/taint"
)

// pathNode is one interned calling context. Nodes form a tree keyed by
// module-unique call-site IDs; each node renders its path string exactly
// once and caches the taint records resolved for this context, making the
// per-event bookkeeping of loop iterations, entries, exits, and library
// calls O(1) slice/pointer updates with zero allocation on the hot loop.
// Two sites with the same caller and callee produce distinct nodes whose
// lazily resolved records alias the same engine entry, preserving the
// reference engine's string-keyed aggregation.
type pathNode struct {
	str   string
	fnIdx int32
	// children maps call-site IDs to interned child contexts. Contexts fan
	// out over a handful of sites in practice, so a move-to-front slice
	// scan beats hashing the key; a hot site resolves on the first probe.
	children []pathChild
	// loopRecs caches, per func-local loop, the engine record for this
	// context; entries resolve lazily on the first event so that record
	// creation order matches the reference interpreter exactly.
	loopRecs []*taint.LoopRecord
	// libRec caches the library-call record when this node is an extern
	// call tail.
	libRec *taint.LibCallRecord
}

// pathChild is one interned child context of a pathNode.
type pathChild struct {
	site int32
	id   int32
}

// fastFrame is a reusable activation record. Frames are pooled per call
// depth, so steady-state execution allocates nothing per call: register and
// label banks are re-sliced and zeroed, the control-scope stack keeps its
// capacity, and the extern scratch buffers and ExternCall header are reused.
type fastFrame struct {
	regs      []Value
	labels    []taint.Label
	born      []int
	ctl       []ctlScope
	args      []Value
	argLabels []taint.Label
	ext       ExternCall
	// k is the compiled engine's pooled execution context for activations at
	// this frame's depth (see compile.go); the fast engine never touches it.
	k kctx
	// seqBase is the write-sequence epoch of the next activation on this
	// frame. born entries below it belong to earlier activations and read
	// as "not yet defined", so reusing the frame costs O(params) instead
	// of re-initializing the whole born array. Clean returns advance it
	// past every sequence number the activation handed out; aborted runs
	// scrub born wholesale instead (see runFast).
	seqBase int
}

// ctlState carries the control-flow-taint state of one activation. Its
// methods replace the per-call writeLabel/regCtl/memCtl closures of the
// reference interpreter with plain calls on a stack-allocated struct.
// Labels are parameter masks, so every join below is a bare OR — no table,
// no memoization, no allocation.
type ctlState struct {
	ctl      []ctlScope
	born     []int
	writeSeq int
	// seqBase is the epoch of this activation: born entries below it are
	// stale leftovers from earlier activations of the pooled frame.
	seqBase int
	ctlBase taint.Label
	cflow   bool
}

// regCtl computes the control label applicable to a register write: every
// non-loop scope, plus loop scopes for which the destination is loop-carried
// (born before the scope opened).
func (cs *ctlState) regCtl(dst int32) taint.Label {
	l := taint.None
	for i := range cs.ctl {
		s := &cs.ctl[i]
		if !s.loopExit || (cs.born[dst] >= cs.seqBase && cs.born[dst] < s.openSeq) {
			l |= s.label
		}
	}
	return l
}

// memCtl computes the control label applicable to a store: all scopes plus
// the control context inherited from the caller.
func (cs *ctlState) memCtl() taint.Label {
	l := cs.ctlBase
	for i := range cs.ctl {
		l |= cs.ctl[i].label
	}
	return l
}

// push opens a control scope, merging it with an open scope of identical
// join, label, and kind by bumping that scope's openSeq to the new write
// sequence. The reference interpreter instead accumulates one scope per
// executed tainted branch — one per iteration for a tainted loop exit —
// and rescans them all on every register write. Merging preserves every
// observable label: duplicate scopes contribute the same label to a union,
// and a loop-carried register passes the born test against some scope of
// the group iff it passes against the group's maximum openSeq, which is
// exactly what the merged scope keeps. Since labels are canonical parameter
// masks, the union order cannot even produce different representations.
func (cs *ctlState) push(join int, label taint.Label, loopExit bool) {
	for i := range cs.ctl {
		s := &cs.ctl[i]
		if s.join == join && s.label == label && s.loopExit == loopExit {
			s.openSeq = cs.writeSeq
			return
		}
	}
	cs.ctl = append(cs.ctl, ctlScope{join: join, label: label, loopExit: loopExit, openSeq: cs.writeSeq})
}

// closeAt drops control scopes whose join block has been reached.
func (cs *ctlState) closeAt(blk int32) {
	n := 0
	j := int(blk)
	for _, s := range cs.ctl {
		if s.join != j {
			cs.ctl[n] = s
			n++
		}
	}
	cs.ctl = cs.ctl[:n]
}

// resetFast prepares the per-run fast-engine state against prog.
func (m *Machine) resetFast(prog *Program) {
	if len(m.globalBase) != len(prog.Mod.Globals) {
		m.globalBase = make([]Value, len(prog.Mod.Globals))
	}
	for i, g := range prog.Mod.Globals {
		m.globalBase[i] = m.globals[g.Name]
	}
	if len(m.externSlots) != len(prog.externs) {
		m.externSlots = make([]Extern, len(prog.externs))
	} else {
		for i := range m.externSlots {
			m.externSlots[i] = nil
		}
	}
	if len(m.activeN) != len(prog.funcs) {
		m.activeN = make([]int32, len(prog.funcs))
	} else {
		for i := range m.activeN {
			m.activeN[i] = 0
		}
	}
	if len(m.branchRecs) != len(prog.funcs) {
		m.branchRecs = make([][]*taint.BranchRecord, len(prog.funcs))
	} else {
		for i := range m.branchRecs {
			m.branchRecs[i] = nil
		}
	}
	if len(m.siteCache) != int(prog.numSites) {
		m.siteCache = make([]int64, prog.numSites)
	} else {
		clear(m.siteCache)
	}
	m.paths = m.paths[:0]
}

// frame returns the pooled activation record for the given call depth,
// sized for df's registers. Recycled frames are not wiped wholesale: the
// IR contract makes unwritten registers read as zero, and predecode knows
// exactly which registers can be read before written (df.zeroRegs), so
// only those slots — and their labels, when labels flow — are scrubbed.
func (m *Machine) frame(depth int, df *dfunc) *fastFrame {
	for len(m.frames) <= depth {
		m.frames = append(m.frames, &fastFrame{})
	}
	fr := m.frames[depth]
	n := int(df.numRegs)
	if cap(fr.regs) < n {
		fr.regs = make([]Value, n)
		fr.labels = make([]taint.Label, n)
		fr.born = make([]int, n)
		// A fresh born array is all zeros; epoch 1 makes them read stale.
		fr.seqBase = 1
		// The pooled compiled-engine context caches these banks behind a
		// df identity guard; force it to re-derive them.
		fr.k.df = nil
		return fr
	}
	fr.regs = fr.regs[:n]
	fr.labels = fr.labels[:n]
	fr.born = fr.born[:n]
	switch {
	case m.labeling && m.Taint != nil:
		// Tainted run: every register write also writes its label, so the
		// definite-assignment set covers the label bank too.
		for _, r := range df.zeroRegs {
			fr.regs[r] = 0
			fr.labels[r] = taint.None
		}
	case m.labeling:
		// Argument labels without an engine: no dispatch arm writes the
		// label bank, so recycled frames must be scrubbed wholesale for
		// labels to read deterministically (only call-arg copies move them).
		for _, r := range df.zeroRegs {
			fr.regs[r] = 0
		}
		for i := range fr.labels {
			fr.labels[i] = taint.None
		}
	default:
		for _, r := range df.zeroRegs {
			fr.regs[r] = 0
		}
	}
	return fr
}

// childPath interns the calling context reached from parent through site,
// creating (and rendering) the node exactly once per distinct path. Repeat
// resolutions of the hottest site hit the front of the child list.
func (m *Machine) childPath(prog *Program, parent int32, site *dcall, tainting bool) int32 {
	pn := m.paths[parent]
	kids := pn.children
	for i := range kids {
		if kids[i].site == site.siteID {
			if i > 0 {
				kids[0], kids[i] = kids[i], kids[0]
			}
			return kids[0].id
		}
	}
	id := int32(len(m.paths))
	nn := &pathNode{str: pn.str + "/" + site.sym, fnIdx: site.callee}
	if tainting && site.callee >= 0 {
		nn.loopRecs = make([]*taint.LoopRecord, len(prog.funcs[site.callee].loops))
	}
	m.paths = append(m.paths, nn)
	pn.children = append(pn.children, pathChild{site: site.siteID, id: id})
	return id
}

// loopRec resolves (lazily, preserving the reference engine's record
// creation order) the loop record for func-local loop li in context path.
// The hit path is a slice probe and inlines into the dispatch loop.
func (m *Machine) loopRec(df *dfunc, path *pathNode, li int32, eng *taint.Engine) *taint.LoopRecord {
	if r := path.loopRecs[li]; r != nil {
		return r
	}
	return m.loopRecSlow(df, path, li, eng)
}

//go:noinline
func (m *Machine) loopRecSlow(df *dfunc, path *pathNode, li int32, eng *taint.Engine) *taint.LoopRecord {
	lm := df.loops[li]
	r := eng.LoopRec(df.name, int(lm.id), int(lm.header), path.str)
	path.loopRecs[li] = r
	return r
}

// loopEvent fires the precomputed latch/entry effect of a taken edge.
func (m *Machine) loopEvent(df *dfunc, path *pathNode, kind uint8, li int32, eng *taint.Engine) {
	r := m.loopRec(df, path, li, eng)
	if kind == evLatch {
		r.Iterations++
	} else {
		r.Entries++
	}
}

// branchRec resolves (lazily, run-scoped) the branch record of block in df.
// The hit path is two slice probes and inlines into the dispatch loop.
func (m *Machine) branchRec(df *dfunc, block int32, eng *taint.Engine) *taint.BranchRecord {
	if brs := m.branchRecs[df.idx]; brs != nil {
		if r := brs[block]; r != nil {
			return r
		}
	}
	return m.branchRecSlow(df, block, eng)
}

//go:noinline
func (m *Machine) branchRecSlow(df *dfunc, block int32, eng *taint.Engine) *taint.BranchRecord {
	brs := m.branchRecs[df.idx]
	if brs == nil {
		brs = make([]*taint.BranchRecord, df.numBlocks)
		m.branchRecs[df.idx] = brs
	}
	r := brs[block]
	if r == nil {
		r = eng.BranchRec(df.name, int(block))
		brs[block] = r
	}
	return r
}

// runFast executes entry on the predecoded program.
func (m *Machine) runFast(entry string, args []Value, argLabels []taint.Label) (*Result, error) {
	prog := m.Prog
	if prog == nil {
		if m.progOwned == nil {
			m.progOwned = Predecode(m.Mod)
		}
		prog = m.progOwned
	}
	fi := prog.Func(entry)
	if fi < 0 {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	df := prog.funcs[fi]
	if len(args) != int(df.numParams) {
		return nil, fmt.Errorf("interp: %q wants %d args, got %d", entry, df.numParams, len(args))
	}
	if err := m.reset(); err != nil {
		return nil, err
	}
	// Label banks are maintained only when labels can flow at all; a plain
	// run skips their zeroing and per-call copies entirely, and its result
	// label is forced to None below (pooled frames may hold stale labels).
	m.labeling = m.Taint != nil || argLabels != nil
	m.resetFast(prog)

	root := &pathNode{str: entry, fnIdx: fi}
	if m.Taint != nil {
		root.loopRecs = make([]*taint.LoopRecord, len(df.loops))
	}
	m.paths = append(m.paths, root)

	fr := m.frame(0, df)
	copy(fr.regs, args)
	if m.labeling {
		// Parameters are never in zeroRegs (they are assigned at entry),
		// so the recycled root frame's param slots must be cleared before
		// the (possibly partial) argument labels are copied in — the
		// reference engine zero-fills its fresh label bank the same way.
		clear(fr.labels[:df.numParams])
	}
	if argLabels != nil {
		copy(fr.labels, argLabels)
	}

	startFuel := m.fuel
	v, l, err := m.execFast(prog, df, fr, 0, taint.None, 0)
	prog.noteArenas(len(m.heap), len(m.shadow))
	if err != nil {
		// Aborted activations did not advance their frames' epochs past
		// the sequence numbers they handed out; scrub born wholesale so a
		// reused machine cannot mistake stale entries for live ones. The
		// scrub must reach the full capacity: a later activation may
		// reslice the bank wider than the aborted one's length.
		for _, f := range m.frames {
			clear(f.born[:cap(f.born)])
			f.seqBase = 1
		}
		return &Result{Instructions: startFuel - m.fuel}, err
	}
	if !m.labeling {
		l = taint.None
	}
	return &Result{Value: v, Label: l, Instructions: startFuel - m.fuel}, nil
}

// execFast wraps execLoop with the recursion accounting and tracer events
// of one activation, mirroring the reference interpreter's call prologue.
func (m *Machine) execFast(prog *Program, df *dfunc, fr *fastFrame, pathIdx int32, ctlBase taint.Label, depth int) (Value, taint.Label, error) {
	eng := m.Taint
	if m.activeN[df.idx] > 0 && eng != nil {
		eng.WarnRecursion(df.name)
	}
	m.activeN[df.idx]++
	tr := m.Tracer
	if tr != nil {
		tr.Enter(df.name, m.paths[pathIdx].str)
	}
	v, l, err := m.execLoop(prog, df, fr, pathIdx, ctlBase, depth, eng)
	if tr != nil {
		tr.Exit(df.name, m.paths[pathIdx].str)
	}
	m.activeN[df.idx]--
	return v, l, err
}

// execLoop is the fast engine's dispatch loop: a single dense instruction
// array, pc-threaded control flow, precomputed loop effects per edge, and
// label bookkeeping inlined from the reference semantics. Every observable
// action (taint unions, record updates, tracer events, instruction fuel)
// happens in exactly the order the reference interpreter produces, which
// the differential harness asserts.
func (m *Machine) execLoop(prog *Program, df *dfunc, fr *fastFrame, pathIdx int32, ctlBase taint.Label, depth int, eng *taint.Engine) (Value, taint.Label, error) {
	var cs ctlState
	cs.ctl = fr.ctl[:0]
	cs.ctlBase = ctlBase
	cs.seqBase = fr.seqBase
	cs.writeSeq = fr.seqBase + 1
	if eng != nil && eng.ControlFlow {
		cs.cflow = true
		born := fr.born
		for i := int32(0); i < df.numParams; i++ {
			born[i] = cs.seqBase
		}
		cs.born = born
	}
	return m.execLoopFrom(prog, df, fr, pathIdx, depth, eng, 0, &cs)
}

// execLoopFrom runs the dispatch loop from an arbitrary instruction index
// with an existing control-taint state. The compiled engine uses it as its
// exact-fuel de-optimization path: when the remaining budget cannot cover a
// pre-charged superinstruction segment, the activation resumes here at the
// segment's first instruction and burns down per-instruction, so the abort
// point (and the partial instruction count) is identical to the oracle's.
// csp is consumed: the callee owns the scope stack and epochs from here on.
func (m *Machine) execLoopFrom(prog *Program, df *dfunc, fr *fastFrame, pathIdx int32, depth int, eng *taint.Engine, pc0 int32, csp *ctlState) (Value, taint.Label, error) {
	regs := fr.regs
	labels := fr.labels
	code := df.code
	path := m.paths[pathIdx]
	tainting := eng != nil
	cs := *csp

	fuel := m.fuel
	pc := pc0
	for {
		in := &code[pc]
		fuel--
		if fuel < 0 {
			m.fuel = fuel
			fr.ctl = cs.ctl[:0]
			return 0, taint.None, ErrFuel
		}
		switch in.op {
		case ir.OpConst:
			regs[in.dst] = in.imm
			if tainting {
				wl := taint.None
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpMov:
			regs[in.dst] = regs[in.a]
			if tainting {
				wl := labels[in.a]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpAdd:
			regs[in.dst] = regs[in.a] + regs[in.b]
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpSub:
			regs[in.dst] = regs[in.a] - regs[in.b]
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpMul:
			regs[in.dst] = regs[in.a] * regs[in.b]
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpCmpLT:
			regs[in.dst] = boolVal(regs[in.a] < regs[in.b])
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpCmpLE:
			regs[in.dst] = boolVal(regs[in.a] <= regs[in.b])
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpCmpGT:
			regs[in.dst] = boolVal(regs[in.a] > regs[in.b])
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpCmpGE:
			regs[in.dst] = boolVal(regs[in.a] >= regs[in.b])
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpCmpEQ:
			regs[in.dst] = boolVal(regs[in.a] == regs[in.b])
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpCmpNE:
			regs[in.dst] = boolVal(regs[in.a] != regs[in.b])
			if tainting {
				wl := labels[in.a] | labels[in.b]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpNeg:
			regs[in.dst] = -regs[in.a]
			if tainting {
				wl := labels[in.a]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpNot:
			if regs[in.a] == 0 {
				regs[in.dst] = 1
			} else {
				regs[in.dst] = 0
			}
			if tainting {
				wl := labels[in.a]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpLoad:
			addr := regs[in.a] + in.imm
			if uint64(addr) >= uint64(len(m.heap)) {
				m.fuel = fuel
				return 0, taint.None, fmt.Errorf("%s: interp: load out of bounds at %d (heap %d)", df.name, addr, len(m.heap))
			}
			regs[in.dst] = m.heap[addr]
			if tainting {
				sl := taint.None
				if addr < Value(len(m.shadow)) {
					sl = m.shadow[addr]
				}
				wl := sl | labels[in.a]
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpStore:
			addr := regs[in.a] + in.imm
			if uint64(addr) >= uint64(len(m.heap)) {
				m.fuel = fuel
				return 0, taint.None, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", df.name, addr, len(m.heap))
			}
			m.heap[addr] = regs[in.b]
			if tainting {
				l := labels[in.b] | labels[in.a]
				if cs.cflow && (len(cs.ctl) > 0 || cs.ctlBase != taint.None) {
					l |= cs.memCtl()
				}
				if addr < Value(len(m.shadow)) {
					m.shadow[addr] = l
				} else if l != taint.None {
					m.growShadow(addr, l)
				}
			}
			pc++
		case ir.OpAlloc:
			base, err := m.alloc(regs[in.a])
			if err != nil {
				m.fuel = fuel
				return 0, taint.None, fmt.Errorf("%s: %w", df.name, err)
			}
			regs[in.dst] = base
			if tainting {
				wl := taint.None
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpGlobal:
			if in.aux < 0 {
				m.fuel = fuel
				return 0, taint.None, fmt.Errorf("%s: interp: unknown global %q", df.name, df.unknownGlob[pc])
			}
			regs[in.dst] = m.globalBase[in.aux]
			if tainting {
				wl := taint.None
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		case ir.OpCall:
			site := &df.calls[in.aux]
			childCtl := taint.None
			if cs.cflow && (len(cs.ctl) > 0 || cs.ctlBase != taint.None) {
				childCtl = cs.memCtl()
			}
			var childIdx int32
			if sc := m.siteCache[site.siteID]; sc != 0 && int32(sc>>32) == pathIdx {
				childIdx = int32(sc)
			} else {
				childIdx = m.childPath(prog, pathIdx, site, tainting)
				m.siteCache[site.siteID] = int64(pathIdx)<<32 | int64(childIdx)
			}
			if site.callee >= 0 {
				if int32(len(site.args)) != site.numParams {
					m.fuel = fuel
					return 0, taint.None, fmt.Errorf("interp: call %s with %d args, wants %d", site.sym, len(site.args), site.numParams)
				}
				cdf := prog.funcs[site.callee]
				cf := m.frame(depth+1, cdf)
				if m.labeling {
					for i, r := range site.args {
						cf.regs[i] = regs[r]
						cf.labels[i] = labels[r]
					}
				} else {
					for i, r := range site.args {
						cf.regs[i] = regs[r]
					}
				}
				m.fuel = fuel
				v, l, err := m.execFast(prog, cdf, cf, childIdx, childCtl, depth+1)
				if err != nil {
					fr.ctl = cs.ctl[:0]
					return 0, taint.None, err
				}
				fuel = m.fuel
				regs[in.dst] = v
				if tainting {
					wl := l
					if cs.cflow {
						if len(cs.ctl) > 0 {
							wl |= cs.regCtl(in.dst)
						}
						if cs.born[in.dst] < cs.seqBase {
							cs.born[in.dst] = cs.writeSeq
						}
						cs.writeSeq++
					}
					labels[in.dst] = wl
				}
			} else {
				ext := m.externSlots[site.externOrd]
				if ext == nil {
					ext = m.Externs[site.sym]
					if ext == nil {
						m.fuel = fuel
						return 0, taint.None, fmt.Errorf("interp: unresolved call target %q", site.sym)
					}
					m.externSlots[site.externOrd] = ext
				}
				n := len(site.args)
				if cap(fr.args) < n {
					fr.args = make([]Value, n)
					fr.argLabels = make([]taint.Label, n)
				}
				eargs := fr.args[:n]
				elabels := fr.argLabels[:n]
				if m.labeling {
					for i, r := range site.args {
						eargs[i] = regs[r]
						elabels[i] = labels[r]
					}
				} else {
					for i, r := range site.args {
						eargs[i] = regs[r]
					}
				}
				child := m.paths[childIdx]
				if m.Tracer != nil {
					m.Tracer.Enter(site.sym, child.str)
				}
				c := &fr.ext
				c.M = m
				c.Name = site.sym
				c.Args = eargs
				c.ArgLabels = elabels
				c.CallPath = child.str
				c.RetLabel = taint.None
				c.recCache = &child.libRec
				v, err := ext(c)
				if m.Tracer != nil {
					m.Tracer.Exit(site.sym, child.str)
				}
				if err != nil {
					m.fuel = fuel
					fr.ctl = cs.ctl[:0]
					return 0, taint.None, fmt.Errorf("extern %s: %w", site.sym, err)
				}
				regs[in.dst] = v
				if tainting {
					wl := c.RetLabel
					if cs.cflow {
						if len(cs.ctl) > 0 {
							wl |= cs.regCtl(in.dst)
						}
						if cs.born[in.dst] < cs.seqBase {
							cs.born[in.dst] = cs.writeSeq
						}
						cs.writeSeq++
					}
					labels[in.dst] = wl
				}
			}
			pc++
		case ir.OpWork:
			if m.Tracer != nil {
				m.Tracer.Work(df.name, regs[in.a])
			}
			pc++
		case ir.OpRet:
			m.fuel = fuel
			fr.ctl = cs.ctl[:0]
			fr.seqBase = cs.writeSeq
			if in.a < 0 {
				return 0, taint.None, nil
			}
			return regs[in.a], labels[in.a], nil
		case ir.OpJmp:
			if cs.cflow && len(cs.ctl) > 0 {
				cs.closeAt(in.blk0)
			}
			if tainting && in.evk0 != evNone {
				m.loopEvent(df, path, in.evk0, in.evl0, eng)
			}
			pc = in.tgt0
		case ir.OpBr:
			cond := regs[in.a] != 0
			if tainting {
				condLabel := labels[in.a]
				bm := &df.branches[in.aux]
				for _, li := range bm.exits {
					r := m.loopRec(df, path, li, eng)
					r.Labels |= condLabel
				}
				br := m.branchRec(df, bm.block, eng)
				br.Labels |= condLabel
				br.IsLoopExit = br.IsLoopExit || len(bm.exits) > 0
				if cond {
					br.Taken++
				} else {
					br.NotTaken++
				}
				if cs.cflow && condLabel != taint.None {
					cs.push(int(bm.joinBlk), condLabel, len(bm.exits) > 0)
				}
			}
			if cond {
				if cs.cflow && len(cs.ctl) > 0 {
					cs.closeAt(in.blk0)
				}
				if tainting && in.evk0 != evNone {
					m.loopEvent(df, path, in.evk0, in.evl0, eng)
				}
				pc = in.tgt0
			} else {
				if cs.cflow && len(cs.ctl) > 0 {
					cs.closeAt(in.blk1)
				}
				if tainting && in.evk1 != evNone {
					m.loopEvent(df, path, in.evk1, in.evl1, eng)
				}
				pc = in.tgt1
			}
		case ir.OpSwitch:
			sw := &df.switches[in.aux]
			v := regs[in.a]
			tgt := &sw.def
			for i := range sw.cases {
				if sw.cases[i].val == v {
					tgt = &sw.cases[i]
					break
				}
			}
			if tainting {
				condLabel := labels[in.a]
				for _, li := range sw.exits {
					r := m.loopRec(df, path, li, eng)
					r.Labels |= condLabel
				}
				if cs.cflow && condLabel != taint.None {
					cs.push(int(sw.joinBlk), condLabel, len(sw.exits) > 0)
				}
			}
			if cs.cflow && len(cs.ctl) > 0 {
				cs.closeAt(tgt.blk)
			}
			if tainting && tgt.evk != evNone {
				m.loopEvent(df, path, tgt.evk, tgt.evl, eng)
			}
			pc = tgt.pc
		default:
			a, b := regs[in.a], Value(0)
			var la, lb taint.Label
			la = labels[in.a]
			if in.b >= 0 {
				b = regs[in.b]
				lb = labels[in.b]
			}
			regs[in.dst] = binop(in.op, a, b)
			if tainting {
				wl := la | lb
				if cs.cflow {
					if len(cs.ctl) > 0 {
						wl |= cs.regCtl(in.dst)
					}
					if cs.born[in.dst] < cs.seqBase {
						cs.born[in.dst] = cs.writeSeq
					}
					cs.writeSeq++
				}
				labels[in.dst] = wl
			}
			pc++
		}
	}
}
