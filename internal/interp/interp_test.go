package interp

import (
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/taint"
)

// sumTo builds func(n): sum_{i<n} i.
func sumTo(m *ir.Module) {
	b := ir.NewFunc(m, "sumTo", 1)
	sum := b.Const(0)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
		b.MovTo(sum, b.Add(sum, i))
	})
	b.Ret(sum)
	b.Finish()
}

func TestRunArithmeticLoop(t *testing.T) {
	m := ir.NewModule("t")
	sumTo(m)
	mach := NewMachine(m)
	res, err := mach.Run("sumTo", []Value{10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 45 {
		t.Fatalf("sumTo(10) = %d, want 45", res.Value)
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions counted")
	}
}

func TestBinopSemantics(t *testing.T) {
	cases := []struct {
		op   ir.Opcode
		a, b Value
		want Value
	}{
		{ir.OpAdd, 3, 4, 7},
		{ir.OpSub, 3, 4, -1},
		{ir.OpMul, 3, 4, 12},
		{ir.OpDiv, 12, 4, 3},
		{ir.OpDiv, 12, 0, 0},
		{ir.OpMod, 13, 4, 1},
		{ir.OpMod, 13, 0, 0},
		{ir.OpAnd, 6, 3, 2},
		{ir.OpOr, 6, 3, 7},
		{ir.OpXor, 6, 3, 5},
		{ir.OpShl, 1, 4, 16},
		{ir.OpShr, 16, 4, 1},
		{ir.OpShl, 1, 70, 0},
		{ir.OpCmpEQ, 2, 2, 1},
		{ir.OpCmpNE, 2, 2, 0},
		{ir.OpCmpLT, 1, 2, 1},
		{ir.OpCmpLE, 2, 2, 1},
		{ir.OpCmpGT, 3, 2, 1},
		{ir.OpCmpGE, 1, 2, 0},
		{ir.OpMin, 4, 9, 4},
		{ir.OpMax, 4, 9, 9},
	}
	for _, tc := range cases {
		if got := binop(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMemoryAndGlobals(t *testing.T) {
	m := ir.NewModule("t")
	m.AddGlobal("g", 4)
	b := ir.NewFunc(m, "main", 1)
	addr := b.GlobalAddr("g")
	b.Store(addr, 2, b.Param(0))
	v := b.Load(addr, 2)
	b.Ret(v)
	b.Finish()

	mach := NewMachine(m)
	res, err := mach.Run("main", []Value{42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42 {
		t.Fatalf("round trip through global = %d, want 42", res.Value)
	}
}

func TestAllocAndOutOfBounds(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "oob", 0)
	base := b.Alloc(b.Const(4))
	v := b.Load(base, 100)
	b.Ret(v)
	b.Finish()

	mach := NewMachine(m)
	if _, err := mach.Run("oob", nil, nil); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestFuelExhaustion(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "inf", 0)
	hdr := b.NewBlock("hdr")
	b.Jmp(hdr)
	b.SetBlock(hdr)
	b.Jmp(hdr)
	b.Finish()

	mach := NewMachine(m)
	mach.Fuel = 1000
	_, err := mach.Run("inf", nil, nil)
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

func TestCallsAndExterns(t *testing.T) {
	m := ir.NewModule("t")
	sumTo(m)
	b := ir.NewFunc(m, "main", 1)
	s := b.Call("sumTo", b.Param(0))
	e := b.Call("ext_double", s)
	b.Ret(e)
	b.Finish()

	mach := NewMachine(m)
	mach.Externs["ext_double"] = func(c *ExternCall) (Value, error) {
		return 2 * c.Args[0], nil
	}
	res, err := mach.Run("main", []Value{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 20 {
		t.Fatalf("main(5) = %d, want 20", res.Value)
	}
}

func TestUnresolvedCallError(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "main", 0)
	b.Call("nowhere")
	b.RetVoid()
	b.Finish()
	mach := NewMachine(m)
	if _, err := mach.Run("main", nil, nil); err == nil {
		t.Fatal("expected unresolved call error")
	}
}

// --- taint propagation ---

func taintedMachine(m *ir.Module) (*Machine, *taint.Engine) {
	e := taint.NewEngine()
	mach := NewMachine(m)
	mach.Taint = e
	return mach, e
}

func TestDataFlowTaintThroughArithmetic(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 2)
	d := b.Mul(b.Add(b.Param(0), b.Const(3)), b.Param(1))
	b.Ret(d)
	b.Finish()

	mach, e := taintedMachine(m)
	a := e.Table.Base("a")
	c := e.Table.Base("c")
	res, err := mach.Run("f", []Value{2, 5}, []taint.Label{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Table.Has(res.Label, a) || !e.Table.Has(res.Label, c) {
		t.Fatalf("return label %v must include a and c", e.Table.Expand(res.Label))
	}
}

func TestTaintThroughMemory(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 1)
	base := b.Alloc(b.Const(2))
	b.Store(base, 0, b.Param(0))
	v := b.Load(base, 0)
	b.Ret(v)
	b.Finish()

	mach, e := taintedMachine(m)
	p := e.Table.Base("p")
	res, err := mach.Run("f", []Value{7}, []taint.Label{p})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Table.Has(res.Label, p) {
		t.Fatal("taint lost through store/load")
	}
}

// The paper's foo example (Section 3.2): a flows via data flow, b via an
// executed control dependence, c via control flow even when the branch body
// is not taken for the concrete input.
func TestControlFlowTaintPaperExample(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "foo", 3)
	d := b.Mul(b.Const(2), b.Param(0))
	b.If(b.Param(1), func() {
		b.MovTo(d, b.Add(d, b.Const(1)))
	}, func() {
		b.MovTo(d, b.Sub(d, b.Const(1)))
	})
	b.If(b.Param(2), func() {
		b.MovTo(d, b.Mul(d, d))
	}, nil)
	b.Ret(d)
	b.Finish()

	mach, e := taintedMachine(m)
	la := e.Table.Base("a")
	lb := e.Table.Base("b")
	lc := e.Table.Base("c")

	// c = 0: the squaring branch is NOT taken; an implicit dependence on c
	// remains because d is rewritten under the (un)taken branch's scope only
	// when taken — our engine, like DFSan+DTA++, captures the explicit
	// control dependence of executed writes. With c=1 the write executes.
	res, err := mach.Run("foo", []Value{2, 1, 1}, []taint.Label{la, lb, lc})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Label
	for name, base := range map[string]taint.Label{"a": la, "b": lb, "c": lc} {
		if !e.Table.Has(got, base) {
			t.Errorf("return label %v missing %s", e.Table.Expand(got), name)
		}
	}
}

func TestControlScopeClosesAtJoin(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 1)
	x := b.Const(0)
	b.If(b.Param(0), func() { b.MovTo(x, b.Const(1)) }, nil)
	// After the join, a fresh constant must NOT inherit the branch taint.
	y := b.Const(99)
	_ = x
	b.Ret(y)
	b.Finish()

	mach, e := taintedMachine(m)
	p := e.Table.Base("p")
	res, err := mach.Run("f", []Value{1}, []taint.Label{p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != taint.None {
		t.Fatalf("constant after join is tainted: %v", e.Table.Expand(res.Label))
	}
}

func TestControlTaintPropagatesIntoCallees(t *testing.T) {
	m := ir.NewModule("t")
	g := ir.NewFunc(m, "mk", 0)
	g.Ret(g.Const(5))
	g.Finish()

	b := ir.NewFunc(m, "f", 1)
	x := b.Const(0)
	b.If(b.Param(0), func() {
		b.MovTo(x, b.Call("mk"))
	}, nil)
	b.Ret(x)
	b.Finish()

	mach, e := taintedMachine(m)
	p := e.Table.Base("p")
	res, err := mach.Run("f", []Value{1}, []taint.Label{p})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Table.Has(res.Label, p) {
		t.Fatal("value produced by callee under tainted control must carry the control label")
	}
}

func TestLoopExitSinkRecordsDependencyAndIterations(t *testing.T) {
	m := ir.NewModule("t")
	sumTo(m)
	b := ir.NewFunc(m, "main", 1)
	b.Call("sumTo", b.Param(0))
	b.RetVoid()
	b.Finish()

	mach, e := taintedMachine(m)
	n := e.Table.Base("n")
	if _, err := mach.Run("main", []Value{6}, []taint.Label{n}); err != nil {
		t.Fatal(err)
	}
	var rec *taint.LoopRecord
	for _, r := range e.SortedLoops() {
		if r.Key.Func == "sumTo" {
			rec = r
		}
	}
	if rec == nil {
		t.Fatal("no loop record for sumTo")
	}
	if !e.Table.Has(rec.Labels, n) {
		t.Fatalf("loop labels %v missing n", e.Table.Expand(rec.Labels))
	}
	if rec.Iterations != 6 {
		t.Fatalf("iterations = %d, want 6", rec.Iterations)
	}
	if rec.Entries != 1 {
		t.Fatalf("entries = %d, want 1", rec.Entries)
	}
	if rec.Key.CallPath != "main/sumTo" {
		t.Fatalf("call path = %q", rec.Key.CallPath)
	}
}

func TestConstantLoopHasNoParameterDependence(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "fixed", 1)
	b.ForConst(0, 8, func(i ir.Reg) { b.Work(b.Const(1)) })
	b.RetVoid()
	b.Finish()

	mach, e := taintedMachine(m)
	p := e.Table.Base("p")
	if _, err := mach.Run("fixed", []Value{3}, []taint.Label{p}); err != nil {
		t.Fatal(err)
	}
	for _, r := range e.SortedLoops() {
		if r.Labels != taint.None {
			t.Fatalf("constant loop tainted: %v", e.Table.Expand(r.Labels))
		}
	}
}

func TestIndirectLoopBoundThroughMemoryAndCall(t *testing.T) {
	// iterate(pow(size,2)) pattern from Section 4.1: the bound flows through
	// a helper call and heap cell before reaching the loop condition.
	m := ir.NewModule("t")
	sq := ir.NewFunc(m, "square", 1)
	sq.Ret(sq.Mul(sq.Param(0), sq.Param(0)))
	sq.Finish()

	it := ir.NewFunc(m, "iterate", 1)
	it.For(it.Const(0), it.Param(0), it.Const(1), func(i ir.Reg) { it.Work(it.Const(1)) })
	it.RetVoid()
	it.Finish()

	b := ir.NewFunc(m, "main", 1)
	cell := b.Alloc(b.Const(1))
	b.Store(cell, 0, b.Call("square", b.Param(0)))
	b.Call("iterate", b.Load(cell, 0))
	b.RetVoid()
	b.Finish()

	mach, e := taintedMachine(m)
	size := e.Table.Base("size")
	if _, err := mach.Run("main", []Value{3}, []taint.Label{size}); err != nil {
		t.Fatal(err)
	}
	deps := e.FuncLoopDeps()
	got := deps["iterate"]
	if len(got) != 1 || got[0] != "size" {
		t.Fatalf("iterate deps = %v, want [size]", got)
	}
	// Iterations must equal size^2 = 9.
	for _, r := range e.SortedLoops() {
		if r.Key.Func == "iterate" && r.Iterations != 9 {
			t.Fatalf("iterate iterations = %d, want 9", r.Iterations)
		}
	}
}

// LULESH regElemSize example (Section 5.2): a value accumulated inside a
// loop whose bound is tainted acquires the bound's label purely through
// control flow.
func TestControlDependenceThroughLoopBound(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "regcount", 1)
	count := b.Const(0)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
		b.MovTo(count, b.Add(count, b.Const(1)))
	})
	b.Ret(count)
	b.Finish()

	mach, e := taintedMachine(m)
	size := e.Table.Base("size")
	res, err := mach.Run("regcount", []Value{4}, []taint.Label{size})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Table.Has(res.Label, size) {
		t.Fatal("control dependence through loop bound not captured")
	}

	// Without control-flow propagation the dependency must be missed,
	// demonstrating why the DFSan extension is necessary.
	e2 := taint.NewEngine()
	e2.ControlFlow = false
	mach2 := NewMachine(m)
	mach2.Taint = e2
	size2 := e2.Table.Base("size")
	res2, err := mach2.Run("regcount", []Value{4}, []taint.Label{size2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Label != taint.None {
		t.Fatal("data-flow-only tainting unexpectedly captured control dependence")
	}
}

func TestRecursionWarning(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "rec", 1)
	cond := b.CmpGT(b.Param(0), b.Const(0))
	b.If(cond, func() {
		b.Call("rec", b.Sub(b.Param(0), b.Const(1)))
	}, nil)
	b.RetVoid()
	b.Finish()

	mach, e := taintedMachine(m)
	if _, err := mach.Run("rec", []Value{3}, nil); err != nil {
		t.Fatal(err)
	}
	if !e.RecursionWarnings["rec"] {
		t.Fatal("recursion not flagged")
	}
}

func TestTaintedSelectionBranchCoverage(t *testing.T) {
	// if (p < 4) kernel_a else kernel_b — only one side executes, and the
	// condition is tainted: must appear in TaintedSelections (C2).
	m := ir.NewModule("t")
	ka := ir.NewFunc(m, "kernel_a", 0)
	ka.RetVoid()
	ka.Finish()
	kb := ir.NewFunc(m, "kernel_b", 0)
	kb.RetVoid()
	kb.Finish()
	b := ir.NewFunc(m, "main", 1)
	b.If(b.CmpLT(b.Param(0), b.Const(4)), func() { b.Call("kernel_a") }, func() { b.Call("kernel_b") })
	b.RetVoid()
	b.Finish()

	mach, e := taintedMachine(m)
	p := e.Table.Base("p")
	if _, err := mach.Run("main", []Value{2}, []taint.Label{p}); err != nil {
		t.Fatal(err)
	}
	sel := e.TaintedSelections()
	if len(sel) != 1 {
		t.Fatalf("selections = %d, want 1", len(sel))
	}
	if sel[0].Key.Func != "main" {
		t.Fatalf("selection in %q, want main", sel[0].Key.Func)
	}
	if !e.Table.Has(sel[0].Labels, p) {
		t.Fatal("selection label must include p")
	}
}

type countTracer struct {
	enters map[string]int
	work   map[string]int64
}

func (c *countTracer) Enter(fn, _ string) { c.enters[fn]++ }
func (c *countTracer) Exit(fn, _ string)  {}
func (c *countTracer) Work(fn string, u int64) {
	c.work[fn] += u
}

func TestTracerSeesCallsAndWork(t *testing.T) {
	m := ir.NewModule("t")
	leaf := ir.NewFunc(m, "leaf", 0)
	leaf.Work(leaf.Const(3))
	leaf.RetVoid()
	leaf.Finish()
	b := ir.NewFunc(m, "main", 1)
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
		b.Call("leaf")
	})
	b.RetVoid()
	b.Finish()

	tr := &countTracer{enters: map[string]int{}, work: map[string]int64{}}
	mach := NewMachine(m)
	mach.Tracer = tr
	if _, err := mach.Run("main", []Value{5}, nil); err != nil {
		t.Fatal(err)
	}
	if tr.enters["leaf"] != 5 {
		t.Fatalf("leaf calls = %d, want 5", tr.enters["leaf"])
	}
	if tr.work["leaf"] != 15 {
		t.Fatalf("leaf work = %d, want 15", tr.work["leaf"])
	}
}

func TestSwitchDispatch(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "sw", 1)
	one := b.NewBlock("one")
	two := b.NewBlock("two")
	def := b.NewBlock("def")
	b.Switch(b.Param(0), def, []ir.SwitchCase{{Value: 1, Block: one.Index}, {Value: 2, Block: two.Index}})
	b.SetBlock(one)
	b.Ret(b.Const(10))
	b.SetBlock(two)
	b.Ret(b.Const(20))
	b.SetBlock(def)
	b.Ret(b.Const(0))
	b.Finish()

	mach := NewMachine(m)
	for in, want := range map[Value]Value{1: 10, 2: 20, 99: 0} {
		res, err := mach.Run("sw", []Value{in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("sw(%d) = %d, want %d", in, res.Value, want)
		}
	}
}

func TestExternTaintSource(t *testing.T) {
	// An extern writing a labeled value to memory (MPI_Comm_size pattern).
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "main", 0)
	cell := b.Alloc(b.Const(1))
	b.Call("comm_size", cell)
	n := b.Load(cell, 0)
	b.For(b.Const(0), n, b.Const(1), func(i ir.Reg) { b.Work(b.Const(1)) })
	b.RetVoid()
	b.Finish()

	mach, e := taintedMachine(m)
	pl := e.Table.Base("p")
	mach.Externs["comm_size"] = func(c *ExternCall) (Value, error) {
		return 0, c.M.StoreMem(c.Args[0], 16, pl)
	}
	if _, err := mach.Run("main", nil, nil); err != nil {
		t.Fatal(err)
	}
	deps := e.FuncLoopDeps()
	if got := deps["main"]; len(got) != 1 || got[0] != "p" {
		t.Fatalf("main deps = %v, want [p]", got)
	}
}

// A reused machine running with argument labels but no taint engine must not
// leak labels from an earlier tainted run out of the pooled frames: without
// an engine no dispatch arm writes the label bank, so recycled slots have to
// read as None (labels move only through call-argument copies).
func TestReuseArgLabelsWithoutEngineReadsNone(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 1)
	// The returned register is not a parameter, so its label is never
	// written when no engine is attached.
	b.Ret(b.Add(b.Param(0), b.Const(1)))
	b.Finish()

	mach := NewMachine(m)
	e := taint.NewEngine()
	mach.Taint = e
	p := e.Table.Base("p")
	if _, err := mach.Run("f", []Value{3}, []taint.Label{p}); err != nil {
		t.Fatal(err)
	}

	mach.Taint = nil
	res, err := mach.Run("f", []Value{3}, []taint.Label{p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != taint.None {
		t.Fatalf("engine-less run leaked a stale label: %v", res.Label)
	}
}

// After an aborted run (ErrFuel), stale born entries must not survive in the
// capacity tail of a pooled frame's born bank: a later wider activation
// would otherwise mistake them for live births and drop loop-exit control
// labels for registers born inside the scope.
func TestAbortScrubsBornCapacityTail(t *testing.T) {
	m := ir.NewModule("t")
	// wide: enough registers that the depth-1 frame's born bank has a tail
	// beyond narrow's length; its accumulator is loop-carried under a
	// tainted bound, so its label must include the bound parameter.
	wb := ir.NewFunc(m, "wide", 1)
	pad := make([]ir.Reg, 24)
	for i := range pad {
		pad[i] = wb.Const(int64(i))
	}
	acc := wb.Mov(wb.Const(0))
	wb.For(wb.Const(0), wb.Param(0), wb.Const(1), func(i ir.Reg) {
		wb.MovTo(acc, wb.Add(acc, wb.Const(1)))
	})
	wb.Ret(acc)
	wb.Finish()
	nb := ir.NewFunc(m, "narrow", 1)
	nb.Ret(nb.Add(nb.Param(0), nb.Param(0)))
	nb.Finish()
	mb := ir.NewFunc(m, "main", 1)
	mb.Call("wide", mb.Param(0))
	mb.Call("narrow", mb.Param(0))
	mb.Ret(mb.Call("wide", mb.Param(0)))
	mb.Finish()

	mach := NewMachine(m)
	e := taint.NewEngine()
	mach.Taint = e
	n := e.Table.Base("n")

	// Run 1: abort mid-flight so frames keep whatever born state they had.
	mach.Fuel = 40
	if _, err := mach.Run("main", []Value{5}, []taint.Label{n}); err != ErrFuel {
		t.Fatalf("want ErrFuel, got %v", err)
	}

	// Run 2 on the same machine: full fuel; the loop-carried accumulator of
	// wide must carry the tainted bound through control flow.
	mach.Fuel = 0
	res, err := mach.Run("main", []Value{5}, []taint.Label{n})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Table.Has(res.Label, n) {
		t.Fatal("stale born state dropped the loop-exit control label after an aborted run")
	}
}

// Partial argLabels on a reused machine must zero-fill the remaining
// parameter slots exactly like the reference engine's fresh label bank.
func TestReusePartialArgLabelsZeroFills(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "g", 2)
	b.Ret(b.Param(1))
	b.Finish()

	mach := NewMachine(m)
	e := taint.NewEngine()
	mach.Taint = e
	p := e.Table.Base("p")
	q := e.Table.Base("q")
	if _, err := mach.Run("g", []Value{1, 2}, []taint.Label{p, q}); err != nil {
		t.Fatal(err)
	}
	// Second run labels only the first parameter; the second must read as
	// untainted, not as run 1's leftover q.
	res, err := mach.Run("g", []Value{1, 2}, []taint.Label{p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != taint.None {
		t.Fatalf("partial argLabels leaked a stale label: %v", e.Table.Expand(res.Label))
	}
}
