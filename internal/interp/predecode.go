package interp

import (
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Program is the predecoded, execution-ready form of an ir.Module: every
// function flattened into a dense instruction array with branch targets
// resolved to instruction indices, loop latch/entry/exit effects precomputed
// per control-flow edge, call sites bound to decoded callees (or extern
// ordinals), and globals bound to ordinals. A Program is immutable after
// Predecode and safe for concurrent use by any number of machines — the
// batch runner shares one Program across all configurations of a sweep.
type Program struct {
	Mod *ir.Module

	funcs  []*dfunc
	byName map[string]int32
	// externs lists the distinct non-module call symbols; machines resolve
	// them against their Externs map once per run into a dense slot array.
	externs   []string
	externOrd map[string]int32
	// globalOrd maps a global name to its allocation ordinal (the position
	// in Mod.Globals whose base address the machine records at reset; for
	// duplicate names the last allocation wins, matching the reference
	// interpreter's map semantics).
	globalOrd map[string]int32
	numSites  int32

	// heapHint / shadowHint are the high-water heap and shadow sizes (in
	// cells) observed across completed runs of this program. Machines use
	// them to size their arenas in one allocation instead of growing
	// through doubling copies — applications allocate incrementally, and
	// for heap-heavy workloads the repeated copy/clear traffic of a cold
	// arena dominates the run. The hints are monotone best-effort caches
	// (concurrent sweeps publish with atomics; a lost update only costs
	// one more warm-up run), and a run that stays smaller merely leaves
	// capacity unused.
	heapHint   atomic.Int64
	shadowHint atomic.Int64
}

// noteArenas records the arena high-water marks of a completed run.
func (p *Program) noteArenas(heapLen, shadowLen int) {
	if h := int64(heapLen); h > p.heapHint.Load() {
		p.heapHint.Store(h)
	}
	if s := int64(shadowLen); s > p.shadowHint.Load() {
		p.shadowHint.Store(s)
	}
}

// Func returns the decoded function index for name, or -1.
func (p *Program) Func(name string) int32 {
	if i, ok := p.byName[name]; ok {
		return i
	}
	return -1
}

// NumFuncs returns the number of decoded functions.
func (p *Program) NumFuncs() int { return len(p.funcs) }

// edge-event kinds attached to decoded control-flow edges.
const (
	evNone uint8 = iota
	evLatch
	evEntry
)

// dinstr is one decoded instruction. Register operands are pre-narrowed,
// branch targets are instruction indices (tgt*) paired with the target block
// id (blk*, needed to close control scopes that join there) and the loop
// event the edge fires (evk*/evl*). aux indexes the per-function side tables
// for calls, branches, and switches. The struct is deliberately pointer-free
// (symbols live in the side tables): code arrays are the bulk of a decoded
// program and stay off the garbage collector's scan queue this way.
type dinstr struct {
	op         ir.Opcode
	evk0, evk1 uint8
	dst, a, b  int32
	tgt0, tgt1 int32
	blk0, blk1 int32
	evl0, evl1 int32
	aux        int32
	imm        int64
}

// dbranch is the precomputed terminator metadata of one conditional branch:
// the source block, the control-scope join block (immediate post-dominator),
// and the loops for which this branch is an exit (taint sinks).
type dbranch struct {
	block   int32
	joinBlk int32
	exits   []int32
}

// dcase is one decoded switch arm (or the default) with its edge effects.
type dcase struct {
	val int64
	pc  int32
	blk int32
	evk uint8
	evl int32
}

// dswitch is the precomputed metadata of one switch terminator.
type dswitch struct {
	block   int32
	joinBlk int32
	exits   []int32
	cases   []dcase
	def     dcase
}

// dcall is one pre-bound call site. callee >= 0 points at a decoded module
// function; otherwise externOrd names the machine extern slot. siteID is
// module-unique and keys the interned call-path tree.
type dcall struct {
	sym       string
	siteID    int32
	callee    int32
	externOrd int32
	numParams int32
	args      []int32
}

// loopMeta carries the identity of one func-local natural loop for lazy
// taint-record resolution.
type loopMeta struct {
	id     int32
	header int32
}

// dfunc is one decoded function.
type dfunc struct {
	fn        *ir.Function
	idx       int32
	name      string
	numParams int32
	numRegs   int32
	numBlocks int32
	code      []dinstr
	blockPC   []int32
	calls     []dcall
	branches  []dbranch
	switches  []dswitch
	loops     []loopMeta
	// unknownGlob names the unresolved global referenced at a pc (error
	// reporting only; resolved globals carry their ordinal in aux).
	unknownGlob map[int32]string
	// zeroRegs lists the registers that may be read before being written
	// on some path (definite-assignment analysis, see computeZeroRegs).
	// The IR contract is that unwritten registers read as zero, so a
	// pooled frame only needs to scrub these — typically a handful —
	// instead of memclr-ing the whole register and label banks per call.
	zeroRegs []int32
}

// Predecode flattens every function of mod for the fast engine. It is pure
// analysis — building CFGs, loop forests, and post-dominators exactly as the
// reference interpreter does per call — performed once per module.
func Predecode(mod *ir.Module) *Program {
	p := &Program{
		Mod:       mod,
		byName:    make(map[string]int32, len(mod.FuncList)),
		externOrd: make(map[string]int32),
		globalOrd: make(map[string]int32, len(mod.Globals)),
	}
	for i, g := range mod.Globals {
		p.globalOrd[g.Name] = int32(i)
	}
	for i, fn := range mod.FuncList {
		p.byName[fn.Name] = int32(i)
	}
	for i, fn := range mod.FuncList {
		p.funcs = append(p.funcs, p.decodeFunc(fn, int32(i)))
	}
	return p
}

func (p *Program) externSlot(sym string) int32 {
	if o, ok := p.externOrd[sym]; ok {
		return o
	}
	o := int32(len(p.externs))
	p.externs = append(p.externs, sym)
	p.externOrd[sym] = o
	return o
}

func (p *Program) decodeFunc(fn *ir.Function, idx int32) *dfunc {
	g := cfg.Build(fn)
	loops := cfg.FindLoops(g)
	ipdom := cfg.PostDominators(g)

	df := &dfunc{
		fn:        fn,
		idx:       idx,
		name:      fn.Name,
		numParams: int32(fn.NumParams),
		numRegs:   int32(fn.NumRegs),
		numBlocks: int32(len(fn.Blocks)),
		blockPC:   make([]int32, len(fn.Blocks)),
	}
	for _, l := range loops.Loops {
		df.loops = append(df.loops, loopMeta{id: int32(l.ID), header: int32(l.Header)})
	}

	// First pass: lay out block start pcs.
	pc := int32(0)
	for i, blk := range fn.Blocks {
		df.blockPC[i] = pc
		pc += int32(len(blk.Instrs))
	}
	df.code = make([]dinstr, 0, pc)

	exitsOf := func(b int) []int32 {
		var out []int32
		for _, l := range loops.ExitLoops(b) {
			out = append(out, int32(l.ID))
		}
		return out
	}
	edge := func(from, to int) (uint8, int32) {
		kind, l := loops.ClassifyEdge(from, to)
		switch kind {
		case cfg.EdgeLatch:
			return evLatch, int32(l.ID)
		case cfg.EdgeEntry:
			return evEntry, int32(l.ID)
		}
		return evNone, 0
	}

	// Second pass: decode instructions with resolved targets.
	for bi, blk := range fn.Blocks {
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			d := dinstr{
				op:  in.Op,
				dst: int32(in.Dst), a: int32(in.A), b: int32(in.B),
				imm: in.Imm,
			}
			switch in.Op {
			case ir.OpJmp:
				d.tgt0 = df.blockPC[in.Blk0]
				d.blk0 = int32(in.Blk0)
				d.evk0, d.evl0 = edge(bi, in.Blk0)
			case ir.OpBr:
				d.tgt0, d.tgt1 = df.blockPC[in.Blk0], df.blockPC[in.Blk1]
				d.blk0, d.blk1 = int32(in.Blk0), int32(in.Blk1)
				d.evk0, d.evl0 = edge(bi, in.Blk0)
				d.evk1, d.evl1 = edge(bi, in.Blk1)
				d.aux = int32(len(df.branches))
				df.branches = append(df.branches, dbranch{
					block:   int32(bi),
					joinBlk: int32(ipdom[bi]),
					exits:   exitsOf(bi),
				})
			case ir.OpSwitch:
				sw := dswitch{
					block:   int32(bi),
					joinBlk: int32(ipdom[bi]),
					exits:   exitsOf(bi),
				}
				defEvk, defEvl := edge(bi, in.Blk0)
				sw.def = dcase{pc: df.blockPC[in.Blk0], blk: int32(in.Blk0), evk: defEvk, evl: defEvl}
				for _, c := range in.Cases {
					evk, evl := edge(bi, c.Block)
					sw.cases = append(sw.cases, dcase{
						val: c.Value, pc: df.blockPC[c.Block], blk: int32(c.Block),
						evk: evk, evl: evl,
					})
				}
				d.aux = int32(len(df.switches))
				df.switches = append(df.switches, sw)
			case ir.OpCall:
				dc := dcall{
					sym:       in.Sym,
					siteID:    p.numSites,
					callee:    -1,
					externOrd: -1,
					numParams: -1,
				}
				p.numSites++
				for _, a := range in.Args {
					dc.args = append(dc.args, int32(a))
				}
				if callee, ok := p.byName[in.Sym]; ok {
					dc.callee = callee
					dc.numParams = int32(p.Mod.FuncList[callee].NumParams)
				} else {
					dc.externOrd = p.externSlot(in.Sym)
				}
				d.aux = int32(len(df.calls))
				df.calls = append(df.calls, dc)
			case ir.OpGlobal:
				if o, ok := p.globalOrd[in.Sym]; ok {
					d.aux = o
				} else {
					d.aux = -1
					if df.unknownGlob == nil {
						df.unknownGlob = make(map[int32]string)
					}
					df.unknownGlob[int32(len(df.code))] = in.Sym
				}
			}
			df.code = append(df.code, d)
		}
	}
	df.zeroRegs = computeZeroRegs(fn)
	return df
}

// computeZeroRegs returns the registers of fn that may be read before being
// written on some execution path. It runs a definite-assignment dataflow:
// IN[b] is the register set assigned on every path reaching b (parameters
// are assigned at entry), and a use outside the running set marks the
// register as needing an explicit zero when its frame slot is recycled.
func computeZeroRegs(fn *ir.Function) []int32 {
	nb := len(fn.Blocks)
	words := (fn.NumRegs + 63) / 64
	newSet := func(fill bool) []uint64 {
		s := make([]uint64, words)
		if fill {
			for i := range s {
				s[i] = ^uint64(0)
			}
		}
		return s
	}
	in := make([][]uint64, nb)
	for b := range in {
		in[b] = newSet(b != 0)
	}
	for p := 0; p < fn.NumParams; p++ {
		in[0][p/64] |= 1 << uint(p%64)
	}

	// defs per block and successor lists, both straight off the IR.
	defs := make([][]uint64, nb)
	succs := make([][]int, nb)
	for b, blk := range fn.Blocks {
		defs[b] = newSet(false)
		for ii := range blk.Instrs {
			ins := &blk.Instrs[ii]
			if ins.Dst != ir.NoReg {
				defs[b][int(ins.Dst)/64] |= 1 << uint(int(ins.Dst)%64)
			}
			switch ins.Op {
			case ir.OpJmp:
				succs[b] = append(succs[b], ins.Blk0)
			case ir.OpBr:
				succs[b] = append(succs[b], ins.Blk0, ins.Blk1)
			case ir.OpSwitch:
				succs[b] = append(succs[b], ins.Blk0)
				for _, c := range ins.Cases {
					succs[b] = append(succs[b], c.Block)
				}
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for b := 0; b < nb; b++ {
			out := newSet(false)
			copy(out, in[b])
			for i := range out {
				out[i] |= defs[b][i]
			}
			for _, s := range succs[b] {
				for i := range out {
					if nv := in[s][i] & out[i]; nv != in[s][i] {
						in[s][i] = nv
						changed = true
					}
				}
			}
		}
	}

	need := newSet(false)
	running := newSet(false)
	for b, blk := range fn.Blocks {
		copy(running, in[b])
		use := func(r ir.Reg) {
			if r == ir.NoReg {
				return
			}
			if running[int(r)/64]&(1<<uint(int(r)%64)) == 0 {
				need[int(r)/64] |= 1 << uint(int(r)%64)
			}
		}
		for ii := range blk.Instrs {
			ins := &blk.Instrs[ii]
			use(ins.A)
			use(ins.B)
			for _, a := range ins.Args {
				use(a)
			}
			if ins.Dst != ir.NoReg {
				running[int(ins.Dst)/64] |= 1 << uint(int(ins.Dst)%64)
			}
		}
	}

	var out []int32
	for r := 0; r < fn.NumRegs; r++ {
		if need[r/64]&(1<<uint(r%64)) != 0 {
			out = append(out, int32(r))
		}
	}
	return out
}
