package interp_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/libdb"
	"repro/internal/taint"
)

// This file is the differential harness of the fast engine: seeded random
// modules (plus truncated-fuel and tracer variants) are executed under both
// interpreter modes and every observable — result value, label parameter
// sets, instruction counts, loop/branch/libcall records, recursion
// warnings, and tracer event streams — must match exactly.

// ---- random module generator (seeded, table-driven) ----

// genConfig bounds one generated module.
type genConfig struct {
	funcs    int // helper functions besides main
	stmts    int // statements per body
	maxDepth int // nesting depth of ifs/loops/switches
}

type gen struct {
	r   *rand.Rand
	mod *ir.Module
	cfg genConfig
	// callable helper functions built so far, with their arities.
	callees []struct {
		name   string
		params int
	}
}

// genModule builds a random but always-terminating module whose main takes
// three tainted parameters. Loops are counted with masked bounds, memory
// indices are masked in-bounds, and helpers form a DAG, so the only way a
// run can fail is fuel exhaustion — which the harness also compares.
func genModule(seed int64, cfg genConfig) *ir.Module {
	g := &gen{r: rand.New(rand.NewSource(seed)), mod: ir.NewModule(fmt.Sprintf("rand%d", seed)), cfg: cfg}
	for i := 0; i < cfg.funcs; i++ {
		params := 1 + g.r.Intn(3)
		name := fmt.Sprintf("f%d", i)
		g.buildFunc(name, params)
		g.callees = append(g.callees, struct {
			name   string
			params int
		}{name, params})
	}
	g.buildFunc("main", 3)
	return g.mod
}

// body carries the open-scope state while generating one function.
type body struct {
	g     *gen
	b     *ir.Builder
	pool  []ir.Reg // value registers defined on every path to here
	arr   ir.Reg   // base of the 8-cell scratch array
	depth int
}

func (g *gen) buildFunc(name string, params int) {
	b := ir.NewFunc(g.mod, name, params)
	bd := &body{g: g, b: b}
	for i := 0; i < params; i++ {
		bd.pool = append(bd.pool, b.Param(i))
	}
	bd.arr = b.Alloc(b.Const(8))
	// Seed the scratch array with the parameters.
	for i := 0; i < params; i++ {
		b.Store(bd.arr, int64(i), b.Param(i))
	}
	n := 2 + g.r.Intn(g.cfg.stmts)
	for i := 0; i < n; i++ {
		bd.stmt()
	}
	b.Ret(bd.pick())
	b.Finish()
}

func (bd *body) pick() ir.Reg {
	return bd.pool[bd.g.r.Intn(len(bd.pool))]
}

func (bd *body) push(r ir.Reg) { bd.pool = append(bd.pool, r) }

// index returns a register holding pick()&7: a always-in-bounds scratch
// index (bitwise and maps negatives into 0..7 too).
func (bd *body) index() ir.Reg {
	return bd.b.Bin(ir.OpAnd, bd.pick(), bd.b.Const(7))
}

var arithOps = []ir.Opcode{
	ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr,
	ir.OpXor, ir.OpShl, ir.OpShr, ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT,
	ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE, ir.OpMin, ir.OpMax,
}

func (bd *body) stmt() {
	g, b := bd.g, bd.b
	nested := bd.depth < bd.g.cfg.maxDepth
	switch k := g.r.Intn(12); {
	case k <= 2: // arithmetic
		op := arithOps[g.r.Intn(len(arithOps))]
		bd.push(b.Bin(op, bd.pick(), bd.pick()))
	case k == 3: // unary / const / mov
		switch g.r.Intn(3) {
		case 0:
			bd.push(b.Neg(bd.pick()))
		case 1:
			bd.push(b.Const(int64(g.r.Intn(21) - 10)))
		default:
			bd.push(b.Mov(bd.pick()))
		}
	case k == 4: // load
		addr := b.Add(bd.arr, bd.index())
		bd.push(b.Load(addr, 0))
	case k == 5: // store
		addr := b.Add(bd.arr, bd.index())
		b.Store(addr, 0, bd.pick())
	case k == 6: // accumulate into an existing register (loop-carried)
		b.MovTo(bd.pick(), b.Add(bd.pick(), bd.pick()))
	case k == 7 && nested: // if / if-else
		cond := b.CmpLT(bd.pick(), bd.pick())
		save := len(bd.pool)
		bd.depth++
		var els func()
		if g.r.Intn(2) == 0 {
			els = func() {
				bd.stmt()
				bd.pool = bd.pool[:save]
			}
		}
		b.If(cond, func() {
			bd.stmt()
			if g.r.Intn(2) == 0 {
				bd.stmt()
			}
			bd.pool = bd.pool[:save]
		}, els)
		bd.depth--
	case k == 8 && nested: // counted loop with a (possibly tainted) bound
		bound := b.Bin(ir.OpAnd, bd.pick(), b.Const(3))
		save := len(bd.pool)
		bd.depth++
		b.For(b.Const(0), bound, b.Const(1), func(i ir.Reg) {
			bd.push(i)
			bd.stmt()
			bd.stmt()
			bd.pool = bd.pool[:save]
		})
		bd.depth--
	case k == 9 && nested: // while loop on an explicit down-counter
		cnt := b.Mov(b.Bin(ir.OpAnd, bd.pick(), b.Const(3)))
		zero := b.Const(0)
		one := b.Const(1)
		save := len(bd.pool)
		bd.depth++
		b.While(func() ir.Reg { return b.CmpGT(cnt, zero) }, func() {
			bd.stmt()
			b.MovTo(cnt, b.Sub(cnt, one))
			bd.pool = bd.pool[:save]
		})
		bd.depth--
	case k == 10 && nested: // switch over pick()&3
		v := b.Bin(ir.OpAnd, bd.pick(), b.Const(3))
		c0 := b.NewBlock("case0")
		c1 := b.NewBlock("case1")
		def := b.NewBlock("default")
		join := b.NewBlock("swjoin")
		b.Switch(v, def, []ir.SwitchCase{{Value: 0, Block: c0.Index}, {Value: 1, Block: c1.Index}})
		save := len(bd.pool)
		bd.depth++
		for _, arm := range []*ir.Block{c0, c1, def} {
			b.SetBlock(arm)
			bd.stmt()
			bd.pool = bd.pool[:save]
			if b.CurBlock() != nil {
				b.Jmp(join)
			}
		}
		bd.depth--
		b.SetBlock(join)
	case k == 11: // call: helper or library
		bd.call()
	default:
		bd.push(b.Bin(ir.OpAdd, bd.pick(), bd.pick()))
	}
}

func (bd *body) call() {
	g, b := bd.g, bd.b
	if len(g.callees) > 0 && g.r.Intn(3) > 0 {
		c := g.callees[g.r.Intn(len(g.callees))]
		args := make([]ir.Reg, c.params)
		for i := range args {
			args[i] = bd.pick()
		}
		bd.push(b.Call(c.name, args...))
		return
	}
	switch g.r.Intn(4) {
	case 0: // taint source: writes comm size (labelled p) into the array
		addr := b.Add(bd.arr, bd.index())
		bd.push(b.Call("MPI_Comm_size", b.Const(0), addr))
	case 1: // relevant p2p call; count argument may carry taint
		bd.push(b.Call("MPI_Send", bd.arr, bd.pick(), b.Const(1)))
	case 2: // collective that moves up to 4 cells inside the array
		cnt := b.Bin(ir.OpAnd, bd.pick(), b.Const(3))
		bd.push(b.Call("MPI_Allreduce", bd.arr, b.Add(bd.arr, b.Const(4)), cnt))
	default:
		bd.push(b.Call("MPI_Barrier", b.Const(0)))
	}
}

// ---- engine fingerprinting ----

// fingerprint renders every observable of a run deterministically. Labels
// are compared by their base-parameter masks — the semantic identity of a
// label — not by raw table ids: the fast engine's merged control scopes can
// materialize different intermediate labels in the shared union table, but
// every observable label (results, records) must denote the identical
// parameter set.
func fingerprint(res *interp.Result, err error, eng *taint.Engine) string {
	var sb strings.Builder
	mask := func(l taint.Label) string {
		if eng == nil {
			return fmt.Sprintf("%d", l)
		}
		return fmt.Sprintf("%x(%s)", eng.Table.Mask(l), eng.Table.ExpandString(l))
	}
	if err != nil {
		fmt.Fprintf(&sb, "err=%v\n", err)
	}
	if res != nil {
		fmt.Fprintf(&sb, "value=%d label=%s instr=%d\n", res.Value, mask(res.Label), res.Instructions)
	}
	if eng == nil {
		return sb.String()
	}
	fmt.Fprintf(&sb, "base=%d\n", eng.Table.NumBase())
	for _, r := range eng.SortedLoops() {
		fmt.Fprintf(&sb, "loop %s#%d@%d path=%s labels=%s iter=%d entries=%d\n",
			r.Key.Func, r.Key.LoopID, r.Header, r.Key.CallPath,
			mask(r.Labels), r.Iterations, r.Entries)
	}
	branches := make([]*taint.BranchRecord, 0, len(eng.Branches))
	for _, r := range eng.Branches {
		branches = append(branches, r)
	}
	sort.Slice(branches, func(i, j int) bool {
		if branches[i].Key.Func != branches[j].Key.Func {
			return branches[i].Key.Func < branches[j].Key.Func
		}
		return branches[i].Key.Block < branches[j].Key.Block
	})
	for _, r := range branches {
		fmt.Fprintf(&sb, "branch %s@%d labels=%s taken=%d nottaken=%d exit=%v\n",
			r.Key.Func, r.Key.Block, mask(r.Labels),
			r.Taken, r.NotTaken, r.IsLoopExit)
	}
	libs := make([]*taint.LibCallRecord, 0, len(eng.LibCalls))
	for _, r := range eng.LibCalls {
		libs = append(libs, r)
	}
	sort.Slice(libs, func(i, j int) bool {
		a, b := libs[i].Key, libs[j].Key
		if a.CallPath != b.CallPath {
			return a.CallPath < b.CallPath
		}
		return a.Callee < b.Callee
	})
	for _, r := range libs {
		fmt.Fprintf(&sb, "libcall %s->%s path=%s labels=%s count=%d\n",
			r.Key.Caller, r.Key.Callee, r.Key.CallPath,
			mask(r.Labels), r.Count)
	}
	var recs []string
	for fn := range eng.RecursionWarnings {
		recs = append(recs, fn)
	}
	sort.Strings(recs)
	fmt.Fprintf(&sb, "recursion=%v\n", recs)
	return sb.String()
}

// eventTracer records the full tracer event stream.
type eventTracer struct{ events []string }

func (t *eventTracer) Enter(fn, path string) {
	t.events = append(t.events, "enter "+fn+" "+path)
}
func (t *eventTracer) Exit(fn, path string) {
	t.events = append(t.events, "exit "+fn+" "+path)
}
func (t *eventTracer) Work(fn string, u int64) {
	t.events = append(t.events, fmt.Sprintf("work %s %d", fn, u))
}

type runOpts struct {
	mode    interp.Mode
	fuel    int64
	tainted bool
	trace   bool
	// params overrides the tainted parameter names (default x, y, z).
	params []string
}

func runOne(t *testing.T, mod *ir.Module, args []int64, o runOpts) (string, []string) {
	t.Helper()
	var eng *taint.Engine
	mach := interp.NewMachine(mod)
	mach.Mode = o.mode
	mach.Fuel = o.fuel
	if o.tainted {
		eng = taint.NewEngine()
		mach.Taint = eng
	}
	var tr *eventTracer
	if o.trace {
		tr = &eventTracer{}
		mach.Tracer = tr
	}
	db := libdb.DefaultMPI()
	db.Bind(mach, eng, libdb.RunConfig{CommSize: 8, Rank: 0})
	var labels []taint.Label
	if o.tainted {
		params := o.params
		if params == nil {
			params = []string{"x", "y", "z"}
		}
		for _, p := range params {
			labels = append(labels, eng.Table.Base(p))
		}
	}
	res, err := mach.Run("main", args, labels)
	var events []string
	if tr != nil {
		events = tr.events
	}
	return fingerprint(res, err, eng), events
}

func diffModes(t *testing.T, mod *ir.Module, args []int64, fuel int64, tainted bool, params ...string) {
	t.Helper()
	ref, refEv := runOne(t, mod, args, runOpts{mode: interp.ModeReference, fuel: fuel, tainted: tainted, trace: true, params: params})
	for _, m := range []struct {
		name string
		mode interp.Mode
	}{{"fast", interp.ModeFast}, {"compiled", interp.ModeCompiled}} {
		got, gotEv := runOne(t, mod, args, runOpts{mode: m.mode, fuel: fuel, tainted: tainted, trace: true, params: params})
		if ref != got {
			t.Fatalf("%s engine diverged (tainted=%v fuel=%d):\n--- reference ---\n%s\n--- %s ---\n%s", m.name, tainted, fuel, ref, m.name, got)
		}
		if len(refEv) != len(gotEv) {
			t.Fatalf("tracer event count diverged: reference %d, %s %d", len(refEv), m.name, len(gotEv))
		}
		for i := range refEv {
			if refEv[i] != gotEv[i] {
				t.Fatalf("tracer event %d diverged: reference %q, %s %q", i, refEv[i], m.name, gotEv[i])
			}
		}
	}
}

// instructionsOf reruns main in reference mode and returns the executed
// instruction count, to derive truncation points for the fuel differential.
func instructionsOf(t *testing.T, mod *ir.Module, args []int64) int64 {
	t.Helper()
	mach := interp.NewMachine(mod)
	mach.Mode = interp.ModeReference
	libdb.DefaultMPI().Bind(mach, nil, libdb.RunConfig{CommSize: 8})
	res, err := mach.Run("main", args, nil)
	if err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	return res.Instructions
}

// TestDifferentialFastMatchesReference executes >=50 seeded random modules
// under both engines — tainted and untainted, full-fuel and truncated — and
// requires identical observables.
func TestDifferentialFastMatchesReference(t *testing.T) {
	shapes := []genConfig{
		{funcs: 0, stmts: 6, maxDepth: 2},
		{funcs: 2, stmts: 5, maxDepth: 2},
		{funcs: 3, stmts: 7, maxDepth: 3},
		{funcs: 4, stmts: 4, maxDepth: 2},
	}
	const seeds = 56
	for seed := int64(0); seed < seeds; seed++ {
		cfg := shapes[int(seed)%len(shapes)]
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mod := genModule(seed*7919+13, cfg)
			db := libdb.DefaultMPI()
			if err := ir.VerifyModule(mod, func(name string) bool {
				_, ok := db.Lookup(name)
				return ok
			}); err != nil {
				t.Fatalf("generator produced invalid module: %v", err)
			}
			args := []int64{seed % 9, (seed % 5) - 2, seed % 3}
			diffModes(t, mod, args, 1_000_000, true)
			diffModes(t, mod, args, 1_000_000, false)
			// Truncated-fuel differential: both engines must fail with
			// ErrFuel at the same point and report identical partial
			// instruction counts.
			if n := instructionsOf(t, mod, args); n > 4 {
				diffModes(t, mod, args, n/2, true)
				diffModes(t, mod, args, n-1, false)
			}
		})
	}
}

// ---- deep union chains over a wide parameter set ----

// genDeepModule builds a seeded module whose main takes nparams tainted
// parameters and funnels all of them through long union chains: running
// accumulators, store/load round trips through a scratch array, helper
// calls that union their arguments, and loops whose (tainted) bounds sink
// the accumulated masks into loop records. With the mask-native labels
// every step of the chain is a single OR; the reference engine must agree
// on every observable at every depth of the chain.
func genDeepModule(seed int64, nparams int) *ir.Module {
	r := rand.New(rand.NewSource(seed*104729 + 7))
	mod := ir.NewModule(fmt.Sprintf("deep%d", seed))

	// mix2(a, b): a+b via a store/load round trip (heap-carried union).
	hb := ir.NewFunc(mod, "mix2", 2)
	harr := hb.Alloc(hb.Const(2))
	hb.Store(harr, 0, hb.Add(hb.Param(0), hb.Param(1)))
	hb.Ret(hb.Load(harr, 0))
	hb.Finish()

	// fold3(a, b, c): unions b and c into a across a counted loop whose
	// bound is tainted by b (loop-exit sink of a partial chain).
	fb := ir.NewFunc(mod, "fold3", 3)
	facc := fb.Mov(fb.Param(0))
	fb.For(fb.Const(0), fb.Bin(ir.OpAnd, fb.Param(1), fb.Const(3)), fb.Const(1), func(i ir.Reg) {
		fb.MovTo(facc, fb.Add(facc, fb.Param(2)))
		fb.MovTo(facc, fb.Add(facc, i))
	})
	fb.Ret(facc)
	fb.Finish()

	b := ir.NewFunc(mod, "main", nparams)
	arr := b.Alloc(b.Const(int64(nparams)))
	for i := 0; i < nparams; i++ {
		b.Store(arr, int64(i), b.Param(i))
	}
	acc := b.Mov(b.Param(0))
	for i := 1; i < nparams; i++ {
		p := b.Param(i)
		switch r.Intn(4) {
		case 0:
			b.MovTo(acc, b.Call("mix2", acc, p))
		case 1:
			idx := b.Bin(ir.OpAnd, p, b.Const(int64(nparams-1)))
			b.MovTo(acc, b.Call("fold3", acc, p, b.Load(b.Add(arr, idx), 0)))
		case 2:
			// Cycle the chain through memory: store the accumulator over a
			// parameter slot, read a different slot back in.
			b.Store(arr, int64(i%nparams), acc)
			b.MovTo(acc, b.Add(acc, b.Load(b.Add(arr, b.Const(int64((i*3)%nparams))), 0)))
		default:
			b.MovTo(acc, b.Add(acc, p))
		}
		if r.Intn(3) == 0 {
			// A loop whose bound carries the whole chain so far: the exit
			// condition sinks a wide mask, and the body keeps growing it.
			b.For(b.Const(0), b.Bin(ir.OpAnd, acc, b.Const(3)), b.Const(1), func(j ir.Reg) {
				b.MovTo(acc, b.Add(acc, j))
				b.Store(arr, 0, acc)
			})
		}
	}
	// Library interaction: a taint source plus a send whose count carries
	// the full chain.
	b.Store(arr, 0, b.Call("MPI_Comm_size", b.Const(0), arr))
	b.MovTo(acc, b.Add(acc, b.Load(arr, 0)))
	b.Call("MPI_Send", arr, acc, b.Const(1))
	b.Ret(acc)
	b.Finish()
	return mod
}

// TestDifferentialDeepUnionChains exercises union chains that accumulate up
// to twelve base labels (plus the implicit p) through registers, the shadow
// heap, call arguments, and loop sinks, under both engines, full-fuel and
// truncated.
func TestDifferentialDeepUnionChains(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		nparams := 8 + int(seed%5)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mod := genDeepModule(seed, nparams)
			db := libdb.DefaultMPI()
			if err := ir.VerifyModule(mod, func(name string) bool {
				_, ok := db.Lookup(name)
				return ok
			}); err != nil {
				t.Fatalf("deep generator produced invalid module: %v", err)
			}
			params := make([]string, nparams)
			args := make([]int64, nparams)
			for i := range params {
				params[i] = fmt.Sprintf("q%02d", i)
				args[i] = int64((seed+int64(i*5))%11) - 3
			}
			diffModes(t, mod, args, 1_000_000, true, params...)
			diffModes(t, mod, args, 1_000_000, false, params...)
			if n := instructionsOf(t, mod, args); n > 4 {
				diffModes(t, mod, args, n/2, true, params...)
			}
		})
	}
}
