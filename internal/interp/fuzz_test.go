package interp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/libdb"
)

// FuzzDifferentialEngines is the three-way differential fuzz gate of the
// compiled engine tier: every input derives a seeded, always-terminating
// random module (the same generator as the table-driven differential
// tests) and executes it under the reference, fast, and compiled engines.
// All observables must match bit-for-bit — result value and label mask,
// instruction counts, loop records (iterations, entries, label masks),
// branch records, library-call records, recursion warnings, and the full
// tracer event stream; those are exactly the inputs the census and
// FuncDeps aggregations consume, so agreement here pins the whole
// pipeline. Each input also reruns with a truncated fuel budget derived
// from the fuzzed selector, sweeping abort points across superinstruction
// boundaries: the compiled engine must de-optimize to the oracle's exact
// partial instruction count.
//
// Run it as a fuzzer with:
//
//	go test ./internal/interp -run '^$' -fuzz FuzzDifferentialEngines -fuzztime 30s
//
// Under plain `go test` the committed corpus under
// testdata/fuzz/FuzzDifferentialEngines (plus the f.Add seeds) runs as
// regular regression cases.
func FuzzDifferentialEngines(f *testing.F) {
	f.Add(int64(13), int64(3), int64(-1), int64(2), uint16(0))
	f.Add(int64(7919), int64(8), int64(2), int64(1), uint16(7))
	f.Add(int64(31337), int64(0), int64(0), int64(0), uint16(255))
	f.Add(int64(-4), int64(5), int64(-3), int64(7), uint16(31))
	f.Fuzz(func(t *testing.T, seed, a0, a1, a2 int64, fuelSel uint16) {
		// Shape the module from the seed so one int64 explores the whole
		// generator space; bounds mirror the table-driven differential.
		cfg := genConfig{
			funcs:    int(uint64(seed) % 5),
			stmts:    2 + int(uint64(seed)>>3%7),
			maxDepth: 1 + int(uint64(seed)>>7%3),
		}
		mod := genModule(seed, cfg)
		db := libdb.DefaultMPI()
		if err := ir.VerifyModule(mod, func(name string) bool {
			_, ok := db.Lookup(name)
			return ok
		}); err != nil {
			t.Fatalf("generator produced invalid module: %v", err)
		}
		args := []int64{a0 % 16, a1 % 16, a2 % 16}
		// The budget bounds runaway generated modules (they terminate, but
		// possibly only after hundreds of millions of instructions) and
		// keeps fuzz throughput useful; an exhausted budget is itself a
		// compared observable — all three engines must abort identically.
		// 20k keeps the slowest engine (the tree-walking reference, run
		// four times per input) well under the fuzzer's per-exec hang
		// threshold while still covering thousands of loop iterations.
		const budget = 20_000
		diffModes(t, mod, args, budget, true)
		diffModes(t, mod, args, budget, false)

		// Probe the full run length cheaply (fast engine, untainted); when
		// the module finishes within budget, rerun with a fuzzed truncation
		// point: as the corpus grows this sweeps every fuel value crossing
		// a fused segment's pre-charge.
		probe := interp.NewMachine(mod)
		probe.Fuel = budget
		libdb.DefaultMPI().Bind(probe, nil, libdb.RunConfig{CommSize: 8})
		res, err := probe.Run("main", args, nil)
		if err != nil || res.Instructions <= 1 {
			return
		}
		fuel := 1 + int64(fuelSel)%res.Instructions
		diffModes(t, mod, args, fuel, true)
		diffModes(t, mod, args, fuel, false)
	})
}

// TestFuzzCorpusShapes pins the derivation from fuzz input to generator
// shape: if the mapping above changes, the committed corpus under
// testdata/fuzz no longer exercises the intended shapes and should be
// re-seeded.
func TestFuzzCorpusShapes(t *testing.T) {
	for _, seed := range []int64{13, 7919, 31337, -4} {
		cfg := genConfig{
			funcs:    int(uint64(seed) % 5),
			stmts:    2 + int(uint64(seed)>>3%7),
			maxDepth: 1 + int(uint64(seed)>>7%3),
		}
		if cfg.funcs < 0 || cfg.funcs > 4 || cfg.stmts < 2 || cfg.stmts > 8 || cfg.maxDepth < 1 || cfg.maxDepth > 3 {
			t.Fatalf("seed %d derives out-of-bounds shape %+v", seed, cfg)
		}
		if mod := genModule(seed, cfg); mod == nil {
			t.Fatalf("seed %d generated no module", seed)
		}
	}
}
