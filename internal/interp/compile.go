package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/taint"
)

// This file implements the compiled-closure engine (Machine.Mode ==
// ModeCompiled): a Compile pass lowers the predecoded instruction arrays
// into per-block chains of specialized Go step closures, executed by a
// block-threaded loop instead of the fast engine's per-instruction dispatch.
//
// Three ideas carry the speedup:
//
//   - Superinstructions: common 2-3 instruction sequences (const+work,
//     add+mov loop latches, load+op, op+store, and the cmp+br loop header)
//     fuse into one closure, and unconditional-jump chains flatten into
//     superblocks, so a canonical counted-loop iteration costs ~4 indirect
//     calls instead of ~8 dispatched instructions.
//
//   - Fuel batching with an exact de-optimization path: each straight-line
//     segment pre-charges its instruction count once. When the remaining
//     budget cannot cover a segment, the activation falls back to the fast
//     interpreter loop at the segment's first instruction (execLoopFrom),
//     so ErrFuel aborts at the identical instruction with the identical
//     partial count as the oracle engines. Segments end at call sites, so
//     a callee never observes fuel pre-charged for instructions that have
//     not executed yet.
//
//   - Taint-clean block splitting: every function is compiled into
//     taint-live block variants and, when the static inertness analysis
//     proves the function (and its whole call subtree) can never touch a
//     label — no loads, no extern calls — into provably-clean variants
//     that run with zero shadow-heap or label work. A tainted run enters
//     the clean variant whenever every argument label and the inherited
//     control context are None; loop/branch records still update, so the
//     observable census is bit-identical.
//
// The reference and fast engines are untouched oracles; the three-way
// differential and fuzz harnesses in this package pin the equivalence.

// Compiled is the compiled-closure artifact of one predecoded Program. It
// is immutable after Compile and safe for concurrent use by any number of
// machines; batch runs and the daemon cache one Compiled per spec digest
// (see core.Prepared). Closure chains are process-local by nature, so disk
// cache tiers persist only the receipts that let a restart rebuild them.
type Compiled struct {
	prog  *Program
	funcs []*cfunc
}

// Program returns the predecoded program this artifact was compiled from.
func (cp *Compiled) Program() *Program { return cp.prog }

// vkind selects the specialization variant of a compiled block.
type vkind uint8

const (
	// vkPlain: untainted run, no label banks maintained at all.
	vkPlain vkind = iota
	// vkTaint: full taint semantics (labels, scopes, records).
	vkTaint
	// vkClean: tainted run through a statically-inert function entered with
	// all-None labels; record bookkeeping only, zero label/shadow work.
	vkClean
)

// step executes one straight-line superinstruction. It returns false on an
// execution error (k.err and k.refund are then set).
type step func(k *kctx) bool

// termFn executes a block terminator and returns the next block index, or
// termRet after setting k.ret/k.retl.
type termFn func(k *kctx) int32

// termRet is the termFn sentinel for a function return.
const termRet = int32(-1)

// cseg is one fuel-accounting unit: a straight-line run of steps whose
// instruction count is pre-charged in one subtraction. pc is the index of
// its first instruction, where the exact-fuel fallback resumes.
type cseg struct {
	pc    int32
	cost  int64
	steps []step
}

// cblock is one compiled basic block (possibly a superblock spanning an
// unconditional-jump chain). The first segment is stored inline — call-free
// blocks (the overwhelming majority) execute with no segment-slice walk at
// all; only blocks containing calls carry trailing segments in more. The
// terminator's cost is charged with the block's final segment.
type cblock struct {
	cost  int64
	pc    int32
	steps []step
	more  []cseg
	term  termFn
}

// cfunc is one compiled function: the per-variant block arrays. clean is
// non-nil only for statically-inert functions.
type cfunc struct {
	df    *dfunc
	inert bool
	plain []cblock
	taint []cblock
	clean []cblock
}

// kctx is the execution context of one compiled activation. It is pooled
// inside the activation's fastFrame, so steady-state execution allocates
// nothing per call — and because activations at one depth overwhelmingly
// repeat the same callee, the pointer-heavy fields are guarded by cheap
// identity checks (gen for run-scoped fields, df/pathIdx for
// activation-scoped ones) so the common re-entry writes no pointers at all
// (every pointer store pays a GC write barrier).
type kctx struct {
	m      *Machine
	cp     *Compiled
	prog   *Program
	df     *dfunc
	fr     *fastFrame
	regs   []Value
	labels []taint.Label
	path   *pathNode
	eng    *taint.Engine
	cs     ctlState

	// gen matches Machine.kGen when m/cp/prog/eng are current for this run.
	gen     uint64
	pathIdx int32
	depth   int
	fuel    int64
	// refund is the count of pre-charged instructions the erroring segment
	// did not execute; the executor adds it back for an exact abort count.
	refund int64
	err    error
	ret    Value
	retl   taint.Label
}

// wr applies the canonical register-label write sequence of the taint
// variants: control-scope union, birth-epoch bookkeeping, label store. The
// control-flow path is split out (wrFlow) so this hot path stays under the
// inline budget and disappears into every step closure.
func (k *kctx) wr(dst int32, wl taint.Label) {
	if k.cs.cflow {
		k.wrFlow(dst, wl)
		return
	}
	k.labels[dst] = wl
}

//go:noinline
func (k *kctx) wrFlow(dst int32, wl taint.Label) {
	cs := &k.cs
	if len(cs.ctl) > 0 {
		wl |= cs.regCtl(dst)
	}
	if cs.born[dst] < cs.seqBase {
		cs.born[dst] = cs.writeSeq
	}
	cs.writeSeq++
	k.labels[dst] = wl
}

// fail records an execution error. sc points at the enclosing segment's
// total cost and thr is the instruction count consumed through (and
// including) the erroring instruction, so the refund leaves the machine
// charged for exactly the instructions that ran.
func (k *kctx) fail(sc *int64, thr int64, err error) bool {
	k.refund = *sc - thr
	k.err = err
	return false
}

// Compile lowers prog into closure chains for every function. The pass is
// pure (prog is read-only) and runs once per program; machines share the
// artifact freely.
func Compile(prog *Program) *Compiled {
	cp := &Compiled{prog: prog}
	inert := computeInert(prog)
	cp.funcs = make([]*cfunc, len(prog.funcs))
	for i, df := range prog.funcs {
		cp.funcs[i] = &cfunc{df: df, inert: inert[i]}
	}
	for i, df := range prog.funcs {
		cf := cp.funcs[i]
		cf.plain = compileFunc(cp, df, vkPlain)
		cf.taint = compileFunc(cp, df, vkTaint)
		if cf.inert {
			cf.clean = compileFunc(cp, df, vkClean)
		}
	}
	return cp
}

// computeInert runs the taint-inertness fixpoint: a function is inert when
// it has no loads, no extern call sites, and every callee is inert. Inert
// functions entered with all-None argument labels and a None control
// context provably never read or produce a label, which licenses the clean
// block variants.
func computeInert(prog *Program) []bool {
	inert := make([]bool, len(prog.funcs))
	for i, df := range prog.funcs {
		inert[i] = true
		for pc := range df.code {
			in := &df.code[pc]
			if in.op == ir.OpLoad || (in.op == ir.OpCall && df.calls[in.aux].callee < 0) {
				inert[i] = false
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i, df := range prog.funcs {
			if !inert[i] {
				continue
			}
			for ci := range df.calls {
				if c := df.calls[ci].callee; c >= 0 && !inert[c] {
					inert[i] = false
					changed = true
					break
				}
			}
		}
	}
	return inert
}

func compileFunc(cp *Compiled, df *dfunc, vk vkind) []cblock {
	blocks := make([]cblock, df.numBlocks)
	for b := int32(0); b < df.numBlocks; b++ {
		blocks[b] = compileChain(cp, df, vk, b)
	}
	return blocks
}

// compiler accumulates the segments of one block chain under construction.
type compiler struct {
	cp   *Compiled
	prog *Program
	df   *dfunc
	vk   vkind

	segs  []cseg
	steps []step
	segPC int32
	// segCost is shared with every erroring step of the current segment so
	// refunds can be computed against the final segment cost.
	segCost *int64
	through int64
}

func (c *compiler) open(pc int32) {
	c.segPC = pc
	c.segCost = new(int64)
	c.through = 0
	c.steps = nil
}

// put appends a step covering n instructions (nil steps contribute fuel
// accounting only — e.g. an unconditional jump with no edge effects).
func (c *compiler) put(st step, n int64) {
	c.through += n
	if st != nil {
		c.steps = append(c.steps, st)
	}
}

// cut closes the current segment and opens the next at nextPC.
func (c *compiler) cut(nextPC int32) {
	*c.segCost = c.through
	c.segs = append(c.segs, cseg{pc: c.segPC, cost: c.through, steps: c.steps})
	c.open(nextPC)
}

// close charges the terminator into the final segment and seals the block.
func (c *compiler) close(term termFn, termCost int64) cblock {
	c.through += termCost
	*c.segCost = c.through
	c.segs = append(c.segs, cseg{pc: c.segPC, cost: c.through, steps: c.steps})
	head := c.segs[0]
	return cblock{cost: head.cost, pc: head.pc, steps: head.steps, more: c.segs[1:], term: term}
}

// maxChain bounds superblock flattening across unconditional-jump chains
// (code duplication is linear in this bound).
const maxChain = 8

func isCmp(op ir.Opcode) bool {
	return op >= ir.OpCmpEQ && op <= ir.OpCmpGE
}

func isArith(op ir.Opcode) bool {
	return op == ir.OpAdd || op == ir.OpSub || op == ir.OpMul
}

// compileChain compiles the superblock starting at b0: b0's straight-line
// code plus every block reachable through unconditional jumps (cycle-free,
// bounded), flattened into fuel segments with fused superinstructions.
func compileChain(cp *Compiled, df *dfunc, vk vkind, b0 int32) cblock {
	c := &compiler{cp: cp, prog: cp.prog, df: df, vk: vk}
	c.open(df.blockPC[b0])
	var seenArr [maxChain]int32
	seen := seenArr[:0]
	seen = append(seen, b0)
	b := b0
	for {
		start := df.blockPC[b]
		tpc := start + int32(len(df.fn.Blocks[b].Instrs)) - 1
		t := &df.code[tpc]
		bodyEnd := tpc
		var fusedCmp *dinstr
		if t.op == ir.OpBr && bodyEnd > start {
			if p := &df.code[bodyEnd-1]; isCmp(p.op) && p.dst == t.a {
				fusedCmp = p
				bodyEnd--
			}
		}
		c.emitRange(start, bodyEnd)
		switch t.op {
		case ir.OpJmp:
			tgt := t.blk0
			inline := len(seen) < maxChain
			for _, s := range seen {
				if s == tgt {
					inline = false
					break
				}
			}
			if inline {
				c.emitJmpEdge(t)
				seen = append(seen, tgt)
				b = tgt
				continue
			}
			return c.close(c.jmpTerm(t), 1)
		case ir.OpBr:
			bi := &brInfo{
				bm: &df.branches[t.aux], a: t.a,
				blk0: t.blk0, blk1: t.blk1,
				evk0: t.evk0, evk1: t.evk1,
				evl0: t.evl0, evl1: t.evl1,
			}
			cost := int64(1)
			if fusedCmp != nil {
				bi.fused = true
				bi.cop = fusedCmp.op
				bi.cdst, bi.ca, bi.cb = fusedCmp.dst, fusedCmp.a, fusedCmp.b
				cost = 2
			}
			switch vk {
			case vkTaint:
				return c.close(bi.taintTerm, cost)
			case vkClean:
				return c.close(bi.cleanTerm, cost)
			default:
				return c.close(bi.plainTerm, cost)
			}
		case ir.OpSwitch:
			si := &swInfo{sw: &df.switches[t.aux], a: t.a}
			switch vk {
			case vkTaint:
				return c.close(si.taintTerm, 1)
			case vkClean:
				return c.close(si.cleanTerm, 1)
			default:
				return c.close(si.plainTerm, 1)
			}
		case ir.OpRet:
			ri := &retInfo{a: t.a}
			if vk == vkTaint {
				return c.close(ri.taintTerm, 1)
			}
			return c.close(ri.plainTerm, 1)
		default:
			panic(fmt.Sprintf("interp: block %d of %s has no terminator", b, df.name))
		}
	}
}

// emitRange lowers the straight-line instructions [start, end) with the
// pairwise superinstruction peephole. Call sites close their segment so
// callee fuel accounting stays exact.
func (c *compiler) emitRange(start, end int32) {
	code := c.df.code
	for pc := start; pc < end; {
		in := &code[pc]
		var nx *dinstr
		if pc+1 < end {
			nx = &code[pc+1]
		}
		switch {
		case in.op == ir.OpConst && nx != nil && nx.op == ir.OpWork && nx.a == in.dst:
			c.emitConstWork(in)
			pc += 2
		case in.op == ir.OpAdd && nx != nil && nx.op == ir.OpMov && nx.a == in.dst:
			c.emitAddMov(in, nx)
			pc += 2
		case in.op == ir.OpLoad && nx != nil && isArith(nx.op) && (nx.a == in.dst || nx.b == in.dst) && c.vk != vkClean &&
			pc+2 < end && code[pc+2].op == ir.OpStore && code[pc+2].b == nx.dst:
			c.emitLoadOpStore(in, nx, &code[pc+2])
			pc += 3
		case in.op == ir.OpLoad && nx != nil && isArith(nx.op) && (nx.a == in.dst || nx.b == in.dst) && c.vk != vkClean:
			c.emitLoadOp(in, nx)
			pc += 2
		case isArith(in.op) && nx != nil && nx.op == ir.OpStore && nx.b == in.dst:
			c.emitOpStore(in, nx)
			pc += 2
		case in.op == ir.OpCall:
			c.emitCall(in)
			c.cut(pc + 1)
			pc++
		default:
			c.emitOne(in, pc)
			pc++
		}
	}
}

// arith2 computes a two-operand arithmetic/comparison op (no error cases).
func arith2(op ir.Opcode, a, b Value) Value {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	default:
		return binop(op, a, b)
	}
}

// emitOne lowers a single unfused instruction.
func (c *compiler) emitOne(in *dinstr, pc int32) {
	dst, a, b := in.dst, in.a, in.b
	tainted := c.vk == vkTaint
	switch in.op {
	case ir.OpConst:
		imm := in.imm
		if tainted {
			c.put(func(k *kctx) bool { k.regs[dst] = imm; k.wr(dst, taint.None); return true }, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = imm; return true }, 1)
		}
	case ir.OpMov:
		if tainted {
			c.put(func(k *kctx) bool { k.regs[dst] = k.regs[a]; k.wr(dst, k.labels[a]); return true }, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = k.regs[a]; return true }, 1)
		}
	case ir.OpAdd:
		if tainted {
			c.put(func(k *kctx) bool {
				k.regs[dst] = k.regs[a] + k.regs[b]
				k.wr(dst, k.labels[a]|k.labels[b])
				return true
			}, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = k.regs[a] + k.regs[b]; return true }, 1)
		}
	case ir.OpSub:
		if tainted {
			c.put(func(k *kctx) bool {
				k.regs[dst] = k.regs[a] - k.regs[b]
				k.wr(dst, k.labels[a]|k.labels[b])
				return true
			}, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = k.regs[a] - k.regs[b]; return true }, 1)
		}
	case ir.OpMul:
		if tainted {
			c.put(func(k *kctx) bool {
				k.regs[dst] = k.regs[a] * k.regs[b]
				k.wr(dst, k.labels[a]|k.labels[b])
				return true
			}, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = k.regs[a] * k.regs[b]; return true }, 1)
		}
	case ir.OpCmpLT:
		if tainted {
			c.put(func(k *kctx) bool {
				k.regs[dst] = boolVal(k.regs[a] < k.regs[b])
				k.wr(dst, k.labels[a]|k.labels[b])
				return true
			}, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = boolVal(k.regs[a] < k.regs[b]); return true }, 1)
		}
	case ir.OpNeg:
		if tainted {
			c.put(func(k *kctx) bool { k.regs[dst] = -k.regs[a]; k.wr(dst, k.labels[a]); return true }, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = -k.regs[a]; return true }, 1)
		}
	case ir.OpNot:
		if tainted {
			c.put(func(k *kctx) bool {
				k.regs[dst] = boolVal(k.regs[a] == 0)
				k.wr(dst, k.labels[a])
				return true
			}, 1)
		} else {
			c.put(func(k *kctx) bool { k.regs[dst] = boolVal(k.regs[a] == 0); return true }, 1)
		}
	case ir.OpLoad:
		c.emitLoad(in)
	case ir.OpStore:
		c.emitStore(in)
	case ir.OpAlloc:
		c.emitAlloc(in)
	case ir.OpGlobal:
		c.emitGlobal(in, pc)
	case ir.OpWork:
		c.put(func(k *kctx) bool {
			if tr := k.m.Tracer; tr != nil {
				tr.Work(k.df.name, k.regs[a])
			}
			return true
		}, 1)
	default:
		// Remaining two-operand ops (div/mod/bitwise/shifts/min/max and the
		// non-specialized comparisons) share the generic arithmetic step.
		op := in.op
		hasB := b >= 0
		if tainted {
			if hasB {
				c.put(func(k *kctx) bool {
					k.regs[dst] = binop(op, k.regs[a], k.regs[b])
					k.wr(dst, k.labels[a]|k.labels[b])
					return true
				}, 1)
			} else {
				c.put(func(k *kctx) bool {
					k.regs[dst] = binop(op, k.regs[a], 0)
					k.wr(dst, k.labels[a])
					return true
				}, 1)
			}
		} else {
			if hasB {
				c.put(func(k *kctx) bool { k.regs[dst] = binop(op, k.regs[a], k.regs[b]); return true }, 1)
			} else {
				c.put(func(k *kctx) bool { k.regs[dst] = binop(op, k.regs[a], 0); return true }, 1)
			}
		}
	}
}

func (c *compiler) emitLoad(in *dinstr) {
	if c.vk == vkClean {
		panic("interp: compiling clean variant with a load (inertness analysis bug)")
	}
	dst, a, imm := in.dst, in.a, in.imm
	name := c.df.name
	sc, thr := c.segCost, c.through+1
	if c.vk == vkTaint {
		c.put(func(k *kctx) bool {
			m := k.m
			addr := k.regs[a] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: load out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			k.regs[dst] = m.heap[addr]
			sl := taint.None
			if addr < Value(len(m.shadow)) {
				sl = m.shadow[addr]
			}
			k.wr(dst, sl|k.labels[a])
			return true
		}, 1)
		return
	}
	c.put(func(k *kctx) bool {
		m := k.m
		addr := k.regs[a] + imm
		if uint64(addr) >= uint64(len(m.heap)) {
			return k.fail(sc, thr, fmt.Errorf("%s: interp: load out of bounds at %d (heap %d)", name, addr, len(m.heap)))
		}
		k.regs[dst] = m.heap[addr]
		return true
	}, 1)
}

func (c *compiler) emitStore(in *dinstr) {
	a, b, imm := in.a, in.b, in.imm
	name := c.df.name
	sc, thr := c.segCost, c.through+1
	switch c.vk {
	case vkTaint:
		c.put(func(k *kctx) bool {
			m := k.m
			addr := k.regs[a] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			m.heap[addr] = k.regs[b]
			l := k.labels[b] | k.labels[a]
			cs := &k.cs
			if cs.cflow && (len(cs.ctl) > 0 || cs.ctlBase != taint.None) {
				l |= cs.memCtl()
			}
			if addr < Value(len(m.shadow)) {
				m.shadow[addr] = l
			} else if l != taint.None {
				m.growShadow(addr, l)
			}
			return true
		}, 1)
	case vkClean:
		// Every live label is None in a clean activation, so a store's only
		// shadow effect is clearing a previously-tainted cell; cells beyond
		// the shadow prefix are already untainted.
		c.put(func(k *kctx) bool {
			m := k.m
			addr := k.regs[a] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			m.heap[addr] = k.regs[b]
			if addr < Value(len(m.shadow)) {
				m.shadow[addr] = taint.None
			}
			return true
		}, 1)
	default:
		c.put(func(k *kctx) bool {
			m := k.m
			addr := k.regs[a] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			m.heap[addr] = k.regs[b]
			return true
		}, 1)
	}
}

func (c *compiler) emitAlloc(in *dinstr) {
	dst, a := in.dst, in.a
	name := c.df.name
	sc, thr := c.segCost, c.through+1
	tainted := c.vk == vkTaint
	c.put(func(k *kctx) bool {
		base, err := k.m.alloc(k.regs[a])
		if err != nil {
			return k.fail(sc, thr, fmt.Errorf("%s: %w", name, err))
		}
		k.regs[dst] = base
		if tainted {
			k.wr(dst, taint.None)
		}
		return true
	}, 1)
}

func (c *compiler) emitGlobal(in *dinstr, pc int32) {
	dst := in.dst
	if in.aux < 0 {
		name, sym := c.df.name, c.df.unknownGlob[pc]
		sc, thr := c.segCost, c.through+1
		c.put(func(k *kctx) bool {
			return k.fail(sc, thr, fmt.Errorf("%s: interp: unknown global %q", name, sym))
		}, 1)
		return
	}
	ord := in.aux
	if c.vk == vkTaint {
		c.put(func(k *kctx) bool { k.regs[dst] = k.m.globalBase[ord]; k.wr(dst, taint.None); return true }, 1)
	} else {
		c.put(func(k *kctx) bool { k.regs[dst] = k.m.globalBase[ord]; return true }, 1)
	}
}

// emitConstWork fuses Const dst, imm; Work dst — the canonical loop body
// produced by the IR builder's Work lowering.
func (c *compiler) emitConstWork(in *dinstr) {
	dst, imm := in.dst, in.imm
	if c.vk == vkTaint {
		c.put(func(k *kctx) bool {
			k.regs[dst] = imm
			k.wr(dst, taint.None)
			if tr := k.m.Tracer; tr != nil {
				tr.Work(k.df.name, imm)
			}
			return true
		}, 2)
		return
	}
	c.put(func(k *kctx) bool {
		k.regs[dst] = imm
		if tr := k.m.Tracer; tr != nil {
			tr.Work(k.df.name, imm)
		}
		return true
	}, 2)
}

// emitAddMov fuses Add t, a, b; Mov d, t — the canonical loop-latch
// increment produced by the IR builder's For lowering.
func (c *compiler) emitAddMov(in, nx *dinstr) {
	dst, a, b, d2 := in.dst, in.a, in.b, nx.dst
	if c.vk == vkTaint {
		c.put(func(k *kctx) bool {
			k.regs[dst] = k.regs[a] + k.regs[b]
			k.wr(dst, k.labels[a]|k.labels[b])
			k.regs[d2] = k.regs[dst]
			k.wr(d2, k.labels[dst])
			return true
		}, 2)
		return
	}
	c.put(func(k *kctx) bool {
		v := k.regs[a] + k.regs[b]
		k.regs[dst] = v
		k.regs[d2] = v
		return true
	}, 2)
}

// emitLoadOp fuses Load t; <arith> d, x, y where the arithmetic consumes
// the loaded value.
func (c *compiler) emitLoadOp(in, nx *dinstr) {
	dst, a, imm := in.dst, in.a, in.imm
	op, d2, a2, b2 := nx.op, nx.dst, nx.a, nx.b
	name := c.df.name
	sc, thr := c.segCost, c.through+1
	if c.vk == vkTaint {
		c.put(func(k *kctx) bool {
			m := k.m
			addr := k.regs[a] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: load out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			k.regs[dst] = m.heap[addr]
			sl := taint.None
			if addr < Value(len(m.shadow)) {
				sl = m.shadow[addr]
			}
			k.wr(dst, sl|k.labels[a])
			k.regs[d2] = arith2(op, k.regs[a2], k.regs[b2])
			k.wr(d2, k.labels[a2]|k.labels[b2])
			return true
		}, 2)
		return
	}
	c.put(func(k *kctx) bool {
		m := k.m
		addr := k.regs[a] + imm
		if uint64(addr) >= uint64(len(m.heap)) {
			return k.fail(sc, thr, fmt.Errorf("%s: interp: load out of bounds at %d (heap %d)", name, addr, len(m.heap)))
		}
		k.regs[dst] = m.heap[addr]
		k.regs[d2] = arith2(op, k.regs[a2], k.regs[b2])
		return true
	}, 2)
}

// emitLoadOpStore fuses the read-modify-write kernel idiom into one step:
// Load t, p; <arith> u, f(t); Store q, u. Three instructions, one call.
func (c *compiler) emitLoadOpStore(in, nx, st *dinstr) {
	dst, a, imm := in.dst, in.a, in.imm
	op, d2, a2, b2 := nx.op, nx.dst, nx.a, nx.b
	sa, simm := st.a, st.imm
	name := c.df.name
	sc, thrL, thrS := c.segCost, c.through+1, c.through+3
	if c.vk == vkTaint {
		c.put(func(k *kctx) bool {
			m := k.m
			addr := k.regs[a] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thrL, fmt.Errorf("%s: interp: load out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			k.regs[dst] = m.heap[addr]
			sl := taint.None
			if addr < Value(len(m.shadow)) {
				sl = m.shadow[addr]
			}
			k.wr(dst, sl|k.labels[a])
			v := arith2(op, k.regs[a2], k.regs[b2])
			k.regs[d2] = v
			k.wr(d2, k.labels[a2]|k.labels[b2])
			saddr := k.regs[sa] + simm
			if uint64(saddr) >= uint64(len(m.heap)) {
				return k.fail(sc, thrS, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, saddr, len(m.heap)))
			}
			m.heap[saddr] = v
			l := k.labels[d2] | k.labels[sa]
			cs := &k.cs
			if cs.cflow && (len(cs.ctl) > 0 || cs.ctlBase != taint.None) {
				l |= cs.memCtl()
			}
			if saddr < Value(len(m.shadow)) {
				m.shadow[saddr] = l
			} else if l != taint.None {
				m.growShadow(saddr, l)
			}
			return true
		}, 3)
		return
	}
	c.put(func(k *kctx) bool {
		m := k.m
		addr := k.regs[a] + imm
		if uint64(addr) >= uint64(len(m.heap)) {
			return k.fail(sc, thrL, fmt.Errorf("%s: interp: load out of bounds at %d (heap %d)", name, addr, len(m.heap)))
		}
		k.regs[dst] = m.heap[addr]
		v := arith2(op, k.regs[a2], k.regs[b2])
		k.regs[d2] = v
		saddr := k.regs[sa] + simm
		if uint64(saddr) >= uint64(len(m.heap)) {
			return k.fail(sc, thrS, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, saddr, len(m.heap)))
		}
		m.heap[saddr] = v
		return true
	}, 3)
}

// emitOpStore fuses <arith> t, x, y; Store addr, t.
func (c *compiler) emitOpStore(in, nx *dinstr) {
	op, dst, a, b := in.op, in.dst, in.a, in.b
	sa, imm := nx.a, nx.imm
	name := c.df.name
	sc, thr := c.segCost, c.through+2
	switch c.vk {
	case vkTaint:
		c.put(func(k *kctx) bool {
			m := k.m
			v := arith2(op, k.regs[a], k.regs[b])
			k.regs[dst] = v
			k.wr(dst, k.labels[a]|k.labels[b])
			addr := k.regs[sa] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			m.heap[addr] = v
			l := k.labels[dst] | k.labels[sa]
			cs := &k.cs
			if cs.cflow && (len(cs.ctl) > 0 || cs.ctlBase != taint.None) {
				l |= cs.memCtl()
			}
			if addr < Value(len(m.shadow)) {
				m.shadow[addr] = l
			} else if l != taint.None {
				m.growShadow(addr, l)
			}
			return true
		}, 2)
	case vkClean:
		c.put(func(k *kctx) bool {
			m := k.m
			v := arith2(op, k.regs[a], k.regs[b])
			k.regs[dst] = v
			addr := k.regs[sa] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			m.heap[addr] = v
			if addr < Value(len(m.shadow)) {
				m.shadow[addr] = taint.None
			}
			return true
		}, 2)
	default:
		c.put(func(k *kctx) bool {
			m := k.m
			v := arith2(op, k.regs[a], k.regs[b])
			k.regs[dst] = v
			addr := k.regs[sa] + imm
			if uint64(addr) >= uint64(len(m.heap)) {
				return k.fail(sc, thr, fmt.Errorf("%s: interp: store out of bounds at %d (heap %d)", name, addr, len(m.heap)))
			}
			m.heap[addr] = v
			return true
		}, 2)
	}
}

// emitJmpEdge lowers an unconditional jump flattened inside a superblock:
// fuel plus the edge's scope-close and loop-event effects.
func (c *compiler) emitJmpEdge(t *dinstr) {
	blk, evk, evl := t.blk0, t.evk0, t.evl0
	switch c.vk {
	case vkTaint:
		c.put(func(k *kctx) bool {
			cs := &k.cs
			if cs.cflow && len(cs.ctl) > 0 {
				cs.closeAt(blk)
			}
			if evk != evNone {
				k.m.loopEvent(k.df, k.path, evk, evl, k.eng)
			}
			return true
		}, 1)
	case vkClean:
		if evk != evNone {
			c.put(func(k *kctx) bool {
				k.m.loopEvent(k.df, k.path, evk, evl, k.eng)
				return true
			}, 1)
		} else {
			c.put(nil, 1)
		}
	default:
		c.put(nil, 1)
	}
}

// jmpTerm lowers an unconditional jump that ends a superblock chain.
func (c *compiler) jmpTerm(t *dinstr) termFn {
	blk, evk, evl := t.blk0, t.evk0, t.evl0
	switch c.vk {
	case vkTaint:
		return func(k *kctx) int32 {
			cs := &k.cs
			if cs.cflow && len(cs.ctl) > 0 {
				cs.closeAt(blk)
			}
			if evk != evNone {
				k.m.loopEvent(k.df, k.path, evk, evl, k.eng)
			}
			return blk
		}
	case vkClean:
		if evk != evNone {
			return func(k *kctx) int32 {
				k.m.loopEvent(k.df, k.path, evk, evl, k.eng)
				return blk
			}
		}
		return func(k *kctx) int32 { return blk }
	default:
		return func(k *kctx) int32 { return blk }
	}
}

// brInfo carries the captured state of one conditional-branch terminator,
// optionally fused with the comparison that computes its condition.
type brInfo struct {
	bm         *dbranch
	a          int32
	blk0, blk1 int32
	evk0, evk1 uint8
	evl0, evl1 int32

	fused        bool
	cop          ir.Opcode
	cdst, ca, cb int32
}

func (bi *brInfo) plainTerm(k *kctx) int32 {
	if bi.fused {
		k.regs[bi.cdst] = binop(bi.cop, k.regs[bi.ca], k.regs[bi.cb])
	}
	if k.regs[bi.a] != 0 {
		return bi.blk0
	}
	return bi.blk1
}

func (bi *brInfo) taintTerm(k *kctx) int32 {
	if bi.fused {
		k.regs[bi.cdst] = binop(bi.cop, k.regs[bi.ca], k.regs[bi.cb])
		k.wr(bi.cdst, k.labels[bi.ca]|k.labels[bi.cb])
	}
	cond := k.regs[bi.a] != 0
	condLabel := k.labels[bi.a]
	m, eng, df, path := k.m, k.eng, k.df, k.path
	bm := bi.bm
	for _, li := range bm.exits {
		r := m.loopRec(df, path, li, eng)
		r.Labels |= condLabel
	}
	br := m.branchRec(df, bm.block, eng)
	br.Labels |= condLabel
	br.IsLoopExit = br.IsLoopExit || len(bm.exits) > 0
	cs := &k.cs
	if cond {
		br.Taken++
	} else {
		br.NotTaken++
	}
	if cs.cflow && condLabel != taint.None {
		cs.push(int(bm.joinBlk), condLabel, len(bm.exits) > 0)
	}
	if cond {
		if cs.cflow && len(cs.ctl) > 0 {
			cs.closeAt(bi.blk0)
		}
		if bi.evk0 != evNone {
			m.loopEvent(df, path, bi.evk0, bi.evl0, eng)
		}
		return bi.blk0
	}
	if cs.cflow && len(cs.ctl) > 0 {
		cs.closeAt(bi.blk1)
	}
	if bi.evk1 != evNone {
		m.loopEvent(df, path, bi.evk1, bi.evl1, eng)
	}
	return bi.blk1
}

// cleanTerm keeps the record bookkeeping of taintTerm with the condition
// label known None: loop-exit and branch records are still created and
// counted (census parity), but no label unions or control scopes occur.
func (bi *brInfo) cleanTerm(k *kctx) int32 {
	if bi.fused {
		k.regs[bi.cdst] = binop(bi.cop, k.regs[bi.ca], k.regs[bi.cb])
	}
	cond := k.regs[bi.a] != 0
	m, eng, df, path := k.m, k.eng, k.df, k.path
	bm := bi.bm
	for _, li := range bm.exits {
		m.loopRec(df, path, li, eng)
	}
	br := m.branchRec(df, bm.block, eng)
	br.IsLoopExit = br.IsLoopExit || len(bm.exits) > 0
	if cond {
		br.Taken++
		if bi.evk0 != evNone {
			m.loopEvent(df, path, bi.evk0, bi.evl0, eng)
		}
		return bi.blk0
	}
	br.NotTaken++
	if bi.evk1 != evNone {
		m.loopEvent(df, path, bi.evk1, bi.evl1, eng)
	}
	return bi.blk1
}

// swInfo carries the captured state of one switch terminator.
type swInfo struct {
	sw *dswitch
	a  int32
}

func (si *swInfo) pick(k *kctx) *dcase {
	sw := si.sw
	v := k.regs[si.a]
	for i := range sw.cases {
		if sw.cases[i].val == v {
			return &sw.cases[i]
		}
	}
	return &sw.def
}

func (si *swInfo) plainTerm(k *kctx) int32 {
	return si.pick(k).blk
}

func (si *swInfo) taintTerm(k *kctx) int32 {
	tgt := si.pick(k)
	m, eng, df, path := k.m, k.eng, k.df, k.path
	sw := si.sw
	condLabel := k.labels[si.a]
	for _, li := range sw.exits {
		r := m.loopRec(df, path, li, eng)
		r.Labels |= condLabel
	}
	cs := &k.cs
	if cs.cflow && condLabel != taint.None {
		cs.push(int(sw.joinBlk), condLabel, len(sw.exits) > 0)
	}
	if cs.cflow && len(cs.ctl) > 0 {
		cs.closeAt(tgt.blk)
	}
	if tgt.evk != evNone {
		m.loopEvent(df, path, tgt.evk, tgt.evl, eng)
	}
	return tgt.blk
}

func (si *swInfo) cleanTerm(k *kctx) int32 {
	tgt := si.pick(k)
	m, eng, df, path := k.m, k.eng, k.df, k.path
	for _, li := range si.sw.exits {
		m.loopRec(df, path, li, eng)
	}
	if tgt.evk != evNone {
		m.loopEvent(df, path, tgt.evk, tgt.evl, eng)
	}
	return tgt.blk
}

// retInfo carries the captured state of one return terminator.
type retInfo struct{ a int32 }

func (ri *retInfo) taintTerm(k *kctx) int32 {
	if ri.a < 0 {
		k.ret, k.retl = 0, taint.None
	} else {
		k.ret, k.retl = k.regs[ri.a], k.labels[ri.a]
	}
	return termRet
}

func (ri *retInfo) plainTerm(k *kctx) int32 {
	if ri.a < 0 {
		k.ret = 0
	} else {
		k.ret = k.regs[ri.a]
	}
	k.retl = taint.None
	return termRet
}

// emitCall lowers one call site. The segment is cut immediately after by
// emitRange, so a call is always the final — and thus exactly-charged —
// instruction of its segment, and callees see a fuel budget that reflects
// only instructions that actually ran.
func (c *compiler) emitCall(in *dinstr) {
	site := &c.df.calls[in.aux]
	dst := in.dst
	sc, thr := c.segCost, c.through+1
	if site.callee >= 0 {
		if int32(len(site.args)) != site.numParams {
			sym, n, want := site.sym, len(site.args), site.numParams
			c.put(func(k *kctx) bool {
				return k.fail(sc, thr, fmt.Errorf("interp: call %s with %d args, wants %d", sym, n, want))
			}, 1)
			return
		}
		cdf := c.prog.funcs[site.callee]
		ccf := c.cp.funcs[site.callee]
		switch c.vk {
		case vkTaint:
			c.put(moduleCallTaint(site, cdf, ccf, dst, sc, thr), 1)
		case vkClean:
			if !ccf.inert {
				panic("interp: clean variant calling a non-inert callee (inertness analysis bug)")
			}
			c.put(moduleCallClean(site, cdf, ccf, dst, sc, thr), 1)
		default:
			c.put(moduleCallPlain(site, cdf, ccf, dst, sc, thr), 1)
		}
		return
	}
	if c.vk == vkClean {
		panic("interp: compiling clean variant with an extern call (inertness analysis bug)")
	}
	c.put(externCallStep(site, dst, sc, thr, c.vk == vkTaint), 1)
}

// resolveChild interns (with site-cache memoization) the callee context.
// The hit path is inlined at every call step; only the first resolution per
// (site, parent) pays the childPath walk.
func resolveChild(k *kctx, site *dcall, siteID int32, tainting bool) int32 {
	m := k.m
	if scv := m.siteCache[siteID]; scv != 0 && int32(scv>>32) == k.pathIdx {
		return int32(scv)
	}
	childIdx := m.childPath(k.prog, k.pathIdx, site, tainting)
	m.siteCache[siteID] = int64(k.pathIdx)<<32 | int64(childIdx)
	return childIdx
}

func moduleCallTaint(site *dcall, cdf *dfunc, ccf *cfunc, dst int32, sc *int64, thr int64) step {
	siteID := site.siteID
	args := site.args
	return func(k *kctx) bool {
		m := k.m
		cs := &k.cs
		childCtl := taint.None
		if cs.cflow && (len(cs.ctl) > 0 || cs.ctlBase != taint.None) {
			childCtl = cs.memCtl()
		}
		childIdx := resolveChild(k, site, siteID, true)
		cfr := m.frame(k.depth+1, cdf)
		am := taint.None
		for i, r := range args {
			cfr.regs[i] = k.regs[r]
			l := k.labels[r]
			cfr.labels[i] = l
			am |= l
		}
		m.fuel = k.fuel
		var v Value
		var l taint.Label
		var err error
		if ccf.clean != nil && am == taint.None && childCtl == taint.None {
			v, l, err = m.execCompiled(k.cp, ccf, ccf.clean, cfr, childIdx, taint.None, k.depth+1, vkClean)
		} else {
			v, l, err = m.execCompiled(k.cp, ccf, ccf.taint, cfr, childIdx, childCtl, k.depth+1, vkTaint)
		}
		if err != nil {
			// The callee already set m.fuel at its abort point; re-sync so
			// the executor's refund arithmetic leaves it untouched.
			k.fuel = m.fuel
			return k.fail(sc, thr, err)
		}
		k.fuel = m.fuel
		k.regs[dst] = v
		k.wr(dst, l)
		return true
	}
}

func moduleCallClean(site *dcall, cdf *dfunc, ccf *cfunc, dst int32, sc *int64, thr int64) step {
	siteID := site.siteID
	args := site.args
	return func(k *kctx) bool {
		m := k.m
		childIdx := resolveChild(k, site, siteID, true)
		cfr := m.frame(k.depth+1, cdf)
		for i, r := range args {
			cfr.regs[i] = k.regs[r]
		}
		m.fuel = k.fuel
		v, _, err := m.execCompiled(k.cp, ccf, ccf.clean, cfr, childIdx, taint.None, k.depth+1, vkClean)
		if err != nil {
			k.fuel = m.fuel
			return k.fail(sc, thr, err)
		}
		k.fuel = m.fuel
		k.regs[dst] = v
		return true
	}
}

func moduleCallPlain(site *dcall, cdf *dfunc, ccf *cfunc, dst int32, sc *int64, thr int64) step {
	siteID := site.siteID
	args := site.args
	return func(k *kctx) bool {
		m := k.m
		childIdx := resolveChild(k, site, siteID, false)
		cfr := m.frame(k.depth+1, cdf)
		for i, r := range args {
			cfr.regs[i] = k.regs[r]
		}
		m.fuel = k.fuel
		v, _, err := m.execCompiled(k.cp, ccf, ccf.plain, cfr, childIdx, taint.None, k.depth+1, vkPlain)
		if err != nil {
			k.fuel = m.fuel
			return k.fail(sc, thr, err)
		}
		k.fuel = m.fuel
		k.regs[dst] = v
		return true
	}
}

func externCallStep(site *dcall, dst int32, sc *int64, thr int64, labeling bool) step {
	return func(k *kctx) bool {
		m := k.m
		ext := m.externSlots[site.externOrd]
		if ext == nil {
			ext = m.Externs[site.sym]
			if ext == nil {
				return k.fail(sc, thr, fmt.Errorf("interp: unresolved call target %q", site.sym))
			}
			m.externSlots[site.externOrd] = ext
		}
		childIdx := resolveChild(k, site, site.siteID, labeling)
		fr := k.fr
		n := len(site.args)
		if cap(fr.args) < n {
			fr.args = make([]Value, n)
			fr.argLabels = make([]taint.Label, n)
		}
		eargs := fr.args[:n]
		elabels := fr.argLabels[:n]
		if labeling {
			for i, r := range site.args {
				eargs[i] = k.regs[r]
				elabels[i] = k.labels[r]
			}
		} else {
			for i, r := range site.args {
				eargs[i] = k.regs[r]
			}
		}
		child := m.paths[childIdx]
		if m.Tracer != nil {
			m.Tracer.Enter(site.sym, child.str)
		}
		cc := &fr.ext
		cc.M = m
		cc.Name = site.sym
		cc.Args = eargs
		cc.ArgLabels = elabels
		cc.CallPath = child.str
		cc.RetLabel = taint.None
		cc.recCache = &child.libRec
		v, err := ext(cc)
		if m.Tracer != nil {
			m.Tracer.Exit(site.sym, child.str)
		}
		if err != nil {
			return k.fail(sc, thr, fmt.Errorf("extern %s: %w", site.sym, err))
		}
		k.regs[dst] = v
		if labeling {
			k.wr(dst, cc.RetLabel)
		}
		return true
	}
}
