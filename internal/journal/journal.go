// Package journal is the daemon's durable job journal: an append-only,
// CRC-framed, fsynced record log under <cache-dir>/journal/, one file
// per in-flight job keyed by the job's content address
// (SpecDigest+DesignDigest). The scheduler journals job acceptance,
// each completed design-point result, and terminal state; a restarted
// daemon reloads open journals and resumes sweeps from the last
// journaled point instead of index 0, and the merged output stays
// byte-identical to an uninterrupted run because completed points are
// replayed from their journaled bytes.
//
// Two invariants define the package:
//
//  1. The journal is the source of truth for open jobs. A record is
//     only considered durable once its frame (length + CRC32 + payload)
//     has been written and the file fsynced; anything after the first
//     torn or corrupt frame is discarded on open (torn-tail recovery),
//     so a crash mid-append loses at most the record being written —
//     never an earlier one, and never the file's integrity.
//
//  2. Resume is invisible in the artifact. Journaled point records hold
//     the exact bytes the client stream carries, so replay + continue
//     concatenates to the same byte sequence an uninterrupted run
//     produces.
//
// A job journal that reaches its terminal record ("done") is compacted:
// the file is removed, because every result it holds is recoverable
// from the content-addressed caches. Journals therefore only accumulate
// for jobs that are genuinely open.
package journal

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// header is the first line of every journal file; a file that does not
// start with it is treated as damaged and restarted from empty.
const header = "perftaint-journal/1\n"

// Record kinds journaled over a job's lifetime.
const (
	// TypeAccept is the first record of every journal: the job's identity
	// and shape, written before any work runs.
	TypeAccept = "accept"
	// TypePoint records one completed sweep design point: its index and
	// the exact stream-line bytes the client saw (or will see on replay).
	TypePoint = "point"
	// TypeSample records one completed model-extraction design point: the
	// measured counters keyed by absolute design index, enough to re-feed
	// the fit pipeline deterministically.
	TypeSample = "sample"
	// TypeDone is the terminal record; a journal ending in it is compacted
	// (removed) because the job's results live in the content caches.
	TypeDone = "done"
)

// Job kinds (the Kind field of Record and the namespace of journal
// keys).
const (
	// KindSweep journals a streamed sweep (/v1/sweep).
	KindSweep = "sweep"
	// KindModel journals a model extraction (/v1/models).
	KindModel = "model"
)

// Record is one journaled event. A record's wire form is a CRC-framed
// JSON payload; unknown fields are preserved by consumers re-encoding
// raw bytes rather than round-tripping through this struct.
type Record struct {
	// Type is one of TypeAccept, TypePoint, TypeSample, TypeDone.
	Type string `json:"type"`
	// Kind (accept only) is the job kind, KindSweep or KindModel.
	Kind string `json:"kind,omitempty"`
	// Key (accept only) is the job's content address.
	Key string `json:"key,omitempty"`
	// App (accept only) names the application.
	App string `json:"app,omitempty"`
	// SpecDigest (accept only) pins the prepared spec content.
	SpecDigest string `json:"spec_digest,omitempty"`
	// N (accept only) is the design size the job was accepted with.
	N int `json:"n,omitempty"`
	// FirstJobID (sweep accept only) is the numeric scheduler ID reserved
	// for design point 0; points i maps to job-(FirstJobID+i).
	FirstJobID uint64 `json:"first_job_id,omitempty"`
	// Index (point/sample) is the absolute design-point index.
	Index int `json:"index,omitempty"`
	// Line (point only) is the exact NDJSON stream line for the point,
	// without the trailing newline.
	Line json.RawMessage `json:"line,omitempty"`
	// Iterations (sample only) is the per-function iteration census.
	Iterations map[string]int64 `json:"iterations,omitempty"`
	// Instructions (sample only) is the interpreter instruction count.
	Instructions int64 `json:"instructions,omitempty"`
}

// Stats is a point-in-time snapshot of journal activity, exported via
// /v1/stats and /metrics.
type Stats struct {
	// OpenJobs is the number of journal files currently on disk (jobs
	// accepted but not yet terminal).
	OpenJobs int `json:"open_jobs"`
	// Bytes is the total size of all open journal files.
	Bytes int64 `json:"bytes"`
	// Appends counts records durably appended since open.
	Appends uint64 `json:"appends"`
	// Replays counts jobs resumed from a non-empty journal since open.
	Replays uint64 `json:"replays"`
	// RecoveredTails counts torn or corrupt frames discarded during
	// recovery since open.
	RecoveredTails uint64 `json:"recovered_tails"`
	// Compactions counts terminal journals removed since open.
	Compactions uint64 `json:"compactions"`
}

// Store manages the journal directory: one WAL file per open job,
// exclusive per-key acquisition, and recovery on open. Safe for
// concurrent use. A nil Store is valid and journals nothing (Acquire
// returns a nil Job, whose methods are all no-ops).
type Store struct {
	dir string

	mu     sync.Mutex
	locked map[string]bool

	statMu         sync.Mutex
	appends        uint64
	replays        uint64
	recoveredTails uint64
	compactions    uint64
}

// Open creates (if needed) and scans the journal directory, recovering
// torn tails in every journal file and compacting any that already hold
// a terminal record — the restart path that turns crashed jobs back
// into resumable ones.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	s := &Store{dir: dir, locked: make(map[string]bool)}
	names, err := s.files()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		recs, torn, err := recoverFile(path)
		if err != nil {
			return nil, err
		}
		if torn > 0 {
			s.statMu.Lock()
			s.recoveredTails += uint64(torn)
			s.statMu.Unlock()
		}
		if n := len(recs); n > 0 && recs[n-1].Type == TypeDone {
			if err := s.compact(path); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Dir returns the journal directory root ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats snapshots journal counters and walks the directory for open-job
// count and byte size. Nil-safe: a nil store reports zeros.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	var st Stats
	names, err := s.files()
	if err == nil {
		st.OpenJobs = len(names)
		for _, name := range names {
			if fi, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
				st.Bytes += fi.Size()
			}
		}
	}
	s.statMu.Lock()
	st.Appends = s.appends
	st.Replays = s.replays
	st.RecoveredTails = s.recoveredTails
	st.Compactions = s.compactions
	s.statMu.Unlock()
	return st
}

// Acquire opens the journal for (kind, key) with an exclusive per-key
// lock, waiting (polling) while another goroutine holds the same job —
// the idempotent-submission rendezvous: a duplicate submission blocks
// until the first finishes, then resumes or replays from whatever the
// first left journaled. The returned Job is positioned after recovery:
// Accept/Points/Samples expose the durable prefix. A nil store returns
// a nil Job (journaling disabled), which every Job method tolerates.
func (s *Store) Acquire(ctx context.Context, kind, key string) (*Job, error) {
	if s == nil {
		return nil, nil
	}
	name := fileName(kind, key)
	for {
		s.mu.Lock()
		if !s.locked[name] {
			s.locked[name] = true
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
	j, err := s.openLocked(kind, key, name)
	if err != nil {
		s.unlock(name)
		return nil, err
	}
	return j, nil
}

func (s *Store) openLocked(kind, key, name string) (*Job, error) {
	path := filepath.Join(s.dir, name)
	recs, torn, err := recoverFile(path)
	if err != nil {
		return nil, err
	}
	if torn > 0 {
		s.statMu.Lock()
		s.recoveredTails += uint64(torn)
		s.statMu.Unlock()
	}
	// A journal that already reached terminal state belongs to a finished
	// job whose results live in the caches; compact it and start fresh so
	// a re-submission after compaction-miss reruns cleanly.
	if n := len(recs); n > 0 && recs[n-1].Type == TypeDone {
		if err := s.compact(path); err != nil {
			return nil, err
		}
		recs = nil
	}
	recs = validPrefix(kind, key, recs)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", name, err)
	}
	// Rewrite the file to exactly the recovered prefix: recovery already
	// truncates torn frames, but a semantically-invalid suffix (e.g. an
	// out-of-order point) must also be dropped before appending resumes.
	var buf bytes.Buffer
	buf.WriteString(header)
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: re-encode: %w", err)
		}
		buf.Write(frame(payload))
	}
	if err := rewrite(f, buf.Bytes()); err != nil {
		f.Close()
		return nil, err
	}
	if len(recs) > 0 {
		s.statMu.Lock()
		s.replays++
		s.statMu.Unlock()
	}
	return &Job{store: s, name: name, path: path, f: f, recs: recs}, nil
}

// files lists journal file names in the store directory.
func (s *Store) files() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: read dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// compact removes a terminal journal file and fsyncs the directory so
// the removal itself is durable.
func (s *Store) compact(path string) error {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("journal: compact: %w", err)
	}
	syncDir(s.dir)
	s.statMu.Lock()
	s.compactions++
	s.statMu.Unlock()
	return nil
}

func (s *Store) unlock(name string) {
	s.mu.Lock()
	delete(s.locked, name)
	s.mu.Unlock()
}

// Job is one acquired journal: the recovered record prefix plus an
// append handle. Not safe for concurrent use; the owning request
// serializes access. All methods tolerate a nil receiver (journaling
// disabled).
type Job struct {
	store  *Store
	name   string
	path   string
	f      *os.File
	recs   []Record
	closed bool
}

// Accept returns the journal's accept record, if the job was previously
// accepted (i.e. this acquisition is a resume).
func (j *Job) Accept() (Record, bool) {
	if j == nil || len(j.recs) == 0 || j.recs[0].Type != TypeAccept {
		return Record{}, false
	}
	return j.recs[0], true
}

// Points returns the journaled completed design points, in index order
// (a contiguous prefix 0..n-1 by construction).
func (j *Job) Points() []Record {
	return j.ofType(TypePoint)
}

// Samples returns the journaled completed model samples, in index order.
func (j *Job) Samples() []Record {
	return j.ofType(TypeSample)
}

func (j *Job) ofType(t string) []Record {
	if j == nil {
		return nil
	}
	var out []Record
	for _, r := range j.recs {
		if r.Type == t {
			out = append(out, r)
		}
	}
	return out
}

// Append durably journals one record: frame, write, fsync — the record
// is not acknowledged (and must not be exposed to the client) until
// Append returns nil. Fault site "journal.append" can fail the append
// cleanly (error) or tear it mid-frame (crash/torn), which recovery
// discards on the next open.
func (j *Job) Append(rec Record) error {
	if j == nil {
		return nil
	}
	if j.closed {
		return errors.New("journal: append to closed job")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	fr := frame(payload)
	if f, ok := faultinject.Eval(faultinject.SiteJournalAppend); ok {
		switch f.Kind {
		case faultinject.KindError:
			return faultinject.Errf(f)
		case faultinject.KindTorn, faultinject.KindCrash:
			// Simulate death mid-frame: a prefix of the frame reaches the
			// file, nothing is synced, and the caller sees a failure. The
			// torn tail is exactly what recovery must discard.
			cut := faultinject.Cut(f, len(fr))
			j.f.Write(fr[:cut]) //nolint:errcheck // injected partial write; error path is the injection itself
			return faultinject.Errf(f)
		}
	}
	if _, err := j.f.Write(fr); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.recs = append(j.recs, rec)
	j.store.statMu.Lock()
	j.store.appends++
	j.store.statMu.Unlock()
	return nil
}

// Done appends the terminal record, compacts the journal file, and
// releases the job — the happy-path close. If the terminal append
// fails, the journal stays open (resumable) and the error is returned.
func (j *Job) Done() error {
	if j == nil {
		return nil
	}
	if err := j.Append(Record{Type: TypeDone}); err != nil {
		return err
	}
	j.f.Close()
	j.closed = true
	if err := j.store.compact(j.path); err != nil {
		j.store.unlock(j.name)
		return err
	}
	j.store.unlock(j.name)
	return nil
}

// Release closes the append handle and releases the per-key lock
// without touching the file — the crash/error path close. The journal
// remains on disk for the next acquisition to resume. Idempotent, and
// safe after Done.
func (j *Job) Release() {
	if j == nil || j.closed {
		return
	}
	j.closed = true
	j.f.Close()
	j.store.unlock(j.name)
}

// fileName maps a (kind, key) to its journal file name. Keys are hex
// digests, so the name needs no escaping.
func fileName(kind, key string) string {
	return kind + "-" + key + ".wal"
}

// frame wraps a payload in the WAL frame: 4-byte little-endian length,
// 4-byte CRC32 (IEEE) of the payload, payload bytes.
func frame(payload []byte) []byte {
	fr := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(fr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fr[4:8], crc32.ChecksumIEEE(payload))
	copy(fr[8:], payload)
	return fr
}

// maxPayload bounds a frame's declared length so a corrupt length field
// cannot drive a giant allocation; journal payloads are single JSON
// stream lines, far below this.
const maxPayload = 16 << 20

// recoverFile reads a journal file and returns the durable record
// prefix, discarding (and truncating away) everything at and after the
// first torn or corrupt frame. A missing file is an empty journal. The
// second return is the number of discarded tails (0 or 1 per file, in
// practice).
func recoverFile(path string) ([]Record, int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: read %s: %w", filepath.Base(path), err)
	}
	if !bytes.HasPrefix(data, []byte(header)) {
		// Unrecognized content: treat the whole file as a torn tail.
		if len(data) == 0 {
			return nil, 0, nil
		}
		return nil, 1, truncateFile(path, 0)
	}
	body := data[len(header):]
	var recs []Record
	off := 0
	for off < len(body) {
		if len(body)-off < 8 {
			return recs, 1, truncateFile(path, int64(len(header)+off))
		}
		n := binary.LittleEndian.Uint32(body[off : off+4])
		sum := binary.LittleEndian.Uint32(body[off+4 : off+8])
		if n > maxPayload || len(body)-off-8 < int(n) {
			return recs, 1, truncateFile(path, int64(len(header)+off))
		}
		payload := body[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, 1, truncateFile(path, int64(len(header)+off))
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, 1, truncateFile(path, int64(len(header)+off))
		}
		recs = append(recs, rec)
		off += 8 + int(n)
	}
	return recs, 0, nil
}

// validPrefix drops records that violate the journal's semantic shape:
// the first record must be an accept for this (kind, key), and
// point/sample indices must advance contiguously from 0. Everything
// from the first violation on is discarded — the job simply resumes
// from earlier.
func validPrefix(kind, key string, recs []Record) []Record {
	if len(recs) == 0 {
		return nil
	}
	if recs[0].Type != TypeAccept || recs[0].Kind != kind || recs[0].Key != key {
		return nil
	}
	out := recs[:1]
	next := 0
	for _, r := range recs[1:] {
		switch r.Type {
		case TypePoint, TypeSample:
			if r.Index != next {
				return out
			}
			next++
		default:
			return out
		}
		out = append(out, r)
	}
	return out
}

// truncateFile cuts a file at off and fsyncs it, removing a torn tail
// durably.
func truncateFile(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: truncate %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("journal: truncate %s: %w", filepath.Base(path), err)
	}
	return f.Sync()
}

// rewrite replaces f's content with data, fsyncs, and leaves the write
// offset at the end for subsequent appends.
func rewrite(f *os.File, data []byte) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if _, err := f.Seek(int64(len(data)), 0); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	return f.Sync()
}

// syncDir fsyncs a directory so entry creations/removals inside it are
// durable; best-effort because not every platform supports it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort durability barrier
	d.Close()
}
