package journal

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func acquire(t *testing.T, s *Store, kind, key string) *Job {
	t.Helper()
	j, err := s.Acquire(context.Background(), kind, key)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestRoundTripAndResume(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)

	j := acquire(t, s, KindSweep, "abc123")
	if _, ok := j.Accept(); ok {
		t.Fatal("fresh journal should have no accept")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Append(Record{Type: TypeAccept, Kind: KindSweep, Key: "abc123", App: "lulesh", N: 3, FirstJobID: 7}))
	must(j.Append(Record{Type: TypePoint, Index: 0, Line: json.RawMessage(`{"seq":1}`)}))
	must(j.Append(Record{Type: TypePoint, Index: 1, Line: json.RawMessage(`{"seq":2}`)}))
	j.Release()

	// Reopen the whole store (simulated restart) and resume.
	s2 := open(t, dir)
	if st := s2.Stats(); st.OpenJobs != 1 {
		t.Fatalf("OpenJobs = %d, want 1", st.OpenJobs)
	}
	j2 := acquire(t, s2, KindSweep, "abc123")
	acc, ok := j2.Accept()
	if !ok || acc.App != "lulesh" || acc.N != 3 || acc.FirstJobID != 7 {
		t.Fatalf("accept = %+v ok=%v", acc, ok)
	}
	pts := j2.Points()
	if len(pts) != 2 || pts[0].Index != 0 || pts[1].Index != 1 {
		t.Fatalf("points = %+v", pts)
	}
	if string(pts[1].Line) != `{"seq":2}` {
		t.Fatalf("line bytes not preserved: %q", pts[1].Line)
	}
	must(j2.Append(Record{Type: TypePoint, Index: 2, Line: json.RawMessage(`{"seq":3}`)}))
	if err := j2.Done(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.OpenJobs != 0 || st.Compactions != 1 {
		t.Fatalf("after Done: %+v, want 0 open / 1 compaction", st)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	j := acquire(t, s, KindSweep, "k1")
	if err := j.Append(Record{Type: TypeAccept, Kind: KindSweep, Key: "k1", N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypePoint, Index: 0, Line: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	j.Release()

	// Tear the tail: append half a frame, as a crash mid-append would.
	path := filepath.Join(dir, fileName(KindSweep, "k1"))
	fr := frame([]byte(`{"type":"point","index":1}`))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(fr[:len(fr)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir)
	if st := s2.Stats(); st.RecoveredTails != 1 {
		t.Fatalf("RecoveredTails = %d, want 1", st.RecoveredTails)
	}
	j2 := acquire(t, s2, KindSweep, "k1")
	if got := len(j2.Points()); got != 1 {
		t.Fatalf("points after torn-tail recovery = %d, want 1", got)
	}
	j2.Release()
}

func TestCorruptHeaderRestartsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, fileName(KindModel, "k2"))
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir)
	j := acquire(t, s, KindModel, "k2")
	if _, ok := j.Accept(); ok {
		t.Fatal("corrupt journal must restart empty")
	}
	j.Release()
}

func TestSemanticPrefixValidation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	j := acquire(t, s, KindSweep, "k3")
	appendAll(t, j,
		Record{Type: TypeAccept, Kind: KindSweep, Key: "k3", N: 5},
		Record{Type: TypePoint, Index: 0},
		Record{Type: TypePoint, Index: 3}, // gap: invalid from here on
	)
	j.Release()

	j2 := acquire(t, open(t, dir), KindSweep, "k3")
	if got := len(j2.Points()); got != 1 {
		t.Fatalf("out-of-order suffix must be dropped; points = %d, want 1", got)
	}
	j2.Release()

	// Accept under the wrong key is discarded entirely.
	j3 := acquire(t, open(t, dir), KindSweep, "other")
	if _, ok := j3.Accept(); ok {
		t.Fatal("accept for a different key must not be visible")
	}
	j3.Release()
}

func TestOpenCompactsTerminalJournals(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	j := acquire(t, s, KindSweep, "k4")
	appendAll(t, j,
		Record{Type: TypeAccept, Kind: KindSweep, Key: "k4", N: 1},
		Record{Type: TypePoint, Index: 0},
		Record{Type: TypeDone},
	)
	j.Release() // left on disk with a terminal record (Done() not used)

	s2 := open(t, dir)
	if st := s2.Stats(); st.OpenJobs != 0 || st.Compactions != 1 {
		t.Fatalf("terminal journal must be compacted on open: %+v", st)
	}
}

func TestAcquireLockExcludes(t *testing.T) {
	s := open(t, t.TempDir())
	j := acquire(t, s, KindSweep, "k5")

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if _, err := s.Acquire(ctx, KindSweep, "k5"); err == nil {
		t.Fatal("second acquire of a held key should block until ctx death")
	}

	// Different key is independent.
	j6 := acquire(t, s, KindSweep, "k6")
	j6.Release()

	j.Release()
	j2 := acquire(t, s, KindSweep, "k5") // released: acquirable again
	j2.Release()
}

func TestInjectedAppendFaults(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	j := acquire(t, s, KindSweep, "k7")
	if err := j.Append(Record{Type: TypeAccept, Kind: KindSweep, Key: "k7", N: 2}); err != nil {
		t.Fatal(err)
	}

	prev := faultinject.Install(faultinject.MustSchedule(
		faultinject.Fault{Site: faultinject.SiteJournalAppend, Hit: 1, Kind: faultinject.KindCrash, Frac: 0.5},
	))
	err := j.Append(Record{Type: TypePoint, Index: 0, Line: json.RawMessage(`{"x":1}`)})
	faultinject.Install(prev)
	if err == nil {
		t.Fatal("injected crash must surface as an error")
	}
	j.Release()

	// The torn half-frame must be invisible after recovery.
	s2 := open(t, dir)
	j2 := acquire(t, s2, KindSweep, "k7")
	if got := len(j2.Points()); got != 0 {
		t.Fatalf("crashed append leaked %d point(s)", got)
	}
	// And the journal must accept appends again at the same position.
	if err := j2.Append(Record{Type: TypePoint, Index: 0, Line: json.RawMessage(`{"x":1}`)}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestNilStoreAndJobAreNoOps(t *testing.T) {
	var s *Store
	j, err := s.Acquire(context.Background(), KindSweep, "k")
	if err != nil || j != nil {
		t.Fatalf("nil store Acquire = (%v, %v), want (nil, nil)", j, err)
	}
	if err := j.Append(Record{Type: TypeAccept}); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(); err != nil {
		t.Fatal(err)
	}
	j.Release()
	if _, ok := j.Accept(); ok {
		t.Fatal("nil job has no accept")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

func appendAll(t *testing.T, j *Job, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}
