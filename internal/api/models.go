package api

import "repro/internal/modelreg"

// ModelRequest is the body of POST /v1/models: one end-to-end model
// extraction — sweep the design, feed every point into the incremental
// fitter, return the ranked model set. Results are content-addressed:
// the same app (spec digest) and design answer from the model registry
// without re-running anything.
type ModelRequest struct {
	// App names the registered application.
	App string `json:"app"`
	// Params are the model parameters; empty defaults to the axis
	// parameters in axis order.
	Params []string `json:"params,omitempty"`
	// Defaults overlay the app's taint configuration for the non-swept
	// parameters (same semantics as POST /v1/sweep).
	Defaults map[string]float64 `json:"defaults,omitempty"`
	// Axes span the full-factorial modeling design.
	Axes []SweepAxis `json:"axes"`
	// Reps, Seed, RelNoise, Batch and Metrics tune the measurement and
	// fitting cadence; zero values take the modelreg defaults.
	Reps int `json:"reps,omitempty"`
	// Seed fixes the synthetic measurement noise stream.
	Seed int64 `json:"seed,omitempty"`
	// RelNoise is the relative noise level of synthetic measurements.
	RelNoise float64 `json:"rel_noise,omitempty"`
	// Batch is the incremental refit cadence in design points.
	Batch int `json:"batch,omitempty"`
	// Metrics names the modeled metrics (first is the ranking metric).
	Metrics []string `json:"metrics,omitempty"`
	// Stream, when true, answers with NDJSON: one progress event per
	// line (taint, point, refit) followed by a terminal "result" line
	// carrying the ModelResponse. Cache hits skip straight to the
	// result line.
	Stream bool `json:"stream,omitempty"`
}

// ModelResponse is the body of a finished model extraction (and of
// GET /v1/models/{key}).
type ModelResponse struct {
	// Key is the registry address: hash of spec digest + design digest.
	Key string `json:"key"`
	// SpecDigest and DesignDigest are the two halves of the address.
	SpecDigest string `json:"spec_digest"`
	// DesignDigest is the canonical hash of the modeling design.
	DesignDigest string `json:"design_digest"`
	// Cached reports whether the set was served from the registry
	// without a new sweep.
	Cached bool `json:"cached"`
	// ModelSet is the artifact itself.
	ModelSet *modelreg.ModelSet `json:"model_set"`
}

// ModelStreamLine is one NDJSON record of a streaming model response:
// either a progress event (Type taint/point/refit) or the terminal
// result (Type "result" with the ModelResponse fields set).
type ModelStreamLine struct {
	// Seq is the line's monotone position in the stream, starting at 1
	// (same resume semantics as SweepLine.Seq).
	Seq int64 `json:"seq"`
	modelreg.Event
	// Key, SpecDigest, DesignDigest, Cached, and ModelSet mirror the
	// ModelResponse on the terminal "result" line.
	Key string `json:"key,omitempty"`
	// SpecDigest is the spec half of the content address.
	SpecDigest string `json:"spec_digest,omitempty"`
	// DesignDigest is the design half of the content address.
	DesignDigest string `json:"design_digest,omitempty"`
	// Cached reports registry provenance on the result line.
	Cached bool `json:"cached,omitempty"`
	// ModelSet is the finished artifact on the result line.
	ModelSet *modelreg.ModelSet `json:"model_set,omitempty"`
	// Error carries a terminal extraction failure.
	Error string `json:"error,omitempty"`
}
