// Package api is the versioned wire surface of the perftaintd daemon:
// every request, response, and streamed record that crosses a process
// boundary — the client API (analyze, sweep, jobs, stats, models), the
// error envelope, and the cluster worker protocol (register, heartbeat,
// shard dispatch) — lives here and nowhere else. The HTTP server
// (internal/service), the Go client, and the coordinator/worker link all
// consume these definitions, so a wire change is made exactly once and
// every surface moves together.
//
// ProtocolVersion stamps the worker protocol: a worker registers with
// its version, the coordinator rejects mismatches at registration time,
// and every shard dispatch re-asserts it, so a mixed-version cluster
// fails loudly at the handshake instead of corrupting a merged stream.
package api

import "fmt"

// ProtocolVersion identifies the cluster wire protocol spoken by this
// build. It is negotiated at worker registration (POST
// /v1/worker/register) and re-checked on every shard dispatch; bump it
// whenever a wire type changes incompatibly so old and new daemons
// refuse to form a cluster instead of silently disagreeing. v2 added
// the monotone seq field to streamed sweep/model lines and the
// resumable-stream headers.
const ProtocolVersion = "perftaint-api-v2"

// Resume headers spoken on the streaming endpoints: a client that lost
// its connection mid-stream reconnects with the same Idempotency-Key
// and the last seq it fully consumed, and the server replays journaled
// lines after Last-Seq before continuing live.
const (
	// HeaderLastSeq carries the highest seq the client has already
	// consumed; the server skips journaled lines at or below it.
	HeaderLastSeq = "Last-Seq"
	// HeaderIdempotencyKey distinguishes deliberate duplicate submissions
	// from retries of the same logical request: retries reuse the key
	// (joining the journaled job), fresh submissions omit or change it.
	HeaderIdempotencyKey = "Idempotency-Key"
)

// ErrorBody is the single error-envelope shape every endpoint answers
// failures with: {"error": "..."} plus, on 429 responses, the suggested
// retry delay. Handlers must not invent ad-hoc error shapes.
type ErrorBody struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
	// RetryAfterMS, on 429 responses, is how long the daemon suggests
	// waiting before retrying; omitted otherwise.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// APIError is a decoded error response from the daemon. Callers that
// need to react to specific statuses (429 backoff, 413 body splitting)
// can errors.As for it instead of parsing message strings.
type APIError struct {
	// StatusCode is the HTTP status the daemon answered with.
	StatusCode int
	// Message is the daemon's error text.
	Message string
	// RetryAfterMS, on 429 responses, is how long the daemon suggests
	// waiting before retrying (0 when the server sent no hint).
	RetryAfterMS int64
}

// Error renders the status and the daemon's message.
func (e *APIError) Error() string {
	return fmt.Sprintf("service: %d: %s", e.StatusCode, e.Message)
}
