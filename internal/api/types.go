package api

import (
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/journal"
	"repro/internal/modelreg"
)

// AnalyzeRequest is the body of POST /v1/analyze: one configuration of a
// registered application. Config entries overlay the app's default taint
// configuration, so an empty config analyzes the paper's taint run and
// {"p": 16} changes only the rank count.
type AnalyzeRequest struct {
	// App names the registered application.
	App string `json:"app"`
	// Config overlays the app's default taint configuration.
	Config apps.Config `json:"config,omitempty"`
	// CensusParams selects the loop-relevance column of the census;
	// defaults to the paper's model parameters {p, size}.
	CensusParams []string `json:"census_params,omitempty"`
	// Async, when true, returns the queued job immediately; poll it via
	// GET /v1/jobs/{id}. The default waits for the result inline.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds how long the job may wait to START: a job still
	// queued past it is canceled, never run. Once started, a job always
	// finishes — runs are bounded by interpreter fuel, not wall clock.
	// 0 uses the server default; larger values clamp to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepAxis is one swept parameter: mirrors runner.Axis on the wire.
type SweepAxis struct {
	// Param names the swept parameter.
	Param string `json:"param"`
	// Values are the axis levels in sweep order.
	Values []float64 `json:"values"`
}

// SweepRequest is the body of POST /v1/sweep: a full-factorial design
// over a registered application. The response streams one NDJSON
// SweepLine per configuration in deterministic design order (last axis
// varying fastest), so arbitrarily large designs never buffer
// server-side.
type SweepRequest struct {
	// App names the registered application.
	App string `json:"app"`
	// Defaults overlay the app's taint configuration for the non-swept
	// parameters.
	Defaults apps.Config `json:"defaults,omitempty"`
	// Axes span the full-factorial design.
	Axes []SweepAxis `json:"axes"`
	// CensusParams selects the loop-relevance column of each result's
	// census; defaults to {p, size}.
	CensusParams []string `json:"census_params,omitempty"`
	// TimeoutMS optionally gives each configuration job a start-TTL
	// from submission (clamped to the server default). 0 — the default —
	// means sweep jobs live as long as the streaming request itself, so
	// the tail of a large design is not doomed by its siblings' runtime.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepLine is one NDJSON record of a sweep response.
type SweepLine struct {
	// Seq is the line's monotone position in the stream, starting at 1;
	// a reconnecting client sends the last seq it consumed in the
	// Last-Seq header and the server resumes after it. Control lines
	// (the drain notice) carry seq 0 and are never replayed.
	Seq int64 `json:"seq"`
	// Index is the record's position in design order.
	Index int `json:"index"`
	// JobID identifies the job that produced this record.
	JobID string `json:"job_id"`
	// Config is the fully-merged configuration analyzed at this point.
	Config apps.Config `json:"config"`
	// Result carries the analysis on success.
	Result *AnalysisResult `json:"result,omitempty"`
	// Error carries the per-configuration failure, if any.
	Error string `json:"error,omitempty"`
}

// Job lifecycle states reported by the API.
const (
	// StatusQueued marks a job submitted but not yet claimed by a worker.
	StatusQueued = "queued"
	// StatusRunning marks a job claimed and executing.
	StatusRunning = "running"
	// StatusDone marks a successfully finished job.
	StatusDone = "done"
	// StatusFailed marks a job whose analysis failed.
	StatusFailed = "failed"
	// StatusCanceled marks a job canceled before it could start.
	StatusCanceled = "canceled"
)

// JobInfo is the wire view of one scheduled analysis job.
type JobInfo struct {
	// ID is the job's address for GET /v1/jobs/{id}.
	ID string `json:"id"`
	// App names the analyzed application.
	App string `json:"app"`
	// Status is one of the Status* lifecycle states.
	Status string `json:"status"`
	// Config is the fully-merged configuration the job analyzes.
	Config apps.Config `json:"config"`
	// SpecDigest is the content address of the prepared spec.
	SpecDigest string `json:"spec_digest"`
	// Submitted, Started, and Finished timestamp the lifecycle.
	Submitted time.Time `json:"submitted"`
	// Started is when a worker claimed the job (zero while queued).
	Started time.Time `json:"started,omitzero"`
	// Finished is when the job reached a terminal status.
	Finished time.Time `json:"finished,omitzero"`
	// DurationMS is the run time of a finished job (excluding queueing).
	DurationMS int64 `json:"duration_ms,omitempty"`
	// Result carries the analysis of a done job.
	Result *AnalysisResult `json:"result,omitempty"`
	// Error carries the failure of a failed or canceled job.
	Error string `json:"error,omitempty"`
}

// AnalysisResult is the paper-facing projection of a core.Report that
// travels over the wire: the Table 2 census, per-function parameter
// dependencies and symbolic volumes, the instrumentation filter, and the
// dynamic cost of the tainted run. It mirrors the perftaint CLI's JSON
// report so the golden snapshots under internal/core/testdata gate the
// service responses too.
type AnalysisResult struct {
	// App names the analyzed application.
	App string `json:"app"`
	// SpecDigest is the content address of the analyzed spec.
	SpecDigest string `json:"spec_digest"`
	// Census carries the Table 2 style pruning statistics.
	Census core.Census `json:"census"`
	// FuncDeps maps each function to its proven parameter dependencies.
	FuncDeps map[string][]string `json:"function_dependencies"`
	// Volumes renders the symbolic iteration volume of each dependent
	// function.
	Volumes map[string]string `json:"volumes"`
	// Relevant is the instrumentation filter (sorted function names).
	Relevant []string `json:"instrumentation_filter"`
	// Recursion lists volume-analysis recursion warnings, if any.
	Recursion []string `json:"recursion_warnings,omitempty"`
	// Instructions is the dynamic cost of the tainted run.
	Instructions int64 `json:"tainted_run_instructions"`
}

// NewAnalysisResult projects a report into its wire form.
func NewAnalysisResult(app, digest string, rep *core.Report, censusParams []string) *AnalysisResult {
	out := &AnalysisResult{
		App:          app,
		SpecDigest:   digest,
		Census:       rep.Census(censusParams),
		FuncDeps:     rep.FuncDeps,
		Volumes:      make(map[string]string),
		Recursion:    rep.Volumes.RecursionWarnings,
		Instructions: rep.Instructions,
	}
	if out.FuncDeps == nil {
		out.FuncDeps = map[string][]string{}
	}
	for fn := range rep.Relevant {
		out.Relevant = append(out.Relevant, fn)
	}
	sort.Strings(out.Relevant)
	for fn, deps := range rep.FuncDeps {
		if len(deps) > 0 {
			out.Volumes[fn] = rep.Volumes.ByFunc[fn].String()
		}
	}
	return out
}

// JobStats aggregates scheduler counters for /v1/stats.
type JobStats struct {
	// Submitted counts every job ever accepted.
	Submitted uint64 `json:"submitted"`
	// Completed, Failed, and Canceled count terminal outcomes.
	Completed uint64 `json:"completed"`
	// Failed counts jobs whose analysis errored.
	Failed uint64 `json:"failed"`
	// Canceled counts jobs stopped before they could start.
	Canceled uint64 `json:"canceled"`
	// Queued and Running snapshot the live scheduler state.
	Queued int `json:"queued"`
	// Running counts jobs currently executing.
	Running int `json:"running"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// UptimeMS is the daemon's age in milliseconds.
	UptimeMS int64 `json:"uptime_ms"`
	// Workers is the size of the local analysis worker pool.
	Workers int `json:"workers"`
	// Engine names the interpreter tier analysis jobs run on: "fast"
	// (default), "reference" (oracle), or "compiled" (closure chains).
	Engine string `json:"engine"`
	// Apps lists the registered application names.
	Apps []string `json:"apps"`
	// Cache snapshots the PreparedCache counters.
	Cache CacheStats `json:"cache"`
	// Models snapshots the model registry counters.
	Models modelreg.RegistryStats `json:"models"`
	// Jobs snapshots the scheduler counters.
	Jobs JobStats `json:"jobs"`
	// CacheDisk and ModelsDisk report the persistent tiers' store
	// counters; all-zero when the daemon runs without a cache dir.
	CacheDisk diskcache.Stats `json:"cache_disk"`
	// ModelsDisk reports the model registry's persistent tier counters.
	ModelsDisk diskcache.Stats `json:"models_disk"`
	// RateLimited counts requests rejected with 429 by admission control.
	RateLimited uint64 `json:"rate_limited"`
	// Cluster reports the coordinator/worker state; nil on a standalone
	// daemon, so single-node stats responses are unchanged.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Journal reports the durable job journal's counters; nil when the
	// daemon runs without one (no cache dir, or -journal=false).
	Journal *journal.Stats `json:"journal,omitempty"`
}

// CacheStats is a point-in-time snapshot of the PreparedCache counters.
type CacheStats struct {
	// Hits counts in-memory hits, including singleflight joins.
	Hits uint64 `json:"hits"`
	// Misses counts cold builds: neither memory nor disk had the entry.
	Misses uint64 `json:"misses"`
	// DiskHits counts builds that were warm on the persistent tier: the
	// digest was prepared by an earlier process and only rebuilt (once,
	// under the singleflight) because the artifact itself cannot be
	// serialized. Disk hits are not counted as misses.
	DiskHits uint64 `json:"disk_hits"`
	// Evictions counts LRU evictions of completed entries.
	Evictions uint64 `json:"evictions"`
	// Entries and Capacity snapshot residency against the bound.
	Entries int `json:"entries"`
	// Capacity is the LRU bound (0 = unbounded).
	Capacity int `json:"capacity"`
}

// DefaultCensusParams is the census column used when a request does not
// name its model parameters: the paper's {p, size}.
func DefaultCensusParams() []string { return []string{"p", "size"} }
