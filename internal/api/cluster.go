package api

import "repro/internal/apps"

// RegisterRequest is the body of POST /v1/worker/register, sent by a
// worker daemon to the coordinator when it joins the cluster (and again
// whenever a heartbeat answers 404, e.g. after a coordinator restart).
type RegisterRequest struct {
	// Protocol is the worker's ProtocolVersion; the coordinator rejects
	// registration on mismatch, which is where version negotiation
	// happens — a worker that registered is known compatible.
	Protocol string `json:"protocol"`
	// Addr is the worker's advertised base URL (e.g.
	// "http://10.0.0.7:7071"); the coordinator dials it to dispatch
	// shards.
	Addr string `json:"addr"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// WorkerID is the coordinator-assigned identity the worker echoes in
	// every heartbeat.
	WorkerID string `json:"worker_id"`
	// Protocol echoes the coordinator's ProtocolVersion.
	Protocol string `json:"protocol"`
	// HeartbeatMS is the interval at which the coordinator expects
	// heartbeats; missing several marks the worker dead.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest is the body of POST /v1/worker/heartbeat. An unknown
// WorkerID answers 404, telling the worker to re-register.
type HeartbeatRequest struct {
	// WorkerID is the identity assigned at registration.
	WorkerID string `json:"worker_id"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	// OK is always true on a 200 response.
	OK bool `json:"ok"`
}

// ShardRequest is the body of POST /v1/shard, sent by the coordinator to
// a worker: one contiguous slice of a sweep's design, fully merged
// configurations included. The worker streams one NDJSON ShardLine per
// configuration, in design order.
type ShardRequest struct {
	// Protocol re-asserts the negotiated wire version on every dispatch.
	Protocol string `json:"protocol"`
	// App names the application; the worker resolves it from its own
	// registry and must arrive at the same spec content.
	App string `json:"app"`
	// SpecDigest is the coordinator's content address for the app's
	// spec. The worker verifies its locally-prepared digest against it —
	// a mismatch fails the shard rather than merging results computed
	// from a different program.
	SpecDigest string `json:"spec_digest"`
	// Start is the absolute design index of Configs[0]; line indices are
	// absolute so the coordinator merges without offset bookkeeping.
	Start int `json:"start"`
	// Configs are the fully-merged configurations of this shard, in
	// design order.
	Configs []apps.Config `json:"configs"`
	// CensusParams selects each result's census column.
	CensusParams []string `json:"census_params,omitempty"`
}

// ShardLine is one NDJSON record of a shard response: the analysis of a
// single design point, plus the distilled modeling observations
// (per-function tainted loop iterations and the instruction count) so
// the coordinator can feed a model-extraction pipeline without shipping
// whole reports.
type ShardLine struct {
	// Index is the absolute design index of this record.
	Index int `json:"index"`
	// Result is the wire projection of the analysis, identical to what a
	// single-node sweep would stream for this configuration.
	Result *AnalysisResult `json:"result,omitempty"`
	// Iterations sums the tainted run's loop iterations per function —
	// the MetricIterations observation of a model extraction.
	Iterations map[string]int64 `json:"iterations,omitempty"`
	// Instructions is the dynamic cost of the tainted run.
	Instructions int64 `json:"instructions,omitempty"`
	// Error carries a per-configuration analysis failure; the shard
	// itself still completes.
	Error string `json:"error,omitempty"`
}

// WorkerStats is the coordinator's wire view of one registered worker.
type WorkerStats struct {
	// ID is the coordinator-assigned worker identity.
	ID string `json:"id"`
	// Addr is the worker's advertised base URL.
	Addr string `json:"addr"`
	// Live reports whether the worker is currently dispatchable
	// (heartbeating and not failed).
	Live bool `json:"live"`
	// Shards counts shards this worker completed successfully.
	Shards uint64 `json:"shards"`
	// InFlight counts shards currently dispatched to this worker.
	InFlight int `json:"in_flight"`
	// LastHeartbeatMS is the age of the last heartbeat in milliseconds.
	LastHeartbeatMS int64 `json:"last_heartbeat_ms"`
}

// ClusterStats reports the distributed-execution state in /v1/stats.
type ClusterStats struct {
	// Role is "coordinator" or "worker".
	Role string `json:"role"`
	// Workers lists the coordinator's registered workers (coordinator
	// role only), sorted by ID.
	Workers []WorkerStats `json:"workers,omitempty"`
	// LiveWorkers counts currently dispatchable workers.
	LiveWorkers int `json:"live_workers"`
	// ShardsDispatched counts shards completed on remote workers.
	ShardsDispatched uint64 `json:"shards_dispatched"`
	// ShardsLocal counts shards the coordinator fell back to executing
	// locally (no live workers, or retries exhausted).
	ShardsLocal uint64 `json:"shards_local"`
	// ShardRetries counts shard dispatches that failed and were retried.
	ShardRetries uint64 `json:"shard_retries"`
	// HeartbeatMisses counts live→dead transitions caused by heartbeat
	// timeouts.
	HeartbeatMisses uint64 `json:"heartbeat_misses"`
	// FederatedFetches counts prepared-spec receipts a worker fetched
	// from its coordinator by digest before building locally.
	FederatedFetches uint64 `json:"federated_fetches"`
}
