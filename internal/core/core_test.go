package core

import (
	"testing"

	"repro/internal/apps"
)

var (
	luleshReport *Report
	milcReport   *Report
)

func getLULESH(t *testing.T) *Report {
	t.Helper()
	if luleshReport == nil {
		r, err := Analyze(apps.LULESH(), apps.LULESHTaintConfig())
		if err != nil {
			t.Fatal(err)
		}
		luleshReport = r
	}
	return luleshReport
}

func getMILC(t *testing.T) *Report {
	t.Helper()
	if milcReport == nil {
		r, err := Analyze(apps.MILC(), apps.MILCTaintConfig())
		if err != nil {
			t.Fatal(err)
		}
		milcReport = r
	}
	return milcReport
}

func TestLULESHCensusMatchesTable2(t *testing.T) {
	r := getLULESH(t)
	c := r.Census([]string{"p", "size"})

	if c.FunctionsTotal != 356 {
		t.Errorf("functions total = %d, want 356", c.FunctionsTotal)
	}
	if c.MPIFunctions != 7 {
		t.Errorf("MPI functions = %d, want 7", c.MPIFunctions)
	}
	if c.CommRoutines != 2 {
		t.Errorf("comm routines = %d, want 2", c.CommRoutines)
	}
	// Paper: 296 statically, 11 dynamically, 40 kernels. Our construction
	// targets the same partition.
	if c.PrunedStatically < 290 || c.PrunedStatically > 300 {
		t.Errorf("pruned statically = %d, want ~296", c.PrunedStatically)
	}
	if c.PrunedDynamically < 9 || c.PrunedDynamically > 13 {
		t.Errorf("pruned dynamically = %d, want ~11", c.PrunedDynamically)
	}
	if c.Kernels < 38 || c.Kernels > 42 {
		t.Errorf("kernels = %d, want ~40", c.Kernels)
	}
	// Paper: 86.2% of functions constant w.r.t. the parameters.
	if c.PercentConstant < 83 || c.PercentConstant > 90 {
		t.Errorf("constant share = %.1f%%, want ~86.2%%", c.PercentConstant)
	}
	if c.LoopsPrunedStatic != 52 {
		t.Errorf("static-constant loops = %d, want 52", c.LoopsPrunedStatic)
	}
	if c.LoopsRelevant < 72 || c.LoopsRelevant > 84 {
		t.Errorf("relevant loops = %d, want ~78", c.LoopsRelevant)
	}
}

func TestMILCCensusMatchesTable2(t *testing.T) {
	r := getMILC(t)
	c := r.Census([]string{"p", "size"})

	if c.FunctionsTotal != 629 {
		t.Errorf("functions total = %d, want 629", c.FunctionsTotal)
	}
	if c.MPIFunctions != 8 {
		t.Errorf("MPI functions = %d, want 8", c.MPIFunctions)
	}
	if c.CommRoutines != 13 {
		t.Errorf("comm routines = %d, want 13", c.CommRoutines)
	}
	if c.PrunedStatically < 358 || c.PrunedStatically > 370 {
		t.Errorf("pruned statically = %d, want ~364", c.PrunedStatically)
	}
	if c.PrunedDynamically < 182 || c.PrunedDynamically > 194 {
		t.Errorf("pruned dynamically = %d, want ~188", c.PrunedDynamically)
	}
	if c.Kernels < 52 || c.Kernels > 58 {
		t.Errorf("kernels = %d, want ~56", c.Kernels)
	}
	if c.PercentConstant < 84 || c.PercentConstant > 92 {
		t.Errorf("constant share = %.1f%%, want ~87.7%%", c.PercentConstant)
	}
	if c.LoopsPrunedStatic != 96 {
		t.Errorf("static-constant loops = %d, want 96", c.LoopsPrunedStatic)
	}
	if c.LoopsRelevant < 185 || c.LoopsRelevant > 205 {
		t.Errorf("relevant loops = %d, want ~196", c.LoopsRelevant)
	}
}

func TestLULESHPriors(t *testing.T) {
	r := getLULESH(t)
	model := []string{"p", "size"}

	// Getters must be pinned constant.
	pr := r.Prior("Domain_get000", model)
	if !pr.ForceConstant {
		t.Error("getter prior not constant")
	}
	// Kernels depend on size but not p.
	pr = r.Prior("CalcForceForNodes", model)
	if pr.ForceConstant || !pr.Allowed["size"] || pr.Allowed["p"] {
		t.Errorf("kernel prior = %+v, want size only", pr)
	}
	// CalcQForElems reaches MPI through CommSBN: the function itself only
	// sees size; the comm wrapper carries p.
	pr = r.Prior("CommSBN", model)
	if pr.ForceConstant || !pr.Allowed["p"] {
		t.Errorf("CommSBN prior = %+v, want p allowed", pr)
	}
}

func TestLULESHRelevantSetSmall(t *testing.T) {
	r := getLULESH(t)
	// The taint filter instruments only the ~49 relevant functions out of
	// 349 spec functions.
	if len(r.Relevant) < 40 || len(r.Relevant) > 60 {
		t.Errorf("relevant set = %d functions, want ~49", len(r.Relevant))
	}
	if !r.Relevant["main"] {
		t.Error("main must always be instrumented")
	}
	if r.Relevant["Domain_get000"] {
		t.Error("getter must not be relevant")
	}
}

func TestLULESHCoverageTable3Shape(t *testing.T) {
	r := getLULESH(t)
	rows, unionF, unionL := r.Coverage([]string{"p", "size"})
	byParam := make(map[string]ParameterCoverage)
	for _, row := range rows {
		byParam[row.Param] = row
	}
	// Table 3 shape: size affects ~40 functions / ~78 loops; p affects few
	// functions' loops (comm) but many through MPI; iters 4 functions.
	if got := byParam["size"].Functions; got < 36 || got > 46 {
		t.Errorf("size functions = %d, want ~40", got)
	}
	if got := byParam["size"].Loops; got < 72 || got > 84 {
		t.Errorf("size loops = %d, want ~78", got)
	}
	if got := byParam["iters"].Functions; got != 4 {
		t.Errorf("iters functions = %d, want 4", got)
	}
	if got := byParam["iters"].Loops; got != 4 {
		t.Errorf("iters loops = %d, want 4", got)
	}
	if got := byParam["cost"].Functions; got != 2 {
		t.Errorf("cost functions = %d, want 2", got)
	}
	if got := byParam["regions"].Functions; got != 13 {
		t.Errorf("regions functions = %d, want 13", got)
	}
	if got := byParam["balance"].Functions; got != 9 {
		t.Errorf("balance functions = %d, want 9", got)
	}
	if unionF < 38 || unionF > 48 {
		t.Errorf("p-or-size functions = %d, want ~40-43", unionF)
	}
	if unionL < 72 || unionL > 86 {
		t.Errorf("p-or-size loops = %d, want ~78", unionL)
	}
}

func TestMILCCoverageMatchesGroundTruth(t *testing.T) {
	r := getMILC(t)
	rows, unionF, unionL := r.Coverage([]string{"p", "size"})
	byParam := make(map[string]ParameterCoverage)
	for _, row := range rows {
		byParam[row.Param] = row
	}
	// Site loops couple size and p: both cover most kernels (paper: p 54,
	// size 53 functions; 187/161 loops).
	if got := byParam["size"].Functions; got < 48 || got > 58 {
		t.Errorf("size functions = %d, want ~53", got)
	}
	if got := byParam["p"].Functions; got < 50 || got > 72 {
		t.Errorf("p functions = %d, want ~54+comm", got)
	}
	if got := byParam["size"].Loops; got < 150 || got > 175 {
		t.Errorf("size loops = %d, want ~161", got)
	}
	if got := byParam["p"].Loops; got < 175 || got > 200 {
		t.Errorf("p loops = %d, want ~187", got)
	}
	// Physics parameters must be nearly invisible (mass 1 / u0 4 functions).
	if got := byParam["mass"].Functions; got != 1 {
		t.Errorf("mass functions = %d, want 1", got)
	}
	if got := byParam["u0"].Functions; got != 4 {
		t.Errorf("u0 functions = %d, want 4", got)
	}
	if unionF < 55 || unionF > 75 {
		t.Errorf("p-or-size functions = %d, want ~56-69", unionF)
	}
	if unionL < 185 || unionL > 205 {
		t.Errorf("p-or-size loops = %d, want ~196", unionL)
	}
}

func TestStructureMultiplicativeForSiteLoops(t *testing.T) {
	r := getMILC(t)
	st := r.Structure("load_fatlinks")
	if !st.Multiplicative("p", "size") {
		t.Errorf("site-loop structure %v must couple p and size", st)
	}
}

func TestStructureIters(t *testing.T) {
	r := getLULESH(t)
	st := r.Structure("main")
	// iters multiplies the whole timestep: it must couple multiplicatively
	// with size (the A2 observation).
	if !st.Multiplicative("iters", "size") {
		t.Errorf("main structure %v must couple iters with size", st)
	}
}

func TestAnalyzeRejectsMissingP(t *testing.T) {
	spec := apps.LULESH()
	cfgv := apps.LULESHTaintConfig()
	delete(cfgv, "p")
	if _, err := Analyze(spec, cfgv); err == nil {
		t.Fatal("expected error for missing p")
	}
}

func TestRecursionWarningsEmpty(t *testing.T) {
	r := getLULESH(t)
	if len(r.Volumes.RecursionWarnings) != 0 {
		t.Errorf("unexpected recursion warnings: %v", r.Volumes.RecursionWarnings)
	}
}

func TestDependsOnAny(t *testing.T) {
	r := getLULESH(t)
	if !r.DependsOnAny("CalcForceForNodes", []string{"size"}) {
		t.Error("kernel must depend on size")
	}
	if r.DependsOnAny("Domain_get000", []string{"size", "p"}) {
		t.Error("getter must not depend on anything")
	}
}
