package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden testdata snapshots")

// goldenSnapshot freezes the paper-facing outputs of one bundled app: the
// Table 2 census at the paper's model parameters, the per-function taint
// dependencies, and the dynamic cost of the taint run. Any interpreter or
// taint change that drifts these numbers fails loudly; intentional changes
// re-bless with `go test ./internal/core -run Golden -update`.
type goldenSnapshot struct {
	Census       Census              `json:"census"`
	FuncDeps     map[string][]string `json:"func_deps"`
	Instructions int64               `json:"instructions"`
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+"_golden.json")
}

func TestGoldenLULESH(t *testing.T) {
	checkGolden(t, "lulesh", getLULESH(t))
}

func TestGoldenMILC(t *testing.T) {
	checkGolden(t, "milc", getMILC(t))
}

func checkGolden(t *testing.T, name string, rep *Report) {
	t.Helper()
	got := goldenSnapshot{
		Census:       rep.Census([]string{"p", "size"}),
		FuncDeps:     rep.FuncDeps,
		Instructions: rep.Instructions,
	}
	if got.FuncDeps == nil {
		got.FuncDeps = map[string][]string{}
	}
	raw, err := json.MarshalIndent(&got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot %s: %v\n%s", path, err, updateHint)
	}
	if bytes.Equal(raw, want) {
		return
	}
	// Stale snapshot: summarize WHAT drifted (a handful of lines, not a
	// raw JSON dump) and say exactly how to re-bless, so a CI failure is
	// actionable from the log alone.
	var wantSnap goldenSnapshot
	if err := json.Unmarshal(want, &wantSnap); err != nil {
		t.Fatalf("corrupt golden snapshot %s: %v\n%s", path, err, updateHint)
	}
	var drift []string
	if got.Census != wantSnap.Census {
		drift = append(drift, fmt.Sprintf("census: got %+v, snapshot %+v", got.Census, wantSnap.Census))
	}
	if got.Instructions != wantSnap.Instructions {
		drift = append(drift, fmt.Sprintf("tainted-run instructions: got %d, snapshot %d",
			got.Instructions, wantSnap.Instructions))
	}
	for fn, deps := range wantSnap.FuncDeps {
		if !equalStrings(got.FuncDeps[fn], deps) {
			drift = append(drift, fmt.Sprintf("FuncDeps[%q]: got %v, snapshot %v", fn, got.FuncDeps[fn], deps))
		}
	}
	for fn := range got.FuncDeps {
		if _, ok := wantSnap.FuncDeps[fn]; !ok {
			drift = append(drift, fmt.Sprintf("FuncDeps[%q]: new function %v not in snapshot", fn, got.FuncDeps[fn]))
		}
	}
	if len(drift) == 0 {
		drift = append(drift, "snapshot differs only in JSON formatting")
	}
	sort.Strings(drift)
	t.Fatalf("golden snapshot %s is STALE (%d drift(s)):\n  %s\n%s",
		path, len(drift), strings.Join(drift, "\n  "), updateHint)
}

// updateHint is the re-bless recipe printed on every stale-snapshot
// failure: golden drift should end in one command, not archaeology.
const updateHint = `If this change is intentional, re-bless the snapshots and commit them:
    go test ./internal/core -run Golden -update
The smoke test (cmd/servicesmoke) and CI gate on these files, so never
hand-edit them.`

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
