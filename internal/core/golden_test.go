package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden testdata snapshots")

// goldenSnapshot freezes the paper-facing outputs of one bundled app: the
// Table 2 census at the paper's model parameters, the per-function taint
// dependencies, and the dynamic cost of the taint run. Any interpreter or
// taint change that drifts these numbers fails loudly; intentional changes
// re-bless with `go test ./internal/core -run Golden -update`.
type goldenSnapshot struct {
	Census       Census              `json:"census"`
	FuncDeps     map[string][]string `json:"func_deps"`
	Instructions int64               `json:"instructions"`
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+"_golden.json")
}

func TestGoldenLULESH(t *testing.T) {
	checkGolden(t, "lulesh", getLULESH(t))
}

func TestGoldenMILC(t *testing.T) {
	checkGolden(t, "milc", getMILC(t))
}

func checkGolden(t *testing.T, name string, rep *Report) {
	t.Helper()
	got := goldenSnapshot{
		Census:       rep.Census([]string{"p", "size"}),
		FuncDeps:     rep.FuncDeps,
		Instructions: rep.Instructions,
	}
	if got.FuncDeps == nil {
		got.FuncDeps = map[string][]string{}
	}
	raw, err := json.MarshalIndent(&got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
	}
	if !bytes.Equal(raw, want) {
		var wantSnap goldenSnapshot
		if err := json.Unmarshal(want, &wantSnap); err != nil {
			t.Fatalf("corrupt golden snapshot %s: %v", path, err)
		}
		if got.Census != wantSnap.Census {
			t.Errorf("census drifted from %s:\n got: %+v\nwant: %+v", path, got.Census, wantSnap.Census)
		}
		if got.Instructions != wantSnap.Instructions {
			t.Errorf("tainted-run instruction count drifted: got %d, want %d", got.Instructions, wantSnap.Instructions)
		}
		for fn, deps := range wantSnap.FuncDeps {
			if !equalStrings(got.FuncDeps[fn], deps) {
				t.Errorf("FuncDeps[%q] drifted: got %v, want %v", fn, got.FuncDeps[fn], deps)
			}
		}
		for fn := range got.FuncDeps {
			if _, ok := wantSnap.FuncDeps[fn]; !ok {
				t.Errorf("FuncDeps gained unexpected function %q = %v", fn, got.FuncDeps[fn])
			}
		}
		if !t.Failed() {
			t.Errorf("golden snapshot %s differs in formatting; re-bless with -update", path)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
