package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
)

// Integration tests exercising the paper's formal claims end-to-end on
// handcrafted mini applications.

// miniSpec builds: main(n, m) { for(i<n){ for(j<m){ work } }; for(k<m){ work } }
// via two callees so interprocedural composition is exercised.
func miniSpec() *apps.Spec {
	s := &apps.Spec{
		Name:    "mini",
		Params:  []string{"n", "m"},
		MPIUsed: []string{"MPI_Comm_size"},
	}
	inner := &apps.FuncSpec{
		Name: "inner", Kind: apps.KindKernel, WorkNanos: 1,
		Body: []apps.Stmt{apps.Loop{Kind: apps.ParamBound, Bound: apps.QP(1, "m", 1),
			Body: []apps.Stmt{apps.Work{Units: 1}}}},
	}
	tail := &apps.FuncSpec{
		Name: "tail", Kind: apps.KindKernel, WorkNanos: 1,
		Body: []apps.Stmt{apps.Loop{Kind: apps.ParamBound, Bound: apps.QP(1, "m", 1),
			Body: []apps.Stmt{apps.Work{Units: 1}}}},
	}
	main := &apps.FuncSpec{
		Name: "main", Kind: apps.KindMain, WorkNanos: 1,
		Body: []apps.Stmt{
			apps.Loop{Kind: apps.ParamBound, Bound: apps.QP(1, "n", 1),
				Body: []apps.Stmt{apps.Call{Callee: "inner"}}},
			apps.Call{Callee: "tail"},
		},
	}
	s.Funcs = []*apps.FuncSpec{main, inner, tail}
	return s
}

func miniReport(t *testing.T) *Report {
	t.Helper()
	rep, err := Analyze(miniSpec(), apps.Config{"n": 4, "m": 6, "p": 2})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// Claim 1: the taint analysis computes, for each loop, the exact parameter
// set that can influence its iteration count.
func TestClaim1ExactParameterSets(t *testing.T) {
	rep := miniReport(t)
	if got := rep.LoopDeps["inner"]; !reflect.DeepEqual(got, []string{"m"}) {
		t.Fatalf("inner loop deps = %v, want [m]", got)
	}
	if got := rep.LoopDeps["main"]; !reflect.DeepEqual(got, []string{"n"}) {
		t.Fatalf("main loop deps = %v, want [n]", got)
	}
}

// Claim 2 / Theorem 1: sequencing composes additively and nesting
// (including through calls) multiplicatively, giving the program's
// asymptotic compute volume.
func TestClaim2VolumeComposition(t *testing.T) {
	rep := miniReport(t)
	st := rep.Structure("main")
	if !st.Multiplicative("n", "m") {
		t.Fatalf("inner call under n-loop must couple n*m: %s", st)
	}
	// The sequenced tail call contributes an additive m-only group.
	foundAdditiveM := false
	for _, g := range st.Groups {
		if len(g) == 1 && g[0] == "m" {
			foundAdditiveM = true
		}
	}
	if !foundAdditiveM {
		t.Fatalf("sequenced tail loop must stay additive in m: %s", st)
	}
}

// The hybrid prior derived from the volumes restricts models to real
// parameters only.
func TestPriorFollowsClaims(t *testing.T) {
	rep := miniReport(t)
	pr := rep.Prior("inner", []string{"n", "m"})
	if pr.ForceConstant {
		t.Fatal("inner must not be constant")
	}
	// inner's own loops depend only on m; n reaches it only through the
	// caller's loop, which the per-function model does not include.
	if pr.Allowed["n"] || !pr.Allowed["m"] {
		t.Fatalf("inner prior = %+v, want m only", pr.Allowed)
	}
}

// Iteration counts observed by the sinks must match the configuration.
func TestDynamicIterationCounts(t *testing.T) {
	rep := miniReport(t)
	for _, rec := range rep.Engine.SortedLoops() {
		switch rec.Key.Func {
		case "main":
			if rec.Iterations != 4 {
				t.Fatalf("main loop iterations = %d, want n=4", rec.Iterations)
			}
		case "inner":
			// Called 4 times, 6 iterations each, single call path.
			if rec.Iterations != 24 {
				t.Fatalf("inner iterations = %d, want 24", rec.Iterations)
			}
			if rec.Entries != 4 {
				t.Fatalf("inner entries = %d, want 4", rec.Entries)
			}
		case "tail":
			if rec.Iterations != 6 {
				t.Fatalf("tail iterations = %d, want m=6", rec.Iterations)
			}
		}
	}
}

// Call-path context: the same callee under different paths yields separate
// records (the calling-context-aware models of Section 5.2).
func TestCallPathContextSeparation(t *testing.T) {
	s := miniSpec()
	// Add a second caller of inner outside any loop.
	s.Funcs[0].Body = append(s.Funcs[0].Body, apps.Call{Callee: "inner"})
	rep, err := Analyze(s, apps.Config{"n": 4, "m": 6, "p": 2})
	if err != nil {
		t.Fatal(err)
	}
	paths := make(map[string]bool)
	for _, rec := range rep.Engine.SortedLoops() {
		if rec.Key.Func == "inner" {
			paths[rec.Key.CallPath] = true
		}
	}
	if len(paths) != 1 {
		// Both call sites share the path main/inner; the context is the
		// function chain, not the call site — matching Score-P call paths.
		t.Fatalf("call paths = %v", paths)
	}
}

// A spec parameter that never reaches any loop is invisible everywhere.
func TestIrrelevantParameterInvisible(t *testing.T) {
	s := miniSpec()
	s.Params = append(s.Params, "unused")
	rep, err := Analyze(s, apps.Config{"n": 4, "m": 6, "unused": 9, "p": 2})
	if err != nil {
		t.Fatal(err)
	}
	for fn, deps := range rep.FuncDeps {
		for _, d := range deps {
			if d == "unused" {
				t.Fatalf("unused parameter leaked into %s", fn)
			}
		}
	}
	rows, _, _ := rep.Coverage([]string{"n", "m"})
	for _, row := range rows {
		if row.Param == "unused" && (row.Functions != 0 || row.Loops != 0) {
			t.Fatalf("unused parameter covered %d functions / %d loops", row.Functions, row.Loops)
		}
	}
}
