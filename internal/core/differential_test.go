package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/taint"
)

// engineDump renders the complete dynamic taint state of a report
// deterministically. Labels are compared by their base-parameter masks (the
// semantic identity of a label); raw table ids may differ because the fast
// engine's merged control scopes can materialize different intermediate
// labels in the union table.
func engineDump(r *Report) string {
	e := r.Engine
	var sb strings.Builder
	mask := func(l taint.Label) uint64 { return e.Table.Mask(l) }
	fmt.Fprintf(&sb, "instr=%d base=%d\n", r.Instructions, e.Table.NumBase())
	for _, rec := range e.SortedLoops() {
		fmt.Fprintf(&sb, "loop %s#%d@%d path=%s labels=%x iter=%d entries=%d\n",
			rec.Key.Func, rec.Key.LoopID, rec.Header, rec.Key.CallPath,
			mask(rec.Labels), rec.Iterations, rec.Entries)
	}
	branches := make([]*taint.BranchRecord, 0, len(e.Branches))
	for _, rec := range e.Branches {
		branches = append(branches, rec)
	}
	sort.Slice(branches, func(i, j int) bool {
		if branches[i].Key.Func != branches[j].Key.Func {
			return branches[i].Key.Func < branches[j].Key.Func
		}
		return branches[i].Key.Block < branches[j].Key.Block
	})
	for _, rec := range branches {
		fmt.Fprintf(&sb, "branch %s@%d labels=%x taken=%d nottaken=%d exit=%v\n",
			rec.Key.Func, rec.Key.Block, mask(rec.Labels), rec.Taken, rec.NotTaken, rec.IsLoopExit)
	}
	libs := make([]*taint.LibCallRecord, 0, len(e.LibCalls))
	for _, rec := range e.LibCalls {
		libs = append(libs, rec)
	}
	sort.Slice(libs, func(i, j int) bool {
		a, b := libs[i].Key, libs[j].Key
		if a.CallPath != b.CallPath {
			return a.CallPath < b.CallPath
		}
		return a.Callee < b.Callee
	})
	for _, rec := range libs {
		fmt.Fprintf(&sb, "libcall %s->%s path=%s labels=%x count=%d\n",
			rec.Key.Caller, rec.Key.Callee, rec.Key.CallPath, mask(rec.Labels), rec.Count)
	}
	return sb.String()
}

// TestDifferentialBundledApps runs the full pipeline on both bundled
// applications under the fast and reference engines and requires identical
// reports: instruction counts, every taint record, the aggregated
// dependency maps, and the paper-facing census.
func TestDifferentialBundledApps(t *testing.T) {
	cases := []struct {
		name string
		spec *apps.Spec
		cfg  apps.Config
	}{
		{"lulesh", apps.LULESH(), apps.LULESHTaintConfig()},
		{"milc", apps.MILC(), apps.MILCTaintConfig()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Prepare(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := p.Analyze(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			p.Mode = interp.ModeReference
			ref, err := p.Analyze(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Instructions != ref.Instructions {
				t.Errorf("instructions: fast %d, reference %d", fast.Instructions, ref.Instructions)
			}
			if fd, rd := engineDump(fast), engineDump(ref); fd != rd {
				t.Fatalf("taint state diverged:\n--- reference ---\n%s\n--- fast ---\n%s", rd, fd)
			}
			for _, m := range []struct {
				name      string
				fast, ref map[string][]string
			}{
				{"FuncDeps", fast.FuncDeps, ref.FuncDeps},
				{"LoopDeps", fast.LoopDeps, ref.LoopDeps},
				{"LibDeps", fast.LibDeps, ref.LibDeps},
			} {
				if !reflect.DeepEqual(m.fast, m.ref) {
					t.Errorf("%s diverged:\nfast: %v\nreference: %v", m.name, m.fast, m.ref)
				}
			}
			if !reflect.DeepEqual(fast.Relevant, ref.Relevant) {
				t.Errorf("Relevant diverged")
			}
			fc := fast.Census([]string{"p", "size"})
			rc := ref.Census([]string{"p", "size"})
			if fc != rc {
				t.Errorf("census diverged:\nfast: %+v\nreference: %+v", fc, rc)
			}
		})
	}
}
