package core

import (
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/libdb"
	"repro/internal/loopmodel"
	"repro/internal/scev"
	"repro/internal/taint"
)

// Prepared caches the per-spec artifacts that every configuration of a
// batch shares: the built and verified IR module, the library database,
// and the static classification of Section 5.1. Building the module and
// running the static pass dominate single-run latency, so preparing once
// and fanning the dynamic tainted runs out over configurations is what
// makes batch analysis scale (see internal/runner).
//
// A Prepared value is immutable after construction and safe for concurrent
// use: every Analyze call creates its own interpreter machine and taint
// engine, and only reads the shared module, database, and static maps.
type Prepared struct {
	Spec   *apps.Spec
	Module *ir.Module
	DB     *libdb.DB

	// Digest is the content address of Spec (see SpecDigest): equal
	// digests mean interchangeable Prepared values, which is what lets
	// the service layer share one Prepared across tenants.
	Digest string

	// Static is the compile-time classification (Section 5.1), computed
	// exactly once per spec and shared read-only by every dynamic run.
	Static map[string]*scev.FuncClass

	// Program is the predecoded module for the fast interpreter, built once
	// per spec and shared read-only by every dynamic run of a batch.
	Program *interp.Program

	// Mode selects the interpreter engine for Analyze runs; the zero value
	// is the fast engine. The reference mode exists for differential and
	// oracle runs; the compiled mode lowers Program into closure chains
	// once per Prepared (see CompiledProgram).
	Mode interp.Mode

	// compiled is the closure-chain artifact of the compiled engine tier,
	// built at most once per Prepared value. Because the service layer
	// interns Prepared by SpecDigest (PreparedCache: singleflight + LRU),
	// hanging the artifact here gives digest-keyed compiled-artifact
	// caching for free. Go closures cannot be serialized, so unlike the
	// canonical spec bytes the artifact never reaches the disk tier: a
	// restarted daemon re-lowers on first compiled-mode use of a digest.
	compiledOnce sync.Once
	compiled     *interp.Compiled
}

// CompiledProgram returns the compiled-closure artifact for Program,
// lowering it on first use. Safe for concurrent use; every Analyze run
// of a ModeCompiled Prepared shares the one artifact read-only.
func (p *Prepared) CompiledProgram() *interp.Compiled {
	p.compiledOnce.Do(func() { p.compiled = interp.Compile(p.Program) })
	return p.compiled
}

// Prepare builds the module from spec, verifies it against the default MPI
// library database, and runs the static pass — the spec-level half of the
// pipeline, independent of any configuration.
func Prepare(spec *apps.Spec) (*Prepared, error) {
	db := libdb.DefaultMPI()
	if err := validateTaintParams(spec); err != nil {
		return nil, err
	}
	mod, err := apps.BuildModule(spec)
	if err != nil {
		return nil, fmt.Errorf("core: build module: %w", err)
	}
	if err := ir.VerifyModule(mod, func(name string) bool {
		_, ok := db.Lookup(name)
		return ok
	}); err != nil {
		return nil, fmt.Errorf("core: verify module: %w", err)
	}
	return PrepareModule(spec, mod, db), nil
}

// validateTaintParams rejects specs whose distinct taint parameters — the
// declared spec parameters plus the implicit library parameter p — exceed
// the 64-bit mask budget of the taint engine. Catching this at Prepare time
// turns a would-be hot-loop panic into a typed, actionable error
// (taint.TooManyLabelsError) before any expensive work runs.
func validateTaintParams(spec *apps.Spec) error {
	distinct := make(map[string]bool, len(spec.Params)+1)
	for _, p := range spec.Params {
		distinct[p] = true
	}
	distinct[libdb.MPIParam] = true
	if n := len(distinct); n > taint.MaxBaseLabels {
		return fmt.Errorf("core: spec %q declares %d distinct taint parameters (including implicit %q): %w",
			spec.Name, n, libdb.MPIParam, &taint.TooManyLabelsError{Declared: n})
	}
	return nil
}

// PrepareModule runs the static pass over an already built and verified
// module, caching the artifacts for repeated dynamic runs.
func PrepareModule(spec *apps.Spec, mod *ir.Module, db *libdb.DB) *Prepared {
	return &Prepared{
		Spec:    spec,
		Module:  mod,
		DB:      db,
		Digest:  SpecDigest(spec),
		Static:  scev.AnalyzeModule(mod, db.Relevant),
		Program: interp.Predecode(mod),
	}
}

// Analyze runs the per-configuration dynamic stage on the cached
// artifacts: the tainted execution, dependency aggregation, symbolic
// volumes, and the relevance filter. cfg must contain every spec parameter
// plus the implicit MPI parameter p. Analyze is safe to call from multiple
// goroutines on the same Prepared value.
func (p *Prepared) Analyze(cfg apps.Config) (*Report, error) {
	r := &Report{Spec: p.Spec, Module: p.Module, DB: p.DB, Static: p.Static}

	// Stage 2: dynamic taint analysis. The predecoded program is shared
	// read-only across all concurrent runs of this Prepared.
	engine := taint.NewEngine()
	mach := interp.NewMachine(p.Module)
	mach.Taint = engine
	mach.Fuel = 4_000_000_000
	mach.Mode = p.Mode
	mach.Prog = p.Program
	if p.Mode == interp.ModeCompiled {
		mach.Compiled = p.CompiledProgram()
	}
	pVal := int64(cfg["p"])
	if pVal <= 0 {
		return nil, fmt.Errorf("core: config missing implicit parameter p")
	}
	p.DB.Bind(mach, engine, libdb.RunConfig{CommSize: pVal, Rank: 0})

	labels := make([]taint.Label, len(p.Spec.Params))
	for i, prm := range p.Spec.Params {
		labels[i] = engine.Table.Base(prm)
	}
	res, err := mach.Run("main", apps.TaintArgs(p.Spec, cfg), labels)
	if err != nil {
		return nil, fmt.Errorf("core: tainted run: %w", err)
	}
	r.Engine = engine
	r.Instructions = res.Instructions

	// Stage 3: aggregation. FuncDeps is transitive over the call graph:
	// the paper's models are calling-context profiles, so a function whose
	// callee communicates inherits the callee's parametric dependencies
	// (CalcQForElems inherits p from the boundary exchange it triggers).
	r.LoopDeps = engine.FuncLoopDeps()
	r.LibDeps = engine.FuncLibDeps()
	r.FuncDeps = propagateDeps(p.Module, unionDeps(r.LoopDeps, r.LibDeps))

	// Stage 4: symbolic volumes with static trip counts and library shapes.
	loopDepFn := func(fn string, loopID int) []string {
		l := taint.None
		for k, rec := range engine.Loops {
			if k.Func == fn && k.LoopID == loopID {
				l |= rec.Labels
			}
		}
		return engine.Table.Expand(l)
	}
	tripFn := func(fn string, loopID int) (int64, bool) {
		fc := r.Static[fn]
		if fc == nil {
			return 0, false
		}
		tc, ok := fc.Loops[loopID]
		if !ok || !tc.Constant {
			return 0, false
		}
		return tc.Count, true
	}
	r.Volumes = loopmodel.Compute(p.Module, loopDepFn, tripFn, p.DB.ExternVolume())

	// Stage 5: relevance (the taint-based instrumentation filter).
	r.Relevant = make(map[string]bool)
	for fn, deps := range r.FuncDeps {
		if len(deps) > 0 {
			r.Relevant[fn] = true
		}
	}
	r.Relevant[p.Spec.Main().Name] = true
	return r, nil
}
