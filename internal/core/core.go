package core
