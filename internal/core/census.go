package core

import (
	"repro/internal/apps"
	"repro/internal/cfg"
	"repro/internal/taint"
)

// Census is the two-phase identification summary of Table 2.
type Census struct {
	// FunctionsTotal counts spec functions plus used MPI routines, matching
	// the paper's accounting.
	FunctionsTotal    int
	PrunedStatically  int
	PrunedDynamically int
	Kernels           int
	CommRoutines      int
	MPIFunctions      int

	LoopsTotal          int
	LoopsPrunedStatic   int
	LoopsRelevant       int
	LoopsUntaintedOther int

	// PercentConstant is the share of functions classified constant
	// (statically or dynamically pruned): 86.2% for LULESH, 87.7% for MILC.
	PercentConstant float64
}

// Census derives the Table 2 numbers from the report. modelParams selects
// the loop-relevance column ({p, size} in the paper).
func (r *Report) Census(modelParams []string) Census {
	var c Census
	c.MPIFunctions = len(r.Spec.MPIUsed)
	c.FunctionsTotal = len(r.Spec.Funcs) + c.MPIFunctions

	kindOf := make(map[string]apps.Kind, len(r.Spec.Funcs))
	for _, f := range r.Spec.Funcs {
		kindOf[f.Name] = f.Kind
	}

	for _, f := range r.Spec.Funcs {
		fc := r.Static[f.Name]
		switch {
		case fc != nil && fc.Pruned && !r.Relevant[f.Name]:
			c.PrunedStatically++
		case !r.Relevant[f.Name]:
			c.PrunedDynamically++
		case f.Kind == apps.KindComm:
			c.CommRoutines++
		default:
			c.Kernels++
		}
	}
	c.PercentConstant = 100 * float64(c.PrunedStatically+c.PrunedDynamically) /
		float64(len(r.Spec.Funcs))

	// Loop census over the whole module.
	inModel := make(map[string]bool, len(modelParams))
	for _, p := range modelParams {
		inModel[p] = true
	}
	type loopID struct {
		fn string
		id int
	}
	tainted := make(map[loopID][]string)
	for k, rec := range r.Engine.Loops {
		key := loopID{k.Func, k.LoopID}
		tainted[key] = r.Engine.Table.Expand(
			rec.Labels | labelOfDeps(r, tainted[key]))
	}

	for _, fn := range r.Module.FuncList {
		g := cfg.Build(fn)
		forest := cfg.FindLoops(g)
		c.LoopsTotal += len(forest.Loops)
		fc := r.Static[fn.Name]
		for _, l := range forest.Loops {
			if fc != nil {
				if tc, ok := fc.Loops[l.ID]; ok && tc.Constant {
					c.LoopsPrunedStatic++
					continue
				}
			}
			deps := tainted[loopID{fn.Name, l.ID}]
			relevant := false
			for _, d := range deps {
				if inModel[d] {
					relevant = true
					break
				}
			}
			if relevant {
				c.LoopsRelevant++
			} else {
				c.LoopsUntaintedOther++
			}
		}
	}
	return c
}

// labelOfDeps folds an existing dependency list back into a label so
// repeated census passes stay idempotent.
func labelOfDeps(r *Report, deps []string) (l taint.Label) {
	for _, d := range deps {
		l |= r.Engine.Table.Base(d)
	}
	return l
}
