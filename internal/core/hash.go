package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/apps"
)

// DigestVersion salts every spec digest. Bump it whenever the pipeline's
// semantics change in a way that invalidates cached Prepared artifacts
// (new static pass, different predecoding, ...): old and new processes
// then address disjoint cache entries instead of sharing stale ones. The
// disk-backed cache tier also uses it as the version stamp of its on-disk
// root, so a bump orphans (rather than reinterprets) persisted entries.
const DigestVersion = "perftaint-prepared-v2"

// SpecDigest returns the content address of a spec: a hex SHA-256 over a
// canonical encoding of everything the analysis pipeline can observe — the
// function bodies from which the module IR derives deterministically, the
// taint spec (marked parameters in declaration order), the MPI surface,
// and the census-facing metadata (kinds, work model). Two specs that are
// structurally identical hash identically regardless of how their value
// maps were built (Quantity powers are serialized in sorted key order),
// while any semantic difference — a bound, a callee, a parameter — yields
// a different address.
//
// The service layer keys its shared PreparedCache on this digest, so the
// digest must pin down core.Prepare's output exactly: Prepare consumes
// nothing outside the spec, and BuildModule is deterministic, so equal
// digests imply interchangeable Prepared values.
func SpecDigest(spec *apps.Spec) string {
	h := sha256.New()
	writeCanonicalSpec(specWriter{h: h}, spec)
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalSpecBytes returns the exact byte stream SpecDigest hashes:
// the canonical, self-delimiting encoding of everything the pipeline can
// observe about a spec. The disk cache tier persists these bytes as the
// Prepared entry's payload — sha256(CanonicalSpecBytes(spec)) is
// SpecDigest(spec) by construction, so a persisted entry verifies
// against its own file name with no second bookkeeping channel.
func CanonicalSpecBytes(spec *apps.Spec) []byte {
	var buf bytes.Buffer
	writeCanonicalSpec(specWriter{h: &buf}, spec)
	return buf.Bytes()
}

// writeCanonicalSpec streams the one canonical encoding both SpecDigest
// and CanonicalSpecBytes are defined over.
func writeCanonicalSpec(w specWriter, spec *apps.Spec) {
	w.str(DigestVersion)
	w.str(spec.Name)
	w.strs("params", spec.Params)
	w.strs("mpi", spec.MPIUsed)
	w.num("funcs", len(spec.Funcs))
	for _, f := range spec.Funcs {
		w.str(f.Name)
		w.num("kind", int(f.Kind))
		w.f64(f.WorkNanos)
		w.f64(f.MemIntensity)
		w.f64(f.HWFactorPExp)
		w.f64(f.ImbalanceSkew)
		w.bool(f.InlineEstimate)
		w.body(f.Body)
	}
}

// specWriter streams a canonical, self-delimiting encoding of a spec into
// a hash (or any writer). Every field is length- or tag-prefixed so
// distinct structures can never serialize to the same byte stream.
type specWriter struct{ h io.Writer }

func (w specWriter) str(s string) {
	fmt.Fprintf(w.h, "s%d:%s;", len(s), s)
}

func (w specWriter) num(tag string, n int) {
	fmt.Fprintf(w.h, "%s=%d;", tag, n)
}

func (w specWriter) f64(v float64) {
	fmt.Fprintf(w.h, "f%s;", strconv.FormatFloat(v, 'g', -1, 64))
}

func (w specWriter) bool(b bool) {
	fmt.Fprintf(w.h, "b%t;", b)
}

func (w specWriter) strs(tag string, ss []string) {
	w.num(tag, len(ss))
	for _, s := range ss {
		w.str(s)
	}
}

// quantity encodes a monomial with its power map in sorted key order, so
// equivalent quantities built in different insertion orders coincide.
func (w specWriter) quantity(q apps.Quantity) {
	w.f64(q.Coeff)
	keys := make([]string, 0, len(q.Pow))
	for k, pow := range q.Pow {
		if pow != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w.num("pow", len(keys))
	for _, k := range keys {
		w.str(k)
		w.num("e", q.Pow[k])
	}
}

func (w specWriter) body(body []apps.Stmt) {
	w.num("body", len(body))
	for _, st := range body {
		switch v := st.(type) {
		case apps.Loop:
			w.str("loop")
			w.num("bound", int(v.Kind))
			w.quantity(v.Bound)
			w.body(v.Body)
		case apps.Call:
			w.str("call")
			w.str(v.Callee)
			if v.CountArg != nil {
				w.bool(true)
				w.quantity(*v.CountArg)
			} else {
				w.bool(false)
			}
		case apps.Work:
			w.str("work")
			w.f64(v.Units)
		case apps.Branch:
			w.str("branch")
			w.str(v.Param)
			w.f64(v.Less)
			w.body(v.Then)
			w.body(v.Else)
		default:
			// Unknown statement kinds must not silently collide; encode
			// their Go syntax, which at least separates distinct values.
			w.str(fmt.Sprintf("unknown:%T:%v", st, st))
		}
	}
}
