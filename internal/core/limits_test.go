package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/taint"
)

// overParamSpec clones LULESH and inflates its parameter list to n distinct
// names (LULESH's own parameters first, padding after).
func overParamSpec(n int) *apps.Spec {
	spec := apps.LULESH()
	params := append([]string(nil), spec.Params...)
	for i := 0; len(params) < n; i++ {
		params = append(params, fmt.Sprintf("pad%02d", i))
	}
	spec.Params = params
	return spec
}

func TestPrepareRejectsTooManyTaintParams(t *testing.T) {
	// 64 declared + implicit p = 65 distinct > MaxBaseLabels.
	_, err := Prepare(overParamSpec(taint.MaxBaseLabels))
	if err == nil {
		t.Fatal("Prepare accepted a spec exceeding the mask budget")
	}
	var tme *taint.TooManyLabelsError
	if !errors.As(err, &tme) {
		t.Fatalf("want TooManyLabelsError, got %T: %v", err, err)
	}
	if tme.Declared != taint.MaxBaseLabels+1 {
		t.Fatalf("Declared = %d, want %d", tme.Declared, taint.MaxBaseLabels+1)
	}
}

func TestPrepareAcceptsMaxTaintParams(t *testing.T) {
	// 63 declared + implicit p = exactly MaxBaseLabels distinct: allowed.
	if _, err := Prepare(overParamSpec(taint.MaxBaseLabels - 1)); err != nil {
		t.Fatalf("Prepare rejected a spec at the mask budget: %v", err)
	}
}
