package core

import (
	"testing"

	"repro/internal/apps"
)

// twinSpec builds one of two structurally identical specs whose Quantity
// power maps are populated in opposite insertion orders — the digest must
// not observe map construction history.
func twinSpec(reversed bool) *apps.Spec {
	pow := func(a, b string) map[string]int {
		m := make(map[string]int)
		if reversed {
			m[b] = 2
			m[a] = 1
		} else {
			m[a] = 1
			m[b] = 2
		}
		return m
	}
	bound := apps.Quantity{Coeff: 3, Pow: pow("size", "p")}
	count := apps.Quantity{Coeff: 8, Pow: pow("size", "p")}
	return &apps.Spec{
		Name:    "twin",
		Params:  []string{"size"},
		MPIUsed: []string{"MPI_Allreduce"},
		Funcs: []*apps.FuncSpec{
			{Name: "main", Kind: apps.KindMain, Body: []apps.Stmt{
				apps.Loop{Kind: apps.ParamBound, Bound: bound, Body: []apps.Stmt{
					apps.Work{Units: 4},
					apps.Call{Callee: "MPI_Allreduce", CountArg: &count},
				}},
			}},
		},
	}
}

func TestSpecDigestStableAcrossEquivalentSpecs(t *testing.T) {
	a, b := twinSpec(false), twinSpec(true)
	da, db := SpecDigest(a), SpecDigest(b)
	if da != db {
		t.Fatalf("equivalent specs hash differently: %s vs %s", da, db)
	}
	if da2 := SpecDigest(a); da2 != da {
		t.Fatalf("digest not deterministic: %s vs %s", da, da2)
	}
	// Zero powers are semantically absent and must not perturb the hash.
	c := twinSpec(false)
	c.Funcs[0].Body[0].(apps.Loop).Bound.Pow["unused"] = 0
	if dc := SpecDigest(c); dc != da {
		t.Fatalf("zero power changed digest: %s vs %s", dc, da)
	}
}

func TestSpecDigestSeparatesSpecs(t *testing.T) {
	base := SpecDigest(twinSpec(false))
	seen := map[string]string{base: "base"}
	check := func(name string, mutate func(*apps.Spec)) {
		t.Helper()
		s := twinSpec(false)
		mutate(s)
		d := SpecDigest(s)
		if prev, dup := seen[d]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[d] = name
	}
	check("coeff", func(s *apps.Spec) {
		lp := s.Funcs[0].Body[0].(apps.Loop)
		lp.Bound.Coeff = 4
		s.Funcs[0].Body[0] = lp
	})
	check("param-power", func(s *apps.Spec) {
		s.Funcs[0].Body[0].(apps.Loop).Bound.Pow["p"] = 3
	})
	check("bound-kind", func(s *apps.Spec) {
		lp := s.Funcs[0].Body[0].(apps.Loop)
		lp.Kind = apps.RuntimeConst
		s.Funcs[0].Body[0] = lp
	})
	check("params", func(s *apps.Spec) { s.Params = []string{"size", "iters"} })
	check("work-units", func(s *apps.Spec) {
		lp := s.Funcs[0].Body[0].(apps.Loop)
		lp.Body[0] = apps.Work{Units: 5}
	})
	check("func-kind", func(s *apps.Spec) { s.Funcs[0].Kind = apps.KindKernel })
	check("nesting", func(s *apps.Spec) {
		// Flattening the loop must change the digest even though the
		// flat statement list contains the same leaves.
		lp := s.Funcs[0].Body[0].(apps.Loop)
		s.Funcs[0].Body = append([]apps.Stmt{apps.Loop{Kind: lp.Kind, Bound: lp.Bound}}, lp.Body...)
	})
	if len(seen) != 8 {
		t.Fatalf("expected 8 distinct digests, got %d", len(seen))
	}
}

func TestSpecDigestMatchesBundledApps(t *testing.T) {
	if SpecDigest(apps.LULESH()) == SpecDigest(apps.MILC()) {
		t.Fatal("LULESH and MILC must not share a content address")
	}
	// Prepare stamps the digest it was addressed by.
	p, err := Prepare(apps.LULESH())
	if err != nil {
		t.Fatal(err)
	}
	if p.Digest != SpecDigest(apps.LULESH()) {
		t.Fatalf("Prepared.Digest %q does not match SpecDigest", p.Digest)
	}
}
