// Package core implements the Perf-Taint pipeline of Figure 2: static
// pruning, the dynamic tainted run, aggregation of loop and library
// dependencies per function, symbolic volume composition, the census of
// Table 2, the instrumentation-relevance set (A3), experiment-design
// reduction (A2), and the white-box priors handed to the Extra-P modeler
// (B1/B2).
package core

import (
	"sort"

	"repro/internal/apps"
	"repro/internal/cfg"
	"repro/internal/extrap"
	"repro/internal/ir"
	"repro/internal/libdb"
	"repro/internal/loopmodel"
	"repro/internal/scev"
	"repro/internal/taint"
)

// Report is the complete result of one Perf-Taint analysis run.
type Report struct {
	Spec   *apps.Spec
	Module *ir.Module
	DB     *libdb.DB

	// Static holds the compile-time classification (Section 5.1).
	Static map[string]*scev.FuncClass
	// Engine is the dynamic taint state (Section 5.2).
	Engine *taint.Engine

	// LoopDeps aggregates, per function, the parameters tainting its loop
	// exit conditions across all calling contexts.
	LoopDeps map[string][]string
	// LibDeps aggregates per function the parametric dependencies of its
	// library calls (implicit p plus tainted count arguments, Section 5.3).
	LibDeps map[string][]string
	// FuncDeps is the union of LoopDeps and LibDeps.
	FuncDeps map[string][]string

	// Volumes is the symbolic compute-volume model (Theorem 1).
	Volumes *loopmodel.Volumes

	// Relevant marks functions with any parameter dependence: the
	// taint-based instrumentation filter (A3).
	Relevant map[string]bool

	// Instructions is the dynamic cost of the tainted run.
	Instructions int64
}

// Analyze builds the module from spec, runs the static pass and the tainted
// execution at cfg, and assembles the report. cfg must contain every spec
// parameter plus p. For repeated analyses of one spec at many
// configurations, Prepare once and call Prepared.Analyze per configuration
// (or use internal/runner to fan out across cores).
func Analyze(spec *apps.Spec, cfg apps.Config) (*Report, error) {
	p, err := Prepare(spec)
	if err != nil {
		return nil, err
	}
	return p.Analyze(cfg)
}

// AnalyzeModule runs the pipeline on an already built module.
func AnalyzeModule(spec *apps.Spec, mod *ir.Module, db *libdb.DB, cfg apps.Config) (*Report, error) {
	return PrepareModule(spec, mod, db).Analyze(cfg)
}

// propagateDeps folds callee dependencies into callers bottom-up.
func propagateDeps(mod *ir.Module, direct map[string][]string) map[string][]string {
	cg := cfg.BuildCallGraph(mod)
	order := cfg.TopoOrder(mod, cg)
	out := make(map[string]map[string]bool, len(order))
	for _, fn := range order {
		set := make(map[string]bool)
		for _, d := range direct[fn.Name] {
			set[d] = true
		}
		for _, callee := range cg.Callees[fn.Name] {
			for d := range out[callee] {
				set[d] = true
			}
		}
		out[fn.Name] = set
	}
	res := make(map[string][]string, len(out))
	for fn, set := range out {
		if len(set) == 0 {
			continue
		}
		list := make([]string, 0, len(set))
		for d := range set {
			list = append(list, d)
		}
		sort.Strings(list)
		res[fn] = list
	}
	return res
}

func unionDeps(a, b map[string][]string) map[string][]string {
	set := make(map[string]map[string]bool)
	merge := func(m map[string][]string) {
		for fn, deps := range m {
			if set[fn] == nil {
				set[fn] = make(map[string]bool)
			}
			for _, d := range deps {
				set[fn][d] = true
			}
		}
	}
	merge(a)
	merge(b)
	out := make(map[string][]string, len(set))
	for fn, ds := range set {
		list := make([]string, 0, len(ds))
		for d := range ds {
			list = append(list, d)
		}
		sort.Strings(list)
		out[fn] = list
	}
	return out
}

// DependsOnAny reports whether function fn depends on any of the given
// parameters.
func (r *Report) DependsOnAny(fn string, params []string) bool {
	for _, d := range r.FuncDeps[fn] {
		for _, p := range params {
			if d == p {
				return true
			}
		}
	}
	return false
}

// Prior derives the white-box modeling prior of function fn for the given
// model parameters: the allowed set is the intersection of the taint
// dependencies with the modeled parameters, and functions without any
// dependence are pinned constant. Multiplicative structure is not
// restricted — the paper uses it for experiment design (A2), not to veto
// hypotheses.
func (r *Report) Prior(fn string, modelParams []string) *extrap.Prior {
	allowed := make(map[string]bool)
	for _, d := range r.FuncDeps[fn] {
		for _, p := range modelParams {
			if d == p {
				allowed[p] = true
			}
		}
	}
	if len(allowed) == 0 {
		return &extrap.Prior{ForceConstant: true}
	}
	return &extrap.Prior{Allowed: allowed}
}

// Structure returns the dependency structure of fn's inclusive volume
// (additive groups of multiplicative sets), used by the experiment-design
// reduction.
func (r *Report) Structure(fn string) loopmodel.Structure {
	return r.Volumes.StructByFunc[fn]
}

// ParameterCoverage counts, for each parameter, how many functions and
// loops it affects (Table 3). Only spec functions of kernel, comm, and main
// kinds are counted, mirroring the paper's exclusion of pure library
// wrappers.
type ParameterCoverage struct {
	Param     string
	Functions int
	Loops     int
}

// Coverage computes per-parameter coverage plus the union row for the
// given model parameters.
func (r *Report) Coverage(modelParams []string) (rows []ParameterCoverage, unionFuncs, unionLoops int) {
	params := append([]string(nil), r.Spec.Params...)
	params = append(params, "p")
	kindOf := make(map[string]apps.Kind, len(r.Spec.Funcs))
	for _, f := range r.Spec.Funcs {
		kindOf[f.Name] = f.Kind
	}
	counted := func(fn string) bool {
		k, ok := kindOf[fn]
		return ok && (k == apps.KindKernel || k == apps.KindComm || k == apps.KindMain)
	}

	// Distinct loops per function+loopID with their labels.
	type loopID struct {
		fn string
		id int
	}
	loopLabels := make(map[loopID]taint.Label)
	for k, rec := range r.Engine.Loops {
		key := loopID{k.Func, k.LoopID}
		loopLabels[key] |= rec.Labels
	}

	inModel := func(name string) bool {
		for _, p := range modelParams {
			if p == name {
				return true
			}
		}
		return false
	}
	unionF := make(map[string]bool)
	unionL := make(map[loopID]bool)
	for _, param := range params {
		base := r.Engine.Table.LabelOf(param)
		fns := make(map[string]bool)
		loops := 0
		for key, l := range loopLabels {
			if !counted(key.fn) || base == taint.None || !r.Engine.Table.Has(l, base) {
				continue
			}
			fns[key.fn] = true
			loops++
			if inModel(param) {
				unionL[key] = true
			}
		}
		// Library dependencies extend function coverage (not loops).
		for fn, deps := range r.LibDeps {
			if !counted(fn) {
				continue
			}
			for _, d := range deps {
				if d == param {
					fns[fn] = true
				}
			}
		}
		if inModel(param) {
			for fn := range fns {
				unionF[fn] = true
			}
		}
		rows = append(rows, ParameterCoverage{Param: param, Functions: len(fns), Loops: loops})
	}
	return rows, len(unionF), len(unionL)
}
