// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): the pruning census (Table 2), parameter coverage
// (Table 3), instrumentation overhead (Figures 3-4), experiment-design
// reduction (A2), core-hour costs (A3), noise resilience (B1),
// instrumentation intrusion (B2), hardware-contention detection (Figure 5 /
// C1), and experiment-design validation (C2). Each experiment returns a
// result struct with a String renderer; cmd/experiments assembles them into
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
)

// Context shares the expensive analyses (taint runs) across experiments.
type Context struct {
	LULESH *core.Report
	MILC   *core.Report

	LRunner *cluster.Runner
	MRunner *cluster.Runner

	// ModelParams is the two-parameter modeling choice of the paper.
	ModelParams []string
}

// NewContext runs both taint analyses at the paper's configurations.
func NewContext() (*Context, error) {
	lspec := apps.LULESH()
	lrep, err := core.Analyze(lspec, apps.LULESHTaintConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: lulesh analysis: %w", err)
	}
	mspec := apps.MILC()
	mrep, err := core.Analyze(mspec, apps.MILCTaintConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: milc analysis: %w", err)
	}
	return &Context{
		LULESH:      lrep,
		MILC:        mrep,
		LRunner:     cluster.NewRunner(lspec),
		MRunner:     cluster.NewRunner(mspec),
		ModelParams: []string{"p", "size"},
	}, nil
}

// luleshSweep is the 25-point modeling design of Table 2.
func (c *Context) luleshSweep() []apps.Config {
	ps, sizes := apps.LULESHModelValues()
	defaults := apps.LULESHDefaults()
	return crossWithP(defaults, ps, sizes)
}

func (c *Context) milcSweep() []apps.Config {
	ps, sizes := apps.MILCModelValues()
	defaults := apps.MILCDefaults()
	return crossWithP(defaults, ps, sizes)
}

func crossWithP(defaults apps.Config, ps, sizes []float64) []apps.Config {
	var out []apps.Config
	for _, p := range ps {
		for _, s := range sizes {
			cfg := defaults.Clone()
			cfg["p"] = p
			cfg["size"] = s
			out = append(out, cfg)
		}
	}
	return out
}

// table renders rows of label/paper/measured triples.
type table struct {
	title string
	rows  [][3]string
}

func (t *table) add(label, paper, measured string) {
	t.rows = append(t.rows, [3]string{label, paper, measured})
}

func (t *table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n\n", t.title)
	sb.WriteString("| Quantity | Paper | Measured |\n|---|---|---|\n")
	for _, r := range t.rows {
		fmt.Fprintf(&sb, "| %s | %s | %s |\n", r[0], r[1], r[2])
	}
	return sb.String()
}

func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		if v <= 0 {
			v = 1e-12
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}
