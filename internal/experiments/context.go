// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): the pruning census (Table 2), parameter coverage
// (Table 3), instrumentation overhead (Figures 3-4), experiment-design
// reduction (A2), core-hour costs (A3), noise resilience (B1),
// instrumentation intrusion (B2), hardware-contention detection (Figure 5 /
// C1), and experiment-design validation (C2). Each experiment returns a
// result struct with a String renderer; cmd/experiments assembles them into
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
)

// Context shares the expensive analyses (taint runs) across experiments.
type Context struct {
	LULESH *core.Report
	MILC   *core.Report

	// LPrep and MPrep cache the per-spec artifacts (module, verification,
	// static pass) so experiments can batch further configurations without
	// re-preparing.
	LPrep *core.Prepared
	MPrep *core.Prepared

	LRunner *cluster.Runner
	MRunner *cluster.Runner

	// Batch fans multi-configuration analyses and independent experiment
	// stages out across cores.
	Batch *runner.Runner

	// Workers bounds intra-experiment parallelism (model fitting, overhead
	// grids); <= 0 means GOMAXPROCS.
	Workers int

	// ModelParams is the two-parameter modeling choice of the paper.
	ModelParams []string
}

// NewContext runs both taint analyses at the paper's configurations,
// saturating the available cores.
func NewContext() (*Context, error) { return NewContextWorkers(0) }

// NewContextWorkers is NewContext with an explicit concurrency bound
// (<= 0 means GOMAXPROCS).
func NewContextWorkers(workers int) (*Context, error) {
	c := &Context{
		Batch:       &runner.Runner{Workers: workers},
		Workers:     workers,
		ModelParams: []string{"p", "size"},
	}
	specs := []*apps.Spec{apps.LULESH(), apps.MILC()}
	taintCfgs := []apps.Config{apps.LULESHTaintConfig(), apps.MILCTaintConfig()}
	preps := make([]*core.Prepared, len(specs))
	reps := make([]*core.Report, len(specs))
	errs := make([]error, len(specs))
	runner.Map(c.Batch.Workers, len(specs), func(i int) {
		p, err := core.Prepare(specs[i])
		if err != nil {
			errs[i] = err
			return
		}
		preps[i] = p
		res := c.Batch.AnalyzeBatchPrepared(p, []apps.Config{taintCfgs[i]})
		reps[i], errs[i] = res[0].Report, res[0].Err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s analysis: %w", specs[i].Name, err)
		}
	}
	c.LPrep, c.MPrep = preps[0], preps[1]
	c.LULESH, c.MILC = reps[0], reps[1]
	c.LRunner = cluster.NewRunner(specs[0])
	c.MRunner = cluster.NewRunner(specs[1])
	return c, nil
}

// LULESHDesign is the 25-point p × size modeling design of Table 2 as a
// batch sweep.
func (c *Context) LULESHDesign() runner.Design {
	ps, sizes := apps.LULESHModelValues()
	return runner.Design{
		Spec:     apps.LULESH(),
		Defaults: apps.LULESHDefaults(),
		Axes:     []runner.Axis{{Param: "p", Values: ps}, {Param: "size", Values: sizes}},
	}
}

// MILCDesign is the MILC modeling design as a batch sweep.
func (c *Context) MILCDesign() runner.Design {
	ps, sizes := apps.MILCModelValues()
	return runner.Design{
		Spec:     apps.MILC(),
		Defaults: apps.MILCDefaults(),
		Axes:     []runner.Axis{{Param: "p", Values: ps}, {Param: "size", Values: sizes}},
	}
}

// luleshSweep is the 25-point modeling design of Table 2.
func (c *Context) luleshSweep() []apps.Config { return c.LULESHDesign().Configs() }

func (c *Context) milcSweep() []apps.Config { return c.MILCDesign().Configs() }

// table renders rows of label/paper/measured triples.
type table struct {
	title string
	rows  [][3]string
}

func (t *table) add(label, paper, measured string) {
	t.rows = append(t.rows, [3]string{label, paper, measured})
}

func (t *table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n\n", t.title)
	sb.WriteString("| Quantity | Paper | Measured |\n|---|---|---|\n")
	for _, r := range t.rows {
		fmt.Fprintf(&sb, "| %s | %s | %s |\n", r[0], r[1], r[2])
	}
	return sb.String()
}

func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		if v <= 0 {
			v = 1e-12
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}
