package experiments

import (
	"fmt"
	"strings"

	"repro/internal/loopmodel"
)

// DesignResult reproduces A2: the experiment-design reduction enabled by
// knowing which parameter dependencies are additive and which are
// multiplicative.
type DesignResult struct {
	App string
	// Structure is main's dependency structure (the whole program).
	Structure loopmodel.Structure
	// Full is the naive full-factorial design size, Reduced the
	// prior-informed size, for 5 points per parameter.
	Full    int
	Reduced int
	// ItersMultiplicative records the paper's corner case: iters multiplies
	// the entire computation linearly, so it grants no insight and can be
	// fixed, removing one design dimension (Section A2).
	ItersMultiplicative bool
	// ReducedFixingGlobal is the design size after fixing globally
	// multiplicative parameters like iters.
	ReducedFixingGlobal int
}

// DesignReduction evaluates the design reduction on both applications.
func DesignReduction(c *Context) []*DesignResult {
	points := 5
	var out []*DesignResult
	{
		st := c.LULESH.Structure("main")
		pts := make(map[string]int)
		for _, p := range st.Params() {
			pts[p] = points
		}
		r := &DesignResult{
			App:                 "LULESH",
			Structure:           st,
			Full:                loopmodel.FullFactorialExperiments(st, pts),
			Reduced:             loopmodel.RequiredExperiments(st, pts),
			ItersMultiplicative: st.Multiplicative("iters", "size") && st.Multiplicative("iters", "p"),
		}
		r.ReducedFixingGlobal = r.Reduced
		if r.ItersMultiplicative {
			// iters scales every kernel linearly: fix it and drop the
			// dimension from the sweep.
			r.ReducedFixingGlobal = r.Reduced / points
		}
		out = append(out, r)
	}
	{
		st := c.MILC.Structure("main")
		pts := make(map[string]int)
		for _, p := range st.Params() {
			pts[p] = points
		}
		r := &DesignResult{
			App:       "MILC",
			Structure: st,
			Full:      loopmodel.FullFactorialExperiments(st, pts),
			Reduced:   loopmodel.RequiredExperiments(st, pts),
		}
		r.ReducedFixingGlobal = r.Reduced
		out = append(out, r)
	}
	return out
}

// String renders the design reduction.
func (r *DesignResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## A2 — %s experiment design reduction\n\n", r.App)
	fmt.Fprintf(&sb, "Dependency structure of main: %s\n\n", r.Structure)
	sb.WriteString("| Quantity | Value |\n|---|---|\n")
	fmt.Fprintf(&sb, "| full factorial (5 points/param) | %d experiments |\n", r.Full)
	fmt.Fprintf(&sb, "| structure-informed design | %d experiments |\n", r.Reduced)
	fmt.Fprintf(&sb, "| after fixing global multipliers | %d experiments |\n", r.ReducedFixingGlobal)
	if r.App == "LULESH" {
		fmt.Fprintf(&sb, "| iters multiplies all computation (A2 corner case) | %v |\n", r.ItersMultiplicative)
	}
	return sb.String()
}
