package experiments

import (
	"fmt"
	"strings"

	"repro/internal/loopmodel"
	"repro/internal/runner"
)

// DesignResult reproduces A2: the experiment-design reduction enabled by
// knowing which parameter dependencies are additive and which are
// multiplicative.
type DesignResult struct {
	App string
	// Structure is main's dependency structure (the whole program).
	Structure loopmodel.Structure
	// Full is the naive full-factorial design size, Reduced the
	// prior-informed size, for 5 points per parameter.
	Full    int
	Reduced int
	// ItersMultiplicative records the paper's corner case: iters multiplies
	// the entire computation linearly, so it grants no insight and can be
	// fixed, removing one design dimension (Section A2).
	ItersMultiplicative bool
	// ReducedFixingGlobal is the design size after fixing globally
	// multiplicative parameters like iters.
	ReducedFixingGlobal int
}

// DesignReduction evaluates the design reduction on both applications,
// one batch job per application.
func DesignReduction(c *Context) []*DesignResult {
	const points = 5
	apps := []struct {
		name string
		rep  interface {
			Structure(string) loopmodel.Structure
		}
		// checkIters enables the paper's A2 corner case (LULESH only).
		checkIters bool
	}{
		{"LULESH", c.LULESH, true},
		{"MILC", c.MILC, false},
	}
	out := make([]*DesignResult, len(apps))
	runner.Map(c.Workers, len(apps), func(i int) {
		st := apps[i].rep.Structure("main")
		pts := make(map[string]int)
		for _, p := range st.Params() {
			pts[p] = points
		}
		r := &DesignResult{
			App:       apps[i].name,
			Structure: st,
			Full:      loopmodel.FullFactorialExperiments(st, pts),
			Reduced:   loopmodel.RequiredExperiments(st, pts),
		}
		if apps[i].checkIters {
			r.ItersMultiplicative = st.Multiplicative("iters", "size") && st.Multiplicative("iters", "p")
		}
		r.ReducedFixingGlobal = r.Reduced
		if r.ItersMultiplicative {
			// iters scales every kernel linearly: fix it and drop the
			// dimension from the sweep.
			r.ReducedFixingGlobal = r.Reduced / points
		}
		out[i] = r
	})
	return out
}

// String renders the design reduction.
func (r *DesignResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## A2 — %s experiment design reduction\n\n", r.App)
	fmt.Fprintf(&sb, "Dependency structure of main: %s\n\n", r.Structure)
	sb.WriteString("| Quantity | Value |\n|---|---|\n")
	fmt.Fprintf(&sb, "| full factorial (5 points/param) | %d experiments |\n", r.Full)
	fmt.Fprintf(&sb, "| structure-informed design | %d experiments |\n", r.Reduced)
	fmt.Fprintf(&sb, "| after fixing global multipliers | %d experiments |\n", r.ReducedFixingGlobal)
	if r.App == "LULESH" {
		fmt.Fprintf(&sb, "| iters multiplies all computation (A2 corner case) | %v |\n", r.ItersMultiplicative)
	}
	return sb.String()
}
