package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/runner"
)

// OverheadPoint is one (ranks, size, filter) instrumentation measurement.
type OverheadPoint struct {
	Ranks       float64
	Size        float64
	Filter      measure.Filter
	RelativePct float64
}

// OverheadResult reproduces Figures 3 and 4: relative instrumentation
// overhead per filter across the rank/size grid.
type OverheadResult struct {
	App    string
	Points []OverheadPoint
	// GeomeanPct per filter, the aggregate quoted for MILC (1.6% vs 23%).
	GeomeanPct map[measure.Filter]float64
	// MaxFactor is the worst-case slowdown factor under the filter (the
	// paper's "up to 45 times" for full LULESH instrumentation).
	MaxFactor map[measure.Filter]float64
}

// overheadExperiment sweeps ranks 4..64 on the Skylake-like cluster. Every
// (filter, ranks, size) cell is an independent noise-free measurement, so
// the grid fans out across workers; cells land in a preallocated slice at
// their grid index, keeping point order (and the aggregates derived from
// it) identical to the sequential sweep.
func overheadExperiment(app string, rep *core.Report, clus *cluster.Runner, defaults apps.Config, sizes []float64, workers int) (*OverheadResult, error) {
	res := &OverheadResult{
		App:        app,
		GeomeanPct: make(map[measure.Filter]float64),
		MaxFactor:  make(map[measure.Filter]float64),
	}
	ranks := []float64{4, 8, 16, 32, 64}
	filters := []measure.Filter{measure.FilterTaint, measure.FilterDefault, measure.FilterFull}

	type cell struct {
		filter measure.Filter
		ranks  float64
		size   float64
	}
	var cells []cell
	for _, f := range filters {
		for _, p := range ranks {
			for _, s := range sizes {
				cells = append(cells, cell{f, p, s})
			}
		}
	}
	overheads := make([]*measure.Overhead, len(cells))
	errs := make([]error, len(cells))
	runner.Map(workers, len(cells), func(i int) {
		cfg := defaults.Clone()
		cfg["p"] = cells[i].ranks
		cfg["size"] = cells[i].size
		overheads[i], errs[i] = measure.MeasureOverhead(clus, cfg, cells[i].filter, rep.Relevant)
	})

	per := make(map[measure.Filter][]float64)
	for i, c := range cells {
		if errs[i] != nil {
			return nil, errs[i]
		}
		o := overheads[i]
		res.Points = append(res.Points, OverheadPoint{
			Ranks: c.ranks, Size: c.size, Filter: c.filter, RelativePct: o.RelativePct,
		})
		per[c.filter] = append(per[c.filter], o.RelativePct)
		factor := 1 + o.RelativePct/100
		if factor > res.MaxFactor[c.filter] {
			res.MaxFactor[c.filter] = factor
		}
	}
	for f, vals := range per {
		res.GeomeanPct[f] = geomean(vals)
	}
	return res, nil
}

// Figure3 runs the LULESH overhead experiment.
func Figure3(c *Context) (*OverheadResult, error) {
	_, sizes := apps.LULESHModelValues()
	defaults := apps.LULESHDefaults()
	return overheadExperiment("LULESH", c.LULESH, c.LRunner, defaults, sizes, c.Workers)
}

// Figure4 runs the MILC overhead experiment.
func Figure4(c *Context) (*OverheadResult, error) {
	_, sizes := apps.MILCModelValues()
	defaults := apps.MILCDefaults()
	return overheadExperiment("MILC", c.MILC, c.MRunner, defaults, sizes, c.Workers)
}

// String renders the overhead summary.
func (r *OverheadResult) String() string {
	var sb strings.Builder
	fig := "Figure 3"
	paperNote := "taint filter within ~5.5% of native; full up to 45x"
	if r.App == "MILC" {
		fig = "Figure 4"
		paperNote = "geomean 1.6% taint vs 23% full/default"
	}
	fmt.Fprintf(&sb, "## %s — %s instrumentation overhead (%s)\n\n", fig, r.App, paperNote)
	sb.WriteString("| Filter | Geomean overhead | Max slowdown factor |\n|---|---|---|\n")
	for _, f := range []measure.Filter{measure.FilterTaint, measure.FilterDefault, measure.FilterFull} {
		fmt.Fprintf(&sb, "| %s | %.1f%% | %.1fx |\n", f, r.GeomeanPct[f], r.MaxFactor[f])
	}
	sb.WriteString("\n| Ranks | Size | Filter | Overhead % |\n|---|---|---|---|\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "| %g | %g | %s | %.2f |\n", p.Ranks, p.Size, p.Filter, p.RelativePct)
	}
	return sb.String()
}

// CostResult reproduces the A3 core-hour comparison.
type CostResult struct {
	App                string
	TaintAnalysisHours float64
	FullHours          float64
	TaintHours         float64
	SavingsPct         float64
}

// CoreHourCosts computes the cost of the modeling campaign under full vs
// taint-based instrumentation plus the one-off taint analysis cost.
func CoreHourCosts(c *Context) ([]*CostResult, error) {
	var out []*CostResult
	for _, it := range []struct {
		name   string
		rep    *core.Report
		runner *cluster.Runner
		sweep  []apps.Config
		tcfg   apps.Config
	}{
		{"LULESH", c.LULESH, c.LRunner, c.luleshSweep(), apps.LULESHTaintConfig()},
		{"MILC", c.MILC, c.MRunner, c.milcSweep(), apps.MILCTaintConfig()},
	} {
		res := &CostResult{App: it.name}
		fullSet := measure.Select(it.rep.Spec, measure.FilterFull, nil)
		taintSet := measure.Select(it.rep.Spec, measure.FilterTaint, it.rep.Relevant)
		const reps = 5
		// Per-config costs are independent noise-free measurements: fan
		// them out, then accumulate in sweep order so the float sums stay
		// bit-identical to the sequential loop.
		fulls := make([]float64, len(it.sweep))
		taints := make([]float64, len(it.sweep))
		errs := make([]error, len(it.sweep))
		runner.Map(c.Workers, len(it.sweep), func(i int) {
			fh, err := it.runner.CoreHours(it.sweep[i], fullSet)
			if err != nil {
				errs[i] = err
				return
			}
			th, err := it.runner.CoreHours(it.sweep[i], taintSet)
			if err != nil {
				errs[i] = err
				return
			}
			fulls[i], taints[i] = fh, th
		})
		for i := range it.sweep {
			if errs[i] != nil {
				return nil, errs[i]
			}
			res.FullHours += reps * fulls[i]
			res.TaintHours += reps * taints[i]
		}
		// Taint analysis: one instrumented-interpreter run at the taint
		// configuration; dynamic taint tracking costs ~20x native.
		th, err := it.runner.CoreHours(it.tcfg, nil)
		if err != nil {
			return nil, err
		}
		res.TaintAnalysisHours = 20 * th
		res.SavingsPct = 100 * (1 - (res.TaintHours+res.TaintAnalysisHours)/res.FullHours)
		out = append(out, res)
	}
	return out, nil
}

// String renders the cost rows.
func (r *CostResult) String() string {
	paper := "LULESH: 20483 -> 547 core-hours (97.3% saved), taint cost 1h"
	if r.App == "MILC" {
		paper = "MILC: 364 -> 321 core-hours (13.4% saved), taint cost 16h"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## A3 — %s modeling campaign cost (%s)\n\n", r.App, paper)
	sb.WriteString("| Quantity | Measured |\n|---|---|\n")
	fmt.Fprintf(&sb, "| full-instrumentation campaign | %.0f core-hours |\n", r.FullHours)
	fmt.Fprintf(&sb, "| taint-filtered campaign | %.0f core-hours |\n", r.TaintHours)
	fmt.Fprintf(&sb, "| taint analysis (one-off) | %.1f core-hours |\n", r.TaintAnalysisHours)
	fmt.Fprintf(&sb, "| savings | %.1f%% |\n", r.SavingsPct)
	return sb.String()
}
