package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Table2Result reproduces the two-phase identification census.
type Table2Result struct {
	LULESH core.Census
	MILC   core.Census
}

// Table2 runs the census of both applications.
func Table2(c *Context) *Table2Result {
	return &Table2Result{
		LULESH: c.LULESH.Census(c.ModelParams),
		MILC:   c.MILC.Census(c.ModelParams),
	}
}

// String renders the paper-vs-measured comparison.
func (t *Table2Result) String() string {
	tb := &table{title: "Table 2 — Two-phase identification census"}
	add := func(app string, paper [9]int, c core.Census) {
		tb.add(app+": functions", fmt.Sprint(paper[0]), fmt.Sprint(c.FunctionsTotal))
		tb.add(app+": pruned statically", fmt.Sprint(paper[1]), fmt.Sprint(c.PrunedStatically))
		tb.add(app+": pruned dynamically", fmt.Sprint(paper[2]), fmt.Sprint(c.PrunedDynamically))
		tb.add(app+": kernels", fmt.Sprint(paper[3]), fmt.Sprint(c.Kernels))
		tb.add(app+": comm routines", fmt.Sprint(paper[4]), fmt.Sprint(c.CommRoutines))
		tb.add(app+": MPI functions", fmt.Sprint(paper[5]), fmt.Sprint(c.MPIFunctions))
		tb.add(app+": loops", fmt.Sprint(paper[6]), fmt.Sprint(c.LoopsTotal))
		tb.add(app+": loops pruned statically", fmt.Sprint(paper[7]), fmt.Sprint(c.LoopsPrunedStatic))
		tb.add(app+": relevant loops (p,size)", fmt.Sprint(paper[8]), fmt.Sprint(c.LoopsRelevant))
		tb.add(app+": constant functions", "", fmt.Sprintf("%.1f%%", c.PercentConstant))
	}
	add("LULESH", [9]int{356, 296, 11, 40, 2, 7, 275, 52, 78}, t.LULESH)
	add("MILC", [9]int{629, 364, 188, 56, 13, 8, 874, 96, 196}, t.MILC)
	return tb.String()
}

// Table3Result reproduces the per-parameter coverage table.
type Table3Result struct {
	App        string
	Rows       []core.ParameterCoverage
	UnionFuncs int
	UnionLoops int
}

// Table3 computes coverage for both applications.
func Table3(c *Context) []*Table3Result {
	var out []*Table3Result
	for _, it := range []struct {
		name string
		rep  *core.Report
	}{{"LULESH", c.LULESH}, {"MILC", c.MILC}} {
		rows, uf, ul := it.rep.Coverage(c.ModelParams)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Param < rows[j].Param })
		out = append(out, &Table3Result{App: it.name, Rows: rows, UnionFuncs: uf, UnionLoops: ul})
	}
	return out
}

// String renders one application's coverage rows.
func (t *Table3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## Table 3 — %s parameter coverage\n\n", t.App)
	sb.WriteString("| Parameter | Functions | Loops |\n|---|---|---|\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "| %s | %d | %d |\n", r.Param, r.Functions, r.Loops)
	}
	fmt.Fprintf(&sb, "| p OR size | %d | %d |\n", t.UnionFuncs, t.UnionLoops)
	return sb.String()
}
