package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extrap"
	"repro/internal/measure"
	"repro/internal/runner"
)

// NoiseResult reproduces B1: taint-informed modeling prunes the false
// parameter dependencies that measurement noise induces in black-box
// models of constant functions.
type NoiseResult struct {
	App string
	// ConstantTruth is the number of functions the taint analysis proves
	// parameter-independent (including MPI rank queries).
	ConstantTruth int
	// BlackBoxFalseDeps counts constant-truth functions the black-box
	// modeler assigned a parametric model.
	BlackBoxFalseDeps int
	// HybridFalseDeps is the same count under the taint prior (always 0 by
	// construction: the prior pins them constant).
	HybridFalseDeps int
	// CorrectedPct is the share of wrong black-box models the prior fixed
	// (the paper's 77% for MILC).
	CorrectedPct float64
	// CommRankConstant reports whether MPI_Comm_rank was pinned constant
	// by the hybrid pipeline (the paper's four MILC call sites).
	CommRankConstant bool
	// RelevantAgree counts parameter-dependent functions where black-box
	// and hybrid found models using the same parameters.
	RelevantAgree int
	RelevantTotal int
}

// campaignDatasets builds the 25-point, 5-repetition measurement campaign.
func campaignDatasets(rep *core.Report, clus *cluster.Runner, sweep []apps.Config, modelParams []string, seed int64) (map[string]*extrap.Dataset, error) {
	c := &measure.Campaign{
		Runner:       clus,
		Sweep:        sweep,
		Reps:         5,
		Filter:       measure.FilterFull,
		Relevant:     rep.Relevant,
		Seed:         seed,
		RelNoise:     0.03,
		FloorSeconds: 2e-4,
		ModelParams:  modelParams,
	}
	return c.Datasets()
}

// NoiseResilience runs B1 on one application. The per-function black-box
// and hybrid fits are independent, so they fan out across workers
// (<= 0 means GOMAXPROCS); the counting below stays in sorted function
// order, keeping the result deterministic.
func NoiseResilience(appName string, rep *core.Report, clus *cluster.Runner, sweep []apps.Config, modelParams []string, workers int) (*NoiseResult, error) {
	ds, err := campaignDatasets(rep, clus, sweep, modelParams, 11)
	if err != nil {
		return nil, err
	}
	res := &NoiseResult{App: appName}
	opt := extrap.DefaultOptions()

	// The paper filters out data too noisy to model (CoV > 0.1); we keep
	// everything measurable to count false positives, but skip functions
	// that never run.
	var funcs []string
	var reqs []extrap.Request
	for _, fn := range measure.SortedFuncs(ds) {
		if fn == "" || len(ds[fn].Points) == 0 {
			continue
		}
		funcs = append(funcs, fn)
		reqs = append(reqs,
			extrap.Request{Name: fn, Dataset: ds[fn]},
			extrap.Request{Name: fn, Dataset: ds[fn], Prior: rep.Prior(fn, modelParams)},
		)
	}
	fits := extrap.FitAll(reqs, opt, workers)

	for i, fn := range funcs {
		blackBox, hybrid := fits[2*i].Model, fits[2*i+1].Model
		if fits[2*i].Err != nil || fits[2*i+1].Err != nil {
			continue
		}
		prior := reqs[2*i+1].Prior // the same prior the hybrid fit used
		if prior.ForceConstant {
			res.ConstantTruth++
			if !blackBox.IsConstant() {
				res.BlackBoxFalseDeps++
			}
			if !hybrid.IsConstant() {
				res.HybridFalseDeps++
			}
			if fn == "MPI_Comm_rank" && hybrid.IsConstant() {
				res.CommRankConstant = true
			}
		} else {
			res.RelevantTotal++
			if sameParams(blackBox, hybrid) {
				res.RelevantAgree++
			}
		}
	}
	if res.BlackBoxFalseDeps > 0 {
		res.CorrectedPct = 100 * float64(res.BlackBoxFalseDeps-res.HybridFalseDeps) /
			float64(res.BlackBoxFalseDeps)
	}
	// MPI_Comm_rank may not be in the dataset map if never measured; the
	// prior still pins it constant.
	if rep.Prior("MPI_Comm_rank", modelParams).ForceConstant {
		res.CommRankConstant = true
	}
	return res, nil
}

func sameParams(a, b *extrap.Model) bool {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// NoiseResilienceAll runs B1 on both applications. Applications run in
// sequence — each one's fitting already saturates the worker pool.
func NoiseResilienceAll(c *Context) ([]*NoiseResult, error) {
	l, err := NoiseResilience("LULESH", c.LULESH, c.LRunner, c.luleshSweep(), c.ModelParams, c.Workers)
	if err != nil {
		return nil, err
	}
	m, err := NoiseResilience("MILC", c.MILC, c.MRunner, c.milcSweep(), c.ModelParams, c.Workers)
	if err != nil {
		return nil, err
	}
	return []*NoiseResult{l, m}, nil
}

// String renders the B1 summary.
func (r *NoiseResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## B1 — %s noise resilience (paper: 77%% of MILC models corrected; 4 MPI_Comm_rank sites fixed)\n\n", r.App)
	sb.WriteString("| Quantity | Measured |\n|---|---|\n")
	fmt.Fprintf(&sb, "| constant-truth functions | %d |\n", r.ConstantTruth)
	fmt.Fprintf(&sb, "| black-box false dependencies | %d (%.0f%%) |\n",
		r.BlackBoxFalseDeps, 100*float64(r.BlackBoxFalseDeps)/max1(r.ConstantTruth))
	fmt.Fprintf(&sb, "| hybrid false dependencies | %d |\n", r.HybridFalseDeps)
	fmt.Fprintf(&sb, "| models corrected by prior | %.0f%% |\n", r.CorrectedPct)
	fmt.Fprintf(&sb, "| MPI_Comm_rank pinned constant | %v |\n", r.CommRankConstant)
	fmt.Fprintf(&sb, "| parameter-dependent functions with agreeing parameter sets | %d/%d |\n",
		r.RelevantAgree, r.RelevantTotal)
	return sb.String()
}

func max1(n int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n)
}

// IntrusionResult reproduces B2: the CalcQForElems model flips from a
// distorted additive form under full instrumentation to the validated
// multiplicative form under the taint filter.
type IntrusionResult struct {
	FullModel     *extrap.Model
	FilteredModel *extrap.Model
	// FullIsDistorted is true when the full-instrumentation model is not
	// multiplicative in (p, size) or its magnitude is inflated.
	FullIsDistorted        bool
	FilteredMultiplicative bool
	// InflationFactor is mean(full)/mean(filtered) across the design: the
	// paper observes almost two orders of magnitude.
	InflationFactor float64
	// DefaultMisses reports the Score-P default filter false negative.
	DefaultMisses bool
}

// Intrusion runs B2 on LULESH's CalcQForElems.
func Intrusion(c *Context) (*IntrusionResult, error) {
	const target = "CalcQForElems"
	sweep := c.luleshSweep()
	opt := extrap.DefaultOptions()
	prior := c.LULESH.Prior(target, c.ModelParams)

	run := func(filter measure.Filter, seed int64) (*extrap.Model, float64, error) {
		camp := &measure.Campaign{
			Runner:       c.LRunner,
			Sweep:        sweep,
			Reps:         5,
			Filter:       filter,
			Relevant:     c.LULESH.Relevant,
			Seed:         seed,
			RelNoise:     0.02,
			FloorSeconds: 1e-4,
			ModelParams:  c.ModelParams,
		}
		ds, err := camp.Datasets()
		if err != nil {
			return nil, 0, err
		}
		d := ds[target]
		if d == nil {
			return nil, 0, fmt.Errorf("experiments: no dataset for %s under %s", target, filter)
		}
		m, err := extrap.ModelMulti(d, opt, prior)
		if err != nil {
			return nil, 0, err
		}
		mean := 0.0
		for _, p := range d.Points {
			mean += p.Mean()
		}
		mean /= float64(len(d.Points))
		return m, mean, nil
	}

	// The two campaigns are independent (each carries its own seeded noise
	// source), so they run concurrently on the batch pool.
	var (
		models [2]*extrap.Model
		means  [2]float64
		errs   [2]error
	)
	jobs := []struct {
		filter measure.Filter
		seed   int64
	}{{measure.FilterFull, 21}, {measure.FilterTaint, 22}}
	runner.Map(c.Workers, len(jobs), func(i int) {
		models[i], means[i], errs[i] = run(jobs[i].filter, jobs[i].seed)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	full, fullMean := models[0], means[0]
	filt, filtMean := models[1], means[1]

	res := &IntrusionResult{
		FullModel:              full,
		FilteredModel:          filt,
		FilteredMultiplicative: filt.Multiplicative(),
		FullIsDistorted:        !full.Multiplicative(),
	}
	if filtMean > 0 {
		res.InflationFactor = fullMean / filtMean
	}
	defSet := measure.Select(c.LULESH.Spec, measure.FilterDefault, nil)
	res.DefaultMisses = !defSet[target]
	return res, nil
}

// String renders the B2 summary.
func (r *IntrusionResult) String() string {
	var sb strings.Builder
	sb.WriteString("## B2 — Intrusion: CalcQForElems (paper: full instr gives additive 3e-3*p^0.5 + 1e-5*size^3; filtered gives 2.4e-8*p^0.25*size^3)\n\n")
	sb.WriteString("| Quantity | Measured |\n|---|---|\n")
	fmt.Fprintf(&sb, "| model under full instrumentation | %s |\n", r.FullModel)
	fmt.Fprintf(&sb, "| model under taint filter | %s |\n", r.FilteredModel)
	fmt.Fprintf(&sb, "| filtered model multiplicative in p,size | %v |\n", r.FilteredMultiplicative)
	fmt.Fprintf(&sb, "| full model distorted (non-multiplicative) | %v |\n", r.FullIsDistorted)
	fmt.Fprintf(&sb, "| runtime inflation under full instrumentation | %.0fx |\n", r.InflationFactor)
	fmt.Fprintf(&sb, "| default Score-P filter misses the function | %v |\n", r.DefaultMisses)
	return sb.String()
}
