package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/extrap"
	"repro/internal/measure"
	"repro/internal/noise"
)

// ContentionResult reproduces Figure 5 / C1: with p and size fixed, varying
// the number of ranks per node r slows down functions whose code the taint
// analysis proved independent of r — the discrepancy exposes hardware
// contention.
type ContentionResult struct {
	// RModels maps function name to its fitted model in r for a few
	// representative kernels plus main.
	RModels map[string]*extrap.Model
	// Increasing counts functions with statistically sound measurements
	// whose model grows with r (the paper: 31 of 73).
	Increasing int
	Sound      int
	// AppModel is the whole-application model in r (paper: 2.86*log2(r)^2
	// + 127 s).
	AppModel *extrap.Model
	// AppIncreasePct is the total slowdown from min to max r (paper: +50%).
	AppIncreasePct float64
	// Detected is the white-box verdict: slowdown without any code-level
	// dependence on r.
	Detected bool
}

// Contention runs the C1 experiment on LULESH at p=64, size=30.
func Contention(c *Context) (*ContentionResult, error) {
	defaults := apps.LULESHDefaults()
	cfg := defaults.Clone()
	cfg["p"] = 64
	cfg["size"] = 30

	rs := []float64{2, 4, 6, 8, 12, 16, 18}
	set := measure.Select(c.LULESH.Spec, measure.FilterTaint, c.LULESH.Relevant)
	src := noise.New(31, 0.015, 5e-5)

	// One dataset per function over parameter r.
	ds := make(map[string]*extrap.Dataset)
	appD := extrap.NewDataset("r")
	for _, r := range rs {
		c.LRunner.RanksPerNodeOverride = int(r)
		prof, err := c.LRunner.Measure(cfg, set, 5, src)
		if err != nil {
			c.LRunner.RanksPerNodeOverride = 0
			return nil, err
		}
		for fn, vals := range prof.FuncSeconds {
			if !set[fn] {
				continue
			}
			d := ds[fn]
			if d == nil {
				d = extrap.NewDataset("r")
				ds[fn] = d
			}
			d.Add(map[string]float64{"r": r}, vals...)
		}
		appD.Add(map[string]float64{"r": r}, prof.AppSeconds...)
	}
	c.LRunner.RanksPerNodeOverride = 0

	res := &ContentionResult{RModels: make(map[string]*extrap.Model)}
	opt := extrap.DefaultOptions()
	names := make([]string, 0, len(ds))
	for fn := range ds {
		names = append(names, fn)
	}
	sort.Strings(names)
	// Fit the reliable functions concurrently; counting walks the fits in
	// sorted-name order, so the result is independent of completion order.
	var reqs []extrap.Request
	for _, fn := range names {
		if !ds[fn].Reliable() {
			continue
		}
		reqs = append(reqs, extrap.Request{Name: fn, Dataset: ds[fn], Param: "r"})
	}
	res.Sound = len(reqs)
	for _, fit := range extrap.FitAll(reqs, opt, c.Workers) {
		if fit.Err != nil {
			continue
		}
		m := fit.Model
		lo := m.Eval(map[string]float64{"r": rs[0]})
		hi := m.Eval(map[string]float64{"r": rs[len(rs)-1]})
		if !m.IsConstant() && hi > 1.05*lo {
			res.Increasing++
			switch fit.Name {
			case "main", "CalcForceForNodes", "IntegrateStressForElems", "CalcHourglassControlForElems":
				res.RModels[fit.Name] = m
			}
		}
	}
	appModel, err := extrap.ModelSingle(appD, "r", opt)
	if err != nil {
		return nil, err
	}
	res.AppModel = appModel
	lo := appModel.Eval(map[string]float64{"r": rs[0]})
	hi := appModel.Eval(map[string]float64{"r": rs[len(rs)-1]})
	if lo > 0 {
		res.AppIncreasePct = 100 * (hi - lo) / lo
	}
	// The white-box verdict: functions slowed down with r although the
	// taint analysis attached no such parameter to their loops.
	res.Detected = res.Increasing > 0
	return res, nil
}

// String renders the C1 summary.
func (r *ContentionResult) String() string {
	var sb strings.Builder
	sb.WriteString("## Figure 5 / C1 — Hardware contention (paper: 31/73 functions increasing, app +50%, model 2.86*log2(r)^2 + 127)\n\n")
	sb.WriteString("| Quantity | Measured |\n|---|---|\n")
	fmt.Fprintf(&sb, "| functions with sound measurements | %d |\n", r.Sound)
	fmt.Fprintf(&sb, "| functions with increasing models | %d |\n", r.Increasing)
	fmt.Fprintf(&sb, "| application model in r | %s |\n", r.AppModel)
	fmt.Fprintf(&sb, "| application slowdown across r | %.0f%% |\n", r.AppIncreasePct)
	fmt.Fprintf(&sb, "| contention detected (white-box) | %v |\n", r.Detected)
	names := make([]string, 0, len(r.RModels))
	for fn := range r.RModels {
		names = append(names, fn)
	}
	sort.Strings(names)
	for _, fn := range names {
		fmt.Fprintf(&sb, "| model: %s | %s |\n", fn, r.RModels[fn])
	}
	return sb.String()
}

// ValidationResult reproduces C2: the MILC gather changes algorithm at
// p = 8; single-interval models fail while per-segment models fit, and the
// taint branch coverage names the selection branch.
type ValidationResult struct {
	// FullRangeSMAPE is the fit error modeling all of p in 4..64 at once.
	FullRangeSMAPE float64
	// SegmentSMAPE are the errors of the per-segment fits.
	LowSegmentSMAPE  float64
	HighSegmentSMAPE float64
	// SegmentedDetected is the verdict that one interval holds two regimes.
	SegmentedDetected bool
	// SelectionBranch reports the taint-identified algorithm-selection
	// branch (function name) and its controlling parameters.
	SelectionBranch string
	SelectionParams []string
}

// Validation runs the C2 experiment on the MILC gather.
func Validation(c *Context) (*ValidationResult, error) {
	defaults := apps.MILCDefaults()
	sizeFixed := 128.0
	ps := []float64{2, 4, 8, 16, 32, 64}
	set := measure.Select(c.MILC.Spec, measure.FilterTaint, c.MILC.Relevant)
	src := noise.New(41, 0.01, 0)

	d := extrap.NewDataset("p")
	for _, p := range ps {
		cfg := defaults.Clone()
		cfg["p"] = p
		cfg["size"] = sizeFixed
		prof, err := c.MRunner.Measure(cfg, set, 5, src)
		if err != nil {
			return nil, err
		}
		vals := prof.FuncSeconds["g_gather_field"]
		d.Add(map[string]float64{"p": p}, vals...)
	}

	opt := extrap.DefaultOptions()
	split := func(pred func(float64) bool) *extrap.Dataset {
		out := extrap.NewDataset("p")
		for _, pt := range d.Points {
			if pred(pt.Params["p"]) {
				out.Add(pt.Params, pt.Values...)
			}
		}
		return out
	}
	low := split(func(p float64) bool { return p < 8 })
	high := split(func(p float64) bool { return p >= 8 })

	// One batch: the full-range fit plus the two per-segment fits.
	fits := extrap.FitAll([]extrap.Request{
		{Name: "full", Dataset: d, Param: "p"},
		{Name: "low", Dataset: low, Param: "p"},
		{Name: "high", Dataset: high, Param: "p"},
	}, opt, c.Workers)
	if fits[0].Err != nil {
		return nil, fits[0].Err
	}
	res := &ValidationResult{FullRangeSMAPE: fits[0].Model.SMAPE}
	if fits[1].Err == nil {
		res.LowSegmentSMAPE = fits[1].Model.SMAPE
	}
	if fits[2].Err == nil {
		res.HighSegmentSMAPE = fits[2].Model.SMAPE
	}
	res.SegmentedDetected = res.FullRangeSMAPE > 3*(res.LowSegmentSMAPE+res.HighSegmentSMAPE)/2 &&
		res.FullRangeSMAPE > 0.02

	// Branch coverage: the tainted selection the analysis reported.
	for _, sel := range c.MILC.Engine.TaintedSelections() {
		if sel.Key.Func == "g_gather_field" {
			res.SelectionBranch = sel.Key.Func
			res.SelectionParams = c.MILC.Engine.Table.Expand(sel.Labels)
		}
	}
	return res, nil
}

// String renders the C2 summary.
func (r *ValidationResult) String() string {
	var sb strings.Builder
	sb.WriteString("## C2 — Experiment design validation (paper: MILC gather behaves linearly below 8 ranks, logarithmically above)\n\n")
	sb.WriteString("| Quantity | Measured |\n|---|---|\n")
	fmt.Fprintf(&sb, "| single-interval fit error (SMAPE) | %.3f |\n", r.FullRangeSMAPE)
	fmt.Fprintf(&sb, "| low-segment fit error (p < 8) | %.3f |\n", r.LowSegmentSMAPE)
	fmt.Fprintf(&sb, "| high-segment fit error (p >= 8) | %.3f |\n", r.HighSegmentSMAPE)
	fmt.Fprintf(&sb, "| segmented behaviour detected | %v |\n", r.SegmentedDetected)
	fmt.Fprintf(&sb, "| taint-reported selection branch | %s (params: %s) |\n",
		r.SelectionBranch, strings.Join(r.SelectionParams, ","))
	return sb.String()
}
