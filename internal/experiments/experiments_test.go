package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/measure"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

func getCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() { ctx, ctxErr = NewContext() })
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

func TestTable2ShapesHold(t *testing.T) {
	c := getCtx(t)
	res := Table2(c)
	if res.LULESH.FunctionsTotal != 356 || res.MILC.FunctionsTotal != 629 {
		t.Fatalf("function totals: %d / %d", res.LULESH.FunctionsTotal, res.MILC.FunctionsTotal)
	}
	// Both apps: ~86-88% of functions constant.
	if res.LULESH.PercentConstant < 80 || res.MILC.PercentConstant < 80 {
		t.Fatalf("constant shares: %.1f%% / %.1f%%",
			res.LULESH.PercentConstant, res.MILC.PercentConstant)
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Fatal("rendering broken")
	}
}

func TestTable3Rendering(t *testing.T) {
	c := getCtx(t)
	for _, r := range Table3(c) {
		s := r.String()
		if !strings.Contains(s, "Parameter") {
			t.Fatalf("bad rendering for %s", r.App)
		}
	}
}

func TestFigure3TaintFilterWinsByLargeFactor(t *testing.T) {
	c := getCtx(t)
	res, err := Figure3(c)
	if err != nil {
		t.Fatal(err)
	}
	taint := res.GeomeanPct[measure.FilterTaint]
	full := res.GeomeanPct[measure.FilterFull]
	if taint > 8 {
		t.Errorf("taint filter geomean overhead = %.1f%%, want small (paper ~5.5%% max)", taint)
	}
	if full < 100 {
		t.Errorf("full instrumentation geomean overhead = %.1f%%, want large", full)
	}
	// Paper: up to 45x slowdown under full instrumentation.
	if res.MaxFactor[measure.FilterFull] < 10 {
		t.Errorf("full max factor = %.1fx, want >> 1 (paper up to 45x)", res.MaxFactor[measure.FilterFull])
	}
	if res.MaxFactor[measure.FilterTaint] > 1.15 {
		t.Errorf("taint max factor = %.2fx, want ~1", res.MaxFactor[measure.FilterTaint])
	}
	// Default sits between: skips getters but keeps constant helpers.
	def := res.GeomeanPct[measure.FilterDefault]
	if !(taint < def && def < full) {
		t.Errorf("ordering violated: taint %.2f%%, default %.2f%%, full %.2f%%", taint, def, full)
	}
}

func TestFigure4MILCGeomeans(t *testing.T) {
	c := getCtx(t)
	res, err := Figure4(c)
	if err != nil {
		t.Fatal(err)
	}
	taint := res.GeomeanPct[measure.FilterTaint]
	full := res.GeomeanPct[measure.FilterFull]
	// Paper: 1.6% vs 23%. Shape: taint small, full an order of magnitude
	// larger.
	if taint > 10 {
		t.Errorf("taint geomean = %.1f%%, want ~1.6%%", taint)
	}
	if full < 5*taint {
		t.Errorf("full/taint ratio = %.1f, want >= 5 (paper ~14x)", full/taint)
	}
}

func TestCoreHourCostsShape(t *testing.T) {
	c := getCtx(t)
	costs, err := CoreHourCosts(c)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]*CostResult{}
	for _, r := range costs {
		byApp[r.App] = r
	}
	l := byApp["LULESH"]
	// Paper: 97.3% savings for LULESH; shape target: large savings.
	if l.SavingsPct < 60 {
		t.Errorf("LULESH savings = %.1f%%, want large (paper 97.3%%)", l.SavingsPct)
	}
	if l.TaintHours >= l.FullHours {
		t.Error("taint campaign must be cheaper than full")
	}
	m := byApp["MILC"]
	// Paper: 13.4% savings for MILC — modest, but still positive.
	if m.SavingsPct <= 0 {
		t.Errorf("MILC savings = %.1f%%, want positive (paper 13.4%%)", m.SavingsPct)
	}
	if m.SavingsPct > l.SavingsPct {
		t.Error("LULESH (C++ getter storm) must save more than MILC")
	}
}

func TestDesignReduction(t *testing.T) {
	c := getCtx(t)
	for _, r := range DesignReduction(c) {
		if r.Reduced > r.Full {
			t.Errorf("%s: reduced %d > full %d", r.App, r.Reduced, r.Full)
		}
		if r.App == "LULESH" {
			if !r.ItersMultiplicative {
				t.Error("LULESH iters must be multiplicative with the other parameters (A2)")
			}
			if r.ReducedFixingGlobal*5 != r.Reduced {
				t.Errorf("fixing iters must drop one design dimension: %d vs %d",
					r.ReducedFixingGlobal, r.Reduced)
			}
		}
	}
}

func TestNoiseResilienceB1(t *testing.T) {
	c := getCtx(t)
	results, err := NoiseResilienceAll(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.ConstantTruth < 100 {
			t.Errorf("%s: constant-truth functions = %d, want hundreds", r.App, r.ConstantTruth)
		}
		// The black-box modeler must produce a meaningful number of false
		// dependencies for the experiment to be non-trivial (paper: 77% of
		// MILC models corrected).
		if r.BlackBoxFalseDeps == 0 {
			t.Errorf("%s: black-box produced no false dependencies; premise broken", r.App)
		}
		if r.HybridFalseDeps != 0 {
			t.Errorf("%s: hybrid produced %d false dependencies, want 0", r.App, r.HybridFalseDeps)
		}
		if r.CorrectedPct != 100 {
			t.Errorf("%s: corrected %.0f%%, want 100%% of false positives removed", r.App, r.CorrectedPct)
		}
		if !r.CommRankConstant {
			t.Errorf("%s: MPI_Comm_rank not pinned constant", r.App)
		}
	}
}

func TestIntrusionB2(t *testing.T) {
	c := getCtx(t)
	res, err := Intrusion(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FilteredMultiplicative {
		t.Errorf("filtered model %s must be multiplicative in p,size", res.FilteredModel)
	}
	if !res.DefaultMisses {
		t.Error("default Score-P filter must miss CalcQForElems (false negative)")
	}
	// The hardware p^0.25 factor makes the function's true time large at
	// high rank counts, so the mean inflation of this specific function is
	// smaller than the app-wide "two orders of magnitude"; it must still be
	// a clear multiple.
	if res.InflationFactor < 2 {
		t.Errorf("inflation factor = %.1fx, want >= 2", res.InflationFactor)
	}
	// The full-instrumentation model must differ qualitatively: either
	// non-multiplicative or dominated by overhead terms.
	if res.FullModel.String() == res.FilteredModel.String() {
		t.Error("full and filtered models identical; intrusion invisible")
	}
}

func TestContentionC1(t *testing.T) {
	c := getCtx(t)
	res, err := Contention(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("contention not detected")
	}
	// Paper: 31 of 73 functions show increasing models; we need a
	// substantial fraction.
	if res.Increasing < 10 {
		t.Errorf("increasing functions = %d of %d, want >= 10", res.Increasing, res.Sound)
	}
	if res.Increasing > res.Sound {
		t.Error("increasing exceeds sound count")
	}
	// Paper: the application slows by ~50% from r=2..18.
	if res.AppIncreasePct < 15 || res.AppIncreasePct > 120 {
		t.Errorf("app slowdown = %.0f%%, want ~50%%", res.AppIncreasePct)
	}
	if res.AppModel.IsConstant() {
		t.Error("application model must grow with r")
	}
	// The application model should contain a logarithmic term in r.
	if !strings.Contains(res.AppModel.String(), "log2(r)") {
		t.Logf("note: app model %s lacks explicit log term (acceptable if power-law fit)", res.AppModel)
	}
}

func TestValidationC2(t *testing.T) {
	c := getCtx(t)
	res, err := Validation(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SegmentedDetected {
		t.Errorf("segmented behaviour not detected: full=%.3f low=%.3f high=%.3f",
			res.FullRangeSMAPE, res.LowSegmentSMAPE, res.HighSegmentSMAPE)
	}
	if res.SelectionBranch != "g_gather_field" {
		t.Errorf("selection branch = %q, want g_gather_field", res.SelectionBranch)
	}
	foundP := false
	for _, p := range res.SelectionParams {
		if p == "p" {
			foundP = true
		}
	}
	if !foundP {
		t.Errorf("selection params = %v, want p", res.SelectionParams)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %g, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %g", g)
	}
}
