// Package leakcheck is a dependency-free goroutine-leak assertion in
// the spirit of go.uber.org/goleak: snapshot the goroutines alive when
// a test registers the check, and fail the test if, after cleanup has
// torn everything down, goroutines this package does not recognize as
// benign runtime/testing infrastructure are still running.
//
// The server, coordinator, and worker shutdown paths are exactly where
// leaks hide (a drain that forgets a TTL watcher, a heartbeat loop that
// outlives its link), so every e2e test helper registers Check first —
// t.Cleanup runs LIFO, which places the leak scan after the servers'
// own Close cleanups.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredStacks are substrings identifying goroutines that are part of
// the runtime, the testing framework, or process-lifetime machinery —
// never leaks attributable to the code under test.
var ignoredStacks = []string{
	"testing.(*T).Run",
	"testing.Main",
	"testing.tRunner",
	"testing.runTests",
	"testing.(*M).before",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"signal.signal_recv",
	"os/signal.loop",
	"os/signal.NotifyContext",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).dialConn",
	"net/http/httptest.(*Server).goServe",
	"internal/poll.runtime_pollWait",
	"leakcheck.interesting",
	"leakcheck.Settle",
	"created by runtime",
}

// Check registers a cleanup on t that fails the test if goroutines
// other than recognized infrastructure are still alive once every later
// cleanup has run. Register it FIRST in a helper (before the cleanups
// that stop servers), so the LIFO cleanup order scans after shutdown.
func Check(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		if err := Settle(5 * time.Second); err != nil {
			t.Errorf("leakcheck: %v", err)
		}
	})
}

// Settle waits up to timeout for all interesting goroutines to exit and
// returns an error naming the survivors if any remain — the non-testing
// entry point used by smoke binaries after tearing down their servers.
func Settle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var leaked []string
	for {
		leaked = interesting()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sort.Strings(leaked)
	return fmt.Errorf("%d leaked goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
}

// interesting returns the stacks of currently-running goroutines that
// are not on the ignore list.
func interesting() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
stacks:
	for _, st := range strings.Split(string(buf), "\n\n") {
		st = strings.TrimSpace(st)
		if st == "" {
			continue
		}
		for _, ign := range ignoredStacks {
			if strings.Contains(st, ign) {
				continue stacks
			}
		}
		out = append(out, st)
	}
	return out
}
