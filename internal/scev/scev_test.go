package scev

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
)

func analyzeSingle(t *testing.T, build func(b *ir.Builder)) *FuncClass {
	t.Helper()
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 2)
	build(b)
	if b.CurBlock() != nil {
		b.RetVoid()
	}
	f := b.Finish()
	return AnalyzeFunc(f, nil)
}

func TestConstantLoopResolved(t *testing.T) {
	fc := analyzeSingle(t, func(b *ir.Builder) {
		b.ForConst(0, 8, func(i ir.Reg) { b.Work(b.Const(1)) })
	})
	if fc.NumLoops != 1 || fc.ConstLoops != 1 {
		t.Fatalf("loops=%d const=%d, want 1/1", fc.NumLoops, fc.ConstLoops)
	}
	if !fc.AllConstant || !fc.Pruned {
		t.Fatal("constant-loop function must be statically pruned")
	}
	for _, tc := range fc.Loops {
		if !tc.Constant || tc.Count != 8 {
			t.Fatalf("trip = %+v, want constant 8", tc)
		}
	}
}

func TestConstantLoopWithStep(t *testing.T) {
	fc := analyzeSingle(t, func(b *ir.Builder) {
		b.For(b.Const(0), b.Const(10), b.Const(3), func(i ir.Reg) { b.Work(b.Const(1)) })
	})
	for _, tc := range fc.Loops {
		if !tc.Constant || tc.Count != 4 { // ceil(10/3)
			t.Fatalf("trip = %+v, want constant 4", tc)
		}
	}
}

func TestParameterLoopNotConstant(t *testing.T) {
	fc := analyzeSingle(t, func(b *ir.Builder) {
		b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) { b.Work(b.Const(1)) })
	})
	if fc.AllConstant || fc.Pruned {
		t.Fatal("parameter-bounded loop must not be pruned")
	}
	for _, tc := range fc.Loops {
		if tc.Constant {
			t.Fatal("parameter-bounded loop classified constant")
		}
	}
}

func TestDerivedConstantBound(t *testing.T) {
	// Bound = 4*8 computed from constants must still be constant.
	fc := analyzeSingle(t, func(b *ir.Builder) {
		bound := b.Mul(b.Const(4), b.Const(8))
		b.For(b.Const(0), bound, b.Const(1), func(i ir.Reg) { b.Work(b.Const(1)) })
	})
	if !fc.AllConstant {
		t.Fatal("constant-derived bound not recognized")
	}
	for _, tc := range fc.Loops {
		if tc.Count != 32 {
			t.Fatalf("count = %d, want 32", tc.Count)
		}
	}
}

func TestLoadBoundNotConstant(t *testing.T) {
	fc := analyzeSingle(t, func(b *ir.Builder) {
		cell := b.Alloc(b.Const(1))
		b.Store(cell, 0, b.Const(9))
		bound := b.Load(cell, 0)
		b.For(b.Const(0), bound, b.Const(1), func(i ir.Reg) { b.Work(b.Const(1)) })
	})
	// A load is opaque to the static analysis (that is the point of the
	// paper: statics over-approximate; the dynamic pass would resolve it).
	if fc.AllConstant {
		t.Fatal("memory-carried bound must defeat the static analysis")
	}
}

func TestNoLoopsPruned(t *testing.T) {
	fc := analyzeSingle(t, func(b *ir.Builder) {
		b.Ret(b.Add(b.Param(0), b.Param(1)))
	})
	if fc.NumLoops != 0 || !fc.Pruned {
		t.Fatalf("loop-free function must be pruned: %+v", fc)
	}
}

func TestRelevantLibraryCallBlocksPruning(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "comm", 0)
	b.Call("MPI_Barrier")
	b.RetVoid()
	f := b.Finish()
	fc := AnalyzeFunc(f, func(name string) bool { return name == "MPI_Barrier" })
	if fc.Pruned {
		t.Fatal("function calling MPI must not be statically pruned")
	}
	if !fc.CallsRelevantLibrary {
		t.Fatal("CallsRelevantLibrary not set")
	}
}

func TestNestedMixedLoops(t *testing.T) {
	fc := analyzeSingle(t, func(b *ir.Builder) {
		b.ForConst(0, 4, func(i ir.Reg) {
			b.For(b.Const(0), b.Param(0), b.Const(1), func(j ir.Reg) {
				b.Work(b.Const(1))
			})
		})
	})
	if fc.NumLoops != 2 {
		t.Fatalf("loops = %d, want 2", fc.NumLoops)
	}
	if fc.ConstLoops != 1 {
		t.Fatalf("const loops = %d, want 1", fc.ConstLoops)
	}
	if fc.AllConstant {
		t.Fatal("mixed nest must not be all-constant")
	}
}

func TestAnalyzeModule(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "getter", 0)
	b.Ret(b.Const(3))
	b.Finish()
	b2 := ir.NewFunc(m, "kernel", 1)
	b2.For(b2.Const(0), b2.Param(0), b2.Const(1), func(i ir.Reg) { b2.Work(b2.Const(1)) })
	b2.RetVoid()
	b2.Finish()

	cls := AnalyzeModule(m, nil)
	if !cls["getter"].Pruned {
		t.Fatal("getter should be pruned")
	}
	if cls["kernel"].Pruned {
		t.Fatal("kernel should not be pruned")
	}
}

// The scev classification must agree with the loop census from cfg.
func TestClassificationCoversAllLoops(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 1)
	b.ForConst(0, 2, func(i ir.Reg) {
		b.ForConst(0, 3, func(j ir.Reg) { b.Work(b.Const(1)) })
	})
	b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) { b.Work(b.Const(1)) })
	b.RetVoid()
	f := b.Finish()

	fc := AnalyzeFunc(f, nil)
	forest := cfg.FindLoops(cfg.Build(f))
	if len(fc.Loops) != len(forest.Loops) {
		t.Fatalf("classified %d loops, forest has %d", len(fc.Loops), len(forest.Loops))
	}
}
